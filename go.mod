module gqldb

go 1.22
