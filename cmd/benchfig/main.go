// Command benchfig regenerates the figures of the paper's evaluation
// section (§5). Each figure is printed as an aligned text table (or CSV)
// with one row per x-axis point and one column per plotted series.
//
// Usage:
//
//	benchfig -fig all                 # every figure, paper-scale workload
//	benchfig -fig 4.21b               # one figure
//	benchfig -fig ablations -quick    # ablation tables, scaled down
//	benchfig -fig 4.23b -csv          # CSV output
//
// Figures: 4.20a 4.20b 4.21a 4.21b 4.22a 4.22b 4.23a 4.23b, plus
// "parallel-speedup" (worker-pool scaling of the bulk operators),
// "sharded-speedup" (storage-layer shard fan-out vs the serial scan) and
// "ablations" (search-order planner and refinement-level studies).
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"gqldb/internal/figures"
	"gqldb/internal/stats"
)

func main() {
	fig := flag.String("fig", "all", "figure id (4.20a..4.23b), 'ablations', or 'all'")
	quick := flag.Bool("quick", false, "scaled-down workload (fast smoke run)")
	csv := flag.Bool("csv", false, "emit CSV instead of aligned text")
	outDir := flag.String("out", "", "also write one CSV file per figure into this directory")
	quiet := flag.Bool("quiet", false, "suppress progress output")
	flag.Parse()

	if *outDir != "" {
		if err := os.MkdirAll(*outDir, 0o755); err != nil {
			fmt.Fprintf(os.Stderr, "benchfig: %v\n", err)
			os.Exit(1)
		}
	}

	cfg := figures.Default()
	if *quick {
		cfg = figures.Quick()
	}
	if !*quiet {
		cfg.Progress = os.Stderr
	}
	r := figures.NewRunner(cfg)

	type figFn struct {
		id string
		fn func() (*stats.Table, error)
	}
	all := []figFn{
		{"4.20a", func() (*stats.Table, error) { return r.Fig420(stats.BucketLow) }},
		{"4.20b", func() (*stats.Table, error) { return r.Fig420(stats.BucketHigh) }},
		{"4.21a", r.Fig421a},
		{"4.21b", r.Fig421b},
		{"4.22a", r.Fig422a},
		{"4.22b", r.Fig422b},
		{"4.23a", r.Fig423a},
		{"4.23b", r.Fig423b},
		{"parallel-speedup", r.ParallelSpeedup},
		{"sharded-speedup", r.ShardedSpeedup},
		{"ablation-order", r.AblationOrder},
		{"ablation-refine", r.AblationRefineLevel},
		{"ablation-radius", r.AblationRadius},
		{"ablation-adjacency", r.AblationAdjacency},
	}

	want := strings.ToLower(*fig)
	ran := 0
	for _, f := range all {
		switch want {
		case "all":
		case "ablations":
			if !strings.HasPrefix(f.id, "ablation") {
				continue
			}
		default:
			if f.id != want {
				continue
			}
		}
		t, err := f.fn()
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchfig: %s: %v\n", f.id, err)
			os.Exit(1)
		}
		if *csv {
			fmt.Printf("# %s\n%s\n", t.Title, t.CSV())
		} else {
			fmt.Println(t.Format())
		}
		if *outDir != "" {
			name := filepath.Join(*outDir, "fig"+strings.ReplaceAll(f.id, ".", "_")+".csv")
			if err := os.WriteFile(name, []byte("# "+t.Title+"\n"+t.CSV()), 0o644); err != nil {
				fmt.Fprintf(os.Stderr, "benchfig: %v\n", err)
				os.Exit(1)
			}
		}
		ran++
	}
	if ran == 0 {
		fmt.Fprintf(os.Stderr, "benchfig: unknown figure %q (try -fig all)\n", *fig)
		os.Exit(2)
	}
}
