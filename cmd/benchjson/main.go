// Command benchjson turns `go test -bench -benchmem` output into a small
// committed JSON artifact (BENCH_*.json) so benchmark trajectories live in
// git history next to the code they measure. It reads the benchmark run
// from stdin, echoes it through to stdout (the human still sees the run),
// and appends the parsed run — stamped with the git commit and date — to
// the run list in -o. A rerun at the same commit replaces that commit's
// entry in place instead of duplicating it, so the file holds one run per
// commit in first-seen order; legacy single-run files (the bare run
// object, the format before run lists) are migrated on the first append.
//
// With -check FILE the tool becomes a regression gate instead: the run on
// stdin is compared against the last committed trajectory entry in FILE and
// any benchmark slower by more than -threshold (default 0.25, i.e. +25%
// ns/op) fails the run. Nothing is written; benchmarks present on only one
// side are reported and skipped, so adding or retiring a benchmark never
// trips the gate. `make bench-check` wires this over every BENCH_*.json.
//
// Repeated lines for the same benchmark (a `go test -count N` run) collapse
// to the fastest sample before recording or comparing: minimum ns/op is the
// robust estimator of what the code can do — scheduler preemption and GC
// pauses only ever push a sample up — so best-of-N on both sides of the
// comparison keeps shared-machine noise out of the gate.
//
// Exit codes: 0 on success, 1 when the input contains no benchmark lines,
// reports FAIL, or (-check) regresses past the threshold; 2 on usage/IO
// errors.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"os/exec"
	"regexp"
	"runtime"
	"strconv"
	"strings"
	"time"
)

// benchResult is one parsed benchmark line.
type benchResult struct {
	Name        string  `json:"name"`
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
}

// benchDoc is one benchmark run.
type benchDoc struct {
	Commit     string        `json:"commit"`
	Date       string        `json:"date"`
	GoVersion  string        `json:"go_version"`
	GOOS       string        `json:"goos"`
	GOARCH     string        `json:"goarch"`
	Benchmarks []benchResult `json:"benchmarks"`
}

// benchFile is the emitted artifact: the run trajectory, oldest first, one
// run per commit.
type benchFile struct {
	Runs []benchDoc `json:"runs"`
}

// loadRuns reads the existing artifact at path, migrating the legacy
// single-run format (a bare benchDoc object). A missing file is an empty
// trajectory; anything unreadable or unparsable is an error — the file is
// a committed artifact, so silently discarding history would be worse
// than failing the run.
func loadRuns(path string) ([]benchDoc, error) {
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	var f benchFile
	if err := json.Unmarshal(data, &f); err == nil && f.Runs != nil {
		return f.Runs, nil
	}
	var legacy benchDoc
	if err := json.Unmarshal(data, &legacy); err == nil && legacy.Commit != "" {
		return []benchDoc{legacy}, nil
	}
	return nil, fmt.Errorf("%s: not a benchjson artifact", path)
}

// appendRun adds doc to the trajectory, replacing an existing run with the
// same commit in place (a rerun supersedes, order is preserved).
func appendRun(runs []benchDoc, doc benchDoc) []benchDoc {
	for i := range runs {
		if runs[i].Commit == doc.Commit {
			runs[i] = doc
			return runs
		}
	}
	return append(runs, doc)
}

var benchLineRE = regexp.MustCompile(`^(Benchmark\S+)\s+(\d+)\s+(.+)$`)

// parseBench scans benchmark output, returning the parsed lines and
// whether a FAIL marker was seen.
func parseBench(r io.Reader, echo io.Writer) ([]benchResult, bool, error) {
	var out []benchResult
	failed := false
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Text()
		if echo != nil {
			fmt.Fprintln(echo, line)
		}
		if strings.HasPrefix(line, "FAIL") || strings.HasPrefix(line, "--- FAIL") {
			failed = true
		}
		m := benchLineRE.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		iters, err := strconv.ParseInt(m[2], 10, 64)
		if err != nil {
			continue
		}
		res := benchResult{Name: m[1], Iterations: iters}
		fields := strings.Fields(m[3])
		for i := 0; i+1 < len(fields); i++ {
			v := fields[i]
			switch fields[i+1] {
			case "ns/op":
				res.NsPerOp, _ = strconv.ParseFloat(v, 64)
			case "B/op":
				res.BytesPerOp, _ = strconv.ParseInt(v, 10, 64)
			case "allocs/op":
				res.AllocsPerOp, _ = strconv.ParseInt(v, 10, 64)
			}
		}
		out = append(out, res)
	}
	return out, failed, sc.Err()
}

// collapseBest reduces repeated samples of the same benchmark (go test
// -count N) to the fastest one, preserving first-seen order. Minimum ns/op
// is the noise-robust representative: interference only inflates samples.
func collapseBest(results []benchResult) []benchResult {
	best := make(map[string]int, len(results))
	var out []benchResult
	for _, r := range results {
		i, ok := best[r.Name]
		if !ok {
			best[r.Name] = len(out)
			out = append(out, r)
			continue
		}
		if r.NsPerOp < out[i].NsPerOp {
			out[i] = r
		}
	}
	return out
}

// gitCommit returns the short HEAD hash, or "unknown" outside a checkout.
func gitCommit() string {
	out, err := exec.Command("git", "rev-parse", "--short", "HEAD").Output()
	if err != nil {
		return "unknown"
	}
	return strings.TrimSpace(string(out))
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdin, os.Stdout, os.Stderr))
}

// run is the body, separated from main for testing.
func run(args []string, stdin io.Reader, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("benchjson", flag.ContinueOnError)
	fs.SetOutput(stderr)
	outPath := fs.String("o", "", "output JSON file (mutually exclusive with -check)")
	checkPath := fs.String("check", "", "compare the run against the last entry of this artifact instead of writing")
	threshold := fs.Float64("threshold", 0.25, "with -check: maximum tolerated ns/op slowdown as a fraction (0.25 = +25%)")
	commit := fs.String("commit", "", "commit hash to stamp (default: git rev-parse --short HEAD)")
	date := fs.String("date", "", "date to stamp, YYYY-MM-DD (default: today, UTC)")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if (*outPath == "") == (*checkPath == "") {
		fmt.Fprintln(stderr, "benchjson: exactly one of -o or -check is required")
		return 2
	}

	results, failed, err := parseBench(stdin, stdout)
	if err != nil {
		fmt.Fprintln(stderr, "benchjson:", err)
		return 2
	}
	if failed {
		fmt.Fprintln(stderr, "benchjson: input reports FAIL")
		return 1
	}
	if len(results) == 0 {
		fmt.Fprintln(stderr, "benchjson: no benchmark lines in input")
		return 1
	}
	results = collapseBest(results)

	if *checkPath != "" {
		return check(*checkPath, results, *threshold, stderr)
	}

	doc := benchDoc{
		Commit:     *commit,
		Date:       *date,
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		Benchmarks: results,
	}
	if doc.Commit == "" {
		doc.Commit = gitCommit()
	}
	if doc.Date == "" {
		doc.Date = time.Now().UTC().Format("2006-01-02")
	}
	runs, err := loadRuns(*outPath)
	if err != nil {
		fmt.Fprintln(stderr, "benchjson:", err)
		return 2
	}
	runs = appendRun(runs, doc)
	data, err := json.MarshalIndent(benchFile{Runs: runs}, "", "  ")
	if err != nil {
		fmt.Fprintln(stderr, "benchjson:", err)
		return 2
	}
	if err := os.WriteFile(*outPath, append(data, '\n'), 0o644); err != nil {
		fmt.Fprintln(stderr, "benchjson:", err)
		return 2
	}
	fmt.Fprintf(stderr, "benchjson: wrote %d benchmark(s) to %s (%d run(s))\n", len(results), *outPath, len(runs))
	return 0
}

// check compares the current results against the last committed run in the
// artifact at path: any benchmark slower by more than threshold (fractional
// ns/op growth) is a regression and fails the gate. Benchmarks present on
// only one side are reported and skipped — adding or retiring a benchmark
// must never trip the gate. A baseline with zero or missing ns/op is also
// skipped (nothing meaningful to compare against).
func check(path string, results []benchResult, threshold float64, stderr io.Writer) int {
	runs, err := loadRuns(path)
	if err != nil {
		fmt.Fprintln(stderr, "benchjson:", err)
		return 2
	}
	if len(runs) == 0 {
		fmt.Fprintf(stderr, "benchjson: %s has no runs to compare against\n", path)
		return 2
	}
	base := runs[len(runs)-1]
	baseline := make(map[string]benchResult, len(base.Benchmarks))
	for _, b := range base.Benchmarks {
		baseline[b.Name] = b
	}
	regressed := false
	seen := make(map[string]bool, len(results))
	for _, cur := range results {
		seen[cur.Name] = true
		prev, ok := baseline[cur.Name]
		if !ok {
			fmt.Fprintf(stderr, "benchjson: %s: new benchmark, no baseline in %s (skipped)\n", cur.Name, path)
			continue
		}
		if prev.NsPerOp <= 0 {
			fmt.Fprintf(stderr, "benchjson: %s: baseline has no ns/op (skipped)\n", cur.Name)
			continue
		}
		growth := cur.NsPerOp/prev.NsPerOp - 1
		if growth > threshold {
			fmt.Fprintf(stderr, "benchjson: REGRESSION %s: %.0f -> %.0f ns/op (%+.1f%%, threshold %+.0f%%) vs commit %s\n",
				cur.Name, prev.NsPerOp, cur.NsPerOp, growth*100, threshold*100, base.Commit)
			regressed = true
		} else {
			fmt.Fprintf(stderr, "benchjson: ok %s: %.0f -> %.0f ns/op (%+.1f%%)\n",
				cur.Name, prev.NsPerOp, cur.NsPerOp, growth*100)
		}
	}
	for _, b := range base.Benchmarks {
		if !seen[b.Name] {
			fmt.Fprintf(stderr, "benchjson: %s: in baseline but not in this run (skipped)\n", b.Name)
		}
	}
	if regressed {
		fmt.Fprintf(stderr, "benchjson: regression(s) vs %s commit %s\n", path, base.Commit)
		return 1
	}
	return 0
}
