// Command benchjson turns `go test -bench -benchmem` output into a small
// committed JSON artifact (BENCH_*.json) so benchmark trajectories live in
// git history next to the code they measure. It reads the benchmark run
// from stdin, echoes it through to stdout (the human still sees the run),
// and appends the parsed run — stamped with the git commit and date — to
// the run list in -o. A rerun at the same commit replaces that commit's
// entry in place instead of duplicating it, so the file holds one run per
// commit in first-seen order; legacy single-run files (the bare run
// object, the format before run lists) are migrated on the first append.
//
// Exit codes: 0 on success, 1 when the input contains no benchmark lines
// or reports FAIL, 2 on usage/IO errors.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"os/exec"
	"regexp"
	"runtime"
	"strconv"
	"strings"
	"time"
)

// benchResult is one parsed benchmark line.
type benchResult struct {
	Name        string  `json:"name"`
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
}

// benchDoc is one benchmark run.
type benchDoc struct {
	Commit     string        `json:"commit"`
	Date       string        `json:"date"`
	GoVersion  string        `json:"go_version"`
	GOOS       string        `json:"goos"`
	GOARCH     string        `json:"goarch"`
	Benchmarks []benchResult `json:"benchmarks"`
}

// benchFile is the emitted artifact: the run trajectory, oldest first, one
// run per commit.
type benchFile struct {
	Runs []benchDoc `json:"runs"`
}

// loadRuns reads the existing artifact at path, migrating the legacy
// single-run format (a bare benchDoc object). A missing file is an empty
// trajectory; anything unreadable or unparsable is an error — the file is
// a committed artifact, so silently discarding history would be worse
// than failing the run.
func loadRuns(path string) ([]benchDoc, error) {
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	var f benchFile
	if err := json.Unmarshal(data, &f); err == nil && f.Runs != nil {
		return f.Runs, nil
	}
	var legacy benchDoc
	if err := json.Unmarshal(data, &legacy); err == nil && legacy.Commit != "" {
		return []benchDoc{legacy}, nil
	}
	return nil, fmt.Errorf("%s: not a benchjson artifact", path)
}

// appendRun adds doc to the trajectory, replacing an existing run with the
// same commit in place (a rerun supersedes, order is preserved).
func appendRun(runs []benchDoc, doc benchDoc) []benchDoc {
	for i := range runs {
		if runs[i].Commit == doc.Commit {
			runs[i] = doc
			return runs
		}
	}
	return append(runs, doc)
}

var benchLineRE = regexp.MustCompile(`^(Benchmark\S+)\s+(\d+)\s+(.+)$`)

// parseBench scans benchmark output, returning the parsed lines and
// whether a FAIL marker was seen.
func parseBench(r io.Reader, echo io.Writer) ([]benchResult, bool, error) {
	var out []benchResult
	failed := false
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Text()
		if echo != nil {
			fmt.Fprintln(echo, line)
		}
		if strings.HasPrefix(line, "FAIL") || strings.HasPrefix(line, "--- FAIL") {
			failed = true
		}
		m := benchLineRE.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		iters, err := strconv.ParseInt(m[2], 10, 64)
		if err != nil {
			continue
		}
		res := benchResult{Name: m[1], Iterations: iters}
		fields := strings.Fields(m[3])
		for i := 0; i+1 < len(fields); i++ {
			v := fields[i]
			switch fields[i+1] {
			case "ns/op":
				res.NsPerOp, _ = strconv.ParseFloat(v, 64)
			case "B/op":
				res.BytesPerOp, _ = strconv.ParseInt(v, 10, 64)
			case "allocs/op":
				res.AllocsPerOp, _ = strconv.ParseInt(v, 10, 64)
			}
		}
		out = append(out, res)
	}
	return out, failed, sc.Err()
}

// gitCommit returns the short HEAD hash, or "unknown" outside a checkout.
func gitCommit() string {
	out, err := exec.Command("git", "rev-parse", "--short", "HEAD").Output()
	if err != nil {
		return "unknown"
	}
	return strings.TrimSpace(string(out))
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdin, os.Stdout, os.Stderr))
}

// run is the body, separated from main for testing.
func run(args []string, stdin io.Reader, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("benchjson", flag.ContinueOnError)
	fs.SetOutput(stderr)
	outPath := fs.String("o", "", "output JSON file (required)")
	commit := fs.String("commit", "", "commit hash to stamp (default: git rev-parse --short HEAD)")
	date := fs.String("date", "", "date to stamp, YYYY-MM-DD (default: today, UTC)")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *outPath == "" {
		fmt.Fprintln(stderr, "benchjson: -o is required")
		return 2
	}

	results, failed, err := parseBench(stdin, stdout)
	if err != nil {
		fmt.Fprintln(stderr, "benchjson:", err)
		return 2
	}
	if failed {
		fmt.Fprintln(stderr, "benchjson: input reports FAIL; not writing", *outPath)
		return 1
	}
	if len(results) == 0 {
		fmt.Fprintln(stderr, "benchjson: no benchmark lines in input; not writing", *outPath)
		return 1
	}

	doc := benchDoc{
		Commit:     *commit,
		Date:       *date,
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		Benchmarks: results,
	}
	if doc.Commit == "" {
		doc.Commit = gitCommit()
	}
	if doc.Date == "" {
		doc.Date = time.Now().UTC().Format("2006-01-02")
	}
	runs, err := loadRuns(*outPath)
	if err != nil {
		fmt.Fprintln(stderr, "benchjson:", err)
		return 2
	}
	runs = appendRun(runs, doc)
	data, err := json.MarshalIndent(benchFile{Runs: runs}, "", "  ")
	if err != nil {
		fmt.Fprintln(stderr, "benchjson:", err)
		return 2
	}
	if err := os.WriteFile(*outPath, append(data, '\n'), 0o644); err != nil {
		fmt.Fprintln(stderr, "benchjson:", err)
		return 2
	}
	fmt.Fprintf(stderr, "benchjson: wrote %d benchmark(s) to %s (%d run(s))\n", len(results), *outPath, len(runs))
	return 0
}
