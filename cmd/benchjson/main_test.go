package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const sampleRun = `goos: linux
goarch: amd64
pkg: gqldb/internal/store
cpu: Example CPU
BenchmarkShardedSelection-8   	     100	  12345678 ns/op	 4096 B/op	      12 allocs/op
BenchmarkCacheHit-8           	 5000000	       0.5 ns/op	    0 B/op	       0 allocs/op
PASS
ok  	gqldb/internal/store	1.234s
`

// TestParseBench pins the line parser against representative output.
func TestParseBench(t *testing.T) {
	results, failed, err := parseBench(strings.NewReader(sampleRun), nil)
	if err != nil || failed {
		t.Fatalf("parseBench: err=%v failed=%v", err, failed)
	}
	if len(results) != 2 {
		t.Fatalf("parsed %d results, want 2", len(results))
	}
	r := results[0]
	if r.Name != "BenchmarkShardedSelection-8" || r.Iterations != 100 ||
		r.NsPerOp != 12345678 || r.BytesPerOp != 4096 || r.AllocsPerOp != 12 {
		t.Errorf("result 0 = %+v", r)
	}
	if results[1].NsPerOp != 0.5 {
		t.Errorf("fractional ns/op = %v, want 0.5", results[1].NsPerOp)
	}
}

// TestParseBenchFail pins FAIL detection.
func TestParseBenchFail(t *testing.T) {
	_, failed, err := parseBench(strings.NewReader("--- FAIL: BenchmarkX\nFAIL\n"), nil)
	if err != nil || !failed {
		t.Fatalf("failed=%v err=%v, want failed=true", failed, err)
	}
}

// TestRunWritesDoc pins the full artifact: stamped fields plus parsed
// benchmarks, and the input echoed to stdout.
func TestRunWritesDoc(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH_x.json")
	var stdout, stderr bytes.Buffer
	code := run([]string{"-o", path, "-commit", "abc1234", "-date", "2026-01-02"},
		strings.NewReader(sampleRun), &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit = %d; stderr: %s", code, stderr.String())
	}
	if !strings.Contains(stdout.String(), "BenchmarkCacheHit-8") {
		t.Errorf("stdout does not echo the run: %q", stdout.String())
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("reading artifact: %v", err)
	}
	var f benchFile
	if err := json.Unmarshal(data, &f); err != nil {
		t.Fatalf("unmarshaling artifact: %v", err)
	}
	if len(f.Runs) != 1 {
		t.Fatalf("runs = %d, want 1", len(f.Runs))
	}
	doc := f.Runs[0]
	if doc.Commit != "abc1234" || doc.Date != "2026-01-02" || len(doc.Benchmarks) != 2 {
		t.Errorf("doc = %+v", doc)
	}
	if doc.GoVersion == "" || doc.GOOS == "" || doc.GOARCH == "" {
		t.Errorf("doc missing environment stamps: %+v", doc)
	}
}

// TestRunAppendsTrajectory pins the append-by-commit behavior: a second
// run at a new commit extends the trajectory, a rerun at an existing
// commit replaces that entry in place, and order is preserved.
func TestRunAppendsTrajectory(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH_x.json")
	var stdout, stderr bytes.Buffer
	read := func() []benchDoc {
		t.Helper()
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("reading artifact: %v", err)
		}
		var f benchFile
		if err := json.Unmarshal(data, &f); err != nil {
			t.Fatalf("unmarshaling artifact: %v", err)
		}
		return f.Runs
	}
	for _, commit := range []string{"aaa1111", "bbb2222"} {
		if code := run([]string{"-o", path, "-commit", commit, "-date", "2026-01-02"},
			strings.NewReader(sampleRun), &stdout, &stderr); code != 0 {
			t.Fatalf("run(%s): exit %d; stderr: %s", commit, code, stderr.String())
		}
	}
	runs := read()
	if len(runs) != 2 || runs[0].Commit != "aaa1111" || runs[1].Commit != "bbb2222" {
		t.Fatalf("after two commits: %+v", runs)
	}

	// Rerun the first commit with different numbers: replaced in place.
	rerun := strings.ReplaceAll(sampleRun, "12345678 ns/op", "999 ns/op")
	if code := run([]string{"-o", path, "-commit", "aaa1111", "-date", "2026-01-03"},
		strings.NewReader(rerun), &stdout, &stderr); code != 0 {
		t.Fatalf("rerun: exit %d; stderr: %s", code, stderr.String())
	}
	runs = read()
	if len(runs) != 2 {
		t.Fatalf("rerun duplicated the commit: %+v", runs)
	}
	if runs[0].Commit != "aaa1111" || runs[0].Benchmarks[0].NsPerOp != 999 || runs[0].Date != "2026-01-03" {
		t.Errorf("rerun did not replace in place: %+v", runs[0])
	}
	if runs[1].Commit != "bbb2222" {
		t.Errorf("order not preserved: %+v", runs)
	}
}

// TestRunMigratesLegacyArtifact pins the single-object migration: a file
// in the pre-trajectory format becomes the first run of the list.
func TestRunMigratesLegacyArtifact(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH_x.json")
	legacy := `{"commit":"old0001","date":"2025-12-31","go_version":"go1.0","goos":"linux","goarch":"amd64","benchmarks":[{"name":"BenchmarkOld-8","iterations":1,"ns_per_op":1,"bytes_per_op":0,"allocs_per_op":0}]}`
	if err := os.WriteFile(path, []byte(legacy), 0o644); err != nil {
		t.Fatal(err)
	}
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-o", path, "-commit", "new0002", "-date", "2026-01-02"},
		strings.NewReader(sampleRun), &stdout, &stderr); code != 0 {
		t.Fatalf("exit %d; stderr: %s", code, stderr.String())
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var f benchFile
	if err := json.Unmarshal(data, &f); err != nil {
		t.Fatalf("unmarshaling artifact: %v", err)
	}
	if len(f.Runs) != 2 || f.Runs[0].Commit != "old0001" || f.Runs[1].Commit != "new0002" {
		t.Errorf("migration: %+v", f.Runs)
	}
	if len(f.Runs[0].Benchmarks) != 1 || f.Runs[0].Benchmarks[0].Name != "BenchmarkOld-8" {
		t.Errorf("legacy benchmarks lost: %+v", f.Runs[0])
	}
}

// TestRunRejectsCorruptArtifact pins that an unparsable existing artifact
// fails the run instead of being overwritten.
func TestRunRejectsCorruptArtifact(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH_x.json")
	if err := os.WriteFile(path, []byte("not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-o", path, "-commit", "abc1234"},
		strings.NewReader(sampleRun), &stdout, &stderr); code != 2 {
		t.Fatalf("exit %d, want 2; stderr: %s", code, stderr.String())
	}
	if data, _ := os.ReadFile(path); string(data) != "not json" {
		t.Errorf("corrupt artifact was overwritten: %q", data)
	}
}

// TestRunRejectsEmptyAndFail pins the non-zero exits.
func TestRunRejectsEmptyAndFail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH_x.json")
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-o", path}, strings.NewReader("PASS\n"), &stdout, &stderr); code != 1 {
		t.Errorf("empty input: exit = %d, want 1", code)
	}
	if code := run([]string{"-o", path}, strings.NewReader(sampleRun+"FAIL\n"), &stdout, &stderr); code != 1 {
		t.Errorf("FAIL input: exit = %d, want 1", code)
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Errorf("artifact written despite bad input")
	}
	if code := run(nil, strings.NewReader(""), &stdout, &stderr); code != 2 {
		t.Errorf("missing -o: exit = %d, want 2", code)
	}
}

// writeTrajectory seeds an artifact with one committed run for the -check
// tests.
func writeTrajectory(t *testing.T, input string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "BENCH_x.json")
	var stdout, stderr bytes.Buffer
	args := []string{"-o", path, "-commit", "base001", "-date", "2026-01-01"}
	if code := run(args, strings.NewReader(input), &stdout, &stderr); code != 0 {
		t.Fatalf("seeding trajectory: exit %d; stderr: %s", code, stderr.String())
	}
	return path
}

// TestCheckPassesWithinThreshold pins the gate's accept side: identical
// numbers and small slowdowns stay inside the default 25% budget, and the
// artifact is left untouched.
func TestCheckPassesWithinThreshold(t *testing.T) {
	path := writeTrajectory(t, sampleRun)
	before, _ := os.ReadFile(path)
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-check", path}, strings.NewReader(sampleRun), &stdout, &stderr); code != 0 {
		t.Fatalf("identical run: exit %d; stderr: %s", code, stderr.String())
	}
	// +20% stays under the default 25% threshold.
	slower := strings.ReplaceAll(sampleRun, "12345678 ns/op", "14814813 ns/op")
	if code := run([]string{"-check", path}, strings.NewReader(slower), &stdout, &stderr); code != 0 {
		t.Fatalf("+20%% run: exit %d; stderr: %s", code, stderr.String())
	}
	if after, _ := os.ReadFile(path); !bytes.Equal(before, after) {
		t.Error("-check rewrote the artifact")
	}
}

// TestCheckFailsOnRegression pins the reject side: a slowdown past the
// threshold exits 1 and names the offending benchmark.
func TestCheckFailsOnRegression(t *testing.T) {
	path := writeTrajectory(t, sampleRun)
	var stdout, stderr bytes.Buffer
	// +30% trips the default 25% threshold.
	slower := strings.ReplaceAll(sampleRun, "12345678 ns/op", "16049381 ns/op")
	if code := run([]string{"-check", path}, strings.NewReader(slower), &stdout, &stderr); code != 1 {
		t.Fatalf("+30%% run: exit %d, want 1; stderr: %s", code, stderr.String())
	}
	if !strings.Contains(stderr.String(), "REGRESSION BenchmarkShardedSelection-8") {
		t.Errorf("stderr does not name the regressed benchmark: %s", stderr.String())
	}
	// A looser explicit threshold accepts the same run.
	stderr.Reset()
	if code := run([]string{"-check", path, "-threshold", "0.5"}, strings.NewReader(slower), &stdout, &stderr); code != 0 {
		t.Fatalf("+30%% under -threshold 0.5: exit %d; stderr: %s", code, stderr.String())
	}
}

// TestCheckComparesAgainstLastRun pins that the baseline is the final
// trajectory entry, not an earlier one.
func TestCheckComparesAgainstLastRun(t *testing.T) {
	path := writeTrajectory(t, sampleRun)
	var stdout, stderr bytes.Buffer
	// Second committed run is 10x faster; the gate must compare against it.
	faster := strings.ReplaceAll(sampleRun, "12345678 ns/op", "1234567 ns/op")
	if code := run([]string{"-o", path, "-commit", "base002", "-date", "2026-01-02"},
		strings.NewReader(faster), &stdout, &stderr); code != 0 {
		t.Fatalf("appending second run: exit %d; stderr: %s", code, stderr.String())
	}
	// The original numbers are now a huge regression vs the new baseline.
	if code := run([]string{"-check", path}, strings.NewReader(sampleRun), &stdout, &stderr); code != 1 {
		t.Fatalf("old numbers vs new baseline: exit %d, want 1; stderr: %s", code, stderr.String())
	}
}

// TestCheckSkipsUnmatchedBenchmarks pins that adding or retiring a
// benchmark never trips the gate.
func TestCheckSkipsUnmatchedBenchmarks(t *testing.T) {
	path := writeTrajectory(t, sampleRun)
	var stdout, stderr bytes.Buffer
	renamed := strings.ReplaceAll(sampleRun, "BenchmarkShardedSelection-8", "BenchmarkBrandNew-8")
	if code := run([]string{"-check", path}, strings.NewReader(renamed), &stdout, &stderr); code != 0 {
		t.Fatalf("renamed benchmark: exit %d; stderr: %s", code, stderr.String())
	}
	for _, frag := range []string{"BenchmarkBrandNew-8: new benchmark", "BenchmarkShardedSelection-8: in baseline but not in this run"} {
		if !strings.Contains(stderr.String(), frag) {
			t.Errorf("stderr missing %q: %s", frag, stderr.String())
		}
	}
}

// TestCollapseBest pins best-of-N sample collapsing: a -count run's
// repeated lines reduce to the fastest sample on both the record and the
// check side, so one noisy sample cannot trip the gate.
func TestCollapseBest(t *testing.T) {
	multi := `BenchmarkShardedSelection-8   	     100	  12345678 ns/op	 4096 B/op	      12 allocs/op
BenchmarkShardedSelection-8   	      60	  19999999 ns/op	 4096 B/op	      12 allocs/op
BenchmarkShardedSelection-8   	     110	  11000000 ns/op	 4096 B/op	      12 allocs/op
BenchmarkCacheHit-8           	 5000000	       0.5 ns/op	    0 B/op	       0 allocs/op
PASS
`
	path := writeTrajectory(t, multi)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var f benchFile
	if err := json.Unmarshal(data, &f); err != nil {
		t.Fatal(err)
	}
	if n := len(f.Runs[0].Benchmarks); n != 2 {
		t.Fatalf("recorded %d benchmarks, want 2 (collapsed)", n)
	}
	if got := f.Runs[0].Benchmarks[0].NsPerOp; got != 11000000 {
		t.Errorf("recorded ns/op = %v, want the 11000000 minimum", got)
	}
	// On the check side: two terrible samples plus one within budget must
	// pass, because only the fastest sample represents the run.
	noisy := strings.ReplaceAll(multi, "11000000 ns/op", "12000000 ns/op")
	noisy = strings.ReplaceAll(noisy, "19999999 ns/op", "99999999 ns/op")
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-check", path}, strings.NewReader(noisy), &stdout, &stderr); code != 0 {
		t.Fatalf("noisy -count run: exit %d; stderr: %s", code, stderr.String())
	}
}

// TestCheckUsageErrors pins the sharp edges: -o with -check, and checking
// against a missing or empty artifact.
func TestCheckUsageErrors(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-o", "x.json", "-check", "y.json"},
		strings.NewReader(sampleRun), &stdout, &stderr); code != 2 {
		t.Errorf("-o with -check: exit %d, want 2", code)
	}
	missing := filepath.Join(t.TempDir(), "BENCH_missing.json")
	if code := run([]string{"-check", missing}, strings.NewReader(sampleRun), &stdout, &stderr); code != 2 {
		t.Errorf("missing artifact: exit %d, want 2", code)
	}
}
