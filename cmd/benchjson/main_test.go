package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const sampleRun = `goos: linux
goarch: amd64
pkg: gqldb/internal/store
cpu: Example CPU
BenchmarkShardedSelection-8   	     100	  12345678 ns/op	 4096 B/op	      12 allocs/op
BenchmarkCacheHit-8           	 5000000	       0.5 ns/op	    0 B/op	       0 allocs/op
PASS
ok  	gqldb/internal/store	1.234s
`

// TestParseBench pins the line parser against representative output.
func TestParseBench(t *testing.T) {
	results, failed, err := parseBench(strings.NewReader(sampleRun), nil)
	if err != nil || failed {
		t.Fatalf("parseBench: err=%v failed=%v", err, failed)
	}
	if len(results) != 2 {
		t.Fatalf("parsed %d results, want 2", len(results))
	}
	r := results[0]
	if r.Name != "BenchmarkShardedSelection-8" || r.Iterations != 100 ||
		r.NsPerOp != 12345678 || r.BytesPerOp != 4096 || r.AllocsPerOp != 12 {
		t.Errorf("result 0 = %+v", r)
	}
	if results[1].NsPerOp != 0.5 {
		t.Errorf("fractional ns/op = %v, want 0.5", results[1].NsPerOp)
	}
}

// TestParseBenchFail pins FAIL detection.
func TestParseBenchFail(t *testing.T) {
	_, failed, err := parseBench(strings.NewReader("--- FAIL: BenchmarkX\nFAIL\n"), nil)
	if err != nil || !failed {
		t.Fatalf("failed=%v err=%v, want failed=true", failed, err)
	}
}

// TestRunWritesDoc pins the full artifact: stamped fields plus parsed
// benchmarks, and the input echoed to stdout.
func TestRunWritesDoc(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH_x.json")
	var stdout, stderr bytes.Buffer
	code := run([]string{"-o", path, "-commit", "abc1234", "-date", "2026-01-02"},
		strings.NewReader(sampleRun), &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit = %d; stderr: %s", code, stderr.String())
	}
	if !strings.Contains(stdout.String(), "BenchmarkCacheHit-8") {
		t.Errorf("stdout does not echo the run: %q", stdout.String())
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("reading artifact: %v", err)
	}
	var doc benchDoc
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatalf("unmarshaling artifact: %v", err)
	}
	if doc.Commit != "abc1234" || doc.Date != "2026-01-02" || len(doc.Benchmarks) != 2 {
		t.Errorf("doc = %+v", doc)
	}
	if doc.GoVersion == "" || doc.GOOS == "" || doc.GOARCH == "" {
		t.Errorf("doc missing environment stamps: %+v", doc)
	}
}

// TestRunRejectsEmptyAndFail pins the non-zero exits.
func TestRunRejectsEmptyAndFail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH_x.json")
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-o", path}, strings.NewReader("PASS\n"), &stdout, &stderr); code != 1 {
		t.Errorf("empty input: exit = %d, want 1", code)
	}
	if code := run([]string{"-o", path}, strings.NewReader(sampleRun+"FAIL\n"), &stdout, &stderr); code != 1 {
		t.Errorf("FAIL input: exit = %d, want 1", code)
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Errorf("artifact written despite bad input")
	}
	if code := run(nil, strings.NewReader(""), &stdout, &stderr); code != 2 {
		t.Errorf("missing -o: exit = %d, want 2", code)
	}
}
