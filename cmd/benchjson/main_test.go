package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const sampleRun = `goos: linux
goarch: amd64
pkg: gqldb/internal/store
cpu: Example CPU
BenchmarkShardedSelection-8   	     100	  12345678 ns/op	 4096 B/op	      12 allocs/op
BenchmarkCacheHit-8           	 5000000	       0.5 ns/op	    0 B/op	       0 allocs/op
PASS
ok  	gqldb/internal/store	1.234s
`

// TestParseBench pins the line parser against representative output.
func TestParseBench(t *testing.T) {
	results, failed, err := parseBench(strings.NewReader(sampleRun), nil)
	if err != nil || failed {
		t.Fatalf("parseBench: err=%v failed=%v", err, failed)
	}
	if len(results) != 2 {
		t.Fatalf("parsed %d results, want 2", len(results))
	}
	r := results[0]
	if r.Name != "BenchmarkShardedSelection-8" || r.Iterations != 100 ||
		r.NsPerOp != 12345678 || r.BytesPerOp != 4096 || r.AllocsPerOp != 12 {
		t.Errorf("result 0 = %+v", r)
	}
	if results[1].NsPerOp != 0.5 {
		t.Errorf("fractional ns/op = %v, want 0.5", results[1].NsPerOp)
	}
}

// TestParseBenchFail pins FAIL detection.
func TestParseBenchFail(t *testing.T) {
	_, failed, err := parseBench(strings.NewReader("--- FAIL: BenchmarkX\nFAIL\n"), nil)
	if err != nil || !failed {
		t.Fatalf("failed=%v err=%v, want failed=true", failed, err)
	}
}

// TestRunWritesDoc pins the full artifact: stamped fields plus parsed
// benchmarks, and the input echoed to stdout.
func TestRunWritesDoc(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH_x.json")
	var stdout, stderr bytes.Buffer
	code := run([]string{"-o", path, "-commit", "abc1234", "-date", "2026-01-02"},
		strings.NewReader(sampleRun), &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit = %d; stderr: %s", code, stderr.String())
	}
	if !strings.Contains(stdout.String(), "BenchmarkCacheHit-8") {
		t.Errorf("stdout does not echo the run: %q", stdout.String())
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("reading artifact: %v", err)
	}
	var f benchFile
	if err := json.Unmarshal(data, &f); err != nil {
		t.Fatalf("unmarshaling artifact: %v", err)
	}
	if len(f.Runs) != 1 {
		t.Fatalf("runs = %d, want 1", len(f.Runs))
	}
	doc := f.Runs[0]
	if doc.Commit != "abc1234" || doc.Date != "2026-01-02" || len(doc.Benchmarks) != 2 {
		t.Errorf("doc = %+v", doc)
	}
	if doc.GoVersion == "" || doc.GOOS == "" || doc.GOARCH == "" {
		t.Errorf("doc missing environment stamps: %+v", doc)
	}
}

// TestRunAppendsTrajectory pins the append-by-commit behavior: a second
// run at a new commit extends the trajectory, a rerun at an existing
// commit replaces that entry in place, and order is preserved.
func TestRunAppendsTrajectory(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH_x.json")
	var stdout, stderr bytes.Buffer
	read := func() []benchDoc {
		t.Helper()
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("reading artifact: %v", err)
		}
		var f benchFile
		if err := json.Unmarshal(data, &f); err != nil {
			t.Fatalf("unmarshaling artifact: %v", err)
		}
		return f.Runs
	}
	for _, commit := range []string{"aaa1111", "bbb2222"} {
		if code := run([]string{"-o", path, "-commit", commit, "-date", "2026-01-02"},
			strings.NewReader(sampleRun), &stdout, &stderr); code != 0 {
			t.Fatalf("run(%s): exit %d; stderr: %s", commit, code, stderr.String())
		}
	}
	runs := read()
	if len(runs) != 2 || runs[0].Commit != "aaa1111" || runs[1].Commit != "bbb2222" {
		t.Fatalf("after two commits: %+v", runs)
	}

	// Rerun the first commit with different numbers: replaced in place.
	rerun := strings.ReplaceAll(sampleRun, "12345678 ns/op", "999 ns/op")
	if code := run([]string{"-o", path, "-commit", "aaa1111", "-date", "2026-01-03"},
		strings.NewReader(rerun), &stdout, &stderr); code != 0 {
		t.Fatalf("rerun: exit %d; stderr: %s", code, stderr.String())
	}
	runs = read()
	if len(runs) != 2 {
		t.Fatalf("rerun duplicated the commit: %+v", runs)
	}
	if runs[0].Commit != "aaa1111" || runs[0].Benchmarks[0].NsPerOp != 999 || runs[0].Date != "2026-01-03" {
		t.Errorf("rerun did not replace in place: %+v", runs[0])
	}
	if runs[1].Commit != "bbb2222" {
		t.Errorf("order not preserved: %+v", runs)
	}
}

// TestRunMigratesLegacyArtifact pins the single-object migration: a file
// in the pre-trajectory format becomes the first run of the list.
func TestRunMigratesLegacyArtifact(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH_x.json")
	legacy := `{"commit":"old0001","date":"2025-12-31","go_version":"go1.0","goos":"linux","goarch":"amd64","benchmarks":[{"name":"BenchmarkOld-8","iterations":1,"ns_per_op":1,"bytes_per_op":0,"allocs_per_op":0}]}`
	if err := os.WriteFile(path, []byte(legacy), 0o644); err != nil {
		t.Fatal(err)
	}
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-o", path, "-commit", "new0002", "-date", "2026-01-02"},
		strings.NewReader(sampleRun), &stdout, &stderr); code != 0 {
		t.Fatalf("exit %d; stderr: %s", code, stderr.String())
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var f benchFile
	if err := json.Unmarshal(data, &f); err != nil {
		t.Fatalf("unmarshaling artifact: %v", err)
	}
	if len(f.Runs) != 2 || f.Runs[0].Commit != "old0001" || f.Runs[1].Commit != "new0002" {
		t.Errorf("migration: %+v", f.Runs)
	}
	if len(f.Runs[0].Benchmarks) != 1 || f.Runs[0].Benchmarks[0].Name != "BenchmarkOld-8" {
		t.Errorf("legacy benchmarks lost: %+v", f.Runs[0])
	}
}

// TestRunRejectsCorruptArtifact pins that an unparsable existing artifact
// fails the run instead of being overwritten.
func TestRunRejectsCorruptArtifact(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH_x.json")
	if err := os.WriteFile(path, []byte("not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-o", path, "-commit", "abc1234"},
		strings.NewReader(sampleRun), &stdout, &stderr); code != 2 {
		t.Fatalf("exit %d, want 2; stderr: %s", code, stderr.String())
	}
	if data, _ := os.ReadFile(path); string(data) != "not json" {
		t.Errorf("corrupt artifact was overwritten: %q", data)
	}
}

// TestRunRejectsEmptyAndFail pins the non-zero exits.
func TestRunRejectsEmptyAndFail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH_x.json")
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-o", path}, strings.NewReader("PASS\n"), &stdout, &stderr); code != 1 {
		t.Errorf("empty input: exit = %d, want 1", code)
	}
	if code := run([]string{"-o", path}, strings.NewReader(sampleRun+"FAIL\n"), &stdout, &stderr); code != 1 {
		t.Errorf("FAIL input: exit = %d, want 1", code)
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Errorf("artifact written despite bad input")
	}
	if code := run(nil, strings.NewReader(""), &stdout, &stderr); code != 2 {
		t.Errorf("missing -o: exit = %d, want 2", code)
	}
}
