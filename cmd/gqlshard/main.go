// Command gqlshard serves one process of the distributed read path: a
// shard server holding a full mirror of the document set, partitioned
// locally with the same deterministic hash as the frontend, answering
// per-shard selection jobs over the store wire protocol.
//
// Usage:
//
//	gqlshard -addr :7301 -shards 3 [-doc name=file.tsv ...] \
//	    [-index-paths L] [-workers N] [-max-body BYTES] [-plan-cache N] \
//	    [-grace 10s]
//
// -shards MUST match the frontend's shard count: both sides hash-partition
// each document identically, and a request whose partition width disagrees
// is rejected with a topology error. Documents may be preloaded with -doc
// (same formats as gqlserver: .tsv, .bin, .gql) or arrive at runtime via
// /shard/sync when a frontend detects the mirror is stale — a gqlshard
// started empty converges on first contact.
//
// Endpoints:
//
//	POST /shard/select  one shard's selection job; NDJSON frames
//	POST /shard/sync    install a document pushed by the frontend
//	GET  /healthz       liveness + mirror census
//	GET  /metrics       Prometheus text dump
//
// On SIGTERM/SIGINT the server drains: /healthz flips to 503, in-flight
// jobs get up to -grace to finish, and the process exits 0 on a clean
// drain.
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"gqldb/internal/ast"
	"gqldb/internal/graph"
	"gqldb/internal/parser"
	"gqldb/internal/shardsrv"
)

// docFlags collects repeated -doc name=path flags.
type docFlags map[string]string

func (d docFlags) String() string { return fmt.Sprint(map[string]string(d)) }

func (d docFlags) Set(v string) error {
	name, path, ok := strings.Cut(v, "=")
	if !ok {
		return fmt.Errorf("expected name=path, got %q", v)
	}
	d[name] = path
	return nil
}

func main() {
	docs := docFlags{}
	flag.Var(docs, "doc", "document binding name=path (repeatable; .tsv, .bin or .gql)")
	addr := flag.String("addr", ":7301", "listen address")
	shards := flag.Int("shards", 1, "partition width; must equal the frontend's -shards")
	indexLen := flag.Int("index-paths", 0, "per-shard path-feature index max length (0 disables)")
	workers := flag.Int("workers", 0, "cap on shard-local match fan-out (0 = GOMAXPROCS)")
	maxBody := flag.Int64("max-body", 64<<20, "request body cap in bytes (select jobs and sync pushes)")
	planCache := flag.Int("plan-cache", 0, "search-plan cache capacity in entries (0 = default)")
	grace := flag.Duration("grace", 10*time.Second, "shutdown grace period for in-flight jobs")
	flag.Parse()

	srv := shardsrv.New(shardsrv.Config{
		Shards:      *shards,
		IndexMaxLen: *indexLen,
		MaxBody:     *maxBody,
		Workers:     *workers,
		PlanCap:     *planCache,
	})
	for name, path := range docs {
		coll, err := loadDoc(path)
		if err != nil {
			fail("loading %s: %v", path, err)
		}
		srv.RegisterDoc(name, coll)
		log.Printf("gqlshard: loaded document %s from %s (%d graphs)", name, path, len(coll))
	}

	l, err := net.Listen("tcp", *addr)
	if err != nil {
		fail("listen %s: %v", *addr, err)
	}
	log.Printf("gqlshard: listening on %s", l.Addr())

	hs := &http.Server{Handler: srv}
	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(l) }()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGTERM, syscall.SIGINT)
	select {
	case s := <-sig:
		log.Printf("gqlshard: received %v, draining (grace %v, %d in flight)", s, *grace, srv.Inflight())
		if err := srv.Drain(hs, *grace); err != nil {
			log.Printf("gqlshard: drain incomplete: %v", err)
			os.Exit(1)
		}
		log.Printf("gqlshard: drained cleanly")
	case err := <-errc:
		fail("serve: %v", err)
	}
}

// loadDoc reads a document: .tsv is one large graph, .bin a binary
// collection; anything else is parsed as a sequence of graph literals.
func loadDoc(path string) (graph.Collection, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	if strings.HasSuffix(path, ".tsv") {
		g, err := graph.ReadTSV(f)
		if err != nil {
			return nil, err
		}
		return graph.NewCollection(g), nil
	}
	if strings.HasSuffix(path, ".bin") {
		return graph.ReadBinary(f)
	}
	src, err := io.ReadAll(f)
	if err != nil {
		return nil, err
	}
	prog, err := parser.Parse(string(src))
	if err != nil {
		return nil, err
	}
	var coll graph.Collection
	for _, s := range prog.Stmts {
		d, ok := s.(*ast.GraphDecl)
		if !ok {
			return nil, fmt.Errorf("%s: documents may contain only graph literals", path)
		}
		g, err := d.ToGraph()
		if err != nil {
			return nil, err
		}
		coll = append(coll, g)
	}
	return coll, nil
}

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "gqlshard: "+format+"\n", args...)
	os.Exit(1)
}
