// Command gengraph writes the evaluation datasets of §5 in the TSV graph
// exchange format (see internal/graph.WriteTSV).
//
// Usage:
//
//	gengraph -kind ppi -o yeast.tsv
//	gengraph -kind er -n 10000 -m 50000 -labels 100 -o syn10k.tsv
package main

import (
	"flag"
	"fmt"
	"os"

	"gqldb/internal/gen"
	"gqldb/internal/graph"
)

func main() {
	kind := flag.String("kind", "er", "dataset kind: ppi | er")
	n := flag.Int("n", 10000, "nodes (er)")
	m := flag.Int("m", 50000, "edges (er)")
	labels := flag.Int("labels", 100, "distinct labels (er)")
	seed := flag.Int64("seed", 2008, "random seed")
	out := flag.String("o", "", "output file (default stdout)")
	flag.Parse()

	var g *graph.Graph
	switch *kind {
	case "ppi":
		g = gen.YeastPPI(*seed)
	case "er":
		g = gen.ER(*n, *m, *labels, *seed)
	default:
		fmt.Fprintf(os.Stderr, "gengraph: unknown kind %q\n", *kind)
		os.Exit(2)
	}

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintf(os.Stderr, "gengraph: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}
	if err := graph.WriteTSV(w, g); err != nil {
		fmt.Fprintf(os.Stderr, "gengraph: %v\n", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "gengraph: wrote %s (%d nodes, %d edges)\n", g.Name, g.NumNodes(), g.NumEdges())
}
