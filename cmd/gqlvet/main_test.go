package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// runDriver invokes run() against a fixture module and returns the exit
// code with captured stdout/stderr.
func runDriver(t *testing.T, args ...string) (int, string, string) {
	t.Helper()
	var stdout, stderr bytes.Buffer
	code := run(args, &stdout, &stderr)
	return code, stdout.String(), stderr.String()
}

func dirtyRoot() string { return filepath.Join("testdata", "dirty") }
func cleanRoot() string { return filepath.Join("testdata", "clean") }

// TestRunTextOutput pins the text format and the findings exit code.
func TestRunTextOutput(t *testing.T) {
	code, out, errOut := runDriver(t, "-root", dirtyRoot())
	if code != 1 {
		t.Fatalf("exit = %d, want 1; stderr: %s", code, errOut)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 2 {
		t.Fatalf("got %d finding lines, want 2:\n%s", len(lines), out)
	}
	wantFile := filepath.Join(dirtyRoot(), "internal", "match", "match.go")
	if !strings.HasPrefix(lines[0], wantFile+":9:2: [panicfree]") ||
		!strings.Contains(lines[0], "panic in hot-path function Boom") {
		t.Errorf("line 0 = %q, want %s:9:2: [panicfree] panic in hot-path function Boom ...", lines[0], wantFile)
	}
	if !strings.HasPrefix(lines[1], wantFile+":14:") || !strings.Contains(lines[1], "[errwrap]") {
		t.Errorf("line 1 = %q, want %s:14: [errwrap] ...", lines[1], wantFile)
	}
	if !strings.Contains(errOut, "2 finding(s)") {
		t.Errorf("stderr = %q, want finding count", errOut)
	}
}

// TestRunJSONOutput pins the -json document shape.
func TestRunJSONOutput(t *testing.T) {
	code, out, _ := runDriver(t, "-json", "-root", dirtyRoot())
	if code != 1 {
		t.Fatalf("exit = %d, want 1", code)
	}
	var report jsonReport
	if err := json.Unmarshal([]byte(out), &report); err != nil {
		t.Fatalf("unmarshaling -json output: %v\n%s", err, out)
	}
	if report.Count != 2 || len(report.Findings) != 2 {
		t.Fatalf("count = %d, findings = %d, want 2/2", report.Count, len(report.Findings))
	}
	f := report.Findings[0]
	if f.Analyzer != "panicfree" || f.Line != 9 || f.Col != 2 ||
		!strings.HasSuffix(f.File, filepath.Join("match", "match.go")) ||
		!strings.Contains(f.Message, "hot-path function Boom") {
		t.Errorf("finding = %+v, want panicfree at match.go:9:2", f)
	}
}

// TestRunCleanModule pins the zero exit code and empty output.
func TestRunCleanModule(t *testing.T) {
	code, out, errOut := runDriver(t, "-root", cleanRoot())
	if code != 0 {
		t.Fatalf("exit = %d, want 0; stderr: %s", code, errOut)
	}
	if out != "" {
		t.Errorf("stdout = %q, want empty", out)
	}
	code, out, _ = runDriver(t, "-json", "-root", cleanRoot())
	if code != 0 {
		t.Fatalf("-json exit = %d, want 0", code)
	}
	var report jsonReport
	if err := json.Unmarshal([]byte(out), &report); err != nil {
		t.Fatalf("unmarshaling: %v", err)
	}
	if report.Count != 0 || report.Findings == nil {
		t.Errorf("clean -json = %+v, want count 0 with non-null findings array", report)
	}
}

// TestRunOutputFile pins -o: findings land in the file, not stdout.
func TestRunOutputFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "vet.json")
	code, out, _ := runDriver(t, "-json", "-o", path, "-root", dirtyRoot())
	if code != 1 {
		t.Fatalf("exit = %d, want 1", code)
	}
	if out != "" {
		t.Errorf("stdout = %q, want empty with -o", out)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("reading -o file: %v", err)
	}
	var report jsonReport
	if err := json.Unmarshal(data, &report); err != nil {
		t.Fatalf("unmarshaling -o file: %v", err)
	}
	if report.Count != 2 {
		t.Errorf("count = %d, want 2", report.Count)
	}
}

// TestRunAnalyzerSelection pins -only and -disable.
func TestRunAnalyzerSelection(t *testing.T) {
	code, out, _ := runDriver(t, "-only", "errwrap", "-root", dirtyRoot())
	if code != 1 || strings.Contains(out, "panicfree") || !strings.Contains(out, "errwrap") {
		t.Errorf("-only errwrap: exit %d output %q", code, out)
	}
	code, out, _ = runDriver(t, "-disable", "errwrap,panicfree", "-root", dirtyRoot())
	if code != 0 || out != "" {
		t.Errorf("-disable errwrap,panicfree: exit %d output %q, want clean", code, out)
	}
}

// TestRunUsageErrors pins exit code 2 for bad invocations.
func TestRunUsageErrors(t *testing.T) {
	for _, args := range [][]string{
		{"-only", "nosuch", "-root", dirtyRoot()},
		{"-disable", "nosuch", "-root", dirtyRoot()},
		{"-disable", "panicfree,valuecmp,gosafe,errwrap,recbound,ctxpoll,detmerge,aliasguard", "-root", dirtyRoot()},
		{"-root", filepath.Join("testdata", "nonexistent")},
		{"-badflag"},
	} {
		code, _, errOut := runDriver(t, args...)
		if code != 2 {
			t.Errorf("args %v: exit = %d, want 2 (stderr %q)", args, code, errOut)
		}
	}
}

// BenchmarkVet measures a full driver pass — parse, type-check, all eight
// analyzers — over the dirty fixture module. Tracked in BENCH_vet.json via
// make bench-vet.
func BenchmarkVet(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		var stdout, stderr bytes.Buffer
		if code := run([]string{"-root", dirtyRoot()}, &stdout, &stderr); code != 1 {
			b.Fatalf("exit = %d, want 1; stderr: %s", code, stderr.String())
		}
	}
}

// TestRunList pins -list output to the full suite.
func TestRunList(t *testing.T) {
	code, out, _ := runDriver(t, "-list")
	if code != 0 {
		t.Fatalf("-list exit = %d, want 0", code)
	}
	for _, name := range []string{"panicfree", "valuecmp", "gosafe", "errwrap",
		"recbound", "ctxpoll", "detmerge", "aliasguard"} {
		if !strings.Contains(out, name) {
			t.Errorf("-list output missing %s", name)
		}
	}
}
