// Command gqlvet runs gqldb's project-specific static-analysis suite (see
// internal/analysis) over the module: panicfree, valuecmp, gosafe, errwrap
// and recbound. It prints one file:line:col: [analyzer] message line per
// finding and exits non-zero when anything is flagged, so it can gate CI
// next to go vet.
//
// Usage:
//
//	gqlvet [-list] [-only name,name] [packages]
//
// The package arguments are accepted for command-line compatibility with
// go vet ("gqlvet ./...") but the whole module containing the working
// directory is always loaded: the analyzers are cheap and cross-package
// (gosafe and panicfree reason about types defined elsewhere), so partial
// loads would only produce partial truths.
package main

import (
	"flag"
	"fmt"
	"go/token"
	"os"
	"path/filepath"
	"strings"

	"gqldb/internal/analysis"
)

func main() {
	list := flag.Bool("list", false, "list analyzers and exit")
	only := flag.String("only", "", "comma-separated analyzer names to run (default: all)")
	flag.Parse()

	if *list {
		for _, a := range analysis.All() {
			fmt.Printf("%-10s %s\n", a.Name, a.Doc)
		}
		return
	}

	analyzers, err := selectAnalyzers(*only)
	if err != nil {
		fmt.Fprintln(os.Stderr, "gqlvet:", err)
		os.Exit(2)
	}

	root, err := findModuleRoot()
	if err != nil {
		fmt.Fprintln(os.Stderr, "gqlvet:", err)
		os.Exit(2)
	}
	fset := token.NewFileSet()
	passes, err := analysis.LoadModule(fset, root)
	if err != nil {
		fmt.Fprintln(os.Stderr, "gqlvet:", err)
		os.Exit(2)
	}
	diags := analysis.Run(passes, analyzers)
	for _, d := range diags {
		fmt.Println(d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "gqlvet: %d finding(s)\n", len(diags))
		os.Exit(1)
	}
}

// selectAnalyzers resolves the -only flag against the suite.
func selectAnalyzers(only string) ([]*analysis.Analyzer, error) {
	all := analysis.All()
	if only == "" {
		return all, nil
	}
	byName := map[string]*analysis.Analyzer{}
	for _, a := range all {
		byName[a.Name] = a
	}
	var out []*analysis.Analyzer
	for _, name := range strings.Split(only, ",") {
		a, ok := byName[strings.TrimSpace(name)]
		if !ok {
			return nil, fmt.Errorf("unknown analyzer %q (try -list)", name)
		}
		out = append(out, a)
	}
	return out, nil
}

// findModuleRoot walks up from the working directory to the nearest go.mod.
func findModuleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod above %s", dir)
		}
		dir = parent
	}
}
