// Command gqlvet runs gqldb's project-specific static-analysis suite (see
// internal/analysis) over the module: panicfree, valuecmp, gosafe, errwrap,
// recbound, ctxpoll, detmerge and aliasguard. It prints one
// file:line:col: [analyzer] message line per finding and exits non-zero
// when anything is flagged, so it can gate CI next to go vet.
//
// Usage:
//
//	gqlvet [-list] [-only name,...] [-disable name,...] [-json] [-o file]
//	       [-root dir] [-tests] [packages]
//
// The package arguments are accepted for command-line compatibility with
// go vet ("gqlvet ./...") but the whole module containing the working
// directory (or -root) is always loaded: the analyzers are cheap and
// cross-package (gosafe and panicfree reason about types defined
// elsewhere), so partial loads would only produce partial truths.
//
// Exit codes: 0 clean, 1 findings, 2 usage or load error.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"go/token"
	"io"
	"os"
	"path/filepath"
	"strings"

	"gqldb/internal/analysis"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// jsonFinding is one diagnostic in -json output.
type jsonFinding struct {
	Analyzer string `json:"analyzer"`
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Message  string `json:"message"`
}

// jsonReport is the -json document.
type jsonReport struct {
	Count    int           `json:"count"`
	Findings []jsonFinding `json:"findings"`
}

// run is the driver body, separated from main for testing: it parses args,
// loads the module, applies the analyzer selection and renders findings to
// stdout (or -o). The return value is the process exit code.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("gqlvet", flag.ContinueOnError)
	fs.SetOutput(stderr)
	list := fs.Bool("list", false, "list analyzers and exit")
	only := fs.String("only", "", "comma-separated analyzer names to run (default: all)")
	disable := fs.String("disable", "", "comma-separated analyzer names to skip")
	asJSON := fs.Bool("json", false, "emit findings as a JSON document instead of text lines")
	outPath := fs.String("o", "", "write findings to this file instead of stdout")
	rootFlag := fs.String("root", "", "module root to analyze (default: nearest go.mod above the working directory)")
	tests := fs.Bool("tests", false, "also analyze _test.go files")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if *list {
		for _, a := range analysis.All() {
			fmt.Fprintf(stdout, "%-10s %s\n", a.Name, a.Doc)
		}
		return 0
	}

	analyzers, err := selectAnalyzers(*only, *disable)
	if err != nil {
		fmt.Fprintln(stderr, "gqlvet:", err)
		return 2
	}

	root := *rootFlag
	if root == "" {
		root, err = findModuleRoot()
		if err != nil {
			fmt.Fprintln(stderr, "gqlvet:", err)
			return 2
		}
	}
	fset := token.NewFileSet()
	passes, err := analysis.LoadModuleOpts(fset, root, analysis.LoadOptions{IncludeTests: *tests})
	if err != nil {
		fmt.Fprintln(stderr, "gqlvet:", err)
		return 2
	}
	diags := analysis.Run(passes, analyzers)

	out := stdout
	if *outPath != "" {
		f, err := os.Create(*outPath)
		if err != nil {
			fmt.Fprintln(stderr, "gqlvet:", err)
			return 2
		}
		defer f.Close()
		out = f
	}
	if *asJSON {
		report := jsonReport{Count: len(diags), Findings: []jsonFinding{}}
		for _, d := range diags {
			report.Findings = append(report.Findings, jsonFinding{
				Analyzer: d.Analyzer,
				File:     d.Pos.Filename,
				Line:     d.Pos.Line,
				Col:      d.Pos.Column,
				Message:  d.Message,
			})
		}
		enc := json.NewEncoder(out)
		enc.SetIndent("", "  ")
		if err := enc.Encode(report); err != nil {
			fmt.Fprintln(stderr, "gqlvet:", err)
			return 2
		}
	} else {
		for _, d := range diags {
			fmt.Fprintln(out, d)
		}
	}
	if len(diags) > 0 {
		fmt.Fprintf(stderr, "gqlvet: %d finding(s)\n", len(diags))
		return 1
	}
	return 0
}

// selectAnalyzers resolves the -only and -disable flags against the suite.
func selectAnalyzers(only, disable string) ([]*analysis.Analyzer, error) {
	all := analysis.All()
	byName := map[string]*analysis.Analyzer{}
	for _, a := range all {
		byName[a.Name] = a
	}
	names := func(csv string) ([]string, error) {
		var out []string
		for _, name := range strings.Split(csv, ",") {
			name = strings.TrimSpace(name)
			if name == "" {
				continue
			}
			if _, ok := byName[name]; !ok {
				return nil, fmt.Errorf("unknown analyzer %q (try -list)", name)
			}
			out = append(out, name)
		}
		return out, nil
	}

	selected := all
	if only != "" {
		want, err := names(only)
		if err != nil {
			return nil, err
		}
		selected = nil
		for _, n := range want {
			selected = append(selected, byName[n])
		}
	}
	if disable != "" {
		skip, err := names(disable)
		if err != nil {
			return nil, err
		}
		skipSet := map[string]bool{}
		for _, n := range skip {
			skipSet[n] = true
		}
		var kept []*analysis.Analyzer
		for _, a := range selected {
			if !skipSet[a.Name] {
				kept = append(kept, a)
			}
		}
		selected = kept
	}
	if len(selected) == 0 {
		return nil, fmt.Errorf("no analyzers selected")
	}
	return selected, nil
}

// findModuleRoot walks up from the working directory to the nearest go.mod.
func findModuleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod above %s", dir)
		}
		dir = parent
	}
}
