// Package cleanmod has nothing for any analyzer to say.
package cleanmod

// Two returns 2.
func Two() int { return 2 }
