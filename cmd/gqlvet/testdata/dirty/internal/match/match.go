// Package match trips two analyzers deterministically for the driver
// golden test.
package match

import "fmt"

// Boom trips panicfree.
func Boom() {
	panic("match: boom")
}

// Bad trips errwrap (unprefixed message, no %w).
func Bad() error {
	return fmt.Errorf("no prefix here")
}
