// Command gqlshell runs GraphQL programs (§3.4 FLWR syntax) against graph
// documents.
//
// Usage:
//
//	gqlshell -doc name=file.tsv [-doc name2=file2.gql] [query.gql]
//	gqlshell -doc DBLP=examples/queries/dblp.gql examples/queries/coauthors.gql
//
// Documents are loaded from TSV exchange files (a single large graph),
// .bin binary collections, or .gql text files (a sequence of graph
// literals forming a collection). The query is read from the argument file
// or stdin. Graphs produced by return clauses and the final values of
// graph variables are printed in the language's text syntax.
//
// Observability: a query beginning with the word EXPLAIN runs with tracing
// enabled and prints the evaluation span tree (per-operator wall time,
// fan-out, candidate/pruning counts and search-space reduction ratios)
// instead of the result graphs; PROFILE prints the results *and* the trace
// plus a Prometheus-style dump of the process metrics. The -workers,
// -slow and -metrics flags configure the engine fan-out, the slow-query
// log threshold and an unconditional metrics dump.
//
// Storage: -shards partitions every document into N hash shards whose
// selections fan out concurrently and merge deterministically (output is
// byte-identical to the unsharded scan); -index-paths builds a per-shard
// path-feature index of the given maximum length at load; -cache enables
// an N-entry LRU result cache keyed on (canonical program, store
// version) — mostly useful when piping several identical programs
// through one shell invocation.
//
// Mutations: a program consisting solely of mutation statements (create
// graph / drop graph / insert node / insert edge / delete node / delete
// edge) is applied as one all-or-nothing batch and prints a commit
// summary instead of result rows. -wal DIR makes those writes durable:
// the batch is fsynced into a write-ahead log under DIR before the
// summary prints, and the next invocation pointing at the same DIR
// replays checkpoint + log over the -doc bootstrap, so mutations persist
// across runs.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"sort"
	"strings"
	"time"

	"gqldb/internal/ast"
	"gqldb/internal/exec"
	"gqldb/internal/graph"
	"gqldb/internal/match"
	"gqldb/internal/obs"
	"gqldb/internal/parser"
	"gqldb/internal/stats"
	"gqldb/internal/store"
)

// docFlags collects repeated -doc name=path flags.
type docFlags map[string]string

func (d docFlags) String() string { return fmt.Sprint(map[string]string(d)) }

func (d docFlags) Set(v string) error {
	name, path, ok := strings.Cut(v, "=")
	if !ok {
		return fmt.Errorf("expected name=path, got %q", v)
	}
	d[name] = path
	return nil
}

func main() {
	docs := docFlags{}
	flag.Var(docs, "doc", "document binding name=path (repeatable; .tsv, .bin or .gql)")
	verbose := flag.Bool("v", false, "verbose: print matched-variable summary")
	workers := flag.Int("workers", 0, "for-clause fan-out (0/1 serial, negative GOMAXPROCS)")
	slow := flag.Duration("slow", 0, "slow-query log threshold (0 disables; e.g. 100ms)")
	metrics := flag.Bool("metrics", false, "dump process metrics (Prometheus text format) after the run")
	shards := flag.Int("shards", 1, "hash partitions per document; >1 fans selection across shards")
	cache := flag.Int("cache", 0, "result cache capacity in entries (0 disables; single-shot runs rarely benefit)")
	planCache := flag.Int("plan-cache", 0, "search-plan cache capacity in entries (0 disables; pays off when one program repeats a pattern)")
	indexLen := flag.Int("index-paths", 0, "per-shard path-feature index max length (0 disables)")
	walDir := flag.String("wal", "", "durability directory; mutation programs append to a write-ahead log there and replay on the next run")
	walSync := flag.Bool("wal-sync", true, "fsync the WAL before acknowledging each mutation batch")
	flag.Parse()

	// Document bootstrap, shared by the plain and durable stores: sorted
	// for determinism, skipping documents a durability checkpoint already
	// restored.
	bootstrap := func(ds *store.DocStore) error {
		names := make([]string, 0, len(docs))
		for name := range docs {
			names = append(names, name)
		}
		sort.Strings(names)
		present := ds.Snapshot()
		for _, name := range names {
			if _, ok := present.Doc(name); ok {
				continue
			}
			coll, err := loadDoc(docs[name])
			if err != nil {
				return fmt.Errorf("loading %s: %w", docs[name], err)
			}
			ds.RegisterDoc(name, coll)
		}
		return nil
	}

	// With -wal the store is durable: this run starts from the previous
	// run's mutations (checkpoint + WAL replay over the -doc bootstrap) and
	// its own mutation programs are fsynced into the log before the summary
	// prints.
	sopts := store.Options{Shards: *shards, IndexMaxLen: *indexLen}
	var st store.Store
	if *walDir != "" {
		d, err := store.OpenDurable(sopts, store.DurableOptions{
			Dir: *walDir, Sync: *walSync, Bootstrap: bootstrap,
		})
		if err != nil {
			fail("opening durable store: %v", err)
		}
		defer d.Close()
		st = d
	} else {
		ds := store.New(sopts)
		if err := bootstrap(ds); err != nil {
			fail("%v", err)
		}
		st = ds
	}

	var src []byte
	var err error
	if flag.NArg() > 0 {
		src, err = os.ReadFile(flag.Arg(0))
	} else {
		src, err = io.ReadAll(os.Stdin)
	}
	if err != nil {
		fail("reading query: %v", err)
	}

	mode, query := splitDirective(string(src))

	e := exec.NewOver(st)
	if *cache > 0 {
		e.Cache = store.NewCache(*cache)
	}
	if *planCache > 0 {
		e.Plans = match.NewPlanCache(*planCache)
	}
	e.Workers = *workers
	e.SlowQuery = *slow
	e.SlowQueryLog = func(r obs.SlowQueryRecord) { fmt.Fprintf(os.Stderr, "gqlshell: %s\n", r) }
	e.Trace = mode != ""

	// A program consisting solely of mutation statements routes down the
	// write path: one all-or-nothing batch, a printed summary instead of
	// result rows, and (under -wal) WAL durability before the summary.
	if prog, perr := parser.Parse(query); perr == nil && ast.IsMutationProgram(prog) {
		sum, err := e.Mutate(context.Background(), query)
		if err != nil {
			fail("%v", err)
		}
		printMutationSummary(sum)
		return
	}

	// StreamQuery owns parsing (the parse phase is a child span of the
	// traced run) and the result cache; result graphs print as the pipeline
	// emits them, so the first rows of a long-running program appear before
	// the selection finishes.
	sink := &printSink{quiet: mode == "explain"}
	res, err := e.StreamQuery(context.Background(), query, sink, exec.StreamOptions{Take: exec.AllRows})
	if err != nil {
		fail("%v", err)
	}

	if mode != "explain" {
		names := make([]string, 0, len(res.Vars))
		for name := range res.Vars {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			fmt.Printf("// variable %s\n%s;\n", name, res.Vars[name])
		}
	}
	if mode != "" {
		renderTrace(os.Stdout, res)
	}
	if mode == "profile" || *metrics {
		fmt.Println("// metrics")
		if err := obs.WritePrometheus(os.Stdout); err != nil {
			fail("writing metrics: %v", err)
		}
	}
	if *verbose {
		fmt.Fprintf(os.Stderr, "gqlshell: %d result graphs, %d variables\n", res.Rows, len(res.Vars))
	}
}

// printMutationSummary prints a mutation batch's commit summary as one
// comment line per non-zero counter.
func printMutationSummary(sum *exec.MutationSummary) {
	fmt.Printf("// applied %d mutation(s) at version %d\n", sum.Mutations, sum.Version)
	for _, c := range []struct {
		name string
		n    int
	}{
		{"graphs created", sum.GraphsCreated},
		{"graphs dropped", sum.GraphsDropped},
		{"nodes added", sum.NodesAdded},
		{"edges added", sum.EdgesAdded},
		{"nodes deleted", sum.NodesDeleted},
		{"edges deleted", sum.EdgesDeleted},
	} {
		if c.n > 0 {
			fmt.Printf("//   %s: %d\n", c.name, c.n)
		}
	}
}

// printSink streams result graphs to stdout as the engine emits them
// (suppressed in explain mode, which only wants the trace).
type printSink struct {
	quiet bool
	n     int
}

func (s *printSink) Emit(g *graph.Graph) error {
	if !s.quiet {
		fmt.Printf("// result %d\n%s;\n", s.n, g)
	}
	s.n++
	return nil
}

// splitDirective strips a leading EXPLAIN or PROFILE keyword (case-
// insensitive, delimited by whitespace) off the query text, returning the
// lowered mode ("" when absent) and the remaining program source.
func splitDirective(src string) (mode, rest string) {
	trimmed := strings.TrimLeftFunc(src, func(r rune) bool {
		return r == ' ' || r == '\t' || r == '\n' || r == '\r'
	})
	for _, kw := range []string{"explain", "profile"} {
		if len(trimmed) > len(kw) && strings.EqualFold(trimmed[:len(kw)], kw) {
			if c := trimmed[len(kw)]; c == ' ' || c == '\t' || c == '\n' || c == '\r' {
				return kw, trimmed[len(kw)+1:]
			}
		}
	}
	return "", src
}

// renderTrace prints the span tree, the per-operator table (from the
// engine's OpStat records) and the per-selection reduction table computed
// from the span counters, reusing the §5 harness formatting helpers.
func renderTrace(w io.Writer, res *exec.StreamResult) {
	fmt.Fprintln(w, "// trace")
	fmt.Fprint(w, res.Trace.Render())

	if res.Stats != nil && len(res.Stats.Ops) > 0 {
		t := &stats.Table{
			Title:   "// operators",
			Headers: []string{"op", "items", "workers", "wall_ms"},
		}
		for _, op := range res.Stats.Ops {
			t.AddRow(op.Op, fmt.Sprint(op.Items), fmt.Sprint(op.Workers),
				stats.FmtMs(float64(op.Wall)/float64(time.Millisecond)))
		}
		fmt.Fprint(w, t.Format())
	}

	sel := &stats.Table{
		Title:   "// selection search space",
		Headers: []string{"pattern", "baseline", "local", "refined", "matches", "reduction"},
	}
	res.Trace.Walk(func(_ int, sp *obs.Span) {
		if sp.Name != "selection" {
			return
		}
		name := "?"
		for _, a := range sp.Attrs() {
			if a.Key == "pattern" {
				name = a.Val
			}
		}
		base, local := sp.Count("cand_baseline"), sp.Count("cand_local")
		refined := sp.Count("cand_refined")
		sel.AddRow(name, fmt.Sprint(base), fmt.Sprint(local), fmt.Sprint(refined),
			fmt.Sprint(sp.Count("matches")), reductionCell(refined, base))
	})
	if len(sel.Rows) > 0 {
		fmt.Fprint(w, sel.Format())
	}

	// Plan-cache effectiveness, when plan caching ran: per-selection hit and
	// miss counts against the engine's plan cache.
	pc := &stats.Table{
		Title:   "// plan cache",
		Headers: []string{"pattern", "hits", "misses"},
	}
	res.Trace.Walk(func(_ int, sp *obs.Span) {
		if sp.Name != "selection" {
			return
		}
		hits, misses := sp.Count("plan_cache_hits"), sp.Count("plan_cache_misses")
		if hits == 0 && misses == 0 {
			return
		}
		name := "?"
		for _, a := range sp.Attrs() {
			if a.Key == "pattern" {
				name = a.Val
			}
		}
		pc.AddRow(name, fmt.Sprint(hits), fmt.Sprint(misses))
	})
	if len(pc.Rows) > 0 {
		fmt.Fprint(w, pc.Format())
	}

	// Remote shard fan-out, when a cluster selector served the query: one
	// row per shard RPC (the coordinator's shard-rpc child spans), showing
	// which endpoint answered and whether retries, hedging, a resync or
	// allow-partial degradation were involved.
	sh := &stats.Table{
		Title:   "// shards",
		Headers: []string{"shard", "endpoint", "attempts", "wall_ms", "flags"},
	}
	res.Trace.Walk(func(_ int, sp *obs.Span) {
		if sp.Name != "shard-rpc" {
			return
		}
		endpoint := "?"
		for _, a := range sp.Attrs() {
			if a.Key == "endpoint" {
				endpoint = a.Val
			}
		}
		var flags []string
		if sp.Count("hedged") > 0 {
			flags = append(flags, "hedged")
		}
		if sp.Count("hedge_won") > 0 {
			flags = append(flags, "hedge-won")
		}
		if sp.Count("resynced") > 0 {
			flags = append(flags, "resynced")
		}
		if sp.Count("degraded") > 0 {
			flags = append(flags, "degraded")
		}
		sh.AddRow(fmt.Sprint(sp.Count("shard")), endpoint,
			fmt.Sprint(sp.Count("attempts")),
			stats.FmtMs(float64(sp.Count("wall_us"))/1000), strings.Join(flags, ","))
	})
	if len(sh.Rows) > 0 {
		fmt.Fprint(w, sh.Format())
	}
}

// reductionCell renders the candidate-count reduction refined/baseline in
// the figures' log scale (stats.ReductionRatioLog10 over log10 counts).
func reductionCell(refined, baseline int64) string {
	switch {
	case baseline == 0:
		return "n/a"
	case refined == 0:
		return "empty"
	}
	return stats.FmtLog(stats.ReductionRatioLog10(
		math.Log10(float64(refined)), math.Log10(float64(baseline))))
}

// loadDoc reads a document: .tsv is one large graph, .bin a binary
// collection; anything else is parsed as a sequence of graph literals.
func loadDoc(path string) (graph.Collection, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	if strings.HasSuffix(path, ".tsv") {
		g, err := graph.ReadTSV(f)
		if err != nil {
			return nil, err
		}
		return graph.NewCollection(g), nil
	}
	if strings.HasSuffix(path, ".bin") {
		return graph.ReadBinary(f)
	}
	src, err := io.ReadAll(f)
	if err != nil {
		return nil, err
	}
	prog, err := parser.Parse(string(src))
	if err != nil {
		return nil, err
	}
	var coll graph.Collection
	for _, s := range prog.Stmts {
		d, ok := s.(*ast.GraphDecl)
		if !ok {
			return nil, fmt.Errorf("%s: documents may contain only graph literals", path)
		}
		g, err := d.ToGraph()
		if err != nil {
			return nil, err
		}
		coll = append(coll, g)
	}
	return coll, nil
}

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "gqlshell: "+format+"\n", args...)
	os.Exit(1)
}
