// Command gqlshell runs GraphQL programs (§3.4 FLWR syntax) against graph
// documents.
//
// Usage:
//
//	gqlshell -doc name=file.tsv [-doc name2=file2.gql] [query.gql]
//	gqlshell -doc DBLP=examples/queries/dblp.gql examples/queries/coauthors.gql
//
// Documents are loaded from TSV exchange files (a single large graph),
// .bin binary collections, or .gql text files (a sequence of graph
// literals forming a collection). The query is read from the argument file
// or stdin. Graphs produced by return clauses and the final values of
// graph variables are printed in the language's text syntax.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"

	"gqldb/internal/ast"
	"gqldb/internal/exec"
	"gqldb/internal/graph"
	"gqldb/internal/parser"
)

// docFlags collects repeated -doc name=path flags.
type docFlags map[string]string

func (d docFlags) String() string { return fmt.Sprint(map[string]string(d)) }

func (d docFlags) Set(v string) error {
	name, path, ok := strings.Cut(v, "=")
	if !ok {
		return fmt.Errorf("expected name=path, got %q", v)
	}
	d[name] = path
	return nil
}

func main() {
	docs := docFlags{}
	flag.Var(docs, "doc", "document binding name=path (repeatable; .tsv, .bin or .gql)")
	exhaustiveDefault := flag.Bool("v", false, "verbose: print matched-variable summary")
	flag.Parse()

	store := exec.Store{}
	for name, path := range docs {
		coll, err := loadDoc(path)
		if err != nil {
			fail("loading %s: %v", path, err)
		}
		store[name] = coll
	}

	var src []byte
	var err error
	if flag.NArg() > 0 {
		src, err = os.ReadFile(flag.Arg(0))
	} else {
		src, err = io.ReadAll(os.Stdin)
	}
	if err != nil {
		fail("reading query: %v", err)
	}

	prog, err := parser.Parse(string(src))
	if err != nil {
		fail("%v", err)
	}
	res, err := exec.New(store).Run(prog)
	if err != nil {
		fail("%v", err)
	}

	for i, g := range res.Out {
		fmt.Printf("// result %d\n%s;\n", i, g)
	}
	names := make([]string, 0, len(res.Vars))
	for name := range res.Vars {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		fmt.Printf("// variable %s\n%s;\n", name, res.Vars[name])
	}
	if *exhaustiveDefault {
		fmt.Fprintf(os.Stderr, "gqlshell: %d result graphs, %d variables\n", len(res.Out), len(res.Vars))
	}
}

// loadDoc reads a document: .tsv is one large graph, .bin a binary
// collection; anything else is parsed as a sequence of graph literals.
func loadDoc(path string) (graph.Collection, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	if strings.HasSuffix(path, ".tsv") {
		g, err := graph.ReadTSV(f)
		if err != nil {
			return nil, err
		}
		return graph.NewCollection(g), nil
	}
	if strings.HasSuffix(path, ".bin") {
		return graph.ReadBinary(f)
	}
	src, err := io.ReadAll(f)
	if err != nil {
		return nil, err
	}
	prog, err := parser.Parse(string(src))
	if err != nil {
		return nil, err
	}
	var coll graph.Collection
	for _, s := range prog.Stmts {
		d, ok := s.(*ast.GraphDecl)
		if !ok {
			return nil, fmt.Errorf("%s: documents may contain only graph literals", path)
		}
		g, err := d.ToGraph()
		if err != nil {
			return nil, err
		}
		coll = append(coll, g)
	}
	return coll, nil
}

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "gqlshell: "+format+"\n", args...)
	os.Exit(1)
}
