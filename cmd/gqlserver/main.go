// Command gqlserver serves GraphQL (He & Singh) queries over HTTP: the
// production frontend over the embedded query engine.
//
// Usage:
//
//	gqlserver -addr :8080 -doc name=file.tsv [-doc name2=file2.gql] \
//	    [-workers N] [-max-inflight N] [-timeout 30s] [-max-body 1048576] \
//	    [-grace 10s] [-slow 100ms] [-shards N] [-cache N] [-index-paths L] \
//	    [-flush-interval 100ms] [-max-take N] \
//	    [-selector http://host:port ...] [-shard-timeout 10s] \
//	    [-shard-retries 2] [-shard-hedge-after 30ms] [-allow-partial] \
//	    [-admin] [-wal DIR] [-wal-sync] [-checkpoint-every N]
//
// -selector (repeatable) turns the process into a cluster frontend:
// selection fans out to the listed gqlshard endpoints over the store wire
// protocol instead of evaluating in-process, with per-attempt timeouts
// (-shard-timeout), bounded retry rotation across replicas
// (-shard-retries), optional hedging (-shard-hedge-after) and explicit
// degradation (-allow-partial). Every endpoint's health is probed in the
// background and reported on /healthz. -admin mounts the write surface
// (POST /admin/doc for runtime document registration, POST /v2/mutate for
// mutation programs — trusted operators only).
//
// -wal DIR makes the store durable: mutation batches are fsynced into an
// append-only write-ahead log under DIR before they are acknowledged
// (-wal-sync=false trades that for speed), a checkpoint compacts the log
// every -checkpoint-every batches, and a restart replays checkpoint + log
// over the -doc bootstrap to reach the exact pre-crash store.
//
// -shards partitions every document into N hash shards whose selections fan
// out concurrently and merge deterministically; -index-paths builds a
// per-shard path-feature index of length L at registration; -cache enables
// an N-entry LRU result cache keyed on (program, store version), so
// repeated queries are served without re-evaluation until a document
// changes. -flush-interval paces the periodic flushes of streamed v2
// responses (a negative value flushes after every row); -max-take caps how
// many rows one v2 request may take — larger (or unlimited) requests are
// truncated at the cap and handed a next_skip cursor to resume from.
//
// Documents are loaded at startup from TSV exchange files (a single large
// graph), .bin binary collections, or .gql text files (a sequence of graph
// literals), exactly as in gqlshell. Endpoints:
//
//	POST /query    {"query": "...", "timeout_ms": 0, "workers": 0} or a raw
//	               program body; buffered JSON results (the frozen v1 shape)
//	POST /explain  same request shape; JSON span tree + per-operator table
//	POST /v2/query same envelope plus skip/take/project; streaming NDJSON
//	               rows with cursor pagination and per-row projection
//	POST /v2/batch {"queries": [...]}; several programs on one store
//	               snapshot, one NDJSON stream tagged by query index
//	GET  /v2/schema loaded docs, store version, attribute inventory
//	POST /v2/mutate apply a mutation program as one all-or-nothing batch
//	               (mounted under -admin; durable before 200 under -wal)
//	GET  /metrics  Prometheus text dump
//	GET  /debug/vars  expvar
//	GET  /healthz  liveness, drain state, in-flight count
//
// On SIGTERM/SIGINT the server drains: admission stops (new queries get
// 503, /healthz flips to 503 draining), in-flight queries get up to -grace
// to finish, stragglers are context-cancelled, a final metrics snapshot is
// written to stderr, and the process exits 0 on a clean drain.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"sort"
	"strings"
	"syscall"

	"gqldb/internal/ast"
	"gqldb/internal/exec"
	"gqldb/internal/graph"
	"gqldb/internal/match"
	"gqldb/internal/obs"
	"gqldb/internal/parser"
	"gqldb/internal/server"
	"gqldb/internal/store"
	"time"
)

// endpointFlags collects repeated -selector URL flags.
type endpointFlags []string

func (e *endpointFlags) String() string { return strings.Join(*e, ",") }

func (e *endpointFlags) Set(v string) error {
	if v == "" {
		return fmt.Errorf("empty endpoint")
	}
	*e = append(*e, v)
	return nil
}

// docFlags collects repeated -doc name=path flags.
type docFlags map[string]string

func (d docFlags) String() string { return fmt.Sprint(map[string]string(d)) }

func (d docFlags) Set(v string) error {
	name, path, ok := strings.Cut(v, "=")
	if !ok {
		return fmt.Errorf("expected name=path, got %q", v)
	}
	d[name] = path
	return nil
}

func main() {
	docs := docFlags{}
	flag.Var(docs, "doc", "document binding name=path (repeatable; .tsv, .bin or .gql)")
	addr := flag.String("addr", ":8080", "listen address")
	workers := flag.Int("workers", 0, "default for-clause fan-out (0/1 serial, negative GOMAXPROCS)")
	maxInflight := flag.Int("max-inflight", 0, "admitted-query limit; excess requests get 429 (0 = 2×GOMAXPROCS)")
	timeout := flag.Duration("timeout", 30*time.Second, "default per-request deadline")
	maxTimeout := flag.Duration("max-timeout", 5*time.Minute, "cap on client-requested timeouts")
	maxBody := flag.Int64("max-body", 1<<20, "request body cap in bytes; larger bodies get 413")
	grace := flag.Duration("grace", 10*time.Second, "shutdown grace period for in-flight queries")
	slow := flag.Duration("slow", 0, "slow-query log threshold (0 disables; e.g. 100ms)")
	shards := flag.Int("shards", 1, "hash partitions per document; >1 fans selection across shards")
	cache := flag.Int("cache", 0, "result cache capacity in entries (0 disables caching)")
	planCache := flag.Int("plan-cache", 0, "search-plan cache capacity in entries (0 disables plan caching)")
	indexLen := flag.Int("index-paths", 0, "per-shard path-feature index max length (0 disables; 3 is a good default for many small graphs)")
	flushInterval := flag.Duration("flush-interval", 100*time.Millisecond, "flush pacing for streamed v2 responses (negative flushes every row)")
	maxTake := flag.Int("max-take", 0, "cap on rows one v2 request may take (0 = uncapped); capped requests get a next_skip cursor")
	var selectors endpointFlags
	flag.Var(&selectors, "selector", "shard-server base URL (repeatable); selection fans out to the cluster instead of evaluating in-process")
	shardTimeout := flag.Duration("shard-timeout", 10*time.Second, "per-attempt timeout of one shard RPC")
	shardRetries := flag.Int("shard-retries", 2, "retry budget per shard beyond the first attempt (each retry rotates to the next replica)")
	hedgeAfter := flag.Duration("shard-hedge-after", 0, "fire a duplicate shard RPC at the next replica after this delay (0 disables hedging)")
	allowPartial := flag.Bool("allow-partial", false, "degrade a dead shard to an empty answer instead of failing the query")
	probeEvery := flag.Duration("shard-probe-interval", 5*time.Second, "background health-probe interval for shard endpoints")
	admin := flag.Bool("admin", false, "mount the mutating admin surface (POST /admin/doc, POST /v2/mutate)")
	walDir := flag.String("wal", "", "durability directory; mutations append to a write-ahead log there and replay on restart")
	walSync := flag.Bool("wal-sync", true, "fsync the WAL before acknowledging each mutation batch")
	checkpointEvery := flag.Int("checkpoint-every", 0, "checkpoint the store and truncate the WAL every N batches (0 = default 256, negative disables)")
	flag.Parse()

	// With -wal the store is durable: startup replays the log over the
	// bootstrap documents, and every /v2/mutate batch is fsynced into the
	// WAL before the 200 leaves the process. Documents then MUST come from
	// -doc at startup (the deterministic bootstrap); runtime /admin/doc
	// registrations are not WAL-logged and would make the next restart
	// refuse to replay.
	sopts := store.Options{Shards: *shards, IndexMaxLen: *indexLen}
	var st store.Store
	if *walDir != "" {
		d, err := store.OpenDurable(sopts, store.DurableOptions{
			Dir: *walDir, Sync: *walSync, CheckpointEvery: *checkpointEvery,
			Bootstrap: bootstrapDocs(docs),
		})
		if err != nil {
			fail("opening durable store: %v", err)
		}
		defer d.Close()
		log.Printf("gqlserver: durable store at %s (version %d, %d WAL records)",
			*walDir, d.Version(), d.WALRecords())
		st = d
	} else {
		ds := store.New(sopts)
		if err := bootstrapDocs(docs)(ds); err != nil {
			fail("%v", err)
		}
		st = ds
	}

	eng := exec.NewOver(st)
	if *cache > 0 {
		eng.Cache = store.NewCache(*cache)
	}
	if *planCache > 0 {
		eng.Plans = match.NewPlanCache(*planCache)
	}
	eng.Workers = *workers
	eng.SlowQuery = *slow
	eng.SlowQueryLog = func(r obs.SlowQueryRecord) { log.Printf("gqlserver: %s", r) }
	if len(selectors) > 0 {
		rs := store.NewRemoteSelector(selectors)
		rs.SetTimeout(*shardTimeout)
		rs.SetRetries(*shardRetries)
		rs.SetHedgeAfter(*hedgeAfter)
		rs.SetAllowPartial(*allowPartial)
		eng.Selector = rs
		stopProbe := rs.StartProbing(context.Background(), *probeEvery)
		defer stopProbe()
		log.Printf("gqlserver: routing selection to %d shard endpoint(s): %s",
			len(selectors), strings.Join(selectors, ", "))
	}

	srv := server.New(server.Config{
		Engine:        eng,
		MaxInflight:   *maxInflight,
		MaxBody:       *maxBody,
		Timeout:       *timeout,
		MaxTimeout:    *maxTimeout,
		FlushInterval: *flushInterval,
		MaxTake:       *maxTake,
		Admin:         *admin,
	})
	l, err := net.Listen("tcp", *addr)
	if err != nil {
		fail("listen %s: %v", *addr, err)
	}
	log.Printf("gqlserver: listening on %s", l.Addr())

	hs := &http.Server{Handler: srv}
	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(l) }()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGTERM, syscall.SIGINT)
	select {
	case s := <-sig:
		log.Printf("gqlserver: received %v, draining (grace %v, %d in flight)", s, *grace, srv.Inflight())
		err := srv.Drain(hs, *grace, func() error {
			log.Printf("gqlserver: final metrics snapshot")
			return obs.WritePrometheus(os.Stderr)
		})
		if err != nil {
			log.Printf("gqlserver: drain incomplete: %v", err)
			os.Exit(1)
		}
		log.Printf("gqlserver: drained cleanly")
	case err := <-errc:
		fail("serve: %v", err)
	}
}

// bootstrapDocs returns the deterministic document bootstrap over the -doc
// bindings: each is loaded and registered in sorted name order, skipping
// names a durability checkpoint already restored — the contract
// store.OpenDurable's recovery protocol needs to replay the WAL against a
// reproducible baseline.
func bootstrapDocs(docs docFlags) func(*store.DocStore) error {
	return func(ds *store.DocStore) error {
		names := make([]string, 0, len(docs))
		for name := range docs {
			names = append(names, name)
		}
		sort.Strings(names)
		present := ds.Snapshot()
		for _, name := range names {
			if _, ok := present.Doc(name); ok {
				log.Printf("gqlserver: document %s restored from checkpoint", name)
				continue
			}
			coll, err := loadDoc(docs[name])
			if err != nil {
				return fmt.Errorf("loading %s: %w", docs[name], err)
			}
			ds.RegisterDoc(name, coll)
			log.Printf("gqlserver: loaded document %s from %s (%d graphs)", name, docs[name], len(coll))
		}
		return nil
	}
}

// loadDoc reads a document: .tsv is one large graph, .bin a binary
// collection; anything else is parsed as a sequence of graph literals.
func loadDoc(path string) (graph.Collection, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	if strings.HasSuffix(path, ".tsv") {
		g, err := graph.ReadTSV(f)
		if err != nil {
			return nil, err
		}
		return graph.NewCollection(g), nil
	}
	if strings.HasSuffix(path, ".bin") {
		return graph.ReadBinary(f)
	}
	src, err := io.ReadAll(f)
	if err != nil {
		return nil, err
	}
	prog, err := parser.Parse(string(src))
	if err != nil {
		return nil, err
	}
	var coll graph.Collection
	for _, s := range prog.Stmts {
		d, ok := s.(*ast.GraphDecl)
		if !ok {
			return nil, fmt.Errorf("%s: documents may contain only graph literals", path)
		}
		g, err := d.ToGraph()
		if err != nil {
			return nil, err
		}
		coll = append(coll, g)
	}
	return coll, nil
}

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "gqlserver: "+format+"\n", args...)
	os.Exit(1)
}
