package gqldb

import (
	"context"
	"strings"
	"testing"
)

const obsQuerySrc = `
graph P { node v1 where label="A"; node v2 where label="B"; edge (v1, v2); };
for P exhaustive in doc("db")
return graph { node P.v1; node P.v2; edge (P.v1, P.v2); };`

// TestTracingResultsByteIdentical: for every worker count, the query's
// result graphs are byte-identical with tracing off and on — observability
// must never perturb evaluation.
func TestTracingResultsByteIdentical(t *testing.T) {
	store := Store{"db": ctxTestCollection(t)}
	for _, workers := range []int{1, 4, 0} {
		plain, err := RunContext(context.Background(), obsQuerySrc, store, workers)
		if err != nil {
			t.Fatal(err)
		}
		if plain.Trace != nil {
			t.Fatal("untraced run carries a trace")
		}
		ctx, root := StartTrace(context.Background(), "query")
		traced, err := RunContext(ctx, obsQuerySrc, store, workers)
		root.End()
		if err != nil {
			t.Fatal(err)
		}
		if traced.Trace != root {
			t.Fatal("QueryResult.Trace must be the started root")
		}
		if len(traced.Out) != len(plain.Out) {
			t.Fatalf("workers=%d: tracing changed result count %d vs %d", workers, len(traced.Out), len(plain.Out))
		}
		for i := range plain.Out {
			if traced.Out[i].String() != plain.Out[i].String() {
				t.Fatalf("workers=%d: result %d differs with tracing on", workers, i)
			}
		}
	}
}

// TestFacadeTraceRender: the facade trace covers parse and evaluation, and
// Render produces the indented tree EXPLAIN prints.
func TestFacadeTraceRender(t *testing.T) {
	store := Store{"db": ctxTestCollection(t)}
	ctx, root := StartTrace(context.Background(), "query")
	if _, err := RunContext(ctx, obsQuerySrc, store, 2); err != nil {
		t.Fatal(err)
	}
	root.End()
	out := root.Render()
	for _, frag := range []string{"query", "parse", "flwr", "selection"} {
		if !strings.Contains(out, frag) {
			t.Errorf("Render missing %q:\n%s", frag, out)
		}
	}
}

// TestWriteMetricsFacade: the metrics dump reflects executed queries.
func TestWriteMetricsFacade(t *testing.T) {
	store := Store{"db": ctxTestCollection(t)}
	if _, err := RunContext(context.Background(), obsQuerySrc, store, 1); err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	if err := WriteMetrics(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "gqldb_queries_total") {
		t.Fatalf("metrics dump missing query counter:\n%s", b.String())
	}
	snap := MetricsSnapshot()
	if n, _ := snap["gqldb_queries_total"].(int64); n < 1 {
		t.Fatalf("snapshot queries = %v, want >= 1", snap["gqldb_queries_total"])
	}
}
