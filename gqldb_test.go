package gqldb

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func TestFacadeQuickstart(t *testing.T) {
	g := NewGraph("G")
	a := g.AddNode("a", TupleOf("", "label", "A"))
	b := g.AddNode("b", TupleOf("", "label", "B"))
	c := g.AddNode("c", TupleOf("", "label", "C"))
	g.AddEdge("", a, b, nil)
	g.AddEdge("", b, c, nil)
	g.AddEdge("", c, a, nil)

	p := NewPattern("P")
	pa := p.LabelNode("x", "A")
	pb := p.LabelNode("y", "B")
	p.AddEdge("", pa, pb, nil, nil)

	ix := BuildIndex(g, 1, true)
	ms, _, err := Match(p, g, ix, Optimized())
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) != 1 {
		t.Fatalf("matches = %d, want 1", len(ms))
	}
	ok, err := MatchOne(p, g, nil, Options{})
	if err != nil || !ok {
		t.Errorf("MatchOne = %v, %v", ok, err)
	}
}

func TestFacadeParseGraphAndPattern(t *testing.T) {
	g, err := ParseGraph(`graph G { node v1 <label="A">; node v2 <label="B">; edge e1 (v1, v2); };`)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != 2 || g.NumEdges() != 1 {
		t.Fatalf("parsed graph shape %d/%d", g.NumNodes(), g.NumEdges())
	}
	p, err := ParsePattern(`graph P { node v1 where label="A"; };`)
	if err != nil {
		t.Fatal(err)
	}
	ms, _, err := Match(p, g, nil, Options{Exhaustive: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) != 1 {
		t.Errorf("matches = %d", len(ms))
	}
	if _, err := ParseGraph(`graph A {}; graph B {};`); err == nil {
		t.Error("two statements should be rejected by ParseGraph")
	}
	if _, err := ParsePattern(`for P in doc("x") return graph {};`); err == nil {
		t.Error("non-declaration should be rejected by ParsePattern")
	}
}

func TestFacadeSelectAndRun(t *testing.T) {
	g1, _ := ParseGraph(`graph G1 <inproceedings booktitle="SIGMOD"> {
		node v1 <author name="A">; node v2 <author name="B">; };`)
	g2, _ := ParseGraph(`graph G2 <inproceedings booktitle="SIGMOD"> {
		node v1 <author name="C">; node v2 <author name="A">; };`)
	coll := Collection{g1, g2}

	p, err := ParsePattern(`graph P { node v1 <author>; node v2 <author>; };`)
	if err != nil {
		t.Fatal(err)
	}
	ms, err := Select(p, coll, Options{Exhaustive: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) != 4 { // two orders per paper
		t.Fatalf("selected = %d, want 4", len(ms))
	}

	res, err := Run(`
		graph P { node v1 <author>; node v2 <author>; };
		C := graph {};
		for P exhaustive in doc("papers") let C := graph {
			graph C;
			node P.v1, P.v2;
			edge e1 (P.v1, P.v2);
			unify P.v1, C.v1 where P.v1.name=C.v1.name;
			unify P.v2, C.v2 where P.v2.name=C.v2.name;
		};`, Store{"papers": coll})
	if err != nil {
		t.Fatal(err)
	}
	cg := res.Vars["C"]
	if cg == nil || cg.NumNodes() != 3 || cg.NumEdges() != 2 {
		t.Fatalf("co-author graph wrong: %v", cg)
	}
}

func TestFacadeCollectionIndex(t *testing.T) {
	mk := func(labels string) *Graph {
		g := NewGraph("m")
		var prev NodeID
		for i, c := range labels {
			id := g.AddNode("", TupleOf("", "label", string(c)))
			if i > 0 {
				g.AddEdge("", prev, id, nil)
			}
			prev = id
		}
		return g
	}
	coll := Collection{mk("ABC"), mk("AB"), mk("XYZ")}
	ix := BuildCollectionIndex(coll, 3)
	p := NewPattern("Q")
	a := p.LabelNode("a", "A")
	b := p.LabelNode("b", "B")
	c := p.LabelNode("c", "C")
	p.AddEdge("", a, b, nil, nil)
	p.AddEdge("", b, c, nil, nil)
	hits, verified, err := ix.Select(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(hits) != 1 || hits[0] != 0 {
		t.Errorf("hits = %v, want [0]", hits)
	}
	if verified > 1 {
		t.Errorf("verified = %d, filter should leave 1 candidate", verified)
	}
}

func TestFacadeReachability(t *testing.T) {
	g := NewDirectedGraph("D")
	a := g.AddNode("", TupleOf("", "label", "A"))
	b := g.AddNode("", TupleOf("", "label", "B"))
	c := g.AddNode("", TupleOf("", "label", "C"))
	g.AddEdge("", a, b, nil)
	g.AddEdge("", b, c, nil)
	rx := BuildReachability(g, 0, 1)
	if !rx.CanReach(a, c) || rx.CanReach(c, a) {
		t.Error("reachability wrong")
	}
	if pairs := rx.PathPairs("A", "C"); len(pairs) != 1 {
		t.Errorf("PathPairs = %v", pairs)
	}
}

func TestFacadeServer(t *testing.T) {
	store := Store{}
	g := NewGraph("G")
	g.AddNode("a", TupleOf("author", "name", "Ann"))
	store["DBLP"] = Collection{g}

	srv := NewServer(ServerConfig{Engine: NewEngine(store)})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	resp, err := http.Post(ts.URL+"/query", "text/plain",
		strings.NewReader(`for graph Q { node v1 <author>; } exhaustive in doc("DBLP") return graph { node Q.v1; };`))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 200 || !strings.Contains(string(body), "Ann") {
		t.Fatalf("query = %d %s", resp.StatusCode, body)
	}

	mts := httptest.NewServer(MetricsHandler())
	defer mts.Close()
	mresp, err := http.Get(mts.URL)
	if err != nil {
		t.Fatal(err)
	}
	mbody, _ := io.ReadAll(mresp.Body)
	mresp.Body.Close()
	if !strings.Contains(string(mbody), "gqldb_queries_total") {
		t.Fatalf("metrics handler output missing counters:\n%s", mbody)
	}
}
