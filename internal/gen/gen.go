// Package gen produces the evaluation datasets and query workloads of §5:
// a yeast-like protein interaction network (the paper's real dataset,
// substituted by a seeded preferential-attachment graph with matching size,
// degree skew and label distribution), Erdős–Rényi synthetic graphs with
// Zipf-distributed labels, DBLP-like paper collections, random clique
// queries over the most frequent labels, and random connected-subgraph
// queries.
package gen

import (
	"fmt"
	"math/rand"

	"gqldb/internal/graph"
	"gqldb/internal/index"
	"gqldb/internal/pattern"
)

// Zipf draws values in [0, n) with p(x) ∝ 1/(x+1) — the label distribution
// of the synthetic datasets ("the distribution of the labels follows
// Zipf's law").
type Zipf struct {
	cum []float64
	rng *rand.Rand
}

// NewZipf builds a sampler over n ranks.
func NewZipf(n int, rng *rand.Rand) *Zipf {
	cum := make([]float64, n)
	total := 0.0
	for i := 0; i < n; i++ {
		total += 1 / float64(i+1)
		cum[i] = total
	}
	for i := range cum {
		cum[i] /= total
	}
	return &Zipf{cum: cum, rng: rng}
}

// Next draws one rank.
func (z *Zipf) Next() int {
	u := z.rng.Float64()
	lo, hi := 0, len(z.cum)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if z.cum[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// LabelName renders the i-th label ("L000", "L001", ...).
func LabelName(i int) string { return fmt.Sprintf("L%03d", i) }

// ER generates an Erdős–Rényi-style random graph: n nodes, m edges chosen
// by sampling endpoint pairs uniformly (self-loops rejected), with labels
// drawn from a Zipf distribution over numLabels labels (§5.2).
func ER(n, m, numLabels int, seed int64) *graph.Graph {
	rng := rand.New(rand.NewSource(seed))
	z := NewZipf(numLabels, rng)
	g := graph.New(fmt.Sprintf("er_%d_%d", n, m))
	for i := 0; i < n; i++ {
		g.AddNode("", graph.TupleOf("", "label", LabelName(z.Next())))
	}
	for i := 0; i < m; i++ {
		u := rng.Intn(n)
		v := rng.Intn(n)
		for u == v {
			v = rng.Intn(n)
		}
		g.AddEdge("", graph.NodeID(u), graph.NodeID(v), nil)
	}
	return g
}

// YeastPPI generates the stand-in for the paper's yeast protein interaction
// network: exactly 3112 nodes and 12519 edges with 183 GO-term-like labels.
// Two properties of the real network matter for the §5.1 clique workload
// and are reproduced here:
//
//   - Protein complexes make the network highly clustered — it contains
//     cliques up to size ~7 ("sizes greater than 7 have no answers").
//     We grow ~2/3 of the edges as overlapping near-clique pockets of
//     size 3–9 and the rest by degree-preferential attachment (hubs).
//
//   - High-level GO terms are broad: a small set of common terms labels
//     most proteins, with a long tail of rarer terms. We use a two-tier
//     distribution: 20 common terms cover ~80% of nodes (Zipf among
//     themselves), 163 tail terms share the rest.
func YeastPPI(seed int64) *graph.Graph {
	const (
		nodes  = 3112
		edges  = 12519
		labels = 183
		common = 20
	)
	rng := rand.New(rand.NewSource(seed))
	g := graph.New("yeast_ppi")
	zc := NewZipf(common, rng)
	for i := 0; i < nodes; i++ {
		var l int
		if rng.Float64() < 0.8 {
			l = zc.Next()
		} else {
			l = common + rng.Intn(labels-common)
		}
		g.AddNode("", graph.TupleOf("", "label", LabelName(l)))
	}
	addEdge := func(u, v graph.NodeID) bool {
		if u == v || g.HasEdgeBetween(u, v) || g.NumEdges() >= edges {
			return false
		}
		g.AddEdge("", u, v, nil)
		return true
	}
	// Complex pockets: ~2/3 of the edges.
	for g.NumEdges() < edges*2/3 {
		size := 3 + int(rng.ExpFloat64()*2)
		if size > 10 {
			size = 10
		}
		members := make([]graph.NodeID, 0, size)
		seen := map[graph.NodeID]bool{}
		for len(members) < size {
			v := graph.NodeID(rng.Intn(nodes))
			if !seen[v] {
				seen[v] = true
				members = append(members, v)
			}
		}
		for i := 0; i < size; i++ {
			for j := i + 1; j < size; j++ {
				if rng.Float64() < 0.85 {
					addEdge(members[i], members[j])
				}
			}
		}
	}
	// Hub edges: preferential attachment over current degrees.
	endpoints := make([]graph.NodeID, 0, 2*edges)
	for _, e := range g.Edges() {
		endpoints = append(endpoints, e.From, e.To)
	}
	for g.NumEdges() < edges {
		u := endpoints[rng.Intn(len(endpoints))]
		v := graph.NodeID(rng.Intn(nodes))
		if addEdge(u, v) {
			endpoints = append(endpoints, u, v)
		}
	}
	return g
}

// PrefAttach grows a preferential-attachment graph with exactly n nodes and
// m edges and Zipf labels over numLabels labels.
func PrefAttach(n, m, numLabels int, seed int64) *graph.Graph {
	rng := rand.New(rand.NewSource(seed))
	z := NewZipf(numLabels, rng)
	g := graph.New(fmt.Sprintf("ppi_%d_%d", n, m))
	for i := 0; i < n; i++ {
		g.AddNode("", graph.TupleOf("", "label", LabelName(z.Next())))
	}
	// endpoints holds one entry per half-edge; sampling from it is
	// sampling proportional to degree.
	endpoints := make([]graph.NodeID, 0, 2*m)
	// Seed path over the first few nodes so attachment has targets.
	added := 0
	for i := 1; i < 4 && i < n && added < m; i++ {
		g.AddEdge("", graph.NodeID(i-1), graph.NodeID(i), nil)
		endpoints = append(endpoints, graph.NodeID(i-1), graph.NodeID(i))
		added++
	}
	// Each remaining node attaches preferentially; leftover edges connect
	// degree-weighted random pairs.
	perNode := (m - added) / (n - 4)
	if perNode < 1 {
		perNode = 1
	}
	for i := 4; i < n && added < m; i++ {
		v := graph.NodeID(i)
		for k := 0; k < perNode && added < m; k++ {
			u := endpoints[rng.Intn(len(endpoints))]
			if u == v || g.HasEdgeBetween(u, v) {
				u = graph.NodeID(rng.Intn(i))
				if u == v || g.HasEdgeBetween(u, v) {
					continue
				}
			}
			g.AddEdge("", u, v, nil)
			endpoints = append(endpoints, u, v)
			added++
		}
	}
	for added < m {
		u := endpoints[rng.Intn(len(endpoints))]
		v := graph.NodeID(rng.Intn(n))
		if u == v || g.HasEdgeBetween(u, v) {
			continue
		}
		g.AddEdge("", u, v, nil)
		endpoints = append(endpoints, u, v)
		added++
	}
	return g
}

// CliqueQuery builds a complete pattern of the given size whose node labels
// are drawn uniformly from the supplied label pool (the top-40 most
// frequent labels in §5.1).
func CliqueQuery(size int, pool []string, rng *rand.Rand) *pattern.Pattern {
	p := pattern.New("Q")
	ids := make([]graph.NodeID, size)
	for i := 0; i < size; i++ {
		ids[i] = p.LabelNode("", pool[rng.Intn(len(pool))])
	}
	for i := 0; i < size; i++ {
		for j := i + 1; j < size; j++ {
			p.AddEdge("", ids[i], ids[j], nil, nil)
		}
	}
	return p
}

// GraphCliqueQuery samples an actual clique of the given size from g and
// uses its (shuffled) labels as a clique query. The §5.1 protocol discards
// queries with no answers; uniform random labels almost never have answers
// at sizes ≥ 5 on a synthetic stand-in, so the harness mixes uniform
// queries (which populate the small sizes) with clique-sampled queries
// (which sample the same conditional distribution the paper's discarding
// protocol induces). Returns nil when no clique is found within the
// attempt budget.
func GraphCliqueQuery(g *graph.Graph, size int, rng *rand.Rand) *pattern.Pattern {
	for attempt := 0; attempt < 200; attempt++ {
		v := graph.NodeID(rng.Intn(g.NumNodes()))
		members := []graph.NodeID{v}
		// Candidates: neighbors of v; extend greedily in random order.
		adj := g.Adj(v)
		cand := make([]graph.NodeID, 0, len(adj))
		seen := map[graph.NodeID]bool{v: true}
		for _, h := range adj {
			if !seen[h.To] {
				seen[h.To] = true
				cand = append(cand, h.To)
			}
		}
		rng.Shuffle(len(cand), func(i, j int) { cand[i], cand[j] = cand[j], cand[i] })
		for _, c := range cand {
			if len(members) == size {
				break
			}
			ok := true
			for _, m := range members {
				if !g.HasEdgeBetween(c, m) {
					ok = false
					break
				}
			}
			if ok {
				members = append(members, c)
			}
		}
		if len(members) < size {
			continue
		}
		labels := make([]string, size)
		for i, m := range members {
			labels[i] = g.Label(m)
		}
		rng.Shuffle(size, func(i, j int) { labels[i], labels[j] = labels[j], labels[i] })
		p := pattern.New("Q")
		ids := make([]graph.NodeID, size)
		for i := 0; i < size; i++ {
			ids[i] = p.LabelNode("", labels[i])
		}
		for i := 0; i < size; i++ {
			for j := i + 1; j < size; j++ {
				p.AddEdge("", ids[i], ids[j], nil, nil)
			}
		}
		return p
	}
	return nil
}

// SubgraphQuery extracts a random connected subgraph of the given size from
// g and returns it as a pattern: node labels are copied and all induced
// edges become pattern edges (§5.2: "queries are generated by randomly
// extracting a connected subgraph from the synthetic graph").
func SubgraphQuery(g *graph.Graph, size int, rng *rand.Rand) *pattern.Pattern {
	for attempts := 0; attempts < 100; attempts++ {
		start := graph.NodeID(rng.Intn(g.NumNodes()))
		sel := []graph.NodeID{start}
		inSel := map[graph.NodeID]bool{start: true}
		for len(sel) < size {
			v := sel[rng.Intn(len(sel))]
			adj := g.Adj(v)
			if len(adj) == 0 {
				break
			}
			w := adj[rng.Intn(len(adj))].To
			if !inSel[w] {
				inSel[w] = true
				sel = append(sel, w)
			} else if len(sel) > 1 && rng.Intn(4) == 0 {
				break // avoid spinning on saturated neighborhoods
			}
		}
		if len(sel) < size {
			continue
		}
		p := pattern.New("Q")
		pid := map[graph.NodeID]graph.NodeID{}
		for _, v := range sel {
			pid[v] = p.LabelNode("", g.Label(v))
		}
		for _, v := range sel {
			for _, h := range g.Adj(v) {
				u := h.To
				if !inSel[u] || u <= v {
					continue
				}
				if !p.Motif.HasEdgeBetween(pid[v], pid[u]) {
					p.AddEdge("", pid[v], pid[u], nil, nil)
				}
			}
		}
		return p
	}
	return nil
}

// TopLabels is a convenience: the k most frequent labels of g.
func TopLabels(g *graph.Graph, k int) []string {
	return index.BuildLabelIndex(g).TopLabels(k)
}

// DBLP generates a collection of paper graphs in the Figure 4.7 style:
// numPapers graphs, each tagged <inproceedings> with a booktitle attribute
// and 1–5 author nodes drawn from a Zipf-skewed pool of numAuthors names.
func DBLP(numPapers, numAuthors int, venues []string, seed int64) graph.Collection {
	rng := rand.New(rand.NewSource(seed))
	z := NewZipf(numAuthors, rng)
	out := make(graph.Collection, 0, numPapers)
	for i := 0; i < numPapers; i++ {
		g := graph.New(fmt.Sprintf("paper%d", i))
		g.Attrs = graph.TupleOf("inproceedings",
			"booktitle", venues[rng.Intn(len(venues))],
			"year", 1995+rng.Intn(14))
		k := 1 + rng.Intn(5)
		seen := map[int]bool{}
		for a := 0; a < k; a++ {
			id := z.Next()
			if seen[id] {
				continue
			}
			seen[id] = true
			g.AddNode("", graph.TupleOf("author", "name", fmt.Sprintf("author%04d", id)))
		}
		out = append(out, g)
	}
	return out
}
