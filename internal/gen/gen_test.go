package gen

import (
	"math"
	"math/rand"
	"testing"

	"gqldb/internal/graph"
	"gqldb/internal/index"
	"gqldb/internal/match"
)

func TestZipfSkew(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	z := NewZipf(100, rng)
	counts := make([]int, 100)
	const draws = 100000
	for i := 0; i < draws; i++ {
		counts[z.Next()]++
	}
	// p(0) should be ~ 1/H_100 ≈ 0.192; p(9) ≈ p(0)/10.
	p0 := float64(counts[0]) / draws
	if p0 < 0.15 || p0 > 0.25 {
		t.Errorf("p(0) = %v, want ≈ 0.19", p0)
	}
	ratio := float64(counts[0]) / float64(counts[9]+1)
	if ratio < 6 || ratio > 16 {
		t.Errorf("p(0)/p(9) = %v, want ≈ 10", ratio)
	}
}

func TestERShape(t *testing.T) {
	g := ER(1000, 5000, 100, 7)
	if g.NumNodes() != 1000 || g.NumEdges() != 5000 {
		t.Fatalf("shape = %d/%d", g.NumNodes(), g.NumEdges())
	}
	for _, e := range g.Edges() {
		if e.From == e.To {
			t.Fatal("self-loop generated")
		}
	}
	// Determinism.
	g2 := ER(1000, 5000, 100, 7)
	if g.Signature() != g2.Signature() {
		t.Error("same seed must give same graph")
	}
	g3 := ER(1000, 5000, 100, 8)
	if g.Signature() == g3.Signature() {
		t.Error("different seed should give different graph")
	}
}

func TestYeastPPIShape(t *testing.T) {
	g := YeastPPI(1)
	if g.NumNodes() != 3112 {
		t.Errorf("nodes = %d, want 3112", g.NumNodes())
	}
	if g.NumEdges() != 12519 {
		t.Errorf("edges = %d, want 12519", g.NumEdges())
	}
	ix := index.BuildLabelIndex(g)
	if got := len(ix.TopLabels(1000)); got > 183 {
		t.Errorf("labels = %d, want <= 183", got)
	}
	// Heavy tail: the max degree should far exceed the average (~8).
	maxDeg := 0
	for _, n := range g.Nodes() {
		if d := g.Degree(n.ID); d > maxDeg {
			maxDeg = d
		}
	}
	if maxDeg < 30 {
		t.Errorf("max degree = %d, expected a heavy tail (>30)", maxDeg)
	}
	// No parallel edges (interactions are unique pairs).
	seen := map[[2]graph.NodeID]bool{}
	for _, e := range g.Edges() {
		k := [2]graph.NodeID{e.From, e.To}
		if e.From > e.To {
			k = [2]graph.NodeID{e.To, e.From}
		}
		if seen[k] {
			t.Fatal("parallel edge generated")
		}
		seen[k] = true
	}
}

func TestCliqueQuery(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	pool := []string{"A", "B", "C"}
	for size := 2; size <= 7; size++ {
		p := CliqueQuery(size, pool, rng)
		if p.Size() != size {
			t.Fatalf("size = %d", p.Size())
		}
		if got, want := p.Motif.NumEdges(), size*(size-1)/2; got != want {
			t.Fatalf("edges = %d, want %d", got, want)
		}
		if err := p.Compile(); err != nil {
			t.Fatal(err)
		}
		for u := 0; u < size; u++ {
			if _, ok := p.ConstLabel(graph.NodeID(u)); !ok {
				t.Fatal("clique node lacks const label")
			}
		}
	}
}

func TestSubgraphQueryAlwaysMatches(t *testing.T) {
	g := ER(500, 2500, 20, 11)
	ix := match.BuildIndex(g, 1, false)
	rng := rand.New(rand.NewSource(5))
	for size := 4; size <= 12; size += 4 {
		for i := 0; i < 5; i++ {
			p := SubgraphQuery(g, size, rng)
			if p == nil {
				t.Fatalf("no query extracted at size %d", size)
			}
			if p.Size() != size {
				t.Fatalf("query size = %d, want %d", p.Size(), size)
			}
			ok, err := match.Exists(p, g, ix, match.Optimized())
			if err != nil {
				t.Fatal(err)
			}
			if !ok {
				t.Fatalf("extracted subgraph of size %d not found", size)
			}
		}
	}
}

func TestDBLPCollection(t *testing.T) {
	coll := DBLP(100, 50, []string{"SIGMOD", "VLDB"}, 9)
	if len(coll) != 100 {
		t.Fatalf("papers = %d", len(coll))
	}
	venues := map[string]int{}
	for _, g := range coll {
		if g.Attrs.Tag != "inproceedings" {
			t.Fatal("paper without inproceedings tag")
		}
		venues[g.Attrs.GetOr("booktitle").AsString()]++
		if g.NumNodes() < 1 || g.NumNodes() > 5 {
			t.Fatalf("paper with %d authors", g.NumNodes())
		}
		for _, n := range g.Nodes() {
			if n.Attrs.Tag != "author" {
				t.Fatal("non-author node in paper")
			}
		}
	}
	if venues["SIGMOD"] == 0 || venues["VLDB"] == 0 {
		t.Errorf("venues = %v", venues)
	}
}

func TestLabelDistributionOfER(t *testing.T) {
	g := ER(10000, 50000, 100, 13)
	ix := index.BuildLabelIndex(g)
	top := ix.TopLabels(2)
	// Zipf: the most frequent label should be roughly twice the second.
	f0, f1 := ix.Freq(top[0]), ix.Freq(top[1])
	ratio := float64(f0) / float64(f1)
	if math.Abs(ratio-2) > 0.7 {
		t.Errorf("f0/f1 = %v, want ≈ 2", ratio)
	}
}
