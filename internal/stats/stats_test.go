package stats

import (
	"math"
	"strings"
	"testing"
)

func TestAgg(t *testing.T) {
	var a Agg
	if !math.IsNaN(a.Mean()) {
		t.Error("empty mean should be NaN")
	}
	a.Add(1)
	a.Add(3)
	if a.Mean() != 2 || a.N() != 2 {
		t.Errorf("mean = %v n = %d", a.Mean(), a.N())
	}
}

func TestClassify(t *testing.T) {
	cases := []struct {
		answers int
		want    Bucket
	}{
		{0, BucketDiscard},
		{1, BucketLow},
		{99, BucketLow},
		{100, BucketHigh},
		{1000, BucketHigh},
	}
	for _, c := range cases {
		if got := Classify(c.answers, 100); got != c.want {
			t.Errorf("Classify(%d) = %v, want %v", c.answers, got, c.want)
		}
	}
}

func TestReductionRatio(t *testing.T) {
	// Space 10^2 over baseline 10^5 → ratio 1e-3.
	if got := ReductionRatioLog10(2, 5); got != -3 {
		t.Errorf("ratio = %v", got)
	}
}

func TestTableFormat(t *testing.T) {
	tb := &Table{Title: "T", Headers: []string{"size", "value"}}
	tb.AddRow("2", "10")
	tb.AddRow("10", "3")
	s := tb.Format()
	lines := strings.Split(strings.TrimSpace(s), "\n")
	if len(lines) != 5 { // title, header, sep, 2 rows
		t.Fatalf("lines = %d:\n%s", len(lines), s)
	}
	if !strings.HasPrefix(lines[1], "size") {
		t.Errorf("header line = %q", lines[1])
	}
	csv := tb.CSV()
	if !strings.HasPrefix(csv, "size,value\n2,10\n") {
		t.Errorf("csv = %q", csv)
	}
}

func TestFormatters(t *testing.T) {
	if FmtLog(math.NaN()) != "n/a" || FmtMs(math.NaN()) != "n/a" {
		t.Error("NaN should render n/a")
	}
	if FmtLog(-3) != "1e-3.0" {
		t.Errorf("FmtLog = %s", FmtLog(-3))
	}
	if FmtMs(123.4) != "123" || FmtMs(1.23) != "1.2" || FmtMs(0.5) != "0.500" {
		t.Errorf("FmtMs: %s %s %s", FmtMs(123.4), FmtMs(1.23), FmtMs(0.5))
	}
}
