// Package stats provides the measurement helpers of the §5 harness:
// search-space reduction ratios aggregated in the log domain (the figures
// plot ratios down to 1e-40, far below float64 granularity if multiplied
// naively), low/high-hits bucketing, and plain-text/CSV table rendering for
// the figure series.
package stats

import (
	"fmt"
	"math"
	"strings"
)

// Agg accumulates a series of float64 samples.
type Agg struct {
	n   int
	sum float64
}

// Add appends a sample.
func (a *Agg) Add(x float64) {
	a.n++
	a.sum += x
}

// Mean returns the arithmetic mean (NaN when empty).
func (a *Agg) Mean() float64 {
	if a.n == 0 {
		return math.NaN()
	}
	return a.sum / float64(a.n)
}

// N returns the sample count.
func (a *Agg) N() int { return a.n }

// ReductionRatioLog10 returns log10 of the §5.1 reduction ratio
// |Φ(u1)|···|Φ(uk)| / |Φ0(u1)|···|Φ0(uk)| given the two log10 space sizes.
func ReductionRatioLog10(logSpace, logBaseline float64) float64 {
	return logSpace - logBaseline
}

// Bucket classifies a query by its answer count, per the §5.1 protocol:
// queries with no answers are discarded, fewer than lowThreshold answers is
// "low hits", anything else "high hits" (queries cut off at the hit limit
// land in high hits).
type Bucket uint8

// Buckets.
const (
	BucketDiscard Bucket = iota
	BucketLow
	BucketHigh
)

// Classify applies the protocol.
func Classify(answers, lowThreshold int) Bucket {
	switch {
	case answers == 0:
		return BucketDiscard
	case answers < lowThreshold:
		return BucketLow
	default:
		return BucketHigh
	}
}

// Table is one figure series: a title, column headers and rows of cells.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
}

// AddRow appends a row of formatted cells.
func (t *Table) AddRow(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// Format renders the table as aligned text.
func (t *Table) Format() string {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		b.WriteString(t.Title)
		b.WriteByte('\n')
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	line(t.Headers)
	sep := make([]string, len(t.Headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, r := range t.Rows {
		line(r)
	}
	return b.String()
}

// CSV renders the table as comma-separated values (quotes are not needed:
// all harness cells are numbers and simple tokens).
func (t *Table) CSV() string {
	var b strings.Builder
	b.WriteString(strings.Join(t.Headers, ","))
	b.WriteByte('\n')
	for _, r := range t.Rows {
		b.WriteString(strings.Join(r, ","))
		b.WriteByte('\n')
	}
	return b.String()
}

// FmtLog renders a log10 value as a power-of-ten string (e.g. "1.0e-12"),
// the scale the figures use.
func FmtLog(log10v float64) string {
	if math.IsNaN(log10v) {
		return "n/a"
	}
	return fmt.Sprintf("1e%+.1f", log10v)
}

// FmtMs renders a duration in milliseconds with sensible precision.
func FmtMs(ms float64) string {
	if math.IsNaN(ms) {
		return "n/a"
	}
	switch {
	case ms >= 100:
		return fmt.Sprintf("%.0f", ms)
	case ms >= 1:
		return fmt.Sprintf("%.1f", ms)
	default:
		return fmt.Sprintf("%.3f", ms)
	}
}
