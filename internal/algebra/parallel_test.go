package algebra

import (
	"fmt"
	"math/rand"
	"testing"

	"gqldb/internal/graph"
	"gqldb/internal/match"
	"gqldb/internal/pattern"
)

func bigCollection(n int) graph.Collection {
	rng := rand.New(rand.NewSource(33))
	var out graph.Collection
	for i := 0; i < n; i++ {
		g := graph.New(fmt.Sprintf("g%d", i))
		k := 3 + rng.Intn(5)
		for j := 0; j < k; j++ {
			g.AddNode("", graph.TupleOf("", "label", string(rune('A'+rng.Intn(3)))))
		}
		for j := 0; j < 2*k; j++ {
			u, v := rng.Intn(k), rng.Intn(k)
			if u != v && !g.HasEdgeBetween(graph.NodeID(u), graph.NodeID(v)) {
				g.AddEdge("", graph.NodeID(u), graph.NodeID(v), nil)
			}
		}
		out = append(out, g)
	}
	return out
}

func edgePattern() *pattern.Pattern {
	p := pattern.New("P")
	a := p.LabelNode("a", "A")
	b := p.LabelNode("b", "B")
	p.AddEdge("", a, b, nil, nil)
	return p
}

// TestParallelSelectionMatchesSequential: identical results (count, graphs
// and binding order) for any worker count.
func TestParallelSelectionMatchesSequential(t *testing.T) {
	c := bigCollection(60)
	p := edgePattern()
	opt := match.Options{Exhaustive: true}
	want, err := Selection(p, c, opt, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{0, 1, 2, 4, 16, 100} {
		got, err := ParallelSelection(p, c, opt, nil, workers)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if len(got) != len(want) {
			t.Fatalf("workers=%d: %d matches, want %d", workers, len(got), len(want))
		}
		for i := range want {
			if got[i].G != want[i].G {
				t.Fatalf("workers=%d: output order differs at %d", workers, i)
			}
			for u := range want[i].M.Nodes {
				if got[i].M.Nodes[u] != want[i].M.Nodes[u] {
					t.Fatalf("workers=%d: binding differs at %d", workers, i)
				}
			}
		}
	}
}

func TestParallelSelectionEmpty(t *testing.T) {
	p := edgePattern()
	got, err := ParallelSelection(p, nil, match.Options{Exhaustive: true}, nil, 4)
	if err != nil || len(got) != 0 {
		t.Errorf("empty collection: %v, %v", got, err)
	}
}

func BenchmarkSelection(b *testing.B) {
	c := bigCollection(400)
	p := edgePattern()
	opt := match.Options{Exhaustive: true}
	b.Run("sequential", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := Selection(p, c, opt, nil); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("parallel", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := ParallelSelection(p, c, opt, nil, 0); err != nil {
				b.Fatal(err)
			}
		}
	})
}
