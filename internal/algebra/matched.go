// Package algebra implements the bulk graph algebra of GraphQL (§3.3):
// selection generalized to graph pattern matching, Cartesian product,
// valued and structural join, composition via graph templates, and the set
// operators, together with projection and renaming as derived operators.
// Every operator consumes and produces collections of graphs.
package algebra

import (
	"context"
	"fmt"

	"gqldb/internal/graph"
	"gqldb/internal/match"
	"gqldb/internal/pattern"
)

// MatchedGraph is the triple ⟨Φ, P, G⟩ of Definition 4.3: a binding of
// pattern P to graph G via mapping Φ. It has all the characteristics of a
// graph (a collection of matched graphs is a collection of graphs), with
// the binding available for attribute access and composition.
type MatchedGraph struct {
	P *pattern.Pattern
	G *graph.Graph
	M match.Mapping
}

// NodeFor returns the data node bound to the named pattern node.
func (m *MatchedGraph) NodeFor(varName string) (*graph.Node, error) {
	u, ok := m.P.Motif.NodeByName(varName)
	if !ok {
		return nil, fmt.Errorf("algebra: pattern %s has no node %s", m.P.Name, varName)
	}
	return m.G.Node(m.M.Nodes[u]), nil
}

// EdgeFor returns the data edge witnessing the named pattern edge.
func (m *MatchedGraph) EdgeFor(varName string) (*graph.Edge, error) {
	e, ok := m.P.Motif.EdgeByName(varName)
	if !ok {
		return nil, fmt.Errorf("algebra: pattern %s has no edge %s", m.P.Name, varName)
	}
	return m.G.Edge(m.M.Edges[e]), nil
}

// Resolve implements expr.Env over the binding: v1.attr reads the mate of
// motif node v1, e1.attr the witness of motif edge e1, and a bare name (or
// P.name) the matched graph's own attributes.
func (m *MatchedGraph) Resolve(parts []string) (graph.Value, error) {
	if len(parts) >= 2 && m.P.Name != "" && parts[0] == m.P.Name {
		parts = parts[1:]
	}
	if len(parts) == 1 {
		return m.G.Attrs.GetOr(parts[0]), nil
	}
	if len(parts) == 2 {
		if u, ok := m.P.Motif.NodeByName(parts[0]); ok {
			return m.G.Node(m.M.Nodes[u]).Attrs.GetOr(parts[1]), nil
		}
		if e, ok := m.P.Motif.EdgeByName(parts[0]); ok {
			return m.G.Edge(m.M.Edges[e]).Attrs.GetOr(parts[1]), nil
		}
	}
	return graph.Null, fmt.Errorf("algebra: cannot resolve %v in matched graph", parts)
}

// InducedGraph materializes the matched subgraph as a standalone graph:
// the bound data nodes (named after the pattern variables) and the
// witnessing edges. This is the "matched graph viewed as a graph".
func (m *MatchedGraph) InducedGraph() *graph.Graph {
	out := graph.New(m.P.Name)
	out.Directed = m.G.Directed
	out.Attrs = m.G.Attrs.Clone()
	for _, n := range m.P.Motif.Nodes() {
		out.AddNode(n.Name, m.G.Node(m.M.Nodes[n.ID]).Attrs.Clone())
	}
	for _, e := range m.P.Motif.Edges() {
		de := m.G.Edge(m.M.Edges[e.ID])
		out.AddEdge(e.Name, e.From, e.To, de.Attrs.Clone())
	}
	return out
}

// Matched is a collection of matched graphs — the output type of selection
// and the input type of composition.
type Matched []*MatchedGraph

// Graphs lowers the matched collection to plain graphs via InducedGraph.
func (ms Matched) Graphs() graph.Collection {
	out := make(graph.Collection, len(ms))
	for i, m := range ms {
		out[i] = m.InducedGraph()
	}
	return out
}

// Selection evaluates σ_P(C): every graph in the collection is matched
// against p and each binding becomes a matched graph (§3.3). The
// "exhaustive" option controls one-vs-all bindings per graph. ixFor may be
// nil or return nil; when present it supplies per-graph access structures.
func Selection(p *pattern.Pattern, c graph.Collection, opt match.Options, ixFor func(*graph.Graph) *match.Index) (Matched, error) {
	return SelectionContext(context.Background(), p, c, opt, ixFor, 1, nil)
}
