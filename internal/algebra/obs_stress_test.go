package algebra

import (
	"context"
	"sync"
	"testing"

	"gqldb/internal/expr"
	"gqldb/internal/graph"
	"gqldb/internal/match"
	"gqldb/internal/obs"
)

// TestSharedTraceSinkRace drives many concurrent operators through ONE
// shared trace root (the shape RunContext produces: every operator of a
// query hangs its span off the same tree) with worker pools both larger
// than the input and serial, and asserts under -race that (a) the span
// mutators used from workers are safe, and (b) tracing never perturbs the
// results — every lane stays byte-identical to the serial baseline.
func TestSharedTraceSinkRace(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test; skipped in -short")
	}
	c, d := bigCollection(12), bigCollection(9)
	for i, g := range c {
		g.Attrs = graph.TupleOf("", "size", int64(i%4))
	}
	for j, g := range d {
		g.Attrs = graph.TupleOf("", "size", int64(j%3))
	}
	p := edgePattern()
	opt := match.Options{Exhaustive: true}
	pred := expr.Binary{Op: expr.OpEq, L: expr.Name{Parts: []string{"size"}}, R: expr.Lit{Val: graph.Int(1)}}

	wantSel, err := Selection(p, c, opt, nil)
	if err != nil {
		t.Fatal(err)
	}
	wantJoin, err := ValuedJoin(c, d, pred)
	if err != nil {
		t.Fatal(err)
	}
	if len(wantSel) == 0 || len(wantJoin) == 0 {
		t.Fatal("degenerate baseline")
	}

	root := obs.NewTrace("stress")
	ctx := obs.NewContext(context.Background(), root)

	const lanes = 8
	sels := make([]Matched, lanes)
	joins := make([]graph.Collection, lanes)
	errs := make([]error, 2*lanes)
	var wg sync.WaitGroup
	for i := 0; i < lanes; i++ {
		// Alternate between "more workers than items" (every worker pool
		// edge) and the serial path (workers=1) through the same sink.
		workers := len(c)*len(d) + 5
		if i%2 == 1 {
			workers = 1
		}
		wg.Add(2)
		go func(i, workers int) {
			defer wg.Done()
			sels[i], errs[2*i] = SelectionContext(ctx, p, c, opt, nil, workers, nil)
		}(i, workers)
		go func(i, workers int) {
			defer wg.Done()
			joins[i], errs[2*i+1] = ValuedJoinContext(ctx, c, d, pred, workers, nil)
		}(i, workers)
	}
	wg.Wait()
	root.End()

	for i, err := range errs {
		if err != nil {
			t.Fatalf("lane %d: %v", i, err)
		}
	}
	for i := 0; i < lanes; i++ {
		if len(sels[i]) != len(wantSel) {
			t.Fatalf("lane %d: %d matches, want %d", i, len(sels[i]), len(wantSel))
		}
		for k := range wantSel {
			if sels[i][k].G != wantSel[k].G {
				t.Fatalf("lane %d: selection order differs at %d", i, k)
			}
			for u := range wantSel[k].M.Nodes {
				if sels[i][k].M.Nodes[u] != wantSel[k].M.Nodes[u] {
					t.Fatalf("lane %d: binding differs at %d", i, k)
				}
			}
		}
		sameOrder(t, "valued-join", joins[i], wantJoin)
	}

	// The shared tree holds one child span per operator call, each with
	// truthful item counters (Add from workers must not lose increments).
	var selSpans, joinSpans int
	root.Walk(func(_ int, sp *obs.Span) {
		switch sp.Name {
		case "selection":
			selSpans++
			if got := sp.Count("matches"); got != int64(len(wantSel)) {
				t.Errorf("selection span matches = %d, want %d", got, len(wantSel))
			}
		case "valued-join":
			joinSpans++
			if got := sp.Count("items"); got != int64(len(c)*len(d)) {
				t.Errorf("valued-join span items = %d, want %d", got, len(c)*len(d))
			}
		}
	})
	if selSpans != lanes || joinSpans != lanes {
		t.Fatalf("span fan-out: %d selection + %d valued-join spans, want %d each", selSpans, joinSpans, lanes)
	}
}
