package algebra

import (
	"sync"
	"testing"

	"gqldb/internal/graph"
	"gqldb/internal/match"
)

// TestParallelSelectionStress drives the chunked work-stealing cursor hard
// enough for `go test -race` to observe any unsynchronized access: many
// rounds over many small graphs, with worker counts spanning the edge
// cases (1 worker = sequential fallback, workers > len(c) = clamped,
// 0 = GOMAXPROCS) and with a shared prebuilt index map read from every
// worker. Run it under -race via `make race`.
func TestParallelSelectionStress(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test; skipped in -short")
	}
	c := bigCollection(200)
	p := edgePattern()
	opt := match.Options{Exhaustive: true}

	// Shared read-only index map: every worker goroutine reads it, which
	// is only race-clean if ParallelSelection never mutates it.
	indexes := make(map[*graph.Graph]*match.Index, len(c))
	for _, g := range c {
		indexes[g] = match.BuildIndex(g, 1, false)
	}
	ixFor := func(g *graph.Graph) *match.Index { return indexes[g] }

	want, err := Selection(p, c, opt, ixFor)
	if err != nil {
		t.Fatal(err)
	}

	for round := 0; round < 5; round++ {
		for _, workers := range []int{0, 1, 2, 7, len(c), 4 * len(c)} {
			got, err := ParallelSelection(p, c, opt, ixFor, workers)
			if err != nil {
				t.Fatalf("round %d workers=%d: %v", round, workers, err)
			}
			if len(got) != len(want) {
				t.Fatalf("round %d workers=%d: %d matches, want %d", round, workers, len(got), len(want))
			}
			for i := range want {
				if got[i].G != want[i].G || got[i].M.Nodes[0] != want[i].M.Nodes[0] {
					t.Fatalf("round %d workers=%d: result diverges at %d", round, workers, i)
				}
			}
		}
	}
}

// TestParallelSelectionConcurrentCallers runs several ParallelSelection
// evaluations of the same pattern over the same collection at once — the
// server-shaped workload — so -race can see any hidden shared state
// between evaluations (the compiled pattern, most importantly).
func TestParallelSelectionConcurrentCallers(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test; skipped in -short")
	}
	c := bigCollection(80)
	p := edgePattern()
	if err := p.Compile(); err != nil {
		t.Fatal(err)
	}
	opt := match.Options{Exhaustive: true}
	want, err := Selection(p, c, opt, nil)
	if err != nil {
		t.Fatal(err)
	}

	const callers = 8
	errs := make([]error, callers)
	counts := make([]int, callers)
	var wg sync.WaitGroup
	for k := 0; k < callers; k++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			got, err := ParallelSelection(p, c, opt, nil, 4)
			errs[k] = err
			counts[k] = len(got)
		}()
	}
	wg.Wait()
	for k := 0; k < callers; k++ {
		if errs[k] != nil {
			t.Fatalf("caller %d: %v", k, errs[k])
		}
		if counts[k] != len(want) {
			t.Fatalf("caller %d: %d matches, want %d", k, counts[k], len(want))
		}
	}
}
