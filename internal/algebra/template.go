package algebra

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"gqldb/internal/expr"
	"gqldb/internal/graph"
)

// Template is a graph template (Definition 4.4): formal parameters that are
// patterns (or plain graph variables) and a body that constructs a new
// graph by embedding operand graphs, copying bound nodes, declaring fresh
// nodes and edges with computed attributes, and unifying nodes.
type Template struct {
	// Name names the constructed graph.
	Name string
	// Tag and Attrs compute the constructed graph's own tuple.
	Tag   string
	Attrs []AttrTemplate
	// Members are executed in order.
	Members []TMember
}

// AttrTemplate computes one attribute value from the parameter bindings.
type AttrTemplate struct {
	Name string
	E    expr.Expr
}

// TMember is one template body declaration.
type TMember interface{ isTMember() }

// TGraph embeds the whole graph bound to Var into the result.
type TGraph struct{ Var string }

// TNode declares a result node: either a fresh node (Name, attribute
// templates) or a copy of a bound node (Ref, e.g. ["P","v1"]).
type TNode struct {
	Name  string   // local name; optional for Ref nodes
	Ref   []string // non-nil: copy the node bound to this qualified name
	Tag   string
	Attrs []AttrTemplate
}

// TEdge declares a result edge between two node references (local names or
// qualified references).
type TEdge struct {
	Name     string
	From, To []string
	Tag      string
	Attrs    []AttrTemplate
}

// TUnify merges node A into node B (or a node of B's embedded graph chosen
// by Where). Unifying end nodes also unifies duplicate edges (§2.1).
type TUnify struct {
	A, B  []string
	Where expr.Expr
}

func (TGraph) isTMember() {}
func (TNode) isTMember()  {}
func (TEdge) isTMember()  {}
func (TUnify) isTMember() {}

// Operand is an actual parameter: a matched graph (pattern binding) or a
// plain graph.
type Operand struct {
	Matched *MatchedGraph
	Graph   *graph.Graph
}

// MatchedOperand wraps a matched graph.
func MatchedOperand(m *MatchedGraph) Operand { return Operand{Matched: m} }

// GraphOperand wraps a plain graph.
func GraphOperand(g *graph.Graph) Operand { return Operand{Graph: g} }

// instantiation carries the state of one template application.
type instantiation struct {
	t    *Template
	args map[string]Operand
	out  *graph.Graph
	// byKey maps resolution keys ("local:v1", "P.v1", "C.v2") to result
	// node IDs. Unification rewrites entries in place.
	byKey map[string]graph.NodeID
	// merged maps a result node to its unification representative.
	merged map[graph.NodeID]graph.NodeID
}

// Instantiate applies the template to the given bindings and returns the
// constructed graph: T_P1..Pk(G1, ..., Gk).
func (t *Template) Instantiate(args map[string]Operand) (*graph.Graph, error) {
	ins := &instantiation{
		t:      t,
		args:   args,
		out:    graph.New(t.Name),
		byKey:  make(map[string]graph.NodeID),
		merged: make(map[graph.NodeID]graph.NodeID),
	}
	env := templateEnv{ins: ins}
	if t.Tag != "" || len(t.Attrs) > 0 {
		tp := graph.NewTuple(t.Tag)
		for _, a := range t.Attrs {
			v, err := a.E.Eval(env)
			if err != nil {
				return nil, fmt.Errorf("algebra: template %s attr %s: %w", t.Name, a.Name, err)
			}
			tp.Set(a.Name, v)
		}
		ins.out.Attrs = tp
	}
	for _, m := range t.Members {
		var err error
		switch x := m.(type) {
		case TGraph:
			err = ins.embedGraph(x)
		case TNode:
			err = ins.addNode(x, env)
		case TEdge:
			err = ins.addEdge(x, env)
		case TUnify:
			err = ins.unify(x)
		default:
			err = fmt.Errorf("algebra: unknown template member %T", m)
		}
		if err != nil {
			return nil, err
		}
	}
	out := ins.compact()
	if err := out.Err(); err != nil {
		return nil, fmt.Errorf("algebra: template %s: %w", t.Name, err)
	}
	return out, nil
}

// rep follows unification links to the representative node.
func (ins *instantiation) rep(v graph.NodeID) graph.NodeID {
	for { //gqlvet:ignore ctxpoll -- union-find link chase; merged is acyclic by construction, depth bounded by node count
		w, ok := ins.merged[v]
		if !ok {
			return v
		}
		v = w
	}
}

// embedGraph copies every node and edge of the operand into the result.
// Node keys "Var.name" allow later references and unification.
func (ins *instantiation) embedGraph(m TGraph) error {
	op, ok := ins.args[m.Var]
	if !ok {
		return fmt.Errorf("algebra: template references unbound graph %s", m.Var)
	}
	src := op.Graph
	if src == nil {
		if op.Matched == nil {
			return fmt.Errorf("algebra: operand %s is empty", m.Var)
		}
		src = op.Matched.InducedGraph()
	}
	idMap := make([]graph.NodeID, src.NumNodes())
	for _, n := range src.Nodes() {
		nid := ins.out.AddNode(ins.freshName(n.Name), n.Attrs.Clone())
		idMap[n.ID] = nid
		ins.byKey[m.Var+"."+n.Name] = nid
	}
	for _, e := range src.Edges() {
		ins.out.AddEdge("", idMap[e.From], idMap[e.To], e.Attrs.Clone())
	}
	return nil
}

// freshName returns name, suffixed if already taken in the result.
func (ins *instantiation) freshName(name string) string {
	if _, taken := ins.out.NodeByName(name); !taken {
		return name
	}
	// The suffix keeps names valid identifiers so results re-parse.
	for i := 2; ; i++ { //gqlvet:ignore ctxpoll -- terminates at the first free suffix; bounded by result node count
		c := name + "_" + strconv.Itoa(i)
		if _, taken := ins.out.NodeByName(c); !taken {
			return c
		}
	}
}

// addNode declares a fresh node or copies a bound one.
func (ins *instantiation) addNode(m TNode, env expr.Env) error {
	if m.Ref != nil {
		key := strings.Join(m.Ref, ".")
		if _, dup := ins.byKey[key]; dup {
			return nil // already copied (e.g. declared twice)
		}
		if len(m.Ref) != 2 {
			return fmt.Errorf("algebra: bad node reference %s", key)
		}
		op, ok := ins.args[m.Ref[0]]
		if !ok {
			return fmt.Errorf("algebra: node reference to unbound %s", m.Ref[0])
		}
		var src *graph.Node
		switch {
		case op.Matched != nil:
			n, err := op.Matched.NodeFor(m.Ref[1])
			if err != nil {
				return err
			}
			src = n
		case op.Graph != nil:
			id, ok := op.Graph.NodeByName(m.Ref[1])
			if !ok {
				return fmt.Errorf("algebra: graph %s has no node %s", m.Ref[0], m.Ref[1])
			}
			src = op.Graph.Node(id)
		}
		name := m.Name
		if name == "" {
			name = ins.freshName(m.Ref[0] + "_" + m.Ref[1])
		}
		nid := ins.out.AddNode(ins.freshName(name), src.Attrs.Clone())
		ins.byKey[key] = nid
		if m.Name != "" {
			ins.byKey["local:"+m.Name] = nid
		}
		return nil
	}
	tp := graph.NewTuple(m.Tag)
	for _, a := range m.Attrs {
		v, err := a.E.Eval(env)
		if err != nil {
			return fmt.Errorf("algebra: node %s attr %s: %w", m.Name, a.Name, err)
		}
		tp.Set(a.Name, v)
	}
	nid := ins.out.AddNode(ins.freshName(m.Name), tp)
	ins.byKey["local:"+m.Name] = nid
	return nil
}

// resolveNode maps a node reference to a result node.
func (ins *instantiation) resolveNode(ref []string) (graph.NodeID, error) {
	key := strings.Join(ref, ".")
	if len(ref) == 1 {
		if id, ok := ins.byKey["local:"+ref[0]]; ok {
			return ins.rep(id), nil
		}
		if id, ok := ins.out.NodeByName(ref[0]); ok {
			return ins.rep(id), nil
		}
		return 0, fmt.Errorf("algebra: unknown node %s in template", ref[0])
	}
	if id, ok := ins.byKey[key]; ok {
		return ins.rep(id), nil
	}
	// Implicit copy on first reference (a convenience: edges may mention
	// bound nodes without a prior node declaration).
	if err := ins.addNode(TNode{Ref: ref}, templateEnv{ins: ins}); err != nil {
		return 0, err
	}
	return ins.rep(ins.byKey[key]), nil
}

func (ins *instantiation) addEdge(m TEdge, env expr.Env) error {
	from, err := ins.resolveNode(m.From)
	if err != nil {
		return err
	}
	to, err := ins.resolveNode(m.To)
	if err != nil {
		return err
	}
	tp := graph.NewTuple(m.Tag)
	for _, a := range m.Attrs {
		v, err := a.E.Eval(env)
		if err != nil {
			return fmt.Errorf("algebra: edge %s attr %s: %w", m.Name, a.Name, err)
		}
		tp.Set(a.Name, v)
	}
	if tp.Len() == 0 && tp.Tag == "" {
		ins.out.AddEdge("", from, to, nil)
	} else {
		ins.out.AddEdge("", from, to, tp)
	}
	return nil
}

// unify merges node A into node B. When B's reference does not name a
// concrete node, it ranges over the nodes of B's embedded operand graph and
// the first node satisfying Where is chosen; no satisfying node leaves A
// unmerged (the Figure 4.12 semantics: a new author node stays if no
// existing author has the same name).
func (ins *instantiation) unify(m TUnify) error {
	a, err := ins.resolveNode(m.A)
	if err != nil {
		return err
	}
	bKey := strings.Join(m.B, ".")
	if id, ok := ins.byKey[bKey]; ok {
		return ins.mergeNodes(a, ins.rep(id))
	}
	if len(m.B) == 1 {
		if id, ok := ins.byKey["local:"+m.B[0]]; ok {
			return ins.mergeNodes(a, ins.rep(id))
		}
	}
	// Variable unification over an embedded operand's nodes, in a
	// deterministic (node ID) order.
	if len(m.B) == 2 {
		if _, isOperand := ins.args[m.B[0]]; isOperand {
			prefix := m.B[0] + "."
			var cands []graph.NodeID
			for key, id := range ins.byKey {
				if strings.HasPrefix(key, prefix) {
					cands = append(cands, id)
				}
			}
			sort.Slice(cands, func(i, j int) bool { return cands[i] < cands[j] })
			for _, id := range cands {
				cand := ins.rep(id)
				if cand == ins.rep(a) {
					continue
				}
				ok, err := ins.unifyWhereHolds(m, a, cand)
				if err != nil {
					return err
				}
				if ok {
					return ins.mergeNodes(a, cand)
				}
			}
			return nil // no unification target: A stays a distinct node
		}
	}
	return fmt.Errorf("algebra: unify target %s not found", bKey)
}

// unifyWhereHolds evaluates the unify predicate with A bound to node a and
// the B variable bound to candidate node.
func (ins *instantiation) unifyWhereHolds(m TUnify, a, cand graph.NodeID) (bool, error) {
	if m.Where == nil {
		return true, nil
	}
	env := unifyEnv{
		ins:   ins,
		aName: strings.Join(m.A, "."),
		bName: strings.Join(m.B, "."),
		a:     a,
		b:     cand,
	}
	return expr.Holds(m.Where, env)
}

// mergeNodes redirects a to b. Attributes of b win; missing ones are copied
// from a.
func (ins *instantiation) mergeNodes(a, b graph.NodeID) error {
	a, b = ins.rep(a), ins.rep(b)
	if a == b {
		return nil
	}
	bAttrs := ins.out.Node(b).Attrs
	aAttrs := ins.out.Node(a).Attrs
	if aAttrs != nil {
		if bAttrs == nil {
			bAttrs = graph.NewTuple(aAttrs.Tag)
			ins.out.Node(b).Attrs = bAttrs
		}
		for i := 0; i < aAttrs.Len(); i++ {
			at := aAttrs.At(i)
			if _, has := bAttrs.Get(at.Name); !has {
				bAttrs.Set(at.Name, at.Val)
			}
		}
	}
	ins.merged[a] = b
	return nil
}

// compact rebuilds the result graph: merged nodes are dropped, edges are
// redirected to representatives, and duplicate edges (same endpoints and
// equal attributes) are unified, per §2.1.
func (ins *instantiation) compact() *graph.Graph {
	out := graph.New(ins.t.Name)
	out.Directed = ins.out.Directed
	out.Attrs = ins.out.Attrs
	remap := make([]graph.NodeID, ins.out.NumNodes())
	for i := range remap {
		remap[i] = graph.NoNode
	}
	for _, n := range ins.out.Nodes() {
		if ins.rep(n.ID) != n.ID {
			continue
		}
		remap[n.ID] = out.AddNode(n.Name, n.Attrs)
	}
	type edgeKey struct {
		u, v graph.NodeID
		sig  string
	}
	seen := make(map[edgeKey]bool)
	for _, e := range ins.out.Edges() {
		u := remap[ins.rep(e.From)]
		v := remap[ins.rep(e.To)]
		if !out.Directed && u > v {
			u, v = v, u
		}
		k := edgeKey{u, v, e.Attrs.String()}
		if seen[k] {
			continue
		}
		seen[k] = true
		out.AddEdge("", u, v, e.Attrs)
	}
	return out
}

// templateEnv resolves attribute-template expressions against the operand
// bindings: P.v1.name (matched node attr), P.attr (operand graph attr),
// C.v2.name (embedded graph node attr).
type templateEnv struct{ ins *instantiation }

// Resolve implements expr.Env.
func (e templateEnv) Resolve(parts []string) (graph.Value, error) {
	if len(parts) >= 2 {
		if op, ok := e.ins.args[parts[0]]; ok {
			if op.Matched != nil {
				return op.Matched.Resolve(parts[1:])
			}
			if op.Graph != nil {
				if len(parts) == 2 {
					return op.Graph.Attrs.GetOr(parts[1]), nil
				}
				if id, ok := op.Graph.NodeByName(parts[1]); ok {
					return op.Graph.Node(id).Attrs.GetOr(parts[2]), nil
				}
				if id, ok := op.Graph.EdgeByName(parts[1]); ok {
					return op.Graph.Edge(id).Attrs.GetOr(parts[2]), nil
				}
			}
		}
	}
	return graph.Null, fmt.Errorf("algebra: cannot resolve %v in template", parts)
}

// unifyEnv resolves a unify-clause predicate: the A name and B name map to
// the two candidate result nodes, everything else falls back to operands.
type unifyEnv struct {
	ins          *instantiation
	aName, bName string
	a, b         graph.NodeID
}

// Resolve implements expr.Env.
func (e unifyEnv) Resolve(parts []string) (graph.Value, error) {
	full := strings.Join(parts, ".")
	if strings.HasPrefix(full, e.aName+".") {
		attr := full[len(e.aName)+1:]
		return e.ins.out.Node(e.ins.rep(e.a)).Attrs.GetOr(attr), nil
	}
	if strings.HasPrefix(full, e.bName+".") {
		attr := full[len(e.bName)+1:]
		return e.ins.out.Node(e.ins.rep(e.b)).Attrs.GetOr(attr), nil
	}
	return templateEnv{ins: e.ins}.Resolve(parts)
}
