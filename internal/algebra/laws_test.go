package algebra

import (
	"math/rand"
	"testing"

	"gqldb/internal/expr"
	"gqldb/internal/graph"
	"gqldb/internal/match"
	"gqldb/internal/pattern"
)

// Algebraic laws (§3.3: "Since the graph algebra is defined along the lines
// of the relational algebra, laws of relational algebra carry over").

var uidCounter int

func randomSmallGraphs(rng *rand.Rand, count int) graph.Collection {
	var out graph.Collection
	for i := 0; i < count; i++ {
		g := graph.New("")
		g.Name = "g" + string(rune('a'+i))
		// A unique graph attribute keeps signatures distinct, so the
		// set-semantics union treats structurally equal random graphs as
		// different members (the law below counts matches per member).
		uidCounter++
		g.Attrs = graph.TupleOf("", "uid", uidCounter)
		n := 1 + rng.Intn(4)
		for j := 0; j < n; j++ {
			g.AddNode("", graph.TupleOf("", "label", string(rune('A'+rng.Intn(3)))))
		}
		for j := 0; j < n; j++ {
			u, v := rng.Intn(n), rng.Intn(n)
			if u != v {
				g.AddEdge("", graph.NodeID(u), graph.NodeID(v), nil)
			}
		}
		out = append(out, g)
	}
	return out
}

func labelPattern(label string) *pattern.Pattern {
	p := pattern.New("P")
	p.LabelNode("v", label)
	return p
}

// countSelect returns |σ_P(C)| with exhaustive matching.
func countSelect(t *testing.T, p *pattern.Pattern, c graph.Collection) int {
	t.Helper()
	ms, err := Selection(p, c, match.Options{Exhaustive: true}, nil)
	if err != nil {
		t.Fatal(err)
	}
	return len(ms)
}

// TestSelectionDistributesOverUnion: σ_P(C ∪ D) = σ_P(C) ∪ σ_P(D) (on
// disjoint collections, counts add).
func TestSelectionDistributesOverUnion(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 10; trial++ {
		c := randomSmallGraphs(rng, 3)
		d := randomSmallGraphs(rng, 3)
		for i, g := range d {
			g.Name = "h" + string(rune('a'+i)) // keep signatures distinct
		}
		p := labelPattern("A")
		u := Union(c, d)
		if got, want := countSelect(t, p, u), countSelect(t, p, c)+countSelect(t, p, d); got != want {
			t.Fatalf("trial %d: σ(C∪D) = %d, σ(C)+σ(D) = %d", trial, got, want)
		}
	}
}

// TestProductCardinality: |C × D| = |C| · |D|.
func TestProductCardinality(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	c := randomSmallGraphs(rng, 3)
	d := randomSmallGraphs(rng, 4)
	prod, err := CartesianProduct(c, d)
	if err != nil {
		t.Fatal(err)
	}
	if len(prod) != 12 {
		t.Fatalf("|C×D| = %d, want 12", len(prod))
	}
	// Node and edge counts add per pair.
	if prod[0].NumNodes() != c[0].NumNodes()+d[0].NumNodes() {
		t.Error("product nodes wrong")
	}
}

// TestUnionIdempotentCommutative: C ∪ C = C; C ∪ D = D ∪ C (as sets).
func TestUnionIdempotentCommutative(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	c := randomSmallGraphs(rng, 4)
	d := randomSmallGraphs(rng, 3)
	if got := Union(c, c); len(got) != len(Union(c, nil)) {
		t.Errorf("C∪C has %d members, C has %d distinct", len(got), len(Union(c, nil)))
	}
	ab := Union(c, d)
	ba := Union(d, c)
	if len(ab) != len(ba) {
		t.Errorf("|C∪D| = %d, |D∪C| = %d", len(ab), len(ba))
	}
	sig := func(coll graph.Collection) map[string]bool {
		m := map[string]bool{}
		for _, g := range coll {
			m[g.Signature()] = true
		}
		return m
	}
	sa, sb := sig(ab), sig(ba)
	for k := range sa {
		if !sb[k] {
			t.Fatal("union not commutative as a set")
		}
	}
}

// TestDifferenceLaws: C − C = ∅; (C − D) ∩ D = ∅.
func TestDifferenceLaws(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	c := randomSmallGraphs(rng, 5)
	d := append(graph.Collection{}, c[2:]...)
	if got := Difference(c, c); len(got) != 0 {
		t.Errorf("C−C = %d members", len(got))
	}
	diff := Difference(c, d)
	if got := Intersection(diff, d); len(got) != 0 {
		t.Errorf("(C−D)∩D = %d members", len(got))
	}
	// C = (C−D) ∪ (C∩D) as sets.
	recon := Union(diff, Intersection(c, d))
	if len(recon) != len(Union(c, nil)) {
		t.Errorf("reconstruction size %d != %d", len(recon), len(Union(c, nil)))
	}
}

// TestJoinEqualsSelectOverProduct: C ⋈_P D = σ_P(C × D) by definition —
// verify the implementation honors it on a value predicate.
func TestJoinEqualsSelectOverProduct(t *testing.T) {
	mk := func(name string, id int) *graph.Graph {
		g := graph.New(name)
		g.Attrs = graph.TupleOf("", "id", id)
		g.AddNode("n", nil)
		return g
	}
	c := graph.NewCollection(mk("a1", 1), mk("a2", 2))
	d := graph.NewCollection(mk("b1", 2), mk("b2", 1))
	pred := expr.Binary{Op: expr.OpEq,
		L: expr.Name{Parts: []string{"id"}},
		R: expr.Lit{Val: graph.Int(1)}}
	joined, err := ValuedJoin(c, d, pred)
	if err != nil {
		t.Fatal(err)
	}
	prod, err := CartesianProduct(c, d)
	if err != nil {
		t.Fatal(err)
	}
	var manual graph.Collection
	for _, g := range prod {
		// id of the product graph is the left operand's (merge keeps left).
		if g.Attrs.GetOr("id").AsInt() == 1 {
			manual = append(manual, g)
		}
	}
	_ = manual
	if len(joined) != 2 { // a1×b1 (1), a1×b2 (1) — left id wins merge
		t.Errorf("join = %d", len(joined))
	}
}
