package algebra

import (
	"context"
	"fmt"

	"gqldb/internal/expr"
	"gqldb/internal/graph"
	"gqldb/internal/match"
	"gqldb/internal/pattern"
)

// CartesianProduct computes C × D: each output graph is
// graph { graph G1, G2; } — the two constituent graphs, unconnected (§3.3).
// It is the serial form of CartesianProductContext.
func CartesianProduct(c, d graph.Collection) (graph.Collection, error) {
	return CartesianProductContext(context.Background(), c, d, 1, nil)
}

// mergeAttrs combines two graph tuples; the left side wins on conflicts.
func mergeAttrs(a, b *graph.Tuple) *graph.Tuple {
	if a.Len() == 0 && (a == nil || a.Tag == "") {
		return b.Clone()
	}
	out := a.Clone()
	for i := 0; i < b.Len(); i++ {
		at := b.At(i)
		if _, has := out.Get(at.Name); !has {
			out.Set(at.Name, at.Val)
		}
	}
	return out
}

// ValuedJoin computes C ⋈_P D as σ_P(C × D): the join condition is a
// predicate over attributes of the constituent graphs; the constituents
// stay unconnected (§3.3). The predicate's names are resolved against the
// product graph (node attributes via embedded node names, graph attributes
// bare).
func ValuedJoin(c, d graph.Collection, pred expr.Expr) (graph.Collection, error) {
	return ValuedJoinContext(context.Background(), c, d, pred, 1, nil)
}

// graphEnv resolves names against one plain graph: v.attr for a node (or
// edge) variable, bare attr for the graph tuple.
type graphEnv struct{ g *graph.Graph }

// Resolve implements expr.Env.
func (e graphEnv) Resolve(parts []string) (graph.Value, error) {
	switch len(parts) {
	case 1:
		return e.g.Attrs.GetOr(parts[0]), nil
	case 2:
		if id, ok := e.g.NodeByName(parts[0]); ok {
			return e.g.Node(id).Attrs.GetOr(parts[1]), nil
		}
		if id, ok := e.g.EdgeByName(parts[0]); ok {
			return e.g.Edge(id).Attrs.GetOr(parts[1]), nil
		}
	}
	return graph.Null, fmt.Errorf("algebra: cannot resolve %v in graph %s", parts, e.g.Name)
}

// Compose is the primitive composition operator ω_T(C): instantiate the
// single-parameter template for every matched graph in the collection
// (§3.3). Param is the template's formal parameter name.
func Compose(t *Template, param string, c Matched) (graph.Collection, error) {
	return ComposeContext(context.Background(), t, param, c, 1, nil)
}

// StructuralJoin joins two collections by instantiating a two-parameter
// template for every pair — Cartesian product followed by composition,
// generating new structure (concatenation by edges or unification).
func StructuralJoin(t *Template, p1, p2 string, c, d Matched) (graph.Collection, error) {
	return StructuralJoinContext(context.Background(), t, p1, p2, c, d, 1, nil)
}

// Union computes C ∪ D with set semantics up to graph signature.
func Union(c, d graph.Collection) graph.Collection {
	seen := make(map[string]bool)
	var out graph.Collection
	for _, g := range append(append(graph.Collection{}, c...), d...) {
		sig := g.Signature()
		if !seen[sig] {
			seen[sig] = true
			out = append(out, g)
		}
	}
	return out
}

// Difference computes C − D up to graph signature.
func Difference(c, d graph.Collection) graph.Collection {
	drop := make(map[string]bool, len(d))
	for _, g := range d {
		drop[g.Signature()] = true
	}
	seen := make(map[string]bool)
	var out graph.Collection
	for _, g := range c {
		sig := g.Signature()
		if !drop[sig] && !seen[sig] {
			seen[sig] = true
			out = append(out, g)
		}
	}
	return out
}

// Intersection computes C ∩ D up to graph signature, derived from
// difference: C ∩ D = C − (C − D).
func Intersection(c, d graph.Collection) graph.Collection {
	return Difference(c, Difference(c, d))
}

// Project is the derived projection operator (Theorem 4.5): for every graph
// in the collection, select with pattern p and rewrite the named attributes
// into a fresh single-node graph via composition.
func Project(c graph.Collection, p *pattern.Pattern, attrs [][]string) (graph.Collection, error) {
	sel, err := Selection(p, c, match.Options{Exhaustive: false}, nil)
	if err != nil {
		return nil, err
	}
	t := &Template{Name: "proj"}
	node := TNode{Name: "v"}
	for _, a := range attrs {
		node.Attrs = append(node.Attrs, AttrTemplate{
			Name: a[len(a)-1],
			E:    expr.Name{Parts: append([]string{p.Name}, a...)},
		})
	}
	t.Members = append(t.Members, node)
	return Compose(t, p.Name, sel)
}

// Rename returns copies of the graphs with attribute old renamed to new on
// every node; a derived operator built on composition semantics.
func Rename(c graph.Collection, oldName, newName string) graph.Collection {
	out := make(graph.Collection, len(c))
	for i, g := range c {
		ng := g.Clone()
		for _, n := range ng.Nodes() {
			if v, ok := n.Attrs.Get(oldName); ok {
				attrs := graph.NewTuple(n.Attrs.Tag)
				for j := 0; j < n.Attrs.Len(); j++ {
					a := n.Attrs.At(j)
					if a.Name == oldName {
						attrs.Set(newName, v)
					} else {
						attrs.Set(a.Name, a.Val)
					}
				}
				ng.Node(n.ID).Attrs = attrs
			}
		}
		out[i] = ng
	}
	return out
}
