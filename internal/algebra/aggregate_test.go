package algebra

import (
	"testing"

	"gqldb/internal/expr"
	"gqldb/internal/graph"
)

func paperGraph(title, venue string, year int) *graph.Graph {
	g := graph.New(title)
	g.Attrs = graph.TupleOf("inproceedings", "title", title, "venue", venue, "year", year)
	g.AddNode("t", graph.TupleOf("", "title", title))
	return g
}

func papersColl() graph.Collection {
	return graph.Collection{
		paperGraph("p1", "SIGMOD", 2006),
		paperGraph("p2", "VLDB", 2004),
		paperGraph("p3", "SIGMOD", 2008),
		paperGraph("p4", "ICDE", 2008),
		paperGraph("p5", "SIGMOD", 2002),
	}
}

func attr(name string) expr.Expr { return expr.Name{Parts: []string{name}} }

func TestOrderBy(t *testing.T) {
	out, err := OrderBy(papersColl(), attr("year"), false)
	if err != nil {
		t.Fatal(err)
	}
	years := []int64{}
	for _, g := range out {
		years = append(years, g.Attrs.GetOr("year").AsInt())
	}
	for i := 1; i < len(years); i++ {
		if years[i-1] > years[i] {
			t.Fatalf("ascending order violated: %v", years)
		}
	}
	out, _ = OrderBy(papersColl(), attr("year"), true)
	if out[0].Attrs.GetOr("year").AsInt() != 2008 {
		t.Errorf("descending first = %v", out[0].Attrs.GetOr("year"))
	}
}

func TestOrderByStableAndNullsLast(t *testing.T) {
	c := papersColl()
	// Add a graph without a year: must sort last.
	g := graph.New("noyear")
	g.Attrs = graph.TupleOf("", "title", "x")
	g.AddNode("t", nil)
	c = append(graph.Collection{g}, c...)
	out, err := OrderBy(c, attr("year"), false)
	if err != nil {
		t.Fatal(err)
	}
	if out[len(out)-1].Name != "noyear" {
		t.Errorf("missing key should sort last, got %s", out[len(out)-1].Name)
	}
	// Stability: equal keys keep input order (p3 before p4 in 2008).
	var eq []string
	for _, g := range out {
		if g.Attrs.GetOr("year").AsInt() == 2008 {
			eq = append(eq, g.Name)
		}
	}
	if len(eq) != 2 || eq[0] != "p3" || eq[1] != "p4" {
		t.Errorf("stability violated: %v", eq)
	}
}

func TestTop(t *testing.T) {
	out, err := Top(papersColl(), attr("year"), true, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 2 || out[0].Attrs.GetOr("year").AsInt() != 2008 {
		t.Errorf("top-2 wrong")
	}
	out, _ = Top(papersColl(), attr("year"), true, 99)
	if len(out) != 5 {
		t.Errorf("top-99 should return all")
	}
}

func TestGroupByCountAndStats(t *testing.T) {
	out, err := GroupBy(papersColl(), attr("venue"), "venue", []AggSpec{
		{Fn: AggCount, As: "n"},
		{Fn: AggMin, E: attr("year"), As: "first"},
		{Fn: AggMax, E: attr("year"), As: "last"},
		{Fn: AggAvg, E: attr("year"), As: "avg"},
		{Fn: AggSum, E: attr("year"), As: "sum"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 3 {
		t.Fatalf("groups = %d, want 3", len(out))
	}
	byVenue := map[string]*graph.Tuple{}
	for _, g := range out {
		a := g.Node(0).Attrs
		byVenue[a.GetOr("venue").AsString()] = a
	}
	sig := byVenue["SIGMOD"]
	if sig.GetOr("n").AsInt() != 3 {
		t.Errorf("SIGMOD count = %v", sig.GetOr("n"))
	}
	if sig.GetOr("first").AsInt() != 2002 || sig.GetOr("last").AsInt() != 2008 {
		t.Errorf("SIGMOD min/max = %v/%v", sig.GetOr("first"), sig.GetOr("last"))
	}
	if got := sig.GetOr("avg").AsFloat(); got < 2005.3 || got > 2005.4 {
		t.Errorf("SIGMOD avg = %v", got)
	}
	if sig.GetOr("sum").AsInt() != 6016 {
		t.Errorf("SIGMOD sum = %v", sig.GetOr("sum"))
	}
	// First-seen group order.
	if out[0].Node(0).Attrs.GetOr("venue").AsString() != "SIGMOD" {
		t.Errorf("group order not first-seen")
	}
}

func TestGroupByMissingValues(t *testing.T) {
	c := papersColl()
	g := graph.New("ny")
	g.Attrs = graph.TupleOf("", "venue", "SIGMOD") // no year
	g.AddNode("t", nil)
	c = append(c, g)
	out, err := GroupBy(c, attr("venue"), "venue", []AggSpec{
		{Fn: AggCount, As: "n"},
		{Fn: AggMin, E: attr("year"), As: "first"},
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, og := range out {
		a := og.Node(0).Attrs
		if a.GetOr("venue").AsString() == "SIGMOD" {
			if a.GetOr("n").AsInt() != 4 {
				t.Errorf("count should include missing-year member")
			}
			if a.GetOr("first").AsInt() != 2002 {
				t.Errorf("min should skip missing values")
			}
		}
	}
}
