package algebra

import (
	"context"
	"time"

	"gqldb/internal/expr"
	"gqldb/internal/graph"
	"gqldb/internal/match"
	"gqldb/internal/pattern"
	"gqldb/internal/pool"
)

// The context-aware bulk operators below are the parallel (and cancellable)
// forms of the §3.3 algebra. They all share the same contract:
//
//   - workers <= 0 means GOMAXPROCS, workers == 1 is the serial path; either
//     way the context is polled at least once per work item, and selection
//     additionally polls inside every backtracking step via match.FindContext.
//   - Output order is byte-identical to the serial operator: work is
//     index-addressed into pre-sized slots (pool.Run), then concatenated in
//     input order. Parallelism never changes a result.
//   - On error the operator returns the same error the serial evaluation
//     would have hit first (the pool's lowest-index error guarantee).
//   - stats may be nil; when set, one match.OpStat with the operator name,
//     item count, resolved worker count and wall time is appended — the §5
//     harness plots parallel speedup from these records.

// SelectionContext evaluates σ_P(C) like Selection with cancellation and a
// bounded worker pool: collection members are matched concurrently, matched
// graphs stay grouped by collection order with bindings in discovery order.
func SelectionContext(ctx context.Context, p *pattern.Pattern, c graph.Collection, opt match.Options, ixFor func(*graph.Graph) *match.Index, workers int, stats *match.Stats) (Matched, error) {
	if err := p.Compile(); err != nil {
		return nil, err
	}
	workers = pool.Workers(workers, len(c))
	slots := make([]Matched, len(c))
	start := time.Now()
	err := pool.Run(ctx, len(c), workers, func(i int) error {
		g := c[i]
		var ix *match.Index
		if ixFor != nil {
			ix = ixFor(g)
		}
		maps, _, err := match.FindContext(ctx, p, g, ix, opt)
		if err != nil {
			return err
		}
		for _, m := range maps {
			slots[i] = append(slots[i], &MatchedGraph{P: p, G: g, M: m})
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	stats.RecordOp("selection", len(c), workers, time.Since(start))
	var out Matched
	for _, ms := range slots {
		out = append(out, ms...)
	}
	return out, nil
}

// ParallelSelection is SelectionContext without cancellation or stats; kept
// as the original entry point of the parallel selection path.
func ParallelSelection(p *pattern.Pattern, c graph.Collection, opt match.Options, ixFor func(*graph.Graph) *match.Index, workers int) (Matched, error) {
	return SelectionContext(context.Background(), p, c, opt, ixFor, workers, nil)
}

// CartesianProductContext computes C × D like CartesianProduct on a worker
// pool: pair (i, j) is instantiated into slot i*|D|+j, so the output order
// is exactly the serial nested-loop order.
func CartesianProductContext(ctx context.Context, c, d graph.Collection, workers int, stats *match.Stats) (graph.Collection, error) {
	t := &Template{Name: "", Members: []TMember{TGraph{Var: "G1"}, TGraph{Var: "G2"}}}
	n := len(c) * len(d)
	workers = pool.Workers(workers, n)
	out := make(graph.Collection, n)
	start := time.Now()
	err := pool.Run(ctx, n, workers, func(i int) error {
		g1, g2 := c[i/len(d)], d[i%len(d)]
		g, err := t.Instantiate(map[string]Operand{
			"G1": GraphOperand(g1),
			"G2": GraphOperand(g2),
		})
		if err != nil {
			return err
		}
		g.Attrs = mergeAttrs(g1.Attrs, g2.Attrs)
		out[i] = g
		return nil
	})
	if err != nil {
		return nil, err
	}
	stats.RecordOp("product", n, workers, time.Since(start))
	return out, nil
}

// ValuedJoinContext computes C ⋈_P D = σ_P(C × D) on a worker pool: each
// pair is built and filtered in one parallel step (slot left nil when the
// predicate rejects), then compacted in pair order — the same sequence the
// serial ValuedJoin emits.
func ValuedJoinContext(ctx context.Context, c, d graph.Collection, pred expr.Expr, workers int, stats *match.Stats) (graph.Collection, error) {
	if pred == nil {
		return CartesianProductContext(ctx, c, d, workers, stats)
	}
	t := &Template{Name: "", Members: []TMember{TGraph{Var: "G1"}, TGraph{Var: "G2"}}}
	n := len(c) * len(d)
	workers = pool.Workers(workers, n)
	slots := make(graph.Collection, n)
	start := time.Now()
	err := pool.Run(ctx, n, workers, func(i int) error {
		g1, g2 := c[i/len(d)], d[i%len(d)]
		g, err := t.Instantiate(map[string]Operand{
			"G1": GraphOperand(g1),
			"G2": GraphOperand(g2),
		})
		if err != nil {
			return err
		}
		g.Attrs = mergeAttrs(g1.Attrs, g2.Attrs)
		ok, err := expr.Holds(pred, graphEnv{g})
		if err != nil {
			return err
		}
		if ok {
			slots[i] = g
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	stats.RecordOp("valued-join", n, workers, time.Since(start))
	var out graph.Collection
	for _, g := range slots {
		if g != nil {
			out = append(out, g)
		}
	}
	return out, nil
}

// ComposeContext computes ω_T(C) like Compose on a worker pool; slot i holds
// the instantiation for matched graph i, preserving collection order.
func ComposeContext(ctx context.Context, t *Template, param string, c Matched, workers int, stats *match.Stats) (graph.Collection, error) {
	workers = pool.Workers(workers, len(c))
	out := make(graph.Collection, len(c))
	start := time.Now()
	err := pool.Run(ctx, len(c), workers, func(i int) error {
		g, err := t.Instantiate(map[string]Operand{param: MatchedOperand(c[i])})
		if err != nil {
			return err
		}
		out[i] = g
		return nil
	})
	if err != nil {
		return nil, err
	}
	stats.RecordOp("compose", len(c), workers, time.Since(start))
	return out, nil
}

// StructuralJoinContext joins like StructuralJoin on a worker pool: pair
// (i, j) instantiates into slot i*|D|+j, matching the serial pair order.
func StructuralJoinContext(ctx context.Context, t *Template, p1, p2 string, c, d Matched, workers int, stats *match.Stats) (graph.Collection, error) {
	n := len(c) * len(d)
	workers = pool.Workers(workers, n)
	out := make(graph.Collection, n)
	start := time.Now()
	err := pool.Run(ctx, n, workers, func(i int) error {
		g, err := t.Instantiate(map[string]Operand{
			p1: MatchedOperand(c[i/len(d)]),
			p2: MatchedOperand(d[i%len(d)]),
		})
		if err != nil {
			return err
		}
		out[i] = g
		return nil
	})
	if err != nil {
		return nil, err
	}
	stats.RecordOp("structural-join", n, workers, time.Since(start))
	return out, nil
}
