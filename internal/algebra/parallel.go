package algebra

import (
	"context"
	"time"

	"gqldb/internal/expr"
	"gqldb/internal/graph"
	"gqldb/internal/match"
	"gqldb/internal/obs"
	"gqldb/internal/pattern"
	"gqldb/internal/pool"
)

// startOpSpan opens the operator's trace span (a no-op returning a nil span
// unless the context carries a trace) and stamps the fan-out shape every
// bulk operator shares.
func startOpSpan(ctx context.Context, op string, items, workers int) (context.Context, *obs.Span) {
	ctx, sp := obs.StartSpan(ctx, op)
	if sp != nil {
		sp.Add("items", int64(items))
		sp.Add("workers", int64(workers))
	}
	return ctx, sp
}

// sumInts totals one per-pattern-node candidate-count vector.
func sumInts(xs []int) int64 {
	var s int64
	for _, x := range xs {
		s += int64(x)
	}
	return s
}

// The context-aware bulk operators below are the parallel (and cancellable)
// forms of the §3.3 algebra. They all share the same contract:
//
//   - workers <= 0 means GOMAXPROCS, workers == 1 is the serial path; either
//     way the context is polled at least once per work item, and selection
//     additionally polls inside every backtracking step via match.FindContext.
//   - Output order is byte-identical to the serial operator: work is
//     index-addressed into pre-sized slots (pool.Run), then concatenated in
//     input order. Parallelism never changes a result.
//   - On error the operator returns the same error the serial evaluation
//     would have hit first (the pool's lowest-index error guarantee).
//   - stats may be nil; when set, one match.OpStat with the operator name,
//     item count, resolved worker count and wall time is appended — the §5
//     harness plots parallel speedup from these records.

// SelectionContext evaluates σ_P(C) like Selection with cancellation and a
// bounded worker pool: collection members are matched concurrently, matched
// graphs stay grouped by collection order with bindings in discovery order.
func SelectionContext(ctx context.Context, p *pattern.Pattern, c graph.Collection, opt match.Options, ixFor func(*graph.Graph) *match.Index, workers int, stats *match.Stats) (Matched, error) {
	if err := p.Compile(); err != nil {
		return nil, err
	}
	workers = pool.Workers(workers, len(c))
	slots := make([]Matched, len(c))
	sctx, sp := startOpSpan(ctx, "selection", len(c), workers)
	start := time.Now()
	err := pool.Run(sctx, len(c), workers, func(i int) error {
		g := c[i]
		var ix *match.Index
		if ixFor != nil {
			ix = ixFor(g)
		}
		maps, st, err := match.FindContext(sctx, p, g, ix, opt)
		if err != nil {
			return err
		}
		if sp != nil {
			// Aggregate the §4 access-method counters across the collection:
			// candidate-space sizes before/after local pruning and refinement,
			// backtracking steps, and mappings found. Span.Add is worker-safe.
			sp.Add("cand_baseline", sumInts(st.CandBaseline))
			sp.Add("cand_local", sumInts(st.CandLocal))
			sp.Add("cand_refined", sumInts(st.CandRefined))
			sp.Add("search_steps", st.SearchSteps)
			sp.Add("matches", int64(len(maps)))
			if st.PlanCacheHit {
				sp.Add("plan_cache_hits", 1)
			} else if opt.Plans != nil {
				sp.Add("plan_cache_misses", 1)
			}
		}
		if len(maps) > 0 {
			// One batch allocation per graph instead of one per match; the
			// slot header append stays per-match but reuses slot capacity.
			mgs := make([]MatchedGraph, len(maps))
			for j, m := range maps {
				mgs[j] = MatchedGraph{P: p, G: g, M: m}
				slots[i] = append(slots[i], &mgs[j])
			}
		}
		return nil
	})
	if err != nil {
		sp.End()
		return nil, err
	}
	wall := time.Since(start)
	stats.RecordOp("selection", len(c), workers, wall)
	obs.SelectionSeconds.Observe(wall)
	var out Matched
	for _, ms := range slots {
		out = append(out, ms...)
	}
	obs.Matches.Add(int64(len(out)))
	sp.SetAttr("pattern", p.Name)
	sp.End()
	return out, nil
}

// ParallelSelection is SelectionContext without cancellation or stats; kept
// as the original entry point of the parallel selection path.
func ParallelSelection(p *pattern.Pattern, c graph.Collection, opt match.Options, ixFor func(*graph.Graph) *match.Index, workers int) (Matched, error) {
	return SelectionContext(context.Background(), p, c, opt, ixFor, workers, nil)
}

// CartesianProductContext computes C × D like CartesianProduct on a worker
// pool: pair (i, j) is instantiated into slot i*|D|+j, so the output order
// is exactly the serial nested-loop order.
func CartesianProductContext(ctx context.Context, c, d graph.Collection, workers int, stats *match.Stats) (graph.Collection, error) {
	t := &Template{Name: "", Members: []TMember{TGraph{Var: "G1"}, TGraph{Var: "G2"}}}
	n := len(c) * len(d)
	workers = pool.Workers(workers, n)
	out := make(graph.Collection, n)
	sctx, sp := startOpSpan(ctx, "product", n, workers)
	start := time.Now()
	err := pool.Run(sctx, n, workers, func(i int) error {
		g1, g2 := c[i/len(d)], d[i%len(d)]
		g, err := t.Instantiate(map[string]Operand{
			"G1": GraphOperand(g1),
			"G2": GraphOperand(g2),
		})
		if err != nil {
			return err
		}
		g.Attrs = mergeAttrs(g1.Attrs, g2.Attrs)
		out[i] = g
		return nil
	})
	sp.End()
	if err != nil {
		return nil, err
	}
	stats.RecordOp("product", n, workers, time.Since(start))
	return out, nil
}

// ValuedJoinContext computes C ⋈_P D = σ_P(C × D) on a worker pool: each
// pair is built and filtered in one parallel step (slot left nil when the
// predicate rejects), then compacted in pair order — the same sequence the
// serial ValuedJoin emits.
func ValuedJoinContext(ctx context.Context, c, d graph.Collection, pred expr.Expr, workers int, stats *match.Stats) (graph.Collection, error) {
	if pred == nil {
		return CartesianProductContext(ctx, c, d, workers, stats)
	}
	t := &Template{Name: "", Members: []TMember{TGraph{Var: "G1"}, TGraph{Var: "G2"}}}
	n := len(c) * len(d)
	workers = pool.Workers(workers, n)
	slots := make(graph.Collection, n)
	sctx, sp := startOpSpan(ctx, "valued-join", n, workers)
	start := time.Now()
	err := pool.Run(sctx, n, workers, func(i int) error {
		g1, g2 := c[i/len(d)], d[i%len(d)]
		g, err := t.Instantiate(map[string]Operand{
			"G1": GraphOperand(g1),
			"G2": GraphOperand(g2),
		})
		if err != nil {
			return err
		}
		g.Attrs = mergeAttrs(g1.Attrs, g2.Attrs)
		ok, err := expr.Holds(pred, graphEnv{g})
		if err != nil {
			return err
		}
		if ok {
			slots[i] = g
		}
		return nil
	})
	if err != nil {
		sp.End()
		return nil, err
	}
	stats.RecordOp("valued-join", n, workers, time.Since(start))
	var out graph.Collection
	for _, g := range slots {
		if g != nil {
			out = append(out, g)
		}
	}
	sp.Add("kept", int64(len(out)))
	sp.End()
	return out, nil
}

// ComposeContext computes ω_T(C) like Compose on a worker pool; slot i holds
// the instantiation for matched graph i, preserving collection order.
func ComposeContext(ctx context.Context, t *Template, param string, c Matched, workers int, stats *match.Stats) (graph.Collection, error) {
	workers = pool.Workers(workers, len(c))
	out := make(graph.Collection, len(c))
	sctx, sp := startOpSpan(ctx, "compose", len(c), workers)
	start := time.Now()
	err := pool.Run(sctx, len(c), workers, func(i int) error {
		g, err := t.Instantiate(map[string]Operand{param: MatchedOperand(c[i])})
		if err != nil {
			return err
		}
		out[i] = g
		return nil
	})
	sp.End()
	if err != nil {
		return nil, err
	}
	stats.RecordOp("compose", len(c), workers, time.Since(start))
	return out, nil
}

// StructuralJoinContext joins like StructuralJoin on a worker pool: pair
// (i, j) instantiates into slot i*|D|+j, matching the serial pair order.
func StructuralJoinContext(ctx context.Context, t *Template, p1, p2 string, c, d Matched, workers int, stats *match.Stats) (graph.Collection, error) {
	n := len(c) * len(d)
	workers = pool.Workers(workers, n)
	out := make(graph.Collection, n)
	sctx, sp := startOpSpan(ctx, "structural-join", n, workers)
	start := time.Now()
	err := pool.Run(sctx, n, workers, func(i int) error {
		g, err := t.Instantiate(map[string]Operand{
			p1: MatchedOperand(c[i/len(d)]),
			p2: MatchedOperand(d[i%len(d)]),
		})
		if err != nil {
			return err
		}
		out[i] = g
		return nil
	})
	sp.End()
	if err != nil {
		return nil, err
	}
	stats.RecordOp("structural-join", n, workers, time.Since(start))
	return out, nil
}
