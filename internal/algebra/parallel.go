package algebra

import (
	"runtime"
	"sync"
	"sync/atomic"

	"gqldb/internal/graph"
	"gqldb/internal/match"
	"gqldb/internal/pattern"
)

// ParallelSelection evaluates σ_P(C) like Selection but matches collection
// members on workers goroutines (0 = GOMAXPROCS). Output order is the same
// as Selection's: matched graphs grouped by collection order, bindings in
// discovery order — parallelism never changes the result. Useful for the
// "large collection of small graphs" regime (§4), where per-graph matching
// is cheap but the collection is big.
func ParallelSelection(p *pattern.Pattern, c graph.Collection, opt match.Options, ixFor func(*graph.Graph) *match.Index, workers int) (Matched, error) {
	if err := p.Compile(); err != nil {
		return nil, err
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(c) {
		workers = len(c)
	}
	if workers <= 1 {
		return Selection(p, c, opt, ixFor)
	}

	type result struct {
		ms  Matched
		err error
	}
	results := make([]result, len(c))
	var wg sync.WaitGroup
	// Chunked work stealing: per-graph matching is often microseconds, so
	// workers claim batches of indices with one atomic op instead of a
	// channel receive per graph.
	const chunk = 16
	var cursor atomic.Int64
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				start := int(cursor.Add(chunk)) - chunk
				if start >= len(c) {
					return
				}
				end := start + chunk
				if end > len(c) {
					end = len(c)
				}
				for i := start; i < end; i++ {
					g := c[i]
					var ix *match.Index
					if ixFor != nil {
						ix = ixFor(g)
					}
					maps, _, err := match.Find(p, g, ix, opt)
					if err != nil {
						results[i].err = err
						continue
					}
					for _, m := range maps {
						results[i].ms = append(results[i].ms, &MatchedGraph{P: p, G: g, M: m})
					}
				}
			}
		}()
	}
	wg.Wait()

	var out Matched
	for i := range results {
		if results[i].err != nil {
			return nil, results[i].err
		}
		out = append(out, results[i].ms...)
	}
	return out, nil
}
