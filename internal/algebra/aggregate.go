package algebra

import (
	"fmt"
	"sort"

	"gqldb/internal/expr"
	"gqldb/internal/graph"
)

// Ordering and aggregation operators over collections — §7 lists
// "operators such as ordering (ranking), aggregation (OLAP processing)" as
// the next operators a graph algebra needs. Both evaluate expressions
// against each member graph with the same name resolution as valued joins
// (graphEnv): bare names read graph attributes, v.attr reads node v.

// OrderBy returns the collection sorted by the expression's value
// (ascending; descending when desc). Incomparable or missing values sort
// last; the sort is stable.
func OrderBy(c graph.Collection, key expr.Expr, desc bool) (graph.Collection, error) {
	type keyed struct {
		g *graph.Graph
		v graph.Value
	}
	ks := make([]keyed, len(c))
	for i, g := range c {
		v, err := key.Eval(graphEnv{g})
		if err != nil {
			return nil, fmt.Errorf("algebra: order key on %s: %w", g.Name, err)
		}
		ks[i] = keyed{g, v}
	}
	sort.SliceStable(ks, func(i, j int) bool {
		ci, err := ks[i].v.Compare(ks[j].v)
		if err != nil {
			// Incomparable: nulls/mismatches last regardless of direction.
			return !ks[i].v.IsNull() && ks[j].v.IsNull()
		}
		if desc {
			return ci > 0
		}
		return ci < 0
	})
	out := make(graph.Collection, len(ks))
	for i, k := range ks {
		out[i] = k.g
	}
	return out, nil
}

// Top returns the first k members of the ordered collection (ranking).
func Top(c graph.Collection, key expr.Expr, desc bool, k int) (graph.Collection, error) {
	sorted, err := OrderBy(c, key, desc)
	if err != nil {
		return nil, err
	}
	if k > len(sorted) {
		k = len(sorted)
	}
	return sorted[:k], nil
}

// AggFunc names an aggregate function.
type AggFunc uint8

// Aggregate functions.
const (
	AggCount AggFunc = iota
	AggSum
	AggMin
	AggMax
	AggAvg
)

// String returns the function name.
func (f AggFunc) String() string {
	return [...]string{"count", "sum", "min", "max", "avg"}[f]
}

// AggSpec is one aggregate column: fn applied to the value expression
// (nil for AggCount).
type AggSpec struct {
	Fn AggFunc
	E  expr.Expr
	As string
}

// GroupBy groups the collection by the key expression and computes the
// aggregates per group. The result is a collection of single-node graphs:
// the node carries the group key under keyName plus one attribute per
// aggregate — the same relation-as-graphs encoding the Theorem 4.5 bridge
// uses. Groups are emitted in first-seen order.
func GroupBy(c graph.Collection, key expr.Expr, keyName string, aggs []AggSpec) (graph.Collection, error) {
	type acc struct {
		key   graph.Value
		count int64
		sums  []graph.Value
		mins  []graph.Value
		maxs  []graph.Value
	}
	var order []string
	groups := map[string]*acc{}
	for _, g := range c {
		kv, err := key.Eval(graphEnv{g})
		if err != nil {
			return nil, fmt.Errorf("algebra: group key on %s: %w", g.Name, err)
		}
		ks := kv.String()
		a, ok := groups[ks]
		if !ok {
			a = &acc{key: kv,
				sums: make([]graph.Value, len(aggs)),
				mins: make([]graph.Value, len(aggs)),
				maxs: make([]graph.Value, len(aggs)),
			}
			groups[ks] = a
			order = append(order, ks)
		}
		a.count++
		for i, spec := range aggs {
			if spec.E == nil {
				continue
			}
			v, err := spec.E.Eval(graphEnv{g})
			if err != nil {
				return nil, fmt.Errorf("algebra: aggregate %s on %s: %w", spec.As, g.Name, err)
			}
			if v.IsNull() {
				continue
			}
			if a.sums[i].IsNull() {
				a.sums[i] = v
			} else if s, err := graph.Arith('+', a.sums[i], v); err == nil {
				a.sums[i] = s
			}
			if a.mins[i].IsNull() {
				a.mins[i] = v
			} else if cmp, err := v.Compare(a.mins[i]); err == nil && cmp < 0 {
				a.mins[i] = v
			}
			if a.maxs[i].IsNull() {
				a.maxs[i] = v
			} else if cmp, err := v.Compare(a.maxs[i]); err == nil && cmp > 0 {
				a.maxs[i] = v
			}
		}
	}
	out := make(graph.Collection, 0, len(order))
	for _, ks := range order {
		a := groups[ks]
		g := graph.New("group")
		attrs := graph.NewTuple("")
		attrs.Set(keyName, a.key)
		for i, spec := range aggs {
			var v graph.Value
			switch spec.Fn {
			case AggCount:
				v = graph.Int(a.count)
			case AggSum:
				v = a.sums[i]
			case AggMin:
				v = a.mins[i]
			case AggMax:
				v = a.maxs[i]
			case AggAvg:
				if !a.sums[i].IsNull() {
					av, err := graph.Arith('/', a.sums[i], graph.Int(a.count))
					if err == nil {
						v = av
					}
				}
			}
			attrs.Set(spec.As, v)
		}
		g.AddNode("t", attrs)
		out = append(out, g)
	}
	return out, nil
}
