package algebra

import (
	"testing"

	"gqldb/internal/expr"
	"gqldb/internal/graph"
	"gqldb/internal/match"
	"gqldb/internal/pattern"
)

func eq(l, r expr.Expr) expr.Expr  { return expr.Binary{Op: expr.OpEq, L: l, R: r} }
func nm(parts ...string) expr.Expr { return expr.Name{Parts: parts} }
func lit(s string) expr.Expr       { return expr.Lit{Val: graph.String(s)} }

// fig47 is the sample paper graph of Figure 4.7.
func fig47() *graph.Graph {
	g := graph.New("G")
	g.Attrs = graph.NewTuple("inproceedings")
	g.AddNode("v1", graph.TupleOf("", "title", "Title1", "year", 2006))
	g.AddNode("v2", graph.TupleOf("author", "name", "A"))
	g.AddNode("v3", graph.TupleOf("author", "name", "B"))
	return g
}

// fig48 is the graph pattern of Figure 4.8.
func fig48(t *testing.T) *pattern.Pattern {
	t.Helper()
	p := pattern.New("P")
	p.AddNode("v1", nil, eq(nm("name"), lit("A")))
	p.AddNode("v2", nil, expr.Binary{Op: expr.OpGt, L: nm("year"), R: expr.Lit{Val: graph.Int(2000)}})
	if err := p.Compile(); err != nil {
		t.Fatal(err)
	}
	return p
}

func TestSelectionFig49(t *testing.T) {
	// The pattern of Fig 4.8 matches the graph of Fig 4.7 with
	// Φ(P.v1)→G.v2, Φ(P.v2)→G.v1.
	ms, err := Selection(fig48(t), graph.NewCollection(fig47()), match.Options{Exhaustive: true}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) != 1 {
		t.Fatalf("matches = %d, want 1", len(ms))
	}
	n1, err := ms[0].NodeFor("v1")
	if err != nil {
		t.Fatal(err)
	}
	n2, _ := ms[0].NodeFor("v2")
	if n1.Name != "v2" || n2.Name != "v1" {
		t.Errorf("mapping = v1->%s v2->%s, want v1->v2 v2->v1", n1.Name, n2.Name)
	}
}

// TestTemplateFig411 instantiates the graph template of Figure 4.11:
// T_P = graph { node v1 <label=P.v1.name>; node v2 <label=P.v2.title>;
// edge e1 (v1,v2); } applied to the Fig 4.8/4.7 binding yields nodes
// labelled "A" and "Title1" joined by an edge.
func TestTemplateFig411(t *testing.T) {
	ms, err := Selection(fig48(t), graph.NewCollection(fig47()), match.Options{Exhaustive: true}, nil)
	if err != nil {
		t.Fatal(err)
	}
	tmpl := &Template{
		Name: "T",
		Members: []TMember{
			TNode{Name: "v1", Attrs: []AttrTemplate{{Name: "label", E: nm("P", "v1", "name")}}},
			TNode{Name: "v2", Attrs: []AttrTemplate{{Name: "label", E: nm("P", "v2", "title")}}},
			TEdge{Name: "e1", From: []string{"v1"}, To: []string{"v2"}},
		},
	}
	out, err := Compose(tmpl, "P", ms)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 1 {
		t.Fatalf("composed = %d graphs, want 1", len(out))
	}
	g := out[0]
	if g.NumNodes() != 2 || g.NumEdges() != 1 {
		t.Fatalf("result shape %d/%d, want 2/1", g.NumNodes(), g.NumEdges())
	}
	v1, _ := g.NodeByName("v1")
	v2, _ := g.NodeByName("v2")
	if g.Node(v1).Attrs.GetOr("label").AsString() != "A" {
		t.Errorf("v1 label = %v", g.Node(v1).Attrs.GetOr("label"))
	}
	if g.Node(v2).Attrs.GetOr("label").AsString() != "Title1" {
		t.Errorf("v2 label = %v", g.Node(v2).Attrs.GetOr("label"))
	}
}

func TestCartesianProduct(t *testing.T) {
	g1 := graph.New("G1")
	g1.AddNode("x", graph.TupleOf("", "label", "X"))
	g2 := graph.New("G2")
	a := g2.AddNode("a", nil)
	b := g2.AddNode("b", nil)
	g2.AddEdge("", a, b, nil)
	prod, err := CartesianProduct(graph.NewCollection(g1, g1), graph.NewCollection(g2))
	if err != nil {
		t.Fatal(err)
	}
	if len(prod) != 2 {
		t.Fatalf("product size = %d, want 2", len(prod))
	}
	// Each product graph has 3 nodes, 1 edge, constituents unconnected.
	for _, g := range prod {
		if g.NumNodes() != 3 || g.NumEdges() != 1 {
			t.Errorf("product graph shape %d/%d, want 3/1", g.NumNodes(), g.NumEdges())
		}
	}
}

func TestValuedJoinFig410(t *testing.T) {
	// graph { graph G1, G2 } where G1.id = G2.id — constituents with equal
	// graph attribute id.
	mk := func(name string, id int) *graph.Graph {
		g := graph.New(name)
		g.Attrs = graph.TupleOf("", "id", id)
		g.AddNode(name+"n", nil)
		return g
	}
	c := graph.NewCollection(mk("a1", 1), mk("a2", 2))
	d := graph.NewCollection(mk("b1", 1), mk("b2", 3))
	// In the product graph, the left operand's attrs win the merge; join on
	// an attribute both sides carry requires node-level access, so give the
	// graphs id-carrying nodes instead.
	pred := eq(nm("a1n", "gid"), nm("b1n", "gid"))
	_ = pred
	// Simpler: join where the merged graph attr id equals 1 (left wins).
	out, err := ValuedJoin(c, d, eq(nm("id"), expr.Lit{Val: graph.Int(1)}))
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 2 { // a1×b1, a1×b2
		t.Errorf("join size = %d, want 2", len(out))
	}
}

func TestValuedJoinOnNodeAttrs(t *testing.T) {
	mk := func(node string, val string) *graph.Graph {
		g := graph.New("g")
		g.AddNode(node, graph.TupleOf("", "k", val))
		return g
	}
	c := graph.NewCollection(mk("x", "1"), mk("x", "2"))
	d := graph.NewCollection(mk("y", "2"), mk("y", "3"))
	out, err := ValuedJoin(c, d, eq(nm("x", "k"), nm("y", "k")))
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 1 {
		t.Fatalf("join size = %d, want 1", len(out))
	}
	g := out[0]
	x, _ := g.NodeByName("x")
	if g.Node(x).Attrs.GetOr("k").AsString() != "2" {
		t.Errorf("joined x.k = %v, want 2", g.Node(x).Attrs.GetOr("k"))
	}
}

func TestSetOperators(t *testing.T) {
	mk := func(label string) *graph.Graph {
		g := graph.New("g")
		g.AddNode("v", graph.TupleOf("", "label", label))
		return g
	}
	c := graph.NewCollection(mk("A"), mk("B"), mk("A")) // duplicate A
	d := graph.NewCollection(mk("B"), mk("C"))
	if got := Union(c, d); len(got) != 3 { // A, B, C
		t.Errorf("union = %d, want 3", len(got))
	}
	if got := Difference(c, d); len(got) != 1 || got[0].Node(0).Attrs.GetOr("label").AsString() != "A" {
		t.Errorf("difference wrong: %d", len(got))
	}
	if got := Intersection(c, d); len(got) != 1 || got[0].Node(0).Attrs.GetOr("label").AsString() != "B" {
		t.Errorf("intersection wrong: %d", len(got))
	}
}

func TestProject(t *testing.T) {
	p := pattern.New("P")
	p.AddNode("v1", graph.NewTuple("author"), nil)
	c := graph.NewCollection(fig47())
	out, err := Project(c, p, [][]string{{"v1", "name"}})
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 1 || out[0].NumNodes() != 1 {
		t.Fatalf("projection shape wrong")
	}
	if got := out[0].Node(0).Attrs.GetOr("name").AsString(); got != "A" && got != "B" {
		t.Errorf("projected name = %q", got)
	}
}

func TestRename(t *testing.T) {
	c := graph.NewCollection(fig47())
	out := Rename(c, "name", "author_name")
	v2, _ := out[0].NodeByName("v2")
	if out[0].Node(v2).Attrs.GetOr("author_name").AsString() != "A" {
		t.Error("rename lost value")
	}
	if _, ok := out[0].Node(v2).Attrs.Get("name"); ok {
		t.Error("old attribute still present")
	}
	// Original untouched.
	g0, _ := c[0].NodeByName("v2")
	if _, ok := c[0].Node(g0).Attrs.Get("name"); !ok {
		t.Error("rename mutated input")
	}
}

// dblp builds the two-paper DBLP collection of Figure 4.13.
func dblp() graph.Collection {
	g1 := graph.New("G1")
	g1.Attrs = graph.TupleOf("inproceedings", "booktitle", "SIGMOD")
	g1.AddNode("v1", graph.TupleOf("author", "name", "A"))
	g1.AddNode("v2", graph.TupleOf("author", "name", "B"))
	g2 := graph.New("G2")
	g2.Attrs = graph.TupleOf("inproceedings", "booktitle", "SIGMOD")
	g2.AddNode("v1", graph.TupleOf("author", "name", "C"))
	g2.AddNode("v2", graph.TupleOf("author", "name", "D"))
	g2.AddNode("v3", graph.TupleOf("author", "name", "A"))
	return graph.NewCollection(g1, g2)
}

// TestCoauthorshipFig413 runs the Figure 4.12 query at the algebra level:
// iteratively compose each matched author pair into the accumulator with
// name-based unification, and check the final co-authorship graph of
// Figure 4.13: nodes {A,B,C,D}, edges {A-B, C-D, A-C, A-D}.
func TestCoauthorshipFig413(t *testing.T) {
	p := pattern.New("P")
	p.AddNode("v1", graph.NewTuple("author"), nil)
	p.AddNode("v2", graph.NewTuple("author"), nil)
	p.Where(eq(nm("P", "booktitle"), lit("SIGMOD")))
	if err := p.Compile(); err != nil {
		t.Fatal(err)
	}

	ms, err := Selection(p, dblp(), match.Options{Exhaustive: true}, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Each unordered author pair appears twice (both orders); Fig 4.13
	// iterates distinct pairs — keep mappings with v1-index < v2-index.
	var pairs Matched
	for _, m := range ms {
		if m.M.Nodes[0] < m.M.Nodes[1] {
			pairs = append(pairs, m)
		}
	}
	if len(pairs) != 4 { // (A,B), (C,D), (C,A), (D,A)
		t.Fatalf("distinct pairs = %d, want 4", len(pairs))
	}

	tmpl := &Template{
		Name: "C",
		Members: []TMember{
			TGraph{Var: "C"},
			TNode{Ref: []string{"P", "v1"}},
			TNode{Ref: []string{"P", "v2"}},
			TEdge{Name: "e1", From: []string{"P", "v1"}, To: []string{"P", "v2"}},
			TUnify{A: []string{"P", "v1"}, B: []string{"C", "v1"},
				Where: eq(nm("P", "v1", "name"), nm("C", "v1", "name"))},
			TUnify{A: []string{"P", "v2"}, B: []string{"C", "v2"},
				Where: eq(nm("P", "v2", "name"), nm("C", "v2", "name"))},
		},
	}
	acc := graph.New("C")
	for _, m := range pairs {
		out, err := tmpl.Instantiate(map[string]Operand{
			"P": MatchedOperand(m),
			"C": GraphOperand(acc),
		})
		if err != nil {
			t.Fatal(err)
		}
		acc = out
	}
	if acc.NumNodes() != 4 {
		t.Fatalf("co-authorship nodes = %d, want 4\n%s", acc.NumNodes(), acc)
	}
	if acc.NumEdges() != 4 {
		t.Fatalf("co-authorship edges = %d, want 4\n%s", acc.NumEdges(), acc)
	}
	// Check the exact edge set by author names.
	names := map[graph.NodeID]string{}
	for _, n := range acc.Nodes() {
		names[n.ID] = n.Attrs.GetOr("name").AsString()
	}
	want := map[string]bool{"A-B": true, "C-D": true, "A-C": true, "A-D": true}
	for _, e := range acc.Edges() {
		a, b := names[e.From], names[e.To]
		if a > b {
			a, b = b, a
		}
		if !want[a+"-"+b] {
			t.Errorf("unexpected co-author edge %s-%s", a, b)
		}
		delete(want, a+"-"+b)
	}
	if len(want) != 0 {
		t.Errorf("missing co-author edges: %v", want)
	}
}

// TestUnifyWhereVariableNoMatch: when no existing node satisfies the unify
// predicate, the new node stays distinct.
func TestUnifyWhereVariableNoMatch(t *testing.T) {
	acc := graph.New("C")
	acc.AddNode("n1", graph.TupleOf("", "name", "X"))
	tmpl := &Template{
		Name: "C",
		Members: []TMember{
			TGraph{Var: "C"},
			TNode{Name: "fresh", Attrs: []AttrTemplate{{Name: "name", E: lit("Y")}}},
			TUnify{A: []string{"fresh"}, B: []string{"C", "v"},
				Where: eq(nm("fresh", "name"), nm("C", "v", "name"))},
		},
	}
	out, err := tmpl.Instantiate(map[string]Operand{"C": GraphOperand(acc)})
	if err != nil {
		t.Fatal(err)
	}
	if out.NumNodes() != 2 {
		t.Errorf("nodes = %d, want 2 (no unification)", out.NumNodes())
	}
}

// TestConcatenationByUnificationFig44b reproduces Figure 4.4(b): two copies
// of the triangle G1 with unify X.v1,Y.v1 and X.v3,Y.v2 share two nodes,
// giving 4 nodes; the parallel (v1,v3)/(v1,v2) edges merge structurally
// only if attribute-equal — here unlabelled, so 5 distinct edges become 5
// with one duplicate removed.
func TestConcatenationByUnificationFig44b(t *testing.T) {
	tri := graph.New("G1")
	v1 := tri.AddNode("v1", nil)
	v2 := tri.AddNode("v2", nil)
	v3 := tri.AddNode("v3", nil)
	tri.AddEdge("e1", v1, v2, nil)
	tri.AddEdge("e2", v2, v3, nil)
	tri.AddEdge("e3", v3, v1, nil)

	tmpl := &Template{
		Name: "G3",
		Members: []TMember{
			TGraph{Var: "X"},
			TGraph{Var: "Y"},
			TUnify{A: []string{"Y", "v1"}, B: []string{"X", "v1"}},
			TUnify{A: []string{"Y", "v2"}, B: []string{"X", "v3"}},
		},
	}
	out, err := tmpl.Instantiate(map[string]Operand{
		"X": GraphOperand(tri),
		"Y": GraphOperand(tri),
	})
	if err != nil {
		t.Fatal(err)
	}
	// Figure 4.4(b): v1, v2, v3(=Y.v2 unified), Y.v3 -> 4 nodes; edges:
	// X.e1, X.e2, X.e3, Y.e2, Y.e3 with Y.e1 unified into X.e3 -> 5 edges.
	if out.NumNodes() != 4 {
		t.Errorf("nodes = %d, want 4\n%s", out.NumNodes(), out)
	}
	if out.NumEdges() != 5 {
		t.Errorf("edges = %d, want 5\n%s", out.NumEdges(), out)
	}
}

// TestConcatenationByEdgesFig44a reproduces Figure 4.4(a): two triangles
// joined by two new edges — 6 nodes, 8 edges.
func TestConcatenationByEdgesFig44a(t *testing.T) {
	tri := graph.New("G1")
	v1 := tri.AddNode("v1", nil)
	v2 := tri.AddNode("v2", nil)
	v3 := tri.AddNode("v3", nil)
	tri.AddEdge("e1", v1, v2, nil)
	tri.AddEdge("e2", v2, v3, nil)
	tri.AddEdge("e3", v3, v1, nil)
	tmpl := &Template{
		Name: "G2",
		Members: []TMember{
			TGraph{Var: "X"},
			TGraph{Var: "Y"},
			TEdge{Name: "e4", From: []string{"X", "v1"}, To: []string{"Y", "v1"}},
			TEdge{Name: "e5", From: []string{"X", "v3"}, To: []string{"Y", "v2"}},
		},
	}
	out, err := tmpl.Instantiate(map[string]Operand{
		"X": GraphOperand(tri),
		"Y": GraphOperand(tri),
	})
	if err != nil {
		t.Fatal(err)
	}
	if out.NumNodes() != 6 || out.NumEdges() != 8 {
		t.Errorf("shape = %d/%d, want 6/8\n%s", out.NumNodes(), out.NumEdges(), out)
	}
}

func TestTemplateErrors(t *testing.T) {
	tmpl := &Template{Name: "T", Members: []TMember{TGraph{Var: "missing"}}}
	if _, err := tmpl.Instantiate(nil); err == nil {
		t.Error("unbound graph operand should error")
	}
	tmpl = &Template{Name: "T", Members: []TMember{
		TEdge{From: []string{"nope"}, To: []string{"nope2"}},
	}}
	if _, err := tmpl.Instantiate(nil); err == nil {
		t.Error("edge between unknown nodes should error")
	}
}
