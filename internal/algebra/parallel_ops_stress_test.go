package algebra

import (
	"context"
	"errors"
	"sync"
	"testing"

	"gqldb/internal/expr"
	"gqldb/internal/graph"
	"gqldb/internal/match"
)

// signatures renders a collection as the ordered list of graph signatures —
// the byte-identical-order oracle for the parallel operators.
func signatures(c graph.Collection) []string {
	out := make([]string, len(c))
	for i, g := range c {
		out[i] = g.Signature()
	}
	return out
}

func sameOrder(t *testing.T, tag string, got, want graph.Collection) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d graphs, want %d", tag, len(got), len(want))
	}
	gs, ws := signatures(got), signatures(want)
	for i := range ws {
		if gs[i] != ws[i] {
			t.Fatalf("%s: output order differs at %d:\n got %s\nwant %s", tag, i, gs[i], ws[i])
		}
	}
}

// workerSpans covers the edge cases the worker pool must get right: serial
// fallback, tiny pools, pools larger than the input, and GOMAXPROCS.
func workerSpans(n int) []int {
	return []int{0, 1, 2, 7, n + 1, 4*n + 4}
}

// TestParallelProductOrder: C × D on every worker count is byte-identical
// to the serial product. Run under -race via `make race`.
func TestParallelProductOrder(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test; skipped in -short")
	}
	c, d := bigCollection(24), bigCollection(17)
	want, err := CartesianProduct(c, d)
	if err != nil {
		t.Fatal(err)
	}
	for round := 0; round < 3; round++ {
		for _, workers := range workerSpans(len(c) * len(d)) {
			var stats match.Stats
			got, err := CartesianProductContext(context.Background(), c, d, workers, &stats)
			if err != nil {
				t.Fatalf("workers=%d: %v", workers, err)
			}
			sameOrder(t, "product", got, want)
			if len(stats.Ops) != 1 || stats.Ops[0].Items != len(c)*len(d) {
				t.Fatalf("workers=%d: stats %+v", workers, stats.Ops)
			}
		}
	}
}

// TestParallelValuedJoinOrder: the join predicate filters pairs; surviving
// graphs must appear in exact serial pair order on every worker count.
func TestParallelValuedJoinOrder(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test; skipped in -short")
	}
	c, d := bigCollection(20), bigCollection(15)
	for i, g := range c {
		g.Attrs = graph.TupleOf("", "size", int64(i%4))
	}
	for j, g := range d {
		g.Attrs = graph.TupleOf("", "size", int64(j%3))
	}
	pred := expr.Binary{Op: expr.OpEq, L: expr.Name{Parts: []string{"size"}}, R: expr.Lit{Val: graph.Int(1)}}
	want, err := ValuedJoin(c, d, pred)
	if err != nil {
		t.Fatal(err)
	}
	if len(want) == 0 {
		t.Fatal("degenerate test: predicate rejects everything")
	}
	for _, workers := range workerSpans(len(c) * len(d)) {
		got, err := ValuedJoinContext(context.Background(), c, d, pred, workers, nil)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		sameOrder(t, "valued-join", got, want)
	}
}

// TestParallelComposeOrder: ω_T over a matched collection preserves
// collection order on every worker count.
func TestParallelComposeOrder(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test; skipped in -short")
	}
	c := bigCollection(120)
	p := edgePattern()
	ms, err := Selection(p, c, match.Options{Exhaustive: true}, nil)
	if err != nil {
		t.Fatal(err)
	}
	tmpl := &Template{Name: "out", Members: []TMember{
		TNode{Ref: []string{"P", "a"}},
		TNode{Ref: []string{"P", "b"}},
		TEdge{From: []string{"P", "a"}, To: []string{"P", "b"}},
	}}
	want, err := Compose(tmpl, "P", ms)
	if err != nil {
		t.Fatal(err)
	}
	for round := 0; round < 3; round++ {
		for _, workers := range workerSpans(len(ms)) {
			got, err := ComposeContext(context.Background(), tmpl, "P", ms, workers, nil)
			if err != nil {
				t.Fatalf("workers=%d: %v", workers, err)
			}
			sameOrder(t, "compose", got, want)
		}
	}
}

// TestParallelStructuralJoinOrder: template-pair instantiation preserves the
// serial pair order on every worker count.
func TestParallelStructuralJoinOrder(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test; skipped in -short")
	}
	c := bigCollection(40)
	p := edgePattern()
	ms, err := Selection(p, c, match.Options{Exhaustive: true}, nil)
	if err != nil {
		t.Fatal(err)
	}
	left, right := ms[:len(ms)/2], ms[len(ms)/2:]
	tmpl := &Template{Name: "pair", Members: []TMember{
		TNode{Ref: []string{"L", "a"}},
		TNode{Ref: []string{"R", "b"}},
		TEdge{From: []string{"L", "a"}, To: []string{"R", "b"}},
	}}
	want, err := StructuralJoin(tmpl, "L", "R", left, right)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range workerSpans(len(left) * len(right)) {
		got, err := StructuralJoinContext(context.Background(), tmpl, "L", "R", left, right, workers, nil)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		sameOrder(t, "structural-join", got, want)
	}
}

// TestParallelOpsConcurrentCallers runs every parallel operator from
// several goroutines at once over shared inputs — the server-shaped
// workload — so -race can see any hidden shared state.
func TestParallelOpsConcurrentCallers(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test; skipped in -short")
	}
	c, d := bigCollection(12), bigCollection(9)
	p := edgePattern()
	if err := p.Compile(); err != nil {
		t.Fatal(err)
	}
	ms, err := Selection(p, c, match.Options{Exhaustive: true}, nil)
	if err != nil {
		t.Fatal(err)
	}
	tmpl := &Template{Name: "out", Members: []TMember{TNode{Ref: []string{"P", "a"}}}}
	pairTmpl := &Template{Name: "pair", Members: []TMember{
		TNode{Ref: []string{"L", "a"}},
		TNode{Ref: []string{"R", "b"}},
	}}

	const callers = 6
	errs := make([]error, 4*callers)
	var wg sync.WaitGroup
	for k := 0; k < callers; k++ {
		wg.Add(4)
		go func() {
			defer wg.Done()
			_, err := CartesianProductContext(context.Background(), c, d, 3, nil)
			errs[4*k] = err
		}()
		go func() {
			defer wg.Done()
			_, err := ComposeContext(context.Background(), tmpl, "P", ms, 3, nil)
			errs[4*k+1] = err
		}()
		go func() {
			defer wg.Done()
			_, err := SelectionContext(context.Background(), p, c, match.Options{Exhaustive: true}, nil, 3, nil)
			errs[4*k+2] = err
		}()
		go func() {
			defer wg.Done()
			_, err := StructuralJoinContext(context.Background(), pairTmpl, "L", "R", ms[:4], ms[:4], 3, nil)
			errs[4*k+3] = err
		}()
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("caller %d: %v", i, err)
		}
	}
}

// TestParallelOpsMidFlightCancellation cancels each operator while workers
// are mid-flight; every operator must return ctx.Err() promptly and -race
// must see no post-cancellation slot writes racing the caller.
func TestParallelOpsMidFlightCancellation(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test; skipped in -short")
	}
	c, d := bigCollection(60), bigCollection(60)
	p := edgePattern()
	ms, err := Selection(p, c, match.Options{Exhaustive: true}, nil)
	if err != nil {
		t.Fatal(err)
	}
	tmpl := &Template{Name: "out", Members: []TMember{TNode{Ref: []string{"P", "a"}}}}

	ops := []struct {
		name string
		run  func(ctx context.Context) error
	}{
		{"product", func(ctx context.Context) error {
			_, err := CartesianProductContext(ctx, c, d, 4, nil)
			return err
		}},
		{"valued-join", func(ctx context.Context) error {
			pred := expr.Binary{Op: expr.OpEq, L: expr.Name{Parts: []string{"size"}}, R: expr.Lit{Val: graph.Int(0)}}
			_, err := ValuedJoinContext(ctx, c, d, pred, 4, nil)
			return err
		}},
		{"compose", func(ctx context.Context) error {
			_, err := ComposeContext(ctx, tmpl, "P", ms, 4, nil)
			return err
		}},
		{"structural-join", func(ctx context.Context) error {
			pairTmpl := &Template{Name: "pair", Members: []TMember{
				TNode{Ref: []string{"L", "a"}},
				TNode{Ref: []string{"R", "b"}},
			}}
			_, err := StructuralJoinContext(ctx, pairTmpl, "L", "R", ms, ms, 4, nil)
			return err
		}},
		{"selection", func(ctx context.Context) error {
			_, err := SelectionContext(ctx, p, c, match.Options{Exhaustive: true}, nil, 4, nil)
			return err
		}},
	}
	for _, op := range ops {
		for round := 0; round < 5; round++ {
			ctx, cancel := context.WithCancel(context.Background())
			// Cancel concurrently with the operator's first chunks.
			go cancel()
			err := op.run(ctx)
			if err != nil && !errors.Is(err, context.Canceled) {
				t.Fatalf("%s round %d: err = %v, want nil or context.Canceled", op.name, round, err)
			}
			cancel()
		}
		// Pre-cancelled: must fail fast without touching any work.
		ctx, cancel := context.WithCancel(context.Background())
		cancel()
		if err := op.run(ctx); !errors.Is(err, context.Canceled) {
			t.Fatalf("%s pre-cancelled: err = %v, want context.Canceled", op.name, err)
		}
	}
}
