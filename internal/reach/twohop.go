package reach

import (
	"sort"

	"gqldb/internal/graph"
)

// TwoHop is a 2-hop-cover reachability index (§6.2 cites 2-hop labels as
// the other major indexing family, [10, 11, 31]): every node carries
// sorted label sets Lin and Lout such that u reaches v iff
// Lout(u) ∩ Lin(v) ≠ ∅ (with u and v included in their own labels). The
// cover is built by pruned landmark labeling: landmarks are processed in
// descending degree order, and each landmark's forward/backward BFS skips
// nodes whose reachability to the landmark is already answered by the
// labels built so far — which both prunes the traversal and keeps labels
// minimal. Queries are then a sorted-list intersection, with no DFS
// fallback.
type TwoHop struct {
	g    *graph.Graph
	comp []int32
	dag  [][]int32
	rdag [][]int32
	// in[c] and out[c] are sorted landmark lists for component c.
	in, out [][]int32
	numComp int
}

// NewTwoHop builds the 2-hop cover.
func NewTwoHop(g *graph.Graph) *TwoHop {
	// Reuse the SCC condensation of the interval index.
	base := &Index{g: g}
	base.condense()
	th := &TwoHop{
		g:       g,
		comp:    base.comp,
		dag:     base.dag,
		numComp: base.numComp,
	}
	th.rdag = make([][]int32, th.numComp)
	for c, outs := range th.dag {
		for _, w := range outs {
			th.rdag[w] = append(th.rdag[w], int32(c))
		}
	}
	th.build()
	return th
}

// build runs pruned landmark labeling over the condensation.
func (th *TwoHop) build() {
	n := th.numComp
	th.in = make([][]int32, n)
	th.out = make([][]int32, n)

	// Landmark order: descending total degree in the DAG (high-coverage
	// hubs first keeps labels small).
	order := make([]int32, n)
	for i := range order {
		order[i] = int32(i)
	}
	deg := make([]int, n)
	for c := 0; c < n; c++ {
		deg[c] = len(th.dag[c]) + len(th.rdag[c])
	}
	sort.SliceStable(order, func(i, j int) bool { return deg[order[i]] > deg[order[j]] })

	queue := make([]int32, 0, n)
	seen := make([]int32, n)
	for i := range seen {
		seen[i] = -1
	}
	// Labels store landmark *ranks* (not component ids): each BFS appends
	// the current rank, so lists stay sorted and intersect by merge.
	for rank, lm := range order {
		r := int32(rank)
		// Forward BFS: lm reaches u → add rank to in[u].
		queue = append(queue[:0], lm)
		seen[lm] = r
		for head := 0; head < len(queue); head++ {
			u := queue[head]
			// Prune: if earlier labels already answer lm ⇝ u, skip
			// expanding u (and do not add the label).
			if u != lm && th.covered(lm, u) {
				continue
			}
			if u != lm {
				th.in[u] = append(th.in[u], r)
			}
			for _, w := range th.dag[u] {
				if seen[w] != r {
					seen[w] = r
					queue = append(queue, w)
				}
			}
		}
		// Backward BFS with a distinct visited epoch.
		epoch := r + int32(n)
		queue = append(queue[:0], lm)
		seen[lm] = epoch
		for head := 0; head < len(queue); head++ {
			u := queue[head]
			if u != lm && th.covered(u, lm) {
				continue
			}
			if u != lm {
				th.out[u] = append(th.out[u], r)
			}
			for _, w := range th.rdag[u] {
				if seen[w] != epoch {
					seen[w] = epoch
					queue = append(queue, w)
				}
			}
		}
		// The landmark covers itself in both directions.
		th.in[lm] = insertSorted(th.in[lm], r)
		th.out[lm] = insertSorted(th.out[lm], r)
	}
}

func insertSorted(s []int32, v int32) []int32 {
	i := sort.Search(len(s), func(i int) bool { return s[i] >= v })
	if i < len(s) && s[i] == v {
		return s
	}
	s = append(s, 0)
	copy(s[i+1:], s[i:])
	s[i] = v
	return s
}

// covered reports whether the labels built so far already witness u ⇝ v.
// During construction labels hold component ids in rank-append order,
// which is ascending by construction, so a merge intersection works.
func (th *TwoHop) covered(u, v int32) bool {
	return intersects(th.out[u], th.in[v])
}

func intersects(a, b []int32) bool {
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			return true
		}
	}
	return false
}

// CanReach reports whether a directed path leads from u to v.
func (th *TwoHop) CanReach(u, v graph.NodeID) bool {
	cu, cv := th.comp[u], th.comp[v]
	if cu == cv {
		return true
	}
	return intersects(th.out[cu], th.in[cv])
}

// LabelSize returns the total number of label entries — the index size the
// 2-hop literature optimizes.
func (th *TwoHop) LabelSize() int {
	total := 0
	for c := 0; c < th.numComp; c++ {
		total += len(th.in[c]) + len(th.out[c])
	}
	return total
}
