// Package reach implements a reachability index for large directed graphs
// — the access-method family §6.2 surveys for recursive path patterns
// ("reachability queries correspond to recursive graph patterns which are
// paths"; indexing is "generally based on spanning trees with pre/post-
// order labeling"). The index condenses strongly connected components with
// Tarjan's algorithm and labels the resulting DAG with k randomized
// post-order intervals (GRAIL-style): interval containment in every
// labeling is a necessary condition for reachability, so most negative
// queries answer in O(k); positives are confirmed by an interval-pruned
// DFS.
package reach

import (
	"math/rand"

	"gqldb/internal/graph"
)

// Index answers reachability queries over one directed graph.
type Index struct {
	g *graph.Graph
	// comp[v] is the strongly connected component of node v.
	comp []int32
	// dag is the condensation's adjacency (deduplicated).
	dag [][]int32
	// k interval labelings over components: label i gives each component
	// c the interval [low[i][c], post[i][c]]; u reaches v only if u's
	// interval contains v's in every labeling.
	low, post [][]int32
	numComp   int
}

// DefaultLabelings is the number of randomized interval labelings.
const DefaultLabelings = 3

// New builds the index. k is the number of randomized labelings
// (0 = DefaultLabelings); seed makes the labelings deterministic.
func New(g *graph.Graph, k int, seed int64) *Index {
	if k <= 0 {
		k = DefaultLabelings
	}
	ix := &Index{g: g}
	ix.condense()
	ix.label(k, seed)
	return ix
}

// condense runs Tarjan's SCC algorithm (iteratively, so recursion depth is
// not bound by the graph's size).
func (ix *Index) condense() {
	n := ix.g.NumNodes()
	ix.comp = make([]int32, n)
	for i := range ix.comp {
		ix.comp[i] = -1
	}
	index := make([]int32, n)
	lowlink := make([]int32, n)
	onStack := make([]bool, n)
	for i := range index {
		index[i] = -1
	}
	var stack []int32
	next := int32(0)
	numComp := int32(0)

	type frame struct {
		v   int32
		ei  int
		adj []graph.Half
	}
	var frames []frame
	for s := 0; s < n; s++ {
		if index[s] != -1 {
			continue
		}
		frames = append(frames[:0], frame{v: int32(s), adj: ix.g.Adj(graph.NodeID(s))})
		index[s] = next
		lowlink[s] = next
		next++
		stack = append(stack, int32(s))
		onStack[s] = true
		for len(frames) > 0 {
			f := &frames[len(frames)-1]
			advanced := false
			for f.ei < len(f.adj) {
				w := int32(f.adj[f.ei].To)
				f.ei++
				if index[w] == -1 {
					index[w] = next
					lowlink[w] = next
					next++
					stack = append(stack, w)
					onStack[w] = true
					frames = append(frames, frame{v: w, adj: ix.g.Adj(graph.NodeID(w))})
					advanced = true
					break
				}
				if onStack[w] && index[w] < lowlink[f.v] {
					lowlink[f.v] = index[w]
				}
			}
			if advanced {
				continue
			}
			// Post-visit of f.v.
			v := f.v
			if lowlink[v] == index[v] {
				for {
					w := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					onStack[w] = false
					ix.comp[w] = numComp
					if w == v {
						break
					}
				}
				numComp++
			}
			frames = frames[:len(frames)-1]
			if len(frames) > 0 {
				p := frames[len(frames)-1].v
				if lowlink[v] < lowlink[p] {
					lowlink[p] = lowlink[v]
				}
			}
		}
	}
	ix.numComp = int(numComp)

	// Condensed adjacency, deduplicated.
	ix.dag = make([][]int32, ix.numComp)
	seen := make(map[[2]int32]bool)
	for _, e := range ix.g.Edges() {
		cu, cv := ix.comp[e.From], ix.comp[e.To]
		if cu == cv {
			continue
		}
		k := [2]int32{cu, cv}
		if !seen[k] {
			seen[k] = true
			ix.dag[cu] = append(ix.dag[cu], cv)
		}
	}
}

// label computes k randomized post-order interval labelings of the DAG.
func (ix *Index) label(k int, seed int64) {
	rng := rand.New(rand.NewSource(seed))
	ix.low = make([][]int32, k)
	ix.post = make([][]int32, k)
	order := make([]int32, ix.numComp)
	for i := range order {
		order[i] = int32(i)
	}
	childBuf := make([][]int32, ix.numComp)
	for li := 0; li < k; li++ {
		low := make([]int32, ix.numComp)
		post := make([]int32, ix.numComp)
		for i := range post {
			post[i] = -1
		}
		// Randomize root order and child order.
		rng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
		for c := range childBuf {
			childBuf[c] = append(childBuf[c][:0], ix.dag[c]...)
			rng.Shuffle(len(childBuf[c]), func(i, j int) {
				childBuf[c][i], childBuf[c][j] = childBuf[c][j], childBuf[c][i]
			})
		}
		counter := int32(0)
		// Iterative post-order: state 0 = unvisited, 1 = expanded,
		// 2 = finished. Duplicate stack entries are skipped on pop.
		state := make([]uint8, ix.numComp)
		var stack []int32
		for _, root := range order {
			if state[root] == 2 {
				continue
			}
			stack = append(stack[:0], root)
			for len(stack) > 0 {
				c := stack[len(stack)-1]
				switch state[c] {
				case 0:
					state[c] = 1
					for _, w := range childBuf[c] {
						if state[w] == 0 {
							stack = append(stack, w)
						}
					}
				case 1:
					stack = stack[:len(stack)-1]
					state[c] = 2
					// low = min over children's lows, else own rank.
					l := counter
					for _, w := range ix.dag[c] {
						if low[w] < l {
							l = low[w]
						}
					}
					low[c] = l
					post[c] = counter
					counter++
				default:
					stack = stack[:len(stack)-1]
				}
			}
		}
		ix.low[li] = low
		ix.post[li] = post
	}
}

// CanReach reports whether a directed path leads from u to v.
func (ix *Index) CanReach(u, v graph.NodeID) bool {
	cu, cv := ix.comp[u], ix.comp[v]
	return ix.reachComp(cu, cv, nil)
}

// contains reports whether cu's interval contains cv's in every labeling —
// necessary for reachability.
func (ix *Index) contains(cu, cv int32) bool {
	for li := range ix.post {
		if !(ix.low[li][cu] <= ix.low[li][cv] && ix.post[li][cv] <= ix.post[li][cu]) {
			return false
		}
	}
	return true
}

// reachComp answers reachability on the condensation with interval-pruned
// DFS; visited is lazily allocated.
func (ix *Index) reachComp(cu, cv int32, visited []bool) bool {
	if cu == cv {
		return true
	}
	if !ix.contains(cu, cv) {
		return false
	}
	if visited == nil {
		visited = make([]bool, ix.numComp)
	}
	visited[cu] = true
	for _, w := range ix.dag[cu] {
		if visited[w] {
			continue
		}
		if w == cv {
			return true
		}
		if !ix.contains(w, cv) {
			continue
		}
		if ix.reachComp(w, cv, visited) {
			return true
		}
	}
	return false
}

// NumComponents returns the number of strongly connected components.
func (ix *Index) NumComponents() int { return ix.numComp }

// Component returns the SCC ordinal of a node.
func (ix *Index) Component(v graph.NodeID) int32 { return ix.comp[v] }

// PathPairs finds all (u, v) node pairs where u carries fromLabel, v
// carries toLabel and v is reachable from u — the recursive path-pattern
// query the index serves as an access method for (§6.2).
func (ix *Index) PathPairs(fromLabel, toLabel string) [][2]graph.NodeID {
	var from, to []graph.NodeID
	for _, n := range ix.g.Nodes() {
		switch ix.g.Label(n.ID) {
		case fromLabel:
			from = append(from, n.ID)
			if toLabel == fromLabel {
				to = append(to, n.ID)
			}
		case toLabel:
			to = append(to, n.ID)
		}
	}
	var out [][2]graph.NodeID
	for _, u := range from {
		for _, v := range to {
			if u != v && ix.CanReach(u, v) {
				out = append(out, [2]graph.NodeID{u, v})
			}
		}
	}
	return out
}
