package reach

import (
	"math/rand"
	"testing"
	"testing/quick"

	"gqldb/internal/graph"
)

// bfsReach computes ground-truth reachability from u.
func bfsReach(g *graph.Graph, u graph.NodeID) []bool {
	seen := make([]bool, g.NumNodes())
	seen[u] = true
	queue := []graph.NodeID{u}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for _, h := range g.Adj(v) {
			if !seen[h.To] {
				seen[h.To] = true
				queue = append(queue, h.To)
			}
		}
	}
	return seen
}

func randomDigraph(rng *rand.Rand, n, m int) *graph.Graph {
	g := graph.NewDirected("d")
	for i := 0; i < n; i++ {
		g.AddNode("", graph.TupleOf("", "label", string(rune('A'+rng.Intn(4)))))
	}
	for i := 0; i < m; i++ {
		u, v := rng.Intn(n), rng.Intn(n)
		if u != v {
			g.AddEdge("", graph.NodeID(u), graph.NodeID(v), nil)
		}
	}
	return g
}

func TestChain(t *testing.T) {
	g := graph.NewDirected("chain")
	var ids []graph.NodeID
	for i := 0; i < 10; i++ {
		ids = append(ids, g.AddNode("", graph.TupleOf("", "label", "X")))
	}
	for i := 1; i < 10; i++ {
		g.AddEdge("", ids[i-1], ids[i], nil)
	}
	ix := New(g, 2, 1)
	if ix.NumComponents() != 10 {
		t.Errorf("components = %d, want 10", ix.NumComponents())
	}
	for i := 0; i < 10; i++ {
		for j := 0; j < 10; j++ {
			want := i <= j
			if got := ix.CanReach(ids[i], ids[j]); got != want {
				t.Errorf("CanReach(%d,%d) = %v, want %v", i, j, got, want)
			}
		}
	}
}

func TestCycleCollapses(t *testing.T) {
	g := graph.NewDirected("cyc")
	a := g.AddNode("a", nil)
	b := g.AddNode("b", nil)
	c := g.AddNode("c", nil)
	d := g.AddNode("d", nil)
	g.AddEdge("", a, b, nil)
	g.AddEdge("", b, c, nil)
	g.AddEdge("", c, a, nil) // cycle a-b-c
	g.AddEdge("", c, d, nil)
	ix := New(g, 2, 7)
	if ix.NumComponents() != 2 {
		t.Errorf("components = %d, want 2", ix.NumComponents())
	}
	if ix.Component(a) != ix.Component(c) {
		t.Error("cycle members should share a component")
	}
	if !ix.CanReach(a, d) || !ix.CanReach(b, a) {
		t.Error("reachability within/out of cycle wrong")
	}
	if ix.CanReach(d, a) {
		t.Error("d should not reach the cycle")
	}
}

// TestAgainstBFS cross-validates all pairs on random cyclic digraphs.
func TestAgainstBFS(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(30)
		g := randomDigraph(rng, n, rng.Intn(3*n))
		ix := New(g, 1+rng.Intn(4), seed)
		for u := 0; u < n; u++ {
			truth := bfsReach(g, graph.NodeID(u))
			for v := 0; v < n; v++ {
				if ix.CanReach(graph.NodeID(u), graph.NodeID(v)) != truth[v] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestPathPairs(t *testing.T) {
	g := graph.NewDirected("g")
	a1 := g.AddNode("", graph.TupleOf("", "label", "A"))
	a2 := g.AddNode("", graph.TupleOf("", "label", "A"))
	b1 := g.AddNode("", graph.TupleOf("", "label", "B"))
	mid := g.AddNode("", graph.TupleOf("", "label", "X"))
	g.AddEdge("", a1, mid, nil)
	g.AddEdge("", mid, b1, nil)
	// a2 is isolated from b1.
	ix := New(g, 2, 3)
	pairs := ix.PathPairs("A", "B")
	if len(pairs) != 1 || pairs[0][0] != a1 || pairs[0][1] != b1 {
		t.Errorf("PathPairs = %v, want [[a1 b1]]", pairs)
	}
	_ = a2
	// Same-label pairs exclude identity.
	if got := ix.PathPairs("A", "A"); len(got) != 0 {
		t.Errorf("A->A pairs = %v, want none", got)
	}
}

func TestLargeDAGSpotCheck(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	// Layered DAG: edges only go to higher layers — no SCCs.
	const layers, width = 20, 50
	g := graph.NewDirected("dag")
	for i := 0; i < layers*width; i++ {
		g.AddNode("", graph.TupleOf("", "label", "X"))
	}
	for l := 0; l < layers-1; l++ {
		for i := 0; i < width; i++ {
			for k := 0; k < 3; k++ {
				from := graph.NodeID(l*width + i)
				to := graph.NodeID((l+1)*width + rng.Intn(width))
				g.AddEdge("", from, to, nil)
			}
		}
	}
	ix := New(g, 3, 11)
	if ix.NumComponents() != layers*width {
		t.Fatalf("DAG should have %d singleton components, got %d", layers*width, ix.NumComponents())
	}
	// Spot-check 200 random pairs against BFS.
	for trial := 0; trial < 200; trial++ {
		u := graph.NodeID(rng.Intn(layers * width))
		truth := bfsReach(g, u)
		v := graph.NodeID(rng.Intn(layers * width))
		if ix.CanReach(u, v) != truth[v] {
			t.Fatalf("CanReach(%d,%d) = %v, truth %v", u, v, ix.CanReach(u, v), truth[v])
		}
	}
}

func BenchmarkCanReach(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	g := randomDigraph(rng, 20000, 60000)
	ix := New(g, 3, 2)
	pairs := make([][2]graph.NodeID, 1024)
	for i := range pairs {
		pairs[i] = [2]graph.NodeID{graph.NodeID(rng.Intn(20000)), graph.NodeID(rng.Intn(20000))}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := pairs[i%len(pairs)]
		ix.CanReach(p[0], p[1])
	}
}

// TestTwoHopAgainstBFS cross-validates the 2-hop cover on random cyclic
// digraphs against BFS ground truth.
func TestTwoHopAgainstBFS(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(30)
		g := randomDigraph(rng, n, rng.Intn(3*n))
		th := NewTwoHop(g)
		for u := 0; u < n; u++ {
			truth := bfsReach(g, graph.NodeID(u))
			for v := 0; v < n; v++ {
				if th.CanReach(graph.NodeID(u), graph.NodeID(v)) != truth[v] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestTwoHopAgreesWithInterval: both indexes answer identically.
func TestTwoHopAgreesWithInterval(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 10; trial++ {
		n := 40 + rng.Intn(40)
		g := randomDigraph(rng, n, 2*n)
		ix := New(g, 3, int64(trial))
		th := NewTwoHop(g)
		for q := 0; q < 500; q++ {
			u := graph.NodeID(rng.Intn(n))
			v := graph.NodeID(rng.Intn(n))
			if ix.CanReach(u, v) != th.CanReach(u, v) {
				t.Fatalf("trial %d: indexes disagree on (%d,%d)", trial, u, v)
			}
		}
	}
}

// TestTwoHopLabelSize: pruning must keep labels well below the quadratic
// worst case on a layered DAG.
func TestTwoHopLabelSize(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	const layers, width = 10, 30
	g := graph.NewDirected("dag")
	for i := 0; i < layers*width; i++ {
		g.AddNode("", graph.TupleOf("", "label", "X"))
	}
	for l := 0; l < layers-1; l++ {
		for i := 0; i < width; i++ {
			for k := 0; k < 2; k++ {
				g.AddEdge("", graph.NodeID(l*width+i), graph.NodeID((l+1)*width+rng.Intn(width)), nil)
			}
		}
	}
	th := NewTwoHop(g)
	nn := layers * width
	if th.LabelSize() > nn*nn/4 {
		t.Errorf("label size %d too close to quadratic (%d nodes)", th.LabelSize(), nn)
	}
}

func BenchmarkTwoHopQuery(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	g := randomDigraph(rng, 20000, 60000)
	th := NewTwoHop(g)
	pairs := make([][2]graph.NodeID, 1024)
	for i := range pairs {
		pairs[i] = [2]graph.NodeID{graph.NodeID(rng.Intn(20000)), graph.NodeID(rng.Intn(20000))}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := pairs[i%len(pairs)]
		th.CanReach(p[0], p[1])
	}
}
