package pattern

import (
	"testing"

	"gqldb/internal/expr"
	"gqldb/internal/graph"
)

func eq(l, r expr.Expr) expr.Expr  { return expr.Binary{Op: expr.OpEq, L: l, R: r} }
func gt(l, r expr.Expr) expr.Expr  { return expr.Binary{Op: expr.OpGt, L: l, R: r} }
func nm(parts ...string) expr.Expr { return expr.Name{Parts: parts} }
func lit(v any) expr.Expr {
	switch x := v.(type) {
	case int:
		return expr.Lit{Val: graph.Int(int64(x))}
	case string:
		return expr.Lit{Val: graph.String(x)}
	}
	panic("bad lit")
}

// Figure 4.8: graph P { node v1 where name="A"; node v2 where year>2000 }.
func fig48(t *testing.T) *Pattern {
	t.Helper()
	p := New("P")
	p.AddNode("v1", nil, eq(nm("name"), lit("A")))
	p.AddNode("v2", nil, gt(nm("year"), lit(2000)))
	if err := p.Compile(); err != nil {
		t.Fatal(err)
	}
	return p
}

func TestNodeLevelWhere(t *testing.T) {
	p := fig48(t)
	v1, _ := p.Motif.NodeByName("v1")
	v2, _ := p.Motif.NodeByName("v2")
	if p.Global != nil {
		t.Errorf("all conjuncts should be pushed down, residual = %s", p.Global)
	}
	ok, err := p.NodeMatches(v1, graph.TupleOf("author", "name", "A"))
	if err != nil || !ok {
		t.Errorf("v1 should match name=A tuple: %v %v", ok, err)
	}
	ok, _ = p.NodeMatches(v1, graph.TupleOf("author", "name", "B"))
	if ok {
		t.Error("v1 should not match name=B")
	}
	ok, _ = p.NodeMatches(v2, graph.TupleOf("", "title", "T", "year", 2006))
	if !ok {
		t.Error("v2 should match year=2006")
	}
	ok, _ = p.NodeMatches(v2, graph.TupleOf("", "year", 1999))
	if ok {
		t.Error("v2 should not match year=1999")
	}
	// Missing attribute: year absent -> null > 2000 -> false, no error.
	ok, err = p.NodeMatches(v2, graph.TupleOf("", "name", "A"))
	if err != nil || ok {
		t.Errorf("missing year: ok=%v err=%v", ok, err)
	}
}

func TestPatternWideWherePushdown(t *testing.T) {
	// graph P { node v1; node v2 } where v1.name="A" and v2.year>2000
	// — the equivalent form of Figure 4.8.
	p := New("P")
	p.AddNode("v1", nil, nil)
	p.AddNode("v2", nil, nil)
	p.Where(expr.And(eq(nm("v1", "name"), lit("A")), gt(nm("v2", "year"), lit(2000))))
	if err := p.Compile(); err != nil {
		t.Fatal(err)
	}
	v1, _ := p.Motif.NodeByName("v1")
	if p.NodePred[v1] == nil {
		t.Error("v1 conjunct not pushed down")
	}
	if p.Global != nil {
		t.Errorf("residual should be empty, got %s", p.Global)
	}
}

func TestPatternQualifiedNames(t *testing.T) {
	// P.v1.name form (pattern-qualified) must push down too.
	p := New("P")
	p.AddNode("v1", nil, nil)
	p.Where(eq(nm("P", "v1", "name"), lit("A")))
	if err := p.Compile(); err != nil {
		t.Fatal(err)
	}
	if p.Global != nil {
		t.Errorf("qualified conjunct not pushed: %s", p.Global)
	}
	ok, _ := p.NodeMatches(0, graph.TupleOf("", "name", "A"))
	if !ok {
		t.Error("should match after qualification")
	}
}

func TestCrossNodePredicateStaysGlobal(t *testing.T) {
	// u1.label = u2.label cannot be pushed down (§4.1).
	p := New("P")
	p.AddNode("u1", nil, nil)
	p.AddNode("u2", nil, nil)
	p.Where(eq(nm("u1", "label"), nm("u2", "label")))
	if err := p.Compile(); err != nil {
		t.Fatal(err)
	}
	if p.Global == nil {
		t.Error("cross-node conjunct must remain global")
	}
	if p.NodePred[0] != nil || p.NodePred[1] != nil {
		t.Error("cross-node conjunct must not be pushed down")
	}
}

func TestGraphAttributeStaysGlobal(t *testing.T) {
	// P.booktitle = "SIGMOD" (Figure 4.12) refers to the matched graph.
	p := New("P")
	p.AddNode("v1", nil, nil)
	p.Where(eq(nm("P", "booktitle"), lit("SIGMOD")))
	if err := p.Compile(); err != nil {
		t.Fatal(err)
	}
	if p.Global == nil {
		t.Error("graph-attribute conjunct must remain global")
	}
}

func TestMotifAttrsBecomePredicates(t *testing.T) {
	// node v2 <author name="A"> — tag plus equality constraint (Fig 4.7).
	p := New("P")
	v := p.AddNode("v2", graph.TupleOf("author", "name", "A"), nil)
	if err := p.Compile(); err != nil {
		t.Fatal(err)
	}
	ok, _ := p.NodeMatches(v, graph.TupleOf("author", "name", "A"))
	if !ok {
		t.Error("matching tag+attr should pass")
	}
	ok, _ = p.NodeMatches(v, graph.TupleOf("", "name", "A"))
	if ok {
		t.Error("missing tag should fail")
	}
	ok, _ = p.NodeMatches(v, graph.TupleOf("author", "name", "B"))
	if ok {
		t.Error("wrong attr should fail")
	}
}

func TestEdgePredicates(t *testing.T) {
	p := New("P")
	a := p.AddNode("a", nil, nil)
	b := p.AddNode("b", nil, nil)
	e := p.AddEdge("e1", a, b, graph.TupleOf("", "kind", "shipping"), nil)
	if err := p.Compile(); err != nil {
		t.Fatal(err)
	}
	ok, _ := p.EdgeMatches(e, graph.TupleOf("", "kind", "shipping"))
	if !ok {
		t.Error("edge with kind=shipping should match")
	}
	ok, _ = p.EdgeMatches(e, graph.TupleOf("", "kind", "billing"))
	if ok {
		t.Error("edge with kind=billing should not match")
	}
}

func TestConstLabelExtraction(t *testing.T) {
	p := New("P")
	a := p.LabelNode("a", "A")
	b := p.AddNode("b", nil, eq(nm("label"), lit("B")))
	c := p.AddNode("c", nil, gt(nm("weight"), lit(3))) // no label constraint
	if err := p.Compile(); err != nil {
		t.Fatal(err)
	}
	if l, ok := p.ConstLabel(a); !ok || l != "A" {
		t.Errorf("ConstLabel(a) = %q,%v", l, ok)
	}
	if l, ok := p.ConstLabel(b); !ok || l != "B" {
		t.Errorf("ConstLabel(b) = %q,%v", l, ok)
	}
	if _, ok := p.ConstLabel(c); ok {
		t.Error("c should have no const label")
	}
}

func TestValidateUnknownVariable(t *testing.T) {
	p := New("P")
	p.AddNode("v1", nil, nil)
	p.Where(eq(nm("v9", "name"), lit("A"))) // v9 undeclared
	if err := p.Compile(); err == nil {
		t.Error("unknown variable should fail validation")
	}
}

func TestCompileIdempotent(t *testing.T) {
	p := fig48(t)
	before := len(expr.Conjuncts(p.NodePred[0]))
	if err := p.Compile(); err != nil {
		t.Fatal(err)
	}
	if after := len(expr.Conjuncts(p.NodePred[0])); after != before {
		t.Errorf("Compile not idempotent: %d -> %d conjuncts", before, after)
	}
}
