// Package pattern implements GraphQL graph patterns (§3.2): a pair
// P = (M, F) of a graph motif M and a predicate F over the motif's
// attributes. Compile pushes F's conjuncts down onto individual nodes and
// edges (§4.1), leaving only genuinely multi-variable conjuncts in the
// graph-wide residual predicate, and extracts constant label constraints so
// access methods can use label indexes.
package pattern

import (
	"fmt"

	"gqldb/internal/expr"
	"gqldb/internal/graph"
)

// Pattern is a compiled graph pattern. Construct with New/AddNode/AddEdge/
// Where and finish with Compile before matching.
type Pattern struct {
	// Name is the pattern variable (e.g. P); it may qualify names in the
	// predicate as P.v1.name.
	Name string
	// Motif is the structural part: a graph whose nodes and edges are
	// variables. Attribute tuples on motif elements are equality
	// constraints and are compiled into predicates.
	Motif *graph.Graph
	// NodePred[u] is the conjunction of predicates that mention only node
	// u, rewritten to bare attribute names.
	NodePred []expr.Expr
	// NodeTag[u] is the required tuple tag of a mate of u ("" = any).
	NodeTag []string
	// EdgePred[e] is the per-edge predicate over bare attribute names.
	EdgePred []expr.Expr
	// Global is the residual graph-wide predicate; its names are resolved
	// against the whole binding (multi-node conjuncts, graph attributes).
	Global expr.Expr

	// Compiled closure forms of the predicates above, built once by
	// Compile so the per-candidate feasible-mate test and the per-binding
	// residual check run without tree-walking (see expr.Compile). Nil
	// entries hold trivially.
	nodePredC []expr.Pred
	edgePredC []expr.Pred
	globalC   expr.Pred

	// where holds the raw predicates accumulated before Compile.
	where []expr.Expr
	// constLabel[u] is the constant required by a `label == "X"` conjunct
	// on u, or "" when the node is unconstrained by label.
	constLabel []string
	compiled   bool
}

// New returns an empty pattern with an undirected motif.
func New(name string) *Pattern {
	return &Pattern{Name: name, Motif: graph.New(name)}
}

// NewDirected returns an empty pattern with a directed motif.
func NewDirected(name string) *Pattern {
	p := New(name)
	p.Motif.Directed = true
	return p
}

// AddNode declares a motif node with optional attribute constraints and an
// optional node-level where clause (bare attribute names).
func (p *Pattern) AddNode(name string, attrs *graph.Tuple, where expr.Expr) graph.NodeID {
	id := p.Motif.AddNode(name, attrs)
	p.NodePred = append(p.NodePred, nil)
	p.NodeTag = append(p.NodeTag, "")
	p.constLabel = append(p.constLabel, "")
	if where != nil {
		nm := p.Motif.Node(id).Name
		p.where = append(p.where, qualify(where, nm))
	}
	return id
}

// AddEdge declares a motif edge with optional attribute constraints and an
// optional edge-level where clause.
func (p *Pattern) AddEdge(name string, from, to graph.NodeID, attrs *graph.Tuple, where expr.Expr) graph.EdgeID {
	id := p.Motif.AddEdge(name, from, to, attrs)
	p.EdgePred = append(p.EdgePred, nil)
	if where != nil {
		nm := p.Motif.Edge(id).Name
		p.where = append(p.where, qualify(where, nm))
	}
	return id
}

// Where adds a pattern-wide predicate; its conjuncts are distributed onto
// nodes and edges at Compile time.
func (p *Pattern) Where(e expr.Expr) {
	if e != nil {
		p.where = append(p.where, e)
	}
}

// qualify prefixes bare names in a node/edge-level where clause with the
// element's variable so all predicates share one naming scheme.
func qualify(e expr.Expr, elem string) expr.Expr {
	return expr.Rewrite(e, func(n expr.Name) expr.Name {
		if len(n.Parts) == 1 {
			return expr.Name{Parts: []string{elem, n.Parts[0]}}
		}
		return n
	})
}

// LabelNode is shorthand for AddNode with a single `label == l` constraint;
// the evaluation workloads (§5) use exactly this form.
func (p *Pattern) LabelNode(name, label string) graph.NodeID {
	return p.AddNode(name, graph.TupleOf("", "label", label), nil)
}

// Compile pushes predicates down and freezes the pattern. It is idempotent.
func (p *Pattern) Compile() error {
	if p.compiled {
		return nil
	}
	if err := p.Motif.Err(); err != nil {
		return fmt.Errorf("pattern: %s: malformed motif: %w", p.Name, err)
	}
	// Attribute tuples on motif elements become equality conjuncts; tags
	// become tag requirements. The derived conjuncts go into a local copy so
	// p.where keeps exactly the construction-time predicates — WhereSource
	// serializes those, and the wire decoder re-derives the tuple conjuncts
	// from the tuples themselves.
	where := append([]expr.Expr(nil), p.where...)
	for _, n := range p.Motif.Nodes() {
		if n.Attrs == nil {
			continue
		}
		p.NodeTag[n.ID] = n.Attrs.Tag
		for i := 0; i < n.Attrs.Len(); i++ {
			a := n.Attrs.At(i)
			where = append(where, expr.Binary{
				Op: expr.OpEq,
				L:  expr.Name{Parts: []string{n.Name, a.Name}},
				R:  expr.Lit{Val: a.Val},
			})
		}
	}
	for _, e := range p.Motif.Edges() {
		if e.Attrs == nil {
			continue
		}
		for i := 0; i < e.Attrs.Len(); i++ {
			a := e.Attrs.At(i)
			where = append(where, expr.Binary{
				Op: expr.OpEq,
				L:  expr.Name{Parts: []string{e.Name, a.Name}},
				R:  expr.Lit{Val: a.Val},
			})
		}
	}
	var global []expr.Expr
	for _, w := range where {
		for _, c := range expr.Conjuncts(w) {
			if !p.pushDown(c) {
				global = append(global, c)
			}
		}
	}
	p.Global = expr.And(global...)
	p.extractConstLabels()
	// Lower every predicate to its closure form once; the σ_P inner loop
	// then evaluates candidates without re-walking the trees.
	p.nodePredC = make([]expr.Pred, len(p.NodePred))
	for u, e := range p.NodePred {
		p.nodePredC[u] = expr.CompilePred(e)
	}
	p.edgePredC = make([]expr.Pred, len(p.EdgePred))
	for e, x := range p.EdgePred {
		p.edgePredC[e] = expr.CompilePred(x)
	}
	p.globalC = expr.CompilePred(p.Global)
	p.compiled = true
	return p.validate()
}

// owner classifies a qualified name: the motif element that owns it (node or
// edge variable) or "" when it refers to the graph or spans elements.
func (p *Pattern) owner(parts []string) (elem string, attr string, ok bool) {
	// Strip a leading pattern qualifier (P.v1.name -> v1.name).
	if len(parts) >= 2 && parts[0] == p.Name && p.Name != "" {
		parts = parts[1:]
	}
	if len(parts) != 2 {
		return "", "", false
	}
	if _, isNode := p.Motif.NodeByName(parts[0]); isNode {
		return parts[0], parts[1], true
	}
	if _, isEdge := p.Motif.EdgeByName(parts[0]); isEdge {
		return parts[0], parts[1], true
	}
	return "", "", false
}

// pushDown attaches a conjunct to its single owning node or edge; reports
// whether it was pushed.
func (p *Pattern) pushDown(c expr.Expr) bool {
	names := expr.Names(c)
	if len(names) == 0 {
		return false
	}
	var elem string
	for _, n := range names {
		e, _, ok := p.owner(n)
		if !ok {
			return false
		}
		if elem == "" {
			elem = e
		} else if elem != e {
			return false
		}
	}
	// Rewrite names to bare attribute form for element-local evaluation.
	local := expr.Rewrite(c, func(n expr.Name) expr.Name {
		_, attr, _ := p.owner(n.Parts)
		return expr.Name{Parts: []string{attr}}
	})
	if u, ok := p.Motif.NodeByName(elem); ok {
		p.NodePred[u] = expr.And(p.NodePred[u], local)
		return true
	}
	e, _ := p.Motif.EdgeByName(elem)
	p.EdgePred[e] = expr.And(p.EdgePred[e], local)
	return true
}

// extractConstLabels records `label == const` constraints for index lookup.
func (p *Pattern) extractConstLabels() {
	for u := range p.NodePred {
		for _, c := range expr.Conjuncts(p.NodePred[u]) {
			b, ok := c.(expr.Binary)
			if !ok || b.Op != expr.OpEq {
				continue
			}
			nm, okL := b.L.(expr.Name)
			lit, okR := b.R.(expr.Lit)
			if !okL || !okR { // also accept const == label
				nm, okL = b.R.(expr.Name)
				lit, okR = b.L.(expr.Lit)
			}
			if okL && okR && len(nm.Parts) == 1 && nm.Parts[0] == "label" && lit.Val.Kind() == graph.KindString {
				p.constLabel[u] = lit.Val.AsString()
			}
		}
	}
}

// ConstLabel returns the constant label required of mates of u, if any.
func (p *Pattern) ConstLabel(u graph.NodeID) (string, bool) {
	l := p.constLabel[u]
	return l, l != ""
}

// validate rejects patterns whose residual predicate references unknown
// variables (typos would otherwise silently become Null comparisons).
func (p *Pattern) validate() error {
	for _, n := range expr.Names(p.Global) {
		parts := n
		if len(parts) >= 2 && parts[0] == p.Name && p.Name != "" {
			parts = parts[1:]
		}
		head := parts[0]
		if _, ok := p.Motif.NodeByName(head); ok {
			continue
		}
		if _, ok := p.Motif.EdgeByName(head); ok {
			continue
		}
		if len(parts) == 1 {
			continue // graph attribute of the matched graph
		}
		return fmt.Errorf("pattern: %s: predicate references unknown variable %q", p.Name, head)
	}
	return nil
}

// Size returns the number of motif nodes.
func (p *Pattern) Size() int { return p.Motif.NumNodes() }

// WhereSource renders the construction-time predicates (AddNode/AddEdge
// where clauses, already qualified with their element names, plus every
// Where call) as one parseable expression — the pattern's predicate "by
// source text" for the multi-process wire protocol. Tuple-derived equality
// conjuncts are NOT included: the wire carries the tuples themselves, and
// the receiving side's Compile re-derives identical conjuncts in identical
// order, so a round-tripped pattern compiles to the same plan inputs as
// the original. Returns "" when the pattern has no predicates.
func (p *Pattern) WhereSource() string {
	e := expr.And(p.where...)
	if e == nil {
		return ""
	}
	return e.String()
}

// tupleEnv resolves bare attribute names against one tuple. It is a named
// pointer type so converting it to expr.Env stores the tuple pointer
// directly in the interface word — the per-candidate predicate check
// allocates nothing. A nil receiver (node without attributes) resolves
// every name to Null, matching Tuple.GetOr.
type tupleEnv graph.Tuple

// Resolve implements expr.Env.
func (t *tupleEnv) Resolve(parts []string) (graph.Value, error) {
	if len(parts) != 1 {
		return graph.Null, fmt.Errorf("pattern: qualified name %v in element-local predicate", parts)
	}
	return (*graph.Tuple)(t).GetOr(parts[0]), nil
}

// NodeMatches reports whether data node (tuple) v satisfies pattern node u's
// tag and local predicate — the feasible-mate test F_u(v) of Definition 4.8.
// On a compiled pattern the predicate runs in its closure form; an
// uncompiled pattern (predicates attached after Compile) falls back to the
// tree walk so the test stays total.
func (p *Pattern) NodeMatches(u graph.NodeID, attrs *graph.Tuple) (bool, error) {
	if tag := p.NodeTag[u]; tag != "" {
		if attrs == nil || attrs.Tag != tag {
			return false, nil
		}
	}
	if int(u) < len(p.nodePredC) {
		if pred := p.nodePredC[u]; pred != nil {
			return pred((*tupleEnv)(attrs))
		}
		return true, nil
	}
	return expr.Holds(p.NodePred[u], (*tupleEnv)(attrs))
}

// EdgeMatches reports whether a data edge's attributes satisfy pattern edge
// e's local predicate F_e.
func (p *Pattern) EdgeMatches(e graph.EdgeID, attrs *graph.Tuple) (bool, error) {
	if int(e) < len(p.edgePredC) {
		if pred := p.edgePredC[e]; pred != nil {
			return pred((*tupleEnv)(attrs))
		}
		return true, nil
	}
	return expr.Holds(p.EdgePred[e], (*tupleEnv)(attrs))
}

// GlobalHolds evaluates the residual graph-wide predicate under env (a
// complete binding), using the compiled form when available. A nil Global
// holds trivially.
func (p *Pattern) GlobalHolds(env expr.Env) (bool, error) {
	if p.globalC != nil {
		return p.globalC(env)
	}
	return expr.Holds(p.Global, env)
}

// String renders the pattern motif plus its full predicate: pushed-down
// node and edge conjuncts are requalified with their element names and
// conjoined with the residual graph-wide predicate, so the printed form is
// semantically complete.
func (p *Pattern) String() string {
	s := p.Motif.String()
	var parts []expr.Expr
	for _, n := range p.Motif.Nodes() {
		if e := p.NodePred[n.ID]; e != nil {
			parts = append(parts, qualify(e, n.Name))
		}
	}
	for _, ed := range p.Motif.Edges() {
		if e := p.EdgePred[ed.ID]; e != nil {
			parts = append(parts, qualify(e, ed.Name))
		}
	}
	parts = append(parts, p.Global)
	if full := expr.And(parts...); full != nil {
		s += " where " + full.String()
	}
	return s
}
