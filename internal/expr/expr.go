// Package expr implements the predicate expressions of GraphQL graph
// patterns and templates (§3.2, Appendix 4.A): boolean and arithmetic
// combinations of literals and qualified names such as P.v1.name. An
// expression is evaluated against an Env that resolves names to attribute
// values of bound nodes, edges or graphs.
//
// Env error semantics: a missing attribute of a known variable resolves to
// Null without error (heterogeneous graphs simply fail to match), but an
// unknown variable root is an error — a typo in a template parameter or
// predicate must surface instead of silently matching nothing. MapEnv
// implements exactly this contract.
//
// Expressions can be evaluated two ways: Expr.Eval tree-walks the node
// structure, and Compile lowers the tree once into a closure chain
// (constant-folded, short-circuit specialized) that evaluates without any
// per-call tree dispatch — the form the match hot path uses per candidate.
package expr

import (
	"fmt"
	"strings"

	"gqldb/internal/graph"
)

// Env resolves a qualified name (already split at dots) to a value. Missing
// attributes resolve to Null without error; unknown variables are errors.
type Env interface {
	Resolve(parts []string) (graph.Value, error)
}

// Expr is a predicate or arithmetic expression tree.
type Expr interface {
	// Eval computes the expression's value under env.
	Eval(env Env) (graph.Value, error)
	// String renders the expression in source syntax.
	String() string
}

// Lit is a literal value.
type Lit struct {
	Val graph.Value
}

// Eval implements Expr.
func (l Lit) Eval(Env) (graph.Value, error) { return l.Val, nil }

func (l Lit) String() string { return l.Val.String() }

// Name is a dotted qualified name, e.g. P.v1.name or name.
type Name struct {
	Parts []string
}

// Eval implements Expr.
func (n Name) Eval(env Env) (graph.Value, error) { return env.Resolve(n.Parts) }

func (n Name) String() string { return strings.Join(n.Parts, ".") }

// Op identifies a binary operator.
type Op uint8

// Binary operators of the grammar. OpEq is spelled both "=" and "==" in the
// paper's examples; the parser normalizes to OpEq.
const (
	OpOr Op = iota
	OpAnd
	OpAdd
	OpSub
	OpMul
	OpDiv
	OpEq
	OpNe
	OpGt
	OpGe
	OpLt
	OpLe
)

var opNames = [...]string{"|", "&", "+", "-", "*", "/", "==", "!=", ">", ">=", "<", "<="}

// String returns the operator's source spelling.
func (op Op) String() string { return opNames[op] }

// Binary applies Op to two subexpressions.
type Binary struct {
	Op   Op
	L, R Expr
}

func (b Binary) String() string {
	return "(" + b.L.String() + " " + b.Op.String() + " " + b.R.String() + ")"
}

// Eval implements Expr. Boolean operators use truthiness and short-circuit;
// comparisons between incomparable kinds (including Null, i.e. missing
// attributes) are false rather than errors, so heterogeneous graphs simply
// fail to match instead of aborting a query.
func (b Binary) Eval(env Env) (graph.Value, error) {
	switch b.Op {
	case OpAnd, OpOr:
		l, err := b.L.Eval(env)
		if err != nil {
			return graph.Null, err
		}
		if b.Op == OpAnd && !l.Truthy() {
			return graph.Bool(false), nil
		}
		if b.Op == OpOr && l.Truthy() {
			return graph.Bool(true), nil
		}
		r, err := b.R.Eval(env)
		if err != nil {
			return graph.Null, err
		}
		return graph.Bool(r.Truthy()), nil
	}
	l, err := b.L.Eval(env)
	if err != nil {
		return graph.Null, err
	}
	r, err := b.R.Eval(env)
	if err != nil {
		return graph.Null, err
	}
	switch b.Op {
	case OpAdd:
		return graph.Arith('+', l, r)
	case OpSub:
		return graph.Arith('-', l, r)
	case OpMul:
		return graph.Arith('*', l, r)
	case OpDiv:
		return graph.Arith('/', l, r)
	}
	c, err := l.Compare(r)
	if err != nil {
		// Incomparable values: != holds, every other comparison fails.
		return graph.Bool(b.Op == OpNe), nil
	}
	switch b.Op {
	case OpEq:
		return graph.Bool(c == 0), nil
	case OpNe:
		return graph.Bool(c != 0), nil
	case OpGt:
		return graph.Bool(c > 0), nil
	case OpGe:
		return graph.Bool(c >= 0), nil
	case OpLt:
		return graph.Bool(c < 0), nil
	case OpLe:
		return graph.Bool(c <= 0), nil
	}
	return graph.Null, fmt.Errorf("expr: unknown operator %d", b.Op)
}

// Holds evaluates e as a boolean predicate; a nil expression holds trivially.
func Holds(e Expr, env Env) (bool, error) {
	if e == nil {
		return true, nil
	}
	v, err := e.Eval(env)
	if err != nil {
		return false, err
	}
	return v.Truthy(), nil
}

// And conjoins expressions, dropping nils; returns nil when all are nil.
func And(es ...Expr) Expr {
	var out Expr
	for _, e := range es {
		if e == nil {
			continue
		}
		if out == nil {
			out = e
		} else {
			out = Binary{Op: OpAnd, L: out, R: e}
		}
	}
	return out
}

// Conjuncts flattens nested AND nodes into a list; a nil expression yields
// nil. Used to push per-node predicates down into the pattern (§4.1). The
// walk appends into one accumulator (linear in the conjunct count, not the
// quadratic left-deep copy of the naive recursive append), and the returned
// slice is freshly allocated on every call — callers may grow or reorder it
// without affecting other callers.
func Conjuncts(e Expr) []Expr {
	if e == nil {
		return nil
	}
	var out []Expr
	var walk func(Expr)
	walk = func(e Expr) {
		if b, ok := e.(Binary); ok && b.Op == OpAnd {
			walk(b.L)
			walk(b.R)
			return
		}
		out = append(out, e)
	}
	walk(e)
	return out
}

// Names returns every qualified name occurring in e, in source order.
func Names(e Expr) [][]string {
	var out [][]string
	var walk func(Expr)
	walk = func(e Expr) {
		switch x := e.(type) {
		case Name:
			out = append(out, x.Parts)
		case Binary:
			walk(x.L)
			walk(x.R)
		}
	}
	if e != nil {
		walk(e)
	}
	return out
}

// Rewrite returns a copy of e with every Name transformed by fn (fn may
// return the name unchanged). Used to requalify node-level predicates when
// motifs are composed or aliased.
func Rewrite(e Expr, fn func(Name) Name) Expr {
	switch x := e.(type) {
	case nil:
		return nil
	case Name:
		return fn(x)
	case Binary:
		return Binary{Op: x.Op, L: Rewrite(x.L, fn), R: Rewrite(x.R, fn)}
	default:
		return e
	}
}

// MapEnv is an Env backed by a map from dotted names to values; convenient
// in tests and for template parameters.
type MapEnv map[string]graph.Value

// Resolve implements Env under the documented contract: an exact key hit
// returns its value; a miss under a variable root the map knows (the root
// appears as a key or as a dotted prefix of one) is a missing attribute and
// resolves to Null; a miss under an unknown root is an error, so a typo'd
// template parameter fails loudly instead of silently matching nothing.
func (m MapEnv) Resolve(parts []string) (graph.Value, error) {
	if len(parts) == 0 {
		return graph.Null, fmt.Errorf("expr: empty qualified name")
	}
	key := strings.Join(parts, ".")
	if v, ok := m[key]; ok {
		return v, nil
	}
	root := parts[0]
	prefix := root + "."
	for k := range m {
		if k == root || strings.HasPrefix(k, prefix) {
			return graph.Null, nil
		}
	}
	return graph.Null, fmt.Errorf("expr: unknown variable %q", root)
}
