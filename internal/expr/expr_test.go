package expr

import (
	"testing"

	"gqldb/internal/graph"
)

func lit(v any) Expr {
	switch x := v.(type) {
	case int:
		return Lit{graph.Int(int64(x))}
	case float64:
		return Lit{graph.Float(x)}
	case string:
		return Lit{graph.String(x)}
	case bool:
		return Lit{graph.Bool(x)}
	}
	panic("bad literal")
}

func name(parts ...string) Expr { return Name{Parts: parts} }

func bin(op Op, l, r Expr) Expr { return Binary{Op: op, L: l, R: r} }

func evalOK(t *testing.T, e Expr, env Env) graph.Value {
	t.Helper()
	v, err := e.Eval(env)
	if err != nil {
		t.Fatalf("Eval(%s): %v", e, err)
	}
	return v
}

func TestLiteralsAndNames(t *testing.T) {
	env := MapEnv{"v1.name": graph.String("A"), "v1.year": graph.Int(2006)}
	if got := evalOK(t, lit(5), env); got.AsInt() != 5 {
		t.Errorf("lit = %v", got)
	}
	if got := evalOK(t, name("v1", "name"), env); got.AsString() != "A" {
		t.Errorf("name = %v", got)
	}
	// Missing attribute resolves to Null, not an error.
	if got := evalOK(t, name("v1", "missing"), env); !got.IsNull() {
		t.Errorf("missing = %v, want null", got)
	}
}

func TestComparisons(t *testing.T) {
	env := MapEnv{"x": graph.Int(10), "s": graph.String("abc")}
	cases := []struct {
		e    Expr
		want bool
	}{
		{bin(OpEq, name("x"), lit(10)), true},
		{bin(OpNe, name("x"), lit(10)), false},
		{bin(OpGt, name("x"), lit(5)), true},
		{bin(OpGe, name("x"), lit(10)), true},
		{bin(OpLt, name("x"), lit(10)), false},
		{bin(OpLe, name("x"), lit(10)), true},
		{bin(OpEq, name("s"), lit("abc")), true},
		{bin(OpLt, name("s"), lit("abd")), true},
		// Incomparable kinds: == false, != true, ordering false.
		{bin(OpEq, name("x"), lit("10")), false},
		{bin(OpNe, name("x"), lit("10")), true},
		{bin(OpGt, name("x"), lit("10")), false},
		// Null (missing attribute of a known variable) never equals anything.
		{bin(OpEq, name("x", "nope"), lit(0)), false},
	}
	for _, c := range cases {
		got := evalOK(t, c.e, env)
		if got.AsBool() != c.want {
			t.Errorf("%s = %v, want %v", c.e, got, c.want)
		}
	}
}

func TestBooleanShortCircuit(t *testing.T) {
	// name resolution errors only surface when the operand is evaluated.
	env := errEnv{}
	e := bin(OpAnd, lit(false), name("boom"))
	if v := evalOK(t, e, env); v.AsBool() {
		t.Error("false & X should be false without evaluating X")
	}
	e = bin(OpOr, lit(true), name("boom"))
	if v := evalOK(t, e, env); !v.AsBool() {
		t.Error("true | X should be true without evaluating X")
	}
	e = bin(OpAnd, lit(true), name("boom"))
	if _, err := e.Eval(env); err == nil {
		t.Error("true & error should propagate the error")
	}
}

type errEnv struct{}

func (errEnv) Resolve(parts []string) (graph.Value, error) {
	return graph.Null, errTest
}

var errTest = errorString("boom")

type errorString string

func (e errorString) Error() string { return string(e) }

func TestArithmetic(t *testing.T) {
	env := MapEnv{"x": graph.Int(7)}
	e := bin(OpAdd, bin(OpMul, name("x"), lit(2)), lit(1)) // x*2+1
	if got := evalOK(t, e, env); got.AsInt() != 15 {
		t.Errorf("x*2+1 = %v, want 15", got)
	}
	e = bin(OpDiv, name("x"), lit(2))
	if got := evalOK(t, e, env); got.AsFloat() != 3.5 {
		t.Errorf("7/2 = %v, want 3.5", got)
	}
	if _, err := bin(OpAdd, lit("a"), lit(1)).Eval(env); err == nil {
		t.Error("string+int should error")
	}
}

func TestHolds(t *testing.T) {
	if ok, err := Holds(nil, MapEnv{}); err != nil || !ok {
		t.Error("nil predicate should hold")
	}
	if ok, _ := Holds(bin(OpGt, lit(1), lit(2)), MapEnv{}); ok {
		t.Error("1>2 should not hold")
	}
}

func TestAndConjuncts(t *testing.T) {
	a := bin(OpEq, name("x"), lit(1))
	b := bin(OpGt, name("y"), lit(2))
	c := bin(OpLt, name("z"), lit(3))
	e := And(a, nil, b, c)
	cs := Conjuncts(e)
	if len(cs) != 3 {
		t.Fatalf("Conjuncts = %d, want 3", len(cs))
	}
	if And() != nil || And(nil, nil) != nil {
		t.Error("And of nothing should be nil")
	}
	if Conjuncts(nil) != nil {
		t.Error("Conjuncts(nil) should be nil")
	}
	// Nested ORs are not split.
	or := bin(OpOr, a, b)
	if got := Conjuncts(or); len(got) != 1 {
		t.Errorf("Conjuncts(or) = %d, want 1", len(got))
	}
}

func TestNamesAndRewrite(t *testing.T) {
	e := bin(OpAnd,
		bin(OpEq, name("v1", "name"), name("v2", "name")),
		bin(OpGt, name("year"), lit(2000)))
	ns := Names(e)
	if len(ns) != 3 {
		t.Fatalf("Names = %v", ns)
	}
	// Qualify bare names with a prefix.
	q := Rewrite(e, func(n Name) Name {
		if len(n.Parts) == 1 {
			return Name{Parts: append([]string{"v9"}, n.Parts...)}
		}
		return n
	})
	found := false
	for _, n := range Names(q) {
		if len(n) == 2 && n[0] == "v9" && n[1] == "year" {
			found = true
		}
	}
	if !found {
		t.Errorf("Rewrite did not qualify bare name: %s", q)
	}
	// Original untouched.
	for _, n := range Names(e) {
		if n[0] == "v9" {
			t.Error("Rewrite mutated the original")
		}
	}
}

func TestString(t *testing.T) {
	e := bin(OpAnd, bin(OpEq, name("v1", "name"), lit("A")), bin(OpGt, name("v2", "year"), lit(2000)))
	want := `((v1.name == "A") & (v2.year > 2000))`
	if e.String() != want {
		t.Errorf("String = %s, want %s", e.String(), want)
	}
}
