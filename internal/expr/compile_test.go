package expr

import (
	"testing"

	"gqldb/internal/graph"
)

// compileEnv is an allocation-free Env for the benchmark and the zero-alloc
// guard: a pointer receiver resolving two fixed attributes.
type compileEnv struct {
	year graph.Value
	name graph.Value
}

func (c *compileEnv) Resolve(parts []string) (graph.Value, error) {
	switch parts[len(parts)-1] {
	case "year":
		return c.year, nil
	case "name":
		return c.name, nil
	}
	return graph.Null, nil
}

// TestCompileEquivalence drives Compile through every operator family and
// checks the closure agrees with the tree-walking Eval on value and error
// presence.
func TestCompileEquivalence(t *testing.T) {
	env := MapEnv{
		"x":      graph.Int(10),
		"f":      graph.Float(2.5),
		"s":      graph.String("abc"),
		"b":      graph.Bool(true),
		"v.year": graph.Int(2006),
	}
	exprs := []Expr{
		lit(5),
		name("x"),
		name("v", "year"),
		name("v", "missing"), // known root, missing attribute -> Null
		bin(OpAdd, name("x"), lit(1)),
		bin(OpSub, name("f"), lit(0.5)),
		bin(OpMul, name("x"), name("x")),
		bin(OpDiv, name("x"), lit(0)), // runtime error must survive compilation
		bin(OpEq, name("s"), lit("abc")),
		bin(OpNe, name("x"), lit("10")), // incomparable kinds
		bin(OpLt, name("x"), lit(11)),
		bin(OpLe, lit(10), name("x")), // const-left comparison
		bin(OpGt, name("f"), lit(2.0)),
		bin(OpGe, name("x"), name("x")),
		bin(OpAnd, name("b"), bin(OpGt, name("x"), lit(5))),
		bin(OpOr, bin(OpEq, name("s"), lit("zz")), name("b")),
		bin(OpAnd, lit(false), name("nope")),             // short-circuit skips unknown root
		bin(OpOr, lit(true), bin(OpDiv, lit(1), lit(0))), // short-circuit skips error
		bin(OpAnd, lit(true), bin(OpGt, name("x"), lit(9))),
		bin(OpAdd, bin(OpMul, lit(2), lit(3)), lit(4)), // fully constant: folded
		name("unknown"),                                // unknown root -> error
		bin(OpEq, name("unknown"), lit(1)),
	}
	for _, e := range exprs {
		want, werr := e.Eval(env)
		got, gerr := Compile(e)(env)
		if (werr == nil) != (gerr == nil) {
			t.Errorf("%s: compiled error %v, Eval error %v", e, gerr, werr)
			continue
		}
		if werr == nil && want.String() != got.String() {
			t.Errorf("%s: compiled %s, Eval %s", e, got, want)
		}
	}
}

// TestCompileConstantFolding pins the folding rules: a name-free subtree
// that evaluates cleanly becomes a constant, but an erroring constant
// (division by zero) must NOT be folded away — the error is part of the
// expression's runtime semantics.
func TestCompileConstantFolding(t *testing.T) {
	// Whole-expression fold: evaluation needs no env at all.
	v, err := Compile(bin(OpAdd, lit(2), bin(OpMul, lit(3), lit(4))))(nil)
	if err != nil || v.AsInt() != 14 {
		t.Errorf("folded constant = %v, %v; want 14", v, err)
	}
	// Erroring constant: the compiled form must surface the error when run,
	// not at compile time and not silently.
	if _, err := Compile(bin(OpDiv, lit(1), lit(0)))(nil); err == nil {
		t.Error("1/0 compiled to a non-erroring closure")
	}
	// But a short-circuit that hides the erroring side hides it compiled too.
	if v, err := Compile(bin(OpOr, lit(true), bin(OpDiv, lit(1), lit(0))))(nil); err != nil || !v.AsBool() {
		t.Errorf("true | 1/0 = %v, %v; want true", v, err)
	}
}

// TestCompilePredNil pins the trivially-true contract: a nil expression
// compiles to a nil Pred, and Compile(nil) evaluates to Null.
func TestCompilePredNil(t *testing.T) {
	if p := CompilePred(nil); p != nil {
		t.Error("CompilePred(nil) != nil")
	}
	if v, err := Compile(nil)(nil); err != nil || !v.IsNull() {
		t.Errorf("Compile(nil)() = %v, %v; want Null", v, err)
	}
}

// TestMapEnvUnknownRoot is the regression test for the Resolve contract:
// an unknown variable root is an error (a typo'd binding must not silently
// satisfy or fail predicates), while a missing attribute of a known
// variable resolves to Null without error.
func TestMapEnvUnknownRoot(t *testing.T) {
	env := MapEnv{"v1.name": graph.String("A"), "x": graph.Int(1)}
	if _, err := env.Resolve([]string{"nope"}); err == nil {
		t.Error("unknown root resolved without error")
	}
	if _, err := env.Resolve([]string{"nope", "attr"}); err == nil {
		t.Error("unknown qualified root resolved without error")
	}
	if v, err := env.Resolve([]string{"v1", "missing"}); err != nil || !v.IsNull() {
		t.Errorf("missing attribute of known root = %v, %v; want Null, nil", v, err)
	}
	if v, err := env.Resolve([]string{"x"}); err != nil || v.AsInt() != 1 {
		t.Errorf("bound root = %v, %v; want 1", v, err)
	}
	if _, err := env.Resolve(nil); err == nil {
		t.Error("empty qualified name resolved without error")
	}
	// Through Eval: an unknown root errors, and Holds propagates it.
	if _, err := name("nope").Eval(env); err == nil {
		t.Error("Eval over unknown root did not error")
	}
	if _, err := Holds(bin(OpEq, name("nope"), lit(1)), env); err == nil {
		t.Error("Holds over unknown root did not error")
	}
}

// TestConjunctsIndependence pins the accumulator rewrite: conjuncts come
// back in left-to-right order, and the returned slice shares no storage
// across calls (the old left-deep append could alias one call's backing
// array into another's).
func TestConjunctsIndependence(t *testing.T) {
	a, b, c, d := name("a"), name("b"), name("c"), name("d")
	e := bin(OpAnd, bin(OpAnd, bin(OpAnd, a, b), c), d)
	cs := Conjuncts(e)
	if len(cs) != 4 {
		t.Fatalf("len = %d, want 4", len(cs))
	}
	for i, want := range []Expr{a, b, c, d} {
		if cs[i].String() != want.String() {
			t.Errorf("conjunct %d = %s, want %s", i, cs[i], want)
		}
	}
	// Right-deep and mixed trees flatten too.
	if got := Conjuncts(bin(OpAnd, a, bin(OpAnd, b, bin(OpAnd, c, d)))); len(got) != 4 {
		t.Errorf("right-deep len = %d, want 4", len(got))
	}
	// No storage sharing: growing one result must not disturb another.
	cs2 := Conjuncts(e)
	_ = append(cs[:2], lit(0), lit(0))
	if cs2[2].String() != c.String() || cs2[3].String() != d.String() {
		t.Errorf("calls share backing storage: %v", cs2)
	}
	if Conjuncts(nil) != nil {
		t.Error("Conjuncts(nil) != nil")
	}
	if got := Conjuncts(a); len(got) != 1 || got[0].String() != a.String() {
		t.Errorf("single conjunct = %v", got)
	}
}

// predExpr is the benchmark predicate: a representative element-local
// selection predicate with a comparison conjunction.
func predExpr() Expr {
	return bin(OpAnd,
		bin(OpGt, name("year"), lit(2000)),
		bin(OpEq, name("name"), lit("SIGMOD")))
}

// TestCompiledPredicateZeroAlloc guards the hot path: evaluating a
// compiled predicate over an allocation-free env must not allocate.
func TestCompiledPredicateZeroAlloc(t *testing.T) {
	pred := CompilePred(predExpr())
	env := &compileEnv{year: graph.Int(2006), name: graph.String("SIGMOD")}
	allocs := testing.AllocsPerRun(1000, func() {
		ok, err := pred(env)
		if err != nil || !ok {
			t.Fatalf("pred = %v, %v", ok, err)
		}
	})
	if allocs != 0 {
		t.Errorf("compiled predicate allocates %.1f per op, want 0", allocs)
	}
}

// BenchmarkCompiledPredicate compares the compiled closure against the
// tree-walking evaluator on the same predicate and environment.
func BenchmarkCompiledPredicate(b *testing.B) {
	e := predExpr()
	env := &compileEnv{year: graph.Int(2006), name: graph.String("SIGMOD")}
	b.Run("compiled", func(b *testing.B) {
		pred := CompilePred(e)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if ok, err := pred(env); err != nil || !ok {
				b.Fatal(ok, err)
			}
		}
	})
	b.Run("eval", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if ok, err := Holds(e, env); err != nil || !ok {
				b.Fatal(ok, err)
			}
		}
	})
}
