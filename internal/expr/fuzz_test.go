package expr_test

import (
	"strings"
	"testing"

	"gqldb/internal/expr"
	"gqldb/internal/graph"
	"gqldb/internal/parser"
)

// FuzzEval fuzzes the expression evaluator against untrusted attribute
// values: the expression source comes from the fuzzer AND the environment
// it evaluates under is populated with fuzzer-chosen values of every kind,
// so both the operator dispatch (boolean short-circuit, arithmetic,
// comparison coercion) and the value layer underneath (Arith, Compare,
// Truthy) see adversarial input. Invariants:
//
//   - evaluation never panics (division by zero, overflow, kind mixing and
//     missing attributes must all come back as values or errors);
//   - evaluation is deterministic: two runs under the same env agree on
//     both value and error;
//   - a parseable expression renders (String) back into parseable source —
//     the renderer and lexer agree on escaping — and the reparse evaluates
//     to the same outcome.
func FuzzEval(f *testing.F) {
	f.Add(`a.name = "x" & b.year > 2000`, "x", int64(2001), 1.5, true)
	f.Add(`x + y * 2 - z / 0`, "", int64(7), 0.0, false)
	f.Add(`(n.a + n.b) / (n.a - n.b) >= n.c | n.flag`, "s", int64(-9223372036854775808), -1.0, true)
	f.Add(`s + s = s`, "concat", int64(0), 2.5, false)
	f.Add(`a != b & a <= c & c < d`, "\\\"quoted\\\"", int64(3), 0.25, true)
	f.Add(`v1.name = "A" & v2.year / v1.year > 1`, "A", int64(1999), 3.5, true)

	f.Fuzz(func(t *testing.T, src, sval string, ival int64, fval float64, bval bool) {
		e, err := parser.ParseExpr(src)
		if err != nil {
			return
		}

		// Bind every name the expression mentions to a fuzzer-chosen value,
		// cycling through the kinds so comparisons and arithmetic see every
		// mix. Every root is bound: MapEnv errors on unknown variable roots
		// (only missing attributes of known variables resolve to Null).
		env := expr.MapEnv{}
		vals := []graph.Value{graph.String(sval), graph.Int(ival), graph.Float(fval), graph.Bool(bval), graph.Null}
		for i, parts := range expr.Names(e) {
			env[strings.Join(parts, ".")] = vals[i%len(vals)]
		}

		v1, err1 := e.Eval(env)
		v2, err2 := e.Eval(env)
		if (err1 == nil) != (err2 == nil) {
			t.Fatalf("nondeterministic error: %v vs %v", err1, err2)
		}
		if err1 == nil && v1.String() != v2.String() {
			t.Fatalf("nondeterministic value: %s vs %s", v1, v2)
		}

		// Render → reparse → re-evaluate must agree with the original.
		re, err := parser.ParseExpr(e.String())
		if err != nil {
			t.Fatalf("rendered expression does not reparse: %q: %v", e.String(), err)
		}
		v3, err3 := re.Eval(env)
		if (err1 == nil) != (err3 == nil) {
			t.Fatalf("reparse changes error: %v vs %v (src %q)", err1, err3, e.String())
		}
		if err1 == nil && v1.String() != v3.String() {
			t.Fatalf("reparse changes value: %s vs %s (src %q)", v1, v3, e.String())
		}

		// Holds must agree with Eval's truthiness.
		h, herr := expr.Holds(e, env)
		if (herr == nil) != (err1 == nil) {
			t.Fatalf("Holds error disagrees with Eval: %v vs %v", herr, err1)
		}
		if err1 == nil && h != v1.Truthy() {
			t.Fatalf("Holds = %v, Eval truthiness = %v", h, v1.Truthy())
		}
	})
}

// FuzzCompiledEval fuzzes the closure compiler against the tree-walking
// evaluator: for any parseable expression and any environment — including
// ones where some variable roots are UNBOUND, so resolution errors flow
// through both paths — Compile(e)(env) must agree with e.Eval(env) on the
// value and on error presence, and CompilePred must agree with Holds.
// Boolean short-circuit makes exact error identity unobservable in
// general (a folded constant right side never runs), but whether an
// evaluation errors at all is part of the semantics and must survive
// compilation.
func FuzzCompiledEval(f *testing.F) {
	f.Add(`a.name = "x" & b.year > 2000`, "x", int64(2001), 1.5, true)
	f.Add(`x + y * 2 - z / 0`, "", int64(7), 0.0, false)
	f.Add(`(n.a + n.b) / (n.a - n.b) >= n.c | n.flag`, "s", int64(-9223372036854775808), -1.0, true)
	f.Add(`1 = 1 & nope.x > 0`, "", int64(0), 0.0, false)
	f.Add(`false & boom.y = 1 | true`, "t", int64(5), 2.0, true)
	f.Add(`v1.name = "A" & v2.year / v1.year > 1`, "A", int64(1999), 3.5, true)

	f.Fuzz(func(t *testing.T, src, sval string, ival int64, fval float64, bval bool) {
		e, err := parser.ParseExpr(src)
		if err != nil {
			return
		}

		// Bind only every other name: the unbound roots make MapEnv error,
		// exercising the compiled error paths (including short-circuits that
		// skip them).
		env := expr.MapEnv{}
		vals := []graph.Value{graph.String(sval), graph.Int(ival), graph.Float(fval), graph.Bool(bval), graph.Null}
		for i, parts := range expr.Names(e) {
			if i%2 == 0 {
				env[strings.Join(parts, ".")] = vals[i%len(vals)]
			}
		}

		want, werr := e.Eval(env)
		got, gerr := expr.Compile(e)(env)
		if (werr == nil) != (gerr == nil) {
			t.Fatalf("compiled error disagrees with Eval: %v vs %v (src %q)", gerr, werr, e)
		}
		if werr == nil && want.String() != got.String() {
			t.Fatalf("compiled = %s, Eval = %s (src %q)", got, want, e)
		}

		wantH, wherr := expr.Holds(e, env)
		gotH, gherr := expr.CompilePred(e)(env)
		if (wherr == nil) != (gherr == nil) {
			t.Fatalf("compiled pred error disagrees with Holds: %v vs %v (src %q)", gherr, wherr, e)
		}
		if wherr == nil && wantH != gotH {
			t.Fatalf("compiled pred = %v, Holds = %v (src %q)", gotH, wantH, e)
		}
	})
}
