// Predicate compilation: Compile lowers an Expr tree into a chain of
// closures evaluated without per-call tree dispatch. The lowering runs
// once per pattern compilation; the closures then run once per candidate
// in the Algorithm 4.1 inner loop, so the work moved out of them —
// operator switches, interface dispatch on subtrees, constant subtree
// evaluation — is paid once instead of per candidate.
//
// The compiled form is semantically identical to Expr.Eval (the
// FuzzCompiledEval harness holds the two implementations against each
// other on arbitrary expressions and environments):
//
//   - constant folding: a name-free subtree whose evaluation succeeds is
//     collapsed to its value at compile time; subtrees whose evaluation
//     errors (division by zero) are kept so the runtime error is preserved;
//   - short-circuit specialization: AND/OR with a constant left side
//     compile to either a constant or the bare truthiness of the right
//     side; the general forms evaluate the right side only when the left
//     does not decide;
//   - per-operator closures: each comparison and arithmetic operator gets
//     its own closure, so no operator switch runs per evaluation.
//
// Compiled closures perform no allocations of their own; whether a full
// evaluation allocates is then determined solely by the Env and the value
// operations (string concatenation in Arith allocates, comparisons do not).
package expr

import "gqldb/internal/graph"

// Compiled is the closure form of an expression: a function computing the
// expression's value under an Env, as Expr.Eval would.
type Compiled func(Env) (graph.Value, error)

// Pred is the closure form of a boolean predicate: it computes the
// truthiness of the underlying expression. A nil Pred holds trivially,
// mirroring Holds on a nil Expr.
type Pred func(Env) (bool, error)

// Compile lowers e into its closure form. A nil expression compiles to a
// constant Null (the value Eval would never be asked for; kept total so
// callers need no nil check). Expression types outside this package's
// vocabulary fall back to their own Eval method.
func Compile(e Expr) Compiled {
	switch x := e.(type) {
	case nil:
		return constClosure(graph.Null)
	case Lit:
		return constClosure(x.Val)
	case Name:
		parts := x.Parts
		return func(env Env) (graph.Value, error) { return env.Resolve(parts) }
	case Binary:
		return compileBinary(x)
	default:
		return e.Eval
	}
}

// CompilePred compiles e as a boolean predicate; nil yields a nil Pred
// (trivially true), matching Holds.
func CompilePred(e Expr) Pred {
	if e == nil {
		return nil
	}
	c := Compile(e)
	return func(env Env) (bool, error) {
		v, err := c(env)
		if err != nil {
			return false, err
		}
		return v.Truthy(), nil
	}
}

// constClosure returns a closure yielding a fixed value.
func constClosure(v graph.Value) Compiled {
	return func(Env) (graph.Value, error) { return v, nil }
}

// constOf evaluates e at compile time when it is name-free and evaluates
// without error. Erroring constants (1/0) are not folded: the runtime
// error must be observable exactly where Eval would raise it.
func constOf(e Expr) (graph.Value, bool) {
	if e == nil || len(Names(e)) != 0 {
		return graph.Null, false
	}
	v, err := e.Eval(MapEnv{})
	if err != nil {
		return graph.Null, false
	}
	return v, true
}

// truthiness wraps a compiled operand as its boolean value — the result
// shape of AND/OR.
func truthiness(c Compiled) Compiled {
	return func(env Env) (graph.Value, error) {
		v, err := c(env)
		if err != nil {
			return graph.Null, err
		}
		return graph.Bool(v.Truthy()), nil
	}
}

func compileBinary(b Binary) Compiled {
	if v, ok := constOf(b); ok {
		return constClosure(v)
	}
	switch b.Op {
	case OpAnd:
		cr := Compile(b.R)
		if lv, ok := constOf(b.L); ok {
			if !lv.Truthy() {
				// Eval's short-circuit: the right side never runs, so its
				// names and errors are unobservable.
				return constClosure(graph.Bool(false))
			}
			return truthiness(cr)
		}
		cl := Compile(b.L)
		return func(env Env) (graph.Value, error) {
			l, err := cl(env)
			if err != nil {
				return graph.Null, err
			}
			if !l.Truthy() {
				return graph.Bool(false), nil
			}
			r, err := cr(env)
			if err != nil {
				return graph.Null, err
			}
			return graph.Bool(r.Truthy()), nil
		}
	case OpOr:
		cr := Compile(b.R)
		if lv, ok := constOf(b.L); ok {
			if lv.Truthy() {
				return constClosure(graph.Bool(true))
			}
			return truthiness(cr)
		}
		cl := Compile(b.L)
		return func(env Env) (graph.Value, error) {
			l, err := cl(env)
			if err != nil {
				return graph.Null, err
			}
			if l.Truthy() {
				return graph.Bool(true), nil
			}
			r, err := cr(env)
			if err != nil {
				return graph.Null, err
			}
			return graph.Bool(r.Truthy()), nil
		}
	case OpAdd, OpSub, OpMul, OpDiv:
		op := arithByte(b.Op)
		cl, cr := Compile(b.L), Compile(b.R)
		return func(env Env) (graph.Value, error) {
			l, err := cl(env)
			if err != nil {
				return graph.Null, err
			}
			r, err := cr(env)
			if err != nil {
				return graph.Null, err
			}
			return graph.Arith(op, l, r)
		}
	case OpEq:
		return compileCompare(b, func(c int) bool { return c == 0 }, false)
	case OpNe:
		return compileCompare(b, func(c int) bool { return c != 0 }, true)
	case OpGt:
		return compileCompare(b, func(c int) bool { return c > 0 }, false)
	case OpGe:
		return compileCompare(b, func(c int) bool { return c >= 0 }, false)
	case OpLt:
		return compileCompare(b, func(c int) bool { return c < 0 }, false)
	case OpLe:
		return compileCompare(b, func(c int) bool { return c <= 0 }, false)
	default:
		// Unknown operator: defer to Eval, which reports it as an error.
		return b.Eval
	}
}

func arithByte(op Op) byte {
	switch op {
	case OpAdd:
		return '+'
	case OpSub:
		return '-'
	case OpMul:
		return '*'
	default:
		return '/'
	}
}

// compileCompare builds a comparison closure. incomparable is the result
// when the two values do not compare (Eval's rule: != holds, every other
// comparison is false). A constant side is captured as a value so the
// common `name == literal` shape evaluates one operand per call.
func compileCompare(b Binary, rel func(int) bool, incomparable bool) Compiled {
	if rv, ok := constOf(b.R); ok {
		cl := Compile(b.L)
		return func(env Env) (graph.Value, error) {
			l, err := cl(env)
			if err != nil {
				return graph.Null, err
			}
			c, err := l.Compare(rv)
			if err != nil {
				return graph.Bool(incomparable), nil
			}
			return graph.Bool(rel(c)), nil
		}
	}
	if lv, ok := constOf(b.L); ok {
		cr := Compile(b.R)
		return func(env Env) (graph.Value, error) {
			r, err := cr(env)
			if err != nil {
				return graph.Null, err
			}
			c, err := lv.Compare(r)
			if err != nil {
				return graph.Bool(incomparable), nil
			}
			return graph.Bool(rel(c)), nil
		}
	}
	cl, cr := Compile(b.L), Compile(b.R)
	return func(env Env) (graph.Value, error) {
		l, err := cl(env)
		if err != nil {
			return graph.Null, err
		}
		r, err := cr(env)
		if err != nil {
			return graph.Null, err
		}
		c, err := l.Compare(r)
		if err != nil {
			return graph.Bool(incomparable), nil
		}
		return graph.Bool(rel(c)), nil
	}
}
