package parser

import (
	"strings"
	"testing"

	"gqldb/internal/ast"
)

func parseOneMutation(t *testing.T, src string) *ast.MutationStmt {
	t.Helper()
	prog, err := Parse(src)
	if err != nil {
		t.Fatalf("Parse(%q): %v", src, err)
	}
	if len(prog.Stmts) != 1 {
		t.Fatalf("Parse(%q): %d statements, want 1", src, len(prog.Stmts))
	}
	m, ok := prog.Stmts[0].(*ast.MutationStmt)
	if !ok {
		t.Fatalf("Parse(%q): statement is %T, want *ast.MutationStmt", src, prog.Stmts[0])
	}
	return m
}

func TestParseMutationForms(t *testing.T) {
	cases := []struct {
		src  string
		want ast.MutationStmt // Tuple/Members checked separately
	}{
		{`create graph g1 in doc("db");`,
			ast.MutationStmt{Kind: ast.MutCreateGraph, Graph: "g1", Doc: "db"}},
		{`create graph g2 <person age=30> { node a <author name="Jo">; node b; edge e (a, b) <cites>; } in doc("db");`,
			ast.MutationStmt{Kind: ast.MutCreateGraph, Graph: "g2", Doc: "db"}},
		{`drop graph g1 in doc("db");`,
			ast.MutationStmt{Kind: ast.MutDropGraph, Graph: "g1", Doc: "db"}},
		{`insert node n7 <author name="Kim"> into g1 in doc("db");`,
			ast.MutationStmt{Kind: ast.MutInsertNode, Graph: "g1", Name: "n7", Doc: "db"}},
		{`insert edge e3 (a, b) <cites year=2008> into g1 in doc("db");`,
			ast.MutationStmt{Kind: ast.MutInsertEdge, Graph: "g1", Name: "e3", From: "a", To: "b", Doc: "db"}},
		{`delete node n7 from g1 in doc("db");`,
			ast.MutationStmt{Kind: ast.MutDeleteNode, Graph: "g1", Name: "n7", Doc: "db"}},
		{`delete edge e3 from g1 in doc("db");`,
			ast.MutationStmt{Kind: ast.MutDeleteEdge, Graph: "g1", Name: "e3", Doc: "db"}},
	}
	for _, tc := range cases {
		m := parseOneMutation(t, tc.src)
		if m.Kind != tc.want.Kind || m.Graph != tc.want.Graph || m.Name != tc.want.Name ||
			m.From != tc.want.From || m.To != tc.want.To || m.Doc != tc.want.Doc {
			t.Errorf("Parse(%q) = %+v, want %+v", tc.src, *m, tc.want)
		}
	}
}

func TestParseMutationBodies(t *testing.T) {
	m := parseOneMutation(t, `create graph g <paper venue="sigmod"> { node a <author name="Jo">; edge e (a, a); } in doc("db");`)
	if m.Tuple == nil || m.Tuple.Tag != "paper" || len(m.Tuple.Attrs) != 1 {
		t.Fatalf("graph tuple = %+v", m.Tuple)
	}
	if len(m.Members) != 2 {
		t.Fatalf("members = %d, want 2", len(m.Members))
	}
	n, ok := m.Members[0].(*ast.NodeDecl)
	if !ok || n.Name != "a" || n.Tuple == nil || n.Tuple.Tag != "author" {
		t.Fatalf("member 0 = %#v", m.Members[0])
	}
	e, ok := m.Members[1].(*ast.EdgeDecl)
	if !ok || e.Name != "e" || len(e.From) != 1 || e.From[0] != "a" {
		t.Fatalf("member 1 = %#v", m.Members[1])
	}
}

// The mutation keywords stay ordinary identifiers everywhere else: an
// assignment to a variable named create must not trip the mutation parser.
func TestMutationKeywordsAreContextual(t *testing.T) {
	prog, err := Parse(`create := graph {};`)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if _, ok := prog.Stmts[0].(*ast.AssignStmt); !ok {
		t.Fatalf("statement is %T, want *ast.AssignStmt", prog.Stmts[0])
	}
}

func TestParseMutationErrors(t *testing.T) {
	bad := []string{
		`create graph in doc("db");`,                                        // missing name
		`create g in doc("db");`,                                            // missing 'graph'
		`create graph g { node a where a.x = 1; } in doc("db");`,            // predicate in literal
		`create graph g { unify a, b; } in doc("db");`,                      // non-literal member
		`create graph g { edge e (a.b, c); } in doc("db");`,                 // dotted endpoint
		`create graph g;`,                                                   // missing doc ref
		`drop graph g in doc(db);`,                                          // doc name must be a string
		`insert node into g in doc("db");`,                                  // 'into' swallowed as name
		`insert edge e (a b) into g in doc("db");`,                          // missing comma
		`insert node n in doc("db");`,                                       // missing 'into g'
		`delete node n from in doc("db");`,                                  // missing graph name
		`delete graph g in doc("db");`,                                      // delete takes node/edge
		`insert node n <x=1 into g in doc("db");`,                           // unterminated tuple
		`create graph g <p> { node a; } | { node b; } in doc("db");`,        // no disjunction in literals
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q): expected error, got none", src)
		}
	}
}

// Render∘parse is idempotent: parsing a statement's String() yields a
// statement with the identical String(). This is the FuzzParseMutation
// invariant, pinned here on representative fixtures.
func TestMutationRenderRoundTrip(t *testing.T) {
	srcs := []string{
		`create graph g in doc("db");`,
		`create graph g <paper venue="sigmod", year=2008> { node a <author name="Jo\n">; node b; edge e (a, b) <cites w=(1 + 2)>; } in doc("d b");`,
		`drop graph g in doc("db");`,
		`insert node n <author name="Kim", score=1.5> into g in doc("db");`,
		`insert edge e (a, b) <cites year=-3> into g in doc("db");`,
		`delete node n from g in doc("db");`,
		`delete edge e from g in doc("db");`,
	}
	for _, src := range srcs {
		m := parseOneMutation(t, src)
		r1 := m.String()
		m2 := parseOneMutation(t, r1)
		if r2 := m2.String(); r1 != r2 {
			t.Errorf("round trip diverged:\n src: %s\n  r1: %s\n  r2: %s", src, r1, r2)
		}
	}
}

func TestIsMutationProgram(t *testing.T) {
	muts, err := Parse(`create graph g in doc("db"); insert node n into g in doc("db");`)
	if err != nil {
		t.Fatal(err)
	}
	if !ast.IsMutationProgram(muts) {
		t.Error("all-mutation program not detected")
	}
	mixed, err := Parse(`create graph g in doc("db"); for P in doc("db") return graph { node P.a; };`)
	if err != nil {
		t.Fatal(err)
	}
	if ast.IsMutationProgram(mixed) {
		t.Error("mixed program misdetected as mutation program")
	}
	if ast.IsMutationProgram(&ast.Program{}) {
		t.Error("empty program misdetected as mutation program")
	}
	if !strings.Contains(parseOneMutation(t, `drop graph g in doc("db");`).String(), `doc("db")`) {
		t.Error("renderer lost the doc target")
	}
}
