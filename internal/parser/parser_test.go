package parser

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"gqldb/internal/ast"
	"gqldb/internal/expr"
	"gqldb/internal/graph"
	"gqldb/internal/lexer"
)

func TestLexerBasics(t *testing.T) {
	toks, err := lexer.Tokenize(`graph G1 <a=1, b="x\n", c=2.5> { } // comment
	/* block */ where v1.name != "A" & y >= 2 := `)
	if err != nil {
		t.Fatal(err)
	}
	var kinds []lexer.Kind
	var texts []string
	for _, tk := range toks {
		kinds = append(kinds, tk.Kind)
		texts = append(texts, tk.Text)
	}
	joined := strings.Join(texts, " ")
	for _, want := range []string{"graph", "G1", "<", "a", "=", "1", "x\n", "2.5", "!=", ">=", ":="} {
		if !strings.Contains(joined, want) {
			t.Errorf("tokens missing %q: %v", want, texts)
		}
	}
	if kinds[len(kinds)-1] != lexer.EOF {
		t.Error("missing EOF token")
	}
}

func TestLexerErrors(t *testing.T) {
	bad := []string{`"unterminated`, `"bad \q escape"`, "@", `1.`, "\"new\nline\""}
	for _, s := range bad {
		if _, err := lexer.Tokenize(s); err == nil {
			t.Errorf("Tokenize(%q): want error", s)
		}
	}
}

func TestParseSimpleGraphFig43(t *testing.T) {
	src := `
	graph G1 {
		node v1, v2, v3;
		edge e1 (v1, v2);
		edge e2 (v2, v3);
		edge e3 (v3, v1);
	};`
	prog, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(prog.Stmts) != 1 {
		t.Fatalf("stmts = %d", len(prog.Stmts))
	}
	d := prog.Stmts[0].(*ast.GraphDecl)
	g, err := d.ToGraph()
	if err != nil {
		t.Fatal(err)
	}
	if g.Name != "G1" || g.NumNodes() != 3 || g.NumEdges() != 3 {
		t.Errorf("G1 shape = %s/%d/%d", g.Name, g.NumNodes(), g.NumEdges())
	}
}

func TestParseAttributedGraphFig47(t *testing.T) {
	src := `
	graph G <inproceedings> {
		node v1 <title="Title1", year=2006>;
		node v2 <author name="A">;
		node v3 <author name="B">;
	};`
	prog, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	g, err := prog.Stmts[0].(*ast.GraphDecl).ToGraph()
	if err != nil {
		t.Fatal(err)
	}
	if g.Attrs.Tag != "inproceedings" {
		t.Errorf("graph tag = %q", g.Attrs.Tag)
	}
	v1, _ := g.NodeByName("v1")
	if g.Node(v1).Attrs.GetOr("year").AsInt() != 2006 {
		t.Errorf("v1.year = %v", g.Node(v1).Attrs.GetOr("year"))
	}
	v2, _ := g.NodeByName("v2")
	if g.Node(v2).Attrs.Tag != "author" || g.Node(v2).Attrs.GetOr("name").AsString() != "A" {
		t.Errorf("v2 = %s", g.Node(v2).Attrs)
	}
}

func TestParsePatternFig48(t *testing.T) {
	for _, src := range []string{
		`graph P { node v1; node v2; } where v1.name="A" & v2.year>2000;`,
		`graph P { node v1 where name="A"; node v2 where year>2000; };`,
	} {
		prog, err := Parse(src)
		if err != nil {
			t.Fatalf("%s: %v", src, err)
		}
		p, err := prog.Stmts[0].(*ast.GraphDecl).ToPattern()
		if err != nil {
			t.Fatal(err)
		}
		if p.Size() != 2 {
			t.Errorf("pattern size = %d", p.Size())
		}
		v1, _ := p.Motif.NodeByName("v1")
		ok, err := p.NodeMatches(v1, graph.TupleOf("", "name", "A"))
		if err != nil || !ok {
			t.Errorf("v1 should match name=A: %v %v", ok, err)
		}
	}
}

func TestParseEdgePredicatesAndTags(t *testing.T) {
	src := `graph P {
		node v1 <author>;
		node v2 <author>;
		edge e1 (v1, v2) <coauth since=2000> where weight > 0.5;
	};`
	prog, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	d := prog.Stmts[0].(*ast.GraphDecl)
	e := d.Members[2].(*ast.EdgeDecl)
	if e.Name != "e1" || e.Tuple.Tag != "coauth" || e.Where == nil {
		t.Errorf("edge decl wrong: %+v", e)
	}
}

func TestParseDisjunctionAlternatives(t *testing.T) {
	src := `graph G4 {
		node v1, v2, v3;
		edge e1 (v1, v2);
	} | {
		node v1, v2, v3, v4;
		edge e1 (v1, v2);
	};`
	prog, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	d := prog.Stmts[0].(*ast.GraphDecl)
	if len(d.Alts) != 1 {
		t.Fatalf("alts = %d, want 1", len(d.Alts))
	}
	def, err := d.ToMotifDef()
	if err != nil {
		t.Fatal(err)
	}
	if len(def.Alts) != 2 {
		t.Errorf("motif alts = %d", len(def.Alts))
	}
}

func TestParseRecursivePathFig46(t *testing.T) {
	src := `
	graph Path {
		graph Path;
		node v1;
		edge e1 (v1, Path.v1);
		export Path.v2 as v2;
	} | {
		node v1, v2;
		edge e1 (v1, v2);
	};`
	prog, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	d := prog.Stmts[0].(*ast.GraphDecl)
	def, err := d.ToMotifDef()
	if err != nil {
		t.Fatal(err)
	}
	if def.Name != "Path" || len(def.Alts) != 2 {
		t.Fatalf("def = %s/%d alts", def.Name, len(def.Alts))
	}
	if len(def.Alts[0].Subs) != 1 || def.Alts[0].Subs[0].Motif != "Path" {
		t.Error("recursive sub missing")
	}
	if len(def.Alts[0].Exports) != 1 || def.Alts[0].Exports[0].As != "v2" {
		t.Error("export missing")
	}
}

func TestParseConcatenationWithAliases(t *testing.T) {
	src := `graph G2 {
		graph G1 as X;
		graph G1 as Y;
		edge e4 (X.v1, Y.v1);
		unify X.v3, Y.v2;
	};`
	prog, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	d := prog.Stmts[0].(*ast.GraphDecl)
	def, err := d.ToMotifDef()
	if err != nil {
		t.Fatal(err)
	}
	if len(def.Alts[0].Subs) != 2 || def.Alts[0].Subs[1].As != "Y" {
		t.Error("aliased subs wrong")
	}
	if len(def.Alts[0].Unifies) != 1 || def.Alts[0].Unifies[0].A != "X.v3" {
		t.Error("unify wrong")
	}
}

func TestParseFLWRFig412(t *testing.T) {
	src := `
	graph P {
		node v1 <author>;
		node v2 <author>;
	} where P.booktitle="SIGMOD";
	C := graph {};
	for P exhaustive in doc("DBLP") let C := graph {
		graph C;
		node P.v1, P.v2;
		edge e1 (P.v1, P.v2);
		unify P.v1, C.v1 where P.v1.name=C.v1.name;
		unify P.v2, C.v2 where P.v2.name=C.v2.name;
	};`
	prog, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(prog.Stmts) != 3 {
		t.Fatalf("stmts = %d, want 3", len(prog.Stmts))
	}
	if _, ok := prog.Stmts[0].(*ast.GraphDecl); !ok {
		t.Error("stmt 0 should be a pattern declaration")
	}
	as, ok := prog.Stmts[1].(*ast.AssignStmt)
	if !ok || as.Name != "C" {
		t.Error("stmt 1 should assign C")
	}
	f, ok := prog.Stmts[2].(*ast.FLWRStmt)
	if !ok {
		t.Fatal("stmt 2 should be FLWR")
	}
	if f.PatternName != "P" || !f.Exhaustive || f.Doc != "DBLP" || f.LetName != "C" {
		t.Errorf("FLWR fields wrong: %+v", f)
	}
	tmpl, err := f.Let.ToTemplate()
	if err != nil {
		t.Fatal(err)
	}
	if len(tmpl.Members) != 6 { // graph C, two nodes, edge, two unifies
		t.Errorf("template members = %d, want 6", len(tmpl.Members))
	}
}

func TestParseFLWRReturn(t *testing.T) {
	src := `for graph Q { node v1 where label="A"; } in doc("db")
		where Q.v1.weight > 3
		return graph R { node u <label=Q.v1.label>; };`
	prog, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	f := prog.Stmts[0].(*ast.FLWRStmt)
	if f.Pattern == nil || f.Exhaustive || f.Return == nil || f.Where == nil {
		t.Errorf("FLWR fields wrong: %+v", f)
	}
}

func TestParseExprPrecedence(t *testing.T) {
	e, err := ParseExpr(`a.x = 1 & b.y > 2 | c.z < 3`)
	if err != nil {
		t.Fatal(err)
	}
	top, ok := e.(expr.Binary)
	if !ok || top.Op != expr.OpOr {
		t.Fatalf("top = %s, want |", e)
	}
	l := top.L.(expr.Binary)
	if l.Op != expr.OpAnd {
		t.Errorf("left of | = %s, want &", top.L)
	}
	// Arithmetic precedence.
	e, _ = ParseExpr(`a.x + 2 * 3 == 7`)
	if got := e.String(); got != "((a.x + (2 * 3)) == 7)" {
		t.Errorf("precedence = %s", got)
	}
	// Parentheses.
	e, _ = ParseExpr(`(a.x + 2) * 3 == 7`)
	if got := e.String(); got != "(((a.x + 2) * 3) == 7)" {
		t.Errorf("parens = %s", got)
	}
	// Unary minus folds into a negative literal.
	e, _ = ParseExpr(`x > -5`)
	if got := e.String(); got != "(x > -5)" {
		t.Errorf("unary minus = %s", got)
	}
	// Unary minus on a name stays an expression.
	e, _ = ParseExpr(`-y.v < 3`)
	if got := e.String(); got != "((0 - y.v) < 3)" {
		t.Errorf("unary minus on name = %s", got)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		`graph {`,                    // unterminated body
		`graph G { node v1 }`,        // missing ; after member
		`graph G { edge e (v1) ; };`, // edge with one endpoint
		`for in doc("x") return C;`,  // missing pattern
		`for P in doc() return C;`,   // missing doc string
		`for P in doc("x");`,         // missing return/let
		`x := ;`,                     // missing template
		`graph G { unify a; };`,      // unify with one name
		`graph G {} where (1 + ;`,    // bad expression
		`bogus;`,                     // unknown statement
	}
	for _, s := range bad {
		if _, err := Parse(s); err == nil {
			t.Errorf("Parse(%q): want error", s)
		}
	}
}

func TestGraphStringRoundtrip(t *testing.T) {
	g := graph.New("G")
	a := g.AddNode("v1", graph.TupleOf("author", "name", "A"))
	b := g.AddNode("v2", graph.TupleOf("", "year", 2006))
	g.AddEdge("e1", a, b, graph.TupleOf("", "w", 1.5))
	src := g.String() + ";"
	prog, err := Parse(src)
	if err != nil {
		t.Fatalf("roundtrip parse failed: %v\n%s", err, src)
	}
	g2, err := prog.Stmts[0].(*ast.GraphDecl).ToGraph()
	if err != nil {
		t.Fatal(err)
	}
	if g2.Signature() != g.Signature() {
		t.Errorf("roundtrip changed graph:\n%s\nvs\n%s", g.Signature(), g2.Signature())
	}
}

// Property: random attributed graphs round-trip through the language text
// format (String -> Parse -> ToGraph) with identical signatures.
func TestGraphStringRoundtripProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := graph.New("R")
		n := 1 + rng.Intn(8)
		for i := 0; i < n; i++ {
			var attrs *graph.Tuple
			switch rng.Intn(4) {
			case 0:
				attrs = nil
			case 1:
				attrs = graph.TupleOf("", "label", string(rune('A'+rng.Intn(4))))
			case 2:
				attrs = graph.TupleOf("tagged", "x", rng.Intn(100), "f", rng.Float64())
			default:
				attrs = graph.TupleOf("", "s", "str with spaces", "neg", -rng.Intn(50))
			}
			g.AddNode("", attrs)
		}
		for i := rng.Intn(2 * n); i > 0; i-- {
			g.AddEdge("", graph.NodeID(rng.Intn(n)), graph.NodeID(rng.Intn(n)), nil)
		}
		prog, err := Parse(g.String() + ";")
		if err != nil {
			t.Logf("parse failed: %v\n%s", err, g)
			return false
		}
		g2, err := prog.Stmts[0].(*ast.GraphDecl).ToGraph()
		if err != nil {
			return false
		}
		return g2.Signature() == g.Signature()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
