package parser

import (
	"os"
	"path/filepath"
	"testing"
)

// FuzzParse asserts the parser's total-function contract: any input, valid
// or garbage, either parses or returns an error — it never panics. Seeds
// come from the real query corpus in examples/queries. CI runs this
// briefly (`make fuzz-smoke`, -fuzztime=10s); leave it running longer
// locally when touching lexer or parser.
func FuzzParse(f *testing.F) {
	seeds, err := filepath.Glob(filepath.Join("..", "..", "examples", "queries", "*.gql"))
	if err != nil {
		f.Fatal(err)
	}
	if len(seeds) == 0 {
		f.Log("no .gql seeds found; fuzzing from inline seeds only")
	}
	for _, path := range seeds {
		data, err := os.ReadFile(path)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(string(data))
	}
	f.Add("graph P { node v1 <author>; node v2; edge e1: v1-v2; } where v1.name != v2.name;")
	f.Add(`C := graph P { node v; } exhaustive in doc("D")`)
	f.Add("{ node a; } | { node b; }")
	f.Add("export P.v as out")
	f.Fuzz(func(t *testing.T, src string) {
		if len(src) > 1<<16 {
			t.Skip("oversized input")
		}
		prog, err := Parse(src)
		if err == nil && prog == nil {
			t.Error("Parse returned nil program and nil error")
		}
		// The standalone expression entry point shares the token stream
		// machinery; it must be panic-free on the same inputs.
		_, _ = ParseExpr(src)
	})
}
