package parser

import (
	"os"
	"path/filepath"
	"testing"

	"gqldb/internal/ast"
)

// FuzzParse asserts the parser's total-function contract: any input, valid
// or garbage, either parses or returns an error — it never panics. Seeds
// come from the real query corpus in examples/queries. CI runs this
// briefly (`make fuzz-smoke`, -fuzztime=10s); leave it running longer
// locally when touching lexer or parser.
func FuzzParse(f *testing.F) {
	seeds, err := filepath.Glob(filepath.Join("..", "..", "examples", "queries", "*.gql"))
	if err != nil {
		f.Fatal(err)
	}
	if len(seeds) == 0 {
		f.Log("no .gql seeds found; fuzzing from inline seeds only")
	}
	for _, path := range seeds {
		data, err := os.ReadFile(path)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(string(data))
	}
	f.Add("graph P { node v1 <author>; node v2; edge e1: v1-v2; } where v1.name != v2.name;")
	f.Add(`C := graph P { node v; } exhaustive in doc("D")`)
	f.Add("{ node a; } | { node b; }")
	f.Add("export P.v as out")
	f.Fuzz(func(t *testing.T, src string) {
		if len(src) > 1<<16 {
			t.Skip("oversized input")
		}
		prog, err := Parse(src)
		if err == nil && prog == nil {
			t.Error("Parse returned nil program and nil error")
		}
		// The standalone expression entry point shares the token stream
		// machinery; it must be panic-free on the same inputs.
		_, _ = ParseExpr(src)
	})
}

// FuzzParseMutation covers the mutation statement surface: no panics on
// any input, and for every successfully parsed mutation statement the
// parse/render round trip is idempotent — parsing a statement's String()
// succeeds and yields a statement with the identical String(). A rendering
// that fails to reparse, or drifts under reparsing, is a bug in either the
// grammar or the renderer.
func FuzzParseMutation(f *testing.F) {
	f.Add(`create graph g1 in doc("db");`)
	f.Add(`create graph g2 <person age=30> { node a <author name="Jo">; node b; edge e (a, b) <cites>; } in doc("db");`)
	f.Add(`drop graph g1 in doc("db");`)
	f.Add(`insert node n7 <author name="Kim", score=1.5> into g1 in doc("db");`)
	f.Add(`insert edge e3 (a, b) <cites year=2008> into g1 in doc("db");`)
	f.Add(`delete node n7 from g1 in doc("db");`)
	f.Add(`delete edge e3 from g1 in doc("db");`)
	f.Add(`insert node n <w=(1 + 2) * 3, neg=-4, f=0.25> into g in doc("d\n\"b");`)
	f.Add(`create := graph {};`)
	f.Add(`create graph g in doc("db"); delete node n from g in doc("db");`)
	f.Fuzz(func(t *testing.T, src string) {
		if len(src) > 1<<16 {
			t.Skip("oversized input")
		}
		prog, err := Parse(src)
		if err != nil || prog == nil {
			return
		}
		for _, s := range prog.Stmts {
			m, ok := s.(*ast.MutationStmt)
			if !ok {
				continue
			}
			r1 := m.String()
			prog2, err := Parse(r1)
			if err != nil {
				t.Fatalf("rendering does not reparse: %v\nsrc: %q\nrendered: %q", err, src, r1)
			}
			if len(prog2.Stmts) != 1 {
				t.Fatalf("rendering reparsed to %d statements\nrendered: %q", len(prog2.Stmts), r1)
			}
			m2, ok := prog2.Stmts[0].(*ast.MutationStmt)
			if !ok {
				t.Fatalf("rendering reparsed to %T\nrendered: %q", prog2.Stmts[0], r1)
			}
			if r2 := m2.String(); r1 != r2 {
				t.Fatalf("round trip diverged\nsrc: %q\n r1: %q\n r2: %q", src, r1, r2)
			}
		}
	})
}
