// Package parser implements a recursive-descent parser for the GraphQL
// query syntax of Appendix 4.A, with the chapter's worked extensions:
// `:=` assignment statements (Figure 4.12), body disjunction
// `{ ... } | { ... }` (Figure 4.5) and `export ... as ...` (Figure 4.6).
// Equality may be spelled `=` or `==` inside where clauses, as in the
// paper's examples.
package parser

import (
	"fmt"
	"strconv"
	"strings"

	"gqldb/internal/ast"
	"gqldb/internal/expr"
	"gqldb/internal/graph"
	"gqldb/internal/lexer"
)

// Parser consumes a token stream.
type Parser struct {
	toks []lexer.Token
	pos  int
}

// Parse parses a whole program.
func Parse(src string) (*ast.Program, error) {
	toks, err := lexer.Tokenize(src)
	if err != nil {
		return nil, err
	}
	p := &Parser{toks: toks}
	prog := &ast.Program{}
	for !p.atEOF() {
		s, err := p.stmt()
		if err != nil {
			return nil, err
		}
		prog.Stmts = append(prog.Stmts, s)
	}
	return prog, nil
}

// ParseExpr parses a standalone predicate expression (used by tests and by
// programmatic query construction).
func ParseExpr(src string) (expr.Expr, error) {
	toks, err := lexer.Tokenize(src)
	if err != nil {
		return nil, err
	}
	p := &Parser{toks: toks}
	e, err := p.expr()
	if err != nil {
		return nil, err
	}
	if !p.atEOF() {
		return nil, p.errf("unexpected %s after expression", p.cur())
	}
	return e, nil
}

func (p *Parser) cur() lexer.Token  { return p.toks[p.pos] }
func (p *Parser) peek() lexer.Token { return p.toks[min(p.pos+1, len(p.toks)-1)] }
func (p *Parser) atEOF() bool       { return p.cur().Kind == lexer.EOF }

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func (p *Parser) errf(format string, args ...any) error {
	t := p.cur()
	return fmt.Errorf("parser: line %d col %d: %s", t.Line, t.Col, fmt.Sprintf(format, args...))
}

func (p *Parser) isPunct(s string) bool {
	t := p.cur()
	return t.Kind == lexer.Punct && t.Text == s
}

func (p *Parser) isKw(s string) bool {
	t := p.cur()
	return t.Kind == lexer.Ident && t.Text == s
}

func (p *Parser) eatPunct(s string) bool {
	if p.isPunct(s) {
		p.pos++
		return true
	}
	return false
}

func (p *Parser) eatKw(s string) bool {
	if p.isKw(s) {
		p.pos++
		return true
	}
	return false
}

func (p *Parser) expectPunct(s string) error {
	if !p.eatPunct(s) {
		return p.errf("expected %q, found %s", s, p.cur())
	}
	return nil
}

func (p *Parser) expectIdent() (string, error) {
	t := p.cur()
	if t.Kind != lexer.Ident {
		return "", p.errf("expected identifier, found %s", t)
	}
	p.pos++
	return t.Text, nil
}

// stmt ::= GraphDecl ";" | FLWR ";" | Assign ";"
func (p *Parser) stmt() (ast.Stmt, error) {
	switch {
	case p.isKw("graph"):
		d, err := p.graphDecl()
		if err != nil {
			return nil, err
		}
		if err := p.expectPunct(";"); err != nil {
			return nil, err
		}
		return d, nil
	case p.isKw("for"):
		f, err := p.flwr()
		if err != nil {
			return nil, err
		}
		if err := p.expectPunct(";"); err != nil {
			return nil, err
		}
		return f, nil
	case p.cur().Kind == lexer.Ident && p.peek().Kind == lexer.Punct && p.peek().Text == ":=":
		name, _ := p.expectIdent()
		p.pos++ // :=
		t, err := p.template()
		if err != nil {
			return nil, err
		}
		if err := p.expectPunct(";"); err != nil {
			return nil, err
		}
		return &ast.AssignStmt{Name: name, Tmpl: t}, nil
	// Mutation keywords are checked after the ":=" case so that
	// `create := graph {};` stays an assignment to a variable named create.
	case p.isKw("create"), p.isKw("drop"), p.isKw("insert"), p.isKw("delete"):
		m, err := p.mutation()
		if err != nil {
			return nil, err
		}
		if err := p.expectPunct(";"); err != nil {
			return nil, err
		}
		return m, nil
	}
	return nil, p.errf("expected statement, found %s", p.cur())
}

// mutation ::= "create" "graph" ID [Tuple] [MemberBlock] DocRef
//
//	| "drop" "graph" ID DocRef
//	| "insert" "node" ID [Tuple] "into" ID DocRef
//	| "insert" "edge" ID "(" ID "," ID ")" [Tuple] "into" ID DocRef
//	| "delete" ("node"|"edge") ID "from" ID DocRef
//
// DocRef ::= "in" "doc" "(" Str ")"
func (p *Parser) mutation() (*ast.MutationStmt, error) {
	m := &ast.MutationStmt{}
	switch {
	case p.eatKw("create"), p.eatKw("drop"):
		drop := p.toks[p.pos-1].Text == "drop"
		if !p.eatKw("graph") {
			return nil, p.errf("expected 'graph' after '%s'", p.toks[p.pos-1].Text)
		}
		name, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		m.Graph = name
		if drop {
			m.Kind = ast.MutDropGraph
			break
		}
		m.Kind = ast.MutCreateGraph
		if p.isPunct("<") {
			t, err := p.tuple()
			if err != nil {
				return nil, err
			}
			m.Tuple = t
		}
		if p.isPunct("{") {
			members, err := p.memberBlock()
			if err != nil {
				return nil, err
			}
			if err := p.checkLiteralMembers(m.Graph, members); err != nil {
				return nil, err
			}
			m.Members = members
		}
	case p.eatKw("insert"):
		switch {
		case p.eatKw("node"):
			m.Kind = ast.MutInsertNode
			name, err := p.expectIdent()
			if err != nil {
				return nil, err
			}
			m.Name = name
			if p.isPunct("<") {
				t, err := p.tuple()
				if err != nil {
					return nil, err
				}
				m.Tuple = t
			}
		case p.eatKw("edge"):
			m.Kind = ast.MutInsertEdge
			name, err := p.expectIdent()
			if err != nil {
				return nil, err
			}
			m.Name = name
			if err := p.expectPunct("("); err != nil {
				return nil, err
			}
			if m.From, err = p.expectIdent(); err != nil {
				return nil, err
			}
			if err := p.expectPunct(","); err != nil {
				return nil, err
			}
			if m.To, err = p.expectIdent(); err != nil {
				return nil, err
			}
			if err := p.expectPunct(")"); err != nil {
				return nil, err
			}
			if p.isPunct("<") {
				t, err := p.tuple()
				if err != nil {
					return nil, err
				}
				m.Tuple = t
			}
		default:
			return nil, p.errf("expected 'node' or 'edge' after 'insert', found %s", p.cur())
		}
		if !p.eatKw("into") {
			return nil, p.errf("expected 'into', found %s", p.cur())
		}
		name, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		m.Graph = name
	case p.eatKw("delete"):
		switch {
		case p.eatKw("node"):
			m.Kind = ast.MutDeleteNode
		case p.eatKw("edge"):
			m.Kind = ast.MutDeleteEdge
		default:
			return nil, p.errf("expected 'node' or 'edge' after 'delete', found %s", p.cur())
		}
		name, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		m.Name = name
		if !p.eatKw("from") {
			return nil, p.errf("expected 'from', found %s", p.cur())
		}
		if m.Graph, err = p.expectIdent(); err != nil {
			return nil, err
		}
	}
	doc, err := p.docRef()
	if err != nil {
		return nil, err
	}
	m.Doc = doc
	return m, nil
}

// docRef ::= "in" "doc" "(" Str ")" — the document target shared by every
// mutation form (the same doc("...") spelling the for clause uses).
func (p *Parser) docRef() (string, error) {
	if !p.eatKw("in") {
		return "", p.errf("expected 'in', found %s", p.cur())
	}
	if !p.eatKw("doc") {
		return "", p.errf("expected 'doc', found %s", p.cur())
	}
	if err := p.expectPunct("("); err != nil {
		return "", err
	}
	if p.cur().Kind != lexer.Str {
		return "", p.errf("expected string literal in doc(...)")
	}
	name := p.cur().Text
	p.pos++
	return name, p.expectPunct(")")
}

// checkLiteralMembers restricts a create-graph body to what a graph
// literal can hold: plain node and edge declarations with local (undotted)
// names and no where clauses. Data carries no predicates or composition.
func (p *Parser) checkLiteralMembers(graphName string, members []ast.Member) error {
	for _, m := range members {
		switch x := m.(type) {
		case *ast.NodeDecl:
			if x.Where != nil {
				return p.errf("create graph %s: literal node cannot have a where clause", graphName)
			}
			if strings.Contains(x.Name, ".") {
				return p.errf("create graph %s: literal node name cannot be dotted", graphName)
			}
		case *ast.EdgeDecl:
			if x.Where != nil {
				return p.errf("create graph %s: literal edge cannot have a where clause", graphName)
			}
			if len(x.From) != 1 || len(x.To) != 1 {
				return p.errf("create graph %s: literal edge endpoints must be local node names", graphName)
			}
		default:
			return p.errf("create graph %s: body must contain only node and edge declarations", graphName)
		}
	}
	return nil
}

// graphDecl ::= "graph" [ID] [Tuple] "{" Member* "}" ("|" "{" Member* "}")* ["where" Expr]
func (p *Parser) graphDecl() (*ast.GraphDecl, error) {
	if !p.eatKw("graph") {
		return nil, p.errf("expected 'graph'")
	}
	d := &ast.GraphDecl{}
	if p.cur().Kind == lexer.Ident {
		d.Name = p.cur().Text
		p.pos++
	}
	if p.isPunct("<") {
		t, err := p.tuple()
		if err != nil {
			return nil, err
		}
		d.Tuple = t
	}
	members, err := p.memberBlock()
	if err != nil {
		return nil, err
	}
	d.Members = members
	for p.isPunct("|") {
		p.pos++
		alt, err := p.memberBlock()
		if err != nil {
			return nil, err
		}
		d.Alts = append(d.Alts, alt)
	}
	if p.eatKw("where") {
		e, err := p.expr()
		if err != nil {
			return nil, err
		}
		d.Where = e
	}
	return d, nil
}

// memberBlock ::= "{" Member* "}"
func (p *Parser) memberBlock() ([]ast.Member, error) {
	if err := p.expectPunct("{"); err != nil {
		return nil, err
	}
	var out []ast.Member
	for !p.isPunct("}") {
		ms, err := p.member()
		if err != nil {
			return nil, err
		}
		out = append(out, ms...)
	}
	p.pos++ // }
	return out, nil
}

// member parses one declaration, which may introduce several members
// (comma-separated node/edge lists). Anonymous nested blocks with
// disjunction ({...} | {...}, Figure 4.5) are flattened by the caller via
// graphDecl-level Alts; inside a body they are not supported.
func (p *Parser) member() ([]ast.Member, error) {
	switch {
	case p.eatKw("node"):
		var out []ast.Member
		for {
			n, err := p.nodeDecl()
			if err != nil {
				return nil, err
			}
			out = append(out, n)
			if !p.eatPunct(",") {
				break
			}
		}
		return out, p.expectPunct(";")
	case p.eatKw("edge"):
		var out []ast.Member
		for {
			e, err := p.edgeDecl()
			if err != nil {
				return nil, err
			}
			out = append(out, e)
			if !p.eatPunct(",") {
				break
			}
		}
		return out, p.expectPunct(";")
	case p.eatKw("graph"):
		var out []ast.Member
		for {
			name, err := p.expectIdent()
			if err != nil {
				return nil, err
			}
			ref := &ast.GraphRef{Name: name}
			if p.eatKw("as") {
				alias, err := p.expectIdent()
				if err != nil {
					return nil, err
				}
				ref.As = alias
			}
			out = append(out, ref)
			if !p.eatPunct(",") {
				break
			}
		}
		return out, p.expectPunct(";")
	case p.eatKw("unify"):
		u := &ast.UnifyDecl{}
		for {
			n, err := p.names()
			if err != nil {
				return nil, err
			}
			u.Names = append(u.Names, n)
			if !p.eatPunct(",") {
				break
			}
		}
		if len(u.Names) < 2 {
			return nil, p.errf("unify needs at least two names")
		}
		if p.eatKw("where") {
			e, err := p.expr()
			if err != nil {
				return nil, err
			}
			u.Where = e
		}
		return []ast.Member{u}, p.expectPunct(";")
	case p.eatKw("export"):
		ref, err := p.names()
		if err != nil {
			return nil, err
		}
		if !p.eatKw("as") {
			return nil, p.errf("expected 'as' in export")
		}
		alias, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		return []ast.Member{&ast.ExportDecl{Ref: ref, As: alias}}, p.expectPunct(";")
	}
	return nil, p.errf("expected member declaration, found %s", p.cur())
}

// nodeDecl ::= [Names][Tuple]["where" Expr] — the name may be dotted in
// template context (node P.v1).
func (p *Parser) nodeDecl() (*ast.NodeDecl, error) {
	n := &ast.NodeDecl{}
	if p.cur().Kind == lexer.Ident && !p.isKw("where") {
		parts, err := p.names()
		if err != nil {
			return nil, err
		}
		n.Name = joinDotted(parts)
	}
	if p.isPunct("<") {
		t, err := p.tuple()
		if err != nil {
			return nil, err
		}
		n.Tuple = t
	}
	if p.eatKw("where") {
		e, err := p.expr()
		if err != nil {
			return nil, err
		}
		n.Where = e
	}
	return n, nil
}

func joinDotted(parts []string) string {
	s := parts[0]
	for _, x := range parts[1:] {
		s += "." + x
	}
	return s
}

// edgeDecl ::= [ID] "(" Names "," Names ")" [Tuple] ["where" Expr]
func (p *Parser) edgeDecl() (*ast.EdgeDecl, error) {
	e := &ast.EdgeDecl{}
	if p.cur().Kind == lexer.Ident {
		e.Name = p.cur().Text
		p.pos++
	}
	if err := p.expectPunct("("); err != nil {
		return nil, err
	}
	from, err := p.names()
	if err != nil {
		return nil, err
	}
	if err := p.expectPunct(","); err != nil {
		return nil, err
	}
	to, err := p.names()
	if err != nil {
		return nil, err
	}
	if err := p.expectPunct(")"); err != nil {
		return nil, err
	}
	e.From, e.To = from, to
	if p.isPunct("<") {
		t, err := p.tuple()
		if err != nil {
			return nil, err
		}
		e.Tuple = t
	}
	if p.eatKw("where") {
		ex, err := p.expr()
		if err != nil {
			return nil, err
		}
		e.Where = ex
	}
	return e, nil
}

// tuple ::= "<" [tag] (ID "=" Expr)* ">" — the leading identifier is a tag
// when it is not followed by "=".
func (p *Parser) tuple() (*ast.TupleDecl, error) {
	if err := p.expectPunct("<"); err != nil {
		return nil, err
	}
	t := &ast.TupleDecl{}
	if p.cur().Kind == lexer.Ident && !(p.peek().Kind == lexer.Punct && p.peek().Text == "=") {
		t.Tag = p.cur().Text
		p.pos++
	}
	first := true
	for !p.isPunct(">") {
		if !first {
			p.eatPunct(",") // commas between attributes are optional
		}
		first = false
		name, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		if err := p.expectPunct("="); err != nil {
			return nil, err
		}
		e, err := p.additive() // no comparisons inside tuples: '>' closes
		if err != nil {
			return nil, err
		}
		t.Attrs = append(t.Attrs, ast.AttrDecl{Name: name, E: e})
	}
	p.pos++ // >
	return t, nil
}

// flwr ::= "for" (ID | GraphDecl) ["exhaustive"] "in" "doc" "(" Str ")"
//
//	["where" Expr] ("return" Template | "let" ID (":="|"=") Template)
func (p *Parser) flwr() (*ast.FLWRStmt, error) {
	if !p.eatKw("for") {
		return nil, p.errf("expected 'for'")
	}
	f := &ast.FLWRStmt{}
	if p.isKw("graph") {
		d, err := p.graphDecl()
		if err != nil {
			return nil, err
		}
		f.Pattern = d
	} else {
		name, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		f.PatternName = name
	}
	if p.eatKw("exhaustive") {
		f.Exhaustive = true
	}
	if !p.eatKw("in") {
		return nil, p.errf("expected 'in'")
	}
	if !p.eatKw("doc") {
		return nil, p.errf("expected 'doc'")
	}
	if err := p.expectPunct("("); err != nil {
		return nil, err
	}
	if p.cur().Kind != lexer.Str {
		return nil, p.errf("expected string literal in doc(...)")
	}
	f.Doc = p.cur().Text
	p.pos++
	if err := p.expectPunct(")"); err != nil {
		return nil, err
	}
	if p.eatKw("where") {
		e, err := p.expr()
		if err != nil {
			return nil, err
		}
		f.Where = e
	}
	switch {
	case p.eatKw("return"):
		t, err := p.template()
		if err != nil {
			return nil, err
		}
		f.Return = t
	case p.eatKw("let"):
		name, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		if !p.eatPunct(":=") && !p.eatPunct("=") {
			return nil, p.errf("expected ':=' in let")
		}
		t, err := p.template()
		if err != nil {
			return nil, err
		}
		f.LetName, f.Let = name, t
	default:
		return nil, p.errf("expected 'return' or 'let', found %s", p.cur())
	}
	return f, nil
}

// template ::= "graph" [ID] [Tuple] "{" Member* "}" | ID
func (p *Parser) template() (*ast.TemplateDecl, error) {
	if !p.isKw("graph") {
		name, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		return &ast.TemplateDecl{Ref: name}, nil
	}
	p.pos++ // graph
	t := &ast.TemplateDecl{}
	if p.cur().Kind == lexer.Ident {
		t.Name = p.cur().Text
		p.pos++
	}
	if p.isPunct("<") {
		tu, err := p.tuple()
		if err != nil {
			return nil, err
		}
		t.Tuple = tu
	}
	members, err := p.memberBlock()
	if err != nil {
		return nil, err
	}
	t.Members = members
	return t, nil
}

// names ::= ID ("." ID)*
func (p *Parser) names() ([]string, error) {
	first, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	parts := []string{first}
	for p.isPunct(".") {
		p.pos++
		next, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		parts = append(parts, next)
	}
	return parts, nil
}

// Expression grammar with standard precedence:
//
//	expr   ::= andE ("|" andE)*
//	andE   ::= cmpE ("&" cmpE)*
//	cmpE   ::= additive (("=="|"="|"!="|">"|">="|"<"|"<=") additive)?
//	additive ::= mulE (("+"|"-") mulE)*
//	mulE   ::= term (("*"|"/") term)*
//	term   ::= "(" expr ")" | literal | names
func (p *Parser) expr() (expr.Expr, error) {
	l, err := p.andE()
	if err != nil {
		return nil, err
	}
	for p.isPunct("|") {
		p.pos++
		r, err := p.andE()
		if err != nil {
			return nil, err
		}
		l = expr.Binary{Op: expr.OpOr, L: l, R: r}
	}
	return l, nil
}

func (p *Parser) andE() (expr.Expr, error) {
	l, err := p.cmpE()
	if err != nil {
		return nil, err
	}
	for p.isPunct("&") || p.isKw("and") {
		p.pos++
		r, err := p.cmpE()
		if err != nil {
			return nil, err
		}
		l = expr.Binary{Op: expr.OpAnd, L: l, R: r}
	}
	return l, nil
}

var cmpOps = map[string]expr.Op{
	"==": expr.OpEq, "=": expr.OpEq, "!=": expr.OpNe,
	">": expr.OpGt, ">=": expr.OpGe, "<": expr.OpLt, "<=": expr.OpLe,
}

func (p *Parser) cmpE() (expr.Expr, error) {
	l, err := p.additive()
	if err != nil {
		return nil, err
	}
	if p.cur().Kind == lexer.Punct {
		if op, ok := cmpOps[p.cur().Text]; ok {
			p.pos++
			r, err := p.additive()
			if err != nil {
				return nil, err
			}
			return expr.Binary{Op: op, L: l, R: r}, nil
		}
	}
	return l, nil
}

func (p *Parser) additive() (expr.Expr, error) {
	l, err := p.mulE()
	if err != nil {
		return nil, err
	}
	for p.isPunct("+") || p.isPunct("-") {
		op := expr.OpAdd
		if p.cur().Text == "-" {
			op = expr.OpSub
		}
		p.pos++
		r, err := p.mulE()
		if err != nil {
			return nil, err
		}
		l = expr.Binary{Op: op, L: l, R: r}
	}
	return l, nil
}

func (p *Parser) mulE() (expr.Expr, error) {
	l, err := p.term()
	if err != nil {
		return nil, err
	}
	for p.isPunct("*") || p.isPunct("/") {
		op := expr.OpMul
		if p.cur().Text == "/" {
			op = expr.OpDiv
		}
		p.pos++
		r, err := p.term()
		if err != nil {
			return nil, err
		}
		l = expr.Binary{Op: op, L: l, R: r}
	}
	return l, nil
}

func (p *Parser) term() (expr.Expr, error) {
	t := p.cur()
	switch t.Kind {
	case lexer.Punct:
		if t.Text == "(" {
			p.pos++
			e, err := p.expr()
			if err != nil {
				return nil, err
			}
			return e, p.expectPunct(")")
		}
		if t.Text == "-" { // unary minus
			p.pos++
			inner, err := p.term()
			if err != nil {
				return nil, err
			}
			// Fold negative numeric literals so they stay literals (graph
			// declarations accept only literal attribute values).
			if lit, ok := inner.(expr.Lit); ok {
				switch lit.Val.Kind() {
				case graph.KindInt:
					return expr.Lit{Val: graph.Int(-lit.Val.AsInt())}, nil
				case graph.KindFloat:
					return expr.Lit{Val: graph.Float(-lit.Val.AsFloat())}, nil
				}
			}
			return expr.Binary{Op: expr.OpSub, L: expr.Lit{Val: graph.Int(0)}, R: inner}, nil
		}
	case lexer.Int:
		p.pos++
		i, err := strconv.ParseInt(t.Text, 10, 64)
		if err != nil {
			return nil, p.errf("bad integer %q", t.Text)
		}
		return expr.Lit{Val: graph.Int(i)}, nil
	case lexer.Float:
		p.pos++
		f, err := strconv.ParseFloat(t.Text, 64)
		if err != nil {
			return nil, p.errf("bad float %q", t.Text)
		}
		return expr.Lit{Val: graph.Float(f)}, nil
	case lexer.Str:
		p.pos++
		return expr.Lit{Val: graph.String(t.Text)}, nil
	case lexer.Ident:
		switch t.Text {
		case "true":
			p.pos++
			return expr.Lit{Val: graph.Bool(true)}, nil
		case "false":
			p.pos++
			return expr.Lit{Val: graph.Bool(false)}, nil
		}
		parts, err := p.names()
		if err != nil {
			return nil, err
		}
		return expr.Name{Parts: parts}, nil
	}
	return nil, p.errf("expected expression term, found %s", t)
}
