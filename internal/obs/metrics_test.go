package obs

import (
	"expvar"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestCounter(t *testing.T) {
	c := &Counter{name: "test_counter_total"}
	c.Inc()
	c.Add(4)
	c.Add(-7) // negative deltas are ignored, counters are monotone
	if got := c.Value(); got != 5 {
		t.Fatalf("Value = %d, want 5", got)
	}
	if c.Name() != "test_counter_total" {
		t.Fatalf("Name = %q", c.Name())
	}
}

func TestVec(t *testing.T) {
	v := &Vec{name: "test_vec_total", label: "worker"}
	v.Add(0, 3)
	v.Add(2, 1)
	v.Add(2, -5)           // negative deltas ignored
	v.Add(-4, 1)           // below the label space clamps to slot 0
	v.Add(vecSlots+100, 7) // beyond the label space clamps to the last slot
	if got := v.Value(0); got != 4 {
		t.Fatalf("Value(0) = %d, want 4", got)
	}
	if got := v.Value(2); got != 1 {
		t.Fatalf("Value(2) = %d, want 1", got)
	}
	if got := v.Value(vecSlots - 1); got != 7 {
		t.Fatalf("Value(last) = %d, want 7", got)
	}
	if got := v.Value(vecSlots + 100); got != 0 {
		t.Fatalf("Value out of range = %d, want 0", got)
	}
	var slots []int
	v.each(func(i int, _ int64) { slots = append(slots, i) })
	if fmt.Sprint(slots) != fmt.Sprintf("[0 2 %d]", vecSlots-1) {
		t.Fatalf("each visited %v", slots)
	}
}

func TestVecPrometheusAndSnapshot(t *testing.T) {
	PoolWorkerItems.Add(0, 5)
	PoolWorkerBusy.Add(0, int64(2*time.Second))
	var b strings.Builder
	if err := WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, frag := range []string{
		"# TYPE gqldb_pool_worker_items_total counter",
		`gqldb_pool_worker_items_total{worker="0"}`,
		`gqldb_pool_worker_busy_seconds_total{worker="0"}`,
	} {
		if !strings.Contains(out, frag) {
			t.Errorf("WritePrometheus missing %q in:\n%s", frag, out)
		}
	}
	snap := Snapshot()
	items, ok := snap["gqldb_pool_worker_items_total"].(map[string]any)
	if !ok {
		t.Fatalf("snapshot vec has type %T", snap["gqldb_pool_worker_items_total"])
	}
	if n, ok := items["0"].(int64); !ok || n < 5 {
		t.Fatalf("snapshot slot 0 = %v, want >= 5", items["0"])
	}
	busy, _ := snap["gqldb_pool_worker_busy_seconds_total"].(map[string]any)
	if s, ok := busy["0"].(float64); !ok || s < 2 {
		t.Fatalf("snapshot busy slot 0 = %v, want seconds >= 2", busy["0"])
	}
}

func TestHistogramObserve(t *testing.T) {
	h := &Histogram{name: "test_seconds", bounds: defBuckets,
		buckets: make([]atomic.Int64, len(defBuckets)+1)}

	h.Observe(50 * time.Microsecond) // below first bound (100µs) -> bucket 0
	h.Observe(3 * time.Millisecond)  // first bound >= 3ms is 5ms -> bucket 5
	h.Observe(time.Hour)             // beyond all bounds -> overflow bucket
	if got := h.Count(); got != 3 {
		t.Fatalf("Count = %d, want 3", got)
	}
	wantSum := 50*time.Microsecond + 3*time.Millisecond + time.Hour
	if got := h.Sum(); got != wantSum {
		t.Fatalf("Sum = %v, want %v", got, wantSum)
	}
	if n := h.buckets[0].Load(); n != 1 {
		t.Fatalf("bucket[0] = %d, want 1", n)
	}
	if n := h.buckets[5].Load(); n != 1 {
		t.Fatalf("bucket[5] (5ms) = %d, want 1", n)
	}
	if n := h.buckets[len(defBuckets)].Load(); n != 1 {
		t.Fatalf("overflow bucket = %d, want 1", n)
	}
}

func TestWritePrometheusFormat(t *testing.T) {
	QuerySeconds.Observe(time.Millisecond)
	Queries.Inc()
	var b strings.Builder
	if err := WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, frag := range []string{
		"# TYPE gqldb_queries_total counter",
		"# HELP gqldb_query_seconds",
		"# TYPE gqldb_query_seconds histogram",
		`gqldb_query_seconds_bucket{le="0.001"}`,
		`gqldb_query_seconds_bucket{le="+Inf"}`,
		"gqldb_query_seconds_sum",
		"gqldb_query_seconds_count",
	} {
		if !strings.Contains(out, frag) {
			t.Errorf("WritePrometheus missing %q in:\n%s", frag, out)
		}
	}
	// Buckets must be cumulative: +Inf equals the total count.
	var infLine string
	for _, l := range strings.Split(out, "\n") {
		if strings.HasPrefix(l, `gqldb_query_seconds_bucket{le="+Inf"}`) {
			infLine = l
		}
	}
	wantTail := fmt.Sprintf(" %d", QuerySeconds.Count())
	if !strings.HasSuffix(infLine, wantTail) {
		t.Fatalf("+Inf bucket %q does not equal count %d", infLine, QuerySeconds.Count())
	}
}

func TestSnapshotAndExpvar(t *testing.T) {
	Queries.Inc()
	snap := Snapshot()
	n, ok := snap["gqldb_queries_total"].(int64)
	if !ok || n < 1 {
		t.Fatalf("snapshot gqldb_queries_total = %v (%T), want >= 1", snap["gqldb_queries_total"], snap["gqldb_queries_total"])
	}
	hist, ok := snap["gqldb_query_seconds"].(map[string]any)
	if !ok {
		t.Fatalf("snapshot histogram has type %T", snap["gqldb_query_seconds"])
	}
	if _, ok := hist["count"]; !ok {
		t.Fatal("histogram snapshot missing count")
	}
	if v := expvar.Get("gqldb"); v == nil {
		t.Fatal("expvar var gqldb not published")
	} else if !strings.Contains(v.String(), "gqldb_queries_total") {
		t.Fatalf("expvar dump missing counter: %s", v.String())
	}
}

func TestMetricsConcurrency(t *testing.T) {
	var wg sync.WaitGroup
	before := Matches.Value()
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				Matches.Inc()
				SelectionSeconds.Observe(time.Microsecond)
			}
		}()
	}
	wg.Wait()
	if got := Matches.Value() - before; got != 8000 {
		t.Fatalf("Matches delta = %d, want 8000", got)
	}
}
