// Process-wide metrics: a fixed registry of counters and fixed-bucket
// latency histograms covering the query pipeline (queries, matches, gindex
// pruning, pool fan-out, errors, slow queries). Counters are single atomic
// adds and are always on; the instrumented call sites fire once per
// operator or query, never per work item, so the steady-state cost is
// negligible next to evaluation work.
//
// The registry is exposed two ways: expvar (one "gqldb" var holding a
// snapshot map, for the standard /debug/vars endpoint) and WritePrometheus
// (the text exposition format, for scraping or dumping from tools).
package obs

import (
	"expvar"
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing metric.
type Counter struct {
	name string
	help string
	v    atomic.Int64
}

// Add increments the counter by n (negative n is ignored: counters only go
// up).
func (c *Counter) Add(n int64) {
	if n > 0 {
		c.v.Add(n)
	}
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Name returns the metric name.
func (c *Counter) Name() string { return c.name }

// defBuckets are the fixed histogram upper bounds in seconds: sub-100µs
// index probes through multi-second analytical queries.
var defBuckets = []float64{
	0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005,
	0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// Histogram is a fixed-bucket latency histogram. Observations are counted
// into the first bucket whose upper bound is >= the value, plus a +Inf
// overflow bucket, with a running count and sum — the Prometheus histogram
// shape.
type Histogram struct {
	name    string
	help    string
	bounds  []float64 // upper bounds in seconds, ascending
	buckets []atomic.Int64
	count   atomic.Int64
	sumNs   atomic.Int64
}

// Observe records one latency sample.
func (h *Histogram) Observe(d time.Duration) {
	sec := d.Seconds()
	i := 0
	for i < len(h.bounds) && sec > h.bounds[i] {
		i++
	}
	h.buckets[i].Add(1)
	h.count.Add(1)
	h.sumNs.Add(int64(d))
}

// vecSlots is the fixed label space of a Vec: worker ordinals 0..vecSlots-1,
// with the last slot absorbing any higher ordinal so unbounded worker counts
// cannot grow the registry.
const vecSlots = 64

// Vec is a counter vector over a small fixed integer label space (worker
// ordinals). Every slot is an independent atomic counter; Add clamps the
// index into range, so callers never bounds-check. A Vec whose seconds flag
// is set stores nanoseconds and is exposed in seconds.
type Vec struct {
	name    string
	help    string
	label   string
	seconds bool
	slots   [vecSlots]atomic.Int64
}

// Add increments slot i by n (negative n ignored; i clamped to the label
// space).
func (v *Vec) Add(i int, n int64) {
	if n <= 0 {
		return
	}
	if i < 0 {
		i = 0
	}
	if i >= vecSlots {
		i = vecSlots - 1
	}
	v.slots[i].Add(n)
}

// Value returns slot i's raw count (0 outside the label space).
func (v *Vec) Value(i int) int64 {
	if i < 0 || i >= vecSlots {
		return 0
	}
	return v.slots[i].Load()
}

// Name returns the metric name.
func (v *Vec) Name() string { return v.name }

// each visits every non-zero slot in ordinal order.
func (v *Vec) each(fn func(i int, n int64)) {
	for i := range v.slots {
		if n := v.slots[i].Load(); n != 0 {
			fn(i, n)
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the total observed time.
func (h *Histogram) Sum() time.Duration { return time.Duration(h.sumNs.Load()) }

// Name returns the metric name.
func (h *Histogram) Name() string { return h.name }

// The process-wide metric set.
var (
	// Queries counts engine program executions (Run/RunContext).
	Queries = newCounter("gqldb_queries_total", "programs executed by the query engine")
	// QueryErrors counts executions that returned an error (including
	// cancellation).
	QueryErrors = newCounter("gqldb_query_errors_total", "program executions that returned an error")
	// SlowQueries counts executions that crossed the engine's slow-query
	// threshold.
	SlowQueries = newCounter("gqldb_slow_queries_total", "program executions over the slow-query threshold")
	// Matches counts mappings produced by the selection operator.
	Matches = newCounter("gqldb_matches_total", "mappings produced by selection")
	// GindexCandidates counts graphs that survived the path-feature filter.
	GindexCandidates = newCounter("gqldb_gindex_candidates_total", "graphs kept by the collection index filter")
	// GindexPruned counts graphs the path-feature filter skipped without
	// verification.
	GindexPruned = newCounter("gqldb_gindex_pruned_total", "graphs pruned by the collection index filter")
	// StoreMutations counts versioned document-store writes (RegisterDoc /
	// RemoveDoc); each one bumps the store version and invalidates the
	// result cache.
	StoreMutations = newCounter("gqldb_store_mutations_total", "versioned document store writes")
	// MutationsApplied counts individual mutations committed through the
	// transactional Apply path (a batch of N adds N).
	MutationsApplied = newCounter("gqldb_mutations_applied_total", "mutations committed via transactional apply")
	// StoreDocRebuilds counts documents repartitioned from scratch during
	// a mutation commit (drops, fresh documents, shard-count changes).
	StoreDocRebuilds = newCounter("gqldb_store_doc_rebuilds_total", "documents fully repartitioned during mutation commit")
	// StoreShardRebuilds counts single shards rebuilt incrementally during
	// a mutation commit (the node/edge delta fast path).
	StoreShardRebuilds = newCounter("gqldb_store_shard_rebuilds_total", "shards rebuilt incrementally during mutation commit")
	// WALAppends counts mutation batches appended to the write-ahead log.
	WALAppends = newCounter("gqldb_wal_appends_total", "mutation batches appended to the WAL")
	// WALReplayed counts mutation batches replayed from the WAL on open.
	WALReplayed = newCounter("gqldb_wal_replayed_total", "mutation batches replayed from the WAL at recovery")
	// WALCheckpoints counts snapshot checkpoints that truncated the WAL.
	WALCheckpoints = newCounter("gqldb_wal_checkpoints_total", "snapshot checkpoints truncating the WAL")
	// ShardedSelections counts selection operators fanned across document
	// shards by the coordinator.
	ShardedSelections = newCounter("gqldb_sharded_selections_total", "selections fanned across document shards")
	// CacheHits counts result-cache lookups served from a cached entry.
	CacheHits = newCounter("gqldb_cache_hits_total", "query result cache hits")
	// CacheMisses counts result-cache lookups that fell through to
	// evaluation.
	CacheMisses = newCounter("gqldb_cache_misses_total", "query result cache misses")
	// CacheEvictions counts entries dropped by the cache's LRU capacity
	// bound.
	CacheEvictions = newCounter("gqldb_cache_evictions_total", "query result cache capacity evictions")
	// CacheInvalidations counts whole-cache purges triggered by a store
	// version bump.
	CacheInvalidations = newCounter("gqldb_cache_invalidations_total", "query result cache purges on store version bump")
	// PlanCacheHits counts selections whose §4.4 search plan (feasible
	// mates and search order) was served from the plan cache.
	PlanCacheHits = newCounter("gqldb_plan_cache_hits_total", "match plan cache hits")
	// PlanCacheMisses counts plan-cache lookups that fell through to
	// retrieval and planning.
	PlanCacheMisses = newCounter("gqldb_plan_cache_misses_total", "match plan cache misses")
	// PlanCacheEvictions counts plans dropped by the plan cache's LRU
	// capacity bound.
	PlanCacheEvictions = newCounter("gqldb_plan_cache_evictions_total", "match plan cache capacity evictions")
	// PlanCacheInvalidations counts whole-plan-cache purges triggered by a
	// statistics epoch bump (store version).
	PlanCacheInvalidations = newCounter("gqldb_plan_cache_invalidations_total", "match plan cache purges on epoch bump")
	// PoolRuns counts bulk-operator executions on the worker pool.
	PoolRuns = newCounter("gqldb_pool_runs_total", "bulk operator executions on the worker pool")
	// PoolTasks counts individual work items fanned out on the pool.
	PoolTasks = newCounter("gqldb_pool_tasks_total", "work items fanned out on the worker pool")
	// PoolWorkerItems counts work items executed per worker ordinal: slot w
	// is the w-th goroutine of each pool.Run fan-out (slot 0 is also the
	// serial path), so a skewed distribution means chunks are not
	// load-balancing.
	PoolWorkerItems = newVec("gqldb_pool_worker_items_total", "work items executed per pool worker ordinal", "worker", false)
	// PoolWorkerBusy accumulates the time each worker ordinal spent inside
	// work functions; utilization is the slot's rate against wall time.
	PoolWorkerBusy = newVec("gqldb_pool_worker_busy_seconds_total", "time spent executing work items per pool worker ordinal", "worker", true)
	// HTTPRequests counts requests reaching the server frontend's handlers.
	HTTPRequests = newCounter("gqldb_http_requests_total", "requests served by the HTTP frontend")
	// HTTPOverload counts queries rejected by admission control (429).
	HTTPOverload = newCounter("gqldb_http_overload_rejections_total", "queries rejected by the admission limiter")
	// HTTPTimeouts counts queries that hit their per-request deadline.
	HTTPTimeouts = newCounter("gqldb_http_request_timeouts_total", "queries terminated by the per-request deadline")
	// StreamRows counts result rows pushed through streaming result sinks
	// (every RunQuery collect and the v2 NDJSON surface).
	StreamRows = newCounter("gqldb_stream_rows_total", "result rows pushed through streaming sinks")
	// StreamTruncations counts streams ended early by a take limit or a
	// sink stop (truncated streams never fill the result cache).
	StreamTruncations = newCounter("gqldb_stream_truncations_total", "result streams ended early by take or sink stop")
	// StreamFlushes counts forced flushes of streamed HTTP responses.
	StreamFlushes = newCounter("gqldb_stream_flushes_total", "forced flushes of streamed HTTP responses")
	// BatchQueries counts programs executed through the v2 batch endpoint.
	BatchQueries = newCounter("gqldb_batch_queries_total", "programs executed via the v2 batch endpoint")
	// ShardRPCs counts shard selection requests issued by the remote
	// selector (every attempt, including retries and hedges).
	ShardRPCs = newCounter("gqldb_shard_rpcs_total", "shard selection requests issued by the remote selector")
	// ShardRPCErrors counts shard selection attempts that failed (transport
	// errors, error frames, malformed streams).
	ShardRPCErrors = newCounter("gqldb_shard_rpc_errors_total", "failed shard selection attempts")
	// ShardRetries counts selection attempts beyond the first for a shard
	// (the bounded-retry path after a failed or stale attempt).
	ShardRetries = newCounter("gqldb_shard_retries_total", "shard selection retries after a failed attempt")
	// ShardHedges counts hedge requests fired at a replica after the
	// primary exceeded the hedge delay.
	ShardHedges = newCounter("gqldb_shard_hedges_total", "hedge requests fired at a shard replica")
	// ShardHedgeWins counts hedged selections where the replica answered
	// first.
	ShardHedgeWins = newCounter("gqldb_shard_hedge_wins_total", "hedged shard selections won by the replica")
	// ShardResyncs counts documents pushed to a shard server after a stale
	// version handshake (the read-replica convergence path).
	ShardResyncs = newCounter("gqldb_shard_resyncs_total", "documents pushed to stale shard servers")
	// ShardPartialResults counts shards dropped from an answer under the
	// explicit allow-partial degradation mode.
	ShardPartialResults = newCounter("gqldb_shard_partial_results_total", "shards dropped from answers under allow-partial")
	// ShardProbeFailures counts failed background health probes of shard
	// endpoints.
	ShardProbeFailures = newCounter("gqldb_shard_probe_failures_total", "failed shard endpoint health probes")
	// ShardSelections counts shard selection jobs served by the shard
	// server's /shard/select handler.
	ShardSelections = newCounter("gqldb_shard_selections_total", "selection jobs served by the shard server")
	// ShardStaleRejections counts selection jobs the shard server rejected
	// over the version handshake (content hash mismatch or unknown doc).
	ShardStaleRejections = newCounter("gqldb_shard_stale_rejections_total", "selection jobs rejected by the shard version handshake")
	// ShardSyncs counts documents installed via the shard server's
	// /shard/sync handler.
	ShardSyncs = newCounter("gqldb_shard_syncs_total", "documents installed via shard sync")
	// QuerySeconds is the end-to-end program latency distribution.
	QuerySeconds = newHistogram("gqldb_query_seconds", "program wall time")
	// SelectionSeconds is the per-selection-operator latency distribution.
	SelectionSeconds = newHistogram("gqldb_selection_seconds", "selection operator wall time")
)

// registry holds every metric in registration order for the dumps.
var registry struct {
	mu       sync.Mutex
	counters []*Counter
	vecs     []*Vec
	hists    []*Histogram
}

func newCounter(name, help string) *Counter {
	c := &Counter{name: name, help: help}
	registry.mu.Lock()
	registry.counters = append(registry.counters, c)
	registry.mu.Unlock()
	return c
}

func newVec(name, help, label string, seconds bool) *Vec {
	v := &Vec{name: name, help: help, label: label, seconds: seconds}
	registry.mu.Lock()
	registry.vecs = append(registry.vecs, v)
	registry.mu.Unlock()
	return v
}

func newHistogram(name, help string) *Histogram {
	h := &Histogram{name: name, help: help, bounds: defBuckets,
		buckets: make([]atomic.Int64, len(defBuckets)+1)}
	registry.mu.Lock()
	registry.hists = append(registry.hists, h)
	registry.mu.Unlock()
	return h
}

func init() {
	// One expvar under "gqldb" (visible on /debug/vars next to the runtime
	// vars) holding the whole registry snapshot.
	expvar.Publish("gqldb", expvar.Func(func() any { return Snapshot() }))
}

// Snapshot returns the current value of every metric: counters as int64,
// histograms as {count, sum_seconds} maps.
func Snapshot() map[string]any {
	registry.mu.Lock()
	defer registry.mu.Unlock()
	out := make(map[string]any, len(registry.counters)+len(registry.vecs)+len(registry.hists))
	for _, c := range registry.counters {
		out[c.name] = c.Value()
	}
	for _, v := range registry.vecs {
		m := make(map[string]any)
		v.each(func(i int, n int64) {
			if v.seconds {
				m[fmt.Sprint(i)] = time.Duration(n).Seconds()
			} else {
				m[fmt.Sprint(i)] = n
			}
		})
		out[v.name] = m
	}
	for _, h := range registry.hists {
		out[h.name] = map[string]any{
			"count":       h.Count(),
			"sum_seconds": h.Sum().Seconds(),
		}
	}
	return out
}

// WritePrometheus dumps the registry in the Prometheus text exposition
// format (counters and cumulative-bucket histograms).
func WritePrometheus(w io.Writer) error {
	registry.mu.Lock()
	counters := append([]*Counter(nil), registry.counters...)
	vecs := append([]*Vec(nil), registry.vecs...)
	hists := append([]*Histogram(nil), registry.hists...)
	registry.mu.Unlock()
	for _, c := range counters {
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n",
			c.name, c.help, c.name, c.name, c.Value()); err != nil {
			return err
		}
	}
	for _, v := range vecs {
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n", v.name, v.help, v.name); err != nil {
			return err
		}
		var werr error
		v.each(func(i int, n int64) {
			if werr != nil {
				return
			}
			if v.seconds {
				_, werr = fmt.Fprintf(w, "%s{%s=\"%d\"} %g\n", v.name, v.label, i, time.Duration(n).Seconds())
			} else {
				_, werr = fmt.Fprintf(w, "%s{%s=\"%d\"} %d\n", v.name, v.label, i, n)
			}
		})
		if werr != nil {
			return werr
		}
	}
	for _, h := range hists {
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s histogram\n", h.name, h.help, h.name); err != nil {
			return err
		}
		cum := int64(0)
		for i, ub := range h.bounds {
			cum += h.buckets[i].Load()
			if _, err := fmt.Fprintf(w, "%s_bucket{le=\"%g\"} %d\n", h.name, ub, cum); err != nil {
				return err
			}
		}
		cum += h.buckets[len(h.bounds)].Load()
		if _, err := fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n%s_sum %g\n%s_count %d\n",
			h.name, cum, h.name, h.Sum().Seconds(), h.name, h.Count()); err != nil {
			return err
		}
	}
	return nil
}
