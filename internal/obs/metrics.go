// Process-wide metrics: a fixed registry of counters and fixed-bucket
// latency histograms covering the query pipeline (queries, matches, gindex
// pruning, pool fan-out, errors, slow queries). Counters are single atomic
// adds and are always on; the instrumented call sites fire once per
// operator or query, never per work item, so the steady-state cost is
// negligible next to evaluation work.
//
// The registry is exposed two ways: expvar (one "gqldb" var holding a
// snapshot map, for the standard /debug/vars endpoint) and WritePrometheus
// (the text exposition format, for scraping or dumping from tools).
package obs

import (
	"expvar"
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing metric.
type Counter struct {
	name string
	help string
	v    atomic.Int64
}

// Add increments the counter by n (negative n is ignored: counters only go
// up).
func (c *Counter) Add(n int64) {
	if n > 0 {
		c.v.Add(n)
	}
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Name returns the metric name.
func (c *Counter) Name() string { return c.name }

// defBuckets are the fixed histogram upper bounds in seconds: sub-100µs
// index probes through multi-second analytical queries.
var defBuckets = []float64{
	0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005,
	0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// Histogram is a fixed-bucket latency histogram. Observations are counted
// into the first bucket whose upper bound is >= the value, plus a +Inf
// overflow bucket, with a running count and sum — the Prometheus histogram
// shape.
type Histogram struct {
	name    string
	help    string
	bounds  []float64 // upper bounds in seconds, ascending
	buckets []atomic.Int64
	count   atomic.Int64
	sumNs   atomic.Int64
}

// Observe records one latency sample.
func (h *Histogram) Observe(d time.Duration) {
	sec := d.Seconds()
	i := 0
	for i < len(h.bounds) && sec > h.bounds[i] {
		i++
	}
	h.buckets[i].Add(1)
	h.count.Add(1)
	h.sumNs.Add(int64(d))
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the total observed time.
func (h *Histogram) Sum() time.Duration { return time.Duration(h.sumNs.Load()) }

// Name returns the metric name.
func (h *Histogram) Name() string { return h.name }

// The process-wide metric set.
var (
	// Queries counts engine program executions (Run/RunContext).
	Queries = newCounter("gqldb_queries_total", "programs executed by the query engine")
	// QueryErrors counts executions that returned an error (including
	// cancellation).
	QueryErrors = newCounter("gqldb_query_errors_total", "program executions that returned an error")
	// SlowQueries counts executions that crossed the engine's slow-query
	// threshold.
	SlowQueries = newCounter("gqldb_slow_queries_total", "program executions over the slow-query threshold")
	// Matches counts mappings produced by the selection operator.
	Matches = newCounter("gqldb_matches_total", "mappings produced by selection")
	// GindexCandidates counts graphs that survived the path-feature filter.
	GindexCandidates = newCounter("gqldb_gindex_candidates_total", "graphs kept by the collection index filter")
	// GindexPruned counts graphs the path-feature filter skipped without
	// verification.
	GindexPruned = newCounter("gqldb_gindex_pruned_total", "graphs pruned by the collection index filter")
	// PoolRuns counts bulk-operator executions on the worker pool.
	PoolRuns = newCounter("gqldb_pool_runs_total", "bulk operator executions on the worker pool")
	// PoolTasks counts individual work items fanned out on the pool.
	PoolTasks = newCounter("gqldb_pool_tasks_total", "work items fanned out on the worker pool")
	// QuerySeconds is the end-to-end program latency distribution.
	QuerySeconds = newHistogram("gqldb_query_seconds", "program wall time")
	// SelectionSeconds is the per-selection-operator latency distribution.
	SelectionSeconds = newHistogram("gqldb_selection_seconds", "selection operator wall time")
)

// registry holds every metric in registration order for the dumps.
var registry struct {
	mu       sync.Mutex
	counters []*Counter
	hists    []*Histogram
}

func newCounter(name, help string) *Counter {
	c := &Counter{name: name, help: help}
	registry.mu.Lock()
	registry.counters = append(registry.counters, c)
	registry.mu.Unlock()
	return c
}

func newHistogram(name, help string) *Histogram {
	h := &Histogram{name: name, help: help, bounds: defBuckets,
		buckets: make([]atomic.Int64, len(defBuckets)+1)}
	registry.mu.Lock()
	registry.hists = append(registry.hists, h)
	registry.mu.Unlock()
	return h
}

func init() {
	// One expvar under "gqldb" (visible on /debug/vars next to the runtime
	// vars) holding the whole registry snapshot.
	expvar.Publish("gqldb", expvar.Func(func() any { return Snapshot() }))
}

// Snapshot returns the current value of every metric: counters as int64,
// histograms as {count, sum_seconds} maps.
func Snapshot() map[string]any {
	registry.mu.Lock()
	defer registry.mu.Unlock()
	out := make(map[string]any, len(registry.counters)+len(registry.hists))
	for _, c := range registry.counters {
		out[c.name] = c.Value()
	}
	for _, h := range registry.hists {
		out[h.name] = map[string]any{
			"count":       h.Count(),
			"sum_seconds": h.Sum().Seconds(),
		}
	}
	return out
}

// WritePrometheus dumps the registry in the Prometheus text exposition
// format (counters and cumulative-bucket histograms).
func WritePrometheus(w io.Writer) error {
	registry.mu.Lock()
	counters := append([]*Counter(nil), registry.counters...)
	hists := append([]*Histogram(nil), registry.hists...)
	registry.mu.Unlock()
	for _, c := range counters {
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n",
			c.name, c.help, c.name, c.name, c.Value()); err != nil {
			return err
		}
	}
	for _, h := range hists {
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s histogram\n", h.name, h.help, h.name); err != nil {
			return err
		}
		cum := int64(0)
		for i, ub := range h.bounds {
			cum += h.buckets[i].Load()
			if _, err := fmt.Fprintf(w, "%s_bucket{le=\"%g\"} %d\n", h.name, ub, cum); err != nil {
				return err
			}
		}
		cum += h.buckets[len(h.bounds)].Load()
		if _, err := fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n%s_sum %g\n%s_count %d\n",
			h.name, cum, h.name, h.Sum().Seconds(), h.name, h.Count()); err != nil {
			return err
		}
	}
	return nil
}
