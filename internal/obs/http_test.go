package obs

import (
	"net/http/httptest"
	"strings"
	"testing"
)

func TestHandlerServesPrometheus(t *testing.T) {
	Queries.Inc()
	rr := httptest.NewRecorder()
	Handler().ServeHTTP(rr, httptest.NewRequest("GET", "/metrics", nil))
	if rr.Code != 200 {
		t.Fatalf("status = %d", rr.Code)
	}
	if ct := rr.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("Content-Type = %q", ct)
	}
	if body := rr.Body.String(); !strings.Contains(body, "gqldb_queries_total") {
		t.Fatalf("body missing counter dump:\n%s", body)
	}
}
