// Package obs is the query observability layer: hierarchical trace spans
// carried through context.Context, a process-wide metrics registry exposed
// via expvar and a Prometheus-style text dump, and the slow-query record
// consumed by the engine's slow-query log hook.
//
// Tracing is opt-in per query. Evaluation code calls StartSpan, which is a
// no-op (returning the context unchanged and a nil span) unless a caller
// installed a root span with NewTrace + NewContext. Every Span method is
// nil-safe, so instrumented operators need no conditionals and the disabled
// path costs one context value lookup per operator — not per work item.
//
// Concurrency contract: StartChild, Add and every reader (Wall, Count,
// Counts, Attrs, Children, Render, Walk) are safe for concurrent use, so
// pool workers and concurrently running operators may share one sink. End
// and SetAttr are coordinator-only — they must be called by the goroutine
// that started the span, never from pool workers (enforced by gqlvet's
// gosafe table).
package obs

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"
)

// Attr is one key/value annotation on a span, in insertion order.
type Attr struct {
	Key string
	Val string
}

// Span is one node of a query-evaluation trace: a named phase or operator
// with its wall time, ordered annotations, named counters and child spans.
type Span struct {
	// Name identifies the phase or operator (e.g. "parse", "selection").
	Name string
	// Start is the span's start time.
	Start time.Time

	mu       sync.Mutex
	wall     time.Duration
	ended    bool
	attrs    []Attr
	counts   map[string]int64
	children []*Span
}

// NewTrace returns a started root span; install it with NewContext to
// enable tracing for everything evaluated under that context.
func NewTrace(name string) *Span {
	return &Span{Name: name, Start: time.Now()}
}

// StartChild appends and returns a started child span. It is nil-safe (a
// nil receiver returns nil, so an untraced path stays free of conditionals)
// and safe for concurrent use by sibling operators.
func (s *Span) StartChild(name string) *Span {
	if s == nil {
		return nil
	}
	c := &Span{Name: name, Start: time.Now()}
	s.mu.Lock()
	s.children = append(s.children, c)
	s.mu.Unlock()
	return c
}

// End freezes the span's wall time. Nil-safe; later calls keep the first
// recorded duration. Coordinator-only: call it from the goroutine that
// started the span.
func (s *Span) End() {
	if s == nil || s.ended {
		return
	}
	s.ended = true
	s.wall = time.Since(s.Start)
}

// SetAttr appends one annotation. Nil-safe; coordinator-only.
func (s *Span) SetAttr(key, val string) {
	if s == nil {
		return
	}
	s.attrs = append(s.attrs, Attr{Key: key, Val: val})
}

// Add increments the named counter. Nil-safe and safe from pool workers.
func (s *Span) Add(key string, n int64) {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.counts == nil {
		s.counts = make(map[string]int64, 8)
	}
	s.counts[key] += n
	s.mu.Unlock()
}

// Wall returns the frozen duration, or the running elapsed time before End.
func (s *Span) Wall() time.Duration {
	if s == nil {
		return 0
	}
	if s.ended {
		return s.wall
	}
	return time.Since(s.Start)
}

// Count returns the named counter's value (0 when absent or s is nil).
func (s *Span) Count(key string) int64 {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.counts[key]
}

// Counts returns a copy of the counters.
func (s *Span) Counts() map[string]int64 {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[string]int64, len(s.counts))
	for k, v := range s.counts {
		out[k] = v
	}
	return out
}

// Attrs returns a copy of the ordered annotations.
func (s *Span) Attrs() []Attr {
	if s == nil {
		return nil
	}
	return append([]Attr(nil), s.attrs...)
}

// Children returns a copy of the child list in creation order.
func (s *Span) Children() []*Span {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]*Span(nil), s.children...)
}

// Walk visits the span and its descendants depth-first, reporting each
// node's depth (the receiver is depth 0). Nil-safe.
func (s *Span) Walk(fn func(depth int, s *Span)) {
	if s == nil {
		return
	}
	s.walk(0, fn)
}

func (s *Span) walk(depth int, fn func(depth int, s *Span)) {
	fn(depth, s)
	for _, c := range s.Children() {
		c.walk(depth+1, fn)
	}
}

// Render formats the span tree as indented text, one span per line with its
// wall time, annotations and sorted counters:
//
//	query 1.82ms
//	  parse 103µs
//	  flwr 1.64ms pattern=P doc=db
//	    selection 1.2ms [cand_baseline=840 items=64 matches=90 workers=8]
//
// Nil-safe (returns ""); safe to call while counters are still moving,
// though the intended use is after End.
func (s *Span) Render() string {
	if s == nil {
		return ""
	}
	var b strings.Builder
	s.Walk(func(depth int, sp *Span) {
		b.WriteString(strings.Repeat("  ", depth))
		b.WriteString(sp.Name)
		fmt.Fprintf(&b, " %v", sp.Wall().Round(time.Microsecond))
		for _, a := range sp.Attrs() {
			fmt.Fprintf(&b, " %s=%s", a.Key, a.Val)
		}
		counts := sp.Counts()
		if len(counts) > 0 {
			keys := make([]string, 0, len(counts))
			for k := range counts {
				keys = append(keys, k)
			}
			sort.Strings(keys)
			b.WriteString(" [")
			for i, k := range keys {
				if i > 0 {
					b.WriteByte(' ')
				}
				fmt.Fprintf(&b, "%s=%d", k, counts[k])
			}
			b.WriteByte(']')
		}
		b.WriteByte('\n')
	})
	return b.String()
}

// SlowQueryRecord is what the engine hands to its slow-query log hook when
// a query's wall time crosses the configured threshold.
type SlowQueryRecord struct {
	// Wall is the query's total wall time.
	Wall time.Duration
	// Statements is the number of program statements executed.
	Statements int
	// Err is the query's terminal error, nil on success.
	Err error
	// Trace is the query's root span when tracing was enabled, else nil.
	Trace *Span
}

// String renders the record in one log line (plus the trace tree when
// present).
func (r SlowQueryRecord) String() string {
	msg := fmt.Sprintf("slow query: wall=%v statements=%d err=%v", r.Wall, r.Statements, r.Err)
	if r.Trace != nil {
		msg += "\n" + r.Trace.Render()
	}
	return msg
}

// ctxKey is the context key carrying the current span.
type ctxKey struct{}

// NewContext returns a context carrying s as the current span.
func NewContext(ctx context.Context, s *Span) context.Context {
	return context.WithValue(ctx, ctxKey{}, s)
}

// FromContext returns the current span, or nil when ctx is nil or carries
// none — the signal that tracing is disabled.
func FromContext(ctx context.Context) *Span {
	if ctx == nil {
		return nil
	}
	s, _ := ctx.Value(ctxKey{}).(*Span)
	return s
}

// StartSpan starts a child of the context's current span and returns a
// context carrying the child. When tracing is disabled it returns ctx
// unchanged and a nil span; all Span methods tolerate the nil.
func StartSpan(ctx context.Context, name string) (context.Context, *Span) {
	parent := FromContext(ctx)
	if parent == nil {
		return ctx, nil
	}
	c := parent.StartChild(name)
	return NewContext(ctx, c), c
}
