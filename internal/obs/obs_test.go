package obs

import (
	"context"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestNilSpanSafety(t *testing.T) {
	var s *Span
	// Every method must tolerate a nil receiver (the tracing-disabled path).
	if c := s.StartChild("x"); c != nil {
		t.Fatalf("nil.StartChild = %v, want nil", c)
	}
	s.End()
	s.SetAttr("k", "v")
	s.Add("n", 1)
	if s.Wall() != 0 || s.Count("n") != 0 || s.Counts() != nil ||
		s.Attrs() != nil || s.Children() != nil || s.Render() != "" {
		t.Fatal("nil span accessors must return zero values")
	}
	s.Walk(func(int, *Span) { t.Fatal("nil.Walk must not visit") })
}

func TestSpanTree(t *testing.T) {
	root := NewTrace("query")
	a := root.StartChild("parse")
	a.End()
	b := root.StartChild("flwr")
	b.SetAttr("pattern", "P")
	b.Add("items", 3)
	b.Add("items", 4)
	c := b.StartChild("selection")
	c.End()
	b.End()
	root.End()

	if got := b.Count("items"); got != 7 {
		t.Fatalf("Count(items) = %d, want 7", got)
	}
	kids := root.Children()
	if len(kids) != 2 || kids[0].Name != "parse" || kids[1].Name != "flwr" {
		t.Fatalf("children = %v", kids)
	}
	var visited []string
	depths := map[string]int{}
	root.Walk(func(d int, s *Span) {
		visited = append(visited, s.Name)
		depths[s.Name] = d
	})
	want := []string{"query", "parse", "flwr", "selection"}
	if strings.Join(visited, ",") != strings.Join(want, ",") {
		t.Fatalf("walk order = %v, want %v", visited, want)
	}
	if depths["query"] != 0 || depths["selection"] != 2 {
		t.Fatalf("depths = %v", depths)
	}

	out := root.Render()
	for _, frag := range []string{"query", "  parse", "  flwr", "pattern=P", "[items=7]", "    selection"} {
		if !strings.Contains(out, frag) {
			t.Errorf("Render missing %q in:\n%s", frag, out)
		}
	}
}

func TestEndFreezesWall(t *testing.T) {
	s := NewTrace("q")
	s.End()
	w := s.Wall()
	time.Sleep(2 * time.Millisecond)
	if s.Wall() != w {
		t.Fatal("Wall changed after End")
	}
	s.End() // second End keeps the first duration
	if s.Wall() != w {
		t.Fatal("second End overwrote the frozen duration")
	}
}

func TestContextPlumbing(t *testing.T) {
	if FromContext(nil) != nil {
		t.Fatal("FromContext(nil) must be nil")
	}
	ctx := context.Background()
	if FromContext(ctx) != nil {
		t.Fatal("bare context must carry no span")
	}
	// Disabled: StartSpan is a no-op.
	ctx2, sp := StartSpan(ctx, "op")
	if sp != nil || ctx2 != ctx {
		t.Fatal("StartSpan without a trace must return ctx unchanged and a nil span")
	}
	// Enabled: children chain through the context.
	root := NewTrace("q")
	ctx = NewContext(ctx, root)
	if FromContext(ctx) != root {
		t.Fatal("FromContext must return the installed span")
	}
	cctx, child := StartSpan(ctx, "op")
	if child == nil || FromContext(cctx) != child {
		t.Fatal("StartSpan must install the child")
	}
	if kids := root.Children(); len(kids) != 1 || kids[0] != child {
		t.Fatalf("root children = %v", kids)
	}
}

// TestConcurrentAddAndChildren exercises the worker-facing mutators from
// many goroutines — the shared-sink shape of concurrently running
// operators (run under -race in CI).
func TestConcurrentAddAndChildren(t *testing.T) {
	root := NewTrace("q")
	const workers = 16
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			sp := root.StartChild("op")
			for i := 0; i < 100; i++ {
				root.Add("n", 1)
				sp.Add("n", 1)
			}
			sp.End() //gqlvet:ignore gosafe -- sp is this worker's own child span, never shared
		}()
	}
	wg.Wait()
	root.End()
	if got := root.Count("n"); got != workers*100 {
		t.Fatalf("root count = %d, want %d", got, workers*100)
	}
	if got := len(root.Children()); got != workers {
		t.Fatalf("children = %d, want %d", got, workers)
	}
}

func TestSlowQueryRecordString(t *testing.T) {
	root := NewTrace("query")
	root.End()
	r := SlowQueryRecord{Wall: time.Second, Statements: 3, Trace: root}
	s := r.String()
	if !strings.Contains(s, "wall=1s") || !strings.Contains(s, "statements=3") ||
		!strings.Contains(s, "query") {
		t.Fatalf("record string = %q", s)
	}
	if s2 := (SlowQueryRecord{Wall: time.Millisecond}).String(); strings.Contains(s2, "\n") {
		t.Fatalf("traceless record must be one line, got %q", s2)
	}
}
