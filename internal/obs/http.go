// The HTTP face of the metrics registry: a scrape handler serving the
// Prometheus text dump. The server frontend mounts it on /metrics (expvar
// already serves the "gqldb" snapshot var on /debug/vars).
package obs

import "net/http"

// Handler returns an http.Handler serving WritePrometheus — the scrape
// endpoint for the process-wide metrics registry.
func Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		// Errors past the header are write failures on the response; the
		// connection is already broken, nothing to report.
		_ = WritePrometheus(w)
	})
}
