// Package motif implements the formal language for graph structures of §2:
// graph motifs are either simple graphs or composed from other motifs by
// concatenation (by new edges or by node unification), disjunction, and
// repetition (recursive motifs). A Grammar is a finite set of motif
// definitions; the language of the grammar is the set of graphs derivable
// from them. Derive enumerates that language up to a recursion depth.
package motif

import (
	"fmt"

	"gqldb/internal/graph"
)

// Def is one motif definition: a name and one or more alternative bodies
// (a single body when there is no disjunction).
type Def struct {
	Name string
	Alts []Body
}

// Body is one alternative of a motif: constituent sub-motifs, fresh nodes,
// edges, unifications and exports.
type Body struct {
	// Subs instantiate other motifs (or the motif itself — recursion).
	Subs []SubSpec
	// Nodes declares fresh nodes.
	Nodes []NodeSpec
	// Edges connects nodes (fresh or inside sub-motifs) — concatenation by
	// edges (§2.1).
	Edges []EdgeSpec
	// Unifies merges node pairs — concatenation by unification (§2.1).
	Unifies []UnifySpec
	// Exports re-expose a nested node under a local name so recursive
	// motifs keep the same "interface" (§2.3).
	Exports []ExportSpec
}

// SubSpec instantiates the motif named Motif under local alias As (defaults
// to the motif name).
type SubSpec struct {
	Motif string
	As    string
}

// NodeSpec declares a fresh node with optional attributes.
type NodeSpec struct {
	Name  string
	Attrs *graph.Tuple
}

// EdgeSpec declares an edge between two node references. A reference is a
// dotted path: "v1" (local) or "X.v1" (interface node v1 of sub-motif X).
type EdgeSpec struct {
	Name     string
	From, To string
	Attrs    *graph.Tuple
}

// UnifySpec merges the nodes referenced by A and B.
type UnifySpec struct {
	A, B string
}

// ExportSpec makes the node referenced by Ref available as local name As.
type ExportSpec struct {
	Ref string
	As  string
}

// Grammar is a finite set of motif definitions keyed by name.
type Grammar struct {
	defs map[string]*Def
}

// NewGrammar returns an empty grammar.
func NewGrammar() *Grammar { return &Grammar{defs: make(map[string]*Def)} }

// Add registers a definition, replacing any previous one of the same name.
func (gr *Grammar) Add(d *Def) { gr.defs[d.Name] = d }

// Def returns the named definition.
func (gr *Grammar) Def(name string) (*Def, bool) {
	d, ok := gr.defs[name]
	return d, ok
}

// Simple wraps a constant graph as a single-alternative motif definition
// (Figure 4.3).
func Simple(name string, g *graph.Graph) *Def {
	b := Body{}
	for _, n := range g.Nodes() {
		b.Nodes = append(b.Nodes, NodeSpec{Name: n.Name, Attrs: n.Attrs.Clone()})
	}
	for _, e := range g.Edges() {
		b.Edges = append(b.Edges, EdgeSpec{
			Name:  e.Name,
			From:  g.Node(e.From).Name,
			To:    g.Node(e.To).Name,
			Attrs: e.Attrs.Clone(),
		})
	}
	return &Def{Name: name, Alts: []Body{b}}
}

// Derived is one graph derived from a motif, together with its interface:
// the nodes visible to an enclosing motif (local node names and exports).
type Derived struct {
	G     *graph.Graph
	Iface map[string]graph.NodeID
}

// Derive enumerates the distinct graphs derivable from the named motif
// using at most maxDepth nested motif instantiations, keeping at most
// maxCount results (0 = unlimited). Deterministic: alternatives in
// declaration order, shallower derivations first.
func (gr *Grammar) Derive(name string, maxDepth, maxCount int) ([]*graph.Graph, error) {
	memo := make(map[memoKey][]Derived)
	ds, err := gr.deriveDef(name, maxDepth, maxCount, memo)
	if err != nil {
		return nil, err
	}
	seen := map[string]bool{}
	var out []*graph.Graph
	for _, d := range ds {
		g := d.G
		g.Name = name
		sig := g.Signature()
		if seen[sig] {
			continue
		}
		seen[sig] = true
		out = append(out, g)
		if maxCount > 0 && len(out) >= maxCount {
			break
		}
	}
	return out, nil
}

type memoKey struct {
	name  string
	depth int
}

// deriveDef enumerates derivations of a definition with the given remaining
// depth budget. Each motif instantiation (sub-motif placement) costs one
// unit of depth.
func (gr *Grammar) deriveDef(name string, depth, limit int, memo map[memoKey][]Derived) ([]Derived, error) {
	if depth < 0 {
		return nil, nil
	}
	key := memoKey{name, depth}
	if ds, ok := memo[key]; ok {
		return ds, nil
	}
	def, ok := gr.defs[name]
	if !ok {
		return nil, fmt.Errorf("motif: undefined motif %q", name)
	}
	// Guard against non-productive recursion within the same depth.
	memo[key] = nil
	var out []Derived
	for _, alt := range def.Alts {
		ds, err := gr.deriveBody(alt, depth, limit, memo)
		if err != nil {
			return nil, err
		}
		out = append(out, ds...)
		if limit > 0 && len(out) >= limit {
			out = out[:limit]
			break
		}
	}
	memo[key] = out
	return out, nil
}

// deriveBody enumerates the cross product of sub-motif derivations and
// assembles each combination with the body's own elements.
func (gr *Grammar) deriveBody(b Body, depth, limit int, memo map[memoKey][]Derived) ([]Derived, error) {
	// Enumerate choices for each sub-motif at depth-1.
	choices := make([][]Derived, len(b.Subs))
	for i, sub := range b.Subs {
		ds, err := gr.deriveDef(sub.Motif, depth-1, limit, memo)
		if err != nil {
			return nil, err
		}
		if len(ds) == 0 {
			return nil, nil // this alternative is not derivable at this depth
		}
		choices[i] = ds
	}
	var out []Derived
	pick := make([]int, len(b.Subs))
	for {
		d, err := assemble(b, pick, choices)
		if err != nil {
			return nil, err
		}
		out = append(out, d)
		if limit > 0 && len(out) >= limit {
			return out, nil
		}
		// Next combination (odometer).
		i := len(pick) - 1
		for ; i >= 0; i-- {
			pick[i]++
			if pick[i] < len(choices[i]) {
				break
			}
			pick[i] = 0
		}
		if i < 0 {
			return out, nil
		}
	}
}

// assemble builds one derived graph from a body and chosen sub-derivations.
func assemble(b Body, pick []int, choices [][]Derived) (Derived, error) {
	g := graph.New("_m")
	names := map[string]graph.NodeID{}

	// Place sub-motifs; their interfaces become visible as alias.name.
	for i, sub := range b.Subs {
		alias := sub.As
		if alias == "" {
			alias = sub.Motif
		}
		src := choices[i][pick[i]]
		remap := make([]graph.NodeID, src.G.NumNodes())
		for _, n := range src.G.Nodes() {
			remap[n.ID] = g.AddNode("", n.Attrs)
		}
		for _, e := range src.G.Edges() {
			g.AddEdge("", remap[e.From], remap[e.To], e.Attrs)
		}
		for nm, id := range src.Iface {
			names[alias+"."+nm] = remap[id]
		}
	}
	// Fresh nodes.
	for _, ns := range b.Nodes {
		names[ns.Name] = g.AddNode("", ns.Attrs)
	}
	resolve := func(ref string) (graph.NodeID, error) {
		if id, ok := names[ref]; ok {
			return id, nil
		}
		return 0, fmt.Errorf("motif: unresolved node reference %q", ref)
	}
	// Union-find for unification.
	uf := map[graph.NodeID]graph.NodeID{}
	rep := func(v graph.NodeID) graph.NodeID {
		for {
			w, ok := uf[v]
			if !ok {
				return v
			}
			v = w
		}
	}
	for _, us := range b.Unifies {
		a, err := resolve(us.A)
		if err != nil {
			return Derived{}, err
		}
		bb, err := resolve(us.B)
		if err != nil {
			return Derived{}, err
		}
		a, bb = rep(a), rep(bb)
		if a != bb {
			uf[a] = bb
		}
	}
	// Edges (after unification so endpoints use representatives).
	for _, es := range b.Edges {
		u, err := resolve(es.From)
		if err != nil {
			return Derived{}, err
		}
		v, err := resolve(es.To)
		if err != nil {
			return Derived{}, err
		}
		g.AddEdge("", rep(u), rep(v), es.Attrs)
	}
	// Exports extend the interface.
	for _, ex := range b.Exports {
		id, err := resolve(ex.Ref)
		if err != nil {
			return Derived{}, err
		}
		names[ex.As] = id
	}

	// Compact: drop merged nodes, dedupe unified edges, restrict the
	// interface to local names (dotted names are internal).
	out := graph.New("_m")
	remap := make([]graph.NodeID, g.NumNodes())
	for i := range remap {
		remap[i] = graph.NoNode
	}
	for _, n := range g.Nodes() {
		if rep(n.ID) != n.ID {
			continue
		}
		remap[n.ID] = out.AddNode("", n.Attrs)
	}
	type ek struct {
		u, v graph.NodeID
		sig  string
	}
	dedup := map[ek]bool{}
	for _, e := range g.Edges() {
		u, v := remap[rep(e.From)], remap[rep(e.To)]
		if u > v {
			u, v = v, u
		}
		k := ek{u, v, e.Attrs.String()}
		if dedup[k] {
			continue
		}
		dedup[k] = true
		out.AddEdge("", u, v, e.Attrs)
	}
	iface := map[string]graph.NodeID{}
	for nm, id := range names {
		if !containsDot(nm) {
			iface[nm] = remap[rep(id)]
		}
	}
	return Derived{G: out, Iface: iface}, nil
}

func containsDot(s string) bool {
	for i := 0; i < len(s); i++ {
		if s[i] == '.' {
			return true
		}
	}
	return false
}

// PathDef builds the recursive Path motif of Figure 4.6(a):
//
//	graph Path { graph Path; node v1; edge e1 (v1, Path.v1);
//	             export Path.v2 as v2; }
//	          | { node v1, v2; edge e1 (v1, v2); }
func PathDef() *Def {
	return &Def{Name: "Path", Alts: []Body{
		{
			Subs:    []SubSpec{{Motif: "Path"}},
			Nodes:   []NodeSpec{{Name: "v1"}},
			Edges:   []EdgeSpec{{Name: "e1", From: "v1", To: "Path.v1"}},
			Exports: []ExportSpec{{Ref: "Path.v2", As: "v2"}},
		},
		{
			Nodes: []NodeSpec{{Name: "v1"}, {Name: "v2"}},
			Edges: []EdgeSpec{{Name: "e1", From: "v1", To: "v2"}},
		},
	}}
}

// CycleDef builds the Cycle motif of Figure 4.6(a): a Path whose end nodes
// are joined by an extra edge.
func CycleDef() *Def {
	return &Def{Name: "Cycle", Alts: []Body{{
		Subs:  []SubSpec{{Motif: "Path"}},
		Edges: []EdgeSpec{{Name: "e1", From: "Path.v1", To: "Path.v2"}},
	}}}
}

// StarDef builds the G5 motif of Figure 4.6(b): a root node v0 connected to
// an arbitrary number of instances of the unit motif (via the unit's v1).
func StarDef(unit string) *Def {
	return &Def{Name: "G5", Alts: []Body{
		{
			Subs:    []SubSpec{{Motif: "G5"}, {Motif: unit}},
			Edges:   []EdgeSpec{{Name: "e1", From: "G5.v0", To: unit + ".v1"}},
			Exports: []ExportSpec{{Ref: "G5.v0", As: "v0"}},
		},
		{
			Nodes: []NodeSpec{{Name: "v0"}},
		},
	}}
}
