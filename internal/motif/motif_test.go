package motif

import (
	"testing"

	"gqldb/internal/graph"
)

// triangle is the simple motif G1 of Figure 4.3.
func triangle() *graph.Graph {
	g := graph.New("G1")
	v1 := g.AddNode("v1", nil)
	v2 := g.AddNode("v2", nil)
	v3 := g.AddNode("v3", nil)
	g.AddEdge("e1", v1, v2, nil)
	g.AddEdge("e2", v2, v3, nil)
	g.AddEdge("e3", v3, v1, nil)
	return g
}

func TestSimpleMotif(t *testing.T) {
	gr := NewGrammar()
	gr.Add(Simple("G1", triangle()))
	out, err := gr.Derive("G1", 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 1 {
		t.Fatalf("derivations = %d, want 1", len(out))
	}
	if out[0].NumNodes() != 3 || out[0].NumEdges() != 3 {
		t.Errorf("shape = %d/%d, want 3/3", out[0].NumNodes(), out[0].NumEdges())
	}
}

// TestConcatenationByEdges reproduces G2 of Figure 4.4(a): two triangles
// joined by two new edges.
func TestConcatenationByEdges(t *testing.T) {
	gr := NewGrammar()
	gr.Add(Simple("G1", triangle()))
	gr.Add(&Def{Name: "G2", Alts: []Body{{
		Subs: []SubSpec{{Motif: "G1", As: "X"}, {Motif: "G1", As: "Y"}},
		Edges: []EdgeSpec{
			{Name: "e4", From: "X.v1", To: "Y.v1"},
			{Name: "e5", From: "X.v3", To: "Y.v2"},
		},
	}}})
	out, err := gr.Derive("G2", 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 1 {
		t.Fatalf("derivations = %d, want 1", len(out))
	}
	if out[0].NumNodes() != 6 || out[0].NumEdges() != 8 {
		t.Errorf("G2 shape = %d/%d, want 6/8", out[0].NumNodes(), out[0].NumEdges())
	}
}

// TestConcatenationByUnification reproduces G3 of Figure 4.4(b): two
// triangles sharing two nodes — 4 nodes, 5 edges (e1 of Y unifies with e3
// of X).
func TestConcatenationByUnification(t *testing.T) {
	gr := NewGrammar()
	gr.Add(Simple("G1", triangle()))
	gr.Add(&Def{Name: "G3", Alts: []Body{{
		Subs: []SubSpec{{Motif: "G1", As: "X"}, {Motif: "G1", As: "Y"}},
		Unifies: []UnifySpec{
			{A: "X.v1", B: "Y.v1"},
			{A: "X.v3", B: "Y.v2"},
		},
	}}})
	out, err := gr.Derive("G3", 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 1 {
		t.Fatalf("derivations = %d, want 1", len(out))
	}
	if out[0].NumNodes() != 4 || out[0].NumEdges() != 5 {
		t.Errorf("G3 shape = %d/%d, want 4/5\n%s", out[0].NumNodes(), out[0].NumEdges(), out[0])
	}
}

// TestDisjunction reproduces G4 of Figure 4.5: base edge v1-v2 plus either
// a triangle apex v3 or a square side v3-v4.
func TestDisjunction(t *testing.T) {
	gr := NewGrammar()
	gr.Add(&Def{Name: "G4", Alts: []Body{
		{
			Nodes: []NodeSpec{{Name: "v1"}, {Name: "v2"}, {Name: "v3"}},
			Edges: []EdgeSpec{
				{Name: "e1", From: "v1", To: "v2"},
				{Name: "e2", From: "v1", To: "v3"},
				{Name: "e3", From: "v2", To: "v3"},
			},
		},
		{
			Nodes: []NodeSpec{{Name: "v1"}, {Name: "v2"}, {Name: "v3"}, {Name: "v4"}},
			Edges: []EdgeSpec{
				{Name: "e1", From: "v1", To: "v2"},
				{Name: "e2", From: "v1", To: "v3"},
				{Name: "e3", From: "v2", To: "v4"},
				{Name: "e4", From: "v3", To: "v4"},
			},
		},
	}})
	out, err := gr.Derive("G4", 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 2 {
		t.Fatalf("derivations = %d, want 2", len(out))
	}
	if out[0].NumNodes() != 3 || out[0].NumEdges() != 3 {
		t.Errorf("alt1 shape = %d/%d, want 3/3", out[0].NumNodes(), out[0].NumEdges())
	}
	if out[1].NumNodes() != 4 || out[1].NumEdges() != 4 {
		t.Errorf("alt2 shape = %d/%d, want 4/4", out[1].NumNodes(), out[1].NumEdges())
	}
}

// TestPathRepetition reproduces Figure 4.6(a): paths of 2..k nodes.
func TestPathRepetition(t *testing.T) {
	gr := NewGrammar()
	gr.Add(PathDef())
	out, err := gr.Derive("Path", 4, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Depth d admits up to d nested Path instantiations: paths of 2..d+2
	// nodes, so depth 4 yields 5 derivations.
	if len(out) != 5 {
		t.Fatalf("derivations = %d, want 5", len(out))
	}
	sizes := map[int]bool{}
	for _, g := range out {
		if g.NumEdges() != g.NumNodes()-1 {
			t.Errorf("not a path: %d nodes, %d edges", g.NumNodes(), g.NumEdges())
		}
		// Path: exactly two degree-1 endpoints, rest degree 2.
		deg1 := 0
		for _, n := range g.Nodes() {
			switch g.Degree(n.ID) {
			case 1:
				deg1++
			case 2:
			default:
				t.Errorf("path node with degree %d", g.Degree(n.ID))
			}
		}
		if deg1 != 2 {
			t.Errorf("path with %d endpoints", deg1)
		}
		sizes[g.NumNodes()] = true
	}
	for want := 2; want <= 6; want++ {
		if !sizes[want] {
			t.Errorf("missing path of %d nodes", want)
		}
	}
}

// TestCycleRepetition: cycles derived from paths (Figure 4.6(a)).
func TestCycleRepetition(t *testing.T) {
	gr := NewGrammar()
	gr.Add(PathDef())
	gr.Add(CycleDef())
	out, err := gr.Derive("Cycle", 5, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) < 3 {
		t.Fatalf("derivations = %d, want >= 3", len(out))
	}
	for _, g := range out {
		if g.NumNodes() < 3 {
			continue // the 2-node "cycle" degenerates to a single edge
		}
		if g.NumEdges() != g.NumNodes() {
			t.Errorf("not a cycle: %d nodes, %d edges", g.NumNodes(), g.NumEdges())
		}
		for _, n := range g.Nodes() {
			if g.Degree(n.ID) != 2 {
				t.Errorf("cycle node with degree %d", g.Degree(n.ID))
			}
		}
	}
}

// TestStarRepetition reproduces G5 of Figure 4.6(b): v0 alone, v0 plus one
// triangle, v0 plus two triangles, ...
func TestStarRepetition(t *testing.T) {
	gr := NewGrammar()
	gr.Add(Simple("G1", triangle()))
	gr.Add(StarDef("G1"))
	out, err := gr.Derive("G5", 6, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Expected sizes: 1, 4, 7, ... nodes (v0 + 3k).
	bySize := map[int]int{}
	for _, g := range out {
		bySize[g.NumNodes()]++
	}
	for _, want := range []int{1, 4, 7} {
		if bySize[want] == 0 {
			t.Errorf("missing G5 derivation with %d nodes (have %v)", want, bySize)
		}
	}
	for _, g := range out {
		k := (g.NumNodes() - 1) / 3
		if wantE := 4 * k; g.NumEdges() != wantE {
			t.Errorf("G5 with %d nodes has %d edges, want %d", g.NumNodes(), g.NumEdges(), wantE)
		}
	}
}

func TestDeriveLimits(t *testing.T) {
	gr := NewGrammar()
	gr.Add(PathDef())
	out, err := gr.Derive("Path", 50, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) > 5 {
		t.Errorf("limit ignored: %d results", len(out))
	}
	// Depth 0 admits nothing (even the base case is one instantiation at
	// the top, which costs no depth — base alt has no subs, so depth 0 is
	// fine and yields the 2-node path).
	out, err = gr.Derive("Path", 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 1 || out[0].NumNodes() != 2 {
		t.Errorf("depth 0: %d derivations", len(out))
	}
}

func TestUndefinedMotif(t *testing.T) {
	gr := NewGrammar()
	if _, err := gr.Derive("nope", 3, 0); err == nil {
		t.Error("undefined motif should error")
	}
	gr.Add(&Def{Name: "bad", Alts: []Body{{
		Subs: []SubSpec{{Motif: "missing"}},
	}}})
	if _, err := gr.Derive("bad", 3, 0); err == nil {
		t.Error("undefined sub-motif should error")
	}
}

func TestUnresolvedReference(t *testing.T) {
	gr := NewGrammar()
	gr.Add(&Def{Name: "bad", Alts: []Body{{
		Nodes: []NodeSpec{{Name: "v1"}},
		Edges: []EdgeSpec{{From: "v1", To: "vX"}},
	}}})
	if _, err := gr.Derive("bad", 1, 0); err == nil {
		t.Error("unresolved node reference should error")
	}
}

func TestAttributedMotifNodes(t *testing.T) {
	g := graph.New("L")
	g.AddNode("v1", graph.TupleOf("", "label", "A"))
	gr := NewGrammar()
	gr.Add(Simple("L", g))
	out, err := gr.Derive("L", 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if out[0].Node(0).Attrs.GetOr("label").AsString() != "A" {
		t.Error("attributes lost in derivation")
	}
}
