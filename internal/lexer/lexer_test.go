package lexer

import (
	"testing"
)

func kinds(t *testing.T, src string) ([]Kind, []string) {
	t.Helper()
	toks, err := Tokenize(src)
	if err != nil {
		t.Fatalf("Tokenize(%q): %v", src, err)
	}
	var ks []Kind
	var txt []string
	for _, tok := range toks {
		ks = append(ks, tok.Kind)
		txt = append(txt, tok.Text)
	}
	return ks, txt
}

func TestBasicTokens(t *testing.T) {
	ks, txt := kinds(t, `graph G1 <a=1>`)
	want := []struct {
		k Kind
		s string
	}{
		{Ident, "graph"}, {Ident, "G1"}, {Punct, "<"},
		{Ident, "a"}, {Punct, "="}, {Int, "1"}, {Punct, ">"}, {EOF, ""},
	}
	if len(ks) != len(want) {
		t.Fatalf("got %d tokens, want %d: %v", len(ks), len(want), txt)
	}
	for i, w := range want {
		if ks[i] != w.k || txt[i] != w.s {
			t.Errorf("token %d = (%v,%q), want (%v,%q)", i, ks[i], txt[i], w.k, w.s)
		}
	}
}

func TestNumbers(t *testing.T) {
	ks, txt := kinds(t, `12 3.5 0.25`)
	if ks[0] != Int || txt[0] != "12" {
		t.Errorf("int: %v %q", ks[0], txt[0])
	}
	if ks[1] != Float || txt[1] != "3.5" {
		t.Errorf("float: %v %q", ks[1], txt[1])
	}
	if ks[2] != Float || txt[2] != "0.25" {
		t.Errorf("float: %v %q", ks[2], txt[2])
	}
}

func TestStringsAndEscapes(t *testing.T) {
	_, txt := kinds(t, `"a\"b" "tab\t" "nl\n" "bs\\"`)
	want := []string{`a"b`, "tab\t", "nl\n", `bs\`}
	for i, w := range want {
		if txt[i] != w {
			t.Errorf("string %d = %q, want %q", i, txt[i], w)
		}
	}
}

// TestGoEscapes covers the strconv.Quote-compatible escape set: anything a
// value renderer emits for a string attribute must lex back to the same
// bytes (invariant enforced continuously by expr.FuzzEval).
func TestGoEscapes(t *testing.T) {
	_, txt := kinds(t, `"\r\a\b\f\v\'" "\x41\xed" "éA" "\U0001F600"`)
	want := []string{"\r\a\b\f\v'", "A\xed", "éA", "\U0001F600"}
	for i, w := range want {
		if txt[i] != w {
			t.Errorf("string %d = %q, want %q", i, txt[i], w)
		}
	}
}

func TestExponentFloats(t *testing.T) {
	ks, txt := kinds(t, `1e-05 2.5E+10 3e7 1e x`)
	want := []struct {
		k Kind
		s string
	}{
		{Float, "1e-05"}, {Float, "2.5E+10"}, {Float, "3e7"},
		// "1e" with no exponent digits keeps the old reading: Int then Ident.
		{Int, "1"}, {Ident, "e"}, {Ident, "x"}, {EOF, ""},
	}
	if len(ks) != len(want) {
		t.Fatalf("got %d tokens, want %d: %v", len(ks), len(want), txt)
	}
	for i, w := range want {
		if ks[i] != w.k || txt[i] != w.s {
			t.Errorf("token %d = (%v,%q), want (%v,%q)", i, ks[i], txt[i], w.k, w.s)
		}
	}
}

func TestMultiCharPunct(t *testing.T) {
	_, txt := kinds(t, `:= == != >= <= < > =`)
	want := []string{":=", "==", "!=", ">=", "<=", "<", ">", "="}
	for i, w := range want {
		if txt[i] != w {
			t.Errorf("punct %d = %q, want %q", i, txt[i], w)
		}
	}
}

func TestComments(t *testing.T) {
	ks, txt := kinds(t, "a // line comment\nb /* block\ncomment */ c")
	var idents []string
	for i, k := range ks {
		if k == Ident {
			idents = append(idents, txt[i])
		}
	}
	if len(idents) != 3 || idents[0] != "a" || idents[1] != "b" || idents[2] != "c" {
		t.Errorf("idents = %v", idents)
	}
}

func TestPositions(t *testing.T) {
	toks, err := Tokenize("a\n  b")
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].Line != 1 || toks[0].Col != 1 {
		t.Errorf("a at %d:%d", toks[0].Line, toks[0].Col)
	}
	if toks[1].Line != 2 || toks[1].Col != 3 {
		t.Errorf("b at %d:%d, want 2:3", toks[1].Line, toks[1].Col)
	}
}

func TestUnicodeIdentifiers(t *testing.T) {
	ks, txt := kinds(t, "naïve_1 β")
	if ks[0] != Ident || txt[0] != "naïve_1" {
		t.Errorf("unicode ident: %v %q", ks[0], txt[0])
	}
	if ks[1] != Ident || txt[1] != "β" {
		t.Errorf("unicode ident: %v %q", ks[1], txt[1])
	}
}

func TestErrors(t *testing.T) {
	for _, src := range []string{
		`"unterminated`,
		`"bad \q"`,
		"\"new\nline\"",
		"@",
		"1.",
		`"trailing \`,
		`"\x4"`,
		`"\uZZZZ"`,
		`"\ud800"`,
		`"\UFFFFFFFF"`,
	} {
		if _, err := Tokenize(src); err == nil {
			t.Errorf("Tokenize(%q): want error", src)
		}
	}
}

func TestTokenString(t *testing.T) {
	toks, _ := Tokenize("x")
	if toks[0].String() != `"x"` {
		t.Errorf("String = %s", toks[0].String())
	}
	if toks[1].String() != "end of input" {
		t.Errorf("EOF String = %s", toks[1].String())
	}
}

// TestTokenizeInvalidUTF8 is the FuzzParse regression: a byte that is not
// valid UTF-8 but whose byte-to-rune conversion is a letter (0xd4 → 'Ô')
// must produce an error, not an infinite loop of empty tokens.
func TestTokenizeInvalidUTF8(t *testing.T) {
	for _, src := range []string{"A\xd4p>\x93\x9a\xb9#\x8a", "\xd4", "x\xff y", "\xc3"} {
		if _, err := Tokenize(src); err == nil {
			t.Errorf("Tokenize(%q): expected error on invalid UTF-8", src)
		}
	}
}
