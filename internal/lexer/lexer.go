// Package lexer tokenizes GraphQL query text (Appendix 4.A). It is a plain
// scanner: keywords are ordinary identifiers (the parser gives them
// meaning), and '<'/'>' are emitted as punctuation that the parser
// interprets as tuple brackets or comparison operators by context.
package lexer

import (
	"fmt"
	"strconv"
	"strings"
	"unicode"
	"unicode/utf8"
)

// Kind classifies a token.
type Kind uint8

// Token kinds.
const (
	EOF Kind = iota
	Ident
	Int
	Float
	Str
	Punct
)

func (k Kind) String() string {
	switch k {
	case EOF:
		return "end of input"
	case Ident:
		return "identifier"
	case Int:
		return "integer"
	case Float:
		return "float"
	case Str:
		return "string"
	case Punct:
		return "punctuation"
	}
	return "?"
}

// Token is one lexical unit. Text holds the identifier, literal text
// (unquoted for strings), or punctuation spelling.
type Token struct {
	Kind Kind
	Text string
	Line int
	Col  int
}

// String renders the token for error messages.
func (t Token) String() string {
	if t.Kind == EOF {
		return "end of input"
	}
	return fmt.Sprintf("%q", t.Text)
}

// multi-character punctuation, longest first.
var multiPunct = []string{":=", "==", "!=", ">=", "<="}

const singlePunct = "{}()<>,;.=|&+-*/:"

// Lexer scans an input string into tokens.
type Lexer struct {
	src  string
	pos  int
	line int
	col  int
}

// New returns a lexer over src.
func New(src string) *Lexer {
	return &Lexer{src: src, line: 1, col: 1}
}

// Tokenize scans the whole input.
func Tokenize(src string) ([]Token, error) {
	lx := New(src)
	var out []Token
	for {
		t, err := lx.Next()
		if err != nil {
			return nil, err
		}
		out = append(out, t)
		if t.Kind == EOF {
			return out, nil
		}
	}
}

func (lx *Lexer) advance(n int) {
	for i := 0; i < n; i++ {
		if lx.src[lx.pos] == '\n' {
			lx.line++
			lx.col = 1
		} else {
			lx.col++
		}
		lx.pos++
	}
}

// Next returns the next token.
func (lx *Lexer) Next() (Token, error) {
	lx.skipSpaceAndComments()
	if lx.pos >= len(lx.src) {
		return Token{Kind: EOF, Line: lx.line, Col: lx.col}, nil
	}
	start := Token{Line: lx.line, Col: lx.col}
	c := lx.src[lx.pos]
	// Classify on the decoded rune, not the raw byte: a byte like 0xd4
	// converts to a letter rune ('Ô') even when it is an invalid UTF-8
	// fragment, which used to send the scanner into ident() where it
	// consumed nothing and looped forever (found by FuzzParse).
	r, _ := utf8.DecodeRuneInString(lx.src[lx.pos:])
	switch {
	case isIdentStart(r) && r != utf8.RuneError:
		return lx.ident(start), nil
	case c >= '0' && c <= '9':
		return lx.number(start)
	case c == '"':
		return lx.str(start)
	}
	for _, p := range multiPunct {
		if strings.HasPrefix(lx.src[lx.pos:], p) {
			lx.advance(len(p))
			start.Kind = Punct
			start.Text = p
			return start, nil
		}
	}
	if strings.IndexByte(singlePunct, c) >= 0 {
		lx.advance(1)
		start.Kind = Punct
		start.Text = string(c)
		return start, nil
	}
	return Token{}, fmt.Errorf("lexer: line %d col %d: unexpected character %q", lx.line, lx.col, c)
}

func (lx *Lexer) skipSpaceAndComments() {
	for lx.pos < len(lx.src) {
		c := lx.src[lx.pos]
		switch {
		case c == ' ' || c == '\t' || c == '\r' || c == '\n':
			lx.advance(1)
		case c == '/' && lx.pos+1 < len(lx.src) && lx.src[lx.pos+1] == '/':
			for lx.pos < len(lx.src) && lx.src[lx.pos] != '\n' {
				lx.advance(1)
			}
		case c == '/' && lx.pos+1 < len(lx.src) && lx.src[lx.pos+1] == '*':
			lx.advance(2)
			for lx.pos+1 < len(lx.src) && !(lx.src[lx.pos] == '*' && lx.src[lx.pos+1] == '/') {
				lx.advance(1)
			}
			if lx.pos+1 < len(lx.src) {
				lx.advance(2)
			}
		default:
			return
		}
	}
}

func isIdentStart(r rune) bool {
	return r == '_' || unicode.IsLetter(r)
}

func isIdentPart(r rune) bool {
	return r == '_' || unicode.IsLetter(r) || unicode.IsDigit(r)
}

func (lx *Lexer) ident(t Token) Token {
	start := lx.pos
	for lx.pos < len(lx.src) {
		r, size := utf8.DecodeRuneInString(lx.src[lx.pos:])
		if !isIdentPart(r) {
			break
		}
		lx.advance(size)
	}
	t.Kind = Ident
	t.Text = lx.src[start:lx.pos]
	return t
}

func (lx *Lexer) number(t Token) (Token, error) {
	start := lx.pos
	kind := Int
	for lx.pos < len(lx.src) && lx.src[lx.pos] >= '0' && lx.src[lx.pos] <= '9' {
		lx.advance(1)
	}
	// A fraction part makes it a float; a '.' followed by a non-digit is
	// left for the parser (qualified names never start with a digit, so
	// "1." is a malformed float).
	if lx.pos < len(lx.src) && lx.src[lx.pos] == '.' {
		if lx.pos+1 < len(lx.src) && lx.src[lx.pos+1] >= '0' && lx.src[lx.pos+1] <= '9' {
			kind = Float
			lx.advance(1)
			for lx.pos < len(lx.src) && lx.src[lx.pos] >= '0' && lx.src[lx.pos] <= '9' {
				lx.advance(1)
			}
		} else {
			return Token{}, fmt.Errorf("lexer: line %d: malformed number", t.Line)
		}
	}
	// An exponent part also makes it a float, so strconv.FormatFloat's 'g'
	// renderings ("1e-05") reparse. A bare "1e" with no digits keeps the
	// old reading: Int followed by an identifier.
	if lx.pos < len(lx.src) && (lx.src[lx.pos] == 'e' || lx.src[lx.pos] == 'E') {
		j := lx.pos + 1
		if j < len(lx.src) && (lx.src[j] == '+' || lx.src[j] == '-') {
			j++
		}
		if j < len(lx.src) && lx.src[j] >= '0' && lx.src[j] <= '9' {
			kind = Float
			for lx.pos < j {
				lx.advance(1)
			}
			for lx.pos < len(lx.src) && lx.src[lx.pos] >= '0' && lx.src[lx.pos] <= '9' {
				lx.advance(1)
			}
		}
	}
	t.Kind = kind
	t.Text = lx.src[start:lx.pos]
	return t, nil
}

func (lx *Lexer) str(t Token) (Token, error) {
	lx.advance(1) // opening quote
	var b strings.Builder
	for lx.pos < len(lx.src) {
		c := lx.src[lx.pos]
		switch c {
		case '"':
			lx.advance(1)
			t.Kind = Str
			t.Text = b.String()
			return t, nil
		case '\\':
			if lx.pos+1 >= len(lx.src) {
				return Token{}, fmt.Errorf("lexer: line %d: unterminated escape", t.Line)
			}
			esc := lx.src[lx.pos+1]
			switch esc {
			case 'n':
				b.WriteByte('\n')
				lx.advance(2)
			case 't':
				b.WriteByte('\t')
				lx.advance(2)
			case 'r':
				b.WriteByte('\r')
				lx.advance(2)
			case 'a':
				b.WriteByte('\a')
				lx.advance(2)
			case 'b':
				b.WriteByte('\b')
				lx.advance(2)
			case 'f':
				b.WriteByte('\f')
				lx.advance(2)
			case 'v':
				b.WriteByte('\v')
				lx.advance(2)
			case '"', '\\', '\'':
				b.WriteByte(esc)
				lx.advance(2)
			case 'x', 'u', 'U':
				// Go-style numeric escapes, so any strconv.Quote rendering
				// of a string value (attribute renderers, PatternToSQL,
				// EXPLAIN output) reparses: \xNN is one raw byte, \uNNNN
				// and \UNNNNNNNN are runes encoded back to UTF-8.
				digits := map[byte]int{'x': 2, 'u': 4, 'U': 8}[esc]
				if lx.pos+2+digits > len(lx.src) {
					return Token{}, fmt.Errorf("lexer: line %d: truncated escape \\%c", t.Line, esc)
				}
				v, err := strconv.ParseUint(lx.src[lx.pos+2:lx.pos+2+digits], 16, 32)
				if err != nil {
					return Token{}, fmt.Errorf("lexer: line %d: malformed escape \\%c%s", t.Line, esc, lx.src[lx.pos+2:lx.pos+2+digits])
				}
				if esc == 'x' {
					b.WriteByte(byte(v))
				} else {
					if v > unicode.MaxRune || (v >= 0xD800 && v <= 0xDFFF) {
						return Token{}, fmt.Errorf("lexer: line %d: escape \\%c out of rune range", t.Line, esc)
					}
					b.WriteRune(rune(v))
				}
				lx.advance(2 + digits)
			default:
				return Token{}, fmt.Errorf("lexer: line %d: unknown escape \\%c", t.Line, esc)
			}
		case '\n':
			return Token{}, fmt.Errorf("lexer: line %d: newline in string literal", t.Line)
		default:
			b.WriteByte(c)
			lx.advance(1)
		}
	}
	return Token{}, fmt.Errorf("lexer: line %d: unterminated string literal", t.Line)
}
