// Package gindex implements a path-feature graph index for collections of
// small graphs — the access method of the paper's first graph-database
// category (§4: "a large collection of small graphs ... A number of graph
// indexing techniques have been proposed to address this challenge",
// citing GraphGrep-style enumerated-path indexing [34]). The index plays
// the role B-trees play for relational databases: a query pattern's path
// features select a small candidate subset of the collection, and only
// candidates undergo the (NP-hard) pattern matching.
//
// The filter is sound for label patterns: every label path of length ≤ L
// occurring in the pattern must occur (with at least the same multiplicity)
// in a containing graph, so non-candidates can be skipped without
// verification.
package gindex

import (
	"sort"
	"strings"

	"gqldb/internal/graph"
	"gqldb/internal/match"
	"gqldb/internal/pattern"
)

// Index is an inverted index from path features to the graphs containing
// them, with per-graph feature counts.
type Index struct {
	// MaxLen is the maximum feature path length in edges (GraphGrep uses
	// small values; 3 is a common default — paths of 1..MaxLen edges plus
	// single-node features).
	MaxLen int
	coll   graph.Collection
	// postings maps a feature to (graph ordinal -> count).
	postings map[string]map[int32]int32
}

// Build enumerates the path features of every graph in the collection.
func Build(c graph.Collection, maxLen int) *Index {
	ix := &Index{MaxLen: maxLen, coll: c, postings: make(map[string]map[int32]int32)}
	for gi, g := range c {
		for f, n := range pathFeatures(g, maxLen) {
			m, ok := ix.postings[f]
			if !ok {
				m = make(map[int32]int32)
				ix.postings[f] = m
			}
			m[int32(gi)] = n
		}
	}
	return ix
}

// Update derives the index for a mutated collection incrementally: the
// postings of graphs whose ordinals are in changed are recomputed (old
// features subtracted, new features added), everything else is shared with
// the receiver copy-on-write. coll must be the receiver's collection with
// only the changed ordinals replaced or appended (len(coll) >= the indexed
// length — drops force a full Build, ordinals shift). An ordinal at or
// past len(coll) marks a pure removal of the old postings. The receiver is
// not modified; the returned index is equivalent to Build(coll, MaxLen).
func (ix *Index) Update(coll graph.Collection, changed []int32) *Index {
	next := &Index{MaxLen: ix.MaxLen, coll: coll, postings: make(map[string]map[int32]int32, len(ix.postings))}
	for f, m := range ix.postings {
		next.postings[f] = m
	}
	// owned marks inner maps already cloned (or freshly created) for next;
	// unowned maps still alias the receiver and must be copied before any
	// write, so concurrent readers of the old index never see the delta.
	owned := make(map[string]bool)
	mutable := func(f string) map[int32]int32 {
		m := next.postings[f]
		if m == nil {
			m = make(map[int32]int32)
			next.postings[f] = m
			owned[f] = true
			return m
		}
		if owned[f] {
			return m
		}
		cp := make(map[int32]int32, len(m)+1)
		for k, v := range m {
			cp[k] = v
		}
		next.postings[f] = cp
		owned[f] = true
		return cp
	}
	for _, ord := range changed {
		if int(ord) < len(ix.coll) {
			for f := range pathFeatures(ix.coll[ord], ix.MaxLen) {
				m := mutable(f)
				delete(m, ord)
				if len(m) == 0 {
					delete(next.postings, f)
					delete(owned, f)
				}
			}
		}
		if int(ord) < len(coll) {
			for f, n := range pathFeatures(coll[ord], ix.MaxLen) {
				mutable(f)[ord] = n
			}
		}
	}
	return next
}

// Equal reports whether two indexes answer every candidate query
// identically: same path length, same collection size and identical
// non-zero postings. Empty inner maps and zero counts are normalized away
// so an incrementally-updated index compares equal to a fresh Build.
func (ix *Index) Equal(other *Index) bool {
	if ix == nil || other == nil {
		return ix == other
	}
	if ix.MaxLen != other.MaxLen || len(ix.coll) != len(other.coll) {
		return false
	}
	norm := func(p map[string]map[int32]int32) map[string]map[int32]int32 {
		out := make(map[string]map[int32]int32, len(p))
		for f, m := range p {
			for ord, n := range m {
				if n == 0 {
					continue
				}
				nm, ok := out[f]
				if !ok {
					nm = make(map[int32]int32, len(m))
					out[f] = nm
				}
				nm[ord] = n
			}
		}
		return out
	}
	a, b := norm(ix.postings), norm(other.postings)
	if len(a) != len(b) {
		return false
	}
	for f, m := range a {
		om, ok := b[f]
		if !ok || len(m) != len(om) {
			return false
		}
		for ord, n := range m {
			if om[ord] != n {
				return false
			}
		}
	}
	return true
}

// pathFeatures counts the label paths of length 0..maxLen edges in g.
// Paths are simple (no repeated node) and counted once per direction-
// normalized occurrence (a path and its reverse are the same feature for
// undirected graphs).
func pathFeatures(g *graph.Graph, maxLen int) map[string]int32 {
	out := make(map[string]int32)
	labels := make([]string, g.NumNodes())
	for i := range labels {
		labels[i] = g.Label(graph.NodeID(i))
		out[labels[i]]++
	}
	// DFS enumeration of simple paths up to maxLen edges from every node.
	onPath := make([]bool, g.NumNodes())
	path := make([]graph.NodeID, 0, maxLen+1)
	var rec func(v graph.NodeID)
	rec = func(v graph.NodeID) {
		path = append(path, v)
		onPath[v] = true
		if len(path) >= 2 {
			if feat, canonical := featureOf(g, labels, path); canonical {
				out[feat]++
			}
		}
		if len(path) <= maxLen {
			for _, h := range g.Adj(v) {
				if !onPath[h.To] {
					rec(h.To)
				}
			}
		}
		onPath[v] = false
		path = path[:len(path)-1]
	}
	for v := 0; v < g.NumNodes(); v++ {
		rec(graph.NodeID(v))
	}
	return out
}

// featureOf renders a path's label string and reports whether this
// traversal is the canonical direction (for undirected graphs each path is
// enumerated in both directions; only the lexicographically-smaller
// rendering counts, with node-ID tie-break so palindromic label paths
// count exactly once).
func featureOf(g *graph.Graph, labels []string, path []graph.NodeID) (string, bool) {
	n := len(path)
	parts := make([]string, n)
	rev := make([]string, n)
	for i, v := range path {
		parts[i] = labels[v]
		rev[n-1-i] = labels[v]
	}
	feat := strings.Join(parts, "\x00")
	if g.Directed {
		return "d:" + feat, true
	}
	featR := strings.Join(rev, "\x00")
	switch {
	case feat < featR:
		return feat, true
	case feat > featR:
		return feat, false
	default:
		// Palindromic labels: canonical iff forward by endpoint node IDs
		// (endpoints of a simple path are distinct).
		return feat, path[0] < path[n-1]
	}
}

// Candidates returns the ordinals of graphs that may contain the pattern:
// for every path feature of the pattern's motif (using constant node
// labels), the graph must contain the feature with at least the same
// count. Patterns with non-constant labels fall back to all graphs.
//
// A nil (or empty) candidate slice with a nil error means the filter
// *proved* no graph can contain the pattern. Degenerate patterns whose
// labelled motif yields zero path features (a node-less pattern — e.g. a
// pure graph-attribute predicate — contributes no features at all) are NOT
// proof of emptiness: such patterns can match any graph, so they fall back
// to the full collection, exactly like patterns with non-constant labels.
func (ix *Index) Candidates(p *pattern.Pattern) ([]int32, error) {
	if err := p.Compile(); err != nil {
		return nil, err
	}
	qg, ok := labelledMotif(p)
	if !ok {
		return ix.all(), nil
	}
	feats := pathFeatures(qg, ix.MaxLen)
	if len(feats) == 0 {
		// Zero features constrain nothing: returning nil here would be
		// indistinguishable from "no candidate graphs" and silently drop
		// every answer of a matchable pattern.
		return ix.all(), nil
	}
	// Start from the rarest feature's posting list and intersect.
	type fc struct {
		f string
		n int32
	}
	ordered := make([]fc, 0, len(feats))
	for f, n := range feats {
		ordered = append(ordered, fc{f, n})
	}
	sort.Slice(ordered, func(i, j int) bool {
		return len(ix.postings[ordered[i].f]) < len(ix.postings[ordered[j].f])
	})
	var cands []int32
	for i, q := range ordered {
		post := ix.postings[q.f]
		if i == 0 {
			for gi, n := range post {
				if n >= q.n {
					cands = append(cands, gi)
				}
			}
			sort.Slice(cands, func(a, b int) bool { return cands[a] < cands[b] })
			continue
		}
		kept := cands[:0]
		for _, gi := range cands {
			if post[gi] >= q.n {
				kept = append(kept, gi)
			}
		}
		cands = kept
		if len(cands) == 0 {
			return nil, nil
		}
	}
	return cands, nil
}

func (ix *Index) all() []int32 {
	out := make([]int32, len(ix.coll))
	for i := range out {
		out[i] = int32(i)
	}
	return out
}

// labelledMotif converts the pattern motif into a labelled graph when every
// node has a constant label constraint.
func labelledMotif(p *pattern.Pattern) (*graph.Graph, bool) {
	m := p.Motif
	g := graph.New("q")
	g.Directed = m.Directed
	for _, n := range m.Nodes() {
		l, ok := p.ConstLabel(n.ID)
		if !ok {
			return nil, false
		}
		g.AddNode(n.Name, graph.TupleOf("", "label", l))
	}
	for _, e := range m.Edges() {
		g.AddEdge(e.Name, e.From, e.To, nil)
	}
	return g, true
}

// Select runs filter-then-verify selection over the indexed collection:
// candidate graphs from the path index, exact matching (with opt) on each.
// It returns the matching graphs' ordinals and the number of candidates
// verified (the filter's work measure).
func (ix *Index) Select(p *pattern.Pattern, opt match.Options) (hits []int32, verified int, err error) {
	cands, err := ix.Candidates(p)
	if err != nil {
		return nil, 0, err
	}
	for _, gi := range cands {
		ok, err := match.Exists(p, ix.coll[gi], nil, opt)
		if err != nil {
			return nil, verified, err
		}
		verified++
		if ok {
			hits = append(hits, gi)
		}
	}
	return hits, verified, nil
}
