package gindex

import (
	"fmt"
	"math/rand"
	"testing"

	"gqldb/internal/graph"
	"gqldb/internal/match"
	"gqldb/internal/pattern"
)

func mkGraph(name string, labels string, edges [][2]int) *graph.Graph {
	g := graph.New(name)
	for _, c := range labels {
		g.AddNode("", graph.TupleOf("", "label", string(c)))
	}
	for _, e := range edges {
		g.AddEdge("", graph.NodeID(e[0]), graph.NodeID(e[1]), nil)
	}
	return g
}

func pathPattern(labels string) *pattern.Pattern {
	p := pattern.New("Q")
	var prev graph.NodeID
	for i, c := range labels {
		id := p.LabelNode("", string(c))
		if i > 0 {
			p.AddEdge("", prev, id, nil, nil)
		}
		prev = id
	}
	return p
}

func TestPathFeatures(t *testing.T) {
	// Triangle A-B-C: 3 single labels, 3 paths of 1 edge, 3 of 2 edges.
	g := mkGraph("t", "ABC", [][2]int{{0, 1}, {1, 2}, {2, 0}})
	feats := pathFeatures(g, 2)
	oneEdge, twoEdge, nodes := 0, 0, 0
	for f, n := range feats {
		switch countSep(f) {
		case 0:
			nodes += int(n)
		case 1:
			oneEdge += int(n)
		case 2:
			twoEdge += int(n)
		}
	}
	if nodes != 3 || oneEdge != 3 || twoEdge != 3 {
		t.Errorf("features = %d/%d/%d, want 3/3/3 (%v)", nodes, oneEdge, twoEdge, feats)
	}
}

func countSep(s string) int {
	n := 0
	for i := 0; i < len(s); i++ {
		if s[i] == 0 {
			n++
		}
	}
	return n
}

func TestPalindromeCountedOnce(t *testing.T) {
	// Path A-B-A: the 2-edge feature A,B,A is palindromic and must count
	// exactly once.
	g := mkGraph("p", "ABA", [][2]int{{0, 1}, {1, 2}})
	feats := pathFeatures(g, 2)
	key := "A\x00B\x00A"
	if feats[key] != 1 {
		t.Errorf("palindromic path counted %d times, want 1", feats[key])
	}
}

func TestCandidatesFilter(t *testing.T) {
	coll := graph.Collection{
		mkGraph("g0", "ABC", [][2]int{{0, 1}, {1, 2}}),         // path A-B-C
		mkGraph("g1", "AB", [][2]int{{0, 1}}),                  // edge A-B
		mkGraph("g2", "ABC", [][2]int{{0, 1}, {1, 2}, {2, 0}}), // triangle
		mkGraph("g3", "XYZ", [][2]int{{0, 1}, {1, 2}}),         // other labels
	}
	ix := Build(coll, 3)
	cands, err := ix.Candidates(pathPattern("ABC"))
	if err != nil {
		t.Fatal(err)
	}
	want := map[int32]bool{0: true, 2: true}
	if len(cands) != 2 || !want[cands[0]] || !want[cands[1]] {
		t.Errorf("candidates = %v, want {0,2}", cands)
	}
	// A pattern absent everywhere filters everything.
	cands, _ = ix.Candidates(pathPattern("ZZZ"))
	if len(cands) != 0 {
		t.Errorf("ZZZ candidates = %v, want none", cands)
	}
}

func TestSelectFilterVerify(t *testing.T) {
	coll := graph.Collection{
		mkGraph("g0", "ABC", [][2]int{{0, 1}, {1, 2}}),
		mkGraph("g1", "ACB", [][2]int{{0, 1}, {1, 2}}), // A-C-B: has A,B,C but not path A-B-C
		mkGraph("g2", "ABC", [][2]int{{0, 1}, {1, 2}, {2, 0}}),
		mkGraph("g3", "AB", [][2]int{{0, 1}}),
	}
	ix := Build(coll, 3)
	hits, verified, err := ix.Select(pathPattern("ABC"), match.Options{})
	if err != nil {
		t.Fatal(err)
	}
	// g1 is filtered by the 2-edge feature; g3 by missing C.
	if verified > 2 {
		t.Errorf("verified %d graphs, filter should leave at most 2", verified)
	}
	if len(hits) != 2 || hits[0] != 0 || hits[1] != 2 {
		t.Errorf("hits = %v, want [0 2]", hits)
	}
}

func TestNonConstLabelFallsBack(t *testing.T) {
	coll := graph.Collection{mkGraph("g0", "AB", [][2]int{{0, 1}})}
	ix := Build(coll, 2)
	p := pattern.New("Q")
	p.AddNode("v", nil, nil) // unconstrained node
	cands, err := ix.Candidates(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(cands) != 1 {
		t.Errorf("fallback should return all graphs, got %v", cands)
	}
}

// TestZeroFeatureFallsBack: a node-less pattern has zero path features, so
// the filter has nothing to intersect. That is "no constraint", not "no
// candidates" — an empty pattern matches every graph once, so returning
// nil there silently dropped every answer.
func TestZeroFeatureFallsBack(t *testing.T) {
	coll := graph.Collection{
		mkGraph("g0", "AB", [][2]int{{0, 1}}),
		mkGraph("g1", "C", nil),
	}
	ix := Build(coll, 2)
	p := pattern.New("Q") // no nodes at all
	cands, err := ix.Candidates(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(cands) != len(coll) {
		t.Fatalf("zero-feature pattern must fall back to all graphs, got %v", cands)
	}
	// End to end: filter+verify agrees with ground truth (every graph).
	hits, _, err := ix.Select(p, match.Options{})
	if err != nil {
		t.Fatal(err)
	}
	var want []int32
	for gi, g := range coll {
		ok, err := match.Exists(p, g, nil, match.Options{})
		if err != nil {
			t.Fatal(err)
		}
		if ok {
			want = append(want, int32(gi))
		}
	}
	if fmt.Sprint(hits) != fmt.Sprint(want) {
		t.Fatalf("filter changed answers for degenerate pattern: %v vs %v", hits, want)
	}
	if len(hits) != len(coll) {
		t.Fatalf("empty pattern must match every graph, got %v", hits)
	}
}

// TestFilterNeverDropsAnswers: cross-validate filter+verify against full
// scan on random collections and extracted patterns (the filter must be
// sound — zero false dismissals).
func TestFilterNeverDropsAnswers(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 20; trial++ {
		var coll graph.Collection
		for i := 0; i < 30; i++ {
			n := 3 + rng.Intn(5)
			g := graph.New(fmt.Sprintf("g%d", i))
			for j := 0; j < n; j++ {
				g.AddNode("", graph.TupleOf("", "label", string(rune('A'+rng.Intn(3)))))
			}
			for j := 1; j < n; j++ {
				g.AddEdge("", graph.NodeID(rng.Intn(j)), graph.NodeID(j), nil)
			}
			coll = append(coll, g)
		}
		// Extract a pattern from a random member so answers exist.
		src := coll[rng.Intn(len(coll))]
		p := pattern.New("Q")
		k := 2 + rng.Intn(2)
		ids := map[graph.NodeID]graph.NodeID{}
		start := graph.NodeID(rng.Intn(src.NumNodes()))
		frontier := []graph.NodeID{start}
		ids[start] = p.LabelNode("", src.Label(start))
		for len(ids) < k && len(frontier) > 0 {
			v := frontier[0]
			frontier = frontier[1:]
			for _, h := range src.Adj(v) {
				if _, ok := ids[h.To]; !ok && len(ids) < k {
					ids[h.To] = p.LabelNode("", src.Label(h.To))
					p.AddEdge("", ids[v], ids[h.To], nil, nil)
					frontier = append(frontier, h.To)
				}
			}
		}
		ix := Build(coll, 3)
		hits, verified, err := ix.Select(p, match.Options{})
		if err != nil {
			t.Fatal(err)
		}
		// Ground truth: scan everything.
		var want []int32
		for gi, g := range coll {
			ok, err := match.Exists(p, g, nil, match.Options{})
			if err != nil {
				t.Fatal(err)
			}
			if ok {
				want = append(want, int32(gi))
			}
		}
		if fmt.Sprint(hits) != fmt.Sprint(want) {
			t.Fatalf("trial %d: filter changed answers: %v vs %v", trial, hits, want)
		}
		if verified > len(coll) {
			t.Fatalf("verified more than collection size")
		}
	}
}

func BenchmarkFilterVsScan(b *testing.B) {
	rng := rand.New(rand.NewSource(8))
	var coll graph.Collection
	for i := 0; i < 2000; i++ {
		n := 5 + rng.Intn(6)
		g := graph.New(fmt.Sprintf("g%d", i))
		for j := 0; j < n; j++ {
			g.AddNode("", graph.TupleOf("", "label", string(rune('A'+rng.Intn(6)))))
		}
		for j := 1; j < n; j++ {
			g.AddEdge("", graph.NodeID(rng.Intn(j)), graph.NodeID(j), nil)
		}
		coll = append(coll, g)
	}
	p := pathPattern("ABCD")
	ix := Build(coll, 3)
	b.Run("indexed", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, err := ix.Select(p, match.Options{}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("scan", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for _, g := range coll {
				if _, err := match.Exists(p, g, nil, match.Options{}); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
}

func randomTestGraph(rng *rand.Rand, name string) *graph.Graph {
	n := 2 + rng.Intn(4)
	labels := make([]byte, n)
	for i := range labels {
		labels[i] = byte('A' + rng.Intn(3))
	}
	var edges [][2]int
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i != j && rng.Intn(3) == 0 {
				edges = append(edges, [2]int{i, j})
			}
		}
	}
	return mkGraph(name, string(labels), edges)
}

// TestUpdateMatchesBuild drives Update through random replace/append
// deltas and checks the incremental index is Equal to a from-scratch
// Build at every step — and that old snapshots of the index are never
// mutated by later updates.
func TestUpdateMatchesBuild(t *testing.T) {
	for _, seed := range []int64{1, 2, 3, 4} {
		rng := rand.New(rand.NewSource(seed))
		coll := make(graph.Collection, 6)
		for i := range coll {
			coll[i] = randomTestGraph(rng, fmt.Sprintf("g%d", i))
		}
		ix := Build(coll, 2)
		for step := 0; step < 30; step++ {
			prev := ix
			prevBuild := Build(prev.coll, 2)
			next := make(graph.Collection, len(coll), len(coll)+1)
			copy(next, coll)
			var changed []int32
			// Replace a random subset.
			for ord := range next {
				if rng.Intn(4) == 0 {
					next[ord] = randomTestGraph(rng, fmt.Sprintf("g%d_%d", ord, step))
					changed = append(changed, int32(ord))
				}
			}
			// Sometimes append a new graph.
			if rng.Intn(3) == 0 {
				next = append(next, randomTestGraph(rng, fmt.Sprintf("a%d", step)))
				changed = append(changed, int32(len(next)-1))
			}
			ix = ix.Update(next, changed)
			coll = next
			if want := Build(coll, 2); !ix.Equal(want) {
				t.Fatalf("seed %d step %d: Update != Build", seed, step)
			}
			if !prev.Equal(prevBuild) {
				t.Fatalf("seed %d step %d: Update mutated the previous index", seed, step)
			}
		}
	}
}

func TestUpdateNoopAndEqualEdgeCases(t *testing.T) {
	coll := graph.Collection{mkGraph("a", "AB", [][2]int{{0, 1}})}
	ix := Build(coll, 2)
	if up := ix.Update(coll, nil); !up.Equal(ix) {
		t.Fatal("empty delta changed the index")
	}
	if ix.Equal(nil) {
		t.Fatal("non-nil Equal nil")
	}
	var nilIx *Index
	if !nilIx.Equal(nil) {
		t.Fatal("nil must Equal nil")
	}
	other := Build(coll, 3)
	if ix.Equal(other) {
		t.Fatal("different MaxLen compared equal")
	}
}
