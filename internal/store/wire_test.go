package store_test

import (
	"bytes"
	"encoding/json"
	"errors"
	"strings"
	"testing"

	"gqldb/internal/graph"
	"gqldb/internal/match"
	"gqldb/internal/pattern"
	"gqldb/internal/store"
)

// wirePattern builds a pattern exercising every wire feature: directed
// motif, node tuples (string and int constraints), an edge tuple, node- and
// edge-level where clauses, and a multi-node residual predicate.
func wirePattern(t testing.TB) *store.WireRequest {
	t.Helper()
	p := abPattern(t)
	req := &store.WireRequest{
		Doc: "db", Shard: 0, Shards: 1, Version: 1, Hash: "feed",
		Pattern: store.EncodePattern(p),
		Options: store.EncodeOptions(match.Optimized()),
	}
	return req
}

// TestWireRequestRoundTrip: encode → decode returns an equivalent request,
// and the decoded pattern compiles to the same predicate structure.
func TestWireRequestRoundTrip(t *testing.T) {
	req := wirePattern(t)
	var buf bytes.Buffer
	if err := store.EncodeRequest(&buf, req); err != nil {
		t.Fatal(err)
	}
	got, err := store.DecodeRequest(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Doc != req.Doc || got.Shard != req.Shard || got.Shards != req.Shards ||
		got.Version != req.Version || got.Hash != req.Hash {
		t.Fatalf("header mismatch: %+v vs %+v", got, req)
	}
	p, err := got.Pattern.Pattern()
	if err != nil {
		t.Fatal(err)
	}
	orig := abPattern(t)
	if err := orig.Compile(); err != nil {
		t.Fatal(err)
	}
	if p.Motif.NumNodes() != orig.Motif.NumNodes() || p.Motif.NumEdges() != orig.Motif.NumEdges() {
		t.Fatalf("motif shape changed: %d/%d nodes, %d/%d edges",
			p.Motif.NumNodes(), orig.Motif.NumNodes(), p.Motif.NumEdges(), orig.Motif.NumEdges())
	}
	opt, err := got.Options.Options()
	if err != nil {
		t.Fatal(err)
	}
	want := match.Optimized()
	if opt.Prune != want.Prune || opt.Order != want.Order || opt.Refine != want.Refine ||
		opt.Exhaustive != want.Exhaustive || opt.FreqGamma != want.FreqGamma {
		t.Fatalf("options changed over the wire: %+v vs %+v", opt, want)
	}
}

// TestWirePatternSearchEquivalence: a pattern decoded from the wire finds
// exactly the mappings the original finds, in the same order — the
// invariant that makes remote answers byte-identical.
func TestWirePatternSearchEquivalence(t *testing.T) {
	coll := randomCollection(30, 7)
	orig := abPattern(t)
	if err := orig.Compile(); err != nil {
		t.Fatal(err)
	}
	enc := store.EncodePattern(orig)
	b, err := json.Marshal(enc)
	if err != nil {
		t.Fatal(err)
	}
	var dec store.WirePattern
	if err := json.Unmarshal(b, &dec); err != nil {
		t.Fatal(err)
	}
	rt, err := dec.Pattern()
	if err != nil {
		t.Fatal(err)
	}
	for gi, g := range coll {
		a, _, err := match.Find(orig, g, nil, match.Optimized())
		if err != nil {
			t.Fatal(err)
		}
		b, _, err := match.Find(rt, g, nil, match.Optimized())
		if err != nil {
			t.Fatal(err)
		}
		if len(a) != len(b) {
			t.Fatalf("graph %d: %d vs %d mappings after round-trip", gi, len(a), len(b))
		}
		for i := range a {
			if len(a[i].Nodes) != len(b[i].Nodes) {
				t.Fatalf("graph %d mapping %d: arity changed", gi, i)
			}
			for j := range a[i].Nodes {
				if a[i].Nodes[j] != b[i].Nodes[j] {
					t.Fatalf("graph %d mapping %d: node %d maps to %d vs %d",
						gi, i, j, a[i].Nodes[j], b[i].Nodes[j])
				}
			}
		}
	}
}

// TestWireResultRoundTrip: EncodeResult → DecodeResult reproduces the
// groups with mappings bound to the local shard's graphs.
func TestWireResultRoundTrip(t *testing.T) {
	coll := randomCollection(20, 11)
	s := store.New(store.Options{Shards: 3})
	s.RegisterDoc("db", coll)
	d, _ := s.Snapshot().Doc("db")
	p := abPattern(t)
	req := store.ShardRequest{Shard: d.Shards()[0], P: p, Opt: match.Optimized(), Workers: 1, Doc: d, Index: 0}
	if err := p.Compile(); err != nil {
		t.Fatal(err)
	}
	res, err := (store.LocalSelector{}).SelectShard(t.Context(), req)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := store.EncodeResult(&buf, &res, 42); err != nil {
		t.Fatal(err)
	}
	got, err := store.DecodeResult(&buf, req)
	if err != nil {
		t.Fatal(err)
	}
	if got.Candidates != res.Candidates {
		t.Fatalf("candidates %d, want %d", got.Candidates, res.Candidates)
	}
	if len(got.Groups) != len(res.Groups) {
		t.Fatalf("groups %d, want %d", len(got.Groups), len(res.Groups))
	}
	for li := range res.Groups {
		a, b := res.Groups[li], got.Groups[li]
		if len(a) != len(b) {
			t.Fatalf("member %d: %d vs %d bindings", li, len(a), len(b))
		}
		for i := range a {
			if a[i].G != b[i].G {
				t.Fatalf("member %d binding %d: rebinding lost the graph pointer", li, i)
			}
			for j := range a[i].M.Nodes {
				if a[i].M.Nodes[j] != b[i].M.Nodes[j] {
					t.Fatalf("member %d binding %d: mapping changed", li, i)
				}
			}
		}
	}
}

// TestWireDecodeRejects: malformed requests and frames come back as typed
// *WireError values, never as panics or silent acceptance.
func TestWireDecodeRejects(t *testing.T) {
	badReqs := []string{
		``,
		`{`,
		`{"doc":""}`,
		`{"doc":"db","shard":-1,"shards":3}`,
		`{"doc":"db","shard":3,"shards":3}`,
		`{"doc":"db","shard":0,"shards":0}`,
		`{"doc":"db","shard":0,"shards":99999999}`,
	}
	for _, src := range badReqs {
		_, err := store.DecodeRequest(strings.NewReader(src))
		var we *store.WireError
		if !errors.As(err, &we) {
			t.Fatalf("DecodeRequest(%q): got %v, want *WireError", src, err)
		}
	}
	badFrames := []string{
		``,
		`not json`,
		`{"t":"mystery"}`,
		`{"t":"group","ord":-1}`,
		`{"t":"group","ord":0,"matches":[{"n":[-1]}]}`,
		`{"t":"group","ord":0,"matches":[{"n":[0],"e":[-2]}]}`,
		`{"t":"done","candidates":-1}`,
		`{"t":"error"}`,
	}
	for _, src := range badFrames {
		_, err := store.DecodeFrame([]byte(src))
		var we *store.WireError
		if !errors.As(err, &we) {
			t.Fatalf("DecodeFrame(%q): got %v, want *WireError", src, err)
		}
	}
	// A malformed pattern: an edge referencing an undeclared node.
	wp := store.WirePattern{
		Name:  "P",
		Nodes: []store.WireNode{{Name: "a"}},
		Edges: []store.WireEdge{{Name: "e", From: "a", To: "ghost"}},
	}
	if _, err := wp.Pattern(); err == nil {
		t.Fatal("dangling edge endpoint accepted")
	}
	// An unparseable predicate.
	wp = store.WirePattern{Name: "P", Nodes: []store.WireNode{{Name: "a"}}, Where: "((("}
	var we *store.WireError
	if _, err := wp.Pattern(); !errors.As(err, &we) {
		t.Fatal("unparseable predicate not a *WireError")
	}
}

// TestWireValueKinds: every value kind survives the typed encoding.
func TestWireValueKinds(t *testing.T) {
	tup := graph.NewTuple("tag")
	tup.Set("i", graph.Int(-7))
	tup.Set("f", graph.Float(2.5))
	tup.Set("s", graph.String("x y"))
	tup.Set("b", graph.Bool(true))
	tup.Set("n", graph.Null)
	tp := pattern.New("P")
	tp.AddNode("a", tup, nil)
	enc := store.EncodePattern(tp)
	b, err := json.Marshal(enc)
	if err != nil {
		t.Fatal(err)
	}
	var dec store.WirePattern
	if err := json.Unmarshal(b, &dec); err != nil {
		t.Fatal(err)
	}
	rt, err := dec.Pattern()
	if err != nil {
		t.Fatal(err)
	}
	got := rt.Motif.Node(0).Attrs
	if got == nil || got.Tag != "tag" || got.Len() != tup.Len() {
		t.Fatalf("tuple shape lost: %v", got)
	}
	for i := 0; i < tup.Len(); i++ {
		a, g := tup.At(i), got.At(i)
		if a.Name != g.Name || a.Val.Kind() != g.Val.Kind() {
			t.Fatalf("attr %d changed: %v vs %v", i, a, g)
		}
	}
}
