// The multi-process wire protocol over the ShardSelector seam.
//
// A selection request travels as one JSON object carrying the pattern by
// source parts (motif structure plus the predicate as expression source
// text — the paper's graphs-at-a-time framing keeps the unit of work a
// whole-graph selection, so one small request describes an entire shard's
// job), the shard assignment (document name, shard ordinal, partition
// width), the serializable matching options, and the version handshake
// (the frontend's store version plus the document's content hash). The
// response is NDJSON: one "group" frame per shard-local member graph with
// matches, in ascending local ordinal, then a terminal "done" or "error"
// frame. Mappings travel as node/edge ID arrays; the frontend re-binds
// them to its own graph pointers, so merged results are byte-identical to
// the in-process coordinator.
//
// Decoding never trusts the peer: every decoder returns a typed *WireError
// for malformed input (never panics), counts are bounded, and references
// (node names, ordinals, IDs) are validated before use.
package store

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"

	"gqldb/internal/algebra"
	"gqldb/internal/graph"
	"gqldb/internal/match"
	"gqldb/internal/parser"
	"gqldb/internal/pattern"
)

// Wire protocol hard bounds: a frame that exceeds them is malformed, not
// merely large — the decoder rejects it before allocating proportionally.
const (
	// maxWireElems bounds pattern nodes/edges and attributes per tuple.
	maxWireElems = 1 << 16
	// maxWireMatches bounds mappings per member graph in one group frame.
	maxWireMatches = 1 << 24
	// maxWireLine bounds one NDJSON response line in bytes.
	maxWireLine = 64 << 20
)

// WireError is the typed decode error of the shard wire protocol: any
// malformed request or response frame decodes to one of these (wrapping
// the underlying cause), never to a panic.
type WireError struct {
	Reason string
	Err    error
}

func (e *WireError) Error() string {
	if e.Err != nil {
		return fmt.Sprintf("store: wire: %s: %v", e.Reason, e.Err)
	}
	return "store: wire: " + e.Reason
}

// Unwrap exposes the underlying cause to errors.Is/As.
func (e *WireError) Unwrap() error { return e.Err }

func wireErrf(format string, args ...any) *WireError {
	return &WireError{Reason: fmt.Sprintf(format, args...)}
}

// WireValue is one attribute value in its typed JSON form. Exactly the
// field named by Kind is meaningful; the others stay at their zero values.
type WireValue struct {
	// Kind is "null", "int", "float", "string" or "bool".
	Kind string  `json:"k"`
	Int  int64   `json:"i,omitempty"`
	Flt  float64 `json:"f,omitempty"`
	Str  string  `json:"s,omitempty"`
	Bool bool    `json:"b,omitempty"`
}

// wireValue encodes a graph value.
func wireValue(v graph.Value) WireValue {
	switch v.Kind() {
	case graph.KindInt:
		return WireValue{Kind: "int", Int: v.AsInt()}
	case graph.KindFloat:
		return WireValue{Kind: "float", Flt: v.AsFloat()}
	case graph.KindString:
		return WireValue{Kind: "string", Str: v.AsString()}
	case graph.KindBool:
		return WireValue{Kind: "bool", Bool: v.AsBool()}
	}
	return WireValue{Kind: "null"}
}

// Value decodes the wire form back into a graph value.
func (w WireValue) Value() (graph.Value, error) {
	switch w.Kind {
	case "null":
		return graph.Null, nil
	case "int":
		return graph.Int(w.Int), nil
	case "float":
		return graph.Float(w.Flt), nil
	case "string":
		return graph.String(w.Str), nil
	case "bool":
		return graph.Bool(w.Bool), nil
	}
	return graph.Null, wireErrf("unknown value kind %q", w.Kind)
}

// WireAttr is one name/value pair of a tuple.
type WireAttr struct {
	Name string    `json:"n"`
	Val  WireValue `json:"v"`
}

// WireTuple is an attribute tuple: the tag plus the attributes in
// declaration order (order matters — the receiving Compile derives
// equality conjuncts by iterating it).
type WireTuple struct {
	Tag   string     `json:"tag,omitempty"`
	Attrs []WireAttr `json:"attrs,omitempty"`
}

// wireTuple encodes a tuple (nil stays nil).
func wireTuple(t *graph.Tuple) *WireTuple {
	if t == nil {
		return nil
	}
	out := &WireTuple{Tag: t.Tag}
	for i := 0; i < t.Len(); i++ {
		a := t.At(i)
		out.Attrs = append(out.Attrs, WireAttr{Name: a.Name, Val: wireValue(a.Val)})
	}
	return out
}

// tuple decodes back into a graph tuple (nil stays nil).
func (w *WireTuple) tuple() (*graph.Tuple, error) {
	if w == nil {
		return nil, nil
	}
	if len(w.Attrs) > maxWireElems {
		return nil, wireErrf("tuple has %d attributes (max %d)", len(w.Attrs), maxWireElems)
	}
	t := graph.NewTuple(w.Tag)
	for _, a := range w.Attrs {
		v, err := a.Val.Value()
		if err != nil {
			return nil, err
		}
		t.Set(a.Name, v)
	}
	return t, nil
}

// WireNode is one motif node of a pattern.
type WireNode struct {
	Name  string     `json:"name"`
	Tuple *WireTuple `json:"tuple,omitempty"`
}

// WireEdge is one motif edge, endpoints by node name.
type WireEdge struct {
	Name  string     `json:"name"`
	From  string     `json:"from"`
	To    string     `json:"to"`
	Tuple *WireTuple `json:"tuple,omitempty"`
}

// WirePattern carries a pattern by its construction parts: the motif
// (nodes and edges with their constraint tuples) plus the predicate as
// expression source text (Pattern.WhereSource). Decoding replays the
// construction and compiles, yielding a pattern whose compiled form —
// pushed-down conjunct order included — matches the original, so shard-
// side search enumerates matches in exactly the frontend's order.
type WirePattern struct {
	Name     string     `json:"name"`
	Directed bool       `json:"directed,omitempty"`
	Nodes    []WireNode `json:"nodes"`
	Edges    []WireEdge `json:"edges,omitempty"`
	Where    string     `json:"where,omitempty"`
}

// EncodePattern lowers a pattern to its wire form.
func EncodePattern(p *pattern.Pattern) WirePattern {
	out := WirePattern{
		Name:     p.Name,
		Directed: p.Motif.Directed,
		Where:    p.WhereSource(),
	}
	for _, n := range p.Motif.Nodes() {
		out.Nodes = append(out.Nodes, WireNode{Name: n.Name, Tuple: wireTuple(n.Attrs)})
	}
	for _, e := range p.Motif.Edges() {
		out.Edges = append(out.Edges, WireEdge{
			Name:  e.Name,
			From:  p.Motif.Node(e.From).Name,
			To:    p.Motif.Node(e.To).Name,
			Tuple: wireTuple(e.Attrs),
		})
	}
	return out
}

// Pattern rebuilds and compiles the pattern. Malformed wire forms (dangling
// edge endpoints, bad values, unparseable predicates) return a *WireError.
func (w WirePattern) Pattern() (*pattern.Pattern, error) {
	if len(w.Nodes) > maxWireElems || len(w.Edges) > maxWireElems {
		return nil, wireErrf("pattern has %d nodes / %d edges (max %d)", len(w.Nodes), len(w.Edges), maxWireElems)
	}
	var p *pattern.Pattern
	if w.Directed {
		p = pattern.NewDirected(w.Name)
	} else {
		p = pattern.New(w.Name)
	}
	ids := make(map[string]graph.NodeID, len(w.Nodes))
	for _, n := range w.Nodes {
		if _, dup := ids[n.Name]; dup {
			return nil, wireErrf("pattern declares node %q twice", n.Name)
		}
		t, err := n.Tuple.tuple()
		if err != nil {
			return nil, err
		}
		ids[n.Name] = p.AddNode(n.Name, t, nil)
	}
	for _, e := range w.Edges {
		from, okF := ids[e.From]
		to, okT := ids[e.To]
		if !okF || !okT {
			return nil, wireErrf("pattern edge %q references undeclared node", e.Name)
		}
		t, err := e.Tuple.tuple()
		if err != nil {
			return nil, err
		}
		p.AddEdge(e.Name, from, to, t, nil)
	}
	if w.Where != "" {
		e, err := parser.ParseExpr(w.Where)
		if err != nil {
			return nil, &WireError{Reason: "pattern predicate does not parse", Err: err}
		}
		p.Where(e)
	}
	if err := p.Compile(); err != nil {
		return nil, &WireError{Reason: "pattern does not compile", Err: err}
	}
	return p, nil
}

// WireOptions is the serializable subset of match.Options. Plans and
// PlanEpoch stay process-local (each shard server fences its own plan
// cache on its own store version); CollectStats is irrelevant shard-side
// (the per-shard stats the coordinator aggregates travel in the done
// frame's candidate count).
type WireOptions struct {
	Exhaustive  bool    `json:"exhaustive,omitempty"`
	Limit       int     `json:"limit,omitempty"`
	Prune       uint8   `json:"prune,omitempty"`
	Refine      bool    `json:"refine,omitempty"`
	RefineLevel int     `json:"refine_level,omitempty"`
	Order       uint8   `json:"order,omitempty"`
	Gamma       float64 `json:"gamma,omitempty"`
	FreqGamma   bool    `json:"freq_gamma,omitempty"`
	AdjIterate  bool    `json:"adj_iterate,omitempty"`
}

// EncodeOptions lowers match options to the wire subset.
func EncodeOptions(o match.Options) WireOptions {
	return WireOptions{
		Exhaustive:  o.Exhaustive,
		Limit:       o.Limit,
		Prune:       uint8(o.Prune),
		Refine:      o.Refine,
		RefineLevel: o.RefineLevel,
		Order:       uint8(o.Order),
		Gamma:       o.Gamma,
		FreqGamma:   o.FreqGamma,
		AdjIterate:  o.AdjIterate,
	}
}

// Options rebuilds match options (Plans/PlanEpoch left zero for the shard
// server to fill from its own cache).
func (w WireOptions) Options() (match.Options, error) {
	if w.Prune > uint8(match.PruneSubgraph) {
		return match.Options{}, wireErrf("unknown prune mode %d", w.Prune)
	}
	if w.Order > uint8(match.OrderDP) {
		return match.Options{}, wireErrf("unknown order mode %d", w.Order)
	}
	if w.Limit < 0 || w.RefineLevel < 0 {
		return match.Options{}, wireErrf("negative limit or refine level")
	}
	return match.Options{
		Exhaustive:  w.Exhaustive,
		Limit:       w.Limit,
		Prune:       match.LocalPrune(w.Prune),
		Refine:      w.Refine,
		RefineLevel: w.RefineLevel,
		Order:       match.OrderMode(w.Order),
		Gamma:       w.Gamma,
		FreqGamma:   w.FreqGamma,
		AdjIterate:  w.AdjIterate,
	}, nil
}

// WireRequest is one shard's selection job: POST /shard/select body.
type WireRequest struct {
	// Doc names the document; Shard is the ordinal in its partition and
	// Shards the partition width (both sides must have partitioned the same
	// collection the same way — Shards is the topology check).
	Doc    string `json:"doc"`
	Shard  int    `json:"shard"`
	Shards int    `json:"shards"`
	// Version is the frontend's install version for the document and Hash
	// its content hash — the per-request staleness handshake. A shard whose
	// mirror hashes differently answers with a "stale" error frame and is
	// resynced before the retry.
	Version uint64 `json:"version"`
	Hash    string `json:"hash"`
	// Workers bounds the shard-local fan-out (<=0 means 1).
	Workers int         `json:"workers,omitempty"`
	Pattern WirePattern `json:"pattern"`
	Options WireOptions `json:"options"`
}

// EncodeRequest writes the request as one JSON object.
func EncodeRequest(w io.Writer, req *WireRequest) error {
	return json.NewEncoder(w).Encode(req)
}

// DecodeRequest reads and validates one request from r (the shard server's
// request body, already size-capped by the HTTP layer). Malformed input
// returns a *WireError.
func DecodeRequest(r io.Reader) (*WireRequest, error) {
	dec := json.NewDecoder(r)
	var req WireRequest
	if err := dec.Decode(&req); err != nil {
		return nil, &WireError{Reason: "request does not decode", Err: err}
	}
	if req.Doc == "" {
		return nil, wireErrf("request names no document")
	}
	if req.Shards < 1 || req.Shard < 0 || req.Shard >= req.Shards {
		return nil, wireErrf("shard %d out of range of %d", req.Shard, req.Shards)
	}
	if req.Shards > maxWireElems {
		return nil, wireErrf("partition width %d exceeds %d", req.Shards, maxWireElems)
	}
	return &req, nil
}

// WireMatch is one mapping: data node IDs per pattern node, witness edge
// IDs per pattern edge.
type WireMatch struct {
	Nodes []graph.NodeID `json:"n"`
	Edges []graph.EdgeID `json:"e,omitempty"`
}

// WireFrame is one NDJSON response line. T discriminates:
//
//   - "group": matches of shard-local member Ord, ascending Ord order
//   - "done": terminal success (Candidates = members verified after the
//     shard-index filter, Version = the shard's store version)
//   - "error": terminal failure; Code is machine-readable ("stale",
//     "unknown_doc", "topology", "bad_request", "canceled", "internal"),
//     and a stale frame carries the shard's Version and Hash for the
//     resync decision
type WireFrame struct {
	T          string      `json:"t"`
	Ord        int         `json:"ord,omitempty"`
	Matches    []WireMatch `json:"matches,omitempty"`
	Candidates int         `json:"candidates,omitempty"`
	Version    uint64      `json:"version,omitempty"`
	Hash       string      `json:"hash,omitempty"`
	Code       string      `json:"code,omitempty"`
	Message    string      `json:"message,omitempty"`
}

// Stale-handshake and failure codes of the "error" frame.
const (
	WireCodeStale      = "stale"
	WireCodeUnknownDoc = "unknown_doc"
	WireCodeTopology   = "topology"
	WireCodeBadRequest = "bad_request"
	WireCodeCanceled   = "canceled"
	WireCodeInternal   = "internal"
)

// DecodeFrame parses one NDJSON line. Malformed frames (bad JSON, unknown
// discriminator, out-of-range ordinals or counts) return a *WireError.
func DecodeFrame(line []byte) (*WireFrame, error) {
	if len(line) > maxWireLine {
		return nil, wireErrf("frame of %d bytes exceeds %d", len(line), maxWireLine)
	}
	var f WireFrame
	if err := json.Unmarshal(line, &f); err != nil {
		return nil, &WireError{Reason: "frame does not decode", Err: err}
	}
	switch f.T {
	case "group":
		if f.Ord < 0 {
			return nil, wireErrf("group frame with negative ordinal %d", f.Ord)
		}
		if len(f.Matches) > maxWireMatches {
			return nil, wireErrf("group frame with %d matches (max %d)", len(f.Matches), maxWireMatches)
		}
		for _, m := range f.Matches {
			if len(m.Nodes) > maxWireElems || len(m.Edges) > maxWireElems {
				return nil, wireErrf("mapping with %d nodes / %d edges (max %d)", len(m.Nodes), len(m.Edges), maxWireElems)
			}
			for _, id := range m.Nodes {
				if id < 0 {
					return nil, wireErrf("mapping with negative node id %d", id)
				}
			}
			for _, id := range m.Edges {
				if id < 0 {
					return nil, wireErrf("mapping with negative edge id %d", id)
				}
			}
		}
	case "done":
		if f.Candidates < 0 {
			return nil, wireErrf("done frame with negative candidate count")
		}
	case "error":
		if f.Code == "" {
			return nil, wireErrf("error frame without a code")
		}
	default:
		return nil, wireErrf("unknown frame type %q", f.T)
	}
	return &f, nil
}

// EncodeFrame writes f as one NDJSON line.
func EncodeFrame(w io.Writer, f *WireFrame) error {
	b, err := json.Marshal(f)
	if err != nil {
		return err
	}
	b = append(b, '\n')
	_, err = w.Write(b)
	return err
}

// EncodeResult streams a shard result as response frames: one group line
// per member with matches (ascending local ordinal — the order the
// coordinator's merge expects), then the done line.
func EncodeResult(w io.Writer, res *ShardResult, version uint64) error {
	for ord, group := range res.Groups {
		if len(group) == 0 {
			continue
		}
		f := WireFrame{T: "group", Ord: ord, Matches: make([]WireMatch, len(group))}
		for i, m := range group {
			f.Matches[i] = WireMatch{Nodes: m.M.Nodes, Edges: m.M.Edges}
		}
		if err := EncodeFrame(w, &f); err != nil {
			return err
		}
	}
	return EncodeFrame(w, &WireFrame{T: "done", Candidates: res.Candidates, Version: version})
}

// DecodeResult reads response frames until the terminal frame, rebinding
// mappings to the frontend's own shard (graph pointers and compiled
// pattern), so the assembled ShardResult is indistinguishable from a
// LocalSelector answer. An "error" frame surfaces as *ShardRemoteError;
// a malformed stream as *WireError.
func DecodeResult(r io.Reader, req ShardRequest) (ShardResult, error) {
	sh := req.Shard
	res := ShardResult{Groups: make([]algebra.Matched, len(sh.Coll))}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), maxWireLine)
	lastOrd := -1
	for sc.Scan() { //gqlvet:ignore ctxpoll -- reads a finite HTTP response body; the per-attempt request context deadlines the transport, and EOF ends the scan
		f, err := DecodeFrame(sc.Bytes())
		if err != nil {
			return res, err
		}
		switch f.T {
		case "group":
			if f.Ord >= len(sh.Coll) {
				return res, wireErrf("group ordinal %d outside shard of %d members", f.Ord, len(sh.Coll))
			}
			if f.Ord <= lastOrd {
				return res, wireErrf("group ordinals not ascending (%d after %d)", f.Ord, lastOrd)
			}
			lastOrd = f.Ord
			g := sh.Coll[f.Ord]
			group := make(algebra.Matched, 0, len(f.Matches))
			for _, m := range f.Matches {
				for _, id := range m.Nodes {
					if int(id) >= g.NumNodes() {
						return res, wireErrf("mapping node id %d outside graph of %d nodes", id, g.NumNodes())
					}
				}
				for _, id := range m.Edges {
					if int(id) >= g.NumEdges() {
						return res, wireErrf("mapping edge id %d outside graph of %d edges", id, g.NumEdges())
					}
				}
				group = append(group, &algebra.MatchedGraph{
					P: req.P, G: g,
					M: match.Mapping{Nodes: m.Nodes, Edges: m.Edges},
				})
			}
			res.Groups[f.Ord] = group
		case "done":
			res.Candidates = f.Candidates
			return res, nil
		case "error":
			return res, &ShardRemoteError{Code: f.Code, Message: f.Message, Version: f.Version, Hash: f.Hash}
		}
	}
	if err := sc.Err(); err != nil {
		return res, &WireError{Reason: "response stream", Err: err}
	}
	return res, wireErrf("response ended without a terminal frame")
}

// ShardRemoteError is an error frame answered by a shard server — the
// machine-readable half of the wire protocol's failure paths. IsStale
// identifies the handshake mismatch the client resolves by resyncing.
type ShardRemoteError struct {
	Code    string
	Message string
	// Version and Hash describe the shard's mirror on a stale answer.
	Version uint64
	Hash    string
}

func (e *ShardRemoteError) Error() string {
	return fmt.Sprintf("store: shard answered %s: %s", e.Code, e.Message)
}

// IsStale reports whether the shard rejected the request over the version
// handshake (its mirror content diverged from the frontend's document).
func (e *ShardRemoteError) IsStale() bool {
	return e.Code == WireCodeStale || e.Code == WireCodeUnknownDoc
}

// errIsStale reports whether err carries a stale/unknown-doc shard answer.
func errIsStale(err error) bool {
	var re *ShardRemoteError
	return errors.As(err, &re) && re.IsStale()
}
