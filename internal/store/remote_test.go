package store_test

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"gqldb/internal/exec"
	"gqldb/internal/graph"
	"gqldb/internal/shardsrv"
	"gqldb/internal/store"
)

// startCluster launches n in-process shard servers (httptest), each
// mirroring the given documents at the given partition width, and returns
// their base URLs.
func startCluster(t testing.TB, n, shards int, docs map[string]graph.Collection) []string {
	t.Helper()
	urls := make([]string, n)
	for i := 0; i < n; i++ {
		srv := shardsrv.New(shardsrv.Config{Shards: shards, IndexMaxLen: 2})
		for name, c := range docs {
			srv.RegisterDoc(name, c)
		}
		hs := httptest.NewServer(srv)
		t.Cleanup(hs.Close)
		urls[i] = hs.URL
	}
	return urls
}

// remoteEngine builds a cluster frontend: a store partitioned at the given
// width with a RemoteSelector over the endpoints.
func remoteEngine(shards int, endpoints []string, docs map[string]graph.Collection) (*exec.Engine, *store.RemoteSelector) {
	eng := exec.NewOver(store.New(store.Options{Shards: shards}))
	for name, c := range docs {
		eng.Docs.RegisterDoc(name, c)
	}
	rs := store.NewRemoteSelector(endpoints)
	eng.Selector = rs
	return eng, rs
}

// TestRemoteSelectorGrid is the oracle: across a shards × workers grid, a
// frontend fanning selection to a 3-process cluster renders byte-identical
// results to the embedded single-process engine.
func TestRemoteSelectorGrid(t *testing.T) {
	docs := map[string]graph.Collection{"db": randomCollection(60, 5)}
	// The embedded oracle: unsharded, serial.
	oracle := exec.NewOver(store.New(store.Options{}))
	oracle.Docs.RegisterDoc("db", docs["db"])
	want, err := oracle.RunQuery(t.Context(), storeQuery)
	if err != nil {
		t.Fatal(err)
	}
	wantS := renderResult(want)

	for _, shards := range []int{1, 3, 7} {
		endpoints := startCluster(t, 3, shards, docs)
		for _, workers := range []int{0, 2, 8} {
			eng, _ := remoteEngine(shards, endpoints, docs)
			eng.Workers = workers
			got, err := eng.RunQuery(t.Context(), storeQuery)
			if err != nil {
				t.Fatalf("shards=%d workers=%d: %v", shards, workers, err)
			}
			if gotS := renderResult(got); gotS != wantS {
				t.Fatalf("shards=%d workers=%d: cluster diverged from embedded engine\n got: %q\nwant: %q",
					shards, workers, gotS, wantS)
			}
		}
	}
}

// TestRemoteSelectorResync: shard servers started empty converge on first
// contact (unknown_doc → sync → retry), and a frontend RegisterDoc makes
// the mirrors stale and re-converges them — results correct both times.
func TestRemoteSelectorResync(t *testing.T) {
	collA := randomCollection(40, 9)
	endpoints := startCluster(t, 3, 4, nil) // empty mirrors
	docs := map[string]graph.Collection{"db": collA}
	eng, _ := remoteEngine(4, endpoints, docs)

	oracle := exec.NewOver(store.New(store.Options{}))
	oracle.Docs.RegisterDoc("db", collA)
	want, err := oracle.RunQuery(t.Context(), storeQuery)
	if err != nil {
		t.Fatal(err)
	}
	got, err := eng.RunQuery(t.Context(), storeQuery)
	if err != nil {
		t.Fatalf("query against empty mirrors did not converge: %v", err)
	}
	if renderResult(got) != renderResult(want) {
		t.Fatal("post-sync cluster result diverged from embedded engine")
	}

	// Mutate the frontend's document: mirrors are now stale and must
	// resync through the version handshake.
	collB := randomCollection(25, 31)
	eng.Docs.RegisterDoc("db", collB)
	oracle.Docs.RegisterDoc("db", collB)
	want, err = oracle.RunQuery(t.Context(), storeQuery)
	if err != nil {
		t.Fatal(err)
	}
	got, err = eng.RunQuery(t.Context(), storeQuery)
	if err != nil {
		t.Fatalf("query after RegisterDoc did not resync: %v", err)
	}
	if renderResult(got) != renderResult(want) {
		t.Fatal("post-RegisterDoc cluster result diverged from embedded engine")
	}
}

// TestRemoteSelectorRetry: with one endpoint dead, retry rotation reaches
// a replica and the query still answers correctly.
func TestRemoteSelectorRetry(t *testing.T) {
	docs := map[string]graph.Collection{"db": randomCollection(40, 13)}
	endpoints := startCluster(t, 2, 3, docs)
	dead := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		panic("unreachable") // closed below; nothing should ever arrive
	}))
	deadURL := dead.URL
	dead.Close()
	// The dead endpoint first: every shard's primary attempt fails and the
	// retry rotation must carry it to a live replica.
	eng, rs := remoteEngine(3, append([]string{deadURL}, endpoints...), docs)
	rs.SetRetries(2)

	oracle := exec.NewOver(store.New(store.Options{}))
	oracle.Docs.RegisterDoc("db", docs["db"])
	want, err := oracle.RunQuery(t.Context(), storeQuery)
	if err != nil {
		t.Fatal(err)
	}
	got, err := eng.RunQuery(t.Context(), storeQuery)
	if err != nil {
		t.Fatalf("retry rotation did not reach a replica: %v", err)
	}
	if renderResult(got) != renderResult(want) {
		t.Fatal("retried cluster result diverged from embedded engine")
	}
}

// TestRemoteSelectorFailure: with every endpoint dead and no partial mode,
// the query fails with a typed per-shard error report.
func TestRemoteSelectorFailure(t *testing.T) {
	docs := map[string]graph.Collection{"db": randomCollection(10, 17)}
	dead := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	deadURL := dead.URL
	dead.Close()
	eng, rs := remoteEngine(2, []string{deadURL}, docs)
	rs.SetRetries(0)
	rs.SetTimeout(500 * time.Millisecond)

	_, err := eng.RunQuery(t.Context(), storeQuery)
	if err == nil {
		t.Fatal("query against a dead cluster succeeded")
	}
	var se *store.ShardError
	if !errors.As(err, &se) {
		t.Fatalf("error is %T (%v), want *store.ShardError", err, err)
	}
	if se.Doc != "db" || se.Attempts < 1 || se.Endpoint == "" {
		t.Fatalf("incomplete shard error report: %+v", se)
	}
}

// TestRemoteSelectorPartial: under allow-partial, a dead cluster degrades
// to an empty answer instead of failing.
func TestRemoteSelectorPartial(t *testing.T) {
	docs := map[string]graph.Collection{"db": randomCollection(10, 19)}
	dead := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	deadURL := dead.URL
	dead.Close()
	eng, rs := remoteEngine(2, []string{deadURL}, docs)
	rs.SetRetries(0)
	rs.SetTimeout(500 * time.Millisecond)
	rs.SetAllowPartial(true)

	res, err := eng.RunQuery(t.Context(), storeQuery)
	if err != nil {
		t.Fatalf("allow-partial query failed: %v", err)
	}
	if len(res.Out) != 0 {
		t.Fatalf("degraded answer has %d results, want 0", len(res.Out))
	}
}

// TestRemoteSelectorHedge: a slow primary is overtaken by the hedged
// replica, and the answer stays byte-identical.
func TestRemoteSelectorHedge(t *testing.T) {
	docs := map[string]graph.Collection{"db": randomCollection(40, 23)}
	fast := startCluster(t, 1, 2, docs)
	// The slow primary: a delaying proxy in front of a real shard server.
	backend := shardsrv.New(shardsrv.Config{Shards: 2})
	for name, c := range docs {
		backend.RegisterDoc(name, c)
	}
	slow := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		select {
		case <-r.Context().Done():
			return
		case <-time.After(2 * time.Second):
		}
		backend.ServeHTTP(w, r)
	}))
	t.Cleanup(slow.Close)

	eng, rs := remoteEngine(2, []string{slow.URL, fast[0]}, docs)
	rs.SetHedgeAfter(20 * time.Millisecond)
	rs.SetRetries(0)

	oracle := exec.NewOver(store.New(store.Options{}))
	oracle.Docs.RegisterDoc("db", docs["db"])
	want, err := oracle.RunQuery(t.Context(), storeQuery)
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	got, err := eng.RunQuery(t.Context(), storeQuery)
	if err != nil {
		t.Fatalf("hedged query failed: %v", err)
	}
	if renderResult(got) != renderResult(want) {
		t.Fatal("hedged cluster result diverged from embedded engine")
	}
	if wall := time.Since(start); wall > 1500*time.Millisecond {
		t.Fatalf("hedge did not overtake the slow primary (wall %v)", wall)
	}
}

// TestRemoteSelectorHealth: the prober reports per-endpoint state — live
// endpoints healthy with their mirror census, dead endpoints unhealthy.
func TestRemoteSelectorHealth(t *testing.T) {
	docs := map[string]graph.Collection{"db": randomCollection(10, 29)}
	live := startCluster(t, 1, 2, docs)
	dead := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	deadURL := dead.URL
	dead.Close()

	rs := store.NewRemoteSelector([]string{live[0], deadURL})
	rs.Probe(context.Background())
	h := rs.Health()
	if len(h) != 2 {
		t.Fatalf("health reports %d endpoints, want 2", len(h))
	}
	if !h[0].Healthy || h[0].Docs != 1 {
		t.Fatalf("live endpoint reported unhealthy: %+v", h[0])
	}
	if h[1].Healthy || h[1].Err == "" {
		t.Fatalf("dead endpoint reported healthy: %+v", h[1])
	}
}

// TestRemoteSelectorTopologyMismatch: a shard server partitioned at a
// different width answers with a typed topology error — the query fails
// loudly instead of merging a wrong partition.
func TestRemoteSelectorTopologyMismatch(t *testing.T) {
	docs := map[string]graph.Collection{"db": randomCollection(40, 37)}
	endpoints := startCluster(t, 1, 5, docs) // server partitioned at 5
	eng, rs := remoteEngine(3, endpoints, docs)
	rs.SetRetries(0)
	_, err := eng.RunQuery(t.Context(), storeQuery)
	if err == nil {
		t.Fatal("topology mismatch went unnoticed")
	}
	var re *store.ShardRemoteError
	if !errors.As(err, &re) || re.Code != store.WireCodeTopology {
		t.Fatalf("error is %v, want a topology ShardRemoteError", err)
	}
}

// TestRemoteSelectorMutationResync: an Apply batch on the frontend store
// changes the document's content hash, so stale mirrors are rejected by
// the handshake and re-synced on the next query — the cluster answer
// matches an embedded engine over the mutated store, before and after.
func TestRemoteSelectorMutationResync(t *testing.T) {
	coll := randomCollection(40, 43)
	docs := map[string]graph.Collection{"db": coll}
	endpoints := startCluster(t, 3, 4, docs) // mirrors seeded with the pre-mutation doc
	eng, _ := remoteEngine(4, endpoints, docs)

	oracle := exec.NewOver(store.New(store.Options{}))
	oracle.Docs.RegisterDoc("db", coll)
	runBoth := func(stage string) {
		t.Helper()
		want, err := oracle.RunQuery(t.Context(), storeQuery)
		if err != nil {
			t.Fatal(err)
		}
		got, err := eng.RunQuery(t.Context(), storeQuery)
		if err != nil {
			t.Fatalf("%s: cluster query failed: %v", stage, err)
		}
		if renderResult(got) != renderResult(want) {
			t.Fatalf("%s: cluster result diverged from embedded engine", stage)
		}
	}
	runBoth("pre-mutation")

	// One batch on both the frontend and the oracle: a fresh A—B match plus
	// a deletion that cascades into existing matches.
	batch := []store.Mutation{
		{Op: store.OpCreateGraph, Doc: "db", Graph: "mut"},
		{Op: store.OpInsertNode, Doc: "db", Graph: "mut", Name: "x", Attrs: graph.TupleOf("", "label", "A")},
		{Op: store.OpInsertNode, Doc: "db", Graph: "mut", Name: "y", Attrs: graph.TupleOf("", "label", "B")},
		{Op: store.OpInsertEdge, Doc: "db", Graph: "mut", Name: "xy", From: "x", To: "y"},
	}
	ctx := context.Background()
	if _, err := eng.Docs.(*store.DocStore).ApplyBatch(ctx, batch); err != nil {
		t.Fatal(err)
	}
	if _, err := oracle.Docs.(*store.DocStore).ApplyBatch(ctx, batch); err != nil {
		t.Fatal(err)
	}
	runBoth("post-mutation")
}

var _ = fmt.Sprint // keep fmt imported for debugging edits
