// Durable wraps a DocStore with write-ahead durability: every Apply batch
// is appended (and, under the Sync policy, fsynced) to the WAL before it
// commits in memory, so an acknowledged mutation survives a crash. Opening
// a durable store recovers the exact pre-crash state:
//
//  1. the snapshot checkpoint (if any) seeds the document map and store
//     version wholesale;
//  2. Bootstrap registers the process's startup documents — it must be
//     deterministic across restarts and skip names the checkpoint already
//     restored, so the post-bootstrap version is reproducible;
//  3. WAL records with Seq beyond the current version replay through the
//     normal transactional Apply path, each required to commit as exactly
//     its recorded version — a gap or overlap means the bootstrap diverged
//     and recovery refuses to guess.
//
// Checkpointing writes the whole store (binary collections plus document
// versions) to snapshot.tmp, fsyncs, renames over snapshot.bin and then
// truncates the WAL, so a crash at any point leaves either the old
// checkpoint + full log or the new checkpoint + empty log.
package store

import (
	"bufio"
	"bytes"
	"context"
	"encoding/binary"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"

	"gqldb/internal/graph"
	"gqldb/internal/obs"
)

const (
	snapshotMagic   = "GQLS"
	snapshotVersion = 1
	walFileName     = "wal.log"
	snapFileName    = "snapshot.bin"
)

// DurableOptions configures OpenDurable.
type DurableOptions struct {
	// Dir is the durability directory, holding wal.log and snapshot.bin.
	// Created if absent.
	Dir string
	// Sync fsyncs the WAL on every append, making mutations durable before
	// they are acknowledged. Off trades crash durability of the last few
	// batches for throughput (the OS flushes on its own schedule).
	Sync bool
	// CheckpointEvery checkpoints and truncates the WAL once it holds this
	// many records. 0 takes the default (256); negative disables automatic
	// checkpoints (Checkpoint can still be called explicitly).
	CheckpointEvery int
	// Bootstrap registers the process's startup documents on the fresh
	// store before WAL replay. It must be deterministic across restarts
	// and must skip document names already present (restored by the
	// checkpoint), or recovery will refuse the log.
	Bootstrap func(*DocStore) error
}

// Durable is a DocStore whose Apply batches are WAL-durable. Reads and
// non-mutation writes pass through the embedded store.
type Durable struct {
	*DocStore
	wal             *WAL
	dir             string
	checkpointEvery int
}

// OpenDurable opens (or creates) a durable store in dopts.Dir, recovering
// checkpoint + WAL state into a store configured by sopts.
func OpenDurable(sopts Options, dopts DurableOptions) (*Durable, error) {
	if dopts.Dir == "" {
		return nil, fmt.Errorf("store: durable: no directory configured")
	}
	if err := os.MkdirAll(dopts.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: durable: %w", err)
	}
	if dopts.CheckpointEvery == 0 {
		dopts.CheckpointEvery = 256
	}
	s := New(sopts)
	checkpointVersion, err := loadCheckpoint(s, filepath.Join(dopts.Dir, snapFileName))
	if err != nil {
		return nil, err
	}
	if dopts.Bootstrap != nil {
		if err := dopts.Bootstrap(s); err != nil {
			return nil, fmt.Errorf("store: durable: bootstrap: %w", err)
		}
	}
	wal, recs, err := OpenWAL(filepath.Join(dopts.Dir, walFileName), dopts.Sync)
	if err != nil {
		return nil, err
	}
	for _, rec := range recs {
		v := s.Version()
		if rec.Seq <= checkpointVersion {
			// Already captured by the checkpoint. Only the checkpoint may
			// cover a record: a version merely inflated by extra bootstrap
			// registrations must not swallow committed batches.
			continue
		}
		if rec.Seq != v+1 {
			wal.Close()
			return nil, fmt.Errorf("store: durable: wal record %d does not follow store version %d (non-deterministic bootstrap?)", rec.Seq, v)
		}
		if _, err := s.ApplyBatch(context.Background(), rec.Muts); err != nil {
			wal.Close()
			return nil, fmt.Errorf("store: durable: replaying wal record %d: %w", rec.Seq, err)
		}
		obs.WALReplayed.Inc()
	}
	return &Durable{
		DocStore:        s,
		wal:             wal,
		dir:             dopts.Dir,
		checkpointEvery: dopts.CheckpointEvery,
	}, nil
}

// Apply applies the batch WAL-durably and returns the new store version.
func (d *Durable) Apply(ctx context.Context, muts []Mutation) (uint64, error) {
	res, err := d.ApplyBatch(ctx, muts)
	if err != nil {
		return 0, err
	}
	return res.Version, nil
}

// ApplyBatch stages the batch, appends it to the WAL (fsynced under the
// Sync policy), and only then commits — so by the time the caller sees a
// result the batch is recoverable. A failed append commits nothing.
func (d *Durable) ApplyBatch(ctx context.Context, muts []Mutation) (*ApplyResult, error) {
	d.wmu.Lock()
	defer d.wmu.Unlock()
	st, err := d.stageApply(ctx, muts)
	if err != nil {
		return nil, err
	}
	seq := d.DocStore.Version() + 1
	if err := d.wal.Append(seq, muts); err != nil {
		return nil, err
	}
	st.result.Version = d.commitApply(st)
	if d.checkpointEvery > 0 && d.wal.Records() >= d.checkpointEvery {
		if err := d.checkpointLocked(); err != nil {
			// The commit is already durable in the WAL; a failed checkpoint
			// only delays truncation.
			return &st.result, fmt.Errorf("store: durable: checkpoint: %w", err)
		}
	}
	return &st.result, nil
}

// Checkpoint writes the current store state to the snapshot file and
// truncates the WAL.
func (d *Durable) Checkpoint() error {
	d.wmu.Lock()
	defer d.wmu.Unlock()
	return d.checkpointLocked()
}

// WALRecords returns the number of records currently in the WAL.
func (d *Durable) WALRecords() int {
	d.wmu.Lock()
	defer d.wmu.Unlock()
	return d.wal.Records()
}

// Close checkpoints nothing and closes the WAL file; the store remains
// usable for reads.
func (d *Durable) Close() error { return d.wal.Close() }

func (d *Durable) checkpointLocked() error {
	snap := d.DocStore.Snapshot()
	tmp := filepath.Join(d.dir, snapFileName+".tmp")
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if err := writeCheckpoint(f, snap); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, filepath.Join(d.dir, snapFileName)); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := d.wal.Reset(); err != nil {
		return err
	}
	obs.WALCheckpoints.Inc()
	return nil
}

// writeCheckpoint serializes the snapshot: magic, format version, store
// version, then each document (sorted by name for determinism) as name,
// install version, and a length-prefixed GQLB collection.
func writeCheckpoint(w io.Writer, snap *Snapshot) error {
	bw := bufio.NewWriterSize(w, 1<<16)
	var tmp [binary.MaxVarintLen64]byte
	uv := func(v uint64) {
		n := binary.PutUvarint(tmp[:], v)
		bw.Write(tmp[:n])
	}
	if _, err := bw.WriteString(snapshotMagic); err != nil {
		return err
	}
	bw.WriteByte(snapshotVersion)
	uv(snap.Version())
	names := snap.Docs()
	uv(uint64(len(names)))
	for _, name := range names {
		doc, _ := snap.Doc(name)
		uv(uint64(len(name)))
		bw.WriteString(name)
		uv(doc.Version())
		var gb bytes.Buffer
		if err := graph.WriteBinary(&gb, doc.Collection()); err != nil {
			return err
		}
		uv(uint64(gb.Len()))
		if _, err := bw.Write(gb.Bytes()); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// loadCheckpoint seeds s from the snapshot file and returns the restored
// store version; a missing file is a fresh start at version 0.
func loadCheckpoint(s *DocStore, path string) (uint64, error) {
	f, err := os.Open(path)
	if err != nil {
		if os.IsNotExist(err) {
			return 0, nil
		}
		return 0, fmt.Errorf("store: durable: %w", err)
	}
	defer f.Close()
	br := bufio.NewReaderSize(f, 1<<16)
	hdr := make([]byte, len(snapshotMagic)+1)
	if _, err := io.ReadFull(br, hdr); err != nil {
		return 0, fmt.Errorf("store: durable: checkpoint header: %w", err)
	}
	if string(hdr[:len(snapshotMagic)]) != snapshotMagic {
		return 0, fmt.Errorf("store: durable: bad checkpoint magic %q", hdr[:len(snapshotMagic)])
	}
	if hdr[len(snapshotMagic)] != snapshotVersion {
		return 0, fmt.Errorf("store: durable: unsupported checkpoint version %d", hdr[len(snapshotMagic)])
	}
	storeVersion, err := binary.ReadUvarint(br)
	if err != nil {
		return 0, fmt.Errorf("store: durable: checkpoint: %w", err)
	}
	count, err := binary.ReadUvarint(br)
	if err != nil {
		return 0, fmt.Errorf("store: durable: checkpoint: %w", err)
	}
	if count > 1<<20 {
		return 0, fmt.Errorf("store: durable: implausible checkpoint document count %d", count)
	}
	docs := make(map[string]*Doc, count)
	for i := uint64(0); i < count; i++ {
		nameLen, err := binary.ReadUvarint(br)
		if err != nil {
			return 0, fmt.Errorf("store: durable: checkpoint: %w", err)
		}
		if nameLen > 1<<20 {
			return 0, fmt.Errorf("store: durable: implausible document name length %d", nameLen)
		}
		nameBuf := make([]byte, nameLen)
		if _, err := io.ReadFull(br, nameBuf); err != nil {
			return 0, fmt.Errorf("store: durable: checkpoint: %w", err)
		}
		docVersion, err := binary.ReadUvarint(br)
		if err != nil {
			return 0, fmt.Errorf("store: durable: checkpoint: %w", err)
		}
		collLen, err := binary.ReadUvarint(br)
		if err != nil {
			return 0, fmt.Errorf("store: durable: checkpoint: %w", err)
		}
		if collLen > 1<<32 {
			return 0, fmt.Errorf("store: durable: implausible collection length %d", collLen)
		}
		gb := make([]byte, collLen)
		if _, err := io.ReadFull(br, gb); err != nil {
			return 0, fmt.Errorf("store: durable: checkpoint: %w", err)
		}
		coll, err := graph.ReadBinary(bytes.NewReader(gb))
		if err != nil {
			return 0, fmt.Errorf("store: durable: checkpoint document %q: %w", nameBuf, err)
		}
		b := NewDocBuilder(string(nameBuf), s.opts.Shards, s.opts.IndexMaxLen)
		for _, g := range coll {
			b.Add(g)
		}
		doc := b.Build()
		doc.version = docVersion
		docs[string(nameBuf)] = doc
	}
	s.seed(storeVersion, docs)
	return storeVersion, nil
}

// BootstrapFiles returns a Bootstrap that registers each name=path GQLB
// file, sorted by name for determinism, skipping names already restored
// by a checkpoint — the contract OpenDurable's recovery protocol needs.
func BootstrapFiles(files map[string]string) func(*DocStore) error {
	return func(s *DocStore) error {
		names := make([]string, 0, len(files))
		for name := range files {
			names = append(names, name)
		}
		sort.Strings(names)
		present := s.Snapshot()
		for _, name := range names {
			if _, ok := present.Doc(name); ok {
				continue
			}
			f, err := os.Open(files[name])
			if err != nil {
				return err
			}
			coll, err := graph.ReadBinary(f)
			f.Close()
			if err != nil {
				return fmt.Errorf("document %q: %w", name, err)
			}
			s.RegisterDoc(name, coll)
		}
		return nil
	}
}
