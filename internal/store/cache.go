package store

import (
	"container/list"
	"sync"

	"gqldb/internal/obs"
)

// CacheKey identifies one cached whole-program result. Program is the
// canonical token-stream rendering of the source (whitespace- and
// comment-insensitive), Docs the sorted NUL-joined document names the
// program reads, and Version the store version of the snapshot the result
// was computed from. Worker count is deliberately absent: parallelism never
// changes a result, so any worker setting may serve any cached entry.
type CacheKey struct {
	Program string
	Docs    string
	Version uint64
}

// CacheStats is one cache's counter snapshot (the process-wide equivalents
// live in internal/obs; these are per-cache, for /healthz).
type CacheStats struct {
	Hits          int64 `json:"hits"`
	Misses        int64 `json:"misses"`
	Evictions     int64 `json:"evictions"`
	Invalidations int64 `json:"invalidations"`
	Entries       int   `json:"entries"`
	Capacity      int   `json:"capacity"`
}

// Cache is an LRU result cache with invalidation-by-version: it holds
// entries for exactly one store version at a time (the newest it has seen),
// so a store mutation — which bumps the version — implicitly purges every
// older entry on the next access. Staleness is therefore structurally
// impossible: an entry can only be served to a key carrying the same
// version it was stored under, and version numbers never repeat.
//
// Values are opaque (any); the engine layer owns cloning in and out so a
// cached result is never aliased by two callers.
type Cache struct {
	mu       sync.Mutex
	capacity int
	latest   uint64
	order    *list.List // front = most recent; values are *cacheEntry
	entries  map[CacheKey]*list.Element

	hits, misses, evictions, invalidations int64
}

type cacheEntry struct {
	key CacheKey
	val any
}

// NewCache returns a cache holding at most capacity entries (min 1).
func NewCache(capacity int) *Cache {
	if capacity < 1 {
		capacity = 1
	}
	return &Cache{
		capacity: capacity,
		order:    list.New(),
		entries:  make(map[CacheKey]*list.Element),
	}
}

// SetCapacity resizes the cache bound. Startup-only: not synchronized
// against concurrent Get/Put (enforced by gqlvet's gosafe table).
func (c *Cache) SetCapacity(n int) {
	if n < 1 {
		n = 1
	}
	c.capacity = n
	for c.order.Len() > c.capacity { //gqlvet:ignore ctxpoll -- shrinks the LRU by one per iteration; bounded by entry count, not data
		c.evictOldest()
	}
}

// Get returns the entry for key, if present and current. A key carrying a
// newer version than any seen purges the cache first (the mutation
// happened; everything held is stale); a key older than the latest seen
// can never hit.
func (c *Cache) Get(key CacheKey) (any, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.advance(key.Version)
	if key.Version < c.latest {
		c.miss()
		return nil, false
	}
	el, ok := c.entries[key]
	if !ok {
		c.miss()
		return nil, false
	}
	c.order.MoveToFront(el)
	c.hits++
	obs.CacheHits.Inc()
	return el.Value.(*cacheEntry).val, true
}

// Put stores val under key, evicting the least-recently-used entry past
// capacity. Entries for versions older than the newest seen are discarded
// rather than stored — a result computed from a pre-mutation snapshot must
// never become servable after the mutation.
func (c *Cache) Put(key CacheKey, val any) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.advance(key.Version)
	if key.Version < c.latest {
		return
	}
	if el, ok := c.entries[key]; ok {
		el.Value.(*cacheEntry).val = val
		c.order.MoveToFront(el)
		return
	}
	c.entries[key] = c.order.PushFront(&cacheEntry{key: key, val: val})
	for c.order.Len() > c.capacity { //gqlvet:ignore ctxpoll -- evicts one entry per iteration; bounded by the capacity overshoot
		c.evictOldest()
		c.evictions++
		obs.CacheEvictions.Inc()
	}
}

// Stats returns the cache's counter snapshot.
func (c *Cache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{
		Hits:          c.hits,
		Misses:        c.misses,
		Evictions:     c.evictions,
		Invalidations: c.invalidations,
		Entries:       c.order.Len(),
		Capacity:      c.capacity,
	}
}

// advance moves the single live version forward, purging all held entries
// when it does. Callers hold c.mu.
func (c *Cache) advance(version uint64) {
	if version <= c.latest {
		return
	}
	if c.order.Len() > 0 {
		c.invalidations++
		obs.CacheInvalidations.Inc()
		c.order.Init()
		clear(c.entries)
	}
	c.latest = version
}

// miss counts one miss. Callers hold c.mu.
func (c *Cache) miss() {
	c.misses++
	obs.CacheMisses.Inc()
}

// evictOldest drops the back of the LRU list. Callers hold c.mu.
func (c *Cache) evictOldest() {
	el := c.order.Back()
	if el == nil {
		return
	}
	c.order.Remove(el)
	delete(c.entries, el.Value.(*cacheEntry).key)
}
