package store

import (
	"container/list"
	"sort"
	"strconv"
	"strings"
	"sync"

	"gqldb/internal/obs"
)

// CacheKey identifies one cached whole-program result. Program is the
// canonical token-stream rendering of the source (whitespace- and
// comment-insensitive), Docs the sorted NUL-joined document names the
// program reads, and Vers the NUL-joined per-document versions (parallel
// to Docs, "-" for a document absent from the snapshot) the result was
// computed from. Document versions are drawn from the store's single
// monotonic counter, so a (name, version) pair never refers to two
// different document states. Worker count is deliberately absent:
// parallelism never changes a result, so any worker setting may serve any
// cached entry.
type CacheKey struct {
	Program string
	Docs    string
	Vers    string
}

// KeyFor builds the cache key for program evaluated against snap, reading
// the named documents. Use this instead of assembling a CacheKey by hand:
// it owns the sorted-Docs and per-document-version encoding.
func KeyFor(program string, snap *Snapshot, docs []string) CacheKey {
	sorted := make([]string, len(docs))
	copy(sorted, docs)
	sort.Strings(sorted)
	vers := make([]string, len(sorted))
	for i, name := range sorted {
		if d, ok := snap.Doc(name); ok {
			vers[i] = strconv.FormatUint(d.Version(), 10)
		} else {
			vers[i] = "-"
		}
	}
	return CacheKey{
		Program: program,
		Docs:    strings.Join(sorted, "\x00"),
		Vers:    strings.Join(vers, "\x00"),
	}
}

// CacheStats is one cache's counter snapshot (the process-wide equivalents
// live in internal/obs; these are per-cache, for /healthz).
type CacheStats struct {
	Hits          int64 `json:"hits"`
	Misses        int64 `json:"misses"`
	Evictions     int64 `json:"evictions"`
	Invalidations int64 `json:"invalidations"`
	Entries       int   `json:"entries"`
	Capacity      int   `json:"capacity"`
}

// Cache is an LRU result cache with invalidation by per-document version
// vector: every entry's key records the exact version of each document the
// result read, so an entry can only be served to a query evaluated against
// those same document states — staleness is structurally impossible. When
// an access reveals that a document has moved forward, only the entries
// that read an older version of that document are purged; results over
// untouched documents stay live across mutations to unrelated ones.
//
// Values are opaque (any); the engine layer owns cloning in and out so a
// cached result is never aliased by two callers.
type Cache struct {
	mu       sync.Mutex
	capacity int
	latest   map[string]uint64 // newest version seen per document
	order    *list.List        // front = most recent; values are *cacheEntry
	entries  map[CacheKey]*list.Element

	hits, misses, evictions, invalidations int64
}

type cacheEntry struct {
	key CacheKey
	val any
}

// NewCache returns a cache holding at most capacity entries (min 1).
func NewCache(capacity int) *Cache {
	if capacity < 1 {
		capacity = 1
	}
	return &Cache{
		capacity: capacity,
		latest:   make(map[string]uint64),
		order:    list.New(),
		entries:  make(map[CacheKey]*list.Element),
	}
}

// SetCapacity resizes the cache bound. Startup-only: not synchronized
// against concurrent Get/Put (enforced by gqlvet's gosafe table).
func (c *Cache) SetCapacity(n int) {
	if n < 1 {
		n = 1
	}
	c.capacity = n
	for c.order.Len() > c.capacity { //gqlvet:ignore ctxpoll -- shrinks the LRU by one per iteration; bounded by entry count, not data
		c.evictOldest()
	}
}

// Get returns the entry for key, if present and current. A key carrying a
// newer version of some document purges the entries that read an older
// version of that document — and only those; a key older than the newest
// seen for any of its documents can never hit.
func (c *Cache) Get(key CacheKey) (any, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if !c.advance(key) {
		c.miss()
		return nil, false
	}
	el, ok := c.entries[key]
	if !ok {
		c.miss()
		return nil, false
	}
	c.order.MoveToFront(el)
	c.hits++
	obs.CacheHits.Inc()
	return el.Value.(*cacheEntry).val, true
}

// Put stores val under key, evicting the least-recently-used entry past
// capacity. Entries reading document versions older than the newest seen
// are discarded rather than stored — a result computed from a pre-mutation
// snapshot must never become servable after the mutation.
func (c *Cache) Put(key CacheKey, val any) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if !c.advance(key) {
		return
	}
	if el, ok := c.entries[key]; ok {
		el.Value.(*cacheEntry).val = val
		c.order.MoveToFront(el)
		return
	}
	c.entries[key] = c.order.PushFront(&cacheEntry{key: key, val: val})
	for c.order.Len() > c.capacity { //gqlvet:ignore ctxpoll -- evicts one entry per iteration; bounded by the capacity overshoot
		c.evictOldest()
		c.evictions++
		obs.CacheEvictions.Inc()
	}
}

// Stats returns the cache's counter snapshot.
func (c *Cache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{
		Hits:          c.hits,
		Misses:        c.misses,
		Evictions:     c.evictions,
		Invalidations: c.invalidations,
		Entries:       c.order.Len(),
		Capacity:      c.capacity,
	}
}

// splitKey decomposes a key's document and version vectors. A malformed
// key (vector lengths disagree) yields nil, nil.
func splitKey(key CacheKey) (docs, vers []string) {
	if key.Docs == "" {
		return nil, nil
	}
	docs = strings.Split(key.Docs, "\x00")
	vers = strings.Split(key.Vers, "\x00")
	if len(docs) != len(vers) {
		return nil, nil
	}
	return docs, vers
}

// advance moves each document's live version forward to what key carries,
// purging entries that read older versions of exactly those documents. It
// reports whether key itself is current (no document older than the newest
// seen). Callers hold c.mu.
func (c *Cache) advance(key CacheKey) bool {
	if key.Docs == "" {
		return true // reads no documents; nothing can invalidate it
	}
	docs, vers := splitKey(key)
	if docs == nil {
		return false
	}
	current := true
	for i, doc := range docs {
		v, err := strconv.ParseUint(vers[i], 10, 64)
		if err != nil {
			continue // "-": document absent from the snapshot; nothing to fence
		}
		switch {
		case v > c.latest[doc]:
			c.purgeDoc(doc, v)
			c.latest[doc] = v
		case v < c.latest[doc]:
			current = false
		}
	}
	return current
}

// purgeDoc removes every entry that read doc at a version older than v,
// counting one invalidation if anything was removed. Callers hold c.mu.
func (c *Cache) purgeDoc(doc string, v uint64) {
	removed := false
	var next *list.Element
	for el := c.order.Front(); el != nil; el = next {
		next = el.Next()
		key := el.Value.(*cacheEntry).key
		if keyReadsDocBefore(key, doc, v) {
			c.order.Remove(el)
			delete(c.entries, key)
			removed = true
		}
	}
	if removed {
		c.invalidations++
		obs.CacheInvalidations.Inc()
	}
}

// keyReadsDocBefore reports whether key reads doc at a version below v.
func keyReadsDocBefore(key CacheKey, doc string, v uint64) bool {
	docs, vers := splitKey(key)
	for i, d := range docs {
		if d != doc {
			continue
		}
		ev, err := strconv.ParseUint(vers[i], 10, 64)
		return err != nil || ev < v
	}
	return false
}

// miss counts one miss. Callers hold c.mu.
func (c *Cache) miss() {
	c.misses++
	obs.CacheMisses.Inc()
}

// evictOldest drops the back of the LRU list. Callers hold c.mu.
func (c *Cache) evictOldest() {
	el := c.order.Back()
	if el == nil {
		return
	}
	c.order.Remove(el)
	delete(c.entries, el.Value.(*cacheEntry).key)
}
