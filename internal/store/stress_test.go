package store_test

import (
	"context"
	"fmt"
	"strconv"
	"sync"
	"testing"

	"gqldb/internal/exec"
	"gqldb/internal/graph"
	"gqldb/internal/store"
)

// TestConcurrentRegisterVsQueries runs RegisterDoc in a loop while many
// goroutines query through a shared cached engine. Run under -race via
// `make race`. Every result must equal the oracle for one of the two
// collections that ever existed — a snapshot is either pre- or
// post-mutation, never a blend — and the cache must never serve the old
// result for a query that started after the bump (checked by the
// never-stale test; here the invariant is atomicity + no races).
func TestConcurrentRegisterVsQueries(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test; skipped in -short")
	}
	collA := randomCollection(50, 31)
	collB := randomCollection(50, 77)
	wantA := renderResult(mustRun(t, collA))
	wantB := renderResult(mustRun(t, collB))
	if wantA == wantB {
		t.Fatal("degenerate test: both collections produce identical results")
	}

	s := store.New(store.Options{Shards: 4})
	s.RegisterDoc("db", collA)
	e := exec.NewOver(s)
	e.Cache = store.NewCache(16)
	e.Workers = 4

	const queriers, rounds = 6, 20
	var wg sync.WaitGroup
	errs := make([]error, queriers)
	for k := 0; k < queriers; k++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				res, err := e.RunQuery(context.Background(), storeQuery)
				if err != nil {
					errs[k] = err
					return
				}
				if got := renderResult(res); got != wantA && got != wantB {
					errs[k] = fmt.Errorf("round %d: result matches neither collection's oracle", r)
					return
				}
			}
		}()
	}
	// Mutator: flip the document between the two collections while queries
	// are in flight. RegisterDoc is fully synchronized — no startup-only
	// restriction — so this is the supported usage.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for r := 0; r < rounds; r++ {
			if r%2 == 0 {
				s.RegisterDoc("db", collB)
			} else {
				s.RegisterDoc("db", collA)
			}
		}
	}()
	wg.Wait()
	for k, err := range errs {
		if err != nil {
			t.Fatalf("querier %d: %v", k, err)
		}
	}
}

// mustRun evaluates the stress query serially against a fresh engine over
// coll, providing the oracle rendering for one store state.
func mustRun(t testing.TB, coll graph.Collection) *exec.Result {
	t.Helper()
	res, err := exec.New(exec.Store{"db": coll}).RunContext(context.Background(), mustParse(t, storeQuery))
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestCacheConcurrentAccess hammers one cache from many goroutines mixing
// Get, Put and version bumps; run under -race. The version-vector
// invariant must hold at every interleaving: a Get never returns a value
// stored under a version other than its own.
func TestCacheConcurrentAccess(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test; skipped in -short")
	}
	c := store.NewCache(8)
	const workers, rounds = 8, 400
	var wg sync.WaitGroup
	errs := make([]error, workers)
	for k := 0; k < workers; k++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				version := uint64(1 + r/50) // advances as the rounds progress
				key := store.CacheKey{Program: fmt.Sprintf("p%d", r%10), Docs: "db", Vers: strconv.FormatUint(version, 10)}
				if r%3 == 0 {
					c.Put(key, version)
				} else if v, ok := c.Get(key); ok {
					if v.(uint64) != version {
						errs[k] = fmt.Errorf("got value from version %d under key version %d", v, version)
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	for k, err := range errs {
		if err != nil {
			t.Fatalf("worker %d: %v", k, err)
		}
	}
	st := c.Stats()
	if st.Entries > st.Capacity {
		t.Fatalf("cache over capacity: %+v", st)
	}
}

// TestShardFanoutWorkerEdges drives the coordinator at the worker-count
// edge cases (workers=1 serial, workers far above the shard and graph
// counts) concurrently from several goroutines sharing one snapshot; run
// under -race.
func TestShardFanoutWorkerEdges(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test; skipped in -short")
	}
	coll := randomCollection(60, 13)
	s := store.New(store.Options{Shards: 17})
	s.RegisterDoc("db", coll)
	oracle, err := exec.New(exec.Store{"db": coll}).RunContext(context.Background(), mustParse(t, storeQuery))
	if err != nil {
		t.Fatal(err)
	}
	want := renderResult(oracle)

	var wg sync.WaitGroup
	workerGrid := []int{1, 2, 16, 4 * len(coll), -1}
	errs := make([]error, len(workerGrid))
	for i, workers := range workerGrid {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for r := 0; r < 5; r++ {
				e := exec.NewOver(s)
				e.Workers = workers
				res, err := e.RunContext(context.Background(), mustParse(t, storeQuery))
				if err != nil {
					errs[i] = err
					return
				}
				if renderResult(res) != want {
					errs[i] = fmt.Errorf("workers=%d: output differs from serial oracle", workers)
					return
				}
			}
		}()
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("workers=%d: %v", workerGrid[i], err)
		}
	}
}
