package store_test

import (
	"bytes"
	"encoding/json"
	"errors"
	"strings"
	"testing"

	"gqldb/internal/match"
	"gqldb/internal/store"
)

// FuzzShardWire asserts the shard wire protocol's total-function contract
// over arbitrary bytes, fed to both decoders (a request line and a
// response frame): parse or return a typed *WireError / *ShardRemoteError,
// never panic, and everything accepted must round-trip — re-encode and
// re-decode to the same wire form.
func FuzzShardWire(f *testing.F) {
	// Valid seeds: a full request and each response frame shape.
	p := abPattern(f)
	req := &store.WireRequest{
		Doc: "db", Shard: 1, Shards: 3, Version: 7, Hash: "00ff",
		Workers: 2,
		Pattern: store.EncodePattern(p),
		Options: store.EncodeOptions(match.Optimized()),
	}
	var buf bytes.Buffer
	if err := store.EncodeRequest(&buf, req); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	f.Add([]byte(`{"t":"group","ord":2,"matches":[{"n":[0,3],"e":[1]}]}`))
	f.Add([]byte(`{"t":"done","candidates":12,"version":4}`))
	f.Add([]byte(`{"t":"error","code":"stale","message":"m","version":9,"hash":"aa"}`))
	// Malformed seeds steering the fuzzer at the validation branches.
	f.Add([]byte(`{"doc":"db","shard":5,"shards":3}`))
	f.Add([]byte(`{"t":"group","ord":-1}`))
	f.Add([]byte(`{"t":"group","matches":[{"n":[-9]}]}`))
	f.Add([]byte(`{"t":"wat"}`))
	f.Add([]byte(`{`))

	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 1<<20 {
			t.Skip("oversized input")
		}
		// Request decode: never panics; failure is always a *WireError.
		r, err := store.DecodeRequest(bytes.NewReader(data))
		if err != nil {
			var we *store.WireError
			if !errors.As(err, &we) {
				t.Fatalf("DecodeRequest error is %T, want *WireError: %v", err, err)
			}
		} else {
			// Accepted requests round-trip: encode and decode again to the
			// same header and the same pattern wire form.
			var out bytes.Buffer
			if err := store.EncodeRequest(&out, r); err != nil {
				t.Fatalf("re-encoding accepted request: %v", err)
			}
			r2, err := store.DecodeRequest(bytes.NewReader(out.Bytes()))
			if err != nil {
				t.Fatalf("re-decoding round-tripped request: %v", err)
			}
			if r2.Doc != r.Doc || r2.Shard != r.Shard || r2.Shards != r.Shards ||
				r2.Version != r.Version || r2.Hash != r.Hash || r2.Workers != r.Workers {
				t.Fatalf("request header changed over round-trip: %+v vs %+v", r2, r)
			}
			a, _ := json.Marshal(r.Pattern)
			b, _ := json.Marshal(r2.Pattern)
			if !bytes.Equal(a, b) {
				t.Fatalf("pattern wire form changed over round-trip")
			}
			// A decodable pattern must compile without panicking; a failure
			// must be typed.
			if _, perr := r.Pattern.Pattern(); perr != nil {
				var we *store.WireError
				if !errors.As(perr, &we) {
					t.Fatalf("Pattern error is %T, want *WireError: %v", perr, perr)
				}
			}
			if _, oerr := r.Options.Options(); oerr != nil {
				var we *store.WireError
				if !errors.As(oerr, &we) {
					t.Fatalf("Options error is %T, want *WireError: %v", oerr, oerr)
				}
			}
		}
		// Frame decode over the same bytes (first line only, mirroring the
		// NDJSON reader).
		line := data
		if i := bytes.IndexByte(line, '\n'); i >= 0 {
			line = line[:i]
		}
		fr, err := store.DecodeFrame(line)
		if err != nil {
			var we *store.WireError
			if !errors.As(err, &we) {
				t.Fatalf("DecodeFrame error is %T, want *WireError: %v", err, err)
			}
			return
		}
		// Accepted frames round-trip byte-stably through their wire form.
		var out bytes.Buffer
		if err := store.EncodeFrame(&out, fr); err != nil {
			t.Fatalf("re-encoding accepted frame: %v", err)
		}
		fr2, err := store.DecodeFrame(bytes.TrimSuffix(out.Bytes(), []byte("\n")))
		if err != nil {
			t.Fatalf("re-decoding round-tripped frame: %v", err)
		}
		if fr2.T != fr.T || fr2.Ord != fr.Ord || fr2.Candidates != fr.Candidates ||
			fr2.Code != fr.Code || fr2.Version != fr.Version || len(fr2.Matches) != len(fr.Matches) {
			t.Fatalf("frame changed over round-trip: %+v vs %+v", fr2, fr)
		}
	})
}

// TestFuzzShardWireSeeds runs the fuzz body over its seeds in a plain test
// so `go test` exercises the contract without -fuzz.
func TestFuzzShardWireSeeds(t *testing.T) {
	for _, src := range []string{
		`{"t":"group","ord":2,"matches":[{"n":[0,3],"e":[1]}]}`,
		`{"t":"done","candidates":12,"version":4}`,
		`{"t":"error","code":"stale","message":"m"}`,
	} {
		fr, err := store.DecodeFrame([]byte(src))
		if err != nil {
			t.Fatalf("seed %q rejected: %v", src, err)
		}
		var out bytes.Buffer
		if err := store.EncodeFrame(&out, fr); err != nil {
			t.Fatal(err)
		}
		if _, err := store.DecodeFrame([]byte(strings.TrimSuffix(out.String(), "\n"))); err != nil {
			t.Fatalf("seed %q did not round-trip: %v", src, err)
		}
	}
}
