// Package store is the versioned, sharded document layer under the query
// engine. The paper's access methods (§4) assume a database of many small
// graphs scanned and pruned per query; at production scale that scan is the
// dominant cost, so the store partitions every registered collection into
// hash-addressed shards (each with its own optional path-feature index, the
// GraphGrep-style filter of internal/gindex) and serves queries from
// immutable snapshots:
//
//   - Versioning: the store carries a monotonic version, bumped by every
//     RegisterDoc/RemoveDoc. Whole-program result caching keys on it, so a
//     mutation implicitly invalidates every cached result.
//   - Snapshots: readers take a Snapshot — an immutable view of all
//     documents at one version. In-flight queries keep their snapshot for
//     the whole program, so a concurrent mutation never tears a result.
//   - Sharding: each document's collection is hash-partitioned at
//     registration. The Coordinator (coordinator.go) fans selection across
//     shards and merges matches back into the exact order a serial scan of
//     the unsharded collection would produce.
package store

import (
	"fmt"
	"hash/fnv"
	"sort"
	"sync"

	"gqldb/internal/gindex"
	"gqldb/internal/graph"
	"gqldb/internal/obs"
)

// Options configures a DocStore.
type Options struct {
	// Shards is the number of hash partitions per registered document.
	// 0 or 1 keeps documents unsharded (a single shard holding the whole
	// collection) — the exact behavior of the pre-store engine.
	Shards int
	// IndexMaxLen, when positive, builds a per-shard path-feature index
	// (gindex.Build with this maximum path length) at registration, so the
	// for-clause filters candidates inside every shard before matching.
	// Building enumerates simple paths of each member graph; enable it for
	// collections of small graphs, not for one huge dense graph.
	IndexMaxLen int
}

// Store is the engine-facing interface of the document layer: versioned
// reads through consistent snapshots and versioned writes. DocStore is the
// in-process implementation; the interface is the seam a future
// multi-process deployment implements with an RPC client.
type Store interface {
	// Snapshot returns an immutable view of every document at one version.
	Snapshot() *Snapshot
	// Version returns the current store version.
	Version() uint64
	// RegisterDoc binds name to the collection (replacing any previous
	// binding), bumps the store version and returns it.
	RegisterDoc(name string, c graph.Collection) uint64
	// RemoveDoc unbinds name (a no-op bump if absent) and returns the new
	// version.
	RemoveDoc(name string) uint64
}

// DocStore is the in-process Store: a copy-on-write document map under a
// mutex. Writes clone the map (documents themselves are immutable after
// registration), so snapshots are O(1) pointer grabs and never block
// queries; RegisterDoc is safe to call while queries run.
type DocStore struct {
	opts Options

	// wmu serializes writers (RegisterDoc, RemoveDoc, Apply): a staged
	// mutation batch must commit against the exact state it was computed
	// from, so writers are mutually exclusive end-to-end while readers keep
	// going through mu. Lock order: wmu before mu.
	wmu sync.Mutex

	mu      sync.RWMutex
	version uint64
	docs    map[string]*Doc
}

// New returns an empty DocStore with the given options.
func New(opts Options) *DocStore {
	if opts.Shards < 1 {
		opts.Shards = 1
	}
	return &DocStore{opts: opts, docs: map[string]*Doc{}}
}

// FromMap wraps a plain document map (the legacy exec.Store shape) into an
// unsharded, unindexed DocStore — the compatibility constructor behind
// exec.New. The map is read once; later changes to it are not observed.
func FromMap(m map[string]graph.Collection) *DocStore {
	s := New(Options{})
	// Deterministic registration order so version numbers are reproducible.
	names := make([]string, 0, len(m))
	for name := range m {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		s.RegisterDoc(name, m[name])
	}
	return s
}

// Snapshot returns the current immutable view.
func (s *DocStore) Snapshot() *Snapshot {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return &Snapshot{version: s.version, docs: s.docs}
}

// Version returns the current store version.
func (s *DocStore) Version() uint64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.version
}

// RegisterDoc partitions c into the store's shard count (building per-shard
// indexes when configured), installs it under name and bumps the version.
// The collection slice is captured as the document's canonical order; do
// not mutate it (or its graphs) after registration.
func (s *DocStore) RegisterDoc(name string, c graph.Collection) uint64 {
	s.wmu.Lock()
	defer s.wmu.Unlock()
	b := NewDocBuilder(name, s.opts.Shards, s.opts.IndexMaxLen)
	for _, g := range c {
		b.Add(g)
	}
	return s.install(name, b.Build())
}

// RemoveDoc unbinds name and bumps the version.
func (s *DocStore) RemoveDoc(name string) uint64 {
	s.wmu.Lock()
	defer s.wmu.Unlock()
	return s.install(name, nil)
}

// install copy-on-writes the document map: d == nil removes the binding.
// Callers hold wmu.
func (s *DocStore) install(name string, d *Doc) uint64 {
	obs.StoreMutations.Inc()
	s.mu.Lock()
	defer s.mu.Unlock()
	next := make(map[string]*Doc, len(s.docs)+1)
	for k, v := range s.docs {
		next[k] = v
	}
	s.version++
	if d == nil {
		delete(next, name)
	} else {
		d.version = s.version
		next[name] = d
	}
	s.docs = next
	return s.version
}

// installAll publishes a staged batch's touched documents under one
// version bump — the all-or-nothing commit of Apply. Callers hold wmu.
func (s *DocStore) installAll(docs map[string]*Doc) uint64 {
	obs.StoreMutations.Inc()
	s.mu.Lock()
	defer s.mu.Unlock()
	next := make(map[string]*Doc, len(s.docs)+len(docs))
	for k, v := range s.docs {
		next[k] = v
	}
	s.version++
	for name, d := range docs {
		d.version = s.version
		next[name] = d
	}
	s.docs = next
	return s.version
}

// seed restores a checkpointed state without version bumps or cache
// invalidation: the document map and store version are set wholesale.
// Recovery-only (OpenDurable), before the store is shared with readers.
func (s *DocStore) seed(version uint64, docs map[string]*Doc) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.version = version
	s.docs = docs
}

// Snapshot is one immutable view of the store: the documents present at a
// single version. Queries hold a snapshot for their whole program, so every
// for-clause of one program reads the same data even while RegisterDoc runs
// concurrently.
type Snapshot struct {
	version uint64
	docs    map[string]*Doc
}

// emptySnapshot serves engines constructed without a store.
var emptySnapshot = &Snapshot{}

// EmptySnapshot returns a shared snapshot of nothing at version 0.
func EmptySnapshot() *Snapshot { return emptySnapshot }

// Version returns the snapshot's store version.
func (sn *Snapshot) Version() uint64 { return sn.version }

// Doc returns the named document.
func (sn *Snapshot) Doc(name string) (*Doc, bool) {
	d, ok := sn.docs[name]
	return d, ok
}

// Docs returns the bound document names, sorted.
func (sn *Snapshot) Docs() []string {
	names := make([]string, 0, len(sn.docs))
	for name := range sn.docs {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// Doc is one registered document: the collection in its canonical
// (registration) order plus its hash partition. Immutable after Build.
type Doc struct {
	// Name is the binding name (the doc("...") argument).
	Name string

	coll   graph.Collection
	shards []*Shard

	// version is the store version at which the document was installed
	// (0 for documents built outside a store). Set by install before the
	// document is published; immutable afterwards.
	version uint64

	// statsOnce guards the lazy attribute-inventory computation; the
	// document itself is immutable after Build, so the computed stats are
	// valid for the document's lifetime.
	statsOnce sync.Once
	stats     *DocStats

	// hashOnce guards the lazy content-hash computation (ContentHash).
	hashOnce sync.Once
	hash     string
}

// Collection returns the document in canonical order. Callers must treat
// it as read-only.
func (d *Doc) Collection() graph.Collection { return d.coll }

// Version returns the store version at which the document was installed
// (0 for documents built outside a store). Reported in the multi-process
// handshake for observability; ContentHash is the identity.
func (d *Doc) Version() uint64 { return d.version }

// ContentHash returns a deterministic hash of the document's canonical
// collection — FNV-64a over the binary serialization, computed lazily once
// (the document is immutable after Build). Two processes that loaded the
// same graphs in the same order agree on the hash regardless of their
// local store versions, so it is the identity the multi-process version
// handshake compares: a RegisterDoc on the frontend changes the content,
// the hash diverges from the shard's mirror, and the shard is resynced.
func (d *Doc) ContentHash() string {
	d.hashOnce.Do(func() {
		h := fnv.New64a()
		// WriteBinary on a hash never fails; a marshal error (impossible for
		// in-memory graphs) would surface as a handshake mismatch, which is
		// the safe direction.
		_ = graph.WriteBinary(h, d.coll)
		d.hash = fmt.Sprintf("%016x", h.Sum64())
	})
	return d.hash
}

// Len returns the number of member graphs.
func (d *Doc) Len() int { return len(d.coll) }

// Shards returns the hash partition. Callers must treat it as read-only.
func (d *Doc) Shards() []*Shard { return d.shards }

// Sharded reports whether the document is split across more than one shard.
func (d *Doc) Sharded() bool { return len(d.shards) > 1 }

// Index returns the single shard's path index when the document is
// unsharded (the whole-document index), else nil: sharded documents are
// filtered per shard by the Coordinator.
func (d *Doc) Index() *gindex.Index {
	if len(d.shards) == 1 {
		return d.shards[0].Ix
	}
	return nil
}

// Shard is one hash partition of a document: the member graphs it owns,
// their ordinals in the document's canonical order (ascending — the
// partition preserves relative order), and an optional path-feature index
// over just this shard.
type Shard struct {
	// Ords maps shard-local position to canonical-collection ordinal.
	Ords []int32
	// Coll holds the shard's graphs, parallel to Ords.
	Coll graph.Collection
	// Ix is the shard-local path index (nil when indexing is disabled).
	Ix *gindex.Index
}

// DocBuilder accumulates a document's collection and partitions it into
// shards. Add is an unsynchronized mutator: build on one goroutine (the
// coordinator), then hand the immutable Doc to the store — enforced by
// gqlvet's gosafe table.
type DocBuilder struct {
	name   string
	shards int
	ixLen  int
	coll   graph.Collection
}

// NewDocBuilder returns a builder for a document with the given shard count
// (min 1) and per-shard index path length (0 disables indexing).
func NewDocBuilder(name string, shards, indexMaxLen int) *DocBuilder {
	if shards < 1 {
		shards = 1
	}
	return &DocBuilder{name: name, shards: shards, ixLen: indexMaxLen}
}

// Add appends g to the document under construction. Coordinator-only: not
// safe for concurrent use.
func (b *DocBuilder) Add(g *graph.Graph) { b.coll = append(b.coll, g) }

// Build partitions the accumulated collection and builds the per-shard
// indexes. The returned Doc is immutable; the builder must not be reused.
func (b *DocBuilder) Build() *Doc {
	d := &Doc{Name: b.name, coll: b.coll}
	n := b.shards
	if n > len(b.coll) && len(b.coll) > 0 {
		// Never materialize more shards than graphs; empty shards only cost
		// fan-out overhead. An empty collection keeps one empty shard so the
		// doc always has a partition.
		n = len(b.coll)
	}
	if len(b.coll) == 0 {
		n = 1
	}
	shards := make([]*Shard, n)
	for i := range shards {
		shards[i] = &Shard{}
	}
	for ord, g := range b.coll {
		si := shardOf(g, ord, n)
		sh := shards[si]
		sh.Ords = append(sh.Ords, int32(ord))
		sh.Coll = append(sh.Coll, g)
	}
	if b.ixLen > 0 {
		for _, sh := range shards {
			sh.Ix = gindex.Build(sh.Coll, b.ixLen)
		}
	}
	d.shards = shards
	return d
}

// shardOf hashes a member graph to a shard: FNV-1a over the graph name
// mixed with the canonical ordinal, so collections of identically-named
// graphs still spread evenly and the assignment is deterministic across
// processes (a requirement for the future multi-process deployment, where
// each process owns a shard subset).
func shardOf(g *graph.Graph, ord, shards int) int {
	if shards == 1 {
		return 0
	}
	h := fnv.New32a()
	h.Write([]byte(g.Name))
	v := h.Sum32() ^ (uint32(ord) * 2654435761)
	return int(v % uint32(shards))
}
