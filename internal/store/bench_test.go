package store_test

import (
	"context"
	"fmt"
	"runtime"
	"testing"

	"gqldb/internal/algebra"
	"gqldb/internal/exec"
	"gqldb/internal/gindex"
	"gqldb/internal/graph"
	"gqldb/internal/match"
	"gqldb/internal/store"
)

// BenchmarkShardedSelection compares the coordinator fan-out against the
// serial unsharded scan it must stay byte-identical to. Run via
// `make bench-store`; the sharded/workers=N variants should beat serial on
// multi-core machines (the merge is O(matches), so the fan-out dominates).
func BenchmarkShardedSelection(b *testing.B) {
	coll := randomCollection(400, 9)
	p := abPattern(b)
	if err := p.Compile(); err != nil {
		b.Fatal(err)
	}
	opt := match.Options{Exhaustive: true}
	ctx := context.Background()

	b.Run("serial", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := algebra.SelectionContext(ctx, p, coll, opt, nil, 1, nil); err != nil {
				b.Fatal(err)
			}
		}
	})
	for _, shards := range []int{4, 8} {
		s := store.New(store.Options{Shards: shards})
		s.RegisterDoc("db", coll)
		d, ok := s.Snapshot().Doc("db")
		if !ok {
			b.Fatal("doc not registered")
		}
		workers := runtime.GOMAXPROCS(0)
		b.Run(fmt.Sprintf("shards=%d/workers=%d", shards, workers), func(b *testing.B) {
			co := &store.Coordinator{}
			for i := 0; i < b.N; i++ {
				st := &match.Stats{}
				if _, err := co.Select(ctx, d, p, opt, nil, workers, st); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkCacheHit measures the full RunQuery path when the result cache
// answers: parse + canonical key + deep clone of the cached result, with no
// evaluation. The miss variant is the same query with the cache disabled,
// so the pair bounds what a hit saves.
func BenchmarkCacheHit(b *testing.B) {
	coll := randomCollection(120, 15)
	run := func(b *testing.B, cached bool) {
		s := store.New(store.Options{Shards: 4})
		s.RegisterDoc("db", coll)
		e := exec.NewOver(s)
		e.Workers = runtime.GOMAXPROCS(0)
		if cached {
			e.Cache = store.NewCache(8)
		}
		ctx := context.Background()
		if _, err := e.RunQuery(ctx, storeQuery); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := e.RunQuery(ctx, storeQuery); err != nil {
				b.Fatal(err)
			}
		}
		if cached {
			b.StopTimer()
			if st := e.Cache.Stats(); st.Hits < int64(b.N) {
				b.Fatalf("expected >=%d cache hits, got %+v", b.N, st)
			}
		}
	}
	b.Run("hit", func(b *testing.B) { run(b, true) })
	b.Run("miss", func(b *testing.B) { run(b, false) })
}

// BenchmarkApplyMutations measures the write path: one insert+delete
// batch (net zero, so the store stays the same size across iterations)
// applied incrementally, against re-registering the whole document — the
// rebuild the incremental path exists to avoid. The incremental variant
// should win by a wide margin on any non-trivial document.
func BenchmarkApplyMutations(b *testing.B) {
	const graphs = 400
	coll := randomCollection(graphs, 9)
	ctx := context.Background()
	for _, shards := range []int{1, 4} {
		opts := store.Options{Shards: shards, IndexMaxLen: 2}
		b.Run(fmt.Sprintf("incremental/shards=%d", shards), func(b *testing.B) {
			s := store.New(opts)
			s.RegisterDoc("db", coll)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				batch := []store.Mutation{
					{Op: store.OpInsertNode, Doc: "db", Graph: fmt.Sprintf("g%d", i%graphs),
						Name: "bench", Attrs: graph.TupleOf("", "label", "A")},
					{Op: store.OpDeleteNode, Doc: "db", Graph: fmt.Sprintf("g%d", i%graphs),
						Name: "bench"},
				}
				if _, err := s.ApplyBatch(ctx, batch); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("fullreload/shards=%d", shards), func(b *testing.B) {
			s := store.New(opts)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s.RegisterDoc("db", coll)
			}
		})
	}
}

// BenchmarkIncrementalIndex compares maintaining the path-feature index
// through a one-graph delta (gindex.Update) against rebuilding it from
// scratch — the equivalence the randomized store tests prove, priced.
func BenchmarkIncrementalIndex(b *testing.B) {
	const graphs = 400
	coll := randomCollection(graphs, 11)
	ix := gindex.Build(coll, 2)
	// The delta: one replaced graph (a fresh pointer with one extra node).
	changed := coll[graphs/2].Clone()
	changed.AddNode("bench", graph.TupleOf("", "label", "A"))
	next := make(graph.Collection, graphs)
	copy(next, coll)
	next[graphs/2] = changed

	b.Run("update", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if got := ix.Update(next, []int32{graphs / 2}); got == nil {
				b.Fatal("update returned nil")
			}
		}
	})
	b.Run("rebuild", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if got := gindex.Build(next, 2); got == nil {
				b.Fatal("rebuild returned nil")
			}
		}
	})
}
