package store

// DocStats is a document's size and attribute inventory — the schema
// introspection a client (or agent) reads before writing queries: how many
// graphs/nodes/edges the document holds and which attribute names appear,
// with occurrence counts. Computed lazily once per document and shared by
// reference afterwards; callers must treat it (maps included) as
// read-only.
type DocStats struct {
	// Graphs is the number of member graphs.
	Graphs int
	// Shards is the partition width (1 for unsharded documents).
	Shards int
	// Indexed reports that the shards carry path-feature indexes.
	Indexed bool
	// Nodes and Edges are totals across all member graphs.
	Nodes int64
	Edges int64
	// NodeAttrs and EdgeAttrs count, per attribute name, how many nodes
	// (edges) carry it across the whole document.
	NodeAttrs map[string]int64
	EdgeAttrs map[string]int64
}

// Stats returns the document's attribute inventory, computing it on first
// use. Documents are immutable after Build, so the result never goes
// stale; concurrent callers share one computation (and one value — treat
// it as read-only).
func (d *Doc) Stats() *DocStats {
	d.statsOnce.Do(func() {
		st := &DocStats{
			Graphs:    len(d.coll),
			Shards:    len(d.shards),
			NodeAttrs: map[string]int64{},
			EdgeAttrs: map[string]int64{},
		}
		if len(d.shards) > 0 && d.shards[0].Ix != nil {
			st.Indexed = true
		}
		for _, g := range d.coll {
			st.Nodes += int64(g.NumNodes())
			st.Edges += int64(g.NumEdges())
			for _, n := range g.Nodes() {
				for _, name := range n.Attrs.Names() {
					st.NodeAttrs[name]++
				}
			}
			for _, e := range g.Edges() {
				for _, name := range e.Attrs.Names() {
					st.EdgeAttrs[name]++
				}
			}
		}
		d.stats = st
	})
	return d.stats
}
