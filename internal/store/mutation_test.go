package store_test

import (
	"context"
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"gqldb/internal/gindex"
	"gqldb/internal/graph"
	"gqldb/internal/store"
)

func TestApplyBasic(t *testing.T) {
	s := store.New(store.Options{Shards: 4, IndexMaxLen: 2})
	ctx := context.Background()
	res, err := s.ApplyBatch(ctx, []store.Mutation{
		{Op: store.OpCreateGraph, Doc: "db", Graph: "g1", Attrs: graph.TupleOf("paper", "venue", "sigmod")},
		{Op: store.OpInsertNode, Doc: "db", Graph: "g1", Name: "a", Attrs: graph.TupleOf("", "label", "A")},
		{Op: store.OpInsertNode, Doc: "db", Graph: "g1", Name: "b", Attrs: graph.TupleOf("", "label", "B")},
		{Op: store.OpInsertEdge, Doc: "db", Graph: "g1", Name: "e", From: "a", To: "b"},
	})
	if err != nil {
		t.Fatalf("ApplyBatch: %v", err)
	}
	if res.Version != 1 || res.GraphsCreated != 1 || res.NodesAdded != 2 || res.EdgesAdded != 1 {
		t.Fatalf("result = %+v", res)
	}
	d, ok := s.Snapshot().Doc("db")
	if !ok || d.Len() != 1 {
		t.Fatalf("doc missing or wrong size")
	}
	g := d.Collection()[0]
	if g.Name != "g1" || g.NumNodes() != 2 || g.NumEdges() != 1 {
		t.Fatalf("graph = %s", g)
	}
	if g.Attrs.GetOr("venue").AsString() != "sigmod" {
		t.Fatalf("graph attrs lost: %s", g.Attrs)
	}

	// Second batch: deletions, including the node-delete edge cascade.
	res, err = s.ApplyBatch(ctx, []store.Mutation{
		{Op: store.OpInsertNode, Doc: "db", Graph: "g1", Name: "c"},
		{Op: store.OpInsertEdge, Doc: "db", Graph: "g1", Name: "e2", From: "a", To: "c"},
		{Op: store.OpDeleteNode, Doc: "db", Graph: "g1", Name: "a"},
	})
	if err != nil {
		t.Fatalf("ApplyBatch 2: %v", err)
	}
	if res.Version != 2 || res.NodesDeleted != 1 || res.EdgesDeleted != 2 {
		t.Fatalf("result 2 = %+v", res)
	}
	g = mustDocGraph(t, s, "db", "g1")
	if g.NumNodes() != 2 || g.NumEdges() != 0 {
		t.Fatalf("after delete: %s", g)
	}
	if _, ok := g.NodeByName("a"); ok {
		t.Fatal("deleted node still present")
	}

	// Version must advance exactly once per batch.
	if v := s.Version(); v != 2 {
		t.Fatalf("version = %d, want 2", v)
	}
}

func mustDocGraph(t *testing.T, s *store.DocStore, doc, name string) *graph.Graph {
	t.Helper()
	d, ok := s.Snapshot().Doc(doc)
	if !ok {
		t.Fatalf("doc %q missing", doc)
	}
	for _, g := range d.Collection() {
		if g.Name == name {
			return g
		}
	}
	t.Fatalf("graph %q missing in doc %q", name, doc)
	return nil
}

func TestApplyAllOrNothing(t *testing.T) {
	s := store.New(store.Options{Shards: 2, IndexMaxLen: 2})
	ctx := context.Background()
	s.RegisterDoc("db", randomCollection(10, 7))
	v0 := s.Version()
	snap0 := s.Snapshot()
	_, err := s.ApplyBatch(ctx, []store.Mutation{
		{Op: store.OpInsertNode, Doc: "db", Graph: "g0", Name: "fresh"},
		{Op: store.OpInsertEdge, Doc: "db", Graph: "g0", Name: "bad", From: "fresh", To: "missing"},
		{Op: store.OpDropGraph, Doc: "nope", Graph: "g0"},
	})
	if err == nil {
		t.Fatal("expected error")
	}
	// Positioned, accumulated errors: both bad mutations reported.
	for _, want := range []string{"mutation 1 (insert edge)", "mutation 2 (drop graph)", "unknown document"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("error %q missing %q", err, want)
		}
	}
	if s.Version() != v0 {
		t.Fatalf("failed batch bumped version: %d -> %d", v0, s.Version())
	}
	d0, _ := snap0.Doc("db")
	d1, _ := s.Snapshot().Doc("db")
	if d0 != d1 {
		t.Fatal("failed batch replaced the document")
	}
	if _, ok := mustDocGraph(t, s, "db", "g0").NodeByName("fresh"); ok {
		t.Fatal("failed batch leaked a node into the store")
	}
	if _, err := s.ApplyBatch(ctx, nil); err == nil {
		t.Fatal("empty batch must error")
	}
}

func TestApplyUnchangedDocAndShardSharing(t *testing.T) {
	s := store.New(store.Options{Shards: 4, IndexMaxLen: 2})
	s.RegisterDoc("a", randomCollection(16, 1))
	s.RegisterDoc("b", randomCollection(16, 2))
	snapBefore := s.Snapshot()
	da0, _ := snapBefore.Doc("a")
	db0, _ := snapBefore.Doc("b")
	if _, err := s.ApplyBatch(context.Background(), []store.Mutation{
		{Op: store.OpInsertNode, Doc: "a", Graph: "g3", Name: "nn", Attrs: graph.TupleOf("", "label", "Z")},
	}); err != nil {
		t.Fatal(err)
	}
	snapAfter := s.Snapshot()
	da1, _ := snapAfter.Doc("a")
	db1, _ := snapAfter.Doc("b")
	if db0 != db1 {
		t.Fatal("untouched document was rebuilt")
	}
	if da0 == da1 {
		t.Fatal("mutated document not replaced")
	}
	// COW at shard granularity: only g3's shard may differ.
	changedShards := 0
	for i, sh := range da1.Shards() {
		if sh != da0.Shards()[i] {
			changedShards++
		}
	}
	if changedShards != 1 {
		t.Fatalf("%d shards changed, want exactly 1", changedShards)
	}
	// COW at graph granularity: only g3 replaced within the collection.
	for i, g := range da1.Collection() {
		if (g != da0.Collection()[i]) != (g.Name == "g3") {
			t.Fatalf("graph %d (%s) sharing wrong", i, g.Name)
		}
	}
	// The mutated doc's version is the new store version; untouched docs
	// keep their install version (the per-doc cache vector depends on it).
	if da1.Version() != s.Version() {
		t.Fatalf("mutated doc version %d, store %d", da1.Version(), s.Version())
	}
	if db1.Version() != db0.Version() {
		t.Fatalf("untouched doc version moved: %d -> %d", db0.Version(), db1.Version())
	}
}

// randomMutation generates one valid mutation against the model state.
func randomMutation(rng *rand.Rand, s *store.DocStore, doc string) store.Mutation {
	snap := s.Snapshot()
	d, ok := snap.Doc(doc)
	var names []string
	if ok {
		for _, g := range d.Collection() {
			names = append(names, g.Name)
		}
	}
	newName := func(prefix string) string {
		return fmt.Sprintf("%s%d", prefix, rng.Int63())
	}
	if len(names) == 0 || rng.Intn(12) == 0 {
		return store.Mutation{Op: store.OpCreateGraph, Doc: doc, Graph: newName("ng"),
			Attrs: graph.TupleOf("", "label", "G")}
	}
	target := names[rng.Intn(len(names))]
	g := func() *graph.Graph {
		for _, gg := range d.Collection() {
			if gg.Name == target {
				return gg
			}
		}
		return nil
	}()
	pickNode := func() (string, bool) {
		if g.NumNodes() == 0 {
			return "", false
		}
		return g.Nodes()[rng.Intn(g.NumNodes())].Name, true
	}
	switch rng.Intn(10) {
	case 0:
		return store.Mutation{Op: store.OpDropGraph, Doc: doc, Graph: target}
	case 1, 2:
		if n, ok := pickNode(); ok && rng.Intn(3) == 0 {
			return store.Mutation{Op: store.OpDeleteNode, Doc: doc, Graph: target, Name: n}
		}
		return store.Mutation{Op: store.OpInsertNode, Doc: doc, Graph: target, Name: newName("n"),
			Attrs: graph.TupleOf("", "label", string(rune('A'+rng.Intn(3))))}
	case 3:
		if g.NumEdges() > 0 {
			e := g.Edges()[rng.Intn(g.NumEdges())]
			return store.Mutation{Op: store.OpDeleteEdge, Doc: doc, Graph: target, Name: e.Name}
		}
		fallthrough
	default:
		from, ok1 := pickNode()
		to, ok2 := pickNode()
		if !ok1 || !ok2 {
			return store.Mutation{Op: store.OpInsertNode, Doc: doc, Graph: target, Name: newName("n"),
				Attrs: graph.TupleOf("", "label", "A")}
		}
		return store.Mutation{Op: store.OpInsertEdge, Doc: doc, Graph: target, Name: newName("e"), From: from, To: to}
	}
}

// TestApplyIncrementalEquivalence is the acceptance-criteria test: a
// randomized mutation sequence over a sharded, indexed store must leave
// every document byte-equivalent to registering its final collection from
// scratch — same partition, same ordinals, and a path index Equal to a
// from-scratch gindex.Build of each shard.
func TestApplyIncrementalEquivalence(t *testing.T) {
	const ixLen = 2
	for _, seed := range []int64{1, 2, 3} {
		rng := rand.New(rand.NewSource(seed))
		s := store.New(store.Options{Shards: 4, IndexMaxLen: ixLen})
		s.RegisterDoc("db", randomCollection(12, seed))
		for round := 0; round < 25; round++ {
			batch := make([]store.Mutation, 1+rng.Intn(4))
			for i := range batch {
				batch[i] = randomMutation(rng, s, "db")
			}
			if _, err := s.ApplyBatch(context.Background(), batch); err != nil {
				// Random batches can self-collide (e.g. delete then target the
				// deleted node); all-or-nothing means the store is untouched.
				continue
			}
			d, _ := s.Snapshot().Doc("db")

			fresh := store.New(store.Options{Shards: 4, IndexMaxLen: ixLen})
			fresh.RegisterDoc("db", d.Collection())
			fd, _ := fresh.Snapshot().Doc("db")

			if len(d.Shards()) != len(fd.Shards()) {
				t.Fatalf("seed %d round %d: %d shards, rebuild has %d", seed, round, len(d.Shards()), len(fd.Shards()))
			}
			for si, sh := range d.Shards() {
				fsh := fd.Shards()[si]
				if len(sh.Ords) != len(fsh.Ords) {
					t.Fatalf("seed %d round %d shard %d: ords %v vs rebuild %v", seed, round, si, sh.Ords, fsh.Ords)
				}
				for i := range sh.Ords {
					if sh.Ords[i] != fsh.Ords[i] {
						t.Fatalf("seed %d round %d shard %d: ords %v vs rebuild %v", seed, round, si, sh.Ords, fsh.Ords)
					}
					if sh.Coll[i] != d.Collection()[sh.Ords[i]] {
						t.Fatalf("seed %d round %d shard %d: coll entry %d not aliasing canonical collection", seed, round, si, i)
					}
				}
				if !sh.Ix.Equal(gindex.Build(sh.Coll, ixLen)) {
					t.Fatalf("seed %d round %d shard %d: incremental index != from-scratch build", seed, round, si)
				}
				if !sh.Ix.Equal(fsh.Ix) {
					t.Fatalf("seed %d round %d shard %d: incremental index != rebuild index", seed, round, si)
				}
			}
		}
	}
}

// Incremental index updates must not mutate the old snapshot's postings:
// a reader holding the pre-mutation snapshot keeps getting pre-mutation
// candidates.
func TestApplyOldSnapshotIsolation(t *testing.T) {
	s := store.New(store.Options{Shards: 2, IndexMaxLen: 2})
	s.RegisterDoc("db", randomCollection(8, 3))
	before := s.Snapshot()
	db, _ := before.Doc("db")
	var wantSigs []string
	for _, g := range db.Collection() {
		wantSigs = append(wantSigs, g.Signature())
	}
	for i := 0; i < 10; i++ {
		if _, err := s.ApplyBatch(context.Background(), []store.Mutation{
			{Op: store.OpInsertNode, Doc: "db", Graph: "g1", Name: fmt.Sprintf("x%d", i), Attrs: graph.TupleOf("", "label", "C")},
		}); err != nil {
			t.Fatal(err)
		}
	}
	for i, g := range db.Collection() {
		if g.Signature() != wantSigs[i] {
			t.Fatalf("old snapshot graph %d mutated", i)
		}
	}
	if db.Len() != 8 {
		t.Fatal("old snapshot collection resized")
	}
}
