// Mutation application: the transactional write path of the store. A
// batch of mutations stages against the current state under the writer
// lock, validates every operation (accumulating positioned errors, graph.
// Builder-style), and commits all touched documents under a single version
// bump — or commits nothing. Node/edge deltas are maintained
// incrementally: the touched graph keeps its canonical ordinal (shardOf
// depends only on name and ordinal), so only its shard is rebuilt and the
// shard's path index is updated in place of a full Build. Graph drops
// shift ordinals and force a full repartition of the document — the
// documented slow path.
package store

import (
	"context"
	"errors"
	"fmt"
	"sort"

	"gqldb/internal/gindex"
	"gqldb/internal/graph"
	"gqldb/internal/obs"
)

// MutationOp discriminates the store-level mutation operations, mirroring
// the language's mutation statement kinds.
type MutationOp uint8

// Mutation operations.
const (
	OpCreateGraph MutationOp = iota
	OpDropGraph
	OpInsertNode
	OpInsertEdge
	OpDeleteNode
	OpDeleteEdge
)

// String names the operation for positioned errors and the WAL dump tool.
func (op MutationOp) String() string {
	switch op {
	case OpCreateGraph:
		return "create graph"
	case OpDropGraph:
		return "drop graph"
	case OpInsertNode:
		return "insert node"
	case OpInsertEdge:
		return "insert edge"
	case OpDeleteNode:
		return "delete node"
	case OpDeleteEdge:
		return "delete edge"
	}
	return fmt.Sprintf("op(%d)", uint8(op))
}

// Mutation is one store-level write: the lowered, language-independent
// form of a mutation statement (and the unit the WAL serializes).
type Mutation struct {
	// Op selects the operation.
	Op MutationOp
	// Doc is the target document name.
	Doc string
	// Graph is the target graph name within the document.
	Graph string
	// Name is the node/edge name for insert/delete operations.
	Name string
	// From and To name the endpoints of an inserted edge.
	From, To string
	// Attrs carries attribute literals for create graph / insert node /
	// insert edge. The store takes ownership; callers must not mutate it.
	Attrs *graph.Tuple
	// Body is an optional literal body for OpCreateGraph (its Name should
	// equal Graph). The store takes ownership.
	Body *graph.Graph
}

// ApplyResult summarizes one committed batch.
type ApplyResult struct {
	// Version is the store version the batch committed as.
	Version uint64 `json:"version"`
	// Mutations is the number of mutations in the batch.
	Mutations     int `json:"mutations"`
	GraphsCreated int `json:"graphs_created"`
	GraphsDropped int `json:"graphs_dropped"`
	NodesAdded    int `json:"nodes_added"`
	EdgesAdded    int `json:"edges_added"`
	NodesDeleted  int `json:"nodes_deleted"`
	EdgesDeleted  int `json:"edges_deleted"`
}

// Mutator is the write seam the exec layer routes mutation programs
// through: DocStore implements it directly, Durable wraps it with WAL
// durability.
type Mutator interface {
	// ApplyBatch applies the batch transactionally and returns the commit
	// summary. On error nothing is applied.
	ApplyBatch(ctx context.Context, muts []Mutation) (*ApplyResult, error)
}

// Apply applies the batch transactionally and returns the new store
// version. All-or-nothing: on error the store is unchanged and every
// invalid mutation is reported with its batch position.
func (s *DocStore) Apply(ctx context.Context, muts []Mutation) (uint64, error) {
	res, err := s.ApplyBatch(ctx, muts)
	if err != nil {
		return 0, err
	}
	return res.Version, nil
}

// ApplyBatch is Apply returning the full commit summary.
func (s *DocStore) ApplyBatch(ctx context.Context, muts []Mutation) (*ApplyResult, error) {
	s.wmu.Lock()
	defer s.wmu.Unlock()
	st, err := s.stageApply(ctx, muts)
	if err != nil {
		return nil, err
	}
	st.result.Version = s.commitApply(st)
	return &st.result, nil
}

// stagedDoc is the working state of one document touched by a batch.
type stagedDoc struct {
	name string
	// base is the document the stage started from (nil for a fresh doc).
	base *Doc
	// coll is the working collection: base order with changed ordinals
	// replaced/appended in place. Unchanged entries alias the base.
	coll graph.Collection
	// byName maps graph name to ordinal (first occurrence wins for
	// collections registered with duplicate names).
	byName map[string]int
	// owned marks ordinals whose graph the stage may mutate (cloned from
	// the base, freshly created, or rebuilt).
	owned map[int]bool
	// changed records ordinals whose graph differs from the base.
	changed map[int]bool
	// dropped is set when a graph was removed: ordinals shifted, the
	// commit must repartition the document from scratch.
	dropped bool
}

type stagedApply struct {
	result ApplyResult
	docs   map[string]*stagedDoc
}

// stageApply computes the post-batch state of every touched document
// without publishing anything. Caller holds wmu, so the store state is
// stable for the whole stage+commit. Errors accumulate across the batch
// (every bad mutation is reported, with its position) and any error
// aborts the whole batch.
func (s *DocStore) stageApply(ctx context.Context, muts []Mutation) (*stagedApply, error) {
	if len(muts) == 0 {
		return nil, errors.New("store: apply: empty batch")
	}
	st := &stagedApply{docs: make(map[string]*stagedDoc)}
	st.result.Mutations = len(muts)
	snap := s.Snapshot()
	var errs []error
	fail := func(i int, m *Mutation, format string, args ...any) {
		errs = append(errs, fmt.Errorf("store: apply: mutation %d (%s): %s",
			i, m.Op, fmt.Sprintf(format, args...)))
	}
	for i := range muts {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("store: apply: %w", err)
		}
		m := &muts[i]
		sd, ok := st.docs[m.Doc]
		if !ok {
			base, exists := snap.Doc(m.Doc)
			if !exists && m.Op != OpCreateGraph {
				fail(i, m, "unknown document %q", m.Doc)
				continue
			}
			sd = newStagedDoc(m.Doc, base)
			st.docs[m.Doc] = sd
		}
		if err := sd.apply(m, &st.result); err != nil {
			errs = append(errs, fmt.Errorf("store: apply: mutation %d (%s): %w", i, m.Op, err))
		}
	}
	if len(errs) > 0 {
		return nil, errors.Join(errs...)
	}
	return st, nil
}

func newStagedDoc(name string, base *Doc) *stagedDoc {
	sd := &stagedDoc{
		name:    name,
		base:    base,
		byName:  make(map[string]int),
		owned:   make(map[int]bool),
		changed: make(map[int]bool),
	}
	if base != nil {
		sd.coll = append(graph.Collection(nil), base.coll...)
		for ord, g := range base.coll {
			if _, dup := sd.byName[g.Name]; !dup {
				sd.byName[g.Name] = ord
			}
		}
	}
	return sd
}

// workGraph returns a mutable copy of the graph at ord, cloning the shared
// base graph on first touch.
func (sd *stagedDoc) workGraph(ord int) *graph.Graph {
	if !sd.owned[ord] {
		sd.coll[ord] = sd.coll[ord].Clone()
		sd.owned[ord] = true
	}
	sd.changed[ord] = true
	return sd.coll[ord]
}

// apply validates and applies one mutation to the staged document.
func (sd *stagedDoc) apply(m *Mutation, res *ApplyResult) error {
	switch m.Op {
	case OpCreateGraph:
		if _, dup := sd.byName[m.Graph]; dup {
			return fmt.Errorf("store: graph %q already exists in document %q", m.Graph, sd.name)
		}
		g := m.Body
		if g == nil {
			g = graph.New(m.Graph)
			g.Attrs = m.Attrs
		} else {
			if g.Name != m.Graph {
				return fmt.Errorf("store: body graph is named %q, statement targets %q", g.Name, m.Graph)
			}
			if err := g.Err(); err != nil {
				return err
			}
		}
		ord := len(sd.coll)
		sd.coll = append(sd.coll, g)
		sd.byName[m.Graph] = ord
		sd.owned[ord] = true
		sd.changed[ord] = true
		res.GraphsCreated++
		res.NodesAdded += g.NumNodes()
		res.EdgesAdded += g.NumEdges()
		return nil
	case OpDropGraph:
		ord, ok := sd.byName[m.Graph]
		if !ok {
			return fmt.Errorf("store: unknown graph %q in document %q", m.Graph, sd.name)
		}
		sd.coll = append(sd.coll[:ord:ord], sd.coll[ord+1:]...)
		sd.dropped = true
		// Ordinals shifted: rebuild the name and ownership maps. Changed
		// ordinals no longer matter — the commit repartitions from scratch.
		sd.byName = make(map[string]int, len(sd.coll))
		for o, g := range sd.coll {
			if _, dup := sd.byName[g.Name]; !dup {
				sd.byName[g.Name] = o
			}
		}
		next := make(map[int]bool, len(sd.owned))
		for o := range sd.owned {
			switch {
			case o < ord:
				next[o] = true
			case o > ord:
				next[o-1] = true
			}
		}
		sd.owned = next
		res.GraphsDropped++
		return nil
	}
	// The remaining operations address a node or edge inside one graph.
	ord, ok := sd.byName[m.Graph]
	if !ok {
		return fmt.Errorf("store: unknown graph %q in document %q", m.Graph, sd.name)
	}
	switch m.Op {
	case OpInsertNode:
		if err := m.Attrs.Err(); err != nil {
			return err
		}
		g := sd.coll[ord]
		if _, dup := g.NodeByName(m.Name); dup {
			return fmt.Errorf("store: duplicate node name %q in graph %q", m.Name, m.Graph)
		}
		sd.workGraph(ord).AddNode(m.Name, m.Attrs)
		res.NodesAdded++
	case OpInsertEdge:
		if err := m.Attrs.Err(); err != nil {
			return err
		}
		g := sd.coll[ord]
		if _, dup := g.EdgeByName(m.Name); dup {
			return fmt.Errorf("store: duplicate edge name %q in graph %q", m.Name, m.Graph)
		}
		from, ok1 := g.NodeByName(m.From)
		to, ok2 := g.NodeByName(m.To)
		if !ok1 || !ok2 {
			return fmt.Errorf("store: edge %q references unknown node (%q, %q) in graph %q",
				m.Name, m.From, m.To, m.Graph)
		}
		sd.workGraph(ord).AddEdge(m.Name, from, to, m.Attrs)
		res.EdgesAdded++
	case OpDeleteNode:
		g := sd.coll[ord]
		id, ok := g.NodeByName(m.Name)
		if !ok {
			return fmt.Errorf("store: unknown node %q in graph %q", m.Name, m.Graph)
		}
		ng, removedEdges := rebuildWithout(g, id, graph.NoEdge)
		sd.coll[ord] = ng
		sd.owned[ord] = true
		sd.changed[ord] = true
		res.NodesDeleted++
		res.EdgesDeleted += removedEdges
	case OpDeleteEdge:
		g := sd.coll[ord]
		id, ok := g.EdgeByName(m.Name)
		if !ok {
			return fmt.Errorf("store: unknown edge %q in graph %q", m.Name, m.Graph)
		}
		ng, _ := rebuildWithout(g, graph.NoNode, id)
		sd.coll[ord] = ng
		sd.owned[ord] = true
		sd.changed[ord] = true
		res.EdgesDeleted++
	default:
		return fmt.Errorf("store: unknown operation %d", m.Op)
	}
	return nil
}

// rebuildWithout copies g minus one node (and its incident edges) and/or
// one edge. Graphs have no in-place deletion — IDs are dense and adjacency
// is positional — so deletion is reconstruction. Attribute tuples are
// shared with g: store graphs are immutable after publication, so
// structural copies never deep-copy attributes.
func rebuildWithout(g *graph.Graph, dropNode graph.NodeID, dropEdge graph.EdgeID) (*graph.Graph, int) {
	ng := graph.New(g.Name)
	ng.Directed = g.Directed
	ng.Attrs = g.Attrs
	remap := make([]graph.NodeID, g.NumNodes())
	for _, n := range g.Nodes() {
		if n.ID == dropNode {
			remap[n.ID] = graph.NoNode
			continue
		}
		remap[n.ID] = ng.AddNode(n.Name, n.Attrs)
	}
	removed := 0
	for _, e := range g.Edges() {
		if e.ID == dropEdge {
			continue
		}
		if remap[e.From] == graph.NoNode || remap[e.To] == graph.NoNode {
			removed++
			continue
		}
		ng.AddEdge(e.Name, remap[e.From], remap[e.To], e.Attrs)
	}
	return ng, removed
}

// commitApply publishes every staged document under one version bump.
// Caller holds wmu.
func (s *DocStore) commitApply(st *stagedApply) uint64 {
	docs := make(map[string]*Doc, len(st.docs))
	for name, sd := range st.docs {
		docs[name] = s.buildStagedDoc(sd)
	}
	obs.MutationsApplied.Add(int64(st.result.Mutations))
	return s.installAll(docs)
}

// buildStagedDoc materializes a staged document. The fast path keeps the
// base partition: node/edge deltas and appended graphs leave every
// unchanged ordinal in its shard (shardOf depends only on graph name and
// ordinal), so only the touched shards are rebuilt — with their path
// indexes updated incrementally. Drops, fresh documents and shard-count
// changes repartition from scratch.
func (s *DocStore) buildStagedDoc(sd *stagedDoc) *Doc {
	full := sd.base == nil || sd.dropped
	var n int
	if !full {
		n = len(sd.base.shards)
		if n2 := clampShards(s.opts.Shards, len(sd.coll)); n2 != n {
			// Growth crossed the shard-count clamp: repartition.
			full = true
		}
	}
	if full {
		obs.StoreDocRebuilds.Inc()
		b := NewDocBuilder(sd.name, s.opts.Shards, s.opts.IndexMaxLen)
		for _, g := range sd.coll {
			b.Add(g)
		}
		return b.Build()
	}
	d := &Doc{Name: sd.name, coll: sd.coll}
	byShard := make(map[int][]int)
	for ord := range sd.changed {
		si := shardOf(sd.coll[ord], ord, n)
		byShard[si] = append(byShard[si], ord)
	}
	shards := make([]*Shard, n)
	copy(shards, sd.base.shards)
	for si, ords := range byShard {
		shards[si] = rebuildShard(sd.base.shards[si], sd.coll, ords, s.opts.IndexMaxLen)
		obs.StoreShardRebuilds.Inc()
	}
	d.shards = shards
	return d
}

// clampShards mirrors DocBuilder.Build's shard-count clamp: never more
// shards than graphs, and one shard for an empty collection.
func clampShards(shards, collLen int) int {
	if shards < 1 {
		shards = 1
	}
	if shards > collLen && collLen > 0 {
		shards = collLen
	}
	if collLen == 0 {
		shards = 1
	}
	return shards
}

// rebuildShard copies one shard with the changed canonical ordinals
// replaced (same shard-local position) or appended (canonical ordinals
// past the base keep Ords ascending because appends grow the collection
// tail). The shard's path index is updated incrementally from the old one.
func rebuildShard(old *Shard, coll graph.Collection, changedOrds []int, ixLen int) *Shard {
	sort.Ints(changedOrds)
	ns := &Shard{
		Ords: append([]int32(nil), old.Ords...),
		Coll: append(graph.Collection(nil), old.Coll...),
	}
	pos := make(map[int32]int, len(old.Ords))
	for i, o := range old.Ords {
		pos[o] = i
	}
	changedLocal := make([]int32, 0, len(changedOrds))
	for _, ord := range changedOrds {
		if i, ok := pos[int32(ord)]; ok {
			ns.Coll[i] = coll[ord]
			changedLocal = append(changedLocal, int32(i))
		} else {
			ns.Ords = append(ns.Ords, int32(ord))
			ns.Coll = append(ns.Coll, coll[ord])
			changedLocal = append(changedLocal, int32(len(ns.Coll)-1))
		}
	}
	if ixLen > 0 {
		if old.Ix != nil {
			ns.Ix = old.Ix.Update(ns.Coll, changedLocal)
		} else {
			ns.Ix = gindex.Build(ns.Coll, ixLen)
		}
	}
	return ns
}
