// RemoteSelector: the multi-process ShardSelector. It speaks the wire
// protocol (wire.go) against N shard-server endpoints, turning the
// in-process Coordinator into a cluster query router without changing the
// fan-out/merge. Every shard server mirrors the full document set and
// partitions it identically (shardOf is deterministic), so shard ordinal i
// is served by endpoint i mod N and every other endpoint is a replica —
// which is what makes bounded retry rotation and hedging correct.
package store

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/url"
	"strings"
	"sync"
	"time"

	"gqldb/internal/algebra"
	"gqldb/internal/graph"
	"gqldb/internal/obs"
)

// ShardError is the per-shard failure report of a remote selection: which
// endpoint last answered (or refused), which shard of which document was
// being fetched, and how many attempts were burned. By default it fails
// the whole query; under allow-partial the shard is dropped instead and
// the degradation is visible on the result's RemoteInfo and the
// gqldb_shard_partial_results_total counter.
type ShardError struct {
	Endpoint string
	Doc      string
	Shard    int
	Attempts int
	Err      error
}

func (e *ShardError) Error() string {
	return fmt.Sprintf("store: shard %d of %q unavailable after %d attempt(s) (last endpoint %s): %v",
		e.Shard, e.Doc, e.Attempts, e.Endpoint, e.Err)
}

// Unwrap exposes the last attempt's error to errors.Is/As.
func (e *ShardError) Unwrap() error { return e.Err }

// ShardHealth is one endpoint's last-probe state, surfaced on the
// frontend's /healthz.
type ShardHealth struct {
	Endpoint string    `json:"endpoint"`
	Healthy  bool      `json:"healthy"`
	Err      string    `json:"error,omitempty"`
	Checked  time.Time `json:"checked"`
	Version  uint64    `json:"store_version,omitempty"`
	Docs     int       `json:"docs,omitempty"`
}

// RemoteSelector implements ShardSelector over HTTP shard servers.
//
// Configure with the Set* mutators before the first SelectShard; they are
// startup-only (not synchronized against serving — enforced by gqlvet's
// gosafe table). Health state is mutex-guarded: Probe may run on a
// background ticker while queries fan out.
type RemoteSelector struct {
	endpoints []string
	client    *http.Client

	// timeout bounds each attempt; retries bounds attempts beyond the
	// first; hedgeAfter, when positive, fires a duplicate request at the
	// next replica if the primary has not answered in time; allowPartial
	// degrades a dead shard to an empty answer instead of failing the
	// query.
	timeout      time.Duration
	retries      int
	hedgeAfter   time.Duration
	allowPartial bool

	mu     sync.Mutex
	health []ShardHealth
}

// NewRemoteSelector returns a selector over the given shard-server base
// URLs (e.g. "http://127.0.0.1:7301"). Defaults: 10s per-attempt timeout,
// 2 retries, hedging off, partial results off.
func NewRemoteSelector(endpoints []string) *RemoteSelector {
	eps := make([]string, len(endpoints))
	health := make([]ShardHealth, len(endpoints))
	for i, ep := range endpoints {
		eps[i] = strings.TrimRight(ep, "/")
		health[i] = ShardHealth{Endpoint: eps[i]}
	}
	return &RemoteSelector{
		endpoints: eps,
		client:    &http.Client{},
		timeout:   10 * time.Second,
		retries:   2,
		health:    health,
	}
}

// SetTimeout sets the per-attempt timeout (0 disables). Startup-only.
func (r *RemoteSelector) SetTimeout(d time.Duration) { r.timeout = d }

// SetRetries sets the retry budget beyond the first attempt (each retry
// rotates to the next replica endpoint). Startup-only.
func (r *RemoteSelector) SetRetries(n int) {
	if n < 0 {
		n = 0
	}
	r.retries = n
}

// SetHedgeAfter enables hedging: a duplicate request to the next replica
// when the primary has not answered within d (0 disables). Startup-only.
func (r *RemoteSelector) SetHedgeAfter(d time.Duration) { r.hedgeAfter = d }

// SetAllowPartial opts into degraded answers: a shard whose attempts are
// exhausted contributes no matches instead of failing the query.
// Startup-only.
func (r *RemoteSelector) SetAllowPartial(v bool) { r.allowPartial = v }

// Endpoints returns the configured shard-server base URLs.
func (r *RemoteSelector) Endpoints() []string {
	out := make([]string, len(r.endpoints))
	copy(out, r.endpoints)
	return out
}

// endpoint maps a rotation index to a base URL.
func (r *RemoteSelector) endpoint(i int) string {
	return r.endpoints[i%len(r.endpoints)]
}

// SelectShard implements ShardSelector: encode the request once, then
// attempt endpoints starting at the shard's primary (index mod N),
// rotating on retry. A stale handshake answer triggers one resync push
// before retrying the same endpoint; hedging and timeouts apply per
// attempt. The answer's RemoteInfo records the path taken.
func (r *RemoteSelector) SelectShard(ctx context.Context, req ShardRequest) (ShardResult, error) {
	if req.Doc == nil {
		return ShardResult{}, errors.New("store: remote selection needs ShardRequest.Doc")
	}
	if len(r.endpoints) == 0 {
		return ShardResult{}, errors.New("store: remote selector has no endpoints")
	}
	start := time.Now()
	wr := &WireRequest{
		Doc:     req.Doc.Name,
		Shard:   req.Index,
		Shards:  len(req.Doc.Shards()),
		Version: req.Doc.Version(),
		Hash:    req.Doc.ContentHash(),
		Workers: req.Workers,
		Pattern: EncodePattern(req.P),
		Options: EncodeOptions(req.Opt),
	}
	var buf bytes.Buffer
	if err := EncodeRequest(&buf, wr); err != nil {
		return ShardResult{}, err
	}
	payload := buf.Bytes()

	info := &RemoteInfo{}
	resyncBudget := 1
	attempt := 0
	var lastErr error
	var lastEndpoint string
	for {
		if err := ctx.Err(); err != nil {
			return ShardResult{}, err
		}
		ep := r.endpoint(req.Index + attempt)
		lastEndpoint = ep
		res, from, hedged, hedgeWon, err := r.attemptOne(ctx, ep, req, payload, attempt)
		if hedged {
			info.Hedged = true
		}
		if err == nil {
			info.Attempts = attempt + 1
			info.Endpoint = from
			info.HedgeWon = hedgeWon
			info.Wall = time.Since(start)
			res.Remote = info
			return res, nil
		}
		obs.ShardRPCErrors.Inc()
		lastErr = err
		if errIsStale(err) && resyncBudget > 0 {
			// The convergence path, not a failure retry: push the frontend's
			// document and ask the same endpoint again without burning the
			// retry budget.
			resyncBudget--
			if serr := r.sync(ctx, ep, req.Doc); serr == nil {
				info.Resynced = true
				obs.ShardResyncs.Inc()
				continue
			} else {
				lastErr = serr
			}
		}
		attempt++
		if attempt > r.retries {
			break
		}
		obs.ShardRetries.Inc()
	}
	if r.allowPartial {
		obs.ShardPartialResults.Inc()
		info.Attempts = attempt
		info.Endpoint = lastEndpoint
		info.Degraded = true
		info.Wall = time.Since(start)
		return ShardResult{
			Groups: make([]algebra.Matched, len(req.Shard.Coll)),
			Remote: info,
		}, nil
	}
	return ShardResult{}, &ShardError{
		Endpoint: lastEndpoint,
		Doc:      req.Doc.Name,
		Shard:    req.Index,
		Attempts: attempt,
		Err:      lastErr,
	}
}

// attemptOne issues one (possibly hedged) request. With hedging enabled
// and a distinct replica available, the primary races a delayed duplicate;
// the first success wins and cancels the loser. Returns the answering
// endpoint and whether a hedge fired/won.
func (r *RemoteSelector) attemptOne(ctx context.Context, primary string, req ShardRequest, payload []byte, attempt int) (ShardResult, string, bool, bool, error) {
	backup := r.endpoint(req.Index + attempt + 1)
	if r.hedgeAfter <= 0 || backup == primary {
		res, err := r.call(ctx, primary, req, payload)
		return res, primary, false, false, err
	}

	actx, cancel := context.WithCancel(ctx)
	defer cancel()
	type answer struct {
		res   ShardResult
		ep    string
		hedge bool
		err   error
	}
	ch := make(chan answer, 2)
	launch := func(ep string, hedge bool) {
		go func() {
			res, err := r.call(actx, ep, req, payload)
			ch <- answer{res: res, ep: ep, hedge: hedge, err: err}
		}()
	}
	launch(primary, false)
	inflight := 1
	hedged := false
	timer := time.NewTimer(r.hedgeAfter)
	defer timer.Stop()
	var firstErr error
	for inflight > 0 {
		select {
		case <-ctx.Done():
			return ShardResult{}, primary, hedged, false, ctx.Err()
		case <-timer.C:
			if !hedged {
				hedged = true
				inflight++
				obs.ShardHedges.Inc()
				launch(backup, true)
			}
		case a := <-ch:
			inflight--
			if a.err == nil {
				if a.hedge {
					obs.ShardHedgeWins.Inc()
				}
				cancel()
				return a.res, a.ep, hedged, a.hedge, nil
			}
			firstErr = a.err
			if !hedged {
				// The primary failed before the hedge delay: fire the backup
				// immediately rather than waiting out the timer.
				hedged = true
				inflight++
				obs.ShardHedges.Inc()
				launch(backup, true)
			}
		}
	}
	return ShardResult{}, primary, hedged, false, firstErr
}

// call issues one shard-select request against one endpoint and decodes
// the NDJSON answer (in-band error frames surface as *ShardRemoteError).
func (r *RemoteSelector) call(ctx context.Context, endpoint string, req ShardRequest, payload []byte) (ShardResult, error) {
	obs.ShardRPCs.Inc()
	cctx := ctx
	if r.timeout > 0 {
		var cancel context.CancelFunc
		cctx, cancel = context.WithTimeout(ctx, r.timeout)
		defer cancel()
	}
	hreq, err := http.NewRequestWithContext(cctx, http.MethodPost, endpoint+"/shard/select", bytes.NewReader(payload))
	if err != nil {
		return ShardResult{}, err
	}
	hreq.Header.Set("Content-Type", "application/json")
	resp, err := r.client.Do(hreq)
	if err != nil {
		return ShardResult{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return ShardResult{}, fmt.Errorf("store: shard endpoint %s answered HTTP %d", endpoint, resp.StatusCode)
	}
	return DecodeResult(resp.Body, req)
}

// sync pushes the frontend's document (binary collection serialization) to
// a shard server whose mirror went stale, so the next attempt's handshake
// matches. The shard re-partitions and re-indexes locally on install.
func (r *RemoteSelector) sync(ctx context.Context, endpoint string, d *Doc) error {
	var buf bytes.Buffer
	if err := graph.WriteBinary(&buf, d.Collection()); err != nil {
		return err
	}
	cctx := ctx
	if r.timeout > 0 {
		var cancel context.CancelFunc
		cctx, cancel = context.WithTimeout(ctx, r.timeout)
		defer cancel()
	}
	u := endpoint + "/shard/sync?doc=" + url.QueryEscape(d.Name) + "&hash=" + url.QueryEscape(d.ContentHash())
	hreq, err := http.NewRequestWithContext(cctx, http.MethodPost, u, bytes.NewReader(buf.Bytes()))
	if err != nil {
		return err
	}
	hreq.Header.Set("Content-Type", "application/octet-stream")
	resp, err := r.client.Do(hreq)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("store: shard sync to %s answered HTTP %d", endpoint, resp.StatusCode)
	}
	return nil
}

// Probe health-checks every endpoint once, updating the state returned by
// Health. Safe to run on a background ticker while queries fan out.
func (r *RemoteSelector) Probe(ctx context.Context) {
	for i, ep := range r.endpoints {
		h := ShardHealth{Endpoint: ep, Checked: time.Now()}
		if err := r.probeOne(ctx, ep, &h); err != nil {
			h.Healthy = false
			h.Err = err.Error()
			obs.ShardProbeFailures.Inc()
		}
		r.mu.Lock()
		r.health[i] = h
		r.mu.Unlock()
	}
}

func (r *RemoteSelector) probeOne(ctx context.Context, ep string, h *ShardHealth) error {
	cctx, cancel := context.WithTimeout(ctx, 2*time.Second)
	defer cancel()
	hreq, err := http.NewRequestWithContext(cctx, http.MethodGet, ep+"/healthz", nil)
	if err != nil {
		return err
	}
	resp, err := r.client.Do(hreq)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("store: health probe answered HTTP %d", resp.StatusCode)
	}
	var body struct {
		Status  string `json:"status"`
		Docs    int    `json:"docs"`
		Version uint64 `json:"store_version"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		return err
	}
	h.Healthy = body.Status == "ok"
	h.Docs = body.Docs
	h.Version = body.Version
	if !h.Healthy {
		return fmt.Errorf("store: endpoint reports status %q", body.Status)
	}
	return nil
}

// Health returns a copy of every endpoint's last-probe state.
func (r *RemoteSelector) Health() []ShardHealth {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]ShardHealth, len(r.health))
	copy(out, r.health)
	return out
}

// StartProbing launches a background prober (immediate probe, then every
// interval) and returns its stop function. The prober exits when ctx is
// canceled or stop is called.
func (r *RemoteSelector) StartProbing(ctx context.Context, every time.Duration) (stop func()) {
	pctx, cancel := context.WithCancel(ctx)
	go func() {
		t := time.NewTicker(every)
		defer t.Stop()
		r.Probe(pctx)
		for {
			select {
			case <-pctx.Done():
				return
			case <-t.C:
				r.Probe(pctx)
			}
		}
	}()
	return cancel
}
