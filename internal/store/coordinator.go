package store

import (
	"context"
	"time"

	"gqldb/internal/algebra"
	"gqldb/internal/graph"
	"gqldb/internal/match"
	"gqldb/internal/obs"
	"gqldb/internal/pattern"
	"gqldb/internal/pool"
)

// ShardRequest is one shard's slice of a selection: the shard to scan plus
// the matching options. It is a plain value struct so a future RPC shard
// client can serialize it as-is (the pattern travels by source text in that
// world; in-process it is the compiled pattern pointer).
type ShardRequest struct {
	Shard *Shard
	P     *pattern.Pattern
	Opt   match.Options
	// IxFor supplies optional per-graph access structures (the §4.1 value
	// indexes), exactly as in algebra.SelectionContext. Not serializable —
	// an RPC implementation rebuilds it shard-side.
	IxFor func(*graph.Graph) *match.Index
	// Workers bounds the shard-local fan-out (resolved, >= 1).
	Workers int
	// Doc is the owning document and Index the shard's ordinal in
	// Doc.Shards(). The Coordinator fills both; LocalSelector ignores them,
	// the remote selector needs them for the wire request (document name,
	// partition width, version handshake) and endpoint routing.
	Doc   *Doc
	Index int
}

// ShardResult is one shard's answer: per-member match groups plus the
// filter counters the coordinator aggregates into its trace span.
type ShardResult struct {
	// Groups is parallel to Shard.Coll: Groups[i] holds the bindings of
	// member graph i in discovery order (nil when it matched nothing or was
	// pruned by the shard index).
	Groups []algebra.Matched
	// Candidates is how many member graphs survived the shard-index filter
	// and were actually verified.
	Candidates int
	// Remote describes how a remote selector obtained this answer (nil for
	// in-process results); the coordinator turns it into a per-shard trace
	// span so EXPLAIN can show the fan-out.
	Remote *RemoteInfo
}

// Group returns the bindings of shard-local member li (nil when it matched
// nothing). The returned slice aliases the result's shared backing —
// callers must treat it as read-only; the engine layer owns cloning.
func (r *ShardResult) Group(li int) algebra.Matched { return r.Groups[li] }

// RemoteInfo records how a remote selector answered one shard request.
type RemoteInfo struct {
	// Endpoint is the shard server that produced the answer.
	Endpoint string
	// Attempts is the total request attempts (1 = first try succeeded).
	Attempts int
	// Hedged reports whether a hedge request fired; HedgeWon whether the
	// replica's answer was the one used.
	Hedged   bool
	HedgeWon bool
	// Resynced reports whether the stale-version handshake pushed the
	// document to the shard before the answer.
	Resynced bool
	// Degraded reports an allow-partial empty answer after all attempts
	// failed (the shard's matches are missing from the result).
	Degraded bool
	// Wall is the end-to-end time spent obtaining the answer.
	Wall time.Duration
}

// ShardSelector evaluates selection over a single shard. This interface is
// the multi-process seam: LocalSelector runs in-process; a future RPC
// client implements the same contract against a remote shard server, and
// the Coordinator's fan-out/merge does not change.
type ShardSelector interface {
	SelectShard(ctx context.Context, req ShardRequest) (ShardResult, error)
}

// LocalSelector is the in-process ShardSelector: index-filter the shard's
// members (when the shard carries a path index), then match the survivors
// on a bounded worker pool.
type LocalSelector struct{}

// SelectShard implements ShardSelector. req.P must already be compiled
// (the Coordinator compiles once before fan-out; concurrent Compile calls
// on a compiled pattern only read the done flag).
func (LocalSelector) SelectShard(ctx context.Context, req ShardRequest) (ShardResult, error) {
	sh := req.Shard
	res := ShardResult{Groups: make([]algebra.Matched, len(sh.Coll))}
	// Shard-local candidate set: ordinals into sh.Coll. A nil slice from a
	// carrying index is proof no member can match (gindex contract).
	var work []int32
	if sh.Ix != nil {
		cands, err := sh.Ix.Candidates(req.P)
		if err != nil {
			return res, err
		}
		work = cands
		obs.GindexCandidates.Add(int64(len(cands)))
		obs.GindexPruned.Add(int64(len(sh.Coll) - len(cands)))
	} else {
		work = make([]int32, len(sh.Coll))
		for i := range work {
			work[i] = int32(i)
		}
	}
	res.Candidates = len(work)
	workers := pool.Workers(req.Workers, len(work))
	err := pool.Run(ctx, len(work), workers, func(i int) error {
		li := work[i]
		g := sh.Coll[li]
		var ix *match.Index
		if req.IxFor != nil {
			ix = req.IxFor(g)
		}
		maps, _, err := match.FindContext(ctx, req.P, g, ix, req.Opt)
		if err != nil {
			return err
		}
		for _, m := range maps {
			res.Groups[li] = append(res.Groups[li], &algebra.MatchedGraph{P: req.P, G: g, M: m})
		}
		return nil
	})
	return res, err
}

// Coordinator fans a selection across a document's shards and merges the
// per-shard answers back into canonical collection order. Selector defaults
// to the in-process LocalSelector; swapping in an RPC implementation turns
// this into the multi-process query router without touching the merge.
type Coordinator struct {
	Selector ShardSelector
}

// Select evaluates σ_P over the document: every shard is handed to the
// selector on the worker pool, and the per-shard match groups are merged
// back in canonical ordinal order — so the concatenated output is
// byte-identical to a serial scan of the unsharded collection (same graph
// order, same binding order within each graph). Select is the collect form
// of SelectStream.
//
// workers bounds the total fan-out: shards run concurrently (at most
// workers at once) and each shard's local pool gets an equal share, so the
// end-to-end goroutine count stays ~workers regardless of shard count.
func (co *Coordinator) Select(ctx context.Context, d *Doc, p *pattern.Pattern, opt match.Options, ixFor func(*graph.Graph) *match.Index, workers int, stats *match.Stats) (algebra.Matched, error) {
	var out algebra.Matched
	err := co.SelectStream(ctx, d, p, opt, ixFor, workers, stats, func(ms algebra.Matched) error {
		out = append(out, ms...)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// SelectStream is Select with a push consumer: shards still evaluate
// concurrently, but the merge is a frontier walk — as each shard reports
// done, every canonical ordinal whose owning shard has finished is emitted
// (non-empty groups only, ascending ordinal), so downstream consumers see
// the first rows while slower shards are still matching. emit runs on the
// calling goroutine; an emit error (including the streaming pipeline's
// early-stop sentinel) cancels the remaining shard fan-out and is returned
// as-is.
func (co *Coordinator) SelectStream(ctx context.Context, d *Doc, p *pattern.Pattern, opt match.Options, ixFor func(*graph.Graph) *match.Index, workers int, stats *match.Stats, emit func(algebra.Matched) error) error {
	if err := p.Compile(); err != nil {
		return err
	}
	sel := co.Selector
	if sel == nil {
		sel = LocalSelector{}
	}
	shards := d.Shards()
	resolved := pool.Workers(workers, d.Len())
	outer := resolved
	if outer > len(shards) {
		outer = len(shards)
	}
	inner := resolved / len(shards)
	if inner < 1 {
		inner = 1
	}
	sctx, sp := obs.StartSpan(ctx, "sharded-selection")
	if sp != nil {
		sp.Add("items", int64(d.Len()))
		sp.Add("shards", int64(len(shards)))
		sp.Add("workers", int64(resolved))
	}
	start := time.Now()

	// Ordinal ownership: which shard (and local index) holds each canonical
	// ordinal, so the frontier walk reads groups straight out of shard
	// results without building a slot array.
	ordShard := make([]int32, d.Len())
	ordLocal := make([]int32, d.Len())
	for si, sh := range shards {
		for li, ord := range sh.Ords {
			ordShard[ord] = int32(si)
			ordLocal[ord] = int32(li)
		}
	}

	fanCtx, cancel := context.WithCancel(sctx)
	defer cancel()
	// done carries shard indexes as they complete (buffered: workers never
	// block on it); perr carries the pool's terminal error. The done send
	// happens before pool.Run returns, so results[si] is safely published
	// to the merging goroutine by the channel receive.
	doneCh := make(chan int, len(shards))
	perr := make(chan error, 1)
	results := make([]ShardResult, len(shards))
	go func() {
		perr <- pool.Run(fanCtx, len(shards), outer, func(i int) error {
			req := ShardRequest{Shard: shards[i], P: p, Opt: opt, IxFor: ixFor, Workers: inner, Doc: d, Index: i}
			res, err := sel.SelectShard(fanCtx, req)
			if err != nil {
				return err
			}
			results[i] = res
			doneCh <- i
			return nil
		})
	}()

	ready := make([]bool, len(shards))
	frontier := 0
	matches := 0
	candidates := 0
	// advance emits every ordinal whose owning shard has reported, in
	// ascending canonical order — exactly the serial-scan sequence.
	advance := func() error {
		for frontier < d.Len() && ready[ordShard[frontier]] { //gqlvet:ignore ctxpoll -- frontier advances every iteration; bounded by the document's member count
			group := results[ordShard[frontier]].Groups[ordLocal[frontier]]
			frontier++
			if len(group) == 0 {
				continue
			}
			matches += len(group)
			if err := emit(group); err != nil {
				return err
			}
		}
		return nil
	}
	arrived := func(si int) error {
		ready[si] = true
		candidates += results[si].Candidates
		// Remote answers get a per-shard child span. arrived runs on the
		// coordinator goroutine (the merge loop), so the coordinator-only
		// span mutators are safe here — workers must not touch sp.
		if ri := results[si].Remote; ri != nil && sp != nil {
			child := sp.StartChild("shard-rpc")
			child.Add("shard", int64(si))
			child.Add("attempts", int64(ri.Attempts))
			child.Add("wall_us", ri.Wall.Microseconds())
			if ri.Hedged {
				child.Add("hedged", 1)
			}
			if ri.HedgeWon {
				child.Add("hedge_won", 1)
			}
			if ri.Resynced {
				child.Add("resynced", 1)
			}
			if ri.Degraded {
				child.Add("degraded", 1)
			}
			child.SetAttr("endpoint", ri.Endpoint)
			child.End()
		}
		return advance()
	}

	remaining := len(shards)
	poolDone := false
	var poolErr, emitErr error
	for remaining > 0 && emitErr == nil && !poolDone { //gqlvet:ignore ctxpoll -- every iteration retires a shard or ends the pool; the blocking receives resolve because pool.Run itself polls the fan-out ctx
		select {
		case si := <-doneCh:
			remaining--
			emitErr = arrived(si)
		case poolErr = <-perr:
			poolDone = true
			// Completion signals that raced the pool's return are buffered;
			// drain them (a failed pool leaves some shards unsignaled — the
			// default arm ends the drain).
			for remaining > 0 && emitErr == nil { //gqlvet:ignore ctxpoll -- non-blocking drain; the default arm zeroes remaining on the first empty read
				select {
				case si := <-doneCh:
					remaining--
					emitErr = arrived(si)
				default:
					remaining = 0
				}
			}
		}
	}
	if emitErr != nil {
		// The consumer stopped the stream (or failed): cancel the in-flight
		// shards and wait for the pool to unwind before returning.
		cancel()
		if !poolDone {
			<-perr
		}
		sp.End()
		return emitErr
	}
	if !poolDone {
		poolErr = <-perr
	}
	if poolErr != nil {
		sp.End()
		return poolErr
	}
	wall := time.Since(start)
	obs.ShardedSelections.Inc()
	obs.SelectionSeconds.Observe(wall)
	stats.RecordOp("sharded-selection", d.Len(), resolved, wall)
	obs.Matches.Add(int64(matches))
	if sp != nil {
		sp.Add("cand_shards", int64(candidates))
		sp.Add("matches", int64(matches))
	}
	sp.SetAttr("pattern", p.Name)
	sp.End()
	return nil
}
