package store_test

import (
	"context"
	"fmt"
	"math/rand"
	"sort"
	"strconv"
	"testing"

	"gqldb/internal/algebra"
	"gqldb/internal/ast"
	"gqldb/internal/exec"
	"gqldb/internal/graph"
	"gqldb/internal/match"
	"gqldb/internal/parser"
	"gqldb/internal/pattern"
	"gqldb/internal/store"
)

// randomCollection builds n small random labeled graphs (deterministic per
// seed) — enough matches and enough spread that sharding and fan-out have
// real work to reorder if the merge were wrong.
func randomCollection(n int, seed int64) graph.Collection {
	rng := rand.New(rand.NewSource(seed))
	var c graph.Collection
	for i := 0; i < n; i++ {
		g := graph.New(fmt.Sprintf("g%d", i))
		k := 3 + rng.Intn(4)
		for j := 0; j < k; j++ {
			g.AddNode("", graph.TupleOf("", "label", string(rune('A'+rng.Intn(3)))))
		}
		for j := 0; j < 2*k; j++ {
			u, v := rng.Intn(k), rng.Intn(k)
			if u != v {
				g.AddEdge("", graph.NodeID(u), graph.NodeID(v), nil)
			}
		}
		c = append(c, g)
	}
	return c
}

const storeQuery = `
graph P { node v1 where label="A"; node v2 where label="B"; edge (v1, v2); };
for P exhaustive in doc("db")
return graph { node P.v1; node P.v2; edge (P.v1, P.v2); };
`

// abPattern compiles the A—B edge pattern used by the direct coordinator
// tests.
func abPattern(t testing.TB) *pattern.Pattern {
	t.Helper()
	prog, err := parser.Parse(`graph P { node v1 where label="A"; node v2 where label="B"; edge (v1, v2); };`)
	if err != nil {
		t.Fatal(err)
	}
	d, ok := prog.Stmts[0].(*ast.GraphDecl)
	if !ok {
		t.Fatalf("expected a graph declaration, got %T", prog.Stmts[0])
	}
	p, err := d.ToPattern()
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// renderResult flattens a query result to one comparable string (variables
// in sorted order — map iteration is not deterministic).
func renderResult(res *exec.Result) string {
	s := ""
	for _, g := range res.Out {
		s += g.String() + "\n"
	}
	names := make([]string, 0, len(res.Vars))
	for name := range res.Vars {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		s += name + "=" + res.Vars[name].String() + "\n"
	}
	return s
}

// TestShardPartition: every member graph lands in exactly one shard, shard
// ordinals ascend, and the partition is deterministic across builds.
func TestShardPartition(t *testing.T) {
	coll := randomCollection(100, 3)
	for _, shards := range []int{1, 4, 17, 1000} {
		s := store.New(store.Options{Shards: shards})
		s.RegisterDoc("db", coll)
		d, ok := s.Snapshot().Doc("db")
		if !ok {
			t.Fatal("doc missing from snapshot")
		}
		if d.Len() != len(coll) {
			t.Fatalf("shards=%d: doc has %d graphs, want %d", shards, d.Len(), len(coll))
		}
		seen := make([]bool, len(coll))
		for _, sh := range d.Shards() {
			if len(sh.Ords) != len(sh.Coll) {
				t.Fatalf("shards=%d: ords/coll length mismatch", shards)
			}
			prev := int32(-1)
			for li, ord := range sh.Ords {
				if ord <= prev {
					t.Fatalf("shards=%d: shard ordinals not ascending (%d after %d)", shards, ord, prev)
				}
				prev = ord
				if seen[ord] {
					t.Fatalf("shards=%d: graph %d assigned twice", shards, ord)
				}
				seen[ord] = true
				if sh.Coll[li] != coll[ord] {
					t.Fatalf("shards=%d: shard-local graph %d is not collection member %d", shards, li, ord)
				}
			}
		}
		for ord, ok := range seen {
			if !ok {
				t.Fatalf("shards=%d: graph %d assigned to no shard", shards, ord)
			}
		}
		if shards > len(coll) && len(d.Shards()) > len(coll) {
			t.Fatalf("shards=%d: materialized %d shards for %d graphs", shards, len(d.Shards()), len(coll))
		}
		// Deterministic partition: a second build assigns identically.
		s2 := store.New(store.Options{Shards: shards})
		s2.RegisterDoc("db", coll)
		d2, _ := s2.Snapshot().Doc("db")
		for si, sh := range d.Shards() {
			sh2 := d2.Shards()[si]
			if len(sh.Ords) != len(sh2.Ords) {
				t.Fatalf("shards=%d: partition not deterministic", shards)
			}
			for i := range sh.Ords {
				if sh.Ords[i] != sh2.Ords[i] {
					t.Fatalf("shards=%d: partition not deterministic", shards)
				}
			}
		}
	}
}

// TestCoordinatorMatchesSerialSelection: the coordinator's fan-out/merge
// over every shard count reproduces the serial unsharded selection exactly —
// same graphs in the same order with the same bindings.
func TestCoordinatorMatchesSerialSelection(t *testing.T) {
	coll := randomCollection(80, 5)
	p := abPattern(t)
	opt := match.Options{Exhaustive: true}
	want, err := algebra.Selection(p, coll, opt, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(want) == 0 {
		t.Fatal("degenerate test: serial selection found nothing")
	}
	for _, shards := range []int{1, 4, 17} {
		for _, indexLen := range []int{0, 2} {
			s := store.New(store.Options{Shards: shards, IndexMaxLen: indexLen})
			s.RegisterDoc("db", coll)
			d, _ := s.Snapshot().Doc("db")
			for _, workers := range []int{1, 4, -1} {
				co := &store.Coordinator{}
				stats := &match.Stats{}
				got, err := co.Select(context.Background(), d, p, opt, nil, workers, stats)
				if err != nil {
					t.Fatalf("shards=%d ix=%d workers=%d: %v", shards, indexLen, workers, err)
				}
				if len(got) != len(want) {
					t.Fatalf("shards=%d ix=%d workers=%d: %d matches, want %d", shards, indexLen, workers, len(got), len(want))
				}
				for i := range want {
					if got[i].G != want[i].G {
						t.Fatalf("shards=%d ix=%d workers=%d: match %d bound to wrong graph", shards, indexLen, workers, i)
					}
					if got[i].InducedGraph().String() != want[i].InducedGraph().String() {
						t.Fatalf("shards=%d ix=%d workers=%d: match %d binding differs", shards, indexLen, workers, i)
					}
				}
				if len(stats.Ops) != 1 || stats.Ops[0].Op != "sharded-selection" {
					t.Fatalf("shards=%d: expected one sharded-selection OpStat, got %v", shards, stats.Ops)
				}
			}
		}
	}
}

// TestEngineShardedByteIdentical: full programs over sharded stores produce
// byte-identical output to the unsharded serial engine for shards ∈
// {1, 4, 17} and workers ∈ {1, N} — the PR's acceptance grid.
func TestEngineShardedByteIdentical(t *testing.T) {
	coll := randomCollection(90, 11)
	prog, err := parser.Parse(storeQuery)
	if err != nil {
		t.Fatal(err)
	}
	oracle, err := exec.New(exec.Store{"db": coll}).Run(prog)
	if err != nil {
		t.Fatal(err)
	}
	if len(oracle.Out) == 0 {
		t.Fatal("degenerate test: no results")
	}
	want := renderResult(oracle)
	for _, shards := range []int{1, 4, 17} {
		for _, indexLen := range []int{0, 2} {
			s := store.New(store.Options{Shards: shards, IndexMaxLen: indexLen})
			s.RegisterDoc("db", coll)
			for _, workers := range []int{1, 16, -1} {
				e := exec.NewOver(s)
				e.Workers = workers
				res, err := e.RunContext(context.Background(), prog)
				if err != nil {
					t.Fatalf("shards=%d ix=%d workers=%d: %v", shards, indexLen, workers, err)
				}
				if got := renderResult(res); got != want {
					t.Fatalf("shards=%d ix=%d workers=%d: output differs from unsharded serial engine", shards, indexLen, workers)
				}
			}
		}
	}
}

// TestVersioning: every mutation bumps the version; snapshots are immutable
// views that never observe later writes.
func TestVersioning(t *testing.T) {
	s := store.New(store.Options{})
	if v := s.Version(); v != 0 {
		t.Fatalf("fresh store at version %d, want 0", v)
	}
	c1 := randomCollection(5, 1)
	if v := s.RegisterDoc("a", c1); v != 1 {
		t.Fatalf("first register → version %d, want 1", v)
	}
	snap1 := s.Snapshot()
	if v := s.RegisterDoc("b", c1); v != 2 {
		t.Fatalf("second register → version %d, want 2", v)
	}
	if _, ok := snap1.Doc("b"); ok {
		t.Fatal("older snapshot observes a later registration")
	}
	if v := s.RemoveDoc("a"); v != 3 {
		t.Fatalf("remove → version %d, want 3", v)
	}
	if _, ok := s.Snapshot().Doc("a"); ok {
		t.Fatal("removed doc still visible")
	}
	if d, ok := snap1.Doc("a"); !ok || d.Len() != 5 {
		t.Fatal("older snapshot lost its doc after removal")
	}
}

// TestCacheNeverStale is the staleness acceptance test: a cached result is
// served only until RegisterDoc bumps the store version; the next query
// misses and reflects the new data.
func TestCacheNeverStale(t *testing.T) {
	collA := randomCollection(40, 21)
	s := store.New(store.Options{Shards: 4})
	s.RegisterDoc("db", collA)
	e := exec.NewOver(s)
	e.Cache = store.NewCache(8)
	e.Workers = 4
	ctx := context.Background()

	res1, err := e.RunQuery(ctx, storeQuery)
	if err != nil {
		t.Fatal(err)
	}
	if st := e.Cache.Stats(); st.Misses != 1 || st.Hits != 0 || st.Entries != 1 {
		t.Fatalf("after first query: %+v, want 1 miss 0 hits 1 entry", st)
	}

	// Second run hits: identical output, no operators executed.
	res2, err := e.RunQuery(ctx, storeQuery)
	if err != nil {
		t.Fatal(err)
	}
	if st := e.Cache.Stats(); st.Hits != 1 {
		t.Fatalf("after second query: %+v, want 1 hit", st)
	}
	if renderResult(res1) != renderResult(res2) {
		t.Fatal("cache hit returned a different result")
	}
	if len(res2.Stats.Ops) != 0 {
		t.Fatal("cache hit executed operators")
	}

	// A hit must not alias cached graphs: mutating the served result and
	// querying again still returns the original data.
	res2.Out[0].AddNode("tainted", graph.TupleOf("", "label", "Z"))
	res3, err := e.RunQuery(ctx, storeQuery)
	if err != nil {
		t.Fatal(err)
	}
	if renderResult(res3) != renderResult(res1) {
		t.Fatal("mutating a served result leaked into the cache")
	}

	// Mutation: the very next query must miss and see the new collection.
	collB := randomCollection(40, 99)
	s.RegisterDoc("db", collB)
	oracle, err := exec.New(exec.Store{"db": collB}).Run(mustParse(t, storeQuery))
	if err != nil {
		t.Fatal(err)
	}
	res4, err := e.RunQuery(ctx, storeQuery)
	if err != nil {
		t.Fatal(err)
	}
	if renderResult(res4) != renderResult(oracle) {
		t.Fatal("post-mutation query did not reflect the new data")
	}
	if renderResult(res4) == renderResult(res1) {
		t.Fatal("degenerate test: both collections produce identical results")
	}
	st := e.Cache.Stats()
	if st.Hits != 2 || st.Invalidations != 1 {
		t.Fatalf("after mutation: %+v, want 2 hits and 1 invalidation", st)
	}
}

func mustParse(t testing.TB, src string) *ast.Program {
	t.Helper()
	prog, err := parser.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	return prog
}

// TestCacheKeyIndependence: worker count and program formatting are not
// part of the cache identity; a different document set is.
func TestCacheKeyIndependence(t *testing.T) {
	s := store.New(store.Options{})
	s.RegisterDoc("db", randomCollection(20, 7))
	e := exec.NewOver(s)
	e.Cache = store.NewCache(8)
	ctx := context.Background()

	if _, err := e.RunQuery(ctx, storeQuery); err != nil {
		t.Fatal(err)
	}
	// Different worker setting, same program: must hit.
	e16 := e.Request(exec.RequestOptions{Workers: 16})
	if _, err := e16.RunQuery(ctx, storeQuery); err != nil {
		t.Fatal(err)
	}
	if st := e.Cache.Stats(); st.Hits != 1 {
		t.Fatalf("worker-count change missed the cache: %+v", st)
	}
	// Reformatted program (whitespace + comments): must hit.
	reformatted := "// a comment\n" + "graph P { node v1 where label=\"A\";\n\tnode v2 where label=\"B\"; edge (v1, v2); };\nfor P exhaustive in doc(\"db\")\nreturn graph { node P.v1; node P.v2; edge (P.v1, P.v2); };"
	if _, err := e.RunQuery(ctx, reformatted); err != nil {
		t.Fatal(err)
	}
	if st := e.Cache.Stats(); st.Hits != 2 {
		t.Fatalf("reformatted program missed the cache: %+v", st)
	}
}

// TestCacheLRU exercises the capacity bound and version discipline at the
// unit level.
func TestCacheLRU(t *testing.T) {
	c := store.NewCache(2)
	k := func(p string, v uint64) store.CacheKey {
		return store.CacheKey{Program: p, Docs: "db", Vers: strconv.FormatUint(v, 10)}
	}
	c.Put(k("a", 1), "A")
	c.Put(k("b", 1), "B")
	if _, ok := c.Get(k("a", 1)); !ok {
		t.Fatal("a evicted prematurely")
	}
	// a is now most-recent; inserting c evicts b.
	c.Put(k("c", 1), "C")
	if _, ok := c.Get(k("b", 1)); ok {
		t.Fatal("LRU kept the least-recently-used entry")
	}
	if _, ok := c.Get(k("a", 1)); !ok {
		t.Fatal("LRU evicted the recently-used entry")
	}
	st := c.Stats()
	if st.Evictions != 1 || st.Entries != 2 {
		t.Fatalf("stats %+v, want 1 eviction 2 entries", st)
	}
	// Version 2 purges everything; version-1 reads and writes are dead.
	c.Put(k("d", 2), "D")
	if _, ok := c.Get(k("a", 1)); ok {
		t.Fatal("stale version served after purge")
	}
	c.Put(k("e", 1), "E")
	if _, ok := c.Get(k("e", 1)); ok {
		t.Fatal("stale-version Put stored an entry")
	}
	if _, ok := c.Get(k("d", 2)); !ok {
		t.Fatal("current-version entry lost")
	}
	if st := c.Stats(); st.Invalidations != 1 {
		t.Fatalf("stats %+v, want 1 invalidation", st)
	}
}
