package store_test

import (
	"context"
	"fmt"
	"sync"
	"testing"

	"gqldb/internal/exec"
	"gqldb/internal/graph"
	"gqldb/internal/match"
	"gqldb/internal/store"
)

// docQuery renders the A—B edge query over the named document.
func docQuery(doc string) string {
	return fmt.Sprintf(`
graph P { node v1 where label="A"; node v2 where label="B"; edge (v1, v2); };
for P exhaustive in doc(%q)
return graph { node P.v1; node P.v2; edge (P.v1, P.v2); };
`, doc)
}

// addMatchBatch returns a mutation batch that adds one more A—B match to
// the named document's first graph.
func addMatchBatch(doc string, k int) []store.Mutation {
	return []store.Mutation{
		{Op: store.OpInsertNode, Doc: doc, Graph: "g0", Name: fmt.Sprintf("ca%d", k), Attrs: graph.TupleOf("", "label", "A")},
		{Op: store.OpInsertNode, Doc: doc, Graph: "g0", Name: fmt.Sprintf("cb%d", k), Attrs: graph.TupleOf("", "label", "B")},
		{Op: store.OpInsertEdge, Doc: doc, Graph: "g0", Name: fmt.Sprintf("ce%d", k), From: fmt.Sprintf("ca%d", k), To: fmt.Sprintf("cb%d", k)},
	}
}

// TestCacheCrossDocIsolation is the per-document invalidation acceptance
// test: a mutation to document A must purge A's cached results while
// provably leaving document B's result-cache entries live (hit counters
// asserted), across a shards × workers grid.
func TestCacheCrossDocIsolation(t *testing.T) {
	for _, shards := range []int{1, 4} {
		for _, workers := range []int{1, 4} {
			t.Run(fmt.Sprintf("shards=%d_workers=%d", shards, workers), func(t *testing.T) {
				s := store.New(store.Options{Shards: shards, IndexMaxLen: 2})
				s.RegisterDoc("a", randomCollection(20, 31))
				s.RegisterDoc("b", randomCollection(20, 32))
				e := exec.NewOver(s)
				e.Cache = store.NewCache(16)
				e.Workers = workers
				ctx := context.Background()

				qa, qb := docQuery("a"), docQuery("b")
				for _, q := range []string{qa, qb, qa, qb} {
					if _, err := e.RunQuery(ctx, q); err != nil {
						t.Fatal(err)
					}
				}
				st := e.Cache.Stats()
				if st.Hits != 2 || st.Misses != 2 || st.Entries != 2 {
					t.Fatalf("warmup stats %+v, want 2 hits 2 misses 2 entries", st)
				}

				if _, err := s.ApplyBatch(ctx, addMatchBatch("a", 0)); err != nil {
					t.Fatal(err)
				}
				// Doc b's entry must still be served post-mutation...
				resB, err := e.RunQuery(ctx, qb)
				if err != nil {
					t.Fatal(err)
				}
				st = e.Cache.Stats()
				if st.Hits != 3 {
					t.Fatalf("doc-b query missed after doc-a mutation: %+v", st)
				}
				if len(resB.Stats.Ops) != 0 {
					t.Fatal("doc-b query executed operators instead of hitting the cache")
				}
				// ...while doc a's entry is purged: the next a-query misses and
				// reflects the new data.
				resA, err := e.RunQuery(ctx, qa)
				if err != nil {
					t.Fatal(err)
				}
				st = e.Cache.Stats()
				if st.Hits != 3 || st.Misses != 3 || st.Invalidations != 1 {
					t.Fatalf("post-mutation stats %+v, want 3 hits 3 misses 1 invalidation", st)
				}
				oracle, err := exec.NewOver(s).RunQuery(ctx, qa)
				if err != nil {
					t.Fatal(err)
				}
				if renderResult(resA) != renderResult(oracle) {
					t.Fatal("post-mutation doc-a query served stale data")
				}
			})
		}
	}
}

// TestPlanCacheCrossDocIsolation: a mutation to document A must leave
// document B's cached plans live (plan-cache hit counters asserted), and
// only A's plans are invalidated on next probe.
func TestPlanCacheCrossDocIsolation(t *testing.T) {
	s := store.New(store.Options{Shards: 2})
	s.RegisterDoc("a", randomCollection(8, 41))
	s.RegisterDoc("b", randomCollection(8, 42))
	e := exec.NewOver(s) // no result cache: every run reaches the planner
	e.Plans = match.NewPlanCache(64)
	ctx := context.Background()

	qa, qb := docQuery("a"), docQuery("b")
	for _, q := range []string{qa, qb, qa, qb} {
		if _, err := e.RunQuery(ctx, q); err != nil {
			t.Fatal(err)
		}
	}
	warm := e.Plans.Stats()
	if warm.Hits == 0 {
		t.Fatalf("warmup produced no plan hits: %+v", warm)
	}
	if _, err := s.ApplyBatch(ctx, addMatchBatch("a", 0)); err != nil {
		t.Fatal(err)
	}
	// Doc b re-runs entirely on cached plans: hits advance by the per-run
	// hit count, with no invalidations.
	perRunB := warm.Hits / 2 // two warm runs each hit once per graph
	if _, err := e.RunQuery(ctx, qb); err != nil {
		t.Fatal(err)
	}
	st := e.Plans.Stats()
	if st.Hits != warm.Hits+perRunB {
		t.Fatalf("doc-b plans were not preserved: hits %d, want %d (%+v)", st.Hits, warm.Hits+perRunB, st)
	}
	if st.Invalidations != 0 {
		t.Fatalf("doc-b run invalidated plans: %+v", st)
	}
	// Doc a re-runs invalidate the untouched graphs' plans (same graph
	// pointer, moved document version) and re-plan the mutated one.
	if _, err := e.RunQuery(ctx, qa); err != nil {
		t.Fatal(err)
	}
	st = e.Plans.Stats()
	if st.Invalidations == 0 {
		t.Fatalf("doc-a plans survived the document version bump: %+v", st)
	}
}

// TestCacheConcurrentApplyVsCachedQueries races Apply batches against
// queries through a shared cached engine; run under -race. Every observed
// result must byte-match the oracle for some committed version of the
// mutated document (old-or-new, never a blend or a stale-beyond-window
// result), and queries over the unmutated document must always serve the
// one fixed oracle result.
func TestCacheConcurrentApplyVsCachedQueries(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test; skipped in -short")
	}
	const batches = 8
	sopts := store.Options{Shards: 4, IndexMaxLen: 2}
	collA, collB := randomCollection(12, 51), randomCollection(12, 52)

	// Precompute the oracle result for every version of doc a.
	validA := make(map[string]bool)
	scratch := store.New(sopts)
	scratch.RegisterDoc("a", collA)
	ctx := context.Background()
	snapshotRender := func(s *store.DocStore, q string) string {
		res, err := exec.NewOver(s).RunQuery(ctx, q)
		if err != nil {
			t.Fatal(err)
		}
		return renderResult(res)
	}
	qa, qb := docQuery("a"), docQuery("b")
	validA[snapshotRender(scratch, qa)] = true
	for k := 0; k < batches; k++ {
		if _, err := scratch.ApplyBatch(ctx, addMatchBatch("a", k)); err != nil {
			t.Fatal(err)
		}
		validA[snapshotRender(scratch, qa)] = true
	}
	if len(validA) < 2 {
		t.Fatal("degenerate test: mutations do not change the result")
	}

	s := store.New(sopts)
	s.RegisterDoc("a", collA)
	s.RegisterDoc("b", collB)
	wantB := snapshotRender(s, qb)
	e := exec.NewOver(s)
	e.Cache = store.NewCache(16)
	e.Plans = match.NewPlanCache(64)

	const readers = 4
	var wg sync.WaitGroup
	errs := make([]error, readers)
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for i := 0; i < 30; i++ {
				resA, err := e.RunQuery(ctx, qa)
				if err != nil {
					errs[r] = err
					return
				}
				if got := renderResult(resA); !validA[got] {
					errs[r] = fmt.Errorf("doc-a result matches no committed version")
					return
				}
				resB, err := e.RunQuery(ctx, qb)
				if err != nil {
					errs[r] = err
					return
				}
				if renderResult(resB) != wantB {
					errs[r] = fmt.Errorf("doc-b result changed under doc-a mutations")
					return
				}
			}
		}(r)
	}
	for k := 0; k < batches; k++ {
		if _, err := s.ApplyBatch(ctx, addMatchBatch("a", k)); err != nil {
			t.Fatal(err)
		}
	}
	wg.Wait()
	for r, err := range errs {
		if err != nil {
			t.Fatalf("reader %d: %v", r, err)
		}
	}
}
