// Append-only write-ahead log for mutation batches. Every committed
// Apply batch is framed as one record:
//
//	header:  magic "GQLW", version byte
//	record:  u32 LE payload length | payload | u32 LE CRC-32 (IEEE) of payload
//	payload: uvarint seq (the store version the batch commits as)
//	         uvarint mutation count
//	         per mutation: op byte, doc, graph, name, from, to (GQLB strings),
//	                       attrs (GQLB tuple), body flag + length-prefixed
//	                       GQLB collection when present
//
// Records are self-checking: on open the log is scanned, and a torn or
// corrupt tail (partial frame from a crash mid-write, CRC mismatch) is
// truncated at the last good record — everything before it replays.
// Appends are a single write syscall per batch; the Sync policy flag
// decides whether each append is fsynced before the caller proceeds
// (durable-before-acknowledge) or left to the OS.
//
// A WAL is single-writer and not goroutine-safe: the Durable store calls
// it with the store's writer lock held (enforced by gqlvet's gosafe table).
package store

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"

	"gqldb/internal/graph"
	"gqldb/internal/obs"
)

const (
	walMagic   = "GQLW"
	walVersion = 1
	// walMaxPayload caps one record's claimed payload size: the length
	// prefix is untrusted on open, and a corrupt length must not allocate
	// unbounded memory before the CRC can reject it.
	walMaxPayload = 1 << 28
)

// WALRecord is one decoded log record: a mutation batch and the store
// version it committed as.
type WALRecord struct {
	Seq  uint64
	Muts []Mutation
}

// WAL is an append-only mutation log backed by one file.
type WAL struct {
	f       *os.File
	path    string
	sync    bool
	records int
}

// OpenWAL opens (or creates) the log at path, scans it, truncates any
// torn or corrupt tail, and returns the log positioned for appending plus
// every intact record in order. sync selects the fsync-per-append policy.
func OpenWAL(path string, sync bool) (*WAL, []WALRecord, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, nil, fmt.Errorf("store: wal: %w", err)
	}
	w := &WAL{f: f, path: path, sync: sync}
	recs, good, err := w.scan()
	if err != nil {
		f.Close()
		return nil, nil, err
	}
	// Drop the torn tail (if any) and position for appending.
	if err := f.Truncate(good); err != nil {
		f.Close()
		return nil, nil, fmt.Errorf("store: wal: truncating torn tail: %w", err)
	}
	if _, err := f.Seek(good, io.SeekStart); err != nil {
		f.Close()
		return nil, nil, fmt.Errorf("store: wal: %w", err)
	}
	w.records = len(recs)
	return w, recs, nil
}

// scan reads the whole log, returning the intact records and the offset
// just past the last good one. A missing header on an empty file is
// written; a wrong header is an error (the file is not ours to truncate).
func (w *WAL) scan() ([]WALRecord, int64, error) {
	info, err := w.f.Stat()
	if err != nil {
		return nil, 0, fmt.Errorf("store: wal: %w", err)
	}
	if info.Size() == 0 {
		hdr := append([]byte(walMagic), walVersion)
		if _, err := w.f.Write(hdr); err != nil {
			return nil, 0, fmt.Errorf("store: wal: writing header: %w", err)
		}
		if err := w.f.Sync(); err != nil {
			return nil, 0, fmt.Errorf("store: wal: %w", err)
		}
		return nil, int64(len(hdr)), nil
	}
	if _, err := w.f.Seek(0, io.SeekStart); err != nil {
		return nil, 0, fmt.Errorf("store: wal: %w", err)
	}
	r := bufio.NewReaderSize(w.f, 1<<16)
	hdr := make([]byte, len(walMagic)+1)
	if _, err := io.ReadFull(r, hdr); err != nil {
		return nil, 0, fmt.Errorf("store: wal: reading header: %w", err)
	}
	if string(hdr[:len(walMagic)]) != walMagic {
		return nil, 0, fmt.Errorf("store: wal: bad magic %q in %s", hdr[:len(walMagic)], w.path)
	}
	if hdr[len(walMagic)] != walVersion {
		return nil, 0, fmt.Errorf("store: wal: unsupported version %d in %s", hdr[len(walMagic)], w.path)
	}
	var recs []WALRecord
	good := int64(len(hdr))
	for { //gqlvet:ignore ctxpoll -- bounded by the log file size; recovery runs before any context exists
		var frame [4]byte
		if _, err := io.ReadFull(r, frame[:]); err != nil {
			// EOF here is a clean end; a short read is a torn length prefix.
			return recs, good, nil
		}
		n := binary.LittleEndian.Uint32(frame[:])
		if n == 0 || n > walMaxPayload {
			return recs, good, nil
		}
		payload := make([]byte, n)
		if _, err := io.ReadFull(r, payload); err != nil {
			return recs, good, nil
		}
		if _, err := io.ReadFull(r, frame[:]); err != nil {
			return recs, good, nil
		}
		if binary.LittleEndian.Uint32(frame[:]) != crc32.ChecksumIEEE(payload) {
			return recs, good, nil
		}
		rec, err := decodeWALPayload(payload)
		if err != nil {
			// The CRC matched but the payload does not decode: this is not a
			// torn write but a format bug or foreign data — refuse to run on
			// it rather than silently dropping committed mutations.
			return nil, 0, fmt.Errorf("store: wal: record %d: %w", len(recs), err)
		}
		recs = append(recs, rec)
		good += int64(8 + n)
	}
}

// Append frames one batch and writes it in a single syscall, fsyncing
// when the log's Sync policy demands durability before acknowledgement.
// Caller holds the store writer lock.
func (w *WAL) Append(seq uint64, muts []Mutation) error {
	payload, err := encodeWALPayload(seq, muts)
	if err != nil {
		return fmt.Errorf("store: wal: encoding batch %d: %w", seq, err)
	}
	frame := make([]byte, 0, len(payload)+8)
	frame = binary.LittleEndian.AppendUint32(frame, uint32(len(payload)))
	frame = append(frame, payload...)
	frame = binary.LittleEndian.AppendUint32(frame, crc32.ChecksumIEEE(payload))
	if _, err := w.f.Write(frame); err != nil {
		return fmt.Errorf("store: wal: appending batch %d: %w", seq, err)
	}
	if w.sync {
		if err := w.f.Sync(); err != nil {
			return fmt.Errorf("store: wal: fsync: %w", err)
		}
	}
	w.records++
	obs.WALAppends.Inc()
	return nil
}

// Records returns the number of records currently in the log.
func (w *WAL) Records() int { return w.records }

// Reset truncates the log back to its header — called after a snapshot
// checkpoint has made the records redundant. Caller holds the store
// writer lock.
func (w *WAL) Reset() error {
	hdrLen := int64(len(walMagic) + 1)
	if err := w.f.Truncate(hdrLen); err != nil {
		return fmt.Errorf("store: wal: reset: %w", err)
	}
	if _, err := w.f.Seek(hdrLen, io.SeekStart); err != nil {
		return fmt.Errorf("store: wal: reset: %w", err)
	}
	if err := w.f.Sync(); err != nil {
		return fmt.Errorf("store: wal: reset: %w", err)
	}
	w.records = 0
	return nil
}

// Close closes the underlying file.
func (w *WAL) Close() error { return w.f.Close() }

func encodeWALPayload(seq uint64, muts []Mutation) ([]byte, error) {
	var buf bytes.Buffer
	bw := bufio.NewWriter(&buf)
	var tmp [binary.MaxVarintLen64]byte
	uv := func(v uint64) {
		n := binary.PutUvarint(tmp[:], v)
		bw.Write(tmp[:n])
	}
	str := func(s string) {
		uv(uint64(len(s)))
		bw.WriteString(s)
	}
	uv(seq)
	uv(uint64(len(muts)))
	for i := range muts {
		m := &muts[i]
		bw.WriteByte(byte(m.Op))
		str(m.Doc)
		str(m.Graph)
		str(m.Name)
		str(m.From)
		str(m.To)
		if err := graph.WriteTuple(bw, m.Attrs); err != nil {
			return nil, err
		}
		if m.Body == nil {
			bw.WriteByte(0)
		} else {
			bw.WriteByte(1)
			var gb bytes.Buffer
			if err := graph.WriteBinary(&gb, graph.Collection{m.Body}); err != nil {
				return nil, err
			}
			uv(uint64(gb.Len()))
			bw.Write(gb.Bytes())
		}
	}
	if err := bw.Flush(); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

func decodeWALPayload(payload []byte) (WALRecord, error) {
	br := bufio.NewReader(bytes.NewReader(payload))
	var rec WALRecord
	seq, err := binary.ReadUvarint(br)
	if err != nil {
		return rec, err
	}
	rec.Seq = seq
	count, err := binary.ReadUvarint(br)
	if err != nil {
		return rec, err
	}
	if count > uint64(len(payload)) {
		return rec, fmt.Errorf("store: wal: implausible mutation count %d", count)
	}
	str := func() (string, error) {
		n, err := binary.ReadUvarint(br)
		if err != nil {
			return "", err
		}
		if n > uint64(len(payload)) {
			return "", fmt.Errorf("store: wal: implausible string length %d", n)
		}
		b := make([]byte, n)
		if _, err := io.ReadFull(br, b); err != nil {
			return "", err
		}
		return string(b), nil
	}
	rec.Muts = make([]Mutation, 0, count)
	for i := uint64(0); i < count; i++ {
		var m Mutation
		op, err := br.ReadByte()
		if err != nil {
			return rec, err
		}
		m.Op = MutationOp(op)
		if m.Doc, err = str(); err != nil {
			return rec, err
		}
		if m.Graph, err = str(); err != nil {
			return rec, err
		}
		if m.Name, err = str(); err != nil {
			return rec, err
		}
		if m.From, err = str(); err != nil {
			return rec, err
		}
		if m.To, err = str(); err != nil {
			return rec, err
		}
		if m.Attrs, err = graph.ReadTuple(br); err != nil {
			return rec, err
		}
		present, err := br.ReadByte()
		if err != nil {
			return rec, err
		}
		if present != 0 {
			n, err := binary.ReadUvarint(br)
			if err != nil {
				return rec, err
			}
			if n > uint64(len(payload)) {
				return rec, fmt.Errorf("store: wal: implausible body length %d", n)
			}
			gb := make([]byte, n)
			if _, err := io.ReadFull(br, gb); err != nil {
				return rec, err
			}
			coll, err := graph.ReadBinary(bytes.NewReader(gb))
			if err != nil {
				return rec, err
			}
			if len(coll) != 1 {
				return rec, fmt.Errorf("store: wal: body holds %d graphs, want 1", len(coll))
			}
			m.Body = coll[0]
		}
		rec.Muts = append(rec.Muts, m)
	}
	return rec, nil
}
