package store_test

import (
	"bufio"
	"context"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"testing"

	"gqldb/internal/graph"
	"gqldb/internal/store"
)

func walBatch() []store.Mutation {
	body := graph.New("gb")
	a := body.AddNode("a", graph.TupleOf("", "label", "A"))
	b := body.AddNode("b", graph.TupleOf("", "label", "B"))
	body.AddEdge("e", a, b, nil)
	return []store.Mutation{
		{Op: store.OpCreateGraph, Doc: "db", Graph: "gb", Body: body},
		{Op: store.OpInsertNode, Doc: "db", Graph: "gb", Name: "c", Attrs: graph.TupleOf("t", "label", "C", "w", int64(3))},
		{Op: store.OpInsertEdge, Doc: "db", Graph: "gb", Name: "e2", From: "a", To: "c"},
		{Op: store.OpDeleteEdge, Doc: "db", Graph: "gb", Name: "e"},
		{Op: store.OpDeleteNode, Doc: "db", Graph: "gb", Name: "b"},
		{Op: store.OpDropGraph, Doc: "other", Graph: "gone"},
	}
}

func TestWALRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	w, recs, err := store.OpenWAL(path, true)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 0 {
		t.Fatalf("fresh log has %d records", len(recs))
	}
	want := walBatch()
	if err := w.Append(7, want); err != nil {
		t.Fatal(err)
	}
	if err := w.Append(8, want[:2]); err != nil {
		t.Fatal(err)
	}
	if w.Records() != 2 {
		t.Fatalf("Records() = %d", w.Records())
	}
	w.Close()

	w2, recs, err := store.OpenWAL(path, false)
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	if len(recs) != 2 || recs[0].Seq != 7 || recs[1].Seq != 8 {
		t.Fatalf("recovered %d records, seqs %v", len(recs), recs)
	}
	got := recs[0].Muts
	if len(got) != len(want) {
		t.Fatalf("batch length %d, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i].Op != want[i].Op || got[i].Doc != want[i].Doc || got[i].Graph != want[i].Graph ||
			got[i].Name != want[i].Name || got[i].From != want[i].From || got[i].To != want[i].To {
			t.Fatalf("mutation %d = %+v, want %+v", i, got[i], want[i])
		}
		if want[i].Attrs.String() != got[i].Attrs.String() {
			t.Fatalf("mutation %d attrs %q, want %q", i, got[i].Attrs, want[i].Attrs)
		}
	}
	if got[0].Body == nil || got[0].Body.Signature() != want[0].Body.Signature() {
		t.Fatalf("body did not survive the round trip")
	}
}

func TestWALTornTailTruncated(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	w, _, err := store.OpenWAL(path, true)
	if err != nil {
		t.Fatal(err)
	}
	w.Append(1, walBatch()[:1])
	w.Append(2, walBatch()[:2])
	w.Close()
	intact, _ := os.ReadFile(path)

	corruptions := map[string]func([]byte) []byte{
		"torn length prefix": func(b []byte) []byte { return append(b, 0x20, 0x00) },
		"torn payload": func(b []byte) []byte {
			return append(append(b, 0x40, 0, 0, 0), []byte("short")...)
		},
		"missing crc": func(b []byte) []byte {
			return append(append(b, 5, 0, 0, 0), []byte("12345ab")...)
		},
		"flipped crc bit": func(b []byte) []byte {
			c := append([]byte(nil), b...)
			c[len(c)-1] ^= 0x01
			return c
		},
	}
	for name, corrupt := range corruptions {
		t.Run(name, func(t *testing.T) {
			p := filepath.Join(t.TempDir(), "wal.log")
			if err := os.WriteFile(p, corrupt(append([]byte(nil), intact...)), 0o644); err != nil {
				t.Fatal(err)
			}
			wantRecs := 2
			if name == "flipped crc bit" {
				wantRecs = 1 // the corruption hits record 2 itself
			}
			w, recs, err := store.OpenWAL(p, false)
			if err != nil {
				t.Fatalf("open after %s: %v", name, err)
			}
			if len(recs) != wantRecs {
				t.Fatalf("recovered %d records, want %d", len(recs), wantRecs)
			}
			// The torn tail must be gone: a fresh append then reopen yields
			// wantRecs+1 intact records.
			if err := w.Append(uint64(wantRecs+1), walBatch()[:1]); err != nil {
				t.Fatal(err)
			}
			w.Close()
			w2, recs, err := store.OpenWAL(p, false)
			if err != nil {
				t.Fatal(err)
			}
			w2.Close()
			if len(recs) != wantRecs+1 {
				t.Fatalf("after truncate+append: %d records, want %d", len(recs), wantRecs+1)
			}
		})
	}
}

func TestWALRejectsForeignAndUndecodable(t *testing.T) {
	dir := t.TempDir()
	foreign := filepath.Join(dir, "foreign.log")
	os.WriteFile(foreign, []byte("NOPExxxx"), 0o644)
	if _, _, err := store.OpenWAL(foreign, false); err == nil || !strings.Contains(err.Error(), "bad magic") {
		t.Fatalf("foreign file: err = %v", err)
	}

	// A CRC-valid but undecodable payload is a format error, not a torn
	// tail: recovery must refuse rather than drop committed data.
	bad := filepath.Join(dir, "bad.log")
	w, _, err := store.OpenWAL(bad, false)
	if err != nil {
		t.Fatal(err)
	}
	w.Close()
	f, _ := os.OpenFile(bad, os.O_WRONLY|os.O_APPEND, 0)
	payload := []byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff}
	var frame []byte
	frame = binary.LittleEndian.AppendUint32(frame, uint32(len(payload)))
	frame = append(frame, payload...)
	frame = binary.LittleEndian.AppendUint32(frame, crc32.ChecksumIEEE(payload))
	f.Write(frame)
	f.Close()
	if _, _, err := store.OpenWAL(bad, false); err == nil {
		t.Fatal("undecodable CRC-valid record must fail open")
	}
}

func durableOpts(dir string) (store.Options, store.DurableOptions) {
	return store.Options{Shards: 4, IndexMaxLen: 2}, store.DurableOptions{
			Dir:             dir,
			Sync:            true,
			CheckpointEvery: 3,
			Bootstrap: func(s *store.DocStore) error {
				if _, ok := s.Snapshot().Doc("db"); !ok {
					s.RegisterDoc("db", randomCollection(4, 42))
				}
				return nil
			},
		}
}

// crashBatch returns the deterministic i-th mutation batch of the crash
// workload. Batches build graphs continuously and periodically delete
// nodes and drop whole graphs, so recovery exercises both the incremental
// and full-repartition commit paths.
func crashBatch(i int) []store.Mutation {
	g := fmt.Sprintf("m%d", i)
	muts := []store.Mutation{
		{Op: store.OpCreateGraph, Doc: "db", Graph: g, Attrs: graph.TupleOf("", "batch", int64(i))},
		{Op: store.OpInsertNode, Doc: "db", Graph: g, Name: "a", Attrs: graph.TupleOf("", "label", "A")},
		{Op: store.OpInsertNode, Doc: "db", Graph: g, Name: "b", Attrs: graph.TupleOf("", "label", "B")},
		{Op: store.OpInsertEdge, Doc: "db", Graph: g, Name: "e", From: "a", To: "b"},
		{Op: store.OpCreateGraph, Doc: "aux", Graph: g},
	}
	if i > 4 && i%4 == 0 {
		muts = append(muts, store.Mutation{Op: store.OpDeleteNode, Doc: "db", Graph: fmt.Sprintf("m%d", i-1), Name: "a"})
	}
	if i > 7 && i%7 == 0 {
		muts = append(muts, store.Mutation{Op: store.OpDropGraph, Doc: "db", Graph: fmt.Sprintf("m%d", i-2)})
	}
	return muts
}

func storeFingerprint(t *testing.T, s *store.DocStore) string {
	t.Helper()
	snap := s.Snapshot()
	var sb strings.Builder
	fmt.Fprintf(&sb, "version=%d\n", snap.Version())
	names := snap.Docs()
	sort.Strings(names)
	for _, name := range names {
		d, _ := snap.Doc(name)
		fmt.Fprintf(&sb, "doc %s v%d hash=%s\n", name, d.Version(), d.ContentHash())
		for _, g := range d.Collection() {
			fmt.Fprintf(&sb, "  graph %s: %s\n", g.Name, g.Signature())
		}
	}
	return sb.String()
}

// TestDurableRecovery is the in-process recovery test: apply batches
// (crossing several automatic checkpoints), close, reopen, and require
// the recovered store to fingerprint identically to an in-memory oracle
// that applied the same batches.
func TestDurableRecovery(t *testing.T) {
	dir := t.TempDir()
	sopts, dopts := durableOpts(dir)
	d, err := store.OpenDurable(sopts, dopts)
	if err != nil {
		t.Fatal(err)
	}
	const n = 10
	for i := 1; i <= n; i++ {
		if _, err := d.ApplyBatch(context.Background(), crashBatch(i)); err != nil {
			t.Fatalf("batch %d: %v", i, err)
		}
	}
	want := storeFingerprint(t, d.DocStore)
	d.Close()

	// CheckpointEvery=3 means recovery combines a snapshot with a WAL
	// suffix — both paths must contribute.
	d2, err := store.OpenDurable(sopts, dopts)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer d2.Close()
	if got := storeFingerprint(t, d2.DocStore); got != want {
		t.Fatalf("recovered state diverged:\n--- want ---\n%s--- got ---\n%s", want, got)
	}

	// Oracle: same bootstrap + batches, never persisted.
	oracle := store.New(sopts)
	dopts.Bootstrap(oracle)
	for i := 1; i <= n; i++ {
		if _, err := oracle.ApplyBatch(context.Background(), crashBatch(i)); err != nil {
			t.Fatalf("oracle batch %d: %v", i, err)
		}
	}
	if got := storeFingerprint(t, oracle); got != want {
		t.Fatalf("oracle diverged from durable store:\n--- want ---\n%s--- got ---\n%s", want, got)
	}
}

func TestDurableRefusesNonDeterministicBootstrap(t *testing.T) {
	dir := t.TempDir()
	sopts, dopts := durableOpts(dir)
	dopts.CheckpointEvery = -1 // keep everything in the WAL
	d, err := store.OpenDurable(sopts, dopts)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.ApplyBatch(context.Background(), crashBatch(1)); err != nil {
		t.Fatal(err)
	}
	d.Close()
	// A bootstrap that registers an extra document shifts the version
	// sequence; replay must refuse instead of guessing.
	bad := dopts
	bad.Bootstrap = func(s *store.DocStore) error {
		dopts.Bootstrap(s)
		s.RegisterDoc("sneaky", randomCollection(1, 1))
		return nil
	}
	if _, err := store.OpenDurable(sopts, bad); err == nil || !strings.Contains(err.Error(), "non-deterministic bootstrap") {
		t.Fatalf("err = %v, want non-deterministic bootstrap refusal", err)
	}
}

// TestWALCrashRecovery is the kill-and-restart acceptance test: a child
// process applies the deterministic crash workload with fsync-per-append
// durability, reporting each acknowledged batch on stdout; the parent
// SIGKILLs it mid-stream, reopens the durability directory, and requires
// (a) every acknowledged batch to have survived and (b) the recovered
// store to fingerprint byte-identically to an oracle that applied the
// same batches in memory.
func TestWALCrashRecovery(t *testing.T) {
	if dir := os.Getenv("GQLDB_WAL_CRASH_DIR"); dir != "" {
		walCrashChild(dir)
		return
	}
	if testing.Short() {
		t.Skip("spawns a child process")
	}
	dir := t.TempDir()
	cmd := exec.Command(os.Args[0], "-test.run", "^TestWALCrashRecovery$", "-test.v")
	cmd.Env = append(os.Environ(), "GQLDB_WAL_CRASH_DIR="+dir)
	out, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	acked := 0
	sc := bufio.NewScanner(out)
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "ACK ") {
			continue
		}
		n, err := strconv.Atoi(strings.TrimPrefix(line, "ACK "))
		if err != nil {
			t.Fatalf("bad ack line %q", line)
		}
		acked = n
		if acked >= 7 {
			// Kill with a batch very likely in flight.
			if err := cmd.Process.Kill(); err != nil {
				t.Fatal(err)
			}
			break
		}
	}
	cmd.Wait()
	if acked < 7 {
		t.Fatalf("child died early: only %d acked batches", acked)
	}

	sopts, dopts := durableOpts(dir)
	d, err := store.OpenDurable(sopts, dopts)
	if err != nil {
		t.Fatalf("recovery after kill -9: %v", err)
	}
	defer d.Close()
	// Bootstrap commits version 1; batch i commits as version 1+i.
	recovered := int(d.Version()) - 1
	if recovered < acked {
		t.Fatalf("recovered %d batches, but child acked %d — durable batches lost", recovered, acked)
	}
	oracle := store.New(sopts)
	dopts.Bootstrap(oracle)
	for i := 1; i <= recovered; i++ {
		if _, err := oracle.ApplyBatch(context.Background(), crashBatch(i)); err != nil {
			t.Fatalf("oracle batch %d: %v", i, err)
		}
	}
	want, got := storeFingerprint(t, oracle), storeFingerprint(t, d.DocStore)
	if want != got {
		t.Fatalf("post-crash state diverged from oracle:\n--- oracle ---\n%s--- recovered ---\n%s", want, got)
	}
	t.Logf("killed after %d acked batches, recovered %d, fingerprints identical", acked, recovered)
}

// walCrashChild runs in the subprocess: apply the crash workload with
// durable acknowledgements until killed.
func walCrashChild(dir string) {
	sopts, dopts := durableOpts(dir)
	d, err := store.OpenDurable(sopts, dopts)
	if err != nil {
		fmt.Println("CHILD-ERR", err)
		os.Exit(1)
	}
	for i := 1; i <= 10000; i++ {
		if _, err := d.ApplyBatch(context.Background(), crashBatch(i)); err != nil {
			fmt.Println("CHILD-ERR", err)
			os.Exit(1)
		}
		fmt.Printf("ACK %d\n", i)
	}
}
