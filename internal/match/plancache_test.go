package match

import (
	"fmt"
	"reflect"
	"testing"

	"gqldb/internal/graph"
	"gqldb/internal/pattern"
)

// TestPlanCacheHitMiss pins the basic contract: a lookup before Put
// misses, a lookup after Put at the same epoch hits, and the counters
// track both.
func TestPlanCacheHitMiss(t *testing.T) {
	g := fig416()
	p := trianglePattern()
	if err := p.Compile(); err != nil {
		t.Fatal(err)
	}
	c := NewPlanCache(8)
	key := planKeyFor(p, g, nil, Optimized())
	if _, ok := c.Get(1, key); ok {
		t.Fatal("hit before Put")
	}
	c.Put(1, key, &Plan{Order: []graph.NodeID{0, 1, 2}})
	pl, ok := c.Get(1, key)
	if !ok || len(pl.Order) != 3 {
		t.Fatalf("miss after Put: %v %v", pl, ok)
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Entries != 1 {
		t.Errorf("stats = %+v, want 1 hit, 1 miss, 1 entry", st)
	}
}

// TestPlanCacheEpochFence pins the statistics-validity fence: an epoch
// bump purges every held plan, and plans for superseded epochs are
// neither stored nor served.
func TestPlanCacheEpochFence(t *testing.T) {
	g := fig416()
	p := trianglePattern()
	if err := p.Compile(); err != nil {
		t.Fatal(err)
	}
	c := NewPlanCache(8)
	key := planKeyFor(p, g, nil, Optimized())
	c.Put(1, key, &Plan{})
	// Newer epoch: the epoch-1 plan is stale and must be purged.
	if _, ok := c.Get(2, key); ok {
		t.Fatal("stale plan served after epoch bump")
	}
	if st := c.Stats(); st.Entries != 0 || st.Invalidations != 1 {
		t.Errorf("stats after bump = %+v, want 0 entries, 1 invalidation", st)
	}
	// A put for a superseded epoch is discarded.
	c.Put(1, key, &Plan{})
	if _, ok := c.Get(2, key); ok {
		t.Fatal("superseded-epoch put was stored")
	}
	// And a read carrying an older epoch than the latest can never hit.
	c.Put(3, key, &Plan{})
	if _, ok := c.Get(2, key); ok {
		t.Fatal("older-epoch read hit a newer plan")
	}
	if _, ok := c.Get(3, key); !ok {
		t.Fatal("current-epoch read missed")
	}
}

// TestPlanCacheLRU pins capacity bounding: the least-recently-used entry
// is evicted first, and SetCapacity shrinks the cache.
func TestPlanCacheLRU(t *testing.T) {
	g := fig416()
	c := NewPlanCache(2)
	keys := make([]PlanKey, 3)
	for i := range keys {
		p := pattern.New(fmt.Sprintf("P%d", i))
		p.LabelNode("a", fmt.Sprintf("L%d", i))
		if err := p.Compile(); err != nil {
			t.Fatal(err)
		}
		keys[i] = planKeyFor(p, g, nil, Options{})
	}
	c.Put(1, keys[0], &Plan{})
	c.Put(1, keys[1], &Plan{})
	c.Get(1, keys[0]) // refresh 0; 1 is now LRU
	c.Put(1, keys[2], &Plan{})
	if _, ok := c.Get(1, keys[1]); ok {
		t.Error("LRU entry survived eviction")
	}
	if _, ok := c.Get(1, keys[0]); !ok {
		t.Error("refreshed entry was evicted")
	}
	if st := c.Stats(); st.Evictions != 1 {
		t.Errorf("evictions = %d, want 1", st.Evictions)
	}
	c.SetCapacity(1)
	if st := c.Stats(); st.Entries != 1 {
		t.Errorf("entries after shrink = %d, want 1", st.Entries)
	}
}

// TestPatternShape pins shape canonicalization: independently built but
// structurally identical patterns share a shape, and any change to tags,
// predicates, wiring or direction changes it.
func TestPatternShape(t *testing.T) {
	shape := func(p *pattern.Pattern) string {
		t.Helper()
		if err := p.Compile(); err != nil {
			t.Fatal(err)
		}
		return PatternShape(p)
	}
	s1, s2 := shape(trianglePattern()), shape(trianglePattern())
	if s1 != s2 {
		t.Errorf("identical patterns differ: %q vs %q", s1, s2)
	}
	d := pattern.New("P") // one label changed: different shape
	a := d.LabelNode("a", "A")
	b := d.LabelNode("b", "B")
	c := d.LabelNode("c", "X")
	d.AddEdge("", a, b, nil, nil)
	d.AddEdge("", b, c, nil, nil)
	d.AddEdge("", c, a, nil, nil)
	if shape(d) == s1 {
		t.Error("label change did not change the shape")
	}
	u := pattern.New("P") // same nodes, different wiring: different shape
	a = u.LabelNode("a", "A")
	b = u.LabelNode("b", "B")
	c = u.LabelNode("c", "C")
	u.AddEdge("", a, b, nil, nil)
	u.AddEdge("", b, c, nil, nil)
	u.AddEdge("", a, c, nil, nil)
	if shape(u) == s1 {
		t.Error("edge rewiring did not change the shape")
	}
}

// TestPlannedMatchesUnplanned runs every option combination with and
// without a plan cache (cold, then hot) and requires identical mappings;
// the hot run must report the cache hit and skip the planning phases.
func TestPlannedMatchesUnplanned(t *testing.T) {
	g := fig416()
	ix := BuildIndex(g, 1, true)
	p := trianglePattern()
	for i, opt := range allOptions() {
		want, _, err := Find(p, g, ix, opt)
		if err != nil {
			t.Fatalf("opt %d: %v", i, err)
		}
		opt.Plans = NewPlanCache(4)
		opt.PlanEpoch = 1
		cold, cst, err := Find(p, g, ix, opt)
		if err != nil {
			t.Fatalf("opt %d cold: %v", i, err)
		}
		hot, hst, err := Find(p, g, ix, opt)
		if err != nil {
			t.Fatalf("opt %d hot: %v", i, err)
		}
		if !reflect.DeepEqual(want, cold) || !reflect.DeepEqual(want, hot) {
			t.Fatalf("opt %d: planned results differ from unplanned", i)
		}
		if cst.PlanCacheHit {
			t.Errorf("opt %d: cold run reported a plan-cache hit", i)
		}
		if !hst.PlanCacheHit {
			t.Errorf("opt %d: hot run missed the plan cache", i)
		}
		if hst.RetrieveTime != 0 || hst.OrderTime != 0 {
			t.Errorf("opt %d: hot run spent time in skipped phases: retrieve %v, order %v",
				i, hst.RetrieveTime, hst.OrderTime)
		}
		if !reflect.DeepEqual(cst.Order, hst.Order) ||
			!reflect.DeepEqual(cst.CandRefined, hst.CandRefined) {
			t.Errorf("opt %d: hot statistics differ from cold", i)
		}
	}
}

// manyMatches builds a complete bipartite A→B graph and its 2-node
// pattern: k² matches exercise the emit hot path.
func manyMatches(k int) (*graph.Graph, *pattern.Pattern) {
	g := graph.New("G")
	as := make([]graph.NodeID, k)
	bs := make([]graph.NodeID, k)
	for i := 0; i < k; i++ {
		as[i] = g.AddNode(fmt.Sprintf("A%d", i), graph.TupleOf("", "label", "A"))
		bs[i] = g.AddNode(fmt.Sprintf("B%d", i), graph.TupleOf("", "label", "B"))
	}
	for _, a := range as {
		for _, b := range bs {
			g.AddEdge("", a, b, nil)
		}
	}
	p := pattern.New("P")
	pa := p.LabelNode("a", "A")
	pb := p.LabelNode("b", "B")
	p.AddEdge("", pa, pb, nil, nil)
	return g, p
}

// TestSearchAllocBound guards the zero-alloc inner loop: a hot-plan Find
// over a graph with 256 matches must stay within a fixed allocation
// budget — the pre-arena emit alone cost two allocations per match (512+),
// and the map-based injectivity/dedup scratch added per-candidate churn.
func TestSearchAllocBound(t *testing.T) {
	g, p := manyMatches(16)
	ix := BuildIndex(g, 1, false)
	opt := Optimized()
	opt.AdjIterate = true
	opt.Plans = NewPlanCache(4)
	opt.PlanEpoch = 1
	if _, _, err := Find(p, g, ix, opt); err != nil { // warm the cache
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(20, func() {
		ms, _, err := Find(p, g, ix, opt)
		if err != nil || len(ms) != 256 {
			t.Fatalf("%d matches, err %v", len(ms), err)
		}
	})
	if allocs > 60 {
		t.Errorf("hot-plan Find allocates %.0f per run over 256 matches, want <= 60", allocs)
	}
}

// BenchmarkMatchPlanned measures the plan cache's effect end-to-end:
// "cold" pays retrieval+refinement+ordering every iteration (fresh cache),
// "hot" reuses one cached plan, and "uncached" is the pre-cache baseline.
func BenchmarkMatchPlanned(b *testing.B) {
	g, p := manyMatches(16)
	ix := BuildIndex(g, 1, false)
	base := Optimized()

	b.Run("uncached", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, _, err := Find(p, g, ix, base); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("cold", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			opt := base
			opt.Plans = NewPlanCache(4)
			opt.PlanEpoch = 1
			if _, _, err := Find(p, g, ix, opt); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("hot", func(b *testing.B) {
		opt := base
		opt.Plans = NewPlanCache(4)
		opt.PlanEpoch = 1
		if _, _, err := Find(p, g, ix, opt); err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, _, err := Find(p, g, ix, opt); err != nil {
				b.Fatal(err)
			}
		}
	})
}
