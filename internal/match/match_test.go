package match

import (
	"math/rand"
	"testing"

	"gqldb/internal/expr"
	"gqldb/internal/graph"
	"gqldb/internal/pattern"
)

// fig416 is the running example: database graph G of Figures 4.1/4.16.
func fig416() *graph.Graph {
	g := graph.New("G")
	add := func(name, label string) graph.NodeID {
		return g.AddNode(name, graph.TupleOf("", "label", label))
	}
	a1 := add("A1", "A")
	a2 := add("A2", "A")
	b1 := add("B1", "B")
	b2 := add("B2", "B")
	c1 := add("C1", "C")
	c2 := add("C2", "C")
	g.AddEdge("", a1, b1, nil)
	g.AddEdge("", b1, c2, nil)
	g.AddEdge("", c2, a1, nil)
	g.AddEdge("", a1, c1, nil)
	g.AddEdge("", b2, c2, nil)
	g.AddEdge("", b2, a2, nil)
	return g
}

// trianglePattern is the query P of Figure 4.1: a triangle A-B-C.
func trianglePattern() *pattern.Pattern {
	p := pattern.New("P")
	a := p.LabelNode("a", "A")
	b := p.LabelNode("b", "B")
	c := p.LabelNode("c", "C")
	p.AddEdge("", a, b, nil, nil)
	p.AddEdge("", b, c, nil, nil)
	p.AddEdge("", c, a, nil, nil)
	return p
}

// allOptions enumerates meaningful option combinations; results must agree.
func allOptions() []Options {
	var out []Options
	for _, prune := range []LocalPrune{PruneNone, PruneProfile, PruneSubgraph} {
		for _, refine := range []bool{false, true} {
			for _, order := range []OrderMode{OrderInput, OrderGreedy, OrderDP} {
				for _, fg := range []bool{false, true} {
					for _, adj := range []bool{false, true} {
						out = append(out, Options{
							Exhaustive: true, Prune: prune, Refine: refine,
							Order: order, FreqGamma: fg, AdjIterate: adj,
						})
					}
				}
			}
		}
	}
	return out
}

func TestTriangleQueryFig41(t *testing.T) {
	g := fig416()
	ix := BuildIndex(g, 1, true)
	p := trianglePattern()
	for i, opt := range allOptions() {
		ms, _, err := Find(p, g, ix, opt)
		if err != nil {
			t.Fatalf("opt %d: %v", i, err)
		}
		if len(ms) != 1 {
			t.Fatalf("opt %d: %d matches, want 1", i, len(ms))
		}
		names := []string{}
		for _, v := range ms[0].Nodes {
			names = append(names, g.Node(v).Name)
		}
		if names[0] != "A1" || names[1] != "B1" || names[2] != "C2" {
			t.Errorf("opt %d: matched %v, want [A1 B1 C2]", i, names)
		}
	}
}

// TestRefinementFig418 checks Algorithm 4.2 against the worked example:
// input space {A1,A2}×{B1,B2}×{C1,C2} reduces to {A1}×{B1}×{C2}.
func TestRefinementFig418(t *testing.T) {
	g := fig416()
	ix := BuildIndex(g, 1, false)
	p := trianglePattern()
	_, st, err := Find(p, g, ix, Options{
		Exhaustive: true, Refine: true, CollectStats: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	wantBase := []int{2, 2, 2}
	wantRefined := []int{1, 1, 1}
	for u := range wantBase {
		if st.CandBaseline[u] != wantBase[u] {
			t.Errorf("baseline Φ(%d) = %d, want %d", u, st.CandBaseline[u], wantBase[u])
		}
		if st.CandRefined[u] != wantRefined[u] {
			t.Errorf("refined Φ(%d) = %d, want %d", u, st.CandRefined[u], wantRefined[u])
		}
	}
}

// TestLocalPruningFig417 checks the three search spaces of Figure 4.17.
func TestLocalPruningFig417(t *testing.T) {
	g := fig416()
	ix := BuildIndex(g, 1, true)
	p := trianglePattern()

	_, stProf, err := Find(p, g, ix, Options{Exhaustive: true, Prune: PruneProfile, CollectStats: true})
	if err != nil {
		t.Fatal(err)
	}
	if got := stProf.CandLocal; got[0] != 1 || got[1] != 2 || got[2] != 1 {
		t.Errorf("profile space = %v, want [1 2 1]", got)
	}
	_, stSub, err := Find(p, g, ix, Options{Exhaustive: true, Prune: PruneSubgraph, CollectStats: true})
	if err != nil {
		t.Fatal(err)
	}
	if got := stSub.CandLocal; got[0] != 1 || got[1] != 1 || got[2] != 1 {
		t.Errorf("subgraph space = %v, want [1 1 1]", got)
	}
}

func TestExhaustiveVsFirst(t *testing.T) {
	// K4 of same-labelled nodes: the 3-clique pattern of same label has
	// 4·3·2 = 24 exhaustive matches.
	g := graph.New("K4")
	var ids []graph.NodeID
	for i := 0; i < 4; i++ {
		ids = append(ids, g.AddNode("", graph.TupleOf("", "label", "X")))
	}
	for i := 0; i < 4; i++ {
		for j := i + 1; j < 4; j++ {
			g.AddEdge("", ids[i], ids[j], nil)
		}
	}
	p := pattern.New("P")
	a := p.LabelNode("a", "X")
	b := p.LabelNode("b", "X")
	c := p.LabelNode("c", "X")
	p.AddEdge("", a, b, nil, nil)
	p.AddEdge("", b, c, nil, nil)
	p.AddEdge("", c, a, nil, nil)
	ix := BuildIndex(g, 1, false)

	ms, _, err := Find(p, g, ix, Options{Exhaustive: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) != 24 {
		t.Errorf("exhaustive = %d, want 24", len(ms))
	}
	ms, _, _ = Find(p, g, ix, Options{Exhaustive: false})
	if len(ms) != 1 {
		t.Errorf("first = %d, want 1", len(ms))
	}
	ms, st, _ := Find(p, g, ix, Options{Exhaustive: true, Limit: 10, CollectStats: true})
	if len(ms) != 10 || !st.Truncated {
		t.Errorf("limit: %d matches, truncated=%v", len(ms), st.Truncated)
	}
}

func TestInjectivity(t *testing.T) {
	// Two pattern nodes of the same label cannot map to one data node.
	g := graph.New("G")
	x := g.AddNode("", graph.TupleOf("", "label", "X"))
	g.AddEdge("", x, x, nil) // self loop
	p := pattern.New("P")
	a := p.LabelNode("a", "X")
	b := p.LabelNode("b", "X")
	p.AddEdge("", a, b, nil, nil)
	ms, _, err := Find(p, g, nil, Options{Exhaustive: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) != 0 {
		t.Errorf("injective mapping impossible, got %d matches", len(ms))
	}
}

func TestSelfLoopPattern(t *testing.T) {
	g := graph.New("G")
	x := g.AddNode("", graph.TupleOf("", "label", "X"))
	y := g.AddNode("", graph.TupleOf("", "label", "X"))
	g.AddEdge("", x, x, nil)
	g.AddEdge("", x, y, nil)
	p := pattern.New("P")
	a := p.LabelNode("a", "X")
	p.AddEdge("", a, a, nil, nil) // pattern self loop
	ms, _, err := Find(p, g, nil, Options{Exhaustive: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) != 1 || ms[0].Nodes[0] != x {
		t.Errorf("self loop should match only node x: %v", ms)
	}
}

func TestDirectedMatching(t *testing.T) {
	g := graph.NewDirected("G")
	a := g.AddNode("", graph.TupleOf("", "label", "A"))
	b := g.AddNode("", graph.TupleOf("", "label", "B"))
	g.AddEdge("", a, b, nil) // a -> b only
	mk := func(forward bool) *pattern.Pattern {
		p := pattern.NewDirected("P")
		x := p.LabelNode("x", "A")
		y := p.LabelNode("y", "B")
		if forward {
			p.AddEdge("", x, y, nil, nil)
		} else {
			p.AddEdge("", y, x, nil, nil)
		}
		return p
	}
	ms, _, err := Find(mk(true), g, nil, Options{Exhaustive: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) != 1 {
		t.Errorf("forward edge should match, got %d", len(ms))
	}
	ms, _, _ = Find(mk(false), g, nil, Options{Exhaustive: true})
	if len(ms) != 0 {
		t.Errorf("reversed edge should not match, got %d", len(ms))
	}
}

func TestEdgePredicate(t *testing.T) {
	g := graph.New("G")
	a := g.AddNode("", graph.TupleOf("", "label", "A"))
	b := g.AddNode("", graph.TupleOf("", "label", "B"))
	g.AddEdge("", a, b, graph.TupleOf("", "kind", "billing"))
	g.AddEdge("", a, b, graph.TupleOf("", "kind", "shipping")) // parallel edge
	p := pattern.New("P")
	x := p.LabelNode("x", "A")
	y := p.LabelNode("y", "B")
	p.AddEdge("e", x, y, graph.TupleOf("", "kind", "shipping"), nil)
	ms, _, err := Find(p, g, nil, Options{Exhaustive: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) != 1 {
		t.Fatalf("matches = %d, want 1", len(ms))
	}
	// The witnessing edge must be the shipping one.
	e := g.Edge(ms[0].Edges[0])
	if e.Attrs.GetOr("kind").AsString() != "shipping" {
		t.Errorf("witness edge kind = %v", e.Attrs.GetOr("kind"))
	}
}

func TestGlobalPredicate(t *testing.T) {
	// Two departments sharing the same company (the RDF intro example).
	g := graph.New("G")
	d1 := g.AddNode("", graph.TupleOf("dept", "company", "Acme"))
	d2 := g.AddNode("", graph.TupleOf("dept", "company", "Acme"))
	d3 := g.AddNode("", graph.TupleOf("dept", "company", "Globex"))
	s1 := g.AddNode("", graph.TupleOf("shipper", "name", "FastShip"))
	g.AddEdge("", d1, s1, nil)
	g.AddEdge("", d2, s1, nil)
	g.AddEdge("", d3, s1, nil)

	p := pattern.New("P")
	x := p.AddNode("x", graph.NewTuple("dept"), nil)
	y := p.AddNode("y", graph.NewTuple("dept"), nil)
	s := p.AddNode("s", graph.NewTuple("shipper"), nil)
	p.AddEdge("", x, s, nil, nil)
	p.AddEdge("", y, s, nil, nil)
	p.Where(expr.Binary{Op: expr.OpEq,
		L: expr.Name{Parts: []string{"x", "company"}},
		R: expr.Name{Parts: []string{"y", "company"}}})
	ms, _, err := Find(p, g, nil, Options{Exhaustive: true})
	if err != nil {
		t.Fatal(err)
	}
	// d1/d2 in both orders.
	if len(ms) != 2 {
		t.Errorf("matches = %d, want 2", len(ms))
	}
}

func TestGraphAttributePredicate(t *testing.T) {
	// P.booktitle = "SIGMOD" filters on the matched graph's attribute.
	mk := func(book string) *graph.Graph {
		g := graph.New("paper")
		g.Attrs = graph.TupleOf("inproceedings", "booktitle", book)
		g.AddNode("", graph.TupleOf("author", "name", "A"))
		return g
	}
	p := pattern.New("P")
	p.AddNode("v1", graph.NewTuple("author"), nil)
	p.Where(expr.Binary{Op: expr.OpEq,
		L: expr.Name{Parts: []string{"P", "booktitle"}},
		R: expr.Lit{Val: graph.String("SIGMOD")}})
	ms, _, err := Find(p, mk("SIGMOD"), nil, Options{Exhaustive: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) != 1 {
		t.Errorf("SIGMOD paper should match, got %d", len(ms))
	}
	ms, _, _ = Find(p, mk("VLDB"), nil, Options{Exhaustive: true})
	if len(ms) != 0 {
		t.Errorf("VLDB paper should not match, got %d", len(ms))
	}
}

func TestEmptyPattern(t *testing.T) {
	p := pattern.New("P")
	ms, _, err := Find(p, fig416(), nil, Options{Exhaustive: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) != 1 {
		t.Errorf("empty pattern should match once, got %d", len(ms))
	}
}

func TestNoFeasibleMates(t *testing.T) {
	p := pattern.New("P")
	p.LabelNode("a", "Z") // label absent from the graph
	ms, st, err := Find(p, fig416(), BuildIndex(fig416(), 1, false), Options{Exhaustive: true, CollectStats: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) != 0 || st.CandBaseline[0] != 0 {
		t.Errorf("no mates expected: %d matches, Φ0=%d", len(ms), st.CandBaseline[0])
	}
	if Log10Space(st.CandBaseline) != -400 {
		t.Errorf("empty space sentinel expected")
	}
}

// referenceMatch is a brute-force matcher used as ground truth: plain
// recursive enumeration with no index, pruning, or ordering.
func referenceMatch(t *testing.T, p *pattern.Pattern, g *graph.Graph) int {
	t.Helper()
	if err := p.Compile(); err != nil {
		t.Fatal(err)
	}
	n := p.Size()
	assign := make([]graph.NodeID, n)
	for i := range assign {
		assign[i] = graph.NoNode
	}
	used := make([]bool, g.NumNodes())
	count := 0
	var rec func(u int)
	rec = func(u int) {
		if u == n {
			// Check every pattern edge and the global predicate.
			edges := make([]graph.EdgeID, p.Motif.NumEdges())
			for _, e := range p.Motif.Edges() {
				from, to := assign[e.From], assign[e.To]
				found := false
				for _, eid := range g.EdgesBetween(from, to) {
					de := g.Edge(eid)
					if g.Directed && (de.From != from || de.To != to) {
						continue
					}
					if ok, _ := p.EdgeMatches(e.ID, de.Attrs); ok {
						edges[e.ID] = eid
						found = true
						break
					}
				}
				if !found {
					return
				}
			}
			ok, _ := expr.Holds(p.Global, &bindEnv{p: p, g: g, nodes: assign, edges: edges})
			if ok {
				count++
			}
			return
		}
		for v := 0; v < g.NumNodes(); v++ {
			if used[v] {
				continue
			}
			ok, _ := p.NodeMatches(graph.NodeID(u), g.Node(graph.NodeID(v)).Attrs)
			if !ok {
				continue
			}
			assign[u] = graph.NodeID(v)
			used[v] = true
			rec(u + 1)
			used[v] = false
			assign[u] = graph.NoNode
		}
	}
	rec(0)
	return count
}

func randomGraph(rng *rand.Rand, n, m, labels int, directed bool) *graph.Graph {
	var g *graph.Graph
	if directed {
		g = graph.NewDirected("R")
	} else {
		g = graph.New("R")
	}
	for i := 0; i < n; i++ {
		g.AddNode("", graph.TupleOf("", "label", string(rune('A'+rng.Intn(labels)))))
	}
	for i := 0; i < m; i++ {
		u, v := rng.Intn(n), rng.Intn(n)
		if u != v {
			g.AddEdge("", graph.NodeID(u), graph.NodeID(v), nil)
		}
	}
	return g
}

func randomPattern(rng *rand.Rand, k, labels int, directed bool) *pattern.Pattern {
	var p *pattern.Pattern
	if directed {
		p = pattern.NewDirected("P")
	} else {
		p = pattern.New("P")
	}
	ids := make([]graph.NodeID, k)
	for i := 0; i < k; i++ {
		ids[i] = p.LabelNode("", string(rune('A'+rng.Intn(labels))))
	}
	// Spanning-ish connectivity plus extra edges.
	for i := 1; i < k; i++ {
		p.AddEdge("", ids[rng.Intn(i)], ids[i], nil, nil)
	}
	for e := rng.Intn(k); e > 0; e-- {
		u, v := rng.Intn(k), rng.Intn(k)
		if u != v && !p.Motif.HasEdgeBetween(ids[u], ids[v]) {
			p.AddEdge("", ids[u], ids[v], nil, nil)
		}
	}
	return p
}

// TestAgainstBruteForce cross-validates every optimization combination
// against the brute-force reference on random graphs and patterns: the
// access methods must never change the answer set size.
func TestAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(2008))
	opts := allOptions()
	for trial := 0; trial < 40; trial++ {
		directed := trial%4 == 3
		g := randomGraph(rng, 8+rng.Intn(6), 15+rng.Intn(15), 3, directed)
		p := randomPattern(rng, 2+rng.Intn(3), 3, directed)
		want := referenceMatch(t, p, g)
		ix := BuildIndex(g, 1, true)
		for oi, opt := range opts {
			ms, _, err := Find(p, g, ix, opt)
			if err != nil {
				t.Fatalf("trial %d opt %d: %v", trial, oi, err)
			}
			if len(ms) != want {
				t.Fatalf("trial %d opt %d (prune=%d refine=%v order=%d): got %d matches, want %d\npattern: %s\ngraph: %s",
					trial, oi, opt.Prune, opt.Refine, opt.Order, len(ms), want, p, g)
			}
		}
	}
}

// TestExtractedSubgraphAlwaysFound: a connected subgraph extracted from the
// graph itself must always be found (at least one match).
func TestExtractedSubgraphAlwaysFound(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 30; trial++ {
		g := randomGraph(rng, 20, 50, 4, false)
		// Random BFS-extracted connected node set of size <= 5.
		start := graph.NodeID(rng.Intn(g.NumNodes()))
		sel := []graph.NodeID{start}
		seen := map[graph.NodeID]bool{start: true}
		for len(sel) < 5 {
			v := sel[rng.Intn(len(sel))]
			adj := g.Adj(v)
			if len(adj) == 0 {
				break
			}
			w := adj[rng.Intn(len(adj))].To
			if !seen[w] {
				seen[w] = true
				sel = append(sel, w)
			}
		}
		p := pattern.New("P")
		idx := map[graph.NodeID]graph.NodeID{}
		for _, v := range sel {
			idx[v] = p.LabelNode("", g.Label(v))
		}
		for _, e := range g.Edges() {
			pu, ok1 := idx[e.From]
			pv, ok2 := idx[e.To]
			if ok1 && ok2 && !p.Motif.HasEdgeBetween(pu, pv) {
				p.AddEdge("", pu, pv, nil, nil)
			}
		}
		ix := BuildIndex(g, 1, true)
		for _, opt := range []Options{Baseline(), Optimized(), {Exhaustive: true, Prune: PruneSubgraph, Refine: true, Order: OrderDP}} {
			ms, _, err := Find(p, g, ix, opt)
			if err != nil {
				t.Fatal(err)
			}
			if len(ms) == 0 {
				t.Fatalf("trial %d: extracted subgraph not found\npattern: %s", trial, p)
			}
		}
	}
}

// TestRefinementNeverOverprunes: refined spaces still contain every true
// match (follows from brute-force agreement, but checked directly on the
// candidate sets).
func TestRefinementNeverOverprunes(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 25; trial++ {
		g := randomGraph(rng, 12, 24, 3, false)
		p := randomPattern(rng, 3, 3, false)
		ix := BuildIndex(g, 1, false)
		msAll, _, err := Find(p, g, ix, Options{Exhaustive: true})
		if err != nil {
			t.Fatal(err)
		}
		_, st, err := Find(p, g, ix, Options{Exhaustive: true, Refine: true, Prune: PruneProfile, CollectStats: true})
		if err != nil {
			t.Fatal(err)
		}
		// Every matched node must appear in the refined counts: check via
		// a re-run collecting matches with refinement (sizes equal).
		msRef, _, _ := Find(p, g, ix, Options{Exhaustive: true, Refine: true, Prune: PruneProfile})
		if len(msRef) != len(msAll) {
			t.Fatalf("trial %d: refinement changed answers %d -> %d", trial, len(msAll), len(msRef))
		}
		for u := range st.CandRefined {
			if st.CandRefined[u] > st.CandLocal[u] {
				t.Fatalf("refinement grew a candidate set")
			}
		}
	}
}

func TestSearchOrderStats(t *testing.T) {
	g := fig416()
	ix := BuildIndex(g, 1, false)
	p := trianglePattern()
	_, st, err := Find(p, g, ix, Options{Exhaustive: true, Order: OrderGreedy, FreqGamma: true, CollectStats: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(st.Order) != 3 {
		t.Fatalf("order = %v", st.Order)
	}
	if st.EstCost <= 0 {
		t.Errorf("EstCost = %v, want > 0", st.EstCost)
	}
	// DP cost must never exceed greedy cost.
	_, stDP, _ := Find(p, g, ix, Options{Exhaustive: true, Order: OrderDP, FreqGamma: true, CollectStats: true})
	if stDP.EstCost > st.EstCost+1e-9 {
		t.Errorf("DP cost %v > greedy cost %v", stDP.EstCost, st.EstCost)
	}
}

// TestDPCostNeverWorse: on random inputs the exact planner's estimated cost
// is never worse than the greedy planner's.
func TestDPCostNeverWorse(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 20; trial++ {
		g := randomGraph(rng, 15, 40, 3, false)
		p := randomPattern(rng, 4, 3, false)
		ix := BuildIndex(g, 1, false)
		_, g1, err := Find(p, g, ix, Options{Exhaustive: true, Order: OrderGreedy, FreqGamma: true, CollectStats: true})
		if err != nil {
			t.Fatal(err)
		}
		_, g2, err := Find(p, g, ix, Options{Exhaustive: true, Order: OrderDP, FreqGamma: true, CollectStats: true})
		if err != nil {
			t.Fatal(err)
		}
		if g2.EstCost > g1.EstCost*(1+1e-9) {
			t.Fatalf("trial %d: DP cost %v > greedy %v", trial, g2.EstCost, g1.EstCost)
		}
	}
}

func TestExists(t *testing.T) {
	g := fig416()
	ok, err := Exists(trianglePattern(), g, nil, Options{})
	if err != nil || !ok {
		t.Errorf("Exists = %v,%v", ok, err)
	}
	p := pattern.New("P")
	p.LabelNode("z", "Z")
	ok, _ = Exists(p, g, nil, Options{})
	if ok {
		t.Error("Z pattern should not exist")
	}
}

func TestLog10Space(t *testing.T) {
	if got := Log10Space([]int{10, 10, 10}); got < 2.999 || got > 3.001 {
		t.Errorf("Log10Space = %v, want 3", got)
	}
	if got := Log10Space(nil); got != 0 {
		t.Errorf("empty = %v, want 0", got)
	}
}

// TestRadius2Soundness: profile pruning with a radius-2 index must not
// change the answer set (it is a necessary-condition filter at any radius).
func TestRadius2Soundness(t *testing.T) {
	rng := rand.New(rand.NewSource(222))
	for trial := 0; trial < 15; trial++ {
		g := randomGraph(rng, 15, 35, 3, false)
		p := randomPattern(rng, 3, 3, false)
		ix1 := BuildIndex(g, 1, true)
		ix2 := BuildIndex(g, 2, true)
		want, _, err := Find(p, g, nil, Options{Exhaustive: true})
		if err != nil {
			t.Fatal(err)
		}
		for _, ix := range []*Index{ix1, ix2} {
			for _, prune := range []LocalPrune{PruneProfile, PruneSubgraph} {
				got, _, err := Find(p, g, ix, Options{Exhaustive: true, Prune: prune, Refine: true})
				if err != nil {
					t.Fatal(err)
				}
				if len(got) != len(want) {
					t.Fatalf("trial %d radius=%d prune=%d: %d matches, want %d",
						trial, ix.Nbr.Radius, prune, len(got), len(want))
				}
			}
		}
	}
}

// TestCandidateMonotonicity: refined ⊆ local ⊆ baseline candidate sets,
// per node, on random inputs (quick property over the Stats counters).
func TestCandidateMonotonicity(t *testing.T) {
	rng := rand.New(rand.NewSource(7777))
	for trial := 0; trial < 25; trial++ {
		g := randomGraph(rng, 20, 45, 3, false)
		p := randomPattern(rng, 3, 3, false)
		ix := BuildIndex(g, 1, true)
		for _, prune := range []LocalPrune{PruneProfile, PruneSubgraph} {
			_, st, err := Find(p, g, ix, Options{Exhaustive: true, Prune: prune, Refine: true, CollectStats: true})
			if err != nil {
				t.Fatal(err)
			}
			for u := range st.CandBaseline {
				if st.CandLocal[u] > st.CandBaseline[u] {
					t.Fatalf("local > baseline at node %d", u)
				}
				if st.CandRefined[u] > st.CandLocal[u] {
					t.Fatalf("refined > local at node %d", u)
				}
			}
		}
	}
}
