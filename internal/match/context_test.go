package match

import (
	"context"
	"errors"
	"testing"
	"time"

	"gqldb/internal/graph"
	"gqldb/internal/pattern"
)

func TestFindContextNilAndBackground(t *testing.T) {
	g := fig416()
	p := trianglePattern()
	want, _, err := Find(p, g, nil, Baseline())
	if err != nil {
		t.Fatal(err)
	}
	for _, ctx := range []context.Context{nil, context.Background()} {
		ms, st, err := FindContext(ctx, p, g, nil, Baseline())
		if err != nil {
			t.Fatalf("ctx %v: %v", ctx, err)
		}
		if len(ms) != len(want) {
			t.Fatalf("ctx %v: %d matches, want %d", ctx, len(ms), len(want))
		}
		if ctx == nil && st.CancelChecks != 0 {
			t.Errorf("nil ctx: %d cancel checks, want 0 (Background never fires)", st.CancelChecks)
		}
	}
}

func TestFindContextPreCancelled(t *testing.T) {
	g := fig416()
	p := trianglePattern()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	ms, st, err := FindContext(ctx, p, g, nil, Baseline())
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if ms != nil || st != nil {
		t.Fatalf("cancelled selection returned results: %v, %v", ms, st)
	}
}

// hardInstance builds a search with a huge backtracking space: an unlabeled
// 5-node clique pattern over a 60-node clique, exhaustive. Serial evaluation
// takes far longer than the test deadline, so only per-step cancellation can
// return in time.
func hardInstance() (*pattern.Pattern, *graph.Graph) {
	g := graph.New("K")
	n := 60
	ids := make([]graph.NodeID, n)
	for i := 0; i < n; i++ {
		ids[i] = g.AddNode("", nil)
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			g.AddEdge("", ids[i], ids[j], nil)
		}
	}
	p := pattern.New("P")
	k := 5
	ps := make([]graph.NodeID, k)
	for i := 0; i < k; i++ {
		ps[i] = p.AddNode("", nil, nil)
	}
	for i := 0; i < k; i++ {
		for j := i + 1; j < k; j++ {
			p.AddEdge("", ps[i], ps[j], nil, nil)
		}
	}
	return p, g
}

func TestFindContextCancelMidSearch(t *testing.T) {
	p, g := hardInstance()
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(5 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	_, _, err := FindContext(ctx, p, g, nil, Options{Exhaustive: true})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if el := time.Since(start); el > 5*time.Second {
		t.Fatalf("cancellation took %v; per-step poll missing?", el)
	}
}

func TestFindContextDeadline(t *testing.T) {
	p, g := hardInstance()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Millisecond)
	defer cancel()
	_, _, err := FindContext(ctx, p, g, nil, Options{Exhaustive: true})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
}

func TestExistsContextCancelled(t *testing.T) {
	p, g := hardInstance()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	ok, err := ExistsContext(ctx, p, g, nil, Options{})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if ok {
		t.Fatal("cancelled Exists reported true")
	}
}

func TestCancelChecksCounted(t *testing.T) {
	g := fig416()
	p := trianglePattern()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	_, st, err := FindContext(ctx, p, g, nil, Baseline())
	if err != nil {
		t.Fatal(err)
	}
	if st.CancelChecks == 0 {
		t.Fatal("cancellable context produced zero cancellation polls")
	}
}
