package match

import (
	"context"
	"fmt"
	"time"

	"gqldb/internal/expr"
	"gqldb/internal/graph"
	"gqldb/internal/index"
	"gqldb/internal/pattern"
)

// searcher carries the state of one Find evaluation.
type searcher struct {
	p     *pattern.Pattern
	g     *graph.Graph
	ix    *Index
	opt   Options
	stats *Stats

	// ctx and its done channel bound the evaluation; ctxDone is nil for a
	// non-cancellable context, which keeps the per-step poll free.
	ctx     context.Context
	ctxDone <-chan struct{}
	// ctxErr is the cancellation error observed by a poll, surfaced by run.
	ctxErr error

	// phi[u] is the current feasible-mate list of pattern node u.
	phi [][]graph.NodeID
	// order[i] is the pattern node searched at depth i; pos is its inverse.
	order []graph.NodeID
	pos   []int
	// padj[u] lists pattern half-edges incident to u (both directions for
	// directed motifs, annotated with orientation).
	padj [][]pHalf

	// Search state.
	assign   []graph.NodeID // pattern node -> data node (NoNode if free)
	edgeMap  []graph.EdgeID // pattern edge -> witnessing data edge
	usedData map[graph.NodeID]bool
	out      []Mapping
	done     bool

	// AdjIterate support: per-pattern-node membership sets over phi and
	// per-depth candidate buffers.
	member  []map[graph.NodeID]bool
	candBuf [][]graph.NodeID
}

// pHalf is a pattern half-edge: edge ID, the opposite endpoint, and whether
// the edge is oriented out of the owning node (meaningful when directed).
type pHalf struct {
	edge graph.EdgeID
	to   graph.NodeID
	out  bool
}

// cancelled polls the context; the first observed cancellation flips done
// so the backtracking search unwinds immediately, and ctxErr carries the
// cause out through run.
func (s *searcher) cancelled() bool {
	if s.ctxDone == nil {
		return false
	}
	s.stats.CancelChecks++
	select {
	case <-s.ctxDone:
		if s.ctxErr == nil {
			s.ctxErr = s.ctx.Err()
		}
		s.done = true
		return true
	default:
		return false
	}
}

func (s *searcher) run() error {
	n := s.p.Size()
	s.stats.CandBaseline = make([]int, n)
	s.stats.CandLocal = make([]int, n)
	s.stats.CandRefined = make([]int, n)

	start := time.Now()
	if err := s.retrieve(); err != nil {
		return err
	}
	s.stats.RetrieveTime = time.Since(start)
	if s.ctxErr != nil {
		return s.ctxErr
	}

	if s.opt.Refine {
		start = time.Now()
		s.refine()
		s.stats.RefineTime = time.Since(start)
		if s.ctxErr != nil {
			return s.ctxErr
		}
	}
	for u := range s.phi {
		s.stats.CandRefined[u] = len(s.phi[u])
	}

	start = time.Now()
	s.plan()
	s.stats.OrderTime = time.Since(start)
	s.stats.Order = append([]graph.NodeID(nil), s.order...)

	start = time.Now()
	s.search()
	s.stats.SearchTime = time.Since(start)
	s.stats.NumMatches = len(s.out)
	return s.ctxErr
}

// retrieve fills phi with the feasible mates of every pattern node
// (Definition 4.8), using the label index where a constant label constraint
// exists and applying the §4.2 local pruning.
func (s *searcher) retrieve() error {
	n := s.p.Size()
	s.phi = make([][]graph.NodeID, n)

	var pprof [][]int32
	var psubs []*index.NbrSub
	if s.opt.Prune != PruneNone && s.ix != nil && s.ix.Nbr != nil {
		pprof, psubs = patternNeighborhoods(s.p, s.ix.Labels.In, s.ix.Nbr.Radius, s.opt.Prune == PruneSubgraph)
	}

	for u := 0; u < n; u++ {
		if s.cancelled() {
			return nil
		}
		uid := graph.NodeID(u)
		var cands []graph.NodeID
		if s.ix != nil {
			if label, ok := s.p.ConstLabel(uid); ok {
				cands = s.ix.Labels.Lookup(label)
			}
		}
		if cands == nil {
			cands = allNodes(s.g)
		}
		list := make([]graph.NodeID, 0, len(cands))
		for _, v := range cands {
			ok, err := s.p.NodeMatches(uid, s.g.Node(v).Attrs)
			if err != nil {
				return fmt.Errorf("match: node predicate on %s: %w", s.p.Motif.Node(uid).Name, err)
			}
			if ok {
				list = append(list, v)
			}
		}
		s.stats.CandBaseline[u] = len(list)

		// The two local pruning methods are alternatives (§4.2): profiles
		// are the light-weight stand-in for the exact neighborhood
		// subgraph test, so the subgraph path must not piggy-back on the
		// profile check — the paper's Figure 4.21(a) measures their costs
		// separately.
		switch {
		case pprof != nil && s.opt.Prune == PruneProfile:
			pruned := list[:0:0]
			for _, v := range list {
				if index.ProfileContains(s.ix.Nbr.Profiles[v], pprof[u]) {
					pruned = append(pruned, v)
				}
			}
			list = pruned
		case pprof != nil && s.opt.Prune == PruneSubgraph:
			pruned := list[:0:0]
			for _, v := range list {
				switch {
				case psubs[u] != nil && s.ix.Nbr.Subs != nil:
					if index.SubIsomorphic(psubs[u], s.ix.Nbr.Subs[v]) {
						pruned = append(pruned, v)
					}
				case index.ProfileContains(s.ix.Nbr.Profiles[v], pprof[u]):
					// No exact pattern neighborhood available (some node
					// lacks a constant label): fall back to profiles.
					pruned = append(pruned, v)
				}
			}
			list = pruned
		}
		s.stats.CandLocal[u] = len(list)
		s.phi[u] = list
	}
	return nil
}

func allNodes(g *graph.Graph) []graph.NodeID {
	all := make([]graph.NodeID, g.NumNodes())
	for i := range all {
		all[i] = graph.NodeID(i)
	}
	return all
}

// patternNeighborhoods derives neighborhood profiles (and, optionally,
// subgraphs) for the pattern's motif using constant-label constraints. A
// motif node without a constant label contributes nothing to profiles; a
// neighborhood containing such a node gets no subgraph (the exact test
// needs every member labelled).
func patternNeighborhoods(p *pattern.Pattern, in *index.Interner, radius int, withSubs bool) ([][]int32, []*index.NbrSub) {
	m := p.Motif
	labelled := graph.New("pn")
	labelled.Directed = m.Directed
	allLabelled := true
	known := make([]bool, m.NumNodes())
	for _, nd := range m.Nodes() {
		l, ok := p.ConstLabel(nd.ID)
		known[nd.ID] = ok
		if !ok {
			allLabelled = false
			l = "\x00unlabelled"
		}
		labelled.AddNode(nd.Name, graph.TupleOf("", "label", l))
	}
	for _, e := range m.Edges() {
		labelled.AddEdge(e.Name, e.From, e.To, nil)
	}

	full := index.BuildNeighborhoods(labelled, in, radius, withSubs && allLabelled)
	profiles := make([][]int32, m.NumNodes())
	unl, hasUnl := in.Lookup("\x00unlabelled")
	for u := range profiles {
		prof := full.Profiles[u]
		if hasUnl {
			trimmed := make([]int32, 0, len(prof))
			for _, l := range prof {
				if l != unl {
					trimmed = append(trimmed, l)
				}
			}
			prof = trimmed
		}
		profiles[u] = prof
	}
	var subs []*index.NbrSub
	if withSubs && allLabelled {
		subs = full.Subs
	} else {
		subs = make([]*index.NbrSub, m.NumNodes())
	}
	return profiles, subs
}

// plan chooses the search order per Options.Order and fills s.order/s.pos,
// then precomputes the pattern adjacency used by Check.
func (s *searcher) plan() {
	n := s.p.Size()
	switch {
	case n == 0:
		s.order = nil
	case s.opt.Order == OrderGreedy:
		s.order, s.stats.EstCost = s.greedyOrder()
	case s.opt.Order == OrderDP && n <= 20:
		s.order, s.stats.EstCost = s.dpOrder()
	default:
		s.order = make([]graph.NodeID, n)
		for i := range s.order {
			s.order[i] = graph.NodeID(i)
		}
	}
	s.pos = make([]int, n)
	for i, u := range s.order {
		s.pos[u] = i
	}
	s.padj = make([][]pHalf, n)
	for _, e := range s.p.Motif.Edges() {
		s.padj[e.From] = append(s.padj[e.From], pHalf{edge: e.ID, to: e.To, out: true})
		if e.From != e.To {
			s.padj[e.To] = append(s.padj[e.To], pHalf{edge: e.ID, to: e.From, out: false})
		}
	}
}

// search runs the depth-first enumeration of Algorithm 4.1.
func (s *searcher) search() {
	n := s.p.Size()
	s.assign = make([]graph.NodeID, n)
	for i := range s.assign {
		s.assign[i] = graph.NoNode
	}
	s.edgeMap = make([]graph.EdgeID, s.p.Motif.NumEdges())
	s.usedData = make(map[graph.NodeID]bool, n)
	if s.opt.AdjIterate {
		s.member = make([]map[graph.NodeID]bool, n)
		s.candBuf = make([][]graph.NodeID, n)
	}
	if n == 0 {
		// An empty pattern matches any graph once, subject to the global
		// predicate (which can only reference graph attributes).
		if ok, _ := s.globalHolds(); ok {
			s.out = append(s.out, Mapping{})
		}
		return
	}
	s.rec(0)
}

// candidates selects the candidate stream for search depth i: the feasible
// mates Φ(u) (Algorithm 4.1), or — with Options.AdjIterate — the data
// adjacency of an already-assigned pattern neighbor filtered by Φ(u)
// membership, whichever applies.
func (s *searcher) candidates(i int) []graph.NodeID {
	u := s.order[i]
	if !s.opt.AdjIterate {
		return s.phi[u]
	}
	for _, h := range s.padj[u] {
		if h.to == u {
			continue
		}
		w := s.assign[h.to]
		if w == graph.NoNode {
			continue
		}
		// Candidates must be adjacent to w with the right orientation:
		// pattern edge u->h.to needs data edge v->w (v in InAdj(w));
		// pattern edge h.to->u needs w->v (v in Adj(w)).
		var adj []graph.Half
		if s.g.Directed && h.out {
			adj = s.g.InAdj(w)
		} else {
			adj = s.g.Adj(w)
		}
		mem := s.member[u]
		if mem == nil {
			mem = make(map[graph.NodeID]bool, len(s.phi[u]))
			for _, x := range s.phi[u] {
				mem[x] = true
			}
			s.member[u] = mem
		}
		out := s.candBuf[i][:0]
		seen := make(map[graph.NodeID]bool, len(adj))
		for _, h2 := range adj {
			v := h2.To
			if mem[v] && !seen[v] {
				seen[v] = true
				out = append(out, v)
			}
		}
		s.candBuf[i] = out
		return out
	}
	return s.phi[u]
}

func (s *searcher) rec(i int) {
	u := s.order[i]
	for _, v := range s.candidates(i) {
		if s.done || s.cancelled() {
			return
		}
		if s.usedData[v] {
			continue
		}
		s.stats.SearchSteps++
		if !s.check(u, v) {
			continue
		}
		s.assign[u] = v
		s.usedData[v] = true
		if i+1 < len(s.order) {
			s.rec(i + 1)
		} else if ok, _ := s.globalHolds(); ok {
			s.emit()
		}
		s.usedData[v] = false
		s.assign[u] = graph.NoNode
		if s.done {
			return
		}
	}
}

// check is Algorithm 4.1's Check(ui, v): every pattern edge from u to an
// already-assigned node must be witnessed by a data edge between v and that
// node's mate, satisfying the edge predicate and (for directed motifs) the
// orientation. Witnesses are recorded in edgeMap.
func (s *searcher) check(u graph.NodeID, v graph.NodeID) bool {
	for _, h := range s.padj[u] {
		w := s.assign[h.to]
		if w == graph.NoNode {
			if h.to != u {
				continue
			}
			// Self-loop on the pattern node being placed: v must carry a
			// satisfying self-loop.
			w = v
		}
		var from, to graph.NodeID
		if h.out {
			from, to = v, w
		} else {
			from, to = w, v
		}
		found := false
		for _, eid := range s.g.EdgesBetween(from, to) {
			de := s.g.Edge(eid)
			if s.g.Directed && (de.From != from || de.To != to) {
				continue
			}
			ok, err := s.p.EdgeMatches(h.edge, de.Attrs)
			if err == nil && ok {
				s.edgeMap[h.edge] = eid
				found = true
				break
			}
		}
		if !found {
			return false
		}
	}
	return true
}

// emit records the current assignment as a mapping and applies the
// exhaustive/limit stopping rules.
func (s *searcher) emit() {
	m := Mapping{
		Nodes: append([]graph.NodeID(nil), s.assign...),
		Edges: append([]graph.EdgeID(nil), s.edgeMap...),
	}
	s.out = append(s.out, m)
	if !s.opt.Exhaustive {
		s.done = true
	}
	if s.opt.Limit > 0 && len(s.out) >= s.opt.Limit {
		s.done = true
		s.stats.Truncated = true
	}
}

// globalHolds evaluates the residual graph-wide predicate under the current
// (complete) assignment.
func (s *searcher) globalHolds() (bool, error) {
	if s.p.Global == nil {
		return true, nil
	}
	return expr.Holds(s.p.Global, bindEnv{p: s.p, g: s.g, nodes: s.assign, edges: s.edgeMap})
}

// bindEnv resolves qualified names against a complete pattern binding:
// v1.attr reads the mate of motif node v1; e1.attr reads the witnessing
// data edge of motif edge e1; a bare name (or P.name) reads the data
// graph's own attributes.
type bindEnv struct {
	p     *pattern.Pattern
	g     *graph.Graph
	nodes []graph.NodeID
	edges []graph.EdgeID
}

// Resolve implements expr.Env.
func (b bindEnv) Resolve(parts []string) (graph.Value, error) {
	if len(parts) >= 2 && b.p.Name != "" && parts[0] == b.p.Name {
		parts = parts[1:]
	}
	if len(parts) == 1 {
		return b.g.Attrs.GetOr(parts[0]), nil
	}
	if len(parts) == 2 {
		if u, ok := b.p.Motif.NodeByName(parts[0]); ok {
			v := b.nodes[u]
			if v == graph.NoNode {
				return graph.Null, fmt.Errorf("match: node %s unbound", parts[0])
			}
			return b.g.Node(v).Attrs.GetOr(parts[1]), nil
		}
		if e, ok := b.p.Motif.EdgeByName(parts[0]); ok {
			return b.g.Edge(b.edges[e]).Attrs.GetOr(parts[1]), nil
		}
	}
	return graph.Null, fmt.Errorf("match: cannot resolve %v", parts)
}
