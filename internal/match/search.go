package match

import (
	"context"
	"fmt"
	"time"

	"gqldb/internal/graph"
	"gqldb/internal/index"
	"gqldb/internal/pattern"
)

// searcher carries the state of one Find evaluation.
type searcher struct {
	p     *pattern.Pattern
	g     *graph.Graph
	ix    *Index
	opt   Options
	stats *Stats

	// ctx and its done channel bound the evaluation; ctxDone is nil for a
	// non-cancellable context, which keeps the per-step poll free.
	ctx     context.Context
	ctxDone <-chan struct{}
	// ctxErr is the cancellation error observed by a poll, surfaced by run.
	ctxErr error

	// phi[u] is the current feasible-mate list of pattern node u.
	phi [][]graph.NodeID
	// order[i] is the pattern node searched at depth i; pos is its inverse.
	order []graph.NodeID
	pos   []int
	// padj[u] lists pattern half-edges incident to u (both directions for
	// directed motifs, annotated with orientation).
	padj [][]pHalf

	// Search state.
	assign  []graph.NodeID // pattern node -> data node (NoNode if free)
	edgeMap []graph.EdgeID // pattern edge -> witnessing data edge
	// used[v] marks data node v as currently assigned (injectivity);
	// indexed by data node so the per-candidate check is one load.
	used []bool
	out  []Mapping
	done bool

	// benv is the reusable binding environment for the residual predicate:
	// passing &benv avoids an interface-conversion allocation per complete
	// assignment (it views assign/edgeMap in place).
	benv bindEnv

	// AdjIterate support: per-pattern-node Φ-membership bitsets, per-depth
	// candidate buffers, and epoch-stamped dedup scratch (no per-call maps
	// in the inner loop).
	member    [][]uint64
	candBuf   [][]graph.NodeID
	seenStamp []int32
	seenEpoch int32

	// nodeArena/edgeArena amortize Mapping allocations: emit carves rows
	// off large blocks (one allocation per arenaBlock matches instead of
	// two per match). Rows are never reused, so emitted mappings stay
	// immutable after they leave the searcher.
	nodeArena []graph.NodeID
	edgeArena []graph.EdgeID
}

// arenaBlock is how many Mapping rows one arena allocation holds.
const arenaBlock = 64

// pHalf is a pattern half-edge: edge ID, the opposite endpoint, and whether
// the edge is oriented out of the owning node (meaningful when directed).
type pHalf struct {
	edge graph.EdgeID
	to   graph.NodeID
	out  bool
}

// cancelled polls the context; the first observed cancellation flips done
// so the backtracking search unwinds immediately, and ctxErr carries the
// cause out through run.
func (s *searcher) cancelled() bool {
	if s.ctxDone == nil {
		return false
	}
	s.stats.CancelChecks++
	select {
	case <-s.ctxDone:
		if s.ctxErr == nil {
			s.ctxErr = s.ctx.Err()
		}
		s.done = true
		return true
	default:
		return false
	}
}

func (s *searcher) run() error {
	n := s.p.Size()

	var key PlanKey
	cached := false
	if s.opt.Plans != nil {
		key = planKeyFor(s.p, s.g, s.ix, s.opt)
		if pl, ok := s.opt.Plans.Get(s.opt.PlanEpoch, key); ok {
			s.adoptPlan(pl)
			cached = true
		}
	}
	if !cached {
		s.stats.CandBaseline = make([]int, n)
		s.stats.CandLocal = make([]int, n)
		s.stats.CandRefined = make([]int, n)

		start := time.Now()
		if err := s.retrieve(); err != nil {
			return err
		}
		s.stats.RetrieveTime = time.Since(start)
		if s.ctxErr != nil {
			return s.ctxErr
		}

		if s.opt.Refine {
			start = time.Now()
			s.refine()
			s.stats.RefineTime = time.Since(start)
			if s.ctxErr != nil {
				return s.ctxErr
			}
		}
		for u := range s.phi {
			s.stats.CandRefined[u] = len(s.phi[u])
		}

		start = time.Now()
		s.plan()
		s.stats.OrderTime = time.Since(start)
		s.stats.Order = append([]graph.NodeID(nil), s.order...)

		if s.opt.Plans != nil {
			s.opt.Plans.Put(s.opt.PlanEpoch, key, s.planSnapshot())
		}
	}

	start := time.Now()
	s.search()
	s.stats.SearchTime = time.Since(start)
	s.stats.NumMatches = len(s.out)
	return s.ctxErr
}

// adoptPlan installs a shared cached plan. The feasible-mate lists are
// aliased — the search phase only reads them — while the order and the
// statistics slices are copied out, since Stats escapes to the caller.
func (s *searcher) adoptPlan(pl *Plan) {
	s.phi = pl.Phi
	s.order = append([]graph.NodeID(nil), pl.Order...)
	s.finishPlan()
	s.stats.PlanCacheHit = true
	s.stats.EstCost = pl.EstCost
	s.stats.Order = append([]graph.NodeID(nil), pl.Order...)
	s.stats.CandBaseline = append([]int(nil), pl.CandBaseline...)
	s.stats.CandLocal = append([]int(nil), pl.CandLocal...)
	s.stats.CandRefined = append([]int(nil), pl.CandRefined...)
}

// planSnapshot captures the planning output for the cache. phi is stored
// as-is: the searcher never writes through the lists after planning
// (retrieval and refinement always build fresh backing arrays), so the
// cached plan and the search that produced it can share them.
func (s *searcher) planSnapshot() *Plan {
	return &Plan{
		Phi:          s.phi,
		Order:        append([]graph.NodeID(nil), s.order...),
		EstCost:      s.stats.EstCost,
		CandBaseline: append([]int(nil), s.stats.CandBaseline...),
		CandLocal:    append([]int(nil), s.stats.CandLocal...),
		CandRefined:  append([]int(nil), s.stats.CandRefined...),
	}
}

// retrieve fills phi with the feasible mates of every pattern node
// (Definition 4.8), using the label index where a constant label constraint
// exists and applying the §4.2 local pruning.
func (s *searcher) retrieve() error {
	n := s.p.Size()
	s.phi = make([][]graph.NodeID, n)

	var pprof [][]int32
	var psubs []*index.NbrSub
	if s.opt.Prune != PruneNone && s.ix != nil && s.ix.Nbr != nil {
		pprof, psubs = patternNeighborhoods(s.p, s.ix.Labels.In, s.ix.Nbr.Radius, s.opt.Prune == PruneSubgraph)
	}

	for u := 0; u < n; u++ {
		if s.cancelled() {
			return nil
		}
		uid := graph.NodeID(u)
		var cands []graph.NodeID
		if s.ix != nil {
			if label, ok := s.p.ConstLabel(uid); ok {
				cands = s.ix.Labels.Lookup(label)
			}
		}
		if cands == nil {
			cands = allNodes(s.g)
		}
		list := make([]graph.NodeID, 0, len(cands))
		for _, v := range cands {
			ok, err := s.p.NodeMatches(uid, s.g.Node(v).Attrs)
			if err != nil {
				return fmt.Errorf("match: node predicate on %s: %w", s.p.Motif.Node(uid).Name, err)
			}
			if ok {
				list = append(list, v)
			}
		}
		s.stats.CandBaseline[u] = len(list)

		// The two local pruning methods are alternatives (§4.2): profiles
		// are the light-weight stand-in for the exact neighborhood
		// subgraph test, so the subgraph path must not piggy-back on the
		// profile check — the paper's Figure 4.21(a) measures their costs
		// separately.
		switch {
		case pprof != nil && s.opt.Prune == PruneProfile:
			pruned := list[:0:0]
			for _, v := range list {
				if index.ProfileContains(s.ix.Nbr.Profiles[v], pprof[u]) {
					pruned = append(pruned, v)
				}
			}
			list = pruned
		case pprof != nil && s.opt.Prune == PruneSubgraph:
			pruned := list[:0:0]
			for _, v := range list {
				switch {
				case psubs[u] != nil && s.ix.Nbr.Subs != nil:
					if index.SubIsomorphic(psubs[u], s.ix.Nbr.Subs[v]) {
						pruned = append(pruned, v)
					}
				case index.ProfileContains(s.ix.Nbr.Profiles[v], pprof[u]):
					// No exact pattern neighborhood available (some node
					// lacks a constant label): fall back to profiles.
					pruned = append(pruned, v)
				}
			}
			list = pruned
		}
		s.stats.CandLocal[u] = len(list)
		s.phi[u] = list
	}
	return nil
}

func allNodes(g *graph.Graph) []graph.NodeID {
	all := make([]graph.NodeID, g.NumNodes())
	for i := range all {
		all[i] = graph.NodeID(i)
	}
	return all
}

// patternNeighborhoods derives neighborhood profiles (and, optionally,
// subgraphs) for the pattern's motif using constant-label constraints. A
// motif node without a constant label contributes nothing to profiles; a
// neighborhood containing such a node gets no subgraph (the exact test
// needs every member labelled).
func patternNeighborhoods(p *pattern.Pattern, in *index.Interner, radius int, withSubs bool) ([][]int32, []*index.NbrSub) {
	m := p.Motif
	labelled := graph.New("pn")
	labelled.Directed = m.Directed
	allLabelled := true
	known := make([]bool, m.NumNodes())
	for _, nd := range m.Nodes() {
		l, ok := p.ConstLabel(nd.ID)
		known[nd.ID] = ok
		if !ok {
			allLabelled = false
			l = "\x00unlabelled"
		}
		labelled.AddNode(nd.Name, graph.TupleOf("", "label", l))
	}
	for _, e := range m.Edges() {
		labelled.AddEdge(e.Name, e.From, e.To, nil)
	}

	full := index.BuildNeighborhoods(labelled, in, radius, withSubs && allLabelled)
	profiles := make([][]int32, m.NumNodes())
	unl, hasUnl := in.Lookup("\x00unlabelled")
	for u := range profiles {
		prof := full.Profiles[u]
		if hasUnl {
			trimmed := make([]int32, 0, len(prof))
			for _, l := range prof {
				if l != unl {
					trimmed = append(trimmed, l)
				}
			}
			prof = trimmed
		}
		profiles[u] = prof
	}
	var subs []*index.NbrSub
	if withSubs && allLabelled {
		subs = full.Subs
	} else {
		subs = make([]*index.NbrSub, m.NumNodes())
	}
	return profiles, subs
}

// plan chooses the search order per Options.Order and fills s.order/s.pos,
// then precomputes the pattern adjacency used by Check.
func (s *searcher) plan() {
	n := s.p.Size()
	switch {
	case n == 0:
		s.order = nil
	case s.opt.Order == OrderGreedy:
		s.order, s.stats.EstCost = s.greedyOrder()
	case s.opt.Order == OrderDP && n <= 20:
		s.order, s.stats.EstCost = s.dpOrder()
	default:
		s.order = make([]graph.NodeID, n)
		for i := range s.order {
			s.order[i] = graph.NodeID(i)
		}
	}
	s.finishPlan()
}

// finishPlan derives the search-phase structures from s.order: the inverse
// position map and the pattern adjacency used by Check. Shared between the
// planner and cached-plan adoption.
func (s *searcher) finishPlan() {
	n := s.p.Size()
	s.pos = make([]int, n)
	for i, u := range s.order {
		s.pos[u] = i
	}
	s.padj = make([][]pHalf, n)
	for _, e := range s.p.Motif.Edges() {
		s.padj[e.From] = append(s.padj[e.From], pHalf{edge: e.ID, to: e.To, out: true})
		if e.From != e.To {
			s.padj[e.To] = append(s.padj[e.To], pHalf{edge: e.ID, to: e.From, out: false})
		}
	}
}

// search runs the depth-first enumeration of Algorithm 4.1.
func (s *searcher) search() {
	n := s.p.Size()
	s.assign = make([]graph.NodeID, n)
	for i := range s.assign {
		s.assign[i] = graph.NoNode
	}
	s.edgeMap = make([]graph.EdgeID, s.p.Motif.NumEdges())
	s.used = make([]bool, s.g.NumNodes())
	s.benv = bindEnv{p: s.p, g: s.g, nodes: s.assign, edges: s.edgeMap}
	if s.opt.AdjIterate {
		s.member = make([][]uint64, n)
		s.candBuf = make([][]graph.NodeID, n)
		s.seenStamp = make([]int32, s.g.NumNodes())
		for i := range s.seenStamp {
			s.seenStamp[i] = -1
		}
	}
	if n == 0 {
		// An empty pattern matches any graph once, subject to the global
		// predicate (which can only reference graph attributes).
		if ok, _ := s.globalHolds(); ok {
			s.out = append(s.out, Mapping{})
		}
		return
	}
	s.rec(0)
}

// candidates selects the candidate stream for search depth i: the feasible
// mates Φ(u) (Algorithm 4.1), or — with Options.AdjIterate — the data
// adjacency of an already-assigned pattern neighbor filtered by Φ(u)
// membership, whichever applies.
func (s *searcher) candidates(i int) []graph.NodeID {
	u := s.order[i]
	if !s.opt.AdjIterate {
		return s.phi[u]
	}
	for _, h := range s.padj[u] {
		if h.to == u {
			continue
		}
		w := s.assign[h.to]
		if w == graph.NoNode {
			continue
		}
		// Candidates must be adjacent to w with the right orientation:
		// pattern edge u->h.to needs data edge v->w (v in InAdj(w));
		// pattern edge h.to->u needs w->v (v in Adj(w)).
		var adj []graph.Half
		if s.g.Directed && h.out {
			adj = s.g.InAdj(w)
		} else {
			adj = s.g.Adj(w)
		}
		mem := s.member[u]
		if mem == nil {
			mem = make([]uint64, (s.g.NumNodes()+63)/64)
			for _, x := range s.phi[u] {
				mem[x>>6] |= 1 << (uint(x) & 63)
			}
			s.member[u] = mem
		}
		out := s.candBuf[i][:0]
		s.seenEpoch++
		for _, h2 := range adj {
			v := h2.To
			if mem[v>>6]&(1<<(uint(v)&63)) != 0 && s.seenStamp[v] != s.seenEpoch {
				s.seenStamp[v] = s.seenEpoch
				out = append(out, v)
			}
		}
		s.candBuf[i] = out
		return out
	}
	return s.phi[u]
}

func (s *searcher) rec(i int) {
	u := s.order[i]
	for _, v := range s.candidates(i) {
		if s.done || s.cancelled() {
			return
		}
		if s.used[v] {
			continue
		}
		s.stats.SearchSteps++
		if !s.check(u, v) {
			continue
		}
		s.assign[u] = v
		s.used[v] = true
		if i+1 < len(s.order) {
			s.rec(i + 1)
		} else if ok, _ := s.globalHolds(); ok {
			s.emit()
		}
		s.used[v] = false
		s.assign[u] = graph.NoNode
		if s.done {
			return
		}
	}
}

// check is Algorithm 4.1's Check(ui, v): every pattern edge from u to an
// already-assigned node must be witnessed by a data edge between v and that
// node's mate, satisfying the edge predicate and (for directed motifs) the
// orientation. Witnesses are recorded in edgeMap.
func (s *searcher) check(u graph.NodeID, v graph.NodeID) bool {
	for _, h := range s.padj[u] {
		w := s.assign[h.to]
		if w == graph.NoNode {
			if h.to != u {
				continue
			}
			// Self-loop on the pattern node being placed: v must carry a
			// satisfying self-loop.
			w = v
		}
		var from, to graph.NodeID
		if h.out {
			from, to = v, w
		} else {
			from, to = w, v
		}
		found := false
		for _, eid := range s.g.EdgesBetween(from, to) {
			de := s.g.Edge(eid)
			if s.g.Directed && (de.From != from || de.To != to) {
				continue
			}
			ok, err := s.p.EdgeMatches(h.edge, de.Attrs)
			if err == nil && ok {
				s.edgeMap[h.edge] = eid
				found = true
				break
			}
		}
		if !found {
			return false
		}
	}
	return true
}

// emit records the current assignment as a mapping and applies the
// exhaustive/limit stopping rules. Mapping rows are carved off the arenas:
// one backing allocation per arenaBlock matches instead of two per match,
// and nil slices are preserved for empty node/edge sets.
func (s *searcher) emit() {
	var nodes []graph.NodeID
	if n := len(s.assign); n > 0 {
		if len(s.nodeArena) < n {
			s.nodeArena = make([]graph.NodeID, n*arenaBlock)
		}
		nodes = s.nodeArena[:n:n]
		s.nodeArena = s.nodeArena[n:]
		copy(nodes, s.assign)
	}
	var edges []graph.EdgeID
	if n := len(s.edgeMap); n > 0 {
		if len(s.edgeArena) < n {
			s.edgeArena = make([]graph.EdgeID, n*arenaBlock)
		}
		edges = s.edgeArena[:n:n]
		s.edgeArena = s.edgeArena[n:]
		copy(edges, s.edgeMap)
	}
	s.out = append(s.out, Mapping{Nodes: nodes, Edges: edges})
	if !s.opt.Exhaustive {
		s.done = true
	}
	if s.opt.Limit > 0 && len(s.out) >= s.opt.Limit {
		s.done = true
		s.stats.Truncated = true
	}
}

// globalHolds evaluates the residual graph-wide predicate under the current
// (complete) assignment, through the compiled form when available. The
// pointer conversion of the reusable benv avoids an allocation per call.
func (s *searcher) globalHolds() (bool, error) {
	if s.p.Global == nil {
		return true, nil
	}
	return s.p.GlobalHolds(&s.benv)
}

// bindEnv resolves qualified names against a complete pattern binding:
// v1.attr reads the mate of motif node v1; e1.attr reads the witnessing
// data edge of motif edge e1; a bare name (or P.name) reads the data
// graph's own attributes.
type bindEnv struct {
	p     *pattern.Pattern
	g     *graph.Graph
	nodes []graph.NodeID
	edges []graph.EdgeID
}

// Resolve implements expr.Env. Pointer receiver: the searcher passes its
// one reusable bindEnv by address, which converts to the interface without
// allocating.
func (b *bindEnv) Resolve(parts []string) (graph.Value, error) {
	if len(parts) >= 2 && b.p.Name != "" && parts[0] == b.p.Name {
		parts = parts[1:]
	}
	if len(parts) == 1 {
		return b.g.Attrs.GetOr(parts[0]), nil
	}
	if len(parts) == 2 {
		if u, ok := b.p.Motif.NodeByName(parts[0]); ok {
			v := b.nodes[u]
			if v == graph.NoNode {
				return graph.Null, fmt.Errorf("match: node %s unbound", parts[0])
			}
			return b.g.Node(v).Attrs.GetOr(parts[1]), nil
		}
		if e, ok := b.p.Motif.EdgeByName(parts[0]); ok {
			return b.g.Edge(b.edges[e]).Attrs.GetOr(parts[1]), nil
		}
	}
	return graph.Null, fmt.Errorf("match: cannot resolve %v", parts)
}
