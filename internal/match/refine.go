package match

import (
	"gqldb/internal/bipartite"
	"gqldb/internal/graph"
)

// refine implements Algorithm 4.2: iterated joint reduction of the search
// space by pseudo subgraph isomorphism. A pair (u, v) survives a level only
// if the bipartite graph between u's pattern neighbors and v's data
// neighbors — with an edge (u', v') when v' is still a feasible mate of
// u' — has a semi-perfect matching. Failing pairs remove v from Φ(u) and
// re-mark the affected neighboring pairs, propagating the reduction
// globally. Marked pairs are kept in a hashtable, not a matrix (§4.3).
//
// For directed motifs the neighbor sets union in- and out-neighbors; this
// relaxation stays sound (it can only under-prune, never remove a true
// match).
func (s *searcher) refine() {
	n := s.p.Size()
	if n == 0 {
		return
	}
	level := s.opt.RefineLevel
	if level <= 0 {
		level = n
	}

	// Membership bitsets over data nodes, one per pattern node.
	words := (s.g.NumNodes() + 63) / 64
	member := make([][]uint64, n)
	for u := 0; u < n; u++ {
		member[u] = make([]uint64, words)
		for _, v := range s.phi[u] {
			member[u][v/64] |= 1 << (v % 64)
		}
	}
	in := func(u int, v graph.NodeID) bool {
		return member[u][v/64]&(1<<(v%64)) != 0
	}
	remove := func(u int, v graph.NodeID) {
		member[u][v/64] &^= 1 << (v % 64)
	}

	// Distinct pattern neighbors of each pattern node.
	pnbrs := make([][]graph.NodeID, n)
	for _, e := range s.p.Motif.Edges() {
		if e.From == e.To {
			continue
		}
		pnbrs[e.From] = appendDistinct(pnbrs[e.From], e.To)
		pnbrs[e.To] = appendDistinct(pnbrs[e.To], e.From)
	}

	type pair struct {
		u int32
		v graph.NodeID
	}
	// Mark every pair initially (Algorithm 4.2 line 2).
	cur := make([]pair, 0, 256)
	for u := 0; u < n; u++ {
		for _, v := range s.phi[u] {
			cur = append(cur, pair{int32(u), v})
		}
	}

	var m bipartite.Matcher
	var bg bipartite.Graph
	var dnbrs []graph.NodeID
	inNext := make(map[pair]bool)
	var next []pair
	// Epoch-stamped scratch for deduplicating data neighbors without
	// allocating per pair.
	stamp := make([]int32, s.g.NumNodes())
	for i := range stamp {
		stamp[i] = -1
	}
	epoch := int32(0)

	for lvl := 1; lvl <= level && len(cur) > 0; lvl++ {
		if s.cancelled() {
			return
		}
		next = next[:0]
		clear(inNext)
		for _, pr := range cur {
			u, v := int(pr.u), pr.v
			if !in(u, v) {
				continue // already removed by an earlier pair this level
			}
			if len(pnbrs[u]) == 0 {
				continue // isolated pattern node: trivially feasible
			}
			// Distinct data neighbors of v.
			dnbrs = dataNeighbors(s.g, v, dnbrs[:0], stamp, epoch)
			epoch++
			// Bipartite graph B(u,v): left = pattern neighbors, right =
			// data neighbors; edge iff membership (line 8).
			if cap(bg.Adj) < len(pnbrs[u]) {
				bg.Adj = make([][]int32, len(pnbrs[u]))
			}
			bg.Adj = bg.Adj[:len(pnbrs[u])]
			bg.NRight = len(dnbrs)
			for i, up := range pnbrs[u] {
				row := bg.Adj[i][:0]
				for j, vp := range dnbrs {
					if in(int(up), vp) {
						row = append(row, int32(j))
					}
				}
				bg.Adj[i] = row
			}
			if m.SemiPerfect(bg) {
				continue // unmark (line 11)
			}
			// Remove v from Φ(u) and re-mark affected pairs (lines 13–15).
			remove(u, v)
			for _, up := range pnbrs[u] {
				for _, vp := range dnbrs {
					if in(int(up), vp) {
						p2 := pair{int32(up), vp}
						if !inNext[p2] {
							inNext[p2] = true
							next = append(next, p2)
						}
					}
				}
			}
		}
		cur, next = next, cur
	}

	// Rebuild the feasible-mate lists from the bitsets, preserving order.
	for u := 0; u < n; u++ {
		kept := s.phi[u][:0:0]
		for _, v := range s.phi[u] {
			if in(u, v) {
				kept = append(kept, v)
			}
		}
		s.phi[u] = kept
	}
}

func appendDistinct(list []graph.NodeID, v graph.NodeID) []graph.NodeID {
	for _, x := range list {
		if x == v {
			return list
		}
	}
	return append(list, v)
}

// dataNeighbors collects the distinct neighbors of v (union of out and in
// for directed graphs), excluding v itself, deduplicating with the
// caller-provided epoch stamps.
func dataNeighbors(g *graph.Graph, v graph.NodeID, buf []graph.NodeID, stamp []int32, epoch int32) []graph.NodeID {
	for _, h := range g.Adj(v) {
		if h.To != v && stamp[h.To] != epoch {
			stamp[h.To] = epoch
			buf = append(buf, h.To)
		}
	}
	if g.Directed {
		for _, h := range g.InAdj(v) {
			if h.To != v && stamp[h.To] != epoch {
				stamp[h.To] = epoch
				buf = append(buf, h.To)
			}
		}
	}
	return buf
}
