package match

import (
	"math"
	"math/bits"

	"gqldb/internal/graph"
)

// This file implements the §4.4 search-order optimization. A search order
// is a left-deep join plan over the pattern nodes; the cost model estimates
// each join's cost as the product of the input cardinalities (Definition
// 4.12) and its result size as that product scaled by a reduction factor γ
// (Definition 4.11). γ is either a constant (Options.Gamma) or, with
// Options.FreqGamma, the product of edge probabilities
// P(e(u,v)) = freq(e(u,v)) / (freq(u)·freq(v)) estimated from the label
// statistics of the data graph.

// edgeGamma returns the reduction factor contributed by the pattern edge
// between nodes a and b.
func (s *searcher) edgeGamma(a, b graph.NodeID) float64 {
	if s.opt.FreqGamma && s.ix != nil {
		la, okA := s.p.ConstLabel(a)
		lb, okB := s.p.ConstLabel(b)
		if okA && okB {
			fa, fb := s.ix.Labels.Freq(la), s.ix.Labels.Freq(lb)
			fe := s.ix.Labels.EdgeFreq(la, lb)
			if fa > 0 && fb > 0 {
				pe := float64(fe) / (float64(fa) * float64(fb))
				if pe > 1 {
					pe = 1
				}
				if pe <= 0 {
					pe = 1e-9 // zero-frequency edge: strongly selective
				}
				return pe
			}
		}
	}
	return s.opt.Gamma
}

// joinGamma multiplies the reduction factors of every pattern edge between
// candidate c and the set chosen so far (ℰ(i) of §4.4); 1.0 when none.
func (s *searcher) joinGamma(c graph.NodeID, chosen func(graph.NodeID) bool) float64 {
	g := 1.0
	for _, e := range s.p.Motif.Edges() {
		var other graph.NodeID
		switch {
		case e.From == c && e.To != c:
			other = e.To
		case e.To == c && e.From != c:
			other = e.From
		default:
			continue
		}
		if chosen(other) {
			g *= s.edgeGamma(c, other)
		}
	}
	return g
}

// greedyOrder implements the paper's planner: start from the smallest
// feasible-mate set, then repeatedly join the leaf that minimizes the
// estimated join cost, breaking ties by the smaller estimated result size.
func (s *searcher) greedyOrder() ([]graph.NodeID, float64) {
	n := s.p.Size()
	order := make([]graph.NodeID, 0, n)
	inSet := make([]bool, n)
	chosen := func(u graph.NodeID) bool { return inSet[u] }

	first := graph.NodeID(0)
	for u := 1; u < n; u++ {
		if len(s.phi[u]) < len(s.phi[first]) {
			first = graph.NodeID(u)
		}
	}
	order = append(order, first)
	inSet[first] = true
	size := float64(len(s.phi[first]))
	total := 0.0

	for len(order) < n { //gqlvet:ignore ctxpoll -- grows order every iteration; bounded by pattern size n, not data
		best := graph.NodeID(-1)
		bestCost, bestSize := math.Inf(1), math.Inf(1)
		for u := 0; u < n; u++ {
			if inSet[u] {
				continue
			}
			c := graph.NodeID(u)
			cost := size * float64(len(s.phi[u]))
			outSize := cost * s.joinGamma(c, chosen)
			if cost < bestCost || (cost == bestCost && outSize < bestSize) {
				best, bestCost, bestSize = c, cost, outSize
			}
		}
		order = append(order, best)
		inSet[best] = true
		total += bestCost
		size = bestSize
	}
	return order, total
}

// dpOrder finds the minimum-cost left-deep order exactly by dynamic
// programming over node subsets. The result size of a subset is
// order-independent (every internal pattern edge contributes its γ exactly
// once), so the DP state is just the subset. O(2^k · k^2); used for
// ablation on small patterns.
func (s *searcher) dpOrder() ([]graph.NodeID, float64) {
	n := s.p.Size()
	full := (1 << n) - 1

	// size[S] = Π|Φ(u)| · Πγ(e) over edges inside S.
	size := make([]float64, full+1)
	cost := make([]float64, full+1)
	back := make([]int8, full+1)
	for S := 1; S <= full; S++ {
		cost[S] = math.Inf(1)
	}
	size[0] = 1
	for S := 1; S <= full; S++ {
		// Compute size[S] incrementally from S without its lowest bit.
		low := S & -S
		c := graph.NodeID(setBit(low))
		prev := S &^ low
		g := 1.0
		for _, e := range s.p.Motif.Edges() {
			var other graph.NodeID
			switch {
			case e.From == c && e.To != c:
				other = e.To
			case e.To == c && e.From != c:
				other = e.From
			default:
				continue
			}
			if prev&(1<<other) != 0 {
				g *= s.edgeGamma(c, other)
			}
		}
		size[S] = size[prev] * float64(len(s.phi[c])) * g
	}
	for u := 0; u < n; u++ {
		S := 1 << u
		cost[S] = 0
		back[S] = int8(u)
	}
	for S := 1; S <= full; S++ {
		if math.IsInf(cost[S], 1) {
			continue
		}
		for u := 0; u < n; u++ {
			if S&(1<<u) != 0 {
				continue
			}
			T := S | 1<<u
			c := cost[S] + size[S]*float64(len(s.phi[u]))
			if c < cost[T] {
				cost[T] = c
				back[T] = int8(u)
			}
		}
	}
	order := make([]graph.NodeID, n)
	S := full
	for i := n - 1; i >= 0; i-- {
		u := back[S]
		order[i] = graph.NodeID(u)
		S &^= 1 << u
	}
	return order, cost[full]
}

// setBit returns the index of the single set bit in x.
func setBit(x int) int {
	return bits.Len(uint(x)) - 1
}
