// Package match implements the access methods for the GraphQL selection
// operator over large graphs (§4): the basic graph pattern matching search
// (Algorithm 4.1), local pruning of feasible mates with neighborhood
// subgraphs and profiles (§4.2), joint reduction of the search space by
// pseudo subgraph isomorphism (Algorithm 4.2, §4.3), and search-order
// optimization with a graph-specific cost model (§4.4).
package match

import (
	"context"
	"fmt"
	"math"
	"time"

	"gqldb/internal/graph"
	"gqldb/internal/index"
	"gqldb/internal/pattern"
)

// LocalPrune selects the §4.2 feasible-mate pruning technique.
type LocalPrune uint8

// Local pruning modes.
const (
	// PruneNone retrieves feasible mates by node attributes only.
	PruneNone LocalPrune = iota
	// PruneProfile additionally requires the pattern node's neighborhood
	// profile to be contained in the data node's.
	PruneProfile
	// PruneSubgraph requires the pattern node's neighborhood subgraph to
	// be sub-isomorphic to the data node's (strongest, most expensive).
	PruneSubgraph
)

// OrderMode selects the §4.4 search-order planner.
type OrderMode uint8

// Search-order modes.
const (
	// OrderInput searches pattern nodes in declaration order.
	OrderInput OrderMode = iota
	// OrderGreedy picks, at each join, the leaf minimizing the estimated
	// join cost (the paper's planner).
	OrderGreedy
	// OrderDP enumerates all left-deep orders by dynamic programming;
	// exponential in pattern size, for ablation only.
	OrderDP
)

// Options configures one selection evaluation.
type Options struct {
	// Exhaustive returns all mappings; otherwise the first (the language's
	// "exhaustive" keyword, §3.3).
	Exhaustive bool
	// Limit truncates the answer set when positive; the paper's harness
	// stops queries at 1000 hits.
	Limit int
	// Prune is the local pruning technique for feasible-mate retrieval.
	Prune LocalPrune
	// Refine enables the global Algorithm 4.2 reduction.
	Refine bool
	// RefineLevel is the maximum refinement level l; 0 means the pattern
	// size (the paper's setting).
	RefineLevel int
	// Order selects the search-order planner.
	Order OrderMode
	// Gamma is the constant reduction factor of the cost model when
	// frequency statistics are not used; 0 defaults to 0.5.
	Gamma float64
	// FreqGamma estimates reduction factors from label/edge frequencies
	// (the "more elaborate" estimator of §4.4).
	FreqGamma bool
	// AdjIterate iterates candidates for a pattern node from the data
	// adjacency of an already-matched pattern neighbor (intersected with
	// the feasible-mate set) instead of scanning Φ(u) — an extension
	// beyond Algorithm 4.1's literal "foreach v ∈ Φ(ui)" loop that pays
	// off when feasible-mate sets are much larger than data degrees.
	AdjIterate bool
	// CollectStats fills the per-phase instrumentation in Stats.
	CollectStats bool
	// Plans, when non-nil, caches the §4.4 planning output (feasible
	// mates, search order, cost estimates) across evaluations: a repeated
	// query over an unchanged graph skips retrieval, refinement and
	// ordering entirely. See PlanCache for the validity contract.
	Plans *PlanCache
	// PlanEpoch is the statistics-validity fence for plan-cache entries —
	// the store version of the snapshot the graph came from. It must move
	// forward whenever the underlying data changes; the exec layer wires
	// it to the snapshot version automatically.
	PlanEpoch uint64
}

// Optimized is the paper's recommended combination (§5.2): retrieval by
// profiles, refinement, and greedy-ordered search with frequency-based
// reduction factors.
func Optimized() Options {
	return Options{
		Exhaustive: true,
		Prune:      PruneProfile,
		Refine:     true,
		Order:      OrderGreedy,
		FreqGamma:  true,
	}
}

// Baseline is the unoptimized reference (§5.1): retrieval by node attributes
// and search in declaration order.
func Baseline() Options {
	return Options{Exhaustive: true}
}

// Mapping is one feasible mapping Φ: pattern nodes (and edges) to data
// nodes (and edges). Nodes[u] is the data node matched to pattern node u;
// Edges[e] is one data edge witnessing pattern edge e.
type Mapping struct {
	Nodes []graph.NodeID
	Edges []graph.EdgeID
}

// Stats instruments one selection evaluation; the §5 figures are computed
// from these counters.
type Stats struct {
	// CandBaseline[u] is |Φ0(u)| from attribute retrieval alone.
	CandBaseline []int
	// CandLocal[u] is |Φ(u)| after local pruning.
	CandLocal []int
	// CandRefined[u] is |Φ(u)| after Algorithm 4.2.
	CandRefined []int
	// Phase durations.
	RetrieveTime time.Duration
	RefineTime   time.Duration
	OrderTime    time.Duration
	SearchTime   time.Duration
	// SearchSteps counts candidate nodes visited by the backtracking
	// search (loop iterations of Search()).
	SearchSteps int64
	// NumMatches is the number of mappings reported.
	NumMatches int
	// Truncated records that Limit stopped the search early.
	Truncated bool
	// Order is the node visit order chosen by the planner.
	Order []graph.NodeID
	// EstCost is the planner's estimated cost of the chosen order.
	EstCost float64
	// PlanCacheHit reports that the evaluation reused a cached plan
	// (Options.Plans) instead of retrieving, refining and ordering; the
	// corresponding phase times are zero.
	PlanCacheHit bool
	// CancelChecks counts context-cancellation polls performed by the
	// evaluation (one per backtracking step when a cancellable context is
	// supplied via FindContext).
	CancelChecks int64
	// Ops collects per-operator timing and fan-out records appended by the
	// bulk algebra layer (parallel selection, product, join, compose and
	// the exec pipeline); the §5 harness plots parallel speedup from these.
	Ops []OpStat
}

// OpStat is one bulk-operator execution record: which operator ran, how
// many work items it fanned out over, on how many workers, and its wall
// time. Comparing Wall across Workers values yields the parallel-speedup
// curves of the evaluation harness.
type OpStat struct {
	Op      string
	Items   int
	Workers int
	Wall    time.Duration
}

// RecordOp appends one per-operator record. It is nil-safe so operators can
// be instrumented unconditionally, and must only be called from the
// goroutine coordinating the operator (never from pool workers).
func (s *Stats) RecordOp(op string, items, workers int, wall time.Duration) {
	if s == nil {
		return
	}
	s.Ops = append(s.Ops, OpStat{Op: op, Items: items, Workers: workers, Wall: wall})
}

// Summary renders the statistics in one human-readable block: the three
// search-space sizes (Definition 4.9) and the per-phase times.
func (s *Stats) Summary() string {
	return fmt.Sprintf(
		"space: baseline 10^%.1f -> local 10^%.1f -> refined 10^%.1f\n"+
			"phases: retrieve %v, refine %v, order %v, search %v (%d steps)\n"+
			"matches: %d (truncated=%v), order %v, est cost %.3g",
		Log10Space(s.CandBaseline), Log10Space(s.CandLocal), Log10Space(s.CandRefined),
		s.RetrieveTime, s.RefineTime, s.OrderTime, s.SearchTime, s.SearchSteps,
		s.NumMatches, s.Truncated, s.Order, s.EstCost)
}

// Log10Space returns log10 of the product of candidate-set sizes — the
// search-space size of Definition 4.9 — for the given per-node counts. An
// empty candidate set makes the space empty: -Inf is avoided by returning
// log10(0-sized space) as negative infinity substitute -400 (figures plot
// ratios, so any empty space dominates).
func Log10Space(cands []int) float64 {
	s := 0.0
	for _, c := range cands {
		if c == 0 {
			return -400
		}
		s += math.Log10(float64(c))
	}
	return s
}

// Index bundles the per-graph access structures built once per dataset:
// the B-tree label index with frequency statistics and (optionally) the
// radius-r neighborhood subgraphs and profiles.
type Index struct {
	G      *graph.Graph
	Labels *index.LabelIndex
	Nbr    *index.Neighborhoods
}

// BuildIndex constructs the access structures for g. Radius is the
// neighborhood radius (the paper uses 1); withSubgraphs materializes full
// neighborhood subgraphs in addition to profiles.
func BuildIndex(g *graph.Graph, radius int, withSubgraphs bool) *Index {
	ix := &Index{G: g, Labels: index.BuildLabelIndex(g)}
	if radius > 0 {
		ix.Nbr = index.BuildNeighborhoods(g, ix.Labels.In, radius, withSubgraphs)
	}
	return ix
}

// Find evaluates pattern p over g using the given options. ix may be nil,
// in which case feasible mates are retrieved by scanning (no label index,
// no local pruning structures). It returns the mappings and, when
// opt.CollectStats is set, filled statistics.
func Find(p *pattern.Pattern, g *graph.Graph, ix *Index, opt Options) ([]Mapping, *Stats, error) {
	return FindContext(context.Background(), p, g, ix, opt)
}

// FindContext is Find with cancellation and deadline support: the context
// is polled on every backtracking step of the Algorithm 4.1 search (and
// between the retrieval/refinement phases), so a cancelled selection
// returns ctx.Err() within one step — not only between graphs.
func FindContext(ctx context.Context, p *pattern.Pattern, g *graph.Graph, ix *Index, opt Options) ([]Mapping, *Stats, error) {
	if err := p.Compile(); err != nil {
		return nil, nil, err
	}
	if opt.Gamma == 0 {
		opt.Gamma = 0.5
	}
	if ctx == nil {
		ctx = context.Background()
	}
	s := &searcher{p: p, g: g, ix: ix, opt: opt, stats: &Stats{}, ctx: ctx, ctxDone: ctx.Done()}
	if err := s.run(); err != nil {
		return nil, nil, err
	}
	return s.out, s.stats, nil
}

// Exists reports whether p has at least one feasible mapping in g.
func Exists(p *pattern.Pattern, g *graph.Graph, ix *Index, opt Options) (bool, error) {
	return ExistsContext(context.Background(), p, g, ix, opt)
}

// ExistsContext is Exists with cancellation and deadline support.
func ExistsContext(ctx context.Context, p *pattern.Pattern, g *graph.Graph, ix *Index, opt Options) (bool, error) {
	opt.Exhaustive = false
	opt.Limit = 1
	ms, _, err := FindContext(ctx, p, g, ix, opt)
	return len(ms) > 0, err
}
