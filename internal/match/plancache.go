package match

import (
	"container/list"
	"fmt"
	"strings"
	"sync"

	"gqldb/internal/graph"
	"gqldb/internal/obs"
	"gqldb/internal/pattern"
)

// This file implements the plan cache: the §4.4 cost model plans a search
// order (and, before that, retrieves and refines the feasible-mate lists)
// from scratch on every Find, yet a production frontend sends millions of
// structurally identical queries. The cache memoizes the complete planning
// output — feasible mates after local pruning and refinement, the chosen
// search order, and the candidate-count statistics — keyed on the canonical
// pattern shape, the data graph, and the planning-relevant options.
//
// Validity is statistics-fenced per entry: each cached plan records the
// epoch it was computed under (the engine passes the version of the
// document the graph belongs to), and a lookup hits only when its epoch
// matches the entry's — a mismatch drops just that entry. Mutating one
// document therefore invalidates only plans over that document's graphs;
// plans over graphs of untouched documents stay live. Within one document
// version the store's copy-on-write discipline guarantees graphs are
// immutable, so a plan computed once is valid for every later identical
// query. Callers outside the store (direct Find users) must change the
// epoch themselves whenever a graph mutates; a constant epoch is only
// sound over immutable graphs.

// Plan is one cached planning result. Plans are shared across concurrent
// searches and are immutable after Put: no holder may write through any of
// these slices (the aliasguard analyzer enforces this for PlanCache.Get
// results). Searchers copy the fields they need to mutate.
type Plan struct {
	// Phi[u] is the feasible-mate list of pattern node u after local
	// pruning and (when enabled) Algorithm 4.2 refinement.
	Phi [][]graph.NodeID
	// Order is the search order chosen by the planner; EstCost its
	// estimated cost.
	Order   []graph.NodeID
	EstCost float64
	// Candidate-count statistics captured at plan time (Definition 4.9).
	CandBaseline []int
	CandLocal    []int
	CandRefined  []int
}

// PlanOpts is the subset of Options that changes planning output: the
// pruning and refinement configuration determines the feasible-mate lists,
// the order mode and γ configuration determine the search order, and the
// presence of access structures determines the retrieval path.
type PlanOpts struct {
	Prune       LocalPrune
	Refine      bool
	RefineLevel int
	Order       OrderMode
	Gamma       float64
	FreqGamma   bool
	// Labels and Nbr record which access structures the evaluation had
	// (label index, neighborhood structures): retrieval differs with and
	// without them.
	Labels bool
	Nbr    bool
}

// PlanKey identifies one cached plan: the canonical pattern shape, the
// data graph it was planned against, and the planning options. The graph
// enters by identity — the key holds the pointer, which also keeps the
// graph alive until the epoch fence purges the entry.
type PlanKey struct {
	Shape string
	Graph *graph.Graph
	Opts  PlanOpts
}

// planKeyFor builds the cache key for one evaluation.
func planKeyFor(p *pattern.Pattern, g *graph.Graph, ix *Index, opt Options) PlanKey {
	return PlanKey{
		Shape: PatternShape(p),
		Graph: g,
		Opts: PlanOpts{
			Prune:       opt.Prune,
			Refine:      opt.Refine,
			RefineLevel: opt.RefineLevel,
			Order:       opt.Order,
			Gamma:       opt.Gamma,
			FreqGamma:   opt.FreqGamma,
			Labels:      ix != nil && ix.Labels != nil,
			Nbr:         ix != nil && ix.Nbr != nil,
		},
	}
}

// PatternShape renders the canonical planning shape of a compiled pattern:
// motif direction, per-node tag and predicate (which subsumes constant
// label constraints — they are `label == "X"` conjuncts), edge wiring with
// per-edge predicates, and the residual global predicate. Patterns that
// differ only in formatting or construction order of their source text
// share a shape; anything that could change feasible mates or the cost
// model changes it. The pattern must be compiled (Pattern.Compile pushes
// the predicates down that the shape reads); Find compiles before keying.
func PatternShape(p *pattern.Pattern) string {
	var b strings.Builder
	if p.Motif.Directed {
		b.WriteString("D")
	} else {
		b.WriteString("U")
	}
	for _, n := range p.Motif.Nodes() {
		b.WriteString("\x00n")
		b.WriteString(p.NodeTag[n.ID])
		b.WriteByte('\x01')
		if e := p.NodePred[n.ID]; e != nil {
			b.WriteString(e.String())
		}
	}
	for _, e := range p.Motif.Edges() {
		fmt.Fprintf(&b, "\x00e%d>%d\x01", e.From, e.To)
		if x := p.EdgePred[e.ID]; x != nil {
			b.WriteString(x.String())
		}
	}
	if p.Global != nil {
		b.WriteString("\x00g")
		b.WriteString(p.Global.String())
	}
	return b.String()
}

// PlanCacheStats is one plan cache's counter snapshot (process-wide
// equivalents live in internal/obs; these are per-cache, for /healthz).
type PlanCacheStats struct {
	Hits          int64 `json:"hits"`
	Misses        int64 `json:"misses"`
	Evictions     int64 `json:"evictions"`
	Invalidations int64 `json:"invalidations"`
	Entries       int   `json:"entries"`
	Capacity      int   `json:"capacity"`
}

// PlanCache is an LRU cache of search plans with per-entry epoch fencing:
// each plan is stored with the epoch it was computed under, and a lookup
// whose epoch differs from the entry's drops that entry alone — there is
// no global purge, so an epoch moving for one document's graphs leaves
// every other document's plans untouched. Get and Put are safe for
// concurrent use; one cache is shared by every worker of every selection
// fan-out.
type PlanCache struct {
	mu       sync.Mutex
	capacity int
	order    *list.List // front = most recent; values are *planEntry
	entries  map[PlanKey]*list.Element

	hits, misses, evictions, invalidations int64
}

type planEntry struct {
	key   PlanKey
	epoch uint64
	plan  *Plan
}

// NewPlanCache returns a cache holding at most capacity plans (min 1).
func NewPlanCache(capacity int) *PlanCache {
	if capacity < 1 {
		capacity = 1
	}
	return &PlanCache{
		capacity: capacity,
		order:    list.New(),
		entries:  make(map[PlanKey]*list.Element),
	}
}

// SetCapacity resizes the cache bound. Startup-only: not synchronized
// against concurrent Get/Put (enforced by gqlvet's gosafe table).
func (c *PlanCache) SetCapacity(n int) {
	if n < 1 {
		n = 1
	}
	c.capacity = n
	// Bounded by the entry count at entry (evictions under c.mu only
	// shrink it), so no cancellation poll is needed.
	for i := c.order.Len(); i > c.capacity; i-- {
		c.evictOldest()
	}
}

// Get returns the plan for key, if present and computed under the same
// epoch. An entry whose epoch differs from the lookup's is invalidated —
// its statistics are no longer known-valid — and the lookup misses. The
// returned plan is shared and must be treated as read-only.
func (c *PlanCache) Get(epoch uint64, key PlanKey) (*Plan, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[key]
	if !ok {
		c.miss()
		return nil, false
	}
	e := el.Value.(*planEntry)
	if e.epoch != epoch {
		if epoch > e.epoch {
			// The document moved past the entry's epoch: its statistics are
			// no longer known-valid, so drop it. An older lookup (a reader on
			// a pre-mutation snapshot) merely misses — it must not evict a
			// plan that is current for everyone else.
			c.order.Remove(el)
			delete(c.entries, key)
			c.invalidations++
			obs.PlanCacheInvalidations.Inc()
		}
		c.miss()
		return nil, false
	}
	c.order.MoveToFront(el)
	c.hits++
	obs.PlanCacheHits.Inc()
	return e.plan, true
}

// Put stores plan under key for the given epoch, evicting the
// least-recently-used plan past capacity. An existing entry for the key
// is overwritten, adopting the new epoch.
func (c *PlanCache) Put(epoch uint64, key PlanKey, plan *Plan) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[key]; ok {
		e := el.Value.(*planEntry)
		e.plan, e.epoch = plan, epoch
		c.order.MoveToFront(el)
		return
	}
	c.entries[key] = c.order.PushFront(&planEntry{key: key, epoch: epoch, plan: plan})
	for i := c.order.Len(); i > c.capacity; i-- {
		c.evictOldest()
		c.evictions++
		obs.PlanCacheEvictions.Inc()
	}
}

// Stats returns the cache's counter snapshot.
func (c *PlanCache) Stats() PlanCacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return PlanCacheStats{
		Hits:          c.hits,
		Misses:        c.misses,
		Evictions:     c.evictions,
		Invalidations: c.invalidations,
		Entries:       c.order.Len(),
		Capacity:      c.capacity,
	}
}

// miss counts one miss. Callers hold c.mu.
func (c *PlanCache) miss() {
	c.misses++
	obs.PlanCacheMisses.Inc()
}

// evictOldest drops the back of the LRU list. Callers hold c.mu.
func (c *PlanCache) evictOldest() {
	el := c.order.Back()
	if el == nil {
		return
	}
	c.order.Remove(el)
	delete(c.entries, el.Value.(*planEntry).key)
}
