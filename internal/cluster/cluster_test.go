// Package cluster_test is the `make test-cluster` gate: a black-box test
// of the distributed read path over real processes. It builds cmd/gqlshard
// and cmd/gqlserver, starts a three-mirror shard cluster plus a frontend on
// random ports, and asserts the documented cluster semantics end to end:
// byte-identical answers versus the embedded engine, the version handshake
// resyncing mirrors after an /admin/doc push, retry rotation surviving a
// shard killed mid-stream, an empty restarted mirror converging on first
// contact, the fail-mode and allow-partial frontends, the shard counters on
// /metrics, and a clean SIGTERM drain of every process.
package cluster_test

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"math/rand"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strings"
	"syscall"
	"testing"
	"time"

	gexec "gqldb/internal/exec"
	"gqldb/internal/graph"
	"gqldb/internal/parser"
)

// clusterQuery is the workload: the A—B edge pattern, exhaustively, with a
// graph-constructing return clause — every shard contributes matches and
// the merged output order is observable.
const clusterQuery = `
graph P { node v1 where label="A"; node v2 where label="B"; edge (v1, v2); };
for P exhaustive in doc("db")
return graph { node P.v1; node P.v2; edge (P.v1, P.v2); };
`

// labeledCollection generates the deterministic test corpus (same scheme as
// the store package's fixtures: small random graphs over labels A..C).
func labeledCollection(n int, seed int64) graph.Collection {
	rng := rand.New(rand.NewSource(seed))
	var c graph.Collection
	for i := 0; i < n; i++ {
		g := graph.New(fmt.Sprintf("g%d", i))
		k := 3 + rng.Intn(4)
		for j := 0; j < k; j++ {
			g.AddNode("", graph.TupleOf("", "label", string(rune('A'+rng.Intn(3)))))
		}
		for j := 0; j < 2*k; j++ {
			u, v := rng.Intn(k), rng.Intn(k)
			if u != v {
				g.AddEdge("", graph.NodeID(u), graph.NodeID(v), nil)
			}
		}
		c = append(c, g)
	}
	return c
}

// proc is one managed cluster process: the command, its announced listen
// address, and the accumulated stderr log (complete once the process
// exits).
type proc struct {
	cmd  *exec.Cmd
	addr string
	logc chan string
}

var addrRE = regexp.MustCompile(`listening on (127\.0\.0\.1:\d+)`)

// startProc launches a binary, scrapes the announced listen address off
// stderr, and keeps draining the pipe so logging never blocks the process.
func startProc(t *testing.T, bin string, args ...string) *proc {
	t.Helper()
	cmd := exec.Command(bin, args...)
	stderr, err := cmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cmd.Process.Kill() })
	p := &proc{cmd: cmd, logc: make(chan string, 1)}
	addrc := make(chan string, 1)
	go func() {
		var logs strings.Builder
		sc := bufio.NewScanner(stderr)
		for sc.Scan() {
			line := sc.Text()
			logs.WriteString(line + "\n")
			if m := addrRE.FindStringSubmatch(line); m != nil {
				select {
				case addrc <- m[1]:
				default:
				}
			}
		}
		p.logc <- logs.String()
	}()
	select {
	case p.addr = <-addrc:
	case <-time.After(10 * time.Second):
		t.Fatalf("%s did not announce its listen address", filepath.Base(bin))
	}
	return p
}

// sigterm drains the process and asserts a clean exit inside the grace
// period, returning the full stderr log. The scanner's EOF is awaited
// before cmd.Wait: Wait tears down the stderr pipe, and calling it while
// the scanner still drains can discard the buffered tail of the log (the
// drain markers live exactly there). EOF arrives at process exit, so the
// wait-for-logs doubles as the exit wait.
func (p *proc) sigterm(t *testing.T) string {
	t.Helper()
	if err := p.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	var logs string
	select {
	case logs = <-p.logc:
	case <-time.After(15 * time.Second):
		t.Fatalf("%s did not exit within the grace period", p.cmd.Path)
	}
	if err := p.cmd.Wait(); err != nil {
		t.Fatalf("%s exited non-zero: %v\nlogs:\n%s", p.cmd.Path, err, logs)
	}
	return logs
}

func TestClusterBlackBox(t *testing.T) {
	if runtimeOS := os.Getenv("GOOS"); runtimeOS != "" && runtimeOS != "linux" && runtimeOS != "darwin" {
		t.Skipf("signal-driven drain test not supported on GOOS=%s", runtimeOS)
	}
	dir := t.TempDir()
	shardBin := filepath.Join(dir, "gqlshard")
	serverBin := filepath.Join(dir, "gqlserver")
	for _, b := range []struct{ out, pkg string }{
		{shardBin, "gqldb/cmd/gqlshard"},
		{serverBin, "gqldb/cmd/gqlserver"},
	} {
		if out, err := exec.Command("go", "build", "-o", b.out, b.pkg).CombinedOutput(); err != nil {
			t.Fatalf("building %s: %v\n%s", b.pkg, err, out)
		}
	}

	// The corpus goes to disk in the language's text syntax and comes back
	// through each process's startup loader — content-hash identity must
	// survive independent loading.
	writeDoc := func(name string, coll graph.Collection) string {
		var b strings.Builder
		for _, g := range coll {
			fmt.Fprintf(&b, "%s;\n", g)
		}
		path := filepath.Join(dir, name)
		if err := os.WriteFile(path, []byte(b.String()), 0o644); err != nil {
			t.Fatal(err)
		}
		return path
	}
	collA := labeledCollection(40, 3)
	docPath := writeDoc("db.gql", collA)

	// Three mirrors, every one partitioned at the frontend's width.
	const width = "3"
	shardArgs := func() []string {
		return []string{"-addr", "127.0.0.1:0", "-shards", width, "-doc", "db=" + docPath}
	}
	mirrors := make([]*proc, 3)
	var selectorArgs []string
	for i := range mirrors {
		mirrors[i] = startProc(t, shardBin, shardArgs()...)
		selectorArgs = append(selectorArgs, "-selector", "http://"+mirrors[i].addr)
	}

	frontend := startProc(t, serverBin, append(selectorArgs,
		"-addr", "127.0.0.1:0",
		"-doc", "db="+docPath,
		"-shards", width,
		"-shard-retries", "2",
		"-shard-probe-interval", "100ms",
		"-admin",
		"-grace", "10s")...)
	base := "http://" + frontend.addr

	get := func(path string) (int, string) {
		resp, err := http.Get(base + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		var b bytes.Buffer
		b.ReadFrom(resp.Body)
		return resp.StatusCode, b.String()
	}
	// query is also called from a goroutine during the mid-kill phase, so
	// transport failures come back as status 0 instead of a t.Fatal.
	query := func(against string) (int, string) {
		body, _ := json.Marshal(map[string]any{"query": clusterQuery})
		resp, err := http.Post(against+"/query", "application/json", bytes.NewReader(body))
		if err != nil {
			return 0, fmt.Sprintf("POST /query: %v", err)
		}
		defer resp.Body.Close()
		var b bytes.Buffer
		b.ReadFrom(resp.Body)
		return resp.StatusCode, b.String()
	}
	// results parses the /query success shape into the rendered graphs.
	results := func(body string) []string {
		var out struct {
			Results []string `json:"results"`
		}
		if err := json.Unmarshal([]byte(body), &out); err != nil {
			t.Fatalf("decoding query response: %v\n%s", err, body)
		}
		return out.Results
	}
	oracle := func(coll graph.Collection) []string {
		prog, err := parser.Parse(clusterQuery)
		if err != nil {
			t.Fatal(err)
		}
		res, err := gexec.New(gexec.Store{"db": coll}).Run(prog)
		if err != nil {
			t.Fatal(err)
		}
		want := make([]string, len(res.Out))
		for i, g := range res.Out {
			want[i] = g.String()
		}
		return want
	}
	metric := func(name string) float64 {
		_, body := get("/metrics")
		for _, line := range strings.Split(body, "\n") {
			if strings.HasPrefix(line, name+" ") {
				var v float64
				fmt.Sscanf(strings.TrimPrefix(line, name+" "), "%g", &v)
				return v
			}
		}
		return 0
	}

	// Cluster answers are byte-identical to the embedded engine.
	want := oracle(collA)
	if len(want) == 0 {
		t.Fatal("degenerate corpus: the oracle found no matches")
	}
	status, body := query(base)
	if status != 200 {
		t.Fatalf("query = %d %s", status, body)
	}
	if got := results(body); fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("cluster diverged from embedded engine:\n got %v\nwant %v", got, want)
	}
	if rpcs := metric("gqldb_shard_rpcs_total"); rpcs < 3 {
		t.Fatalf("gqldb_shard_rpcs_total = %v after a 3-shard query", rpcs)
	}

	// The frontend's health view includes the probed shard endpoints.
	deadline := time.Now().Add(5 * time.Second)
	for {
		_, hb := get("/healthz")
		if strings.Count(hb, `"healthy":true`) >= 3 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("shard endpoints never probed healthy: %s", hb)
		}
		time.Sleep(20 * time.Millisecond)
	}

	// /admin/doc replaces the document on the frontend only; mirrors are now
	// stale and must resync through the version handshake mid-query.
	collB := labeledCollection(25, 11)
	var push strings.Builder
	for _, g := range collB {
		fmt.Fprintf(&push, "%s;\n", g)
	}
	resp, err := http.Post(base+"/admin/doc?name=db", "text/plain", strings.NewReader(push.String()))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("/admin/doc = %d", resp.StatusCode)
	}
	want = oracle(collB)
	status, body = query(base)
	if status != 200 {
		t.Fatalf("post-push query = %d %s", status, body)
	}
	if got := results(body); fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("post-push cluster diverged:\n got %v\nwant %v", got, want)
	}
	if n := metric("gqldb_shard_resyncs_total"); n < 1 {
		t.Fatalf("gqldb_shard_resyncs_total = %v after a stale-mirror query", n)
	}

	// Kill one mirror mid-stream: launch the query, then SIGKILL while it is
	// (or is about to be) in flight. Whatever the interleaving, the retry
	// rotation must land every shard on a live replica and the answer must
	// not change.
	resc := make(chan string, 1)
	go func() {
		_, b := query(base)
		resc <- b
	}()
	mirrors[0].cmd.Process.Kill()
	select {
	case b := <-resc:
		if got := results(b); fmt.Sprint(got) != fmt.Sprint(want) {
			t.Fatalf("mid-kill cluster diverged:\n got %v\nwant %v", got, want)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("query issued during the shard kill never returned")
	}
	status, body = query(base)
	if status != 200 {
		t.Fatalf("post-kill query = %d %s", status, body)
	}
	if got := results(body); fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("post-kill cluster diverged:\n got %v\nwant %v", got, want)
	}
	if n := metric("gqldb_shard_retries_total"); n < 1 {
		t.Fatalf("gqldb_shard_retries_total = %v after querying past a dead mirror", n)
	}

	// Restart the killed mirror EMPTY: no -doc flag, so the first request it
	// serves must come back unknown_doc and the frontend must push the
	// current document before retrying.
	mirrors[0].cmd.Wait()
	restarted := startProc(t, shardBin, "-addr", mirrors[0].addr, "-shards", width)
	before := metric("gqldb_shard_resyncs_total")
	// Several queries: shard→endpoint rotation guarantees the restarted
	// mirror serves a primary slot, and retries cover the rest.
	for i := 0; i < 3; i++ {
		status, body = query(base)
		if status != 200 {
			t.Fatalf("post-restart query %d = %d %s", i, status, body)
		}
		if got := results(body); fmt.Sprint(got) != fmt.Sprint(want) {
			t.Fatalf("post-restart cluster diverged:\n got %v\nwant %v", got, want)
		}
	}
	if n := metric("gqldb_shard_resyncs_total"); n <= before {
		t.Fatalf("gqldb_shard_resyncs_total stuck at %v: the empty mirror never resynced", n)
	}

	// Fail mode: a frontend with no retry budget over a dead endpoint
	// reports the typed per-shard error, not a silent partial answer.
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	deadAddr := l.Addr().String()
	l.Close()
	failFE := startProc(t, serverBin,
		"-addr", "127.0.0.1:0",
		"-doc", "db="+docPath,
		"-shards", width,
		"-selector", "http://"+deadAddr,
		"-shard-retries", "0",
		"-shard-timeout", "2s")
	status, body = query("http://" + failFE.addr)
	if status != http.StatusBadGateway || !strings.Contains(body, `"code":"shard_error"`) {
		t.Fatalf("fail-mode query = %d %s, want 502 shard_error", status, body)
	}
	failFE.sigterm(t)

	// Allow-partial: the same dead cluster degrades to an empty answer.
	partialFE := startProc(t, serverBin,
		"-addr", "127.0.0.1:0",
		"-doc", "db="+docPath,
		"-shards", width,
		"-selector", "http://"+deadAddr,
		"-shard-retries", "0",
		"-shard-timeout", "2s",
		"-allow-partial")
	status, body = query("http://" + partialFE.addr)
	if status != 200 {
		t.Fatalf("allow-partial query = %d %s", status, body)
	}
	if got := results(body); len(got) != 0 {
		t.Fatalf("allow-partial answer has %d results, want 0 (cluster is dead)", len(got))
	}
	partialFE.sigterm(t)

	// Clean drain of the whole cluster: frontend first, then every mirror,
	// all exiting 0 inside their grace periods.
	logs := frontend.sigterm(t)
	if !strings.Contains(logs, "drained cleanly") {
		t.Errorf("frontend log missing clean-drain marker:\n%s", logs)
	}
	for _, m := range []*proc{mirrors[1], mirrors[2], restarted} {
		logs := m.sigterm(t)
		if !strings.Contains(logs, "drained cleanly") {
			t.Errorf("mirror log missing clean-drain marker:\n%s", logs)
		}
	}
}
