package ast

import (
	"testing"

	"gqldb/internal/expr"
	"gqldb/internal/graph"
)

func lit(v any) expr.Expr {
	switch x := v.(type) {
	case int:
		return expr.Lit{Val: graph.Int(int64(x))}
	case string:
		return expr.Lit{Val: graph.String(x)}
	case bool:
		return expr.Lit{Val: graph.Bool(x)}
	}
	panic("bad lit")
}

func TestIsSimple(t *testing.T) {
	simple := &GraphDecl{Name: "G", Members: []Member{
		&NodeDecl{Name: "v1"},
		&EdgeDecl{Name: "e1", From: []string{"v1"}, To: []string{"v1"}},
	}}
	if !simple.IsSimple() {
		t.Error("node/edge-only decl should be simple")
	}
	withRef := &GraphDecl{Name: "G", Members: []Member{&GraphRef{Name: "X"}}}
	if withRef.IsSimple() {
		t.Error("decl with graph ref is not simple")
	}
	withAlts := &GraphDecl{Name: "G", Alts: [][]Member{{}}}
	if withAlts.IsSimple() {
		t.Error("decl with alternatives is not simple")
	}
}

func TestToGraphErrors(t *testing.T) {
	cases := []*GraphDecl{
		// where on the graph
		{Name: "G", Where: lit(true)},
		// where on a node
		{Name: "G", Members: []Member{&NodeDecl{Name: "v", Where: lit(true)}}},
		// edge to undeclared node
		{Name: "G", Members: []Member{
			&NodeDecl{Name: "v"},
			&EdgeDecl{From: []string{"v"}, To: []string{"w"}},
		}},
		// non-literal attribute
		{Name: "G", Members: []Member{
			&NodeDecl{Name: "v", Tuple: &TupleDecl{Attrs: []AttrDecl{
				{Name: "x", E: expr.Name{Parts: []string{"y"}}},
			}}},
		}},
		// dotted edge endpoint in a literal graph
		{Name: "G", Members: []Member{
			&NodeDecl{Name: "v"},
			&EdgeDecl{From: []string{"X", "v"}, To: []string{"v"}},
		}},
	}
	for i, d := range cases {
		if _, err := d.ToGraph(); err == nil {
			t.Errorf("case %d: ToGraph should fail", i)
		}
	}
}

func TestToPatternOnNonSimple(t *testing.T) {
	d := &GraphDecl{Name: "P", Members: []Member{&GraphRef{Name: "X"}}}
	if _, err := d.ToPattern(); err == nil {
		t.Error("ToPattern on non-simple decl should fail")
	}
}

func TestToMotifDefRejectsPredicates(t *testing.T) {
	d := &GraphDecl{Name: "M", Where: lit(true),
		Members: []Member{&GraphRef{Name: "M"}}}
	if _, err := d.ToMotifDef(); err == nil {
		t.Error("motif with where clause should fail")
	}
	d2 := &GraphDecl{Name: "M", Members: []Member{
		&NodeDecl{Name: "v", Where: lit(true)},
	}}
	if _, err := d2.ToMotifDef(); err == nil {
		t.Error("motif node with where clause should fail")
	}
	d3 := &GraphDecl{Name: "M", Members: []Member{
		&NodeDecl{Name: "a"}, &NodeDecl{Name: "b"},
		&UnifyDecl{Names: [][]string{{"a"}, {"b"}}, Where: lit(true)},
	}}
	if _, err := d3.ToMotifDef(); err == nil {
		t.Error("motif unify with where clause should fail")
	}
}

func TestToMotifDefMultiUnify(t *testing.T) {
	d := &GraphDecl{Name: "M", Members: []Member{
		&NodeDecl{Name: "a"}, &NodeDecl{Name: "b"}, &NodeDecl{Name: "c"},
		&UnifyDecl{Names: [][]string{{"a"}, {"b"}, {"c"}}},
	}}
	def, err := d.ToMotifDef()
	if err != nil {
		t.Fatal(err)
	}
	if len(def.Alts[0].Unifies) != 2 {
		t.Errorf("3-way unify should lower to 2 pairs, got %d", len(def.Alts[0].Unifies))
	}
}

func TestTemplateLowering(t *testing.T) {
	td := &TemplateDecl{Name: "T", Members: []Member{
		&GraphRef{Name: "C"},
		&NodeDecl{Name: "P.v1"},
		&NodeDecl{Name: "fresh", Tuple: &TupleDecl{Tag: "x",
			Attrs: []AttrDecl{{Name: "a", E: lit(1)}}}},
		&EdgeDecl{From: []string{"P", "v1"}, To: []string{"fresh"}},
		&UnifyDecl{Names: [][]string{{"P", "v1"}, {"C", "v1"}}},
	}}
	tmpl, err := td.ToTemplate()
	if err != nil {
		t.Fatal(err)
	}
	if len(tmpl.Members) != 5 {
		t.Fatalf("members = %d", len(tmpl.Members))
	}
	// Dotted node names become references.
	n1 := tmpl.Members[1]
	if tn, ok := n1.(interface{ isTMemberTest() }); ok {
		_ = tn
	}
	// A bare reference template cannot lower.
	ref := &TemplateDecl{Ref: "X"}
	if _, err := ref.ToTemplate(); err == nil {
		t.Error("bare reference should not lower to a template")
	}
	// unify with a single name fails.
	bad := &TemplateDecl{Members: []Member{&UnifyDecl{Names: [][]string{{"a"}}}}}
	if _, err := bad.ToTemplate(); err == nil {
		t.Error("1-name unify should fail")
	}
}
