// Package ast defines the abstract syntax of GraphQL programs (Appendix
// 4.A) and the lowering of parsed declarations into executable forms:
// graph literals, graph patterns (internal/pattern), graph templates
// (internal/algebra) and motif grammars (internal/motif).
package ast

import (
	"fmt"
	"strings"

	"gqldb/internal/algebra"
	"gqldb/internal/expr"
	"gqldb/internal/graph"
	"gqldb/internal/motif"
	"gqldb/internal/pattern"
)

// Program is a parsed query file: a sequence of statements.
type Program struct {
	Stmts []Stmt
}

// Stmt is a top-level statement.
type Stmt interface{ isStmt() }

// GraphDecl declares a named graph pattern / motif / graph literal:
// graph P [<tuple>] { members } [where expr];
type GraphDecl struct {
	Name    string
	Tuple   *TupleDecl
	Members []Member
	// Alts holds further disjunction alternatives ({...} | {...}).
	Alts  [][]Member
	Where expr.Expr
}

// AssignStmt is ID := GraphTemplate; (e.g. C := graph {};).
type AssignStmt struct {
	Name string
	Tmpl *TemplateDecl
}

// FLWRStmt is a for/let-or-return expression (§3.4).
type FLWRStmt struct {
	// PatternName references a declared pattern, or Pattern holds an
	// inline declaration.
	PatternName string
	Pattern     *GraphDecl
	Exhaustive  bool
	// Doc is the data source name inside doc("...").
	Doc   string
	Where expr.Expr
	// Exactly one of Return/LetName+Let is set.
	Return  *TemplateDecl
	LetName string
	Let     *TemplateDecl
}

func (*GraphDecl) isStmt()  {}
func (*AssignStmt) isStmt() {}
func (*FLWRStmt) isStmt()   {}

// Member is one declaration inside a graph pattern body.
type Member interface{ isMember() }

// NodeDecl declares pattern/graph nodes: node v1 <tuple> [where expr].
type NodeDecl struct {
	Name  string
	Tuple *TupleDecl
	Where expr.Expr
}

// EdgeDecl declares an edge: edge e1 (a, b) <tuple> [where expr].
type EdgeDecl struct {
	Name     string
	From, To []string
	Tuple    *TupleDecl
	Where    expr.Expr
}

// GraphRef embeds another declared graph/motif: graph G1 [as X];
type GraphRef struct {
	Name string
	As   string
}

// UnifyDecl merges nodes: unify a.b, c.d [, e.f ...] [where expr];
type UnifyDecl struct {
	Names [][]string
	Where expr.Expr
}

// ExportDecl re-exports a nested node: export Path.v2 as v2;
type ExportDecl struct {
	Ref []string
	As  string
}

func (*NodeDecl) isMember()   {}
func (*EdgeDecl) isMember()   {}
func (*GraphRef) isMember()   {}
func (*UnifyDecl) isMember()  {}
func (*ExportDecl) isMember() {}

// TupleDecl is <tag attr=value, ...>; values are expressions (literals in
// pattern context, computed in template context).
type TupleDecl struct {
	Tag   string
	Attrs []AttrDecl
}

// AttrDecl is one attribute assignment in a tuple.
type AttrDecl struct {
	Name string
	E    expr.Expr
}

// TemplateDecl is a graph template body or a bare reference to a graph
// variable (GraphTemplate ::= "graph" ... | <ID>).
type TemplateDecl struct {
	Ref     string // non-empty: the template is just a variable reference
	Name    string
	Tuple   *TupleDecl
	Members []Member
}

// ---- Lowering ----

// evalConstTuple evaluates a tuple declaration with no free names into a
// graph.Tuple; used for graph literals and pattern attribute constraints.
func evalConstTuple(td *TupleDecl) (*graph.Tuple, error) {
	if td == nil {
		return nil, nil
	}
	t := graph.NewTuple(td.Tag)
	for _, a := range td.Attrs {
		lit, ok := a.E.(expr.Lit)
		if !ok {
			return nil, fmt.Errorf("ast: attribute %s: only literals allowed here", a.Name)
		}
		t.Set(a.Name, lit.Val)
	}
	return t, nil
}

// IsSimple reports whether the declaration uses only node and edge members
// with no disjunction — i.e. it lowers directly to a graph or a
// non-recursive pattern.
func (d *GraphDecl) IsSimple() bool {
	if len(d.Alts) > 0 {
		return false
	}
	for _, m := range d.Members {
		switch m.(type) {
		case *NodeDecl, *EdgeDecl:
		default:
			return false
		}
	}
	return true
}

// ToGraph lowers a simple declaration into a concrete graph (a graph
// literal). Where clauses are rejected: data carries no predicates.
func (d *GraphDecl) ToGraph() (*graph.Graph, error) {
	if !d.IsSimple() {
		return nil, fmt.Errorf("ast: graph %s: literal graphs cannot use composition or disjunction", d.Name)
	}
	if d.Where != nil {
		return nil, fmt.Errorf("ast: graph %s: literal graphs cannot have where clauses", d.Name)
	}
	g := graph.New(d.Name)
	attrs, err := evalConstTuple(d.Tuple)
	if err != nil {
		return nil, err
	}
	g.Attrs = attrs
	for _, m := range d.Members {
		switch x := m.(type) {
		case *NodeDecl:
			if x.Where != nil {
				return nil, fmt.Errorf("ast: graph %s: literal node cannot have a where clause", d.Name)
			}
			t, err := evalConstTuple(x.Tuple)
			if err != nil {
				return nil, err
			}
			g.AddNode(x.Name, t)
		case *EdgeDecl:
			if x.Where != nil {
				return nil, fmt.Errorf("ast: graph %s: literal edge cannot have a where clause", d.Name)
			}
			if len(x.From) != 1 || len(x.To) != 1 {
				return nil, fmt.Errorf("ast: graph %s: literal edge endpoints must be local nodes", d.Name)
			}
			from, ok1 := g.NodeByName(x.From[0])
			to, ok2 := g.NodeByName(x.To[0])
			if !ok1 || !ok2 {
				return nil, fmt.Errorf("ast: graph %s: edge %s references undeclared node", d.Name, x.Name)
			}
			t, err := evalConstTuple(x.Tuple)
			if err != nil {
				return nil, err
			}
			g.AddEdge(x.Name, from, to, t)
		}
	}
	if err := g.Err(); err != nil {
		return nil, fmt.Errorf("ast: graph %s: %w", d.Name, err)
	}
	return g, nil
}

// ToPattern lowers a simple declaration into a compiled pattern.
func (d *GraphDecl) ToPattern() (*pattern.Pattern, error) {
	if !d.IsSimple() {
		return nil, fmt.Errorf("ast: pattern %s: recursive/disjunctive patterns must be lowered via ToMotifDef and derived", d.Name)
	}
	p := pattern.New(d.Name)
	for _, m := range d.Members {
		switch x := m.(type) {
		case *NodeDecl:
			t, err := evalConstTuple(x.Tuple)
			if err != nil {
				return nil, err
			}
			p.AddNode(x.Name, t, x.Where)
		case *EdgeDecl:
			if len(x.From) != 1 || len(x.To) != 1 {
				return nil, fmt.Errorf("ast: pattern %s: edge endpoints must be local nodes", d.Name)
			}
			from, ok1 := p.Motif.NodeByName(x.From[0])
			to, ok2 := p.Motif.NodeByName(x.To[0])
			if !ok1 || !ok2 {
				return nil, fmt.Errorf("ast: pattern %s: edge %s references undeclared node", d.Name, x.Name)
			}
			t, err := evalConstTuple(x.Tuple)
			if err != nil {
				return nil, err
			}
			p.AddEdge(x.Name, from, to, t, x.Where)
		}
	}
	p.Where(d.Where)
	if err := p.Compile(); err != nil {
		return nil, err
	}
	return p, nil
}

// ToMotifDef lowers a (possibly recursive/disjunctive) declaration into a
// motif definition for bounded derivation. Node attribute tuples are
// carried; predicates other than attribute equality are not representable
// in motif form and are rejected.
func (d *GraphDecl) ToMotifDef() (*motif.Def, error) {
	if d.Where != nil {
		return nil, fmt.Errorf("ast: motif %s: where clauses are not supported on recursive motifs", d.Name)
	}
	alts := append([][]Member{d.Members}, d.Alts...)
	def := &motif.Def{Name: d.Name}
	for _, members := range alts {
		var b motif.Body
		for _, m := range members {
			switch x := m.(type) {
			case *NodeDecl:
				if x.Where != nil {
					return nil, fmt.Errorf("ast: motif %s: node where clauses unsupported in recursive motifs", d.Name)
				}
				t, err := evalConstTuple(x.Tuple)
				if err != nil {
					return nil, err
				}
				b.Nodes = append(b.Nodes, motif.NodeSpec{Name: x.Name, Attrs: t})
			case *EdgeDecl:
				t, err := evalConstTuple(x.Tuple)
				if err != nil {
					return nil, err
				}
				b.Edges = append(b.Edges, motif.EdgeSpec{
					Name:  x.Name,
					From:  strings.Join(x.From, "."),
					To:    strings.Join(x.To, "."),
					Attrs: t,
				})
			case *GraphRef:
				b.Subs = append(b.Subs, motif.SubSpec{Motif: x.Name, As: x.As})
			case *UnifyDecl:
				if x.Where != nil {
					return nil, fmt.Errorf("ast: motif %s: unify where clauses unsupported in motifs", d.Name)
				}
				for i := 1; i < len(x.Names); i++ {
					b.Unifies = append(b.Unifies, motif.UnifySpec{
						A: strings.Join(x.Names[0], "."),
						B: strings.Join(x.Names[i], "."),
					})
				}
			case *ExportDecl:
				b.Exports = append(b.Exports, motif.ExportSpec{
					Ref: strings.Join(x.Ref, "."),
					As:  x.As,
				})
			}
		}
		def.Alts = append(def.Alts, b)
	}
	return def, nil
}

// ToTemplate lowers a template declaration into an executable algebra
// template. The referenced parameter names are whatever qualified names the
// body mentions; binding happens at instantiation time.
func (t *TemplateDecl) ToTemplate() (*algebra.Template, error) {
	if t.Ref != "" {
		return nil, fmt.Errorf("ast: template is a bare reference to %s", t.Ref)
	}
	out := &algebra.Template{Name: t.Name}
	if t.Tuple != nil {
		out.Tag = t.Tuple.Tag
		for _, a := range t.Tuple.Attrs {
			out.Attrs = append(out.Attrs, algebra.AttrTemplate{Name: a.Name, E: a.E})
		}
	}
	for _, m := range t.Members {
		switch x := m.(type) {
		case *NodeDecl:
			n := algebra.TNode{}
			if strings.Contains(x.Name, ".") {
				n.Ref = strings.Split(x.Name, ".")
			} else {
				n.Name = x.Name
			}
			if x.Tuple != nil {
				n.Tag = x.Tuple.Tag
				for _, a := range x.Tuple.Attrs {
					n.Attrs = append(n.Attrs, algebra.AttrTemplate{Name: a.Name, E: a.E})
				}
			}
			out.Members = append(out.Members, n)
		case *EdgeDecl:
			e := algebra.TEdge{Name: x.Name, From: x.From, To: x.To}
			if x.Tuple != nil {
				e.Tag = x.Tuple.Tag
				for _, a := range x.Tuple.Attrs {
					e.Attrs = append(e.Attrs, algebra.AttrTemplate{Name: a.Name, E: a.E})
				}
			}
			out.Members = append(out.Members, e)
		case *GraphRef:
			out.Members = append(out.Members, algebra.TGraph{Var: x.Name})
		case *UnifyDecl:
			if len(x.Names) < 2 {
				return nil, fmt.Errorf("ast: unify needs at least two names")
			}
			for i := 1; i < len(x.Names); i++ {
				out.Members = append(out.Members, algebra.TUnify{
					A:     x.Names[0],
					B:     x.Names[i],
					Where: x.Where,
				})
			}
		default:
			return nil, fmt.Errorf("ast: unsupported template member %T", m)
		}
	}
	return out, nil
}
