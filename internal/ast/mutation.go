// Mutation statements: the declarative update surface over the document
// store. The grammar mirrors BQL's minimal CREATE/DROP/INSERT/DELETE
// shape, reusing the existing literal grammar (tuples, node/edge member
// blocks) for attribute values and graph bodies:
//
//	create graph G [<tuple>] [{ node a <t>; edge e (a, b); }] in doc("D");
//	drop graph G in doc("D");
//	insert node N [<tuple>] into G in doc("D");
//	insert edge E (a, b) [<tuple>] into G in doc("D");
//	delete node N from G in doc("D");
//	delete edge E from G in doc("D");
//
// Parsing stays pure: a MutationStmt is data, lowered to store mutations
// by the exec layer. String renders a statement back to concrete syntax
// such that render∘parse is idempotent (the fuzz round-trip invariant).
package ast

import (
	"strconv"
	"strings"

	"gqldb/internal/graph"
)

// MutationKind discriminates the mutation statement forms.
type MutationKind uint8

// Mutation statement kinds.
const (
	MutCreateGraph MutationKind = iota
	MutDropGraph
	MutInsertNode
	MutInsertEdge
	MutDeleteNode
	MutDeleteEdge
)

// String returns the statement's leading keywords.
func (k MutationKind) String() string {
	switch k {
	case MutCreateGraph:
		return "create graph"
	case MutDropGraph:
		return "drop graph"
	case MutInsertNode:
		return "insert node"
	case MutInsertEdge:
		return "insert edge"
	case MutDeleteNode:
		return "delete node"
	case MutDeleteEdge:
		return "delete edge"
	}
	return "?"
}

// MutationStmt is one parsed mutation statement. Fields beyond Kind, Doc
// and Graph are populated per kind: Name is the node/edge being inserted
// or deleted, From/To are insert-edge endpoints, Tuple carries attribute
// literals, and Members is the create-graph literal body (simple node and
// edge declarations only — validated at parse time).
type MutationStmt struct {
	Kind MutationKind
	// Doc is the target document, the doc("...") argument.
	Doc string
	// Graph is the target graph name within the document.
	Graph string
	// Name is the node/edge name for insert/delete forms.
	Name string
	// From and To are the endpoint node names of an inserted edge.
	From, To string
	// Tuple holds attribute literals (create graph / insert node / insert
	// edge). Values must be literal expressions; enforced at lowering.
	Tuple *TupleDecl
	// Members is the optional create-graph literal body.
	Members []Member
}

func (*MutationStmt) isStmt() {}

// String renders the statement back to parseable concrete syntax.
func (m *MutationStmt) String() string {
	var b strings.Builder
	b.WriteString(m.Kind.String())
	switch m.Kind {
	case MutCreateGraph:
		b.WriteByte(' ')
		b.WriteString(m.Graph)
		if m.Tuple != nil {
			b.WriteByte(' ')
			b.WriteString(m.Tuple.String())
		}
		if len(m.Members) > 0 {
			b.WriteString(" {")
			for _, mem := range m.Members {
				b.WriteByte(' ')
				b.WriteString(literalMemberString(mem))
			}
			b.WriteString(" }")
		}
	case MutDropGraph:
		b.WriteByte(' ')
		b.WriteString(m.Graph)
	case MutInsertNode:
		b.WriteByte(' ')
		b.WriteString(m.Name)
		if m.Tuple != nil {
			b.WriteByte(' ')
			b.WriteString(m.Tuple.String())
		}
		b.WriteString(" into ")
		b.WriteString(m.Graph)
	case MutInsertEdge:
		b.WriteByte(' ')
		b.WriteString(m.Name)
		b.WriteString(" (")
		b.WriteString(m.From)
		b.WriteString(", ")
		b.WriteString(m.To)
		b.WriteByte(')')
		if m.Tuple != nil {
			b.WriteByte(' ')
			b.WriteString(m.Tuple.String())
		}
		b.WriteString(" into ")
		b.WriteString(m.Graph)
	case MutDeleteNode, MutDeleteEdge:
		b.WriteByte(' ')
		b.WriteString(m.Name)
		b.WriteString(" from ")
		b.WriteString(m.Graph)
	}
	b.WriteString(" in doc(")
	b.WriteString(strconv.Quote(m.Doc))
	b.WriteString(");")
	return b.String()
}

// String renders a tuple declaration: <tag name=value, ...>. Expression
// values render through expr.Expr.String, which quotes strings and
// parenthesizes operators, so the output reparses.
func (t *TupleDecl) String() string {
	var b strings.Builder
	b.WriteByte('<')
	b.WriteString(t.Tag)
	for i, a := range t.Attrs {
		if i > 0 {
			b.WriteString(", ")
		} else if t.Tag != "" {
			b.WriteByte(' ')
		}
		b.WriteString(a.Name)
		b.WriteByte('=')
		b.WriteString(a.E.String())
	}
	b.WriteByte('>')
	return b.String()
}

// literalMemberString renders one simple member of a create-graph literal
// body. The parser guarantees these are NodeDecl/EdgeDecl without where
// clauses or dotted names.
func literalMemberString(m Member) string {
	var b strings.Builder
	switch x := m.(type) {
	case *NodeDecl:
		b.WriteString("node")
		if x.Name != "" {
			b.WriteByte(' ')
			b.WriteString(x.Name)
		}
		if x.Tuple != nil {
			b.WriteByte(' ')
			b.WriteString(x.Tuple.String())
		}
	case *EdgeDecl:
		b.WriteString("edge")
		if x.Name != "" {
			b.WriteByte(' ')
			b.WriteString(x.Name)
		}
		b.WriteString(" (")
		b.WriteString(strings.Join(x.From, "."))
		b.WriteString(", ")
		b.WriteString(strings.Join(x.To, "."))
		b.WriteByte(')')
		if x.Tuple != nil {
			b.WriteByte(' ')
			b.WriteString(x.Tuple.String())
		}
	}
	b.WriteByte(';')
	return b.String()
}

// IsMutationProgram reports whether the program consists entirely of
// mutation statements (and is non-empty) — the routing test the exec and
// shell layers use to send a program down the write path.
func IsMutationProgram(p *Program) bool {
	if p == nil || len(p.Stmts) == 0 {
		return false
	}
	for _, s := range p.Stmts {
		if _, ok := s.(*MutationStmt); !ok {
			return false
		}
	}
	return true
}

// EvalTuple evaluates the statement's attribute tuple — literal values
// only, as everywhere data is constructed — into a graph tuple. Nil when
// the statement carries no tuple.
func (m *MutationStmt) EvalTuple() (*graph.Tuple, error) {
	return evalConstTuple(m.Tuple)
}

// BodyGraph lowers a create-graph member block (plus the statement's
// tuple, which becomes the graph's attributes) into a concrete graph
// named after the statement's target. Nil when the statement declared no
// members.
func (m *MutationStmt) BodyGraph() (*graph.Graph, error) {
	if len(m.Members) == 0 {
		return nil, nil
	}
	d := &GraphDecl{Name: m.Graph, Tuple: m.Tuple, Members: m.Members}
	return d.ToGraph()
}
