package exec

import (
	"context"
	"sort"
	"strconv"
	"strings"
	"time"

	"gqldb/internal/ast"
	"gqldb/internal/graph"
	"gqldb/internal/lexer"
	"gqldb/internal/match"
	"gqldb/internal/obs"
	"gqldb/internal/parser"
	"gqldb/internal/store"
)

// ParseError marks a RunQuery failure as a syntax error in the source
// program (as opposed to an evaluation error); frontends unwrap it to map
// the failure to a client-fault status.
type ParseError struct {
	Err error
}

func (e *ParseError) Error() string { return e.Err.Error() }

// Unwrap exposes the underlying parser error.
func (e *ParseError) Unwrap() error { return e.Err }

// RunQuery parses and executes a source program, reading and populating the
// engine's result cache when one is configured. This is the entry point for
// frontends that receive programs as text (the HTTP server, the shell): the
// source string is the cache identity, canonicalized through the lexer so
// formatting differences (whitespace, comments, string quoting) share one
// entry.
//
// The cache key is (canonical program, documents read, store version of the
// snapshot the program runs against) and the engine executes against
// exactly the keyed snapshot, so a hit returns precisely what re-evaluation
// would. Worker count is not part of the key — parallelism never changes a
// result. Cached graphs are cloned both into and out of the cache, so
// callers may mutate a result freely.
//
// Parse failures return a *ParseError; they are not counted as query
// executions.
func (e *Engine) RunQuery(ctx context.Context, src string) (*Result, error) {
	ctx, root, rooted := e.traceRoot(ctx)
	psp := root.StartChild("parse")
	prog, err := parser.Parse(src)
	psp.End()
	if err != nil {
		if rooted {
			root.End()
		}
		return nil, &ParseError{Err: err}
	}
	snap := e.snapshot()
	var key store.CacheKey
	if e.Cache != nil {
		key = store.CacheKey{
			Program: canonicalProgram(src),
			Docs:    strings.Join(docsOf(prog), "\x00"),
			Version: snap.Version(),
		}
		if v, ok := e.Cache.Get(key); ok {
			obs.Queries.Inc()
			start := time.Now()
			res := v.(*cachedResult).toResult()
			obs.QuerySeconds.Observe(time.Since(start))
			hsp := root.StartChild("cache-hit")
			hsp.Add("graphs", int64(len(res.Out)))
			hsp.End()
			if rooted {
				root.End()
			}
			res.Trace = root
			return res, nil
		}
	}
	res, err := e.runInstrumented(ctx, prog, snap)
	if rooted {
		root.End()
	}
	if err != nil {
		return nil, err
	}
	if e.Cache != nil {
		e.Cache.Put(key, newCachedResult(res))
	}
	res.Trace = root
	return res, nil
}

// cachedResult is the engine's cache entry: deep copies of the output
// collection and final graph variables. Stats and Trace are per-execution
// and deliberately not cached.
type cachedResult struct {
	out  graph.Collection
	vars map[string]*graph.Graph
}

// newCachedResult deep-copies a result into an entry. The copy happens at
// Put time, so callers mutating the returned Result never reach the cache.
func newCachedResult(res *Result) *cachedResult {
	return &cachedResult{out: cloneCollection(res.Out), vars: cloneVars(res.Vars)}
}

// toResult deep-copies the entry back out. A cache hit executed no
// operators, so Stats is a fresh empty record.
func (c *cachedResult) toResult() *Result {
	return &Result{Out: cloneCollection(c.out), Vars: cloneVars(c.vars), Stats: &match.Stats{}}
}

func cloneCollection(c graph.Collection) graph.Collection {
	if c == nil {
		return nil
	}
	out := make(graph.Collection, len(c))
	for i, g := range c {
		out[i] = g.Clone()
	}
	return out
}

func cloneVars(m map[string]*graph.Graph) map[string]*graph.Graph {
	if m == nil {
		return nil
	}
	out := make(map[string]*graph.Graph, len(m))
	for name, g := range m {
		out[name] = g.Clone()
	}
	return out
}

// canonicalProgram renders the source as its token stream: one space
// between tokens, string literals re-quoted, comments and layout gone. Two
// spellings of the same program therefore share a cache entry. The source
// is returned as-is when it does not tokenize (unreachable after a
// successful parse; kept for safety).
func canonicalProgram(src string) string {
	toks, err := lexer.Tokenize(src)
	if err != nil {
		return src
	}
	var b strings.Builder
	b.Grow(len(src))
	for i, t := range toks {
		if t.Kind == lexer.EOF {
			break
		}
		if i > 0 {
			b.WriteByte(' ')
		}
		if t.Kind == lexer.Str {
			b.WriteString(strconv.Quote(t.Text))
		} else {
			b.WriteString(t.Text)
		}
	}
	return b.String()
}

// docsOf returns the sorted, deduplicated document names the program's FLWR
// statements read — the data the cached result depends on.
func docsOf(prog *ast.Program) []string {
	seen := map[string]bool{}
	var out []string
	for _, s := range prog.Stmts {
		if f, ok := s.(*ast.FLWRStmt); ok && !seen[f.Doc] {
			seen[f.Doc] = true
			out = append(out, f.Doc)
		}
	}
	sort.Strings(out)
	return out
}
