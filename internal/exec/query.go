package exec

import (
	"context"
	"sort"
	"strconv"
	"strings"

	"gqldb/internal/ast"
	"gqldb/internal/graph"
	"gqldb/internal/lexer"
)

// ParseError marks a RunQuery failure as a syntax error in the source
// program (as opposed to an evaluation error); frontends unwrap it to map
// the failure to a client-fault status.
type ParseError struct {
	Err error
}

func (e *ParseError) Error() string { return e.Err.Error() }

// Unwrap exposes the underlying parser error.
func (e *ParseError) Unwrap() error { return e.Err }

// RunQuery parses and executes a source program, reading and populating the
// engine's result cache when one is configured. This is the entry point for
// frontends that receive programs as text (the HTTP server, the shell): the
// source string is the cache identity, canonicalized through the lexer so
// formatting differences (whitespace, comments, string quoting) share one
// entry.
//
// The cache key is (canonical program, documents read, store version of the
// snapshot the program runs against) and the engine executes against
// exactly the keyed snapshot, so a hit returns precisely what re-evaluation
// would. Worker count is not part of the key — parallelism never changes a
// result. Cached graphs are cloned both into and out of the cache, so
// callers may mutate a result freely.
//
// Parse failures return a *ParseError; they are not counted as query
// executions.
//
// RunQuery is a thin collect-sink wrapper over StreamQuery: the buffered
// result is exactly the streamed row sequence, so the two surfaces cannot
// drift.
func (e *Engine) RunQuery(ctx context.Context, src string) (*Result, error) {
	sink := &CollectSink{}
	sres, err := e.StreamQuery(ctx, src, sink, StreamOptions{Take: AllRows})
	if err != nil {
		return nil, err
	}
	return &Result{Out: sink.Graphs, Vars: sres.Vars, Stats: sres.Stats, Trace: sres.Trace}, nil
}

// cachedResult is the engine's cache entry: deep copies of the output
// collection and final graph variables. Stats and Trace are per-execution
// and deliberately not cached. Entries are filled from the cache-fill
// clones a complete un-truncated stream records, and replayed row-by-row
// (cloned out per row) on a hit — see StreamQuery.
type cachedResult struct {
	out  graph.Collection
	vars map[string]*graph.Graph
}

func cloneVars(m map[string]*graph.Graph) map[string]*graph.Graph {
	if m == nil {
		return nil
	}
	out := make(map[string]*graph.Graph, len(m))
	for name, g := range m {
		out[name] = g.Clone()
	}
	return out
}

// canonicalProgram renders the source as its token stream: one space
// between tokens, string literals re-quoted, comments and layout gone. Two
// spellings of the same program therefore share a cache entry. The source
// is returned as-is when it does not tokenize (unreachable after a
// successful parse; kept for safety).
func canonicalProgram(src string) string {
	toks, err := lexer.Tokenize(src)
	if err != nil {
		return src
	}
	var b strings.Builder
	b.Grow(len(src))
	for i, t := range toks {
		if t.Kind == lexer.EOF {
			break
		}
		if i > 0 {
			b.WriteByte(' ')
		}
		if t.Kind == lexer.Str {
			b.WriteString(strconv.Quote(t.Text))
		} else {
			b.WriteString(t.Text)
		}
	}
	return b.String()
}

// docsOf returns the sorted, deduplicated document names the program's FLWR
// statements read — the data the cached result depends on.
func docsOf(prog *ast.Program) []string {
	seen := map[string]bool{}
	var out []string
	for _, s := range prog.Stmts {
		if f, ok := s.(*ast.FLWRStmt); ok && !seen[f.Doc] {
			seen[f.Doc] = true
			out = append(out, f.Doc)
		}
	}
	sort.Strings(out)
	return out
}
