// Streaming result pipeline. The graphs-at-a-time algebra is naturally
// pipelined — every operator consumes and emits whole graphs one at a
// time — and this file exposes that incrementality: StreamQuery pushes
// result rows into a caller-supplied ResultSink as the return-clause
// fan-out produces them, in exactly the order the buffered path would
// collect. RunQuery is a thin collect-sink wrapper over it, so the two
// paths cannot drift.
//
// Backpressure is blocking: Emit runs on the coordinating goroutine
// between parallel chunks, so a slow sink pauses selection and fan-out
// instead of buffering unboundedly. A sink error aborts the query; the
// sentinel ErrStopStream ends it early without error (the stream is
// marked truncated). Skip/take are honored inside the pipeline — skipped
// rows are never instantiated, and a reached take cancels the remaining
// fan-out.
package exec

import (
	"context"
	"errors"
	"runtime"
	"time"

	"gqldb/internal/algebra"
	"gqldb/internal/ast"
	"gqldb/internal/graph"
	"gqldb/internal/match"
	"gqldb/internal/obs"
	"gqldb/internal/parser"
	"gqldb/internal/pattern"
	"gqldb/internal/pool"
	"gqldb/internal/store"
)

// ResultSink receives result graphs as the pipeline produces them. Emit is
// called once per result row, in canonical output order, from the query's
// coordinating goroutine — implementations need no locking against the
// engine. Emit may block (backpressure pauses the producing fan-out);
// returning an error aborts the query with that error, and returning
// ErrStopStream ends the stream early without error. The sink owns each
// graph it receives and may mutate it freely.
type ResultSink interface {
	Emit(g *graph.Graph) error
}

// ErrStopStream is returned by a ResultSink to end the stream early: the
// query stops producing rows and StreamQuery returns a truncated result
// with a nil error.
var ErrStopStream = errors.New("exec: stop streaming")

// errStreamDone signals internally that the stream is complete (take
// reached or the sink stopped it); statement execution unwinds without
// treating it as a failure.
var errStreamDone = errors.New("exec: stream done")

// AllRows disables the take limit in StreamOptions.
const AllRows = -1

// StreamOptions are the per-stream pagination knobs.
type StreamOptions struct {
	// Skip drops the first Skip result rows without materializing them
	// (skipped matches are counted but never instantiated). Negative is
	// treated as zero.
	Skip int
	// Take caps the rows emitted after skipping: AllRows (or any negative
	// value) streams everything, 0 emits nothing. Reaching the cap cancels
	// the remaining work promptly.
	Take int
	// Snapshot, when non-nil, pins the store view the program executes
	// against — the batch endpoint runs several programs on one snapshot
	// for cross-query consistency. Nil takes a fresh snapshot.
	Snapshot *store.Snapshot
}

// StreamResult summarizes one streamed query.
type StreamResult struct {
	// Rows is how many rows were emitted to the sink.
	Rows int
	// Skipped is how many leading rows the Skip option dropped.
	Skipped int
	// Truncated reports that the stream ended before the program's full
	// result: the take limit was reached or the sink returned
	// ErrStopStream. It does not imply more rows existed — a take of
	// exactly the result size still runs to the limit.
	Truncated bool
	// Vars holds the final graph variables. A truncated stream carries no
	// vars: the program did not run to completion, so accumulators would
	// be partial.
	Vars map[string]*graph.Graph
	// Stats carries the per-operator records of the execution (empty on a
	// cache hit).
	Stats *match.Stats
	// Trace is the span tree when tracing was enabled, else nil.
	Trace *obs.Span
	// CacheHit reports that the rows were replayed from the result cache.
	CacheHit bool
}

// CollectSink buffers every emitted row — the adapter that turns the
// streaming pipeline back into the buffered Result shape.
type CollectSink struct {
	Graphs graph.Collection
}

// Emit implements ResultSink by appending.
func (s *CollectSink) Emit(g *graph.Graph) error {
	s.Graphs = append(s.Graphs, g)
	return nil
}

// streamState is the per-stream pagination and cache-fill state threaded
// through the environment. Only the coordinating goroutine touches it.
type streamState struct {
	sink      ResultSink
	skip      int
	take      int // < 0 unlimited, 0 emits nothing
	rows      int
	skipped   int
	truncated bool
	// filling buffers a clone of every emitted row for a cache fill. It is
	// only enabled for full streams (skip 0, take unlimited); the fill is
	// installed only when the stream completes un-truncated.
	filling bool
	fill    graph.Collection
}

// done reports that the take limit has been reached.
func (st *streamState) done() bool {
	return st.take >= 0 && st.rows >= st.take
}

// emit pushes one row to the sink, recording the cache-fill clone first
// (the sink owns — and may mutate — what it receives).
func (st *streamState) emit(g *graph.Graph) error {
	if st.filling {
		st.fill = append(st.fill, g.Clone())
	}
	if err := st.sink.Emit(g); err != nil {
		if errors.Is(err, ErrStopStream) {
			st.truncated = true
			return errStreamDone
		}
		return err
	}
	st.rows++
	obs.StreamRows.Inc()
	if st.done() {
		st.truncated = true
		return errStreamDone
	}
	return nil
}

// StreamQuery parses and executes a source program, pushing result rows
// into sink as they are produced. Rows arrive in exactly the order
// RunQuery would collect them; the buffered path is a CollectSink wrapper
// over this one.
//
// The result cache is both read and written: a hit replays the cached
// collection through the sink (cloned per row, so replays never alias),
// and a miss fills the cache only when the stream completes un-truncated
// with no skip/take — a partial stream must never masquerade as the full
// result.
//
// Parse failures return a *ParseError, as on RunQuery.
func (e *Engine) StreamQuery(ctx context.Context, src string, sink ResultSink, opts StreamOptions) (*StreamResult, error) {
	if sink == nil {
		return nil, errors.New("exec: StreamQuery requires a sink")
	}
	ctx, root, rooted := e.traceRoot(ctx)
	finish := func() {
		if rooted {
			root.End()
		}
	}
	psp := root.StartChild("parse")
	prog, err := parser.Parse(src)
	psp.End()
	if err != nil {
		finish()
		return nil, &ParseError{Err: err}
	}
	snap := opts.Snapshot
	if snap == nil {
		snap = e.snapshot()
	}
	st := &streamState{sink: sink, skip: opts.Skip, take: opts.Take}
	if st.skip < 0 {
		st.skip = 0
	}
	var key store.CacheKey
	if e.Cache != nil {
		key = store.KeyFor(canonicalProgram(src), snap, docsOf(prog))
		if v, ok := e.Cache.Get(key); ok {
			res, err := replayCached(root, v.(*cachedResult), st)
			finish()
			return res, err
		}
		st.filling = st.skip == 0 && st.take < 0
	}
	res, err := e.runInstrumented(ctx, prog, snap, st)
	finish()
	if err != nil {
		return nil, err
	}
	if st.truncated {
		obs.StreamTruncations.Inc()
	} else if st.filling {
		e.Cache.Put(key, &cachedResult{out: st.fill, vars: cloneVars(res.Vars)})
	}
	out := &StreamResult{Rows: st.rows, Skipped: st.skipped, Truncated: st.truncated, Stats: res.Stats, Trace: root}
	if !st.truncated {
		out.Vars = res.Vars
	}
	return out, nil
}

// replayCached streams a cache entry through the sink, honoring skip/take.
// Each row is cloned out so the entry stays pristine for future replays.
func replayCached(root *obs.Span, entry *cachedResult, st *streamState) (*StreamResult, error) {
	obs.Queries.Inc()
	start := time.Now()
	hsp := root.StartChild("cache-hit")
	var emitErr error
	for _, g := range entry.out {
		if st.done() {
			st.truncated = true
			break
		}
		if st.skipped < st.skip {
			st.skipped++
			continue
		}
		if emitErr = st.emit(g.Clone()); emitErr != nil {
			break
		}
	}
	hsp.Add("graphs", int64(st.rows))
	hsp.End()
	obs.QuerySeconds.Observe(time.Since(start))
	if emitErr != nil && !errors.Is(emitErr, errStreamDone) {
		return nil, emitErr
	}
	if st.truncated {
		obs.StreamTruncations.Inc()
	}
	res := &StreamResult{Rows: st.rows, Skipped: st.skipped, Truncated: st.truncated, Stats: &match.Stats{}, Trace: root, CacheHit: true}
	if !st.truncated {
		res.Vars = cloneVars(entry.vars)
	}
	return res, nil
}

// emitChunk sizes the batch of matches a rowEmitter instantiates per
// pool.Run: serial evaluation emits row-by-row (true pipelining); parallel
// evaluation batches a few rows per worker so the pool fan-out amortizes.
func emitChunk(workers int) int {
	if workers == 0 || workers == 1 {
		return 1
	}
	w := workers
	if w < 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if c := 4 * w; c > 16 {
		return c
	}
	return 16
}

// rowEmitter is the streaming return clause: matches accumulate into
// fixed-size chunks, each chunk is instantiated on the worker pool into
// index-partitioned slots, and the slots are emitted in order — the same
// sequence returnFanout appends, but with bounded memory and the sink's
// backpressure between chunks. Skip is applied before instantiation
// (skipped rows are never materialized) and a reached take stops the
// selection upstream via errStreamDone.
type rowEmitter struct {
	env     *environment
	ctx     context.Context
	p       *pattern.Pattern
	tmpl    *ast.TemplateDecl
	workers int
	chunk   int
	items   int64
	began   bool
	start   time.Time
	sp      *obs.Span
	sctx    context.Context
	pending algebra.Matched
	slots   graph.Collection
}

func newRowEmitter(env *environment, ctx context.Context, p *pattern.Pattern, tmpl *ast.TemplateDecl, workers int) *rowEmitter {
	return &rowEmitter{env: env, ctx: ctx, p: p, tmpl: tmpl, workers: workers, chunk: emitChunk(workers)}
}

// begin opens the operator span lazily, on the first chunk (or at close
// for an empty selection), so the span brackets actual fan-out work.
func (em *rowEmitter) begin() {
	if em.began {
		return
	}
	em.began = true
	em.sctx, em.sp = obs.StartSpan(em.ctx, "return-fanout")
	em.start = time.Now()
}

// group receives one selection group (all bindings of one document graph)
// and feeds the chunk buffer. It is called from the selection's
// coordinating goroutine, never from pool workers.
func (em *rowEmitter) group(ms algebra.Matched) error {
	st := em.env.stream
	for _, m := range ms {
		if st.done() {
			st.truncated = true
			return errStreamDone
		}
		em.items++
		if st.skipped < st.skip {
			st.skipped++
			continue
		}
		em.pending = append(em.pending, m)
		// Flush on a full chunk, or as soon as the buffered rows satisfy the
		// take limit — matches past the limit are never instantiated.
		if len(em.pending) >= em.chunk || (st.take >= 0 && st.rows+len(em.pending) >= st.take) {
			if err := em.flush(); err != nil {
				return err
			}
		}
	}
	return nil
}

// flush instantiates the pending chunk on the worker pool and emits the
// rows in order.
func (em *rowEmitter) flush() error {
	if len(em.pending) == 0 {
		return nil
	}
	em.begin()
	n := len(em.pending)
	if cap(em.slots) < n {
		em.slots = make(graph.Collection, n)
	}
	slots := em.slots[:n]
	for i := range slots {
		slots[i] = nil
	}
	err := pool.Run(em.sctx, n, pool.Workers(em.workers, n), func(i int) error {
		g, err := em.env.instantiate(em.tmpl, map[string]algebra.Operand{
			em.p.Name: algebra.MatchedOperand(em.pending[i]),
		})
		if err != nil {
			return err
		}
		slots[i] = g
		return nil
	})
	if err != nil {
		return err
	}
	em.pending = em.pending[:0]
	for _, g := range slots {
		if err := em.env.stream.emit(g); err != nil {
			return err
		}
	}
	return nil
}

// close flushes the remainder and finalizes the operator span and stats.
// perr is the selection's error (nil on success); the first error wins.
func (em *rowEmitter) close(perr error) error {
	if perr == nil {
		perr = em.flush()
	}
	em.begin()
	resolved := pool.Workers(em.workers, em.chunk)
	em.sp.Add("items", em.items)
	em.sp.Add("workers", int64(resolved))
	em.env.stats.RecordOp("return-fanout", int(em.items), resolved, time.Since(em.start))
	em.sp.End()
	return perr
}

// streamPattern runs one pattern's select-and-return pipeline: the
// selection pushes match groups into the row emitter instead of collecting
// them, so rows reach the sink while later document graphs are still being
// matched.
func (env *environment) streamPattern(ctx context.Context, fsp *obs.Span, d *store.Doc, p *pattern.Pattern, f *ast.FLWRStmt, opts match.Options, workers int) error {
	em := newRowEmitter(env, ctx, p, f.Return, workers)
	return em.close(env.selectDocStream(ctx, fsp, d, p, f.Doc, opts, workers, em.group))
}

// selectDocStream is selectDoc with a push consumer: the same access-path
// choice (legacy collection index, sharded coordinator, store index,
// direct scan), but match groups flow to emit in canonical order instead
// of accumulating.
func (env *environment) selectDocStream(ctx context.Context, fsp *obs.Span, d *store.Doc, p *pattern.Pattern, docName string, opts match.Options, workers int, emit func(algebra.Matched) error) error {
	engine := env.engine
	cix, legacy := engine.CollIndex[docName]
	if !legacy {
		cix = d.Index()
	}
	// Same selector routing as selectDoc: a configured Selector (e.g. the
	// remote shard client) takes even single-shard documents.
	if (d.Sharded() || engine.Selector != nil) && !legacy {
		co := &store.Coordinator{Selector: engine.Selector}
		return co.SelectStream(ctx, d, p, opts, engine.IxFor, workers, env.stats, emit)
	}
	target, err := env.filterCandidates(fsp, d.Collection(), cix, p)
	if err != nil {
		return err
	}
	return env.streamSelect(ctx, p, target, opts, workers, emit)
}

// selectionChunk sizes the candidate batch one streaming selection round
// matches before emission: a few graphs per worker, floored so serial
// streams still amortize the span bookkeeping.
func selectionChunk(resolved int) int {
	if c := 4 * resolved; c > 64 {
		return c
	}
	return 64
}

// streamSelect evaluates σ_P over an unsharded collection in bounded
// chunks, pushing each graph's match group to emit in collection order.
// Spans, counters and OpStats match algebra.SelectionContext exactly; the
// only difference is that groups leave as they complete instead of
// accumulating, so an early stop (take reached, sink error) abandons the
// unmatched tail.
func (env *environment) streamSelect(ctx context.Context, p *pattern.Pattern, c graph.Collection, opts match.Options, workers int, emit func(algebra.Matched) error) error {
	if err := p.Compile(); err != nil {
		return err
	}
	resolved := pool.Workers(workers, len(c))
	sctx, sp := obs.StartSpan(ctx, "selection")
	if sp != nil {
		sp.Add("items", int64(len(c)))
		sp.Add("workers", int64(resolved))
	}
	start := time.Now()
	ixFor := env.engine.IxFor
	chunk := selectionChunk(resolved)
	if chunk > len(c) {
		chunk = len(c)
	}
	slots := make([]algebra.Matched, chunk)
	matches := 0
	fail := func(err error) error {
		sp.End()
		return err
	}
	for lo := 0; lo < len(c); lo += chunk {
		hi := lo + chunk
		if hi > len(c) {
			hi = len(c)
		}
		n := hi - lo
		for i := 0; i < n; i++ {
			slots[i] = nil
		}
		err := pool.Run(sctx, n, pool.Workers(workers, n), func(i int) error {
			g := c[lo+i]
			var ix *match.Index
			if ixFor != nil {
				ix = ixFor(g)
			}
			maps, mst, err := match.FindContext(sctx, p, g, ix, opts)
			if err != nil {
				return err
			}
			if sp != nil {
				sp.Add("cand_baseline", sumCounts(mst.CandBaseline))
				sp.Add("cand_local", sumCounts(mst.CandLocal))
				sp.Add("cand_refined", sumCounts(mst.CandRefined))
				sp.Add("search_steps", mst.SearchSteps)
				sp.Add("matches", int64(len(maps)))
				if mst.PlanCacheHit {
					sp.Add("plan_cache_hits", 1)
				} else if opts.Plans != nil {
					sp.Add("plan_cache_misses", 1)
				}
			}
			if len(maps) > 0 {
				// One batch allocation per graph instead of one per match, as
				// in algebra.SelectionContext.
				mgs := make([]algebra.MatchedGraph, len(maps))
				for j, m := range maps {
					mgs[j] = algebra.MatchedGraph{P: p, G: g, M: m}
					slots[i] = append(slots[i], &mgs[j])
				}
			}
			return nil
		})
		if err != nil {
			return fail(err)
		}
		for i := 0; i < n; i++ {
			if len(slots[i]) == 0 {
				continue
			}
			matches += len(slots[i])
			if err := emit(slots[i]); err != nil {
				return fail(err)
			}
		}
	}
	wall := time.Since(start)
	env.stats.RecordOp("selection", len(c), resolved, wall)
	obs.SelectionSeconds.Observe(wall)
	obs.Matches.Add(int64(matches))
	sp.SetAttr("pattern", p.Name)
	sp.End()
	return nil
}

func sumCounts(xs []int) int64 {
	var s int64
	for _, x := range xs {
		s += int64(x)
	}
	return s
}
