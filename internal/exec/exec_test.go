package exec

import (
	"testing"
	"time"

	"gqldb/internal/gindex"
	"gqldb/internal/graph"
	"gqldb/internal/parser"
)

func run(t *testing.T, store Store, src string) *Result {
	t.Helper()
	prog, err := parser.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	res, err := New(store).Run(prog)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	return res
}

// dblp is the collection of Figure 4.13.
func dblp() graph.Collection {
	g1 := graph.New("G1")
	g1.Attrs = graph.TupleOf("inproceedings", "booktitle", "SIGMOD")
	g1.AddNode("v1", graph.TupleOf("author", "name", "A"))
	g1.AddNode("v2", graph.TupleOf("author", "name", "B"))
	g2 := graph.New("G2")
	g2.Attrs = graph.TupleOf("inproceedings", "booktitle", "SIGMOD")
	g2.AddNode("v1", graph.TupleOf("author", "name", "C"))
	g2.AddNode("v2", graph.TupleOf("author", "name", "D"))
	g2.AddNode("v3", graph.TupleOf("author", "name", "A"))
	return graph.NewCollection(g1, g2)
}

// TestCoauthorshipQueryFig412 runs the full Figure 4.12 program through
// parser and engine and checks the Figure 4.13 result.
func TestCoauthorshipQueryFig412(t *testing.T) {
	src := `
	graph P {
		node v1 <author>;
		node v2 <author>;
	} where P.booktitle="SIGMOD";
	C := graph {};
	for P exhaustive in doc("DBLP") let C := graph {
		graph C;
		node P.v1, P.v2;
		edge e1 (P.v1, P.v2);
		unify P.v1, C.v1 where P.v1.name=C.v1.name;
		unify P.v2, C.v2 where P.v2.name=C.v2.name;
	};`
	res := run(t, Store{"DBLP": dblp()}, src)
	c, ok := res.Vars["C"]
	if !ok {
		t.Fatal("variable C not set")
	}
	if c.NumNodes() != 4 {
		t.Fatalf("co-authors = %d, want 4\n%s", c.NumNodes(), c)
	}
	if c.NumEdges() != 4 {
		t.Fatalf("co-author edges = %d, want 4\n%s", c.NumEdges(), c)
	}
	// Edge set by author names: A-B, C-D, A-C, A-D.
	names := map[graph.NodeID]string{}
	for _, n := range c.Nodes() {
		names[n.ID] = n.Attrs.GetOr("name").AsString()
	}
	want := map[string]bool{"A-B": true, "C-D": true, "A-C": true, "A-D": true}
	for _, e := range c.Edges() {
		a, b := names[e.From], names[e.To]
		if a > b {
			a, b = b, a
		}
		if !want[a+"-"+b] {
			t.Errorf("unexpected edge %s-%s", a, b)
		}
		delete(want, a+"-"+b)
	}
	if len(want) > 0 {
		t.Errorf("missing edges %v", want)
	}
}

// TestBooktitleFilter: the graph-level predicate excludes non-SIGMOD papers.
func TestBooktitleFilter(t *testing.T) {
	coll := dblp()
	g3 := graph.New("G3")
	g3.Attrs = graph.TupleOf("inproceedings", "booktitle", "VLDB")
	g3.AddNode("v1", graph.TupleOf("author", "name", "X"))
	g3.AddNode("v2", graph.TupleOf("author", "name", "Y"))
	coll = append(coll, g3)
	src := `
	graph P { node v1 <author>; node v2 <author>; } where P.booktitle="SIGMOD";
	C := graph {};
	for P exhaustive in doc("DBLP") let C := graph {
		graph C;
		node P.v1, P.v2;
		edge e1 (P.v1, P.v2);
		unify P.v1, C.v1 where P.v1.name=C.v1.name;
		unify P.v2, C.v2 where P.v2.name=C.v2.name;
	};`
	res := run(t, Store{"DBLP": coll}, src)
	c := res.Vars["C"]
	for _, n := range c.Nodes() {
		if nm := n.Attrs.GetOr("name").AsString(); nm == "X" || nm == "Y" {
			t.Errorf("VLDB author %s leaked into result", nm)
		}
	}
}

// TestReturnClause: a return-based FLWR produces one output graph per match.
func TestReturnClause(t *testing.T) {
	src := `
	for graph Q { node v1 <author>; } exhaustive in doc("DBLP")
	return graph R {
		node u <label=Q.v1.name>;
	};`
	res := run(t, Store{"DBLP": dblp()}, src)
	if len(res.Out) != 5 { // 2 + 3 author nodes
		t.Fatalf("out = %d graphs, want 5", len(res.Out))
	}
	labels := map[string]int{}
	for _, g := range res.Out {
		labels[g.Node(0).Attrs.GetOr("label").AsString()]++
	}
	if labels["A"] != 2 || labels["B"] != 1 || labels["C"] != 1 || labels["D"] != 1 {
		t.Errorf("labels = %v", labels)
	}
}

// TestNonExhaustive: without 'exhaustive', one match per graph.
func TestNonExhaustive(t *testing.T) {
	src := `
	for graph Q { node v1 <author>; } in doc("DBLP")
	return graph R { node u <label=Q.v1.name>; };`
	res := run(t, Store{"DBLP": dblp()}, src)
	if len(res.Out) != 2 { // one per paper
		t.Fatalf("out = %d graphs, want 2", len(res.Out))
	}
}

// TestFLWRWhere: the for-level where clause filters matches.
func TestFLWRWhere(t *testing.T) {
	src := `
	for graph Q { node v1 <author>; } exhaustive in doc("DBLP")
	where Q.v1.name = "A"
	return graph R { node u <label=Q.v1.name>; };`
	res := run(t, Store{"DBLP": dblp()}, src)
	if len(res.Out) != 2 { // author A appears in both papers
		t.Fatalf("out = %d, want 2", len(res.Out))
	}
}

// TestRecursivePatternQuery: a recursive Path pattern matches label chains.
func TestRecursivePatternQuery(t *testing.T) {
	g := graph.New("G")
	var ids []graph.NodeID
	for i := 0; i < 4; i++ {
		ids = append(ids, g.AddNode("", graph.TupleOf("", "kind", "n")))
	}
	g.AddEdge("", ids[0], ids[1], nil)
	g.AddEdge("", ids[1], ids[2], nil)
	g.AddEdge("", ids[2], ids[3], nil)
	src := `
	graph Path {
		graph Path;
		node v1;
		edge e1 (v1, Path.v1);
		export Path.v2 as v2;
	} | {
		node v1, v2;
		edge e1 (v1, v2);
	};
	for Path exhaustive in doc("G")
	return graph R { node u; };`
	prog, err := parser.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	eng := New(Store{"G": graph.NewCollection(g)})
	eng.DeriveDepth = 3
	res, err := eng.Run(prog)
	if err != nil {
		t.Fatal(err)
	}
	// Path of 2 nodes: 6 embeddings (3 edges × 2 directions); 3 nodes: 4;
	// 4 nodes: 2. Total 12 output graphs.
	if len(res.Out) != 12 {
		t.Fatalf("out = %d, want 12", len(res.Out))
	}
}

func TestAssignAndReference(t *testing.T) {
	src := `
	X := graph { node a <label="A">; };
	Y := X;`
	res := run(t, Store{}, src)
	if res.Vars["Y"].NumNodes() != 1 {
		t.Error("Y should copy X")
	}
}

func TestErrors(t *testing.T) {
	cases := []string{
		`for P in doc("DBLP") return graph {};`,                   // undeclared pattern
		`for graph Q { node v; } in doc("nope") return graph {};`, // unknown doc
		`Y := X;`, // undefined variable
	}
	for _, src := range cases {
		prog, err := parser.Parse(src)
		if err != nil {
			t.Fatalf("parse %q: %v", src, err)
		}
		if _, err := New(Store{"DBLP": dblp()}).Run(prog); err == nil {
			t.Errorf("Run(%q): want error", src)
		}
	}
}

// TestTemplateGraphAttrs: a return template can compute the result graph's
// own tuple from the binding.
func TestTemplateGraphAttrs(t *testing.T) {
	src := `
	for graph Q { node v1 <author>; } exhaustive in doc("DBLP")
	return graph R <derived who=Q.v1.name> {
		node u;
	};`
	res := run(t, Store{"DBLP": dblp()}, src)
	if len(res.Out) != 5 {
		t.Fatalf("out = %d", len(res.Out))
	}
	for _, g := range res.Out {
		if g.Attrs == nil || g.Attrs.Tag != "derived" {
			t.Fatalf("graph tuple missing: %v", g.Attrs)
		}
		if g.Attrs.GetOr("who").AsString() == "" {
			t.Error("computed graph attribute missing")
		}
	}
}

// TestLetWithoutPriorAssign: a let-clause may target a fresh variable; the
// template must not reference it then.
func TestLetWithoutPriorAssign(t *testing.T) {
	src := `
	for graph Q { node v1 <author>; } in doc("DBLP")
	let Z := graph { node u <label=Q.v1.name>; };`
	res := run(t, Store{"DBLP": dblp()}, src)
	z := res.Vars["Z"]
	if z == nil || z.NumNodes() != 1 {
		t.Fatalf("Z = %v", z)
	}
}

// TestCollectionIndexFiltering: a doc-level path index must not change
// query results while skipping non-candidate graphs.
func TestCollectionIndexFiltering(t *testing.T) {
	coll := dblp()
	src := `
	for graph Q { node v1 <author>; node v2 <author>; } exhaustive in doc("DBLP")
	return graph R { node u <a=Q.v1.name, b=Q.v2.name>; };`
	prog, err := parser.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	plain, err := New(Store{"DBLP": coll}).Run(prog)
	if err != nil {
		t.Fatal(err)
	}
	eng := New(Store{"DBLP": coll})
	eng.CollIndex = map[string]*gindex.Index{"DBLP": gindex.Build(coll, 2)}
	indexed, err := eng.Run(prog)
	if err != nil {
		t.Fatal(err)
	}
	if len(indexed.Out) != len(plain.Out) {
		t.Fatalf("index changed results: %d vs %d", len(indexed.Out), len(plain.Out))
	}
}

func TestEngineRequestScopedOptions(t *testing.T) {
	base := New(Store{})
	base.Workers = 2
	base.SlowQuery = time.Second

	// Zero-value options inherit everything.
	cp := base.Request(RequestOptions{})
	if cp == base {
		t.Fatal("Request must return a copy, not the shared engine")
	}
	if cp.Workers != 2 || cp.SlowQuery != time.Second || cp.Trace {
		t.Fatalf("inherited copy = workers %d slow %v trace %v", cp.Workers, cp.SlowQuery, cp.Trace)
	}

	// Overrides land on the copy and never touch the shared engine.
	cp = base.Request(RequestOptions{Workers: -1, Trace: true, SlowQuery: time.Millisecond})
	if cp.Workers != -1 || !cp.Trace || cp.SlowQuery != time.Millisecond {
		t.Fatalf("override copy = workers %d slow %v trace %v", cp.Workers, cp.SlowQuery, cp.Trace)
	}
	if base.Workers != 2 || base.Trace || base.SlowQuery != time.Second {
		t.Fatalf("shared engine mutated: workers %d slow %v trace %v", base.Workers, base.SlowQuery, base.Trace)
	}
}
