// Mutation execution: the engine-level surface that turns a parsed
// mutation program into one transactional store.Apply batch. Queries and
// mutations stay on separate entry points — RunQuery rejects mutation
// statements, Mutate rejects query statements — so a program is always
// wholly one or the other and a batch's all-or-nothing semantics are
// never entangled with partial query output.

package exec

import (
	"context"
	"errors"
	"fmt"

	"gqldb/internal/ast"
	"gqldb/internal/parser"
	"gqldb/internal/store"
)

// MutationSummary is what a mutation program returns: the store version
// the batch committed as plus per-kind application counts. It is the
// store's ApplyResult verbatim (json tags included), re-exported so
// frontends need not import internal/store.
type MutationSummary = store.ApplyResult

// Mutate parses and applies a mutation program — a program consisting
// solely of mutation statements — as one all-or-nothing batch against the
// engine's store. Parse failures return a *ParseError; a program mixing
// query and mutation statements is rejected; a store without mutation
// support (anything but a DocStore-backed store) reports itself
// read-only.
func (e *Engine) Mutate(ctx context.Context, src string) (*MutationSummary, error) {
	prog, err := parser.Parse(src)
	if err != nil {
		return nil, &ParseError{Err: err}
	}
	if !ast.IsMutationProgram(prog) {
		return nil, errors.New("exec: mutation programs must consist solely of mutation statements (and at least one)")
	}
	muts, err := LowerMutations(prog)
	if err != nil {
		return nil, err
	}
	m, ok := e.Docs.(store.Mutator)
	if !ok {
		return nil, errors.New("exec: store is read-only (no mutation support)")
	}
	return m.ApplyBatch(ctx, muts)
}

// LowerMutations lowers every statement of a mutation program into store
// mutations, evaluating attribute tuples and create-graph bodies. The
// program must already be mutation-only (ast.IsMutationProgram).
func LowerMutations(prog *ast.Program) ([]store.Mutation, error) {
	muts := make([]store.Mutation, 0, len(prog.Stmts))
	for i, s := range prog.Stmts {
		ms, ok := s.(*ast.MutationStmt)
		if !ok {
			return nil, fmt.Errorf("exec: statement %d: %T is not a mutation statement", i, s)
		}
		m, err := lowerMutation(ms)
		if err != nil {
			return nil, fmt.Errorf("exec: statement %d: %w", i, err)
		}
		muts = append(muts, m)
	}
	return muts, nil
}

func lowerMutation(ms *ast.MutationStmt) (store.Mutation, error) {
	m := store.Mutation{
		Doc:   ms.Doc,
		Graph: ms.Graph,
		Name:  ms.Name,
		From:  ms.From,
		To:    ms.To,
	}
	switch ms.Kind {
	case ast.MutCreateGraph:
		m.Op = store.OpCreateGraph
	case ast.MutDropGraph:
		m.Op = store.OpDropGraph
	case ast.MutInsertNode:
		m.Op = store.OpInsertNode
	case ast.MutInsertEdge:
		m.Op = store.OpInsertEdge
	case ast.MutDeleteNode:
		m.Op = store.OpDeleteNode
	case ast.MutDeleteEdge:
		m.Op = store.OpDeleteEdge
	default:
		return m, fmt.Errorf("exec: unknown mutation kind %d", ms.Kind)
	}
	if ms.Kind == ast.MutCreateGraph && len(ms.Members) > 0 {
		body, err := ms.BodyGraph()
		if err != nil {
			return m, err
		}
		m.Body = body
		return m, nil
	}
	attrs, err := ms.EvalTuple()
	if err != nil {
		return m, err
	}
	m.Attrs = attrs
	return m, nil
}
