package exec

import (
	"context"
	"errors"
	"strings"
	"testing"

	"gqldb/internal/graph"
	"gqldb/internal/store"
)

// mutateEngine builds an engine over a DocStore holding one document with
// one A-labeled node.
func mutateEngine() (*Engine, *store.DocStore) {
	ds := store.New(store.Options{Shards: 2})
	g := graph.New("G")
	g.AddNode("a", graph.TupleOf("", "label", "A"))
	ds.RegisterDoc("db", graph.Collection{g})
	return NewOver(ds), ds
}

// TestMutateLowersAndApplies drives the full Engine.Mutate path: parse,
// lowering (tuples evaluated, create-graph bodies built) and one
// transactional batch whose effects are visible to a following query.
func TestMutateLowersAndApplies(t *testing.T) {
	e, ds := mutateEngine()
	ctx := context.Background()
	sum, err := e.Mutate(ctx, `
create graph H <kind="scratch"> { node x <label="A">; node y <label="B">; edge xy (x, y); } in doc("db");
insert node b <label="B", weight=3> into G in doc("db");
insert edge ab (a, b) into G in doc("db");
`)
	if err != nil {
		t.Fatal(err)
	}
	if sum.Mutations != 3 || sum.GraphsCreated != 1 || sum.NodesAdded != 3 || sum.EdgesAdded != 2 {
		t.Fatalf("summary %+v, want 3 mutations, 1 graph, 3 nodes, 2 edges", sum)
	}
	if sum.Version != ds.Version() {
		t.Fatalf("summary version %d, store version %d", sum.Version, ds.Version())
	}

	d, _ := ds.Snapshot().Doc("db")
	var h *graph.Graph
	for _, g := range d.Collection() {
		if g.Name == "H" {
			h = g
		}
	}
	if h == nil {
		t.Fatal("created graph H not in document")
	}
	if got := h.Attrs.GetOr("kind").AsString(); got != "scratch" {
		t.Fatalf("H attrs = %q, want scratch", got)
	}
	if len(h.Nodes()) != 2 || len(h.Edges()) != 1 {
		t.Fatalf("H has %d nodes %d edges, want 2/1", len(h.Nodes()), len(h.Edges()))
	}

	res, err := e.RunQuery(ctx, `
graph P { node v1 where label="A"; node v2 where label="B"; edge (v1, v2); };
for P exhaustive in doc("db")
return graph { node P.v1; node P.v2; edge (P.v1, P.v2); };
`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Out) != 2 {
		t.Fatalf("post-mutation query found %d matches, want 2 (G and H)", len(res.Out))
	}
}

// TestMutateRejections: parse failures are ParseErrors, mixed programs
// and query statements are rejected before touching the store, and the
// read path refuses mutation statements symmetrically.
func TestMutateRejections(t *testing.T) {
	e, ds := mutateEngine()
	ctx := context.Background()
	v := ds.Version()

	if _, err := e.Mutate(ctx, `insert node into;`); err == nil {
		t.Fatal("malformed program accepted")
	} else {
		var pe *ParseError
		if !errors.As(err, &pe) {
			t.Fatalf("malformed program error is %T, want *ParseError", err)
		}
	}

	mixed := `insert node b into G in doc("db"); graph Q { node v1; };`
	if _, err := e.Mutate(ctx, mixed); err == nil ||
		!strings.Contains(err.Error(), "solely of mutation statements") {
		t.Fatalf("mixed program error = %v", err)
	}

	// The read path rejects mutation statements with a pointer at Mutate.
	if _, err := e.RunQuery(ctx, `drop graph G in doc("db");`); err == nil ||
		!strings.Contains(err.Error(), "mutation statement") {
		t.Fatalf("read-path mutation error = %v", err)
	}
	if ds.Version() != v {
		t.Fatalf("rejected programs moved the store version %d -> %d", v, ds.Version())
	}
}

// readOnlyStore hides the DocStore's Mutator surface: exactly the
// store.Store interface, nothing more.
type readOnlyStore struct{ inner *store.DocStore }

func (r readOnlyStore) Snapshot() *store.Snapshot { return r.inner.Snapshot() }
func (r readOnlyStore) Version() uint64           { return r.inner.Version() }
func (r readOnlyStore) RegisterDoc(name string, c graph.Collection) uint64 {
	return r.inner.RegisterDoc(name, c)
}
func (r readOnlyStore) RemoveDoc(name string) uint64 { return r.inner.RemoveDoc(name) }

// TestMutateReadOnlyStore: an engine over a store without the Mutator
// seam reports itself read-only.
func TestMutateReadOnlyStore(t *testing.T) {
	e := NewOver(readOnlyStore{inner: store.New(store.Options{})})
	_, err := e.Mutate(context.Background(), `drop graph G in doc("db");`)
	if err == nil || !strings.Contains(err.Error(), "read-only") {
		t.Fatalf("read-only store mutate error = %v, want read-only", err)
	}
}
