// Package exec evaluates GraphQL programs (§3.4): sequences of pattern
// declarations, graph-variable assignments and FLWR expressions. A for
// clause selects matched graphs from a document (collection); a return
// clause instantiates a template per match into the output collection; a
// let clause folds each match into an accumulator graph variable — the
// Figure 4.12 co-authorship construction.
package exec

import (
	"context"
	"errors"
	"fmt"
	"log"
	"time"

	"gqldb/internal/algebra"
	"gqldb/internal/ast"
	"gqldb/internal/expr"
	"gqldb/internal/gindex"
	"gqldb/internal/graph"
	"gqldb/internal/match"
	"gqldb/internal/motif"
	"gqldb/internal/obs"
	"gqldb/internal/pattern"
	"gqldb/internal/pool"
	"gqldb/internal/store"
)

// Store maps document names (the argument of doc("...")) to collections.
//
// Deprecated as an engine field: since the versioned storage layer landed,
// the engine reads documents through internal/store snapshots. The map type
// remains as the compatibility constructor shape — New(Store{...}) wraps it
// into an unsharded store.DocStore — so existing callers keep working; code
// that wants sharding, versioned registration or per-shard indexes should
// build a store.DocStore and use NewOver.
type Store map[string]graph.Collection

// Engine evaluates programs against a document store.
type Engine struct {
	// Docs is the versioned document store queries read from. Every program
	// executes against one store snapshot taken at entry, so concurrent
	// RegisterDoc calls never tear an in-flight result. A nil Docs serves an
	// empty snapshot.
	Docs store.Store
	// Cache, when set, memoizes whole-program results by (canonical program
	// text, docs read, store version) — see RunQuery. Run/RunContext bypass
	// it (they receive pre-parsed programs; the canonical source text is the
	// cache's identity).
	Cache *store.Cache
	// Selector overrides how the coordinator evaluates one shard of a
	// sharded document (the multi-process seam); nil means in-process
	// matching (store.LocalSelector).
	Selector store.ShardSelector
	// Opts configures selection; Exhaustive is overridden per FLWR clause.
	Opts match.Options
	// Plans, when set, caches search plans across queries: selection wires
	// it into match.Options with the snapshot version as the validity
	// fence, so repeated patterns over unchanged documents skip retrieval,
	// refinement and ordering. Shared safely by concurrent requests.
	Plans *match.PlanCache
	// IxFor optionally supplies per-graph access structures.
	IxFor func(*graph.Graph) *match.Index
	// CollIndex optionally supplies a path-feature index per document
	// (keyed by doc name): the for-clause then filters candidate graphs
	// before matching — the §4 access method for collections of small
	// graphs.
	CollIndex map[string]*gindex.Index
	// DeriveDepth bounds recursive-motif derivation (default 8).
	DeriveDepth int
	// DeriveLimit bounds the number of derived motifs (default 64).
	DeriveLimit int
	// Workers bounds the worker pool used for the for-clause: selection
	// over the document and return-clause instantiation both fan out over
	// up to Workers goroutines. 0 or 1 evaluates serially (the zero value
	// keeps the original behavior); negative means GOMAXPROCS. Output
	// order is identical at every setting.
	Workers int
	// Trace enables per-query trace collection: RunContext roots a span
	// tree (unless the context already carries one), threads it through
	// every phase and operator, and returns it in Result.Trace. Query
	// results are byte-identical with tracing on and off.
	Trace bool
	// SlowQuery, when positive, is the wall-time threshold above which a
	// finished program (successful or not) is reported to SlowQueryLog.
	SlowQuery time.Duration
	// SlowQueryLog receives slow-query records; nil falls back to the
	// standard logger.
	SlowQueryLog func(obs.SlowQueryRecord)
}

// RequestOptions are the per-request evaluation knobs a server frontend
// overrides on a shared engine without mutating it: the zero value of each
// field inherits the engine's setting.
type RequestOptions struct {
	// Workers overrides the for-clause fan-out when nonzero (negative means
	// GOMAXPROCS, as on Engine.Workers).
	Workers int
	// Trace enables trace collection for this request.
	Trace bool
	// SlowQuery overrides the slow-query threshold when nonzero.
	SlowQuery time.Duration
}

// Request returns a request-scoped shallow copy of the engine with o
// applied. The copy shares the store, indexes and option struct (all of
// which the engine only reads during evaluation), so concurrent requests
// may each take their own copy from one shared engine; mutating the copy's
// fields never races with other requests.
func (e *Engine) Request(o RequestOptions) *Engine {
	cp := *e
	if o.Workers != 0 {
		cp.Workers = o.Workers
	}
	if o.Trace {
		cp.Trace = true
	}
	if o.SlowQuery != 0 {
		cp.SlowQuery = o.SlowQuery
	}
	return &cp
}

// workerCount resolves Engine.Workers to a pool worker request: the zero
// value and 1 stay serial, negative asks the pool for GOMAXPROCS.
func (e *Engine) workerCount() int {
	if e.Workers == 0 {
		return 1
	}
	return e.Workers
}

// Result is the outcome of running a program.
type Result struct {
	// Out collects the graphs produced by return clauses, in order.
	Out graph.Collection
	// Vars holds the graph variables (accumulators) by name.
	Vars map[string]*graph.Graph
	// Stats carries per-operator timing and fan-out records (match.OpStat)
	// for the bulk operators the program executed.
	Stats *match.Stats
	// Trace is the query's span tree when tracing was enabled (Engine.Trace
	// or a span-carrying context), else nil.
	Trace *obs.Span
}

// New returns an engine with the default (exhaustive, unoptimized)
// selection options over the given document map, wrapped into an unsharded
// single-version store. The map is captured at construction; later changes
// to it are not observed — register documents through Engine.Docs instead.
func New(st Store) *Engine {
	return NewOver(store.FromMap(st))
}

// NewOver returns an engine reading through the given document store — the
// constructor for sharded, indexed or externally-versioned stores.
func NewOver(docs store.Store) *Engine {
	return &Engine{Docs: docs, Opts: match.Options{Exhaustive: true}}
}

// snapshot pins the store view one program executes against.
func (e *Engine) snapshot() *store.Snapshot {
	if e.Docs == nil {
		return store.EmptySnapshot()
	}
	return e.Docs.Snapshot()
}

// Run executes a parsed program.
func (e *Engine) Run(prog *ast.Program) (*Result, error) {
	return e.RunContext(context.Background(), prog)
}

// RunContext executes a parsed program under a context: cancellation is
// checked between statements, per work item inside every bulk operator, and
// on every backtracking step of each selection, so a cancelled program
// returns ctx.Err() promptly even mid-match.
//
// Observability: the run is counted in the process metrics; when tracing is
// enabled (Engine.Trace, or a span installed in ctx via obs.NewContext) the
// evaluation phases record a span tree, returned in Result.Trace. A run
// whose wall time crosses Engine.SlowQuery is reported to the slow-query
// log hook whether it succeeded or failed.
func (e *Engine) RunContext(ctx context.Context, prog *ast.Program) (*Result, error) {
	ctx, root, rooted := e.traceRoot(ctx)
	res, err := e.runInstrumented(ctx, prog, e.snapshot(), nil)
	if rooted {
		root.End()
	}
	if err != nil {
		return nil, err
	}
	res.Trace = root
	return res, nil
}

// traceRoot resolves the run's root span: a span already carried by ctx is
// reused; otherwise Engine.Trace roots a fresh one. rooted reports that
// this call created the root and owns its End.
func (e *Engine) traceRoot(ctx context.Context) (context.Context, *obs.Span, bool) {
	if ctx == nil {
		ctx = context.Background()
	}
	root := obs.FromContext(ctx)
	rooted := false
	if root == nil && e.Trace {
		root = obs.NewTrace("query")
		rooted = true
	}
	if root != nil {
		ctx = obs.NewContext(ctx, root)
	}
	return ctx, root, rooted
}

// runInstrumented executes the program against one pinned store snapshot
// with the query-level metrics and the slow-query hook applied. The
// snapshot is a parameter (not re-taken) so callers that compute a cache
// key from a snapshot execute against exactly that version. A non-nil st
// switches return clauses to the streaming pipeline.
func (e *Engine) runInstrumented(ctx context.Context, prog *ast.Program, snap *store.Snapshot, st *streamState) (*Result, error) {
	obs.Queries.Inc()
	start := time.Now()
	res, executed, err := e.run(ctx, prog, snap, st)
	wall := time.Since(start)
	obs.QuerySeconds.Observe(wall)
	if err != nil {
		obs.QueryErrors.Inc()
	}
	if e.SlowQuery > 0 && wall >= e.SlowQuery {
		obs.SlowQueries.Inc()
		rec := obs.SlowQueryRecord{Wall: wall, Statements: executed, Err: err, Trace: obs.FromContext(ctx)}
		if e.SlowQueryLog != nil {
			e.SlowQueryLog(rec)
		} else {
			log.Printf("exec: %s", rec)
		}
	}
	if err != nil {
		return nil, err
	}
	return res, nil
}

// run executes the program statements, returning the result, the number of
// statements executed, and the terminal error.
func (e *Engine) run(ctx context.Context, prog *ast.Program, snap *store.Snapshot, st *streamState) (*Result, int, error) {
	env := &environment{
		engine:  e,
		ctx:     ctx,
		snap:    snap,
		stream:  st,
		stats:   &match.Stats{},
		decls:   map[string]*ast.GraphDecl{},
		vars:    map[string]*graph.Graph{},
		grammar: motif.NewGrammar(),
	}
	done := ctx.Done()
	for i, s := range prog.Stmts {
		if done != nil {
			select {
			case <-done:
				return nil, i, ctx.Err()
			default:
			}
		}
		if err := env.exec(s); err != nil {
			// A completed stream (take reached, sink stop) ends the program
			// early without failing it; later statements do not run and the
			// truncation is recorded on the stream state.
			if st != nil && errors.Is(err, errStreamDone) {
				return &Result{Vars: env.vars, Stats: env.stats}, i + 1, nil
			}
			return nil, i, err
		}
	}
	return &Result{Out: env.out, Vars: env.vars, Stats: env.stats}, len(prog.Stmts), nil
}

// environment is the mutable execution state.
type environment struct {
	engine *Engine
	ctx    context.Context
	snap   *store.Snapshot
	// stream, when non-nil, routes return clauses through the streaming
	// pipeline (rows pushed to the sink instead of collected into out).
	stream  *streamState
	stats   *match.Stats
	decls   map[string]*ast.GraphDecl
	vars    map[string]*graph.Graph
	grammar *motif.Grammar
	out     graph.Collection
}

func (env *environment) exec(s ast.Stmt) error {
	switch x := s.(type) {
	case *ast.GraphDecl:
		return env.declare(x)
	case *ast.AssignStmt:
		g, err := env.instantiate(x.Tmpl, nil)
		if err != nil {
			return err
		}
		g.Name = x.Name
		env.vars[x.Name] = g
		return nil
	case *ast.FLWRStmt:
		return env.flwr(x)
	case *ast.MutationStmt:
		return fmt.Errorf("exec: %s is a mutation statement; run it through Engine.Mutate (or POST /v2/mutate)", x.Kind)
	}
	return fmt.Errorf("exec: unknown statement %T", s)
}

// declare registers a graph/pattern/motif declaration. Every declaration is
// also added to the motif grammar so later declarations can reference it.
func (env *environment) declare(d *ast.GraphDecl) error {
	if d.Name == "" {
		return fmt.Errorf("exec: top-level graph declarations must be named")
	}
	env.decls[d.Name] = d
	if d.Where == nil {
		if def, err := d.ToMotifDef(); err == nil {
			env.grammar.Add(def)
		}
	}
	return nil
}

// patterns lowers the declaration (named or inline) into one or more
// compiled patterns: one for a simple declaration, several for a recursive
// or disjunctive one (each derived motif becomes a pattern, per the
// recursive-pattern semantics of §3.2).
func (env *environment) patterns(d *ast.GraphDecl, extraWhere expr.Expr) ([]*pattern.Pattern, error) {
	if d.IsSimple() {
		p, err := clonePattern(d, extraWhere)
		if err != nil {
			return nil, err
		}
		return []*pattern.Pattern{p}, nil
	}
	if extraWhere != nil || d.Where != nil {
		return nil, fmt.Errorf("exec: predicates on recursive patterns are not supported")
	}
	def, err := d.ToMotifDef()
	if err != nil {
		return nil, err
	}
	env.grammar.Add(def)
	depth := env.engine.DeriveDepth
	if depth <= 0 {
		depth = 8
	}
	limit := env.engine.DeriveLimit
	if limit <= 0 {
		limit = 64
	}
	derived, err := env.grammar.Derive(d.Name, depth, limit)
	if err != nil {
		return nil, err
	}
	var out []*pattern.Pattern
	for _, g := range derived {
		p := pattern.New(d.Name)
		for _, n := range g.Nodes() {
			p.AddNode(n.Name, n.Attrs, nil)
		}
		for _, eg := range g.Edges() {
			p.AddEdge(eg.Name, eg.From, eg.To, eg.Attrs, nil)
		}
		if err := p.Compile(); err != nil {
			return nil, err
		}
		out = append(out, p)
	}
	return out, nil
}

// clonePattern lowers a simple declaration plus an extra conjunct into a
// fresh compiled pattern.
func clonePattern(d *ast.GraphDecl, extraWhere expr.Expr) (*pattern.Pattern, error) {
	p := pattern.New(d.Name)
	for _, m := range d.Members {
		switch x := m.(type) {
		case *ast.NodeDecl:
			t, err := constTuple(x.Tuple)
			if err != nil {
				return nil, err
			}
			p.AddNode(x.Name, t, x.Where)
		case *ast.EdgeDecl:
			if len(x.From) != 1 || len(x.To) != 1 {
				return nil, fmt.Errorf("exec: pattern %s: edge endpoints must be local", d.Name)
			}
			from, ok1 := p.Motif.NodeByName(x.From[0])
			to, ok2 := p.Motif.NodeByName(x.To[0])
			if !ok1 || !ok2 {
				return nil, fmt.Errorf("exec: pattern %s: edge references undeclared node", d.Name)
			}
			t, err := constTuple(x.Tuple)
			if err != nil {
				return nil, err
			}
			p.AddEdge(x.Name, from, to, t, x.Where)
		}
	}
	p.Where(d.Where)
	p.Where(extraWhere)
	if err := p.Compile(); err != nil {
		return nil, err
	}
	return p, nil
}

func constTuple(td *ast.TupleDecl) (*graph.Tuple, error) {
	if td == nil {
		return nil, nil
	}
	t := graph.NewTuple(td.Tag)
	for _, a := range td.Attrs {
		lit, ok := a.E.(expr.Lit)
		if !ok {
			return nil, fmt.Errorf("exec: pattern attribute %s must be a literal", a.Name)
		}
		t.Set(a.Name, lit.Val)
	}
	return t, nil
}

// flwr evaluates one for/let-or-return clause.
func (env *environment) flwr(f *ast.FLWRStmt) error {
	decl := f.Pattern
	if decl == nil {
		var ok bool
		decl, ok = env.decls[f.PatternName]
		if !ok {
			return fmt.Errorf("exec: undeclared pattern %s", f.PatternName)
		}
	}
	d, ok := env.snap.Doc(f.Doc)
	if !ok {
		return fmt.Errorf("exec: unknown document %q", f.Doc)
	}
	fctx, fsp := obs.StartSpan(env.ctx, "flwr")
	defer fsp.End()
	fsp.SetAttr("pattern", decl.Name)
	fsp.SetAttr("doc", f.Doc)

	csp := fsp.StartChild("compile")
	pats, err := env.patterns(decl, f.Where)
	csp.End()
	if err != nil {
		return err
	}
	csp.Add("patterns", int64(len(pats)))
	opts := env.engine.Opts
	opts.Exhaustive = f.Exhaustive
	if env.engine.Plans != nil {
		opts.Plans = env.engine.Plans
		// Fence plans on the document's version, not the store's: a mutation
		// elsewhere must not invalidate plans over this document's graphs.
		opts.PlanEpoch = d.Version()
	}

	var tmplDecl *ast.TemplateDecl
	if f.Return != nil {
		tmplDecl = f.Return
	} else {
		tmplDecl = f.Let
	}

	workers := env.engine.workerCount()
	for _, p := range pats {
		// A streaming return clause pipelines selection into the sink; let
		// clauses stay buffered (the fold result is a variable, not rows).
		if f.Return != nil && env.stream != nil {
			if err := env.streamPattern(fctx, fsp, d, p, f, opts, workers); err != nil {
				return err
			}
			continue
		}
		ms, err := env.selectDoc(fctx, fsp, d, p, f.Doc, opts, workers)
		if err != nil {
			return err
		}
		if f.Return != nil {
			if err := env.returnFanout(fctx, p, ms, tmplDecl, workers); err != nil {
				return err
			}
			continue
		}
		// A let clause folds each match into the accumulator variable: every
		// instantiation reads the previous value through env.vars, so the
		// fold is inherently sequential.
		lsp := fsp.StartChild("let-fold")
		lsp.Add("items", int64(len(ms)))
		for _, m := range ms {
			g, err := env.instantiate(tmplDecl, map[string]algebra.Operand{
				p.Name: algebra.MatchedOperand(m),
			})
			if err != nil {
				lsp.End()
				return err
			}
			g.Name = f.LetName
			env.vars[f.LetName] = g
		}
		lsp.End()
	}
	return nil
}

// selectDoc evaluates one pattern's selection over a document, picking the
// access path:
//
//   - a sharded document goes through the store Coordinator (fan-out per
//     shard, per-shard index filter, canonical-order merge — byte-identical
//     to a serial scan);
//   - an unsharded document with a path index (the legacy Engine.CollIndex
//     registration or the store's built-at-registration index) is filtered
//     to candidates, then selected;
//   - otherwise the whole collection is selected directly.
//
// Engine.CollIndex, when it names the document, wins over the store path:
// it indexes the whole collection, so it applies even to sharded docs.
func (env *environment) selectDoc(ctx context.Context, fsp *obs.Span, d *store.Doc, p *pattern.Pattern, docName string, opts match.Options, workers int) (algebra.Matched, error) {
	engine := env.engine
	cix, legacy := engine.CollIndex[docName]
	if !legacy {
		cix = d.Index() // nil for sharded or unindexed documents
	}
	// A configured Selector routes even single-shard documents through the
	// coordinator: with a remote selector that is the whole point — the
	// shard servers evaluate, this process only merges.
	if (d.Sharded() || engine.Selector != nil) && !legacy {
		co := &store.Coordinator{Selector: engine.Selector}
		return co.Select(ctx, d, p, opts, engine.IxFor, workers, env.stats)
	}
	target, err := env.filterCandidates(fsp, d.Collection(), cix, p)
	if err != nil {
		return nil, err
	}
	return algebra.SelectionContext(ctx, p, target, opts, engine.IxFor, workers, env.stats)
}

// filterCandidates applies a collection path index (when present) ahead of
// selection: the candidate ordinals become the target collection, with the
// filter counters recorded on an index-filter span. A nil index passes the
// collection through. Shared by the buffered and streaming access paths.
func (env *environment) filterCandidates(fsp *obs.Span, coll graph.Collection, cix *gindex.Index, p *pattern.Pattern) (graph.Collection, error) {
	if cix == nil {
		return coll, nil
	}
	isp := fsp.StartChild("index-filter")
	cands, err := cix.Candidates(p)
	isp.End()
	if err != nil {
		return nil, err
	}
	isp.Add("total", int64(len(coll)))
	isp.Add("candidates", int64(len(cands)))
	isp.Add("pruned", int64(len(coll)-len(cands)))
	obs.GindexCandidates.Add(int64(len(cands)))
	obs.GindexPruned.Add(int64(len(coll) - len(cands)))
	filtered := make(graph.Collection, len(cands))
	for i, gi := range cands {
		filtered[i] = coll[gi]
	}
	return filtered, nil
}

// returnFanout instantiates the return template for every match on the
// worker pool. The matches only read the environment (graph variables are
// not written during a return clause), so instantiations are independent;
// results land in index-partitioned slots and are appended in match order —
// output is identical to the serial loop.
func (env *environment) returnFanout(ctx context.Context, p *pattern.Pattern, ms algebra.Matched, tmplDecl *ast.TemplateDecl, workers int) error {
	workers = pool.Workers(workers, len(ms))
	slots := make(graph.Collection, len(ms))
	sctx, sp := obs.StartSpan(ctx, "return-fanout")
	sp.Add("items", int64(len(ms)))
	sp.Add("workers", int64(workers))
	defer sp.End()
	start := time.Now()
	err := pool.Run(sctx, len(ms), workers, func(i int) error {
		g, err := env.instantiate(tmplDecl, map[string]algebra.Operand{
			p.Name: algebra.MatchedOperand(ms[i]),
		})
		if err != nil {
			return err
		}
		slots[i] = g
		return nil
	})
	if err != nil {
		return err
	}
	env.stats.RecordOp("return-fanout", len(ms), workers, time.Since(start))
	env.out = append(env.out, slots...)
	return nil
}

// instantiate lowers and applies a template declaration. All current graph
// variables are available as operands alongside the explicit bindings; a
// bare reference template (let X := Y) copies the variable.
func (env *environment) instantiate(td *ast.TemplateDecl, bindings map[string]algebra.Operand) (*graph.Graph, error) {
	if td.Ref != "" {
		if g, ok := env.vars[td.Ref]; ok {
			return g.Clone(), nil
		}
		return nil, fmt.Errorf("exec: undefined graph variable %s", td.Ref)
	}
	tmpl, err := td.ToTemplate()
	if err != nil {
		return nil, err
	}
	args := make(map[string]algebra.Operand, len(env.vars)+len(bindings))
	for name, g := range env.vars {
		args[name] = algebra.GraphOperand(g)
	}
	for name, op := range bindings {
		args[name] = op
	}
	return tmpl.Instantiate(args)
}
