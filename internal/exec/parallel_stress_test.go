package exec

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"gqldb/internal/graph"
	"gqldb/internal/parser"
)

// stressStore builds a store of many small random graphs so the for-clause
// fans out over enough matches for the race detector to observe worker
// interleavings.
func stressStore(n int) Store {
	rng := rand.New(rand.NewSource(7))
	var c graph.Collection
	for i := 0; i < n; i++ {
		g := graph.New(fmt.Sprintf("g%d", i))
		k := 3 + rng.Intn(4)
		for j := 0; j < k; j++ {
			g.AddNode("", graph.TupleOf("", "label", string(rune('A'+rng.Intn(3)))))
		}
		for j := 0; j < 2*k; j++ {
			u, v := rng.Intn(k), rng.Intn(k)
			if u != v {
				g.AddEdge("", graph.NodeID(u), graph.NodeID(v), nil)
			}
		}
		c = append(c, g)
	}
	return Store{"db": c}
}

const stressQuery = `
graph P { node v1 where label="A"; node v2 where label="B"; edge (v1, v2); };
for P exhaustive in doc("db")
return graph { node P.v1; node P.v2; edge (P.v1, P.v2); };
`

// TestRunContextWorkersMatchSerial: the parallel exec pipeline (selection
// fan-out plus return-clause instantiation fan-out) produces byte-identical
// output for every worker setting. Run under -race via `make race`.
func TestRunContextWorkersMatchSerial(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test; skipped in -short")
	}
	store := stressStore(120)
	prog, err := parser.Parse(stressQuery)
	if err != nil {
		t.Fatal(err)
	}
	want, err := New(store).Run(prog)
	if err != nil {
		t.Fatal(err)
	}
	if len(want.Out) == 0 {
		t.Fatal("degenerate test: no matches")
	}
	for round := 0; round < 3; round++ {
		for _, workers := range []int{0, 1, 2, 7, -1, 4 * len(store["db"])} {
			e := New(store)
			e.Workers = workers
			got, err := e.RunContext(context.Background(), prog)
			if err != nil {
				t.Fatalf("workers=%d: %v", workers, err)
			}
			if len(got.Out) != len(want.Out) {
				t.Fatalf("workers=%d: %d results, want %d", workers, len(got.Out), len(want.Out))
			}
			for i := range want.Out {
				if got.Out[i].Signature() != want.Out[i].Signature() {
					t.Fatalf("workers=%d: output differs at %d", workers, i)
				}
			}
			if workers != 0 && workers != 1 && len(got.Stats.Ops) == 0 {
				t.Fatalf("workers=%d: no operator stats recorded", workers)
			}
		}
	}
}

// TestRunContextConcurrentCallers runs several engines over the same store
// and parsed program at once; the store and AST are shared read-only state.
func TestRunContextConcurrentCallers(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test; skipped in -short")
	}
	store := stressStore(60)
	prog, err := parser.Parse(stressQuery)
	if err != nil {
		t.Fatal(err)
	}
	want, err := New(store).Run(prog)
	if err != nil {
		t.Fatal(err)
	}

	const callers = 8
	errs := make([]error, callers)
	counts := make([]int, callers)
	var wg sync.WaitGroup
	for k := 0; k < callers; k++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			e := New(store)
			e.Workers = 4
			res, err := e.RunContext(context.Background(), prog)
			errs[k] = err
			if res != nil {
				counts[k] = len(res.Out)
			}
		}()
	}
	wg.Wait()
	for k := 0; k < callers; k++ {
		if errs[k] != nil {
			t.Fatalf("caller %d: %v", k, errs[k])
		}
		if counts[k] != len(want.Out) {
			t.Fatalf("caller %d: %d results, want %d", k, counts[k], len(want.Out))
		}
	}
}

// TestRunContextMidFlightCancellation cancels the pipeline concurrently with
// evaluation; the engine must return nil-or-ctx.Err() with no racing writes.
func TestRunContextMidFlightCancellation(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test; skipped in -short")
	}
	store := stressStore(150)
	prog, err := parser.Parse(stressQuery)
	if err != nil {
		t.Fatal(err)
	}
	for round := 0; round < 8; round++ {
		ctx, cancel := context.WithCancel(context.Background())
		go cancel()
		e := New(store)
		e.Workers = 4
		_, err := e.RunContext(ctx, prog)
		if err != nil && !errors.Is(err, context.Canceled) {
			t.Fatalf("round %d: err = %v, want nil or context.Canceled", round, err)
		}
		cancel()
	}

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := New(store).RunContext(ctx, prog); !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-cancelled: err = %v, want context.Canceled", err)
	}
}
