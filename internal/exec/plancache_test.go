package exec

import (
	"context"
	"testing"

	"gqldb/internal/graph"
	"gqldb/internal/match"
	"gqldb/internal/parser"
	"gqldb/internal/store"
)

// TestPlanCacheGridDeterminism runs the stress query with a shared plan
// cache across every shard × worker combination, twice each (cold plan,
// then cached plan), and requires byte-identical output to the uncached
// serial baseline every time.
func TestPlanCacheGridDeterminism(t *testing.T) {
	coll := stressStore(60)["db"]
	prog, err := parser.Parse(stressQuery)
	if err != nil {
		t.Fatal(err)
	}
	want, err := New(Store{"db": coll}).Run(prog)
	if err != nil {
		t.Fatal(err)
	}
	if len(want.Out) == 0 {
		t.Fatal("degenerate test: no matches")
	}

	for _, shards := range []int{1, 4, 17} {
		for _, workers := range []int{1, 16} {
			ds := store.New(store.Options{Shards: shards})
			ds.RegisterDoc("db", coll)
			e := NewOver(ds)
			e.Workers = workers
			// One plan per (pattern, graph): capacity must cover the
			// collection for the second run to hit on every member.
			e.Plans = match.NewPlanCache(2 * len(coll))
			for run := 0; run < 2; run++ {
				got, err := e.RunContext(context.Background(), prog)
				if err != nil {
					t.Fatalf("shards=%d workers=%d run=%d: %v", shards, workers, run, err)
				}
				if len(got.Out) != len(want.Out) {
					t.Fatalf("shards=%d workers=%d run=%d: %d results, want %d",
						shards, workers, run, len(got.Out), len(want.Out))
				}
				for i := range want.Out {
					if got.Out[i].Signature() != want.Out[i].Signature() {
						t.Fatalf("shards=%d workers=%d run=%d: output differs at %d",
							shards, workers, run, i)
					}
				}
			}
			st := e.Plans.Stats()
			if st.Hits == 0 {
				t.Errorf("shards=%d workers=%d: second run never hit the plan cache (%+v)",
					shards, workers, st)
			}
		}
	}
}

// TestPlanCacheInvalidation pins the validity fence end-to-end: plans
// cached against one store version must never shape results after a
// RegisterDoc bump — the post-mutation query agrees byte-for-byte with a
// fresh uncached engine over the new data.
func TestPlanCacheInvalidation(t *testing.T) {
	mk := func(label string) graph.Collection {
		g := graph.New("G")
		a := g.AddNode("a", graph.TupleOf("", "label", "A"))
		b := g.AddNode("b", graph.TupleOf("", "label", label))
		g.AddEdge("", a, b, nil)
		return graph.NewCollection(g)
	}
	prog, err := parser.Parse(stressQuery)
	if err != nil {
		t.Fatal(err)
	}

	ds := store.New(store.Options{Shards: 4})
	ds.RegisterDoc("db", mk("B"))
	e := NewOver(ds)
	e.Plans = match.NewPlanCache(16)

	res1, err := e.RunContext(context.Background(), prog)
	if err != nil {
		t.Fatal(err)
	}
	if len(res1.Out) != 1 {
		t.Fatalf("pre-mutation: %d results, want 1", len(res1.Out))
	}
	// Warm the cache, then mutate: B disappears, so the cached plan's
	// feasible mates are stale — a reused plan would still find a match.
	if _, err := e.RunContext(context.Background(), prog); err != nil {
		t.Fatal(err)
	}
	ds.RegisterDoc("db", mk("C"))
	res2, err := e.RunContext(context.Background(), prog)
	if err != nil {
		t.Fatal(err)
	}
	if len(res2.Out) != 0 {
		t.Fatalf("post-mutation: %d results, want 0 (stale plan reused?)", len(res2.Out))
	}
	if st := e.Plans.Stats(); st.Invalidations == 0 {
		t.Errorf("no invalidation recorded across the version bump: %+v", st)
	}
	// And mutating back re-plans against the new graphs, not the originals.
	ds.RegisterDoc("db", mk("B"))
	res3, err := e.RunContext(context.Background(), prog)
	if err != nil {
		t.Fatal(err)
	}
	fresh, err := NewOver(ds).RunContext(context.Background(), prog)
	if err != nil {
		t.Fatal(err)
	}
	if len(res3.Out) != len(fresh.Out) {
		t.Fatalf("cached engine: %d results, fresh engine: %d", len(res3.Out), len(fresh.Out))
	}
	for i := range fresh.Out {
		if res3.Out[i].Signature() != fresh.Out[i].Signature() {
			t.Fatalf("cached engine differs from fresh at %d", i)
		}
	}
}
