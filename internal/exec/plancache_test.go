package exec

import (
	"context"
	"testing"

	"gqldb/internal/graph"
	"gqldb/internal/match"
	"gqldb/internal/parser"
	"gqldb/internal/store"
)

// TestPlanCacheGridDeterminism runs the stress query with a shared plan
// cache across every shard × worker combination, twice each (cold plan,
// then cached plan), and requires byte-identical output to the uncached
// serial baseline every time.
func TestPlanCacheGridDeterminism(t *testing.T) {
	coll := stressStore(60)["db"]
	prog, err := parser.Parse(stressQuery)
	if err != nil {
		t.Fatal(err)
	}
	want, err := New(Store{"db": coll}).Run(prog)
	if err != nil {
		t.Fatal(err)
	}
	if len(want.Out) == 0 {
		t.Fatal("degenerate test: no matches")
	}

	for _, shards := range []int{1, 4, 17} {
		for _, workers := range []int{1, 16} {
			ds := store.New(store.Options{Shards: shards})
			ds.RegisterDoc("db", coll)
			e := NewOver(ds)
			e.Workers = workers
			// One plan per (pattern, graph): capacity must cover the
			// collection for the second run to hit on every member.
			e.Plans = match.NewPlanCache(2 * len(coll))
			for run := 0; run < 2; run++ {
				got, err := e.RunContext(context.Background(), prog)
				if err != nil {
					t.Fatalf("shards=%d workers=%d run=%d: %v", shards, workers, run, err)
				}
				if len(got.Out) != len(want.Out) {
					t.Fatalf("shards=%d workers=%d run=%d: %d results, want %d",
						shards, workers, run, len(got.Out), len(want.Out))
				}
				for i := range want.Out {
					if got.Out[i].Signature() != want.Out[i].Signature() {
						t.Fatalf("shards=%d workers=%d run=%d: output differs at %d",
							shards, workers, run, i)
					}
				}
			}
			st := e.Plans.Stats()
			if st.Hits == 0 {
				t.Errorf("shards=%d workers=%d: second run never hit the plan cache (%+v)",
					shards, workers, st)
			}
		}
	}
}

// TestPlanCacheInvalidation pins the validity fence end-to-end. Plans are
// fenced per entry on the document version: mutating one graph in a
// document invalidates the sibling graphs' cached plans on next probe
// (their statistics are no longer known-valid), and plans cached against
// replaced graphs must never shape results — the post-mutation query
// agrees byte-for-byte with a fresh uncached engine over the new data.
func TestPlanCacheInvalidation(t *testing.T) {
	mkGraph := func(name, label string) *graph.Graph {
		g := graph.New(name)
		a := g.AddNode("a", graph.TupleOf("", "label", "A"))
		b := g.AddNode("b", graph.TupleOf("", "label", label))
		g.AddEdge("e", a, b, nil)
		return g
	}
	prog, err := parser.Parse(stressQuery)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	ds := store.New(store.Options{Shards: 4})
	ds.RegisterDoc("db", graph.NewCollection(mkGraph("G", "B"), mkGraph("H", "B")))
	e := NewOver(ds)
	e.Plans = match.NewPlanCache(16)

	res1, err := e.RunContext(ctx, prog)
	if err != nil {
		t.Fatal(err)
	}
	if len(res1.Out) != 2 {
		t.Fatalf("pre-mutation: %d results, want 2", len(res1.Out))
	}
	// Warm the cache, then mutate H in place: B disappears from it, so its
	// cached plan's feasible mates are stale — a reused plan would still
	// find a match. G is untouched (same graph pointer), but its document
	// moved, so its plan must be invalidated and recomputed on probe.
	if _, err := e.RunContext(ctx, prog); err != nil {
		t.Fatal(err)
	}
	if _, err := ds.ApplyBatch(ctx, []store.Mutation{
		{Op: store.OpDeleteNode, Doc: "db", Graph: "H", Name: "b"},
	}); err != nil {
		t.Fatal(err)
	}
	res2, err := e.RunContext(ctx, prog)
	if err != nil {
		t.Fatal(err)
	}
	if len(res2.Out) != 1 {
		t.Fatalf("post-mutation: %d results, want 1 (stale plan reused?)", len(res2.Out))
	}
	if st := e.Plans.Stats(); st.Invalidations == 0 {
		t.Errorf("no invalidation recorded across the document version bump: %+v", st)
	}
	// A wholesale document replacement re-plans against the new graphs, not
	// the originals.
	ds.RegisterDoc("db", graph.NewCollection(mkGraph("G", "C")))
	res3, err := e.RunContext(ctx, prog)
	if err != nil {
		t.Fatal(err)
	}
	if len(res3.Out) != 0 {
		t.Fatalf("post-replacement: %d results, want 0", len(res3.Out))
	}
	ds.RegisterDoc("db", graph.NewCollection(mkGraph("G", "B"), mkGraph("H", "B")))
	res4, err := e.RunContext(ctx, prog)
	if err != nil {
		t.Fatal(err)
	}
	fresh, err := NewOver(ds).RunContext(ctx, prog)
	if err != nil {
		t.Fatal(err)
	}
	if len(res4.Out) != len(fresh.Out) {
		t.Fatalf("cached engine: %d results, fresh engine: %d", len(res4.Out), len(fresh.Out))
	}
	for i := range fresh.Out {
		if res4.Out[i].Signature() != fresh.Out[i].Signature() {
			t.Fatalf("cached engine differs from fresh at %d", i)
		}
	}
}
