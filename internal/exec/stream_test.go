package exec

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"gqldb/internal/graph"
	"gqldb/internal/store"
)

// streamAuthorsSrc yields one result row per author node, in collection
// order — the workload of every streamed-vs-buffered comparison.
const streamAuthorsSrc = `for graph Q { node v1 <author>; } exhaustive in doc("DBLP")
return graph { node Q.v1; };`

// authors returns n single-author graphs with distinct names, so every
// result row is distinguishable and ordered.
func authors(n int) graph.Collection {
	c := make(graph.Collection, 0, n)
	for i := 0; i < n; i++ {
		g := graph.New(fmt.Sprintf("G%d", i))
		g.AddNode("v1", graph.TupleOf("author", "name", fmt.Sprintf("A%05d", i)))
		c = append(c, g)
	}
	return c
}

// shardedEngine builds an engine over the collection partitioned into the
// given shard count.
func shardedEngine(coll graph.Collection, shards int) *Engine {
	ds := store.New(store.Options{Shards: shards})
	ds.RegisterDoc("DBLP", coll)
	return NewOver(ds)
}

// render stringifies a collection for order-sensitive comparison.
func render(c graph.Collection) []string {
	out := make([]string, len(c))
	for i, g := range c {
		out[i] = g.String()
	}
	return out
}

// window applies the documented skip/take semantics to the full result:
// the take limit is checked before and after every row (so take of the
// exact result size, and take zero over a non-empty result, both count as
// truncated), and skipping never materializes a row.
func window(all []string, skip, take int) (rows []string, skipped int, truncated bool) {
	rows = []string{}
	for _, s := range all {
		if take >= 0 && len(rows) >= take {
			truncated = true
			break
		}
		if skipped < skip {
			skipped++
			continue
		}
		rows = append(rows, s)
		if take >= 0 && len(rows) >= take {
			truncated = true
			break
		}
	}
	return rows, skipped, truncated
}

// TestStreamMatchesBufferedGrid proves the tentpole contract: for every
// shard count, worker count and skip/take edge, the streamed rows are
// byte-identical to the buffered result windowed in plain Go.
func TestStreamMatchesBufferedGrid(t *testing.T) {
	coll := authors(23)
	n := len(coll)

	// The buffered path over the unsharded serial engine is the oracle.
	oracle, err := New(Store{"DBLP": coll}).RunQuery(context.Background(), streamAuthorsSrc)
	if err != nil {
		t.Fatal(err)
	}
	all := render(oracle.Out)
	if len(all) != n {
		t.Fatalf("oracle rows = %d, want %d", len(all), n)
	}

	windows := []struct{ skip, take int }{
		{0, AllRows}, {0, 0}, {0, 3}, {2, 3}, {0, n}, {0, n + 5},
		{n - 1, AllRows}, {n + 5, AllRows}, {3, n}, {n, 0},
	}
	for _, shards := range []int{1, 4, 17} {
		for _, workers := range []int{1, 16} {
			e := shardedEngine(coll, shards)
			e.Workers = workers
			for _, win := range windows {
				name := fmt.Sprintf("shards=%d/workers=%d/skip=%d/take=%d", shards, workers, win.skip, win.take)
				t.Run(name, func(t *testing.T) {
					wantRows, wantSkipped, wantTrunc := window(all, win.skip, win.take)
					sink := &CollectSink{}
					res, err := e.StreamQuery(context.Background(), streamAuthorsSrc, sink,
						StreamOptions{Skip: win.skip, Take: win.take})
					if err != nil {
						t.Fatal(err)
					}
					got := render(sink.Graphs)
					if len(got) != len(wantRows) {
						t.Fatalf("rows = %d, want %d", len(got), len(wantRows))
					}
					for i := range wantRows {
						if got[i] != wantRows[i] {
							t.Fatalf("row %d differs:\ngot:  %s\nwant: %s", i, got[i], wantRows[i])
						}
					}
					if res.Rows != len(wantRows) || res.Skipped != wantSkipped || res.Truncated != wantTrunc {
						t.Fatalf("summary rows=%d skipped=%d truncated=%v, want %d %d %v",
							res.Rows, res.Skipped, res.Truncated, len(wantRows), wantSkipped, wantTrunc)
					}
					if res.Truncated && res.Vars != nil {
						t.Fatal("truncated stream carried vars")
					}
				})
			}
		}
	}
}

// errorSink fails Emit after passing through a fixed number of rows.
type errorSink struct {
	pass int
	err  error
	got  int
}

func (s *errorSink) Emit(g *graph.Graph) error {
	if s.got >= s.pass {
		return s.err
	}
	s.got++
	return nil
}

// TestStreamSinkStop ends the stream early via ErrStopStream: a truncated
// success, not an error.
func TestStreamSinkStop(t *testing.T) {
	e := New(Store{"DBLP": authors(40)})
	sink := &errorSink{pass: 3, err: ErrStopStream}
	res, err := e.StreamQuery(context.Background(), streamAuthorsSrc, sink, StreamOptions{Take: AllRows})
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows != 3 || !res.Truncated {
		t.Fatalf("rows=%d truncated=%v, want 3 true", res.Rows, res.Truncated)
	}
	if res.Vars != nil {
		t.Fatal("stopped stream carried vars")
	}
}

// TestStreamSinkErrorAborts propagates a non-sentinel sink error as the
// query error.
func TestStreamSinkErrorAborts(t *testing.T) {
	e := New(Store{"DBLP": authors(40)})
	boom := errors.New("sink exploded")
	_, err := e.StreamQuery(context.Background(), streamAuthorsSrc, &errorSink{pass: 2, err: boom}, StreamOptions{Take: AllRows})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want %v", err, boom)
	}
}

// cancelSink cancels the context after the first row — the exec-level
// shape of a client disconnect.
type cancelSink struct {
	cancel context.CancelFunc
	rows   int
}

func (s *cancelSink) Emit(g *graph.Graph) error {
	s.rows++
	if s.rows == 1 {
		s.cancel()
	}
	return nil
}

// TestStreamCancelMidStream cancels during emission and requires prompt
// unwinding with ctx.Err.
func TestStreamCancelMidStream(t *testing.T) {
	e := shardedEngine(authors(5000), 17)
	e.Workers = 16
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	start := time.Now()
	_, err := e.StreamQuery(ctx, streamAuthorsSrc, &cancelSink{cancel: cancel}, StreamOptions{Take: AllRows})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if wall := time.Since(start); wall > 5*time.Second {
		t.Fatalf("cancellation took %v", wall)
	}
}

// TestStreamCacheFillAndReplay: a complete un-truncated stream fills the
// result cache; replays stream identical rows (cloned, so sink mutation
// never corrupts the entry) and honor skip/take.
func TestStreamCacheFillAndReplay(t *testing.T) {
	e := New(Store{"DBLP": authors(10)})
	e.Cache = store.NewCache(4)

	first := &CollectSink{}
	res1, err := e.StreamQuery(context.Background(), streamAuthorsSrc, first, StreamOptions{Take: AllRows})
	if err != nil {
		t.Fatal(err)
	}
	if res1.CacheHit {
		t.Fatal("first run reported a cache hit")
	}
	want := render(first.Graphs)

	// The sink owns its rows: mutate them all. The cached entry must be
	// unaffected because the fill cloned before Emit.
	for _, g := range first.Graphs {
		g.AddNode("intruder", nil)
	}

	second := &CollectSink{}
	res2, err := e.StreamQuery(context.Background(), streamAuthorsSrc, second, StreamOptions{Take: AllRows})
	if err != nil {
		t.Fatal(err)
	}
	if !res2.CacheHit {
		t.Fatal("second run missed the cache")
	}
	got := render(second.Graphs)
	if len(got) != len(want) {
		t.Fatalf("replay rows = %d, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("replayed row %d differs:\ngot:  %s\nwant: %s", i, got[i], want[i])
		}
	}

	// Mutate the replayed rows too, then take a paginated replay: still
	// pristine, still windowed.
	for _, g := range second.Graphs {
		g.AddNode("intruder", nil)
	}
	third := &CollectSink{}
	res3, err := e.StreamQuery(context.Background(), streamAuthorsSrc, third, StreamOptions{Skip: 2, Take: 3})
	if err != nil {
		t.Fatal(err)
	}
	if !res3.CacheHit || res3.Rows != 3 || res3.Skipped != 2 || !res3.Truncated {
		t.Fatalf("paginated replay: hit=%v rows=%d skipped=%d truncated=%v",
			res3.CacheHit, res3.Rows, res3.Skipped, res3.Truncated)
	}
	for i, s := range render(third.Graphs) {
		if s != want[2+i] {
			t.Fatalf("paginated replay row %d differs:\ngot:  %s\nwant: %s", i, s, want[2+i])
		}
	}
}

// TestStreamTruncatedNeverFillsCache: a paginated (or sink-stopped) stream
// must not masquerade as the full result in the cache.
func TestStreamTruncatedNeverFillsCache(t *testing.T) {
	e := New(Store{"DBLP": authors(10)})
	e.Cache = store.NewCache(4)

	if _, err := e.StreamQuery(context.Background(), streamAuthorsSrc, &CollectSink{}, StreamOptions{Take: 2}); err != nil {
		t.Fatal(err)
	}
	if _, err := e.StreamQuery(context.Background(), streamAuthorsSrc, &errorSink{pass: 1, err: ErrStopStream}, StreamOptions{Take: AllRows}); err != nil {
		t.Fatal(err)
	}
	if _, err := e.StreamQuery(context.Background(), streamAuthorsSrc, &CollectSink{}, StreamOptions{Skip: 3, Take: AllRows}); err != nil {
		t.Fatal(err)
	}
	if n := e.Cache.Stats().Entries; n != 0 {
		t.Fatalf("cache entries after truncated/partial streams = %d, want 0", n)
	}

	res, err := e.StreamQuery(context.Background(), streamAuthorsSrc, &CollectSink{}, StreamOptions{Take: AllRows})
	if err != nil {
		t.Fatal(err)
	}
	if res.CacheHit {
		t.Fatal("cache hit before any complete stream")
	}
	if n := e.Cache.Stats().Entries; n != 1 {
		t.Fatalf("cache entries after complete stream = %d, want 1", n)
	}
}

// TestStreamSnapshotPinned: an explicit snapshot option pins the store
// view — the mechanism /v2/batch uses to run several programs on one
// consistent version — so a RegisterDoc between pin and run is invisible.
func TestStreamSnapshotPinned(t *testing.T) {
	ds := store.New(store.Options{})
	ds.RegisterDoc("DBLP", authors(4))
	e := NewOver(ds)
	snap := ds.Snapshot()

	ds.RegisterDoc("DBLP", authors(9)) // concurrent writer, as far as the pinned reader is concerned

	sink := &CollectSink{}
	res, err := e.StreamQuery(context.Background(), streamAuthorsSrc, sink, StreamOptions{Take: AllRows, Snapshot: snap})
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows != 4 {
		t.Fatalf("pinned snapshot rows = %d, want 4 (pre-registration view)", res.Rows)
	}
	fresh := &CollectSink{}
	if _, err := e.StreamQuery(context.Background(), streamAuthorsSrc, fresh, StreamOptions{Take: AllRows}); err != nil {
		t.Fatal(err)
	}
	if len(fresh.Graphs) != 9 {
		t.Fatalf("fresh snapshot rows = %d, want 9", len(fresh.Graphs))
	}
}

// TestStreamConstantMemory pins the acceptance bar: with take fixed, the
// allocations on the sink path stay flat while the result cardinality
// grows 100× — the pipeline never materializes the result set.
func TestStreamConstantMemory(t *testing.T) {
	measure := func(coll graph.Collection) float64 {
		e := New(Store{"DBLP": coll})
		return testing.AllocsPerRun(10, func() {
			sink := &CollectSink{}
			if _, err := e.StreamQuery(context.Background(), streamAuthorsSrc, sink, StreamOptions{Take: 5}); err != nil {
				t.Fatal(err)
			}
			if len(sink.Graphs) != 5 {
				t.Fatalf("rows = %d, want 5", len(sink.Graphs))
			}
		})
	}
	small := measure(authors(200))
	big := measure(authors(20000))
	if big > small*1.5+100 {
		t.Fatalf("allocs grew with cardinality: %v at 200 graphs, %v at 20000", small, big)
	}
}

// TestStreamStressRace hammers concurrent streamed queries across the
// shard/worker grid — run under -race, this is the pipeline's data-race
// check.
func TestStreamStressRace(t *testing.T) {
	coll := authors(97)
	want := func() []string {
		res, err := New(Store{"DBLP": coll}).RunQuery(context.Background(), streamAuthorsSrc)
		if err != nil {
			t.Fatal(err)
		}
		return render(res.Out)
	}()

	for _, shards := range []int{1, 17} {
		e := shardedEngine(coll, shards)
		e.Workers = 16 // more workers than some shard populations
		var wg sync.WaitGroup
		errs := make(chan error, 8)
		for i := 0; i < 8; i++ {
			skip := i % 3
			wg.Add(1)
			go func() {
				defer wg.Done()
				sink := &CollectSink{}
				res, err := e.StreamQuery(context.Background(), streamAuthorsSrc, sink, StreamOptions{Skip: skip, Take: 50})
				if err != nil {
					errs <- err
					return
				}
				if res.Rows != 50 {
					errs <- fmt.Errorf("rows = %d, want 50", res.Rows)
					return
				}
				for j, s := range render(sink.Graphs) {
					if s != want[skip+j] {
						errs <- fmt.Errorf("row %d differs under contention", j)
						return
					}
				}
			}()
		}
		wg.Wait()
		close(errs)
		for err := range errs {
			t.Fatal(err)
		}
	}
}
