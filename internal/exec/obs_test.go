package exec

import (
	"context"
	"testing"
	"time"

	"gqldb/internal/ast"
	"gqldb/internal/gindex"
	"gqldb/internal/obs"
	"gqldb/internal/parser"
)

const coauthorSrc = `
graph P {
	node v1 <author>;
	node v2 <author>;
} where P.booktitle="SIGMOD";
for P exhaustive in doc("DBLP") return graph {
	node P.v1, P.v2;
	edge e1 (P.v1, P.v2);
};`

func parse(t *testing.T, src string) *ast.Program {
	t.Helper()
	prog, err := parser.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return prog
}

// TestTraceDisabledByDefault: no Engine.Trace, no ctx span — Result.Trace
// stays nil and execution is untouched.
func TestTraceDisabledByDefault(t *testing.T) {
	e := New(Store{"DBLP": dblp()})
	res, err := e.RunContext(context.Background(), parse(t, coauthorSrc))
	if err != nil {
		t.Fatal(err)
	}
	if res.Trace != nil {
		t.Fatalf("Trace = %v, want nil when tracing is off", res.Trace)
	}
}

// TestTraceSpanTree: Engine.Trace records the whole phase tree with
// truthful counters, and tracing must not change the results.
func TestTraceSpanTree(t *testing.T) {
	plain, err := New(Store{"DBLP": dblp()}).RunContext(context.Background(), parse(t, coauthorSrc))
	if err != nil {
		t.Fatal(err)
	}

	e := New(Store{"DBLP": dblp()})
	e.Trace = true
	e.Workers = 4
	res, err := e.RunContext(context.Background(), parse(t, coauthorSrc))
	if err != nil {
		t.Fatal(err)
	}
	if res.Trace == nil {
		t.Fatal("Result.Trace missing with Engine.Trace set")
	}
	if len(res.Out) != len(plain.Out) {
		t.Fatalf("tracing changed results: %d graphs vs %d", len(res.Out), len(plain.Out))
	}
	for i := range plain.Out {
		if res.Out[i].Signature() != plain.Out[i].Signature() {
			t.Fatalf("tracing changed result %d", i)
		}
	}

	seen := map[string]int{}
	var flwr, selection *obs.Span
	res.Trace.Walk(func(_ int, sp *obs.Span) {
		seen[sp.Name]++
		switch sp.Name {
		case "flwr":
			flwr = sp
		case "selection":
			selection = sp
		}
	})
	for _, name := range []string{"query", "flwr", "compile", "selection", "return-fanout"} {
		if seen[name] == 0 {
			t.Errorf("trace missing %q span; have %v", name, seen)
		}
	}
	if flwr != nil {
		var pat string
		for _, a := range flwr.Attrs() {
			if a.Key == "pattern" {
				pat = a.Val
			}
		}
		if pat != "P" {
			t.Errorf("flwr pattern attr = %q, want P", pat)
		}
	}
	if selection != nil {
		if selection.Count("matches") == 0 {
			t.Error("selection span has zero matches counter")
		}
		if selection.Count("workers") == 0 {
			t.Error("selection span has zero workers counter")
		}
	}
	if res.Trace.Wall() <= 0 {
		t.Error("root span wall time not frozen")
	}
}

// TestExternalRootSpan: a span installed by the caller (the facade's parse
// span pattern) is reused — the engine hangs its phases off it and does NOT
// End it.
func TestExternalRootSpan(t *testing.T) {
	root := obs.NewTrace("caller")
	ctx := obs.NewContext(context.Background(), root)
	e := New(Store{"DBLP": dblp()}) // note: e.Trace left false
	res, err := e.RunContext(ctx, parse(t, coauthorSrc))
	if err != nil {
		t.Fatal(err)
	}
	if res.Trace != root {
		t.Fatal("Result.Trace must be the caller's root span")
	}
	found := false
	root.Walk(func(_ int, sp *obs.Span) { found = found || sp.Name == "flwr" })
	if !found {
		t.Fatal("engine phases not attached to the caller's root")
	}
}

// TestSlowQueryHook: a 1ns threshold reports every query to the hook with
// a truthful statement count and the trace when available.
func TestSlowQueryHook(t *testing.T) {
	e := New(Store{"DBLP": dblp()})
	e.Trace = true
	e.SlowQuery = time.Nanosecond
	var got []obs.SlowQueryRecord
	e.SlowQueryLog = func(r obs.SlowQueryRecord) { got = append(got, r) }
	before := obs.SlowQueries.Value()
	if _, err := e.RunContext(context.Background(), parse(t, coauthorSrc)); err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 {
		t.Fatalf("hook fired %d times, want 1", len(got))
	}
	if got[0].Wall <= 0 || got[0].Statements != 2 || got[0].Trace == nil || got[0].Err != nil {
		t.Fatalf("record = %+v", got[0])
	}
	if obs.SlowQueries.Value() != before+1 {
		t.Fatalf("slow-query counter delta = %d, want 1", obs.SlowQueries.Value()-before)
	}
	// Below threshold: silent.
	e.SlowQuery = time.Hour
	if _, err := e.RunContext(context.Background(), parse(t, coauthorSrc)); err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 {
		t.Fatal("hook fired below threshold")
	}
}

// TestTraceIndexFilterCounters: with a collection index attached, the
// index-filter span carries candidate/pruned counters that add up.
func TestTraceIndexFilterCounters(t *testing.T) {
	coll := dblp()
	e := New(Store{"DBLP": coll})
	e.Trace = true
	e.CollIndex = map[string]*gindex.Index{"DBLP": gindex.Build(coll, 2)}
	res, err := e.RunContext(context.Background(), parse(t, coauthorSrc))
	if err != nil {
		t.Fatal(err)
	}
	var ix *obs.Span
	res.Trace.Walk(func(_ int, sp *obs.Span) {
		if sp.Name == "index-filter" {
			ix = sp
		}
	})
	if ix == nil {
		t.Fatal("no index-filter span with CollIndex set")
	}
	total, cand, pruned := ix.Count("total"), ix.Count("candidates"), ix.Count("pruned")
	if total != int64(len(coll)) || cand+pruned != total {
		t.Fatalf("filter counters total=%d candidates=%d pruned=%d", total, cand, pruned)
	}
}
