// Package shardsrv is the shard-server side of the multi-process read
// path: a small HTTP server that owns a mirror of the document store
// (partitioned and gindex-indexed locally with the same deterministic
// hash as the frontend) and evaluates one shard's slice of a selection
// per request, speaking the store wire protocol (store/wire.go).
//
// Endpoints:
//
//	POST /shard/select  one shard selection job; NDJSON frame response
//	POST /shard/sync    install a document pushed by a frontend (binary
//	                    collection body) after a stale handshake
//	GET  /healthz       liveness + document census for the prober
//	GET  /metrics       Prometheus text dump of the process registry
//
// The version handshake: every select request carries the frontend's
// content hash for the document; the server answers "stale" when its
// mirror hashes differently (or "unknown_doc" when it has no mirror),
// and the frontend converges it through /shard/sync before retrying.
// Responses are always HTTP 200 with in-band error frames, so the client
// needs exactly one answer shape.
package shardsrv

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"net/http"
	"runtime"
	"sync/atomic"
	"time"

	"gqldb/internal/graph"
	"gqldb/internal/match"
	"gqldb/internal/obs"
	"gqldb/internal/store"
)

// Config configures a shard server.
type Config struct {
	// Shards is the partition width of the local mirror. It must equal the
	// frontend's shard count: both sides hash-partition the same canonical
	// collection, and the topology check on every request rejects a
	// mismatch.
	Shards int
	// IndexMaxLen builds per-shard path-feature indexes at install when
	// positive (the same knob as store.Options.IndexMaxLen).
	IndexMaxLen int
	// MaxBody caps request bodies in bytes (select requests and sync
	// pushes). Default 64 MiB — sync carries whole collections.
	MaxBody int64
	// Workers caps the shard-local match fan-out regardless of what the
	// request asks for. Default GOMAXPROCS.
	Workers int
	// PlanCap bounds the local plan cache (entries); 0 uses the cache's
	// default.
	PlanCap int
}

// Server is the shard server: an http.Handler plus the drain machinery.
type Server struct {
	cfg   Config
	store *store.DocStore
	plans *match.PlanCache
	mux   *http.ServeMux

	draining atomic.Bool
	inflight atomic.Int64
}

// New returns a shard server with an empty mirror. Documents arrive via
// RegisterDoc (startup loading) or /shard/sync (frontend pushes).
func New(cfg Config) *Server {
	if cfg.Shards < 1 {
		cfg.Shards = 1
	}
	if cfg.MaxBody <= 0 {
		cfg.MaxBody = 64 << 20
	}
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	s := &Server{
		cfg:   cfg,
		store: store.New(store.Options{Shards: cfg.Shards, IndexMaxLen: cfg.IndexMaxLen}),
		plans: match.NewPlanCache(cfg.PlanCap),
		mux:   http.NewServeMux(),
	}
	s.mux.HandleFunc("POST /shard/select", s.handleSelect)
	s.mux.HandleFunc("POST /shard/sync", s.handleSync)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.Handle("GET /metrics", obs.Handler())
	return s
}

// RegisterDoc installs a document into the mirror (partitioned and
// indexed per the server's config) and returns the mirror's new version.
func (s *Server) RegisterDoc(name string, c graph.Collection) uint64 {
	return s.store.RegisterDoc(name, c)
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

// Inflight returns the number of selection jobs currently running.
func (s *Server) Inflight() int64 { return s.inflight.Load() }

// StartDrain stops admitting selection jobs; /healthz turns 503 so the
// frontend prober marks the endpoint unhealthy.
func (s *Server) StartDrain() { s.draining.Store(true) }

// Drain runs the shutdown sequence: stop admission, let hs stop accepting
// and wait up to grace for in-flight jobs, then force-close.
func (s *Server) Drain(hs *http.Server, grace time.Duration) error {
	s.StartDrain()
	ctx, cancel := context.WithTimeout(context.Background(), grace)
	defer cancel()
	if err := hs.Shutdown(ctx); err != nil {
		hs.Close()
		return err
	}
	return nil
}

// errFrame answers with an in-band error frame (HTTP 200 — the protocol's
// single answer shape).
func errFrame(w http.ResponseWriter, code, msg string, version uint64, hash string) {
	w.Header().Set("Content-Type", "application/x-ndjson")
	_ = store.EncodeFrame(w, &store.WireFrame{
		T: "error", Code: code, Message: msg, Version: version, Hash: hash,
	})
}

// handleSelect evaluates one shard selection job.
func (s *Server) handleSelect(w http.ResponseWriter, r *http.Request) {
	obs.HTTPRequests.Inc()
	if s.draining.Load() {
		errFrame(w, store.WireCodeInternal, "shard server is draining", 0, "")
		return
	}
	s.inflight.Add(1)
	defer s.inflight.Add(-1)
	defer func() {
		// A handler panic becomes an error frame and a log line, never a
		// dead shard server.
		if p := recover(); p != nil {
			buf := make([]byte, 4<<10)
			buf = buf[:runtime.Stack(buf, false)]
			log.Printf("shardsrv: panic serving /shard/select: %v\n%s", p, buf)
			errFrame(w, store.WireCodeInternal, "internal error", 0, "")
		}
	}()

	req, err := store.DecodeRequest(http.MaxBytesReader(w, r.Body, s.cfg.MaxBody))
	if err != nil {
		errFrame(w, store.WireCodeBadRequest, err.Error(), 0, "")
		return
	}
	sn := s.store.Snapshot()
	d, ok := sn.Doc(req.Doc)
	if !ok {
		obs.ShardStaleRejections.Inc()
		errFrame(w, store.WireCodeUnknownDoc,
			fmt.Sprintf("no mirror of document %q", req.Doc), sn.Version(), "")
		return
	}
	if d.ContentHash() != req.Hash {
		// The handshake: the frontend registered a new collection under this
		// name; our mirror predates it. The client resyncs and retries.
		obs.ShardStaleRejections.Inc()
		errFrame(w, store.WireCodeStale,
			fmt.Sprintf("mirror of %q is stale", req.Doc), d.Version(), d.ContentHash())
		return
	}
	if len(d.Shards()) != req.Shards {
		errFrame(w, store.WireCodeTopology,
			fmt.Sprintf("mirror of %q has %d shards, request assumes %d (shard-count config mismatch)",
				req.Doc, len(d.Shards()), req.Shards), d.Version(), d.ContentHash())
		return
	}
	p, err := req.Pattern.Pattern()
	if err != nil {
		errFrame(w, store.WireCodeBadRequest, err.Error(), 0, "")
		return
	}
	opt, err := req.Options.Options()
	if err != nil {
		errFrame(w, store.WireCodeBadRequest, err.Error(), 0, "")
		return
	}
	// The mirror fences its own plan cache on its own copy's document
	// version; the frontend's epoch does not travel, and mutations to other
	// documents leave this document's plans live.
	opt.Plans = s.plans
	opt.PlanEpoch = d.Version()
	workers := req.Workers
	if workers < 1 {
		workers = 1
	}
	if workers > s.cfg.Workers {
		workers = s.cfg.Workers
	}
	obs.ShardSelections.Inc()
	sreq := store.ShardRequest{
		Shard: d.Shards()[req.Shard], P: p, Opt: opt,
		Workers: workers, Doc: d, Index: req.Shard,
	}
	res, err := (store.LocalSelector{}).SelectShard(r.Context(), sreq)
	if err != nil {
		code := store.WireCodeInternal
		if r.Context().Err() != nil {
			code = store.WireCodeCanceled
		}
		errFrame(w, code, err.Error(), d.Version(), d.ContentHash())
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	if err := store.EncodeResult(w, &res, d.Version()); err != nil {
		// The client went away mid-answer; nothing to do but log.
		log.Printf("shardsrv: writing select answer: %v", err)
		return
	}
	if f, ok := w.(http.Flusher); ok {
		f.Flush()
	}
}

// handleSync installs a document pushed by a frontend: the body is the
// binary collection serialization, re-partitioned and re-indexed locally.
func (s *Server) handleSync(w http.ResponseWriter, r *http.Request) {
	obs.HTTPRequests.Inc()
	name := r.URL.Query().Get("doc")
	if name == "" {
		http.Error(w, "missing doc parameter", http.StatusBadRequest)
		return
	}
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, s.cfg.MaxBody))
	if err != nil {
		http.Error(w, "body too large or unreadable", http.StatusRequestEntityTooLarge)
		return
	}
	coll, err := graph.ReadBinary(bytes.NewReader(body))
	if err != nil {
		http.Error(w, "malformed collection: "+err.Error(), http.StatusBadRequest)
		return
	}
	v := s.store.RegisterDoc(name, coll)
	obs.ShardSyncs.Inc()
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(map[string]any{"version": v, "doc": name})
}

// handleHealthz reports liveness and the mirror census (the fields the
// RemoteSelector prober reads).
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	sn := s.store.Snapshot()
	status := "ok"
	code := http.StatusOK
	if s.draining.Load() {
		status = "draining"
		code = http.StatusServiceUnavailable
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(map[string]any{
		"status":        status,
		"docs":          len(sn.Docs()),
		"store_version": sn.Version(),
		"inflight":      s.inflight.Load(),
	})
}
