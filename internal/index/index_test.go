package index

import (
	"math/rand"
	"testing"
	"testing/quick"

	"gqldb/internal/graph"
)

// fig416 builds the database graph G of Figure 4.16: A1-B1, B1-C2, C2-A1,
// A1-C1, B2-C2, B2-A2. (Edges: the triangle A1,B1,C2 plus pendant C1 on A1,
// and path A2-B2-C2.)
func fig416(t testing.TB) *graph.Graph {
	g := graph.New("G")
	add := func(name, label string) graph.NodeID {
		return g.AddNode(name, graph.TupleOf("", "label", label))
	}
	a1 := add("A1", "A")
	a2 := add("A2", "A")
	b1 := add("B1", "B")
	b2 := add("B2", "B")
	c1 := add("C1", "C")
	c2 := add("C2", "C")
	g.AddEdge("", a1, b1, nil)
	g.AddEdge("", b1, c2, nil)
	g.AddEdge("", c2, a1, nil)
	g.AddEdge("", a1, c1, nil)
	g.AddEdge("", b2, c2, nil)
	g.AddEdge("", b2, a2, nil)
	return g
}

func TestLabelIndexLookup(t *testing.T) {
	g := fig416(t)
	ix := BuildLabelIndex(g)
	if got := len(ix.Lookup("A")); got != 2 {
		t.Errorf("Lookup(A) = %d nodes, want 2", got)
	}
	if got := len(ix.Lookup("Z")); got != 0 {
		t.Errorf("Lookup(Z) = %d nodes, want 0", got)
	}
	if ix.Freq("B") != 2 || ix.Freq("Z") != 0 {
		t.Errorf("Freq wrong: B=%d Z=%d", ix.Freq("B"), ix.Freq("Z"))
	}
	if ix.NumNodes() != 6 || ix.NumEdges() != 6 {
		t.Errorf("counts = %d/%d", ix.NumNodes(), ix.NumEdges())
	}
}

func TestEdgeFreq(t *testing.T) {
	g := fig416(t)
	ix := BuildLabelIndex(g)
	if got := ix.EdgeFreq("A", "B"); got != 2 { // A1-B1, B2-A2
		t.Errorf("EdgeFreq(A,B) = %d, want 2", got)
	}
	if got := ix.EdgeFreq("B", "A"); got != 2 { // symmetric
		t.Errorf("EdgeFreq(B,A) = %d, want 2", got)
	}
	if got := ix.EdgeFreq("A", "C"); got != 2 { // C2-A1, A1-C1
		t.Errorf("EdgeFreq(A,C) = %d, want 2", got)
	}
	if got := ix.EdgeFreq("A", "A"); got != 0 {
		t.Errorf("EdgeFreq(A,A) = %d, want 0", got)
	}
}

func TestTopLabels(t *testing.T) {
	g := graph.New("G")
	for i := 0; i < 5; i++ {
		g.AddNode("", graph.TupleOf("", "label", "X"))
	}
	for i := 0; i < 3; i++ {
		g.AddNode("", graph.TupleOf("", "label", "Y"))
	}
	g.AddNode("", graph.TupleOf("", "label", "Z"))
	ix := BuildLabelIndex(g)
	top := ix.TopLabels(2)
	if len(top) != 2 || top[0] != "X" || top[1] != "Y" {
		t.Errorf("TopLabels = %v", top)
	}
	if got := ix.TopLabels(99); len(got) != 3 {
		t.Errorf("TopLabels(99) = %v", got)
	}
}

// TestProfilesFig417 checks the profiles of Figure 4.17: A1->ABBCC? No — the
// chapter lists A1: ABCC, B1: ABC, B2: ABC? Figure 4.17 gives profiles
// A1=ABCC, A2=AB, B1=ABC, B2=ABC (radius 1: B2,A2,C2), C1=AC, C2=ABBC.
func TestProfilesFig417(t *testing.T) {
	g := fig416(t)
	ix := BuildLabelIndex(g)
	nb := BuildNeighborhoods(g, ix.In, 1, true)
	want := map[string]string{
		"A1": "ABCC",
		"A2": "AB",
		"B1": "ABC",
		"B2": "ABC",
		"C1": "AC",
		"C2": "ABBC",
	}
	for name, prof := range want {
		v, _ := g.NodeByName(name)
		got := ""
		for _, l := range nb.Profiles[v] {
			got += ix.In.Name(l)
		}
		if got != prof {
			t.Errorf("profile(%s) = %q, want %q", name, got, prof)
		}
	}
}

func TestProfileContains(t *testing.T) {
	p := func(s string) []int32 {
		out := make([]int32, len(s))
		for i, c := range s {
			out[i] = int32(c)
		}
		return out
	}
	cases := []struct {
		big, small string
		want       bool
	}{
		{"ABCC", "ABC", true},
		{"ABC", "ABCC", false},
		{"ABC", "ABC", true},
		{"ABBC", "ABC", true},
		{"ABC", "ABD", false},
		{"ABC", "", true},
		{"", "A", false},
		{"AABB", "AA", true},
		{"AB", "AA", false},
	}
	for _, c := range cases {
		if got := ProfileContains(p(c.big), p(c.small)); got != c.want {
			t.Errorf("ProfileContains(%q,%q) = %v, want %v", c.big, c.small, got, c.want)
		}
	}
}

// TestSubgraphPruningFig417 reproduces the Figure 4.17 search spaces for the
// triangle pattern A-B-C: by nodes {A1,A2}×{B1,B2}×{C1,C2}; by neighborhood
// subgraphs {A1}×{B1}×{C2}; by profiles {A1}×{B1,B2}×{C2}.
func TestSubgraphPruningFig417(t *testing.T) {
	g := fig416(t)
	ix := BuildLabelIndex(g)
	nb := BuildNeighborhoods(g, ix.In, 1, true)

	// Pattern: triangle A-B-C; its radius-1 neighborhoods are the whole
	// triangle for each node.
	pg := graph.New("P")
	pa := pg.AddNode("a", graph.TupleOf("", "label", "A"))
	pb := pg.AddNode("b", graph.TupleOf("", "label", "B"))
	pc := pg.AddNode("c", graph.TupleOf("", "label", "C"))
	pg.AddEdge("", pa, pb, nil)
	pg.AddEdge("", pb, pc, nil)
	pg.AddEdge("", pc, pa, nil)
	pnb := BuildNeighborhoods(pg, ix.In, 1, true)

	keepSub := map[string][]string{"a": nil, "b": nil, "c": nil}
	keepProf := map[string][]string{"a": nil, "b": nil, "c": nil}
	for pi, pname := range []string{"a", "b", "c"} {
		label := []string{"A", "B", "C"}[pi]
		u, _ := pg.NodeByName(pname)
		for _, v := range ix.Lookup(label) {
			if ProfileContains(nb.Profiles[v], pnb.Profiles[u]) {
				keepProf[pname] = append(keepProf[pname], g.Node(v).Name)
			}
			if SubIsomorphic(pnb.Subs[u], nb.Subs[v]) {
				keepSub[pname] = append(keepSub[pname], g.Node(v).Name)
			}
		}
	}
	wantSub := map[string][]string{"a": {"A1"}, "b": {"B1"}, "c": {"C2"}}
	wantProf := map[string][]string{"a": {"A1"}, "b": {"B1", "B2"}, "c": {"C2"}}
	for k := range wantSub {
		if !sameStrings(keepSub[k], wantSub[k]) {
			t.Errorf("subgraph mates(%s) = %v, want %v", k, keepSub[k], wantSub[k])
		}
		if !sameStrings(keepProf[k], wantProf[k]) {
			t.Errorf("profile mates(%s) = %v, want %v", k, keepProf[k], wantProf[k])
		}
	}
}

func sameStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestRadius2Profiles(t *testing.T) {
	// Path A-B-C: radius-2 profile of A covers all three nodes.
	g := graph.New("G")
	a := g.AddNode("a", graph.TupleOf("", "label", "A"))
	b := g.AddNode("b", graph.TupleOf("", "label", "B"))
	c := g.AddNode("c", graph.TupleOf("", "label", "C"))
	g.AddEdge("", a, b, nil)
	g.AddEdge("", b, c, nil)
	in := NewInterner()
	nb1 := BuildNeighborhoods(g, in, 1, false)
	nb2 := BuildNeighborhoods(g, in, 2, false)
	if len(nb1.Profiles[a]) != 2 {
		t.Errorf("radius-1 profile of a has %d labels, want 2", len(nb1.Profiles[a]))
	}
	if len(nb2.Profiles[a]) != 3 {
		t.Errorf("radius-2 profile of a has %d labels, want 3", len(nb2.Profiles[a]))
	}
}

// Property: profile pruning is implied by subgraph pruning (subgraph test is
// strictly stronger), and both are implied by an actual embedding extension.
func TestSubgraphImpliesProfile(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomLabelled(rng, 12, 20, 3)
		in := NewInterner()
		nb := BuildNeighborhoods(g, in, 1, true)
		// Compare every pair of nodes as (pattern-center, data-center).
		for u := 0; u < g.NumNodes(); u++ {
			for v := 0; v < g.NumNodes(); v++ {
				if SubIsomorphic(nb.Subs[u], nb.Subs[v]) &&
					!ProfileContains(nb.Profiles[v], nb.Profiles[u]) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// Property: every node's neighborhood is sub-isomorphic to itself and its
// profile contains itself (reflexivity).
func TestNeighborhoodReflexive(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	g := randomLabelled(rng, 30, 60, 4)
	in := NewInterner()
	nb := BuildNeighborhoods(g, in, 1, true)
	for v := 0; v < g.NumNodes(); v++ {
		if !SubIsomorphic(nb.Subs[v], nb.Subs[v]) {
			t.Fatalf("node %d: neighborhood not self-sub-isomorphic", v)
		}
		if !ProfileContains(nb.Profiles[v], nb.Profiles[v]) {
			t.Fatalf("node %d: profile does not contain itself", v)
		}
	}
}

func randomLabelled(rng *rand.Rand, n, m, labels int) *graph.Graph {
	g := graph.New("R")
	for i := 0; i < n; i++ {
		g.AddNode("", graph.TupleOf("", "label", string(rune('A'+rng.Intn(labels)))))
	}
	for i := 0; i < m; i++ {
		u, v := rng.Intn(n), rng.Intn(n)
		if u != v {
			g.AddEdge("", graph.NodeID(u), graph.NodeID(v), nil)
		}
	}
	return g
}
