package index

import (
	"sort"

	"gqldb/internal/graph"
)

// NbrSub is the radius-r neighborhood subgraph of one node (Definition
// 4.10): the members within distance r of the center plus all edges among
// them. Member 0 is always the center. Adjacency is a bit matrix so the
// pinned sub-isomorphism test does O(1) edge probes.
type NbrSub struct {
	// Members are the node IDs in the host graph; Members[0] is the center.
	Members []graph.NodeID
	// Labels[i] is the interned label of Members[i].
	Labels []int32
	// adj is a row-major bit matrix: bit j of row i says members i,j are
	// adjacent in the host graph.
	adj    []uint64
	stride int
}

func (s *NbrSub) setAdj(i, j int) {
	s.adj[i*s.stride+j/64] |= 1 << (j % 64)
	s.adj[j*s.stride+i/64] |= 1 << (i % 64)
}

// Adjacent reports whether members i and j are adjacent.
func (s *NbrSub) Adjacent(i, j int) bool {
	return s.adj[i*s.stride+j/64]&(1<<(j%64)) != 0
}

// Size returns the number of members.
func (s *NbrSub) Size() int { return len(s.Members) }

// Neighborhoods stores per-node profiles and (optionally) neighborhood
// subgraphs for one graph at a fixed radius.
type Neighborhoods struct {
	Radius int
	// Profiles[v] is the sorted interned-label sequence of v's
	// neighborhood ("a sequence of the node labels in lexicographic
	// order", §4.2), including v itself.
	Profiles [][]int32
	// Subs[v] is v's neighborhood subgraph; nil when not materialized.
	Subs []*NbrSub
}

// BuildNeighborhoods computes profiles (always) and neighborhood subgraphs
// (when withSubgraphs) for every node of g. Labels are interned through in,
// so data and pattern neighborhoods share one label space.
func BuildNeighborhoods(g *graph.Graph, in *Interner, radius int, withSubgraphs bool) *Neighborhoods {
	n := g.NumNodes()
	nb := &Neighborhoods{
		Radius:   radius,
		Profiles: make([][]int32, n),
	}
	if withSubgraphs {
		nb.Subs = make([]*NbrSub, n)
	}
	labels := make([]int32, n)
	for v := 0; v < n; v++ {
		labels[v] = in.Intern(g.Label(graph.NodeID(v)))
	}
	// Scratch for BFS ball collection.
	seen := make([]int, n)
	for i := range seen {
		seen[i] = -1
	}
	var ball []graph.NodeID
	for v := 0; v < n; v++ {
		ball = collectBall(g, graph.NodeID(v), radius, seen, v, ball[:0])
		prof := make([]int32, len(ball))
		for i, w := range ball {
			prof[i] = labels[w]
		}
		sort.Slice(prof, func(i, j int) bool { return prof[i] < prof[j] })
		nb.Profiles[v] = prof
		if withSubgraphs {
			nb.Subs[v] = buildSub(g, ball, labels)
		}
	}
	return nb
}

// collectBall returns the nodes within radius hops of center (center first),
// using seen (stamped with epoch) as the visited set.
func collectBall(g *graph.Graph, center graph.NodeID, radius int, seen []int, epoch int, ball []graph.NodeID) []graph.NodeID {
	ball = append(ball, center)
	seen[center] = epoch
	frontier := 0
	for d := 0; d < radius; d++ {
		end := len(ball)
		for ; frontier < end; frontier++ {
			v := ball[frontier]
			for _, h := range g.Adj(v) {
				if seen[h.To] != epoch {
					seen[h.To] = epoch
					ball = append(ball, h.To)
				}
			}
			if g.Directed {
				for _, h := range g.InAdj(v) {
					if seen[h.To] != epoch {
						seen[h.To] = epoch
						ball = append(ball, h.To)
					}
				}
			}
		}
	}
	return ball
}

// buildSub materializes the neighborhood subgraph over the given ball.
func buildSub(g *graph.Graph, ball []graph.NodeID, labels []int32) *NbrSub {
	k := len(ball)
	s := &NbrSub{
		Members: append([]graph.NodeID(nil), ball...),
		Labels:  make([]int32, k),
		stride:  (k + 63) / 64,
	}
	s.adj = make([]uint64, k*s.stride)
	pos := make(map[graph.NodeID]int, k)
	for i, v := range ball {
		s.Labels[i] = labels[v]
		pos[v] = i
	}
	for i, v := range ball {
		for _, h := range g.Adj(v) {
			if j, ok := pos[h.To]; ok {
				s.setAdj(i, j)
			}
		}
	}
	return s
}

// ProfileContains reports whether small is a sub-multiset of big; both must
// be sorted. This is the §4.2 profile pruning condition ("whether a profile
// is a subsequence of the other").
func ProfileContains(big, small []int32) bool {
	if len(small) > len(big) {
		return false
	}
	i := 0
	for _, s := range small {
		for i < len(big) && big[i] < s {
			i++
		}
		if i >= len(big) || big[i] != s {
			return false
		}
		i++
	}
	return true
}

// SubIsomorphic reports whether p (a pattern node's neighborhood subgraph)
// is sub-isomorphic to d (a data node's) with the centers pinned to each
// other — the exact local pruning test of §4.2. Exponential in the worst
// case but neighborhoods are small; the profile test should be tried first.
func SubIsomorphic(p, d *NbrSub) bool {
	if p.Size() > d.Size() || p.Labels[0] != d.Labels[0] {
		return false
	}
	// assigned[i] = member of d matched to member i of p; centers pinned.
	assigned := make([]int, p.Size())
	used := make([]bool, d.Size())
	assigned[0] = 0
	used[0] = true
	var rec func(i int) bool
	rec = func(i int) bool {
		if i == p.Size() {
			return true
		}
		for j := 0; j < d.Size(); j++ {
			if used[j] || d.Labels[j] != p.Labels[i] {
				continue
			}
			ok := true
			for k := 0; k < i; k++ {
				if p.Adjacent(i, k) && !d.Adjacent(j, assigned[k]) {
					ok = false
					break
				}
			}
			if !ok {
				continue
			}
			assigned[i] = j
			used[j] = true
			if rec(i + 1) {
				return true
			}
			used[j] = false
		}
		return false
	}
	return rec(1)
}
