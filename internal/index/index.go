// Package index implements the access-method support structures of §4.2 and
// §4.4: a B-tree label index over node attributes, radius-r neighborhood
// subgraphs and their light-weight profiles for local pruning of feasible
// mates, and node/edge label frequency statistics for the search-order cost
// model.
package index

import (
	"sort"

	"gqldb/internal/btree"
	"gqldb/internal/graph"
)

// Interner maps label strings to dense int32 IDs so profiles and frequency
// tables work on integers.
type Interner struct {
	ids   map[string]int32
	names []string
}

// NewInterner returns an empty interner.
func NewInterner() *Interner {
	return &Interner{ids: make(map[string]int32)}
}

// Intern returns the ID for label, allocating one if new.
func (in *Interner) Intern(label string) int32 {
	if id, ok := in.ids[label]; ok {
		return id
	}
	id := int32(len(in.names))
	in.ids[label] = id
	in.names = append(in.names, label)
	return id
}

// Lookup returns the ID for label without allocating; ok is false for labels
// never interned.
func (in *Interner) Lookup(label string) (int32, bool) {
	id, ok := in.ids[label]
	return id, ok
}

// Name returns the label string for an ID.
func (in *Interner) Name(id int32) string { return in.names[id] }

// Len returns the number of distinct labels.
func (in *Interner) Len() int { return len(in.names) }

// LabelIndex indexes the nodes of one graph by their "label" attribute using
// a B-tree, as §4.2 prescribes for selective node attributes; it also keeps
// the label/edge frequency statistics the §4.4 cost model needs.
type LabelIndex struct {
	In   *Interner
	tree btree.Tree[string, []graph.NodeID]
	// nodeLabel[v] is the interned label of node v.
	nodeLabel []int32
	// freq[l] counts nodes with label l.
	freq []int
	// edgeFreq counts edges by unordered label pair.
	edgeFreq map[[2]int32]int
	numNodes int
	numEdges int
}

// BuildLabelIndex scans g once and builds the index and statistics.
func BuildLabelIndex(g *graph.Graph) *LabelIndex {
	ix := &LabelIndex{
		In:        NewInterner(),
		nodeLabel: make([]int32, g.NumNodes()),
		edgeFreq:  make(map[[2]int32]int),
		numNodes:  g.NumNodes(),
		numEdges:  g.NumEdges(),
	}
	for _, n := range g.Nodes() {
		l := g.Label(n.ID)
		id := ix.In.Intern(l)
		ix.nodeLabel[n.ID] = id
		for int(id) >= len(ix.freq) {
			ix.freq = append(ix.freq, 0)
		}
		ix.freq[id]++
		ix.tree.Update(l, func(old []graph.NodeID, _ bool) []graph.NodeID {
			return append(old, n.ID)
		})
	}
	for _, e := range g.Edges() {
		ix.edgeFreq[ix.pairKey(ix.nodeLabel[e.From], ix.nodeLabel[e.To])]++
	}
	return ix
}

func (ix *LabelIndex) pairKey(a, b int32) [2]int32 {
	if a > b {
		a, b = b, a
	}
	return [2]int32{a, b}
}

// Lookup returns the nodes carrying the given label, in ID order. The slice
// is shared and must not be modified.
func (ix *LabelIndex) Lookup(label string) []graph.NodeID {
	v, _ := ix.tree.Get(label)
	return v
}

// NodeLabelID returns the interned label of node v.
func (ix *LabelIndex) NodeLabelID(v graph.NodeID) int32 { return ix.nodeLabel[v] }

// Freq returns how many nodes carry the label.
func (ix *LabelIndex) Freq(label string) int {
	// The interner is shared with pattern-side neighborhoods, so an ID may
	// have been allocated after the index was built; such labels have
	// frequency zero in the data graph.
	id, ok := ix.In.Lookup(label)
	if !ok || int(id) >= len(ix.freq) {
		return 0
	}
	return ix.freq[id]
}

// EdgeFreq returns how many edges join a node labelled a to one labelled b.
func (ix *LabelIndex) EdgeFreq(a, b string) int {
	ia, ok1 := ix.In.Lookup(a)
	ib, ok2 := ix.In.Lookup(b)
	if !ok1 || !ok2 {
		return 0
	}
	return ix.edgeFreq[ix.pairKey(ia, ib)]
}

// NumNodes returns the indexed graph's node count.
func (ix *LabelIndex) NumNodes() int { return ix.numNodes }

// NumEdges returns the indexed graph's edge count.
func (ix *LabelIndex) NumEdges() int { return ix.numEdges }

// TopLabels returns the k most frequent labels, most frequent first; the
// clique workload of §5.1 draws labels from the top 40.
func (ix *LabelIndex) TopLabels(k int) []string {
	type lf struct {
		name string
		n    int
	}
	all := make([]lf, 0, ix.In.Len())
	for id, n := range ix.freq {
		all = append(all, lf{ix.In.Name(int32(id)), n})
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].n != all[j].n {
			return all[i].n > all[j].n
		}
		return all[i].name < all[j].name
	})
	if k > len(all) {
		k = len(all)
	}
	out := make([]string, k)
	for i := 0; i < k; i++ {
		out[i] = all[i].name
	}
	return out
}
