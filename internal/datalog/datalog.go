// Package datalog implements a positive Datalog engine with comparison
// built-ins (semi-naive bottom-up evaluation) and the §3.5 translations
// that place GraphQL inside Datalog (Theorem 4.6): graphs become facts
// (Figure 4.14) and graph patterns become rules (Figure 4.15).
package datalog

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"gqldb/internal/graph"
)

// Term is a variable (Var non-empty) or a constant.
type Term struct {
	Var   string
	Const graph.Value
}

// V returns a variable term.
func V(name string) Term { return Term{Var: name} }

// C returns a constant term.
func C(v graph.Value) Term { return Term{Const: v} }

// CS returns a string-constant term.
func CS(s string) Term { return C(graph.String(s)) }

// IsVar reports whether the term is a variable.
func (t Term) IsVar() bool { return t.Var != "" }

func (t Term) String() string {
	if t.IsVar() {
		return t.Var
	}
	return t.Const.String()
}

// Atom is a predicate applied to terms.
type Atom struct {
	Pred string
	Args []Term
}

func (a Atom) String() string {
	parts := make([]string, len(a.Args))
	for i, t := range a.Args {
		parts[i] = t.String()
	}
	return a.Pred + "(" + strings.Join(parts, ", ") + ")"
}

// CmpOp is a comparison operator for built-ins.
type CmpOp uint8

// Comparison operators.
const (
	Eq CmpOp = iota
	Ne
	Lt
	Le
	Gt
	Ge
)

// Builtin is a comparison between two terms; it can only be evaluated once
// both sides are bound.
type Builtin struct {
	Op   CmpOp
	L, R Term
}

// Rule is Head :- Body, Builtins.
type Rule struct {
	Head     Atom
	Body     []Atom
	Builtins []Builtin
}

func (r Rule) String() string {
	var parts []string
	for _, a := range r.Body {
		parts = append(parts, a.String())
	}
	for _, b := range r.Builtins {
		ops := [...]string{"==", "!=", "<", "<=", ">", ">="}
		parts = append(parts, b.L.String()+" "+ops[b.Op]+" "+b.R.String())
	}
	return r.Head.String() + " :- " + strings.Join(parts, ", ") + "."
}

// DB holds facts grouped by predicate, deduplicated, with lazily-built
// per-argument hash indexes used by the join.
type DB struct {
	facts map[string][][]graph.Value
	seen  map[string]bool
	// index maps (pred, argpos, value-key) to the facts with that value
	// at that position; built on first probe of (pred, argpos) and kept
	// fresh by Assert.
	index   map[string]map[string][][]graph.Value
	indexed map[string]bool
}

// NewDB returns an empty fact database.
func NewDB() *DB {
	return &DB{
		facts:   map[string][][]graph.Value{},
		seen:    map[string]bool{},
		index:   map[string]map[string][][]graph.Value{},
		indexed: map[string]bool{},
	}
}

func posKey(pred string, pos int) string {
	return pred + "\x00" + strconv.Itoa(pos)
}

// probe returns the facts of pred whose argument at pos equals v, building
// the (pred, pos) index on first use.
func (db *DB) probe(pred string, pos int, v graph.Value) [][]graph.Value {
	pk := posKey(pred, pos)
	if !db.indexed[pk] {
		db.indexed[pk] = true
		m := map[string][][]graph.Value{}
		for _, f := range db.facts[pred] {
			if pos < len(f) {
				k := f[pos].String()
				m[k] = append(m[k], f)
			}
		}
		db.index[pk] = m
	}
	return db.index[pk][v.String()]
}

func factKey(pred string, args []graph.Value) string {
	var b strings.Builder
	b.WriteString(pred)
	for _, v := range args {
		b.WriteByte('\x00')
		b.WriteString(v.String())
	}
	return b.String()
}

// Assert adds a ground fact; reports whether it was new.
func (db *DB) Assert(pred string, args ...graph.Value) bool {
	k := factKey(pred, args)
	if db.seen[k] {
		return false
	}
	db.seen[k] = true
	db.facts[pred] = append(db.facts[pred], args)
	// Keep any built indexes fresh.
	for pos := range args {
		pk := posKey(pred, pos)
		if db.indexed[pk] {
			vk := args[pos].String()
			db.index[pk][vk] = append(db.index[pk][vk], args)
		}
	}
	return true
}

// Facts returns the facts for a predicate.
func (db *DB) Facts(pred string) [][]graph.Value { return db.facts[pred] }

// Count returns the number of facts for a predicate.
func (db *DB) Count(pred string) int { return len(db.facts[pred]) }

// binding maps variable names to values.
type binding map[string]graph.Value

// matchAtom extends b to make the atom equal the fact; nil if impossible.
func matchAtom(a Atom, fact []graph.Value, b binding) binding {
	if len(a.Args) != len(fact) {
		return nil
	}
	out := b
	copied := false
	for i, t := range a.Args {
		if !t.IsVar() {
			if !t.Const.Equal(fact[i]) {
				return nil
			}
			continue
		}
		if v, ok := out[t.Var]; ok {
			if !v.Equal(fact[i]) {
				return nil
			}
			continue
		}
		if !copied {
			nb := make(binding, len(out)+1)
			for k, v := range out {
				nb[k] = v
			}
			out = nb
			copied = true
		}
		out[t.Var] = fact[i]
	}
	if !copied && len(a.Args) > 0 {
		// All args were bound/constant: return the original binding.
		return b
	}
	return out
}

func resolve(t Term, b binding) (graph.Value, bool) {
	if !t.IsVar() {
		return t.Const, true
	}
	v, ok := b[t.Var]
	return v, ok
}

func evalBuiltin(bi Builtin, b binding) (bool, error) {
	l, ok1 := resolve(bi.L, b)
	r, ok2 := resolve(bi.R, b)
	if !ok1 || !ok2 {
		return false, fmt.Errorf("datalog: builtin with unbound variable: %v", bi)
	}
	c, err := l.Compare(r)
	if err != nil {
		// Incomparable values: != succeeds, the rest fail.
		return bi.Op == Ne, nil
	}
	switch bi.Op {
	case Eq:
		return c == 0, nil
	case Ne:
		return c != 0, nil
	case Lt:
		return c < 0, nil
	case Le:
		return c <= 0, nil
	case Gt:
		return c > 0, nil
	case Ge:
		return c >= 0, nil
	}
	return false, fmt.Errorf("datalog: unknown builtin op %d", bi.Op)
}

// Eval runs semi-naive bottom-up evaluation of the rules over db until
// fixpoint, asserting derived facts into db. It returns the number of new
// facts derived.
func Eval(db *DB, rules []Rule) (int, error) {
	total := 0
	emitHead := func(r Rule, next map[string][][]graph.Value) func(binding) error {
		return func(b binding) error {
			args := make([]graph.Value, len(r.Head.Args))
			for i, t := range r.Head.Args {
				v, ok := resolve(t, b)
				if !ok {
					return fmt.Errorf("datalog: unbound head variable %s in %v", t.Var, r)
				}
				args[i] = v
			}
			if db.Assert(r.Head.Pred, args...) {
				next[r.Head.Pred] = append(next[r.Head.Pred], args)
				total++
			}
			return nil
		}
	}
	// Round 0: every rule joins once over the full database (deltaIdx -1:
	// no atom restricted). Later rounds are properly semi-naive: at least
	// one body atom ranges over the previous round's new facts.
	delta := map[string][][]graph.Value{}
	for _, r := range rules {
		if err := joinBody(db, r, -1, nil, emitHead(r, delta)); err != nil {
			return total, err
		}
	}
	for round := 1; len(delta) > 0; round++ {
		next := map[string][][]graph.Value{}
		for _, r := range rules {
			for di := range r.Body {
				if len(delta[r.Body[di].Pred]) == 0 {
					continue
				}
				if err := joinBody(db, r, di, delta, emitHead(r, next)); err != nil {
					return total, err
				}
			}
		}
		delta = next
		if round > 1_000_000 {
			return total, fmt.Errorf("datalog: evaluation did not converge")
		}
	}
	return total, nil
}

// joinBody enumerates bindings of the rule body where atom deltaIdx ranges
// over delta facts and the others over the full database. Built-ins are
// evaluated as soon as all their variables are bound, pruning the join
// early (injectivity and attribute comparisons would otherwise only fire
// after the full cross product).
func joinBody(db *DB, r Rule, deltaIdx int, delta map[string][][]graph.Value, emit func(binding) error) error {
	// readyAt[i] lists the built-ins that become fully bound right after
	// body atom i is matched (position -1: no-variable built-ins).
	bound := map[string]bool{}
	readyAt := make([][]Builtin, len(r.Body))
	var immediate []Builtin
	pending := append([]Builtin(nil), r.Builtins...)
	place := func(i int) {
		kept := pending[:0]
		for _, bi := range pending {
			ok := true
			for _, t := range []Term{bi.L, bi.R} {
				if t.IsVar() && !bound[t.Var] {
					ok = false
					break
				}
			}
			if ok {
				if i < 0 {
					immediate = append(immediate, bi)
				} else {
					readyAt[i] = append(readyAt[i], bi)
				}
			} else {
				kept = append(kept, bi)
			}
		}
		pending = kept
	}
	place(-1)
	for i, a := range r.Body {
		for _, t := range a.Args {
			if t.IsVar() {
				bound[t.Var] = true
			}
		}
		place(i)
	}
	if len(pending) > 0 {
		return fmt.Errorf("datalog: builtin with unbound variable in %v", r)
	}
	for _, bi := range immediate {
		ok, err := evalBuiltin(bi, binding{})
		if err != nil {
			return err
		}
		if !ok {
			return nil
		}
	}

	var rec func(i int, b binding) error
	rec = func(i int, b binding) error {
		if i == len(r.Body) {
			return emit(b)
		}
		a := r.Body[i]
		var facts [][]graph.Value
		if i == deltaIdx {
			facts = delta[a.Pred]
		} else {
			// Probe indexes on every constant or bound argument and scan
			// the smallest bucket (the graph constant at position 0 is
			// bound but useless; the node variable buckets are tiny).
			facts = db.facts[a.Pred]
			for pos, t := range a.Args {
				var v graph.Value
				if !t.IsVar() {
					v = t.Const
				} else if bv, ok := b[t.Var]; ok {
					v = bv
				} else {
					continue
				}
				if bucket := db.probe(a.Pred, pos, v); len(bucket) < len(facts) {
					facts = bucket
				}
			}
		}
	nextFact:
		for _, f := range facts {
			nb := matchAtom(a, f, b)
			if nb == nil {
				continue
			}
			for _, bi := range readyAt[i] {
				ok, err := evalBuiltin(bi, nb)
				if err != nil {
					return err
				}
				if !ok {
					continue nextFact
				}
			}
			if err := rec(i+1, nb); err != nil {
				return err
			}
		}
		return nil
	}
	return rec(0, binding{})
}

// Query evaluates a one-off conjunctive query (body atoms + builtins)
// against the database and returns the bindings of the given variables.
func Query(db *DB, body []Atom, builtins []Builtin, vars []string) ([][]graph.Value, error) {
	r := Rule{Head: Atom{Pred: "_q"}, Body: body, Builtins: builtins}
	var out [][]graph.Value
	seen := map[string]bool{}
	err := joinBody(db, r, -1, nil, func(b binding) error {
		row := make([]graph.Value, len(vars))
		for i, v := range vars {
			val, ok := b[v]
			if !ok {
				return fmt.Errorf("datalog: query variable %s unbound", v)
			}
			row[i] = val
		}
		k := factKey("", row)
		if !seen[k] {
			seen[k] = true
			out = append(out, row)
		}
		return nil
	})
	return out, err
}

// SortRows orders result rows lexicographically by String rendering; a test
// helper that makes comparisons deterministic.
func SortRows(rows [][]graph.Value) {
	sort.Slice(rows, func(i, j int) bool {
		return factKey("", rows[i]) < factKey("", rows[j])
	})
}
