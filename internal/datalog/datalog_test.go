package datalog

import (
	"math/rand"
	"testing"

	"gqldb/internal/expr"
	"gqldb/internal/graph"
	"gqldb/internal/match"
	"gqldb/internal/pattern"
)

func TestAssertDedup(t *testing.T) {
	db := NewDB()
	if !db.Assert("p", graph.Int(1)) {
		t.Error("first assert should be new")
	}
	if db.Assert("p", graph.Int(1)) {
		t.Error("duplicate assert should not be new")
	}
	if db.Count("p") != 1 {
		t.Errorf("Count = %d", db.Count("p"))
	}
}

// TestTransitiveClosure exercises recursion: path(X,Y) :- edge(X,Y);
// path(X,Z) :- path(X,Y), edge(Y,Z).
func TestTransitiveClosure(t *testing.T) {
	db := NewDB()
	chain := []int64{1, 2, 3, 4, 5}
	for i := 0; i+1 < len(chain); i++ {
		db.Assert("e", graph.Int(chain[i]), graph.Int(chain[i+1]))
	}
	rules := []Rule{
		{Head: Atom{Pred: "path", Args: []Term{V("X"), V("Y")}},
			Body: []Atom{{Pred: "e", Args: []Term{V("X"), V("Y")}}}},
		{Head: Atom{Pred: "path", Args: []Term{V("X"), V("Z")}},
			Body: []Atom{
				{Pred: "path", Args: []Term{V("X"), V("Y")}},
				{Pred: "e", Args: []Term{V("Y"), V("Z")}},
			}},
	}
	n, err := Eval(db, rules)
	if err != nil {
		t.Fatal(err)
	}
	// Paths: all ordered pairs i<j over 5 nodes = 10.
	if db.Count("path") != 10 {
		t.Errorf("paths = %d, want 10 (derived %d)", db.Count("path"), n)
	}
}

func TestBuiltins(t *testing.T) {
	db := NewDB()
	db.Assert("n", graph.Int(1))
	db.Assert("n", graph.Int(5))
	db.Assert("n", graph.Int(9))
	rules := []Rule{{
		Head:     Atom{Pred: "big", Args: []Term{V("X")}},
		Body:     []Atom{{Pred: "n", Args: []Term{V("X")}}},
		Builtins: []Builtin{{Op: Gt, L: V("X"), R: C(graph.Int(4))}},
	}}
	if _, err := Eval(db, rules); err != nil {
		t.Fatal(err)
	}
	if db.Count("big") != 2 {
		t.Errorf("big = %d, want 2", db.Count("big"))
	}
}

func TestQueryJoin(t *testing.T) {
	db := NewDB()
	db.Assert("parent", graph.String("a"), graph.String("b"))
	db.Assert("parent", graph.String("b"), graph.String("c"))
	rows, err := Query(db,
		[]Atom{
			{Pred: "parent", Args: []Term{V("X"), V("Y")}},
			{Pred: "parent", Args: []Term{V("Y"), V("Z")}},
		}, nil, []string{"X", "Z"})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 || rows[0][0].AsString() != "a" || rows[0][1].AsString() != "c" {
		t.Errorf("grandparents = %v", rows)
	}
}

// fig414 checks the translation of Figure 4.14.
func TestGraphToFactsFig414(t *testing.T) {
	g := graph.New("G")
	g.Attrs = graph.TupleOf("", "attr1", "value1")
	v1 := g.AddNode("v1", nil)
	v2 := g.AddNode("v2", nil)
	g.AddNode("v3", nil)
	g.AddEdge("e1", v1, v2, nil)
	db := NewDB()
	GraphToFacts(db, g)
	if db.Count("graph") != 1 {
		t.Errorf("graph facts = %d", db.Count("graph"))
	}
	if db.Count("node") != 3 {
		t.Errorf("node facts = %d", db.Count("node"))
	}
	// Undirected edge written twice with permuted endpoints.
	if db.Count("edge") != 2 {
		t.Errorf("edge facts = %d, want 2", db.Count("edge"))
	}
	if db.Count("attribute") != 1 {
		t.Errorf("attribute facts = %d", db.Count("attribute"))
	}
}

func TestDirectedGraphFactsNotDoubled(t *testing.T) {
	g := graph.NewDirected("D")
	a := g.AddNode("a", nil)
	b := g.AddNode("b", nil)
	g.AddEdge("e", a, b, nil)
	db := NewDB()
	GraphToFacts(db, g)
	if db.Count("edge") != 1 {
		t.Errorf("directed edge facts = %d, want 1", db.Count("edge"))
	}
}

// patternMatchesViaDatalog translates the pattern to a rule, evaluates, and
// counts Pattern facts for the graph.
func patternMatchesViaDatalog(t *testing.T, p *pattern.Pattern, g *graph.Graph) int {
	t.Helper()
	db := NewDB()
	GraphToFacts(db, g)
	r, err := PatternToRule(p, "Pattern")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Eval(db, []Rule{r}); err != nil {
		t.Fatal(err)
	}
	return db.Count("Pattern")
}

// TestPatternRuleFig415: a pattern with an attribute comparison translates
// and matches per Figure 4.15.
func TestPatternRuleFig415(t *testing.T) {
	g := graph.New("G")
	g.Attrs = graph.TupleOf("", "attr1", 10)
	v2 := g.AddNode("v2", nil)
	v3 := g.AddNode("v3", nil)
	g.AddEdge("e1", v3, v2, nil)

	p := pattern.New("P")
	a := p.AddNode("v2", nil, nil)
	b := p.AddNode("v3", nil, nil)
	p.AddEdge("e1", b, a, nil, nil)
	p.Where(expr.Binary{Op: expr.OpGt,
		L: expr.Name{Parts: []string{"P", "attr1"}},
		R: expr.Lit{Val: graph.Int(5)}})
	_ = a
	_ = b
	if got := patternMatchesViaDatalog(t, p, g); got == 0 {
		t.Error("pattern should match via Datalog")
	}
	// Tighten the predicate so it fails.
	p2 := pattern.New("P")
	a2 := p2.AddNode("v2", nil, nil)
	b2 := p2.AddNode("v3", nil, nil)
	p2.AddEdge("e1", b2, a2, nil, nil)
	p2.Where(expr.Binary{Op: expr.OpGt,
		L: expr.Name{Parts: []string{"P", "attr1"}},
		R: expr.Lit{Val: graph.Int(50)}})
	if got := patternMatchesViaDatalog(t, p2, g); got != 0 {
		t.Error("pattern should not match with attr1 > 50")
	}
}

// TestTheorem46 cross-validates the Datalog translation against the native
// matcher on random labelled graphs: a pattern matches iff its rule
// derives, and the number of Pattern facts equals the number of exhaustive
// mappings (head args enumerate the node bindings).
func TestTheorem46(t *testing.T) {
	rng := rand.New(rand.NewSource(46))
	for trial := 0; trial < 25; trial++ {
		g := graph.New("G")
		n := 6 + rng.Intn(5)
		for i := 0; i < n; i++ {
			g.AddNode("", graph.TupleOf("", "label", string(rune('A'+rng.Intn(3)))))
		}
		for i := 0; i < 2*n; i++ {
			u, v := rng.Intn(n), rng.Intn(n)
			if u != v && !g.HasEdgeBetween(graph.NodeID(u), graph.NodeID(v)) {
				g.AddEdge("", graph.NodeID(u), graph.NodeID(v), nil)
			}
		}
		p := pattern.New("P")
		k := 2 + rng.Intn(2)
		var ids []graph.NodeID
		for i := 0; i < k; i++ {
			ids = append(ids, p.LabelNode("", string(rune('A'+rng.Intn(3)))))
		}
		for i := 1; i < k; i++ {
			p.AddEdge("", ids[rng.Intn(i)], ids[i], nil, nil)
		}
		native, _, err := match.Find(p, g, nil, match.Options{Exhaustive: true})
		if err != nil {
			t.Fatal(err)
		}
		if got := patternMatchesViaDatalog(t, p, g); got != len(native) {
			t.Fatalf("trial %d: datalog derives %d, native finds %d\npattern %s\ngraph %s",
				trial, got, len(native), p, g)
		}
	}
}

func TestPatternRuleUnsupported(t *testing.T) {
	p := pattern.New("P")
	p.AddNode("v1", nil, expr.Binary{Op: expr.OpOr,
		L: expr.Binary{Op: expr.OpEq, L: expr.Name{Parts: []string{"x"}}, R: expr.Lit{Val: graph.Int(1)}},
		R: expr.Binary{Op: expr.OpEq, L: expr.Name{Parts: []string{"x"}}, R: expr.Lit{Val: graph.Int(2)}},
	})
	if _, err := PatternToRule(p, "Q"); err == nil {
		t.Error("disjunctive predicate should be rejected")
	}
}

func TestRuleString(t *testing.T) {
	r := Rule{
		Head:     Atom{Pred: "q", Args: []Term{V("X")}},
		Body:     []Atom{{Pred: "p", Args: []Term{V("X"), CS("a")}}},
		Builtins: []Builtin{{Op: Ne, L: V("X"), R: C(graph.Int(0))}},
	}
	want := `q(X) :- p(X, "a"), X != 0.`
	if r.String() != want {
		t.Errorf("String = %s, want %s", r.String(), want)
	}
}
