package datalog

import (
	"fmt"

	"gqldb/internal/expr"
	"gqldb/internal/graph"
	"gqldb/internal/pattern"
)

// GraphToFacts translates a graph into facts per Figure 4.14: each variable
// becomes a unique constant string qualified by the graph name, and
// undirected edges are written twice with permuted end points. Attributes
// become attribute(owner, name, value) facts for the graph and
// nattr/eattr(owner, name, value) facts for nodes and edges; tags become
// tag(owner, tag) facts.
func GraphToFacts(db *DB, g *graph.Graph) {
	gc := graph.String(g.Name)
	db.Assert("graph", gc)
	if g.Attrs != nil {
		if g.Attrs.Tag != "" {
			db.Assert("tag", gc, graph.String(g.Attrs.Tag))
		}
		for i := 0; i < g.Attrs.Len(); i++ {
			a := g.Attrs.At(i)
			db.Assert("attribute", gc, graph.String(a.Name), a.Val)
		}
	}
	for _, n := range g.Nodes() {
		nc := graph.String(g.Name + "." + n.Name)
		db.Assert("node", gc, nc)
		if n.Attrs != nil {
			if n.Attrs.Tag != "" {
				db.Assert("tag", nc, graph.String(n.Attrs.Tag))
			}
			for i := 0; i < n.Attrs.Len(); i++ {
				a := n.Attrs.At(i)
				db.Assert("nattr", nc, graph.String(a.Name), a.Val)
			}
		}
	}
	for _, e := range g.Edges() {
		ec := graph.String(g.Name + "." + e.Name)
		from := graph.String(g.Name + "." + g.Node(e.From).Name)
		to := graph.String(g.Name + "." + g.Node(e.To).Name)
		db.Assert("edge", gc, ec, from, to)
		if !g.Directed {
			db.Assert("edge", gc, ec, to, from)
		}
		if e.Attrs != nil {
			for i := 0; i < e.Attrs.Len(); i++ {
				a := e.Attrs.At(i)
				db.Assert("eattr", ec, graph.String(a.Name), a.Val)
			}
		}
	}
}

// PatternToRule translates a compiled graph pattern into a Datalog rule per
// Figure 4.15, extended with the injectivity constraints of Definition 4.2
// (Vi != Vj for distinct pattern nodes) and with node/edge predicate
// translation. The head is Pattern(G, V1, ..., Vk).
//
// Supported predicates are conjunctions of comparisons between an attribute
// name and a literal (pushed-down node/edge predicates) and between two
// node attributes (residual global conjuncts); anything else returns an
// error — such patterns exceed the fragment translated in §3.5's proof
// sketch.
func PatternToRule(p *pattern.Pattern, headPred string) (Rule, error) {
	if err := p.Compile(); err != nil {
		return Rule{}, err
	}
	m := p.Motif
	r := Rule{Head: Atom{Pred: headPred}}
	gv := V("G")
	r.Head.Args = append(r.Head.Args, gv)
	r.Body = append(r.Body, Atom{Pred: "graph", Args: []Term{gv}})

	nodeVar := make([]Term, m.NumNodes())
	fresh := 0
	freshVar := func(prefix string) Term {
		fresh++
		return V(fmt.Sprintf("_%s%d", prefix, fresh))
	}
	for _, n := range m.Nodes() {
		nodeVar[n.ID] = V("V_" + n.Name)
		r.Head.Args = append(r.Head.Args, nodeVar[n.ID])
	}
	// Injectivity: all pairs distinct. The engine applies each builtin as
	// soon as both variables bind.
	for i := 0; i < m.NumNodes(); i++ {
		for j := i + 1; j < m.NumNodes(); j++ {
			r.Builtins = append(r.Builtins, Builtin{Op: Ne, L: nodeVar[i], R: nodeVar[j]})
		}
	}
	// Interleave: each node atom is followed by its attribute constraints,
	// and every edge is emitted as soon as both endpoints are bound, so
	// the left-to-right join never materializes an unconstrained node
	// cross product.
	emittedEdge := make([]bool, m.NumEdges())
	for _, n := range m.Nodes() {
		v := nodeVar[n.ID]
		r.Body = append(r.Body, Atom{Pred: "node", Args: []Term{gv, v}})
		if tag := p.NodeTag[n.ID]; tag != "" {
			r.Body = append(r.Body, Atom{Pred: "tag", Args: []Term{v, CS(tag)}})
		}
		if err := addAttrPred(&r, "nattr", v, p.NodePred[n.ID], freshVar); err != nil {
			return Rule{}, err
		}
		for _, e := range m.Edges() {
			if emittedEdge[e.ID] || e.From > n.ID || e.To > n.ID {
				continue
			}
			emittedEdge[e.ID] = true
			ev := V("E_" + e.Name)
			r.Body = append(r.Body, Atom{Pred: "edge", Args: []Term{gv, ev, nodeVar[e.From], nodeVar[e.To]}})
			if err := addAttrPred(&r, "eattr", ev, p.EdgePred[e.ID], freshVar); err != nil {
				return Rule{}, err
			}
		}
	}
	// Residual global conjuncts: node-attr vs node-attr or graph-attr vs
	// literal comparisons.
	for _, c := range expr.Conjuncts(p.Global) {
		if err := addGlobalConjunct(&r, p, c, gv, nodeVar, freshVar); err != nil {
			return Rule{}, err
		}
	}
	return r, nil
}

func cmpOpOf(op expr.Op) (CmpOp, bool) {
	switch op {
	case expr.OpEq:
		return Eq, true
	case expr.OpNe:
		return Ne, true
	case expr.OpLt:
		return Lt, true
	case expr.OpLe:
		return Le, true
	case expr.OpGt:
		return Gt, true
	case expr.OpGe:
		return Ge, true
	}
	return 0, false
}

// addAttrPred translates a pushed-down element predicate (conjunction of
// `attr <op> literal` comparisons) into attribute atoms plus builtins.
func addAttrPred(r *Rule, attrPred string, owner Term, e expr.Expr, freshVar func(string) Term) error {
	for _, c := range expr.Conjuncts(e) {
		b, ok := c.(expr.Binary)
		if !ok {
			return fmt.Errorf("datalog: unsupported predicate %s", c)
		}
		op, okOp := cmpOpOf(b.Op)
		nm, okL := b.L.(expr.Name)
		lit, okR := b.R.(expr.Lit)
		if !okL || !okR {
			// literal <op> name: flip.
			nm, okL = b.R.(expr.Name)
			lit, okR = b.L.(expr.Lit)
			op = flip(op)
		}
		if !okOp || !okL || !okR || len(nm.Parts) != 1 {
			return fmt.Errorf("datalog: unsupported predicate %s", c)
		}
		tv := freshVar("t")
		r.Body = append(r.Body, Atom{Pred: attrPred, Args: []Term{owner, CS(nm.Parts[0]), tv}})
		r.Builtins = append(r.Builtins, Builtin{Op: op, L: tv, R: C(lit.Val)})
	}
	return nil
}

func flip(op CmpOp) CmpOp {
	switch op {
	case Lt:
		return Gt
	case Le:
		return Ge
	case Gt:
		return Lt
	case Ge:
		return Le
	}
	return op
}

// addGlobalConjunct translates a residual conjunct: either
// node1.attr <op> node2.attr or graphattr <op> literal.
func addGlobalConjunct(r *Rule, p *pattern.Pattern, c expr.Expr, gv Term, nodeVar []Term, freshVar func(string) Term) error {
	b, ok := c.(expr.Binary)
	if !ok {
		return fmt.Errorf("datalog: unsupported global predicate %s", c)
	}
	op, okOp := cmpOpOf(b.Op)
	if !okOp {
		return fmt.Errorf("datalog: unsupported global predicate %s", c)
	}
	side := func(e expr.Expr) (Term, error) {
		switch x := e.(type) {
		case expr.Lit:
			return C(x.Val), nil
		case expr.Name:
			parts := x.Parts
			if len(parts) >= 2 && p.Name != "" && parts[0] == p.Name {
				parts = parts[1:]
			}
			if len(parts) == 2 {
				if u, okN := p.Motif.NodeByName(parts[0]); okN {
					tv := freshVar("g")
					r.Body = append(r.Body, Atom{Pred: "nattr", Args: []Term{nodeVar[u], CS(parts[1]), tv}})
					return tv, nil
				}
			}
			if len(parts) == 1 {
				tv := freshVar("g")
				r.Body = append(r.Body, Atom{Pred: "attribute", Args: []Term{gv, CS(parts[0]), tv}})
				return tv, nil
			}
			return Term{}, fmt.Errorf("datalog: unsupported name %s", x)
		}
		return Term{}, fmt.Errorf("datalog: unsupported operand %s", e)
	}
	l, err := side(b.L)
	if err != nil {
		return err
	}
	rr, err := side(b.R)
	if err != nil {
		return err
	}
	r.Builtins = append(r.Builtins, Builtin{Op: op, L: l, R: rr})
	return nil
}
