package figures

import (
	"context"
	"fmt"
	"runtime"
	"time"

	"gqldb/internal/algebra"
	"gqldb/internal/match"
	"gqldb/internal/stats"
	"gqldb/internal/store"
)

// ShardedSpeedup measures the storage layer's coordinator fan-out against
// the serial unsharded scan on the collection workload: mean wall time per
// σ_P run at several shard counts, all at GOMAXPROCS workers, plus the
// serial baseline. The coordinator's merge is canonical-ordinal addressed,
// so output is byte-identical at every row and the table isolates the pure
// partitioning speedup (and its overhead at shard counts far above the
// core count).
func (r *Runner) ShardedSpeedup() (*stats.Table, error) {
	c, p, err := r.parallelWorkload()
	if err != nil {
		return nil, err
	}
	if err := p.Compile(); err != nil {
		return nil, err
	}
	opt := match.Options{Exhaustive: true, Limit: r.Cfg.HitLimit}
	workers := runtime.GOMAXPROCS(0)

	const reps = 3
	t := &stats.Table{
		Title:   "Sharded selection: wall time (ms) and speedup vs serial scan, collection workload",
		Headers: []string{"layout", "selection_ms", "speedup"},
	}

	var serial float64
	{
		var agg stats.Agg
		for rep := 0; rep < reps; rep++ {
			start := time.Now()
			if _, err := algebra.SelectionContext(context.Background(), p, c, opt, nil, 1, nil); err != nil {
				return nil, err
			}
			agg.Add(ms(time.Since(start)))
		}
		serial = agg.Mean()
		r.logf("sharded serial: selection %.2fms", serial)
		t.AddRow("serial (unsharded)", stats.FmtMs(serial), "1.00x")
	}

	for _, shards := range []int{1, 4, 8, 16} {
		s := store.New(store.Options{Shards: shards})
		s.RegisterDoc("db", c)
		d, ok := s.Snapshot().Doc("db")
		if !ok {
			return nil, fmt.Errorf("figures: sharded workload document missing")
		}
		co := &store.Coordinator{}
		var agg stats.Agg
		for rep := 0; rep < reps; rep++ {
			st := &match.Stats{}
			start := time.Now()
			if _, err := co.Select(context.Background(), d, p, opt, nil, workers, st); err != nil {
				return nil, err
			}
			agg.Add(ms(time.Since(start)))
		}
		mean := agg.Mean()
		r.logf("sharded shards=%d workers=%d: selection %.2fms", shards, workers, mean)
		t.AddRow(fmt.Sprintf("shards=%d workers=%d", shards, workers),
			stats.FmtMs(mean), fmt.Sprintf("%.2fx", serial/mean))
	}
	return t, nil
}
