package figures

import (
	"context"
	"fmt"
	"math/rand"
	"runtime"
	"time"

	"gqldb/internal/algebra"
	"gqldb/internal/gen"
	"gqldb/internal/graph"
	"gqldb/internal/match"
	"gqldb/internal/pattern"
	"gqldb/internal/stats"
)

// parallelWorkload builds the collection-of-small-graphs workload for the
// parallel-operator study: the §4 "collections of small graphs" database
// category, where per-member work (one selection per graph, one merge per
// product pair) is the unit the worker pool fans out over.
func (r *Runner) parallelWorkload() (graph.Collection, *pattern.Pattern, error) {
	count := 4 * r.Cfg.SynPerSize
	nodes := r.Cfg.SynN / 25
	if nodes < 40 {
		nodes = 40
	}
	var c graph.Collection
	for i := 0; i < count; i++ {
		c = append(c, gen.ER(nodes, 3*nodes, 4, r.Cfg.Seed+40+int64(i)))
	}
	rng := rand.New(rand.NewSource(r.Cfg.Seed + 41))
	for tries := 0; tries < 100; tries++ {
		if p := gen.SubgraphQuery(c[0], 4, rng); p != nil {
			return c, p, nil
		}
	}
	return nil, nil, fmt.Errorf("figures: could not sample a parallel-workload query")
}

// ParallelSpeedup measures the context-aware parallel operators against
// their serial (workers=1) counterparts on the collection workload: mean
// wall time per run for selection over the collection and for the
// Cartesian product of its halves, at 1, 2, 4 and GOMAXPROCS workers.
// Output is byte-identical at every setting (the worker pool preserves
// order), so the table isolates pure fan-out speedup.
func (r *Runner) ParallelSpeedup() (*stats.Table, error) {
	c, p, err := r.parallelWorkload()
	if err != nil {
		return nil, err
	}
	opt := match.Options{Exhaustive: true, Limit: r.Cfg.HitLimit}
	half := len(c) / 2
	left, right := c[:half], c[half:]

	const reps = 3
	type row struct {
		label   string
		workers int
	}
	rows := []row{
		{"1", 1},
		{"2", 2},
		{"4", 4},
		{fmt.Sprintf("gomaxprocs(%d)", runtime.GOMAXPROCS(0)), 0},
	}

	t := &stats.Table{
		Title:   "Parallel operators: wall time (ms) and speedup vs serial, collection workload",
		Headers: []string{"workers", "selection_ms", "selection_speedup", "product_ms", "product_speedup"},
	}
	var selSerial, prodSerial float64
	for _, rw := range rows {
		var selAgg, prodAgg stats.Agg
		for rep := 0; rep < reps; rep++ {
			var st match.Stats
			start := time.Now()
			if _, err := algebra.SelectionContext(context.Background(), p, c, opt, nil, rw.workers, &st); err != nil {
				return nil, err
			}
			selAgg.Add(ms(time.Since(start)))
			start = time.Now()
			if _, err := algebra.CartesianProductContext(context.Background(), left, right, rw.workers, &st); err != nil {
				return nil, err
			}
			prodAgg.Add(ms(time.Since(start)))
		}
		sel, prod := selAgg.Mean(), prodAgg.Mean()
		if rw.workers == 1 {
			selSerial, prodSerial = sel, prod
		}
		r.logf("parallel workers=%s: selection %.2fms, product %.2fms", rw.label, sel, prod)
		t.AddRow(rw.label, stats.FmtMs(sel), fmt.Sprintf("%.2fx", selSerial/sel),
			stats.FmtMs(prod), fmt.Sprintf("%.2fx", prodSerial/prod))
	}
	return t, nil
}
