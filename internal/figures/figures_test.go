package figures

import (
	"math"
	"strconv"
	"strings"
	"testing"

	"gqldb/internal/stats"
)

// quickRunner shares one scaled-down runner across tests (datasets and
// measurements are cached inside).
var quickRunner = NewRunner(Quick())

// parseLog parses a "1e-3.4" cell back into -3.4.
func parseLog(t *testing.T, cell string) float64 {
	t.Helper()
	if cell == "n/a" {
		return math.NaN()
	}
	if !strings.HasPrefix(cell, "1e") {
		t.Fatalf("bad log cell %q", cell)
	}
	v, err := strconv.ParseFloat(cell[2:], 64)
	if err != nil {
		t.Fatalf("bad log cell %q: %v", cell, err)
	}
	return v
}

func parseMs(t *testing.T, cell string) float64 {
	t.Helper()
	if cell == "n/a" {
		return math.NaN()
	}
	v, err := strconv.ParseFloat(cell, 64)
	if err != nil {
		t.Fatalf("bad ms cell %q: %v", cell, err)
	}
	return v
}

func TestFig420Shapes(t *testing.T) {
	for _, bucket := range []stats.Bucket{stats.BucketLow, stats.BucketHigh} {
		tb, err := quickRunner.Fig420(bucket)
		if err != nil {
			t.Fatal(err)
		}
		if len(tb.Rows) == 0 {
			t.Fatalf("Fig 4.20 empty for bucket %v", bucket)
		}
		for _, row := range tb.Rows {
			prof := parseLog(t, row[2])
			sub := parseLog(t, row[3])
			ref := parseLog(t, row[4])
			// All pruning must reduce or keep the space: ratio <= 1.
			if prof > 1e-9 || sub > 1e-9 || ref > 1e-9 {
				t.Errorf("size %s: ratios must be <= 1: prof=%v sub=%v ref=%v", row[0], prof, sub, ref)
			}
			// Paper shape (clique queries): refinement always reduces the
			// profile-retrieved space, and subgraph retrieval gives the
			// smallest space (the neighborhood of a clique node is the
			// whole clique).
			if !(ref <= prof+1e-9) {
				t.Errorf("size %s: refined (%v) should be <= profiles (%v)", row[0], ref, prof)
			}
			if !(sub <= prof+1e-9) {
				t.Errorf("size %s: subgraphs (%v) should be <= profiles (%v) on cliques", row[0], sub, prof)
			}
		}
	}
}

func TestFig421Shapes(t *testing.T) {
	ta, err := quickRunner.Fig421a()
	if err != nil {
		t.Fatal(err)
	}
	if len(ta.Rows) == 0 {
		t.Fatal("Fig 4.21(a) empty")
	}
	// Shape: retrieval by subgraphs costs more than retrieval by profiles.
	// Summed over sizes, with a generous margin: at quick scale the two
	// are fractions of a millisecond apart and scheduler noise (e.g. a
	// concurrent benchmark on a single-core machine) can invert them
	// slightly; only a substantial inversion is a real shape violation.
	var prof, sub float64
	for _, row := range ta.Rows {
		prof += parseMs(t, row[1])
		sub += parseMs(t, row[2])
	}
	if sub < 0.6*prof {
		t.Errorf("subgraph retrieval (%v ms) should not be substantially cheaper than profile retrieval (%v ms)", sub, prof)
	}

	tb, err := quickRunner.Fig421b()
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) == 0 {
		t.Fatal("Fig 4.21(b) empty")
	}
	// Shape: summed over clique sizes >= 4 (where the join count starts to
	// bite and times are above timer noise), SQL is slower than Optimized.
	var sumOpt, sumSQL float64
	for _, row := range tb.Rows {
		size, _ := strconv.Atoi(row[0])
		opt := parseMs(t, row[1])
		sql := parseMs(t, row[3])
		if size >= 4 && !math.IsNaN(sql) {
			sumOpt += opt
			sumSQL += sql
		}
	}
	if sumSQL > 0 && sumSQL < sumOpt {
		t.Errorf("SQL (%v ms) unexpectedly faster than optimized (%v ms) over clique sizes >= 4", sumSQL, sumOpt)
	}
}

func TestFig422And423a(t *testing.T) {
	ta, err := quickRunner.Fig422a()
	if err != nil {
		t.Fatal(err)
	}
	if len(ta.Rows) == 0 {
		t.Fatal("Fig 4.22(a) empty")
	}
	for _, row := range ta.Rows {
		prof := parseLog(t, row[2])
		ref := parseLog(t, row[4])
		// Paper shape on sparse synthetic queries: the refined space is
		// the smallest (unlike cliques, it beats subgraph retrieval).
		if !(ref <= prof+1e-9) {
			t.Errorf("size %s: refined (%v) should be <= profiles (%v)", row[0], ref, prof)
		}
	}
	if _, err := quickRunner.Fig422b(); err != nil {
		t.Fatal(err)
	}
	tc, err := quickRunner.Fig423a()
	if err != nil {
		t.Fatal(err)
	}
	// The paper's shape: SQL is competitive on small queries ("it scales
	// to large graphs with small queries") but not on large ones; compare
	// summed times over query sizes >= 8.
	var sumOpt, sumSQL float64
	for _, row := range tc.Rows {
		size, _ := strconv.Atoi(row[0])
		opt := parseMs(t, row[1])
		sql := parseMs(t, row[3])
		if size >= 8 && !math.IsNaN(sql) {
			sumOpt += opt
			sumSQL += sql
		}
	}
	if sumSQL > 0 && sumSQL < sumOpt {
		t.Errorf("SQL (%v ms) unexpectedly faster than optimized (%v ms) over query sizes >= 8", sumSQL, sumOpt)
	}
}

func TestFig423bSweep(t *testing.T) {
	tb, err := quickRunner.Fig423b()
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != len(quickRunner.Cfg.SweepSizes) {
		t.Fatalf("sweep rows = %d, want %d", len(tb.Rows), len(quickRunner.Cfg.SweepSizes))
	}
}

func TestAblations(t *testing.T) {
	ta, err := quickRunner.AblationOrder()
	if err != nil {
		t.Fatal(err)
	}
	if len(ta.Rows) == 0 {
		t.Fatal("order ablation empty")
	}
	tb, err := quickRunner.AblationRefineLevel()
	if err != nil {
		t.Fatal(err)
	}
	// Deeper refinement never grows the space.
	prev := math.Inf(1)
	for _, row := range tb.Rows {
		v := parseLog(t, row[1])
		if v > prev+1e-9 {
			t.Errorf("refinement level %s grew the space: %v > %v", row[0], v, prev)
		}
		prev = v
	}
}

func TestAblationRadius(t *testing.T) {
	// The directional effect of a larger radius depends on the pattern's
	// diameter (for diameter-1 cliques the data-side ball grows but the
	// pattern ball cannot, weakening the test), so the ablation only
	// reports the numbers. What must hold is soundness: the table builds
	// without error and every cell parses.
	tb, err := quickRunner.AblationRadius()
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) == 0 {
		t.Fatal("radius ablation empty")
	}
	for _, row := range tb.Rows {
		parseLog(t, row[1])
		parseLog(t, row[2])
		parseMs(t, row[3])
		parseMs(t, row[4])
	}
}

func TestAblationAdjacency(t *testing.T) {
	tb, err := quickRunner.AblationAdjacency()
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) == 0 {
		t.Fatal("adjacency ablation empty")
	}
	for _, row := range tb.Rows {
		parseMs(t, row[1])
		parseMs(t, row[2])
	}
}

func TestParallelSpeedup(t *testing.T) {
	// Speedup numbers depend on the host, so the test only asserts
	// soundness: four rows (1, 2, 4, GOMAXPROCS workers), every cell
	// parses, and the serial row's speedup is exactly 1.00x.
	tb, err := quickRunner.ParallelSpeedup()
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 4 {
		t.Fatalf("parallel speedup: %d rows, want 4", len(tb.Rows))
	}
	for i, row := range tb.Rows {
		parseMs(t, row[1])
		parseMs(t, row[3])
		if i == 0 && (row[2] != "1.00x" || row[4] != "1.00x") {
			t.Fatalf("serial row speedups = %s/%s, want 1.00x", row[2], row[4])
		}
	}
}
