// Package figures regenerates every figure of the paper's evaluation
// section (§5): Figures 4.20(a,b) and 4.21(a,b) on the yeast-like protein
// interaction network with clique queries, and Figures 4.22(a,b) and
// 4.23(a,b) on Erdős–Rényi synthetic graphs with extracted subgraph
// queries, comparing the optimized graph access methods against the
// unoptimized baseline and the SQL-based implementation. It also provides
// the ablation studies called out in DESIGN.md.
package figures

import (
	"fmt"
	"io"
	"math"
	"math/rand"
	"time"

	"gqldb/internal/gen"
	"gqldb/internal/graph"
	"gqldb/internal/match"
	"gqldb/internal/pattern"
	"gqldb/internal/sqlbase"
	"gqldb/internal/stats"
)

// Config scales the harness. Default reproduces the paper's protocol;
// Quick is a scaled-down version for tests and smoke runs.
type Config struct {
	Seed int64
	// CliquePerSize is the number of clique queries per size (2..7). The
	// paper generates 1000 in total, ≈167 per size.
	CliquePerSize int
	// SynPerSize is the number of subgraph queries per size (4..20).
	SynPerSize int
	// SQLPerSize caps how many queries per size are also run through the
	// SQL engine (it is orders of magnitude slower; the sample is
	// averaged like the rest).
	SQLPerSize int
	// SQLMaxCliqueSize stops SQL clique measurements beyond this size.
	SQLMaxCliqueSize int
	// HitLimit is the cutoff after which a query is terminated (1000).
	HitLimit int
	// LowHits is the low/high-hits boundary (100).
	LowHits int
	// SynN / SynM are the synthetic graph dimensions for Figures
	// 4.22/4.23(a) (paper: n=10K, m=5n).
	SynN, SynM int
	// SynLabels is the synthetic label count (100).
	SynLabels int
	// SweepSizes are the node counts of the Figure 4.23(b) graph sweep.
	SweepSizes []int
	// Progress, when non-nil, receives progress lines.
	Progress io.Writer
}

// Default returns the paper-scale configuration.
func Default() Config {
	return Config{
		Seed:             2008,
		CliquePerSize:    167,
		SynPerSize:       40,
		SQLPerSize:       10,
		SQLMaxCliqueSize: 7,
		HitLimit:         1000,
		LowHits:          100,
		SynN:             10000,
		SynM:             50000,
		SynLabels:        100,
		SweepSizes:       []int{10000, 20000, 40000, 80000, 160000, 320000},
	}
}

// Quick returns a scaled-down configuration for tests.
func Quick() Config {
	return Config{
		Seed:             2008,
		CliquePerSize:    12,
		SynPerSize:       6,
		SQLPerSize:       2,
		SQLMaxCliqueSize: 4,
		HitLimit:         1000,
		LowHits:          100,
		SynN:             2000,
		SynM:             10000,
		SynLabels:        50,
		SweepSizes:       []int{2000, 4000},
	}
}

// Runner caches datasets, indexes and measurements across figures.
type Runner struct {
	Cfg Config

	ppi     *graph.Graph
	ppiIx   *match.Index
	ppiSQL  *sqlbase.DB
	cliques []cliqueMeasure

	syn    *graph.Graph
	synIx  *match.Index
	synSQL *sqlbase.DB
	synQ   []synMeasure

	sweep []sweepMeasure
}

// NewRunner returns a harness over the given configuration.
func NewRunner(cfg Config) *Runner { return &Runner{Cfg: cfg} }

func (r *Runner) logf(format string, args ...any) {
	if r.Cfg.Progress != nil {
		fmt.Fprintf(r.Cfg.Progress, format+"\n", args...)
	}
}

func ms(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }

// measure holds the per-query measurements shared by both workloads.
type measure struct {
	size    int
	bucket  stats.Bucket
	logBase float64 // log10 |Φ0| product (attribute retrieval)
	logProf float64 // after profile pruning
	logSub  float64 // after neighborhood-subgraph pruning
	logRef  float64 // after refinement (on the profile space)

	tProf        float64 // ms: retrieval+pruning by profiles
	tSub         float64 // ms: retrieval+pruning by subgraphs
	tRefine      float64 // ms: Algorithm 4.2 on the profile space
	tSearchOpt   float64 // ms: search with the optimized order
	tSearchNoOpt float64 // ms: search without order optimization
	tOptTotal    float64 // ms: the full optimized pipeline
	tBaseTotal   float64 // ms: the unoptimized pipeline
	tSQL         float64 // ms: SQL engine (NaN when not sampled)
}

type cliqueMeasure = measure
type synMeasure = measure

// measureQuery runs one pattern through every §5 configuration.
// withBaseline may be disabled for a subsample on very large graphs: the
// unoptimized baseline scans the cross product of attribute-retrieved
// candidate lists, which grows quadratically with graph size, so the
// 160K/320K sweep averages it (like SQL) over a smaller sample.
func measureQuery(p *pattern.Pattern, g *graph.Graph, ix *match.Index, db *sqlbase.DB,
	hitLimit, lowHits int, withSQL, withBaseline bool) (measure, error) {

	var m measure
	m.size = p.Size()

	// Optimized pipeline: profiles + refinement + greedy order.
	opt := match.Optimized()
	opt.Limit = hitLimit
	opt.CollectStats = true
	maps, st, err := match.Find(p, g, ix, opt)
	if err != nil {
		return m, err
	}
	m.bucket = stats.Classify(len(maps), lowHits)
	m.logBase = match.Log10Space(st.CandBaseline)
	m.logProf = match.Log10Space(st.CandLocal)
	m.logRef = match.Log10Space(st.CandRefined)
	m.tProf = ms(st.RetrieveTime)
	m.tRefine = ms(st.RefineTime)
	m.tSearchOpt = ms(st.SearchTime)
	m.tOptTotal = ms(st.RetrieveTime + st.RefineTime + st.OrderTime + st.SearchTime)
	if m.bucket == stats.BucketDiscard {
		return m, nil
	}

	// Retrieval by full neighborhood subgraphs.
	if ix.Nbr != nil && ix.Nbr.Subs != nil {
		sg := match.Options{Exhaustive: true, Limit: hitLimit, Prune: match.PruneSubgraph, CollectStats: true}
		// Only the retrieval phase matters here; skip the search by
		// limiting it to the first match.
		sg.Exhaustive = false
		_, st2, err := match.Find(p, g, ix, sg)
		if err != nil {
			return m, err
		}
		m.logSub = match.Log10Space(st2.CandLocal)
		m.tSub = ms(st2.RetrieveTime)
	} else {
		m.logSub = math.NaN()
		m.tSub = math.NaN()
	}

	// Search without the optimized order (same pruned+refined space).
	noOrd := match.Options{Exhaustive: true, Limit: hitLimit,
		Prune: match.PruneProfile, Refine: true, Order: match.OrderInput, CollectStats: true}
	_, st3, err := match.Find(p, g, ix, noOrd)
	if err != nil {
		return m, err
	}
	m.tSearchNoOpt = ms(st3.SearchTime)

	// Baseline: attribute retrieval + unordered search.
	m.tBaseTotal = math.NaN()
	if withBaseline {
		base := match.Baseline()
		base.Limit = hitLimit
		base.CollectStats = true
		_, st4, err := match.Find(p, g, ix, base)
		if err != nil {
			return m, err
		}
		m.tBaseTotal = ms(st4.RetrieveTime + st4.SearchTime)
	}

	// SQL-based implementation.
	m.tSQL = math.NaN()
	if withSQL && db != nil {
		start := time.Now()
		if _, err := db.MatchPattern(p, hitLimit); err != nil {
			return m, err
		}
		m.tSQL = ms(time.Since(start))
	}
	return m, nil
}

// cliqueData lazily measures the §5.1 clique workload.
func (r *Runner) cliqueData() ([]cliqueMeasure, error) {
	if r.cliques != nil {
		return r.cliques, nil
	}
	if r.ppi == nil {
		r.logf("building yeast-like PPI network (3112 nodes / 12519 edges)...")
		r.ppi = gen.YeastPPI(r.Cfg.Seed)
		r.logf("building label index, profiles and neighborhood subgraphs (radius 1)...")
		r.ppiIx = match.BuildIndex(r.ppi, 1, true)
		r.ppiSQL = sqlbase.NewDB()
		r.ppiSQL.Planner = sqlbase.PlanExhaustive
		if err := r.ppiSQL.LoadGraph(r.ppi); err != nil {
			return nil, err
		}
	}
	pool := r.ppiIx.Labels.TopLabels(40)
	rng := rand.New(rand.NewSource(r.Cfg.Seed + 1))
	var out []cliqueMeasure
	for size := 2; size <= 7; size++ {
		sqlBudget := r.Cfg.SQLPerSize
		if size > r.Cfg.SQLMaxCliqueSize {
			sqlBudget = 0
		}
		kept := 0
		for q := 0; q < r.Cfg.CliquePerSize; q++ {
			// Half the workload uses uniform random labels from the
			// top-40 pool (the paper's generator); the other half samples
			// labels from actual graph cliques, which draws from the same
			// conditional distribution the paper's discard-zero-answer
			// protocol induces (see EXPERIMENTS.md).
			var p *pattern.Pattern
			if q%2 == 0 {
				p = gen.CliqueQuery(size, pool, rng)
			} else {
				p = gen.GraphCliqueQuery(r.ppi, size, rng)
				if p == nil {
					continue
				}
			}
			withSQL := sqlBudget > 0
			m, err := measureQuery(p, r.ppi, r.ppiIx, r.ppiSQL, r.Cfg.HitLimit, r.Cfg.LowHits, withSQL, true)
			if err != nil {
				return nil, err
			}
			if m.bucket == stats.BucketDiscard {
				continue
			}
			if withSQL {
				sqlBudget--
			}
			kept++
			out = append(out, m)
		}
		r.logf("clique size %d: %d/%d queries with answers", size, kept, r.Cfg.CliquePerSize)
	}
	r.cliques = out
	return out, nil
}

// synData lazily measures the §5.2 synthetic workload (fixed graph size).
func (r *Runner) synData() ([]synMeasure, error) {
	if r.synQ != nil {
		return r.synQ, nil
	}
	if r.syn == nil {
		r.logf("building synthetic ER graph (n=%d, m=%d)...", r.Cfg.SynN, r.Cfg.SynM)
		r.syn = gen.ER(r.Cfg.SynN, r.Cfg.SynM, r.Cfg.SynLabels, r.Cfg.Seed+2)
		r.logf("building label index, profiles and neighborhood subgraphs...")
		r.synIx = match.BuildIndex(r.syn, 1, true)
		r.synSQL = sqlbase.NewDB()
		r.synSQL.Planner = sqlbase.PlanExhaustive
		if err := r.synSQL.LoadGraph(r.syn); err != nil {
			return nil, err
		}
	}
	rng := rand.New(rand.NewSource(r.Cfg.Seed + 3))
	var out []synMeasure
	for _, size := range []int{4, 8, 12, 16, 20} {
		sqlBudget := r.Cfg.SQLPerSize
		kept := 0
		for q := 0; q < r.Cfg.SynPerSize; q++ {
			p := gen.SubgraphQuery(r.syn, size, rng)
			if p == nil {
				continue
			}
			withSQL := sqlBudget > 0
			m, err := measureQuery(p, r.syn, r.synIx, r.synSQL, r.Cfg.HitLimit, r.Cfg.LowHits, withSQL, true)
			if err != nil {
				return nil, err
			}
			if m.bucket == stats.BucketDiscard {
				continue
			}
			if withSQL {
				sqlBudget--
			}
			kept++
			out = append(out, m)
		}
		r.logf("query size %d: %d/%d queries kept", size, kept, r.Cfg.SynPerSize)
	}
	r.synQ = out
	return out, nil
}

type sweepMeasure struct {
	n          int
	tOptTotal  stats.Agg
	tBaseTotal stats.Agg
	tSQL       stats.Agg
}

// sweepData lazily measures the Figure 4.23(b) graph-size sweep (query
// size 4, profiles only — the "practical combination").
func (r *Runner) sweepData() ([]*sweepMeasure, error) {
	if r.sweep == nil {
		if err := r.buildSweep(); err != nil {
			return nil, err
		}
	}
	out := make([]*sweepMeasure, len(r.sweep))
	for i := range r.sweep {
		out[i] = &r.sweep[i]
	}
	return out, nil
}

func (r *Runner) buildSweep() error {
	for si, n := range r.Cfg.SweepSizes {
		m := &sweepMeasure{n: n}
		r.logf("sweep: building ER graph n=%d, m=%d...", n, 5*n)
		g := gen.ER(n, 5*n, r.Cfg.SynLabels, r.Cfg.Seed+10+int64(si))
		ix := match.BuildIndex(g, 1, false)
		db := sqlbase.NewDB()
		db.Planner = sqlbase.PlanExhaustive
		if err := db.LoadGraph(g); err != nil {
			return err
		}
		rng := rand.New(rand.NewSource(r.Cfg.Seed + 20 + int64(si)))
		// The SQL and baseline paths are sampled (SQLPerSize queries
		// each): SQL because its planner cost explodes with joins, the
		// baseline because its candidate cross product grows quadratically
		// with graph size.
		sqlBudget := r.Cfg.SQLPerSize
		baseBudget := r.Cfg.SQLPerSize
		kept := 0
		for q := 0; q < r.Cfg.SynPerSize; q++ {
			p := gen.SubgraphQuery(g, 4, rng)
			if p == nil {
				continue
			}
			withSQL := sqlBudget > 0
			withBase := baseBudget > 0
			mm, err := measureQuery(p, g, ix, db, r.Cfg.HitLimit, r.Cfg.LowHits, withSQL, withBase)
			if err != nil {
				return err
			}
			if mm.bucket != stats.BucketLow {
				continue // the figure reports low hits
			}
			if withSQL {
				sqlBudget--
			}
			if withBase {
				baseBudget--
			}
			kept++
			m.tOptTotal.Add(mm.tOptTotal)
			if !math.IsNaN(mm.tBaseTotal) {
				m.tBaseTotal.Add(mm.tBaseTotal)
			}
			if !math.IsNaN(mm.tSQL) {
				m.tSQL.Add(mm.tSQL)
			}
		}
		r.logf("sweep n=%d: %d low-hit queries", n, kept)
		r.sweep = append(r.sweep, *m)
	}
	return nil
}
