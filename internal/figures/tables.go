package figures

import (
	"fmt"
	"math"
	"math/rand"

	"gqldb/internal/gen"
	"gqldb/internal/match"
	"gqldb/internal/pattern"
	"gqldb/internal/stats"
)

func newRng(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

// aggregate buckets measurements by size, filters by hit bucket, and
// returns one aggregated row per size via the sel accessor.
func aggregate(data []measure, bucket stats.Bucket, sizes []int, sel func(*measure) float64) map[int]*stats.Agg {
	out := map[int]*stats.Agg{}
	for _, s := range sizes {
		out[s] = &stats.Agg{}
	}
	for i := range data {
		m := &data[i]
		if m.bucket != bucket {
			continue
		}
		a, ok := out[m.size]
		if !ok {
			continue
		}
		v := sel(m)
		if !math.IsNaN(v) {
			a.Add(v)
		}
	}
	return out
}

var cliqueSizes = []int{2, 3, 4, 5, 6, 7}
var synSizes = []int{4, 8, 12, 16, 20}

// Fig420 reproduces Figure 4.20: mean log10 search-space reduction ratio vs
// clique size for the three retrieval methods, for the given hit bucket
// ((a) = low hits, (b) = high hits).
func (r *Runner) Fig420(bucket stats.Bucket) (*stats.Table, error) {
	data, err := r.cliqueData()
	if err != nil {
		return nil, err
	}
	name := "low hits"
	if bucket == stats.BucketHigh {
		name = "high hits"
	}
	t := &stats.Table{
		Title:   "Figure 4.20 (" + name + "): search-space reduction ratio, clique queries on PPI",
		Headers: []string{"clique_size", "queries", "retrieve_by_profiles", "retrieve_by_subgraphs", "refined_space"},
	}
	prof := aggregate(data, bucket, cliqueSizes, func(m *measure) float64 { return m.logProf - m.logBase })
	sub := aggregate(data, bucket, cliqueSizes, func(m *measure) float64 { return m.logSub - m.logBase })
	ref := aggregate(data, bucket, cliqueSizes, func(m *measure) float64 { return m.logRef - m.logBase })
	for _, s := range cliqueSizes {
		if prof[s].N() == 0 {
			continue
		}
		t.AddRow(fmt.Sprint(s), fmt.Sprint(prof[s].N()),
			stats.FmtLog(prof[s].Mean()), stats.FmtLog(sub[s].Mean()), stats.FmtLog(ref[s].Mean()))
	}
	return t, nil
}

// Fig421a reproduces Figure 4.21(a): mean per-step time vs clique size
// (low hits).
func (r *Runner) Fig421a() (*stats.Table, error) {
	data, err := r.cliqueData()
	if err != nil {
		return nil, err
	}
	t := &stats.Table{
		Title: "Figure 4.21(a): per-step time (ms), clique queries on PPI (low hits)",
		Headers: []string{"clique_size", "retrieve_profiles_ms", "retrieve_subgraphs_ms",
			"refine_ms", "search_opt_order_ms", "search_no_opt_ms"},
	}
	cols := []func(*measure) float64{
		func(m *measure) float64 { return m.tProf },
		func(m *measure) float64 { return m.tSub },
		func(m *measure) float64 { return m.tRefine },
		func(m *measure) float64 { return m.tSearchOpt },
		func(m *measure) float64 { return m.tSearchNoOpt },
	}
	aggs := make([]map[int]*stats.Agg, len(cols))
	for i, c := range cols {
		aggs[i] = aggregate(data, stats.BucketLow, cliqueSizes, c)
	}
	for _, s := range cliqueSizes {
		if aggs[0][s].N() == 0 {
			continue
		}
		row := []string{fmt.Sprint(s)}
		for i := range cols {
			row = append(row, stats.FmtMs(aggs[i][s].Mean()))
		}
		t.AddRow(row...)
	}
	return t, nil
}

// Fig421b reproduces Figure 4.21(b): mean total query time vs clique size
// for Optimized / Baseline / SQL-based (low hits, log-scale in the paper).
func (r *Runner) Fig421b() (*stats.Table, error) {
	data, err := r.cliqueData()
	if err != nil {
		return nil, err
	}
	t := &stats.Table{
		Title:   "Figure 4.21(b): total query time (ms), clique queries on PPI (low hits)",
		Headers: []string{"clique_size", "optimized_ms", "baseline_ms", "sql_ms"},
	}
	opt := aggregate(data, stats.BucketLow, cliqueSizes, func(m *measure) float64 { return m.tOptTotal })
	base := aggregate(data, stats.BucketLow, cliqueSizes, func(m *measure) float64 { return m.tBaseTotal })
	sql := aggregate(data, stats.BucketLow, cliqueSizes, func(m *measure) float64 { return m.tSQL })
	for _, s := range cliqueSizes {
		if opt[s].N() == 0 {
			continue
		}
		t.AddRow(fmt.Sprint(s), stats.FmtMs(opt[s].Mean()), stats.FmtMs(base[s].Mean()), stats.FmtMs(sql[s].Mean()))
	}
	return t, nil
}

// Fig422a reproduces Figure 4.22(a): search-space reduction vs query size
// on the synthetic graph (low hits).
func (r *Runner) Fig422a() (*stats.Table, error) {
	data, err := r.synData()
	if err != nil {
		return nil, err
	}
	t := &stats.Table{
		Title:   "Figure 4.22(a): search-space reduction ratio, subgraph queries on synthetic graph (low hits)",
		Headers: []string{"query_size", "queries", "retrieve_by_profiles", "retrieve_by_subgraphs", "refined_space"},
	}
	prof := aggregate(data, stats.BucketLow, synSizes, func(m *measure) float64 { return m.logProf - m.logBase })
	sub := aggregate(data, stats.BucketLow, synSizes, func(m *measure) float64 { return m.logSub - m.logBase })
	ref := aggregate(data, stats.BucketLow, synSizes, func(m *measure) float64 { return m.logRef - m.logBase })
	for _, s := range synSizes {
		if prof[s].N() == 0 {
			continue
		}
		t.AddRow(fmt.Sprint(s), fmt.Sprint(prof[s].N()),
			stats.FmtLog(prof[s].Mean()), stats.FmtLog(sub[s].Mean()), stats.FmtLog(ref[s].Mean()))
	}
	return t, nil
}

// Fig422b reproduces Figure 4.22(b): per-step time vs query size.
func (r *Runner) Fig422b() (*stats.Table, error) {
	data, err := r.synData()
	if err != nil {
		return nil, err
	}
	t := &stats.Table{
		Title: "Figure 4.22(b): per-step time (ms), subgraph queries on synthetic graph (low hits)",
		Headers: []string{"query_size", "retrieve_profiles_ms", "retrieve_subgraphs_ms",
			"refine_ms", "search_opt_order_ms", "search_no_opt_ms"},
	}
	cols := []func(*measure) float64{
		func(m *measure) float64 { return m.tProf },
		func(m *measure) float64 { return m.tSub },
		func(m *measure) float64 { return m.tRefine },
		func(m *measure) float64 { return m.tSearchOpt },
		func(m *measure) float64 { return m.tSearchNoOpt },
	}
	aggs := make([]map[int]*stats.Agg, len(cols))
	for i, c := range cols {
		aggs[i] = aggregate(data, stats.BucketLow, synSizes, c)
	}
	for _, s := range synSizes {
		if aggs[0][s].N() == 0 {
			continue
		}
		row := []string{fmt.Sprint(s)}
		for i := range cols {
			row = append(row, stats.FmtMs(aggs[i][s].Mean()))
		}
		t.AddRow(row...)
	}
	return t, nil
}

// Fig423a reproduces Figure 4.23(a): total time vs query size on the 10K
// synthetic graph for Optimized / Baseline / SQL (low hits).
func (r *Runner) Fig423a() (*stats.Table, error) {
	data, err := r.synData()
	if err != nil {
		return nil, err
	}
	t := &stats.Table{
		Title:   "Figure 4.23(a): total query time (ms) vs query size, synthetic graph (low hits)",
		Headers: []string{"query_size", "optimized_ms", "baseline_ms", "sql_ms"},
	}
	opt := aggregate(data, stats.BucketLow, synSizes, func(m *measure) float64 { return m.tOptTotal })
	base := aggregate(data, stats.BucketLow, synSizes, func(m *measure) float64 { return m.tBaseTotal })
	sql := aggregate(data, stats.BucketLow, synSizes, func(m *measure) float64 { return m.tSQL })
	for _, s := range synSizes {
		if opt[s].N() == 0 {
			continue
		}
		t.AddRow(fmt.Sprint(s), stats.FmtMs(opt[s].Mean()), stats.FmtMs(base[s].Mean()), stats.FmtMs(sql[s].Mean()))
	}
	return t, nil
}

// Fig423b reproduces Figure 4.23(b): total time vs graph size (query size
// 4) for Optimized / Baseline / SQL.
func (r *Runner) Fig423b() (*stats.Table, error) {
	sw, err := r.sweepData()
	if err != nil {
		return nil, err
	}
	t := &stats.Table{
		Title:   "Figure 4.23(b): total query time (ms) vs graph size (query size 4, low hits)",
		Headers: []string{"graph_nodes", "optimized_ms", "baseline_ms", "sql_ms"},
	}
	for _, m := range sw {
		t.AddRow(fmt.Sprint(m.n), stats.FmtMs(m.tOptTotal.Mean()), stats.FmtMs(m.tBaseTotal.Mean()), stats.FmtMs(m.tSQL.Mean()))
	}
	return t, nil
}

// AblationOrder compares search-order planners (and reduction-factor
// estimators) on the synthetic workload: input order, greedy with constant
// gamma, greedy with frequency-based gamma, and exact DP — the §4.4 design
// choices.
func (r *Runner) AblationOrder() (*stats.Table, error) {
	if _, err := r.synData(); err != nil { // ensures syn graph + index exist
		return nil, err
	}
	t := &stats.Table{
		Title:   "Ablation: search-order planner (mean search ms, synthetic graph)",
		Headers: []string{"query_size", "input_order", "greedy_const", "greedy_freq", "dp_freq"},
	}
	rng := newRng(r.Cfg.Seed + 30)
	for _, size := range []int{4, 8, 12} {
		var aggs [4]stats.Agg
		for q := 0; q < r.Cfg.SynPerSize; q++ {
			p := gen.SubgraphQuery(r.syn, size, rng)
			if p == nil {
				continue
			}
			opts := []match.Options{
				{Exhaustive: true, Limit: r.Cfg.HitLimit, Prune: match.PruneProfile, Refine: true, Order: match.OrderInput, CollectStats: true},
				{Exhaustive: true, Limit: r.Cfg.HitLimit, Prune: match.PruneProfile, Refine: true, Order: match.OrderGreedy, CollectStats: true},
				{Exhaustive: true, Limit: r.Cfg.HitLimit, Prune: match.PruneProfile, Refine: true, Order: match.OrderGreedy, FreqGamma: true, CollectStats: true},
				{Exhaustive: true, Limit: r.Cfg.HitLimit, Prune: match.PruneProfile, Refine: true, Order: match.OrderDP, FreqGamma: true, CollectStats: true},
			}
			for i, o := range opts {
				_, st, err := match.Find(p, r.syn, r.synIx, o)
				if err != nil {
					return nil, err
				}
				aggs[i].Add(ms(st.SearchTime))
			}
		}
		t.AddRow(fmt.Sprint(size), stats.FmtMs(aggs[0].Mean()), stats.FmtMs(aggs[1].Mean()),
			stats.FmtMs(aggs[2].Mean()), stats.FmtMs(aggs[3].Mean()))
	}
	return t, nil
}

// AblationAdjacency compares the literal Algorithm 4.1 candidate loop
// ("foreach v ∈ Φ(ui)") against adjacency-driven candidate iteration
// (Options.AdjIterate) — an extension beyond the paper that iterates the
// data adjacency of an already-matched neighbor instead of the whole
// feasible-mate list.
func (r *Runner) AblationAdjacency() (*stats.Table, error) {
	if _, err := r.synData(); err != nil {
		return nil, err
	}
	t := &stats.Table{
		Title:   "Ablation: candidate iteration (mean search ms, synthetic graph, refined space)",
		Headers: []string{"query_size", "phi_scan", "adjacency"},
	}
	rng := newRng(r.Cfg.Seed + 33)
	for _, size := range []int{4, 8, 12, 16, 20} {
		var scan, adj stats.Agg
		for q := 0; q < r.Cfg.SynPerSize; q++ {
			p := gen.SubgraphQuery(r.syn, size, rng)
			if p == nil {
				continue
			}
			base := match.Options{Exhaustive: true, Limit: r.Cfg.HitLimit,
				Prune: match.PruneProfile, Refine: true,
				Order: match.OrderGreedy, FreqGamma: true, CollectStats: true}
			_, st1, err := match.Find(p, r.syn, r.synIx, base)
			if err != nil {
				return nil, err
			}
			base.AdjIterate = true
			_, st2, err := match.Find(p, r.syn, r.synIx, base)
			if err != nil {
				return nil, err
			}
			scan.Add(ms(st1.SearchTime))
			adj.Add(ms(st2.SearchTime))
		}
		t.AddRow(fmt.Sprint(size), stats.FmtMs(scan.Mean()), stats.FmtMs(adj.Mean()))
	}
	return t, nil
}

// AblationRadius compares neighborhood radii for profile pruning. The
// paper uses radius 1; a larger radius costs more to build and check, and
// its pruning power depends on the pattern's diameter — for diameter-1
// cliques the data-side ball grows while the pattern-side ball cannot, so
// radius 2 actually prunes less there. Reported per clique size: mean
// pruned-space log10 and retrieval time for radius 1 and radius 2.
func (r *Runner) AblationRadius() (*stats.Table, error) {
	if _, err := r.cliqueData(); err != nil {
		return nil, err
	}
	ix2 := match.BuildIndex(r.ppi, 2, false)
	t := &stats.Table{
		Title:   "Ablation: profile radius (clique queries on PPI)",
		Headers: []string{"clique_size", "space_r1_log10", "space_r2_log10", "retrieve_r1_ms", "retrieve_r2_ms"},
	}
	rng := newRng(r.Cfg.Seed + 32)
	for _, size := range []int{3, 4, 5} {
		var s1, s2, t1, t2 stats.Agg
		for q := 0; q < r.Cfg.CliquePerSize; q++ {
			// Clique-sampled queries always have answers, so the spaces
			// are never empty and their log-means are meaningful.
			p := gen.GraphCliqueQuery(r.ppi, size, rng)
			if p == nil {
				continue
			}
			o := match.Options{Prune: match.PruneProfile, CollectStats: true}
			_, st1, err := match.Find(p, r.ppi, r.ppiIx, o)
			if err != nil {
				return nil, err
			}
			_, st2, err := match.Find(p, r.ppi, ix2, o)
			if err != nil {
				return nil, err
			}
			s1.Add(match.Log10Space(st1.CandLocal))
			s2.Add(match.Log10Space(st2.CandLocal))
			t1.Add(ms(st1.RetrieveTime))
			t2.Add(ms(st2.RetrieveTime))
		}
		t.AddRow(fmt.Sprint(size), stats.FmtLog(s1.Mean()), stats.FmtLog(s2.Mean()),
			stats.FmtMs(t1.Mean()), stats.FmtMs(t2.Mean()))
	}
	return t, nil
}

// AblationRefineLevel sweeps the refinement level l of Algorithm 4.2 on
// clique queries: deeper levels shrink the space further at increasing
// refinement cost.
func (r *Runner) AblationRefineLevel() (*stats.Table, error) {
	if _, err := r.cliqueData(); err != nil {
		return nil, err
	}
	t := &stats.Table{
		Title:   "Ablation: refinement level l (clique size 5 on PPI)",
		Headers: []string{"level", "refined_space_log10", "refine_ms"},
	}
	rng := newRng(r.Cfg.Seed + 31)
	queries := make([]*pattern.Pattern, 0, r.Cfg.CliquePerSize)
	for q := 0; q < r.Cfg.CliquePerSize; q++ {
		// Clique-sampled queries have answers, so refined spaces stay
		// non-empty and the per-level means are comparable.
		if p := gen.GraphCliqueQuery(r.ppi, 5, rng); p != nil {
			queries = append(queries, p)
		}
	}
	for level := 1; level <= 5; level++ {
		var space, tms stats.Agg
		for _, p := range queries {
			o := match.Options{Exhaustive: false, Prune: match.PruneProfile,
				Refine: true, RefineLevel: level, CollectStats: true}
			_, st, err := match.Find(p, r.ppi, r.ppiIx, o)
			if err != nil {
				return nil, err
			}
			space.Add(match.Log10Space(st.CandRefined))
			tms.Add(ms(st.RefineTime))
		}
		t.AddRow(fmt.Sprint(level), stats.FmtLog(space.Mean()), stats.FmtMs(tms.Mean()))
	}
	return t, nil
}
