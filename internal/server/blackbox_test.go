package server

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strings"
	"syscall"
	"testing"
	"time"

	gexec "gqldb/internal/exec"
	"gqldb/internal/parser"
)

// TestServerBlackBox builds cmd/gqlserver, starts it on a random port with
// documents loaded from disk, and drives the full production surface over
// real HTTP: /query results byte-identical to the embedded engine,
// /explain, /metrics with the per-worker pool counters, /healthz,
// admission overload → 429, a per-request deadline → JSON timeout, and a
// SIGTERM drain that lets the in-flight query finish and exits 0 inside
// the grace period. This is the `make test-server` gate.
func TestServerBlackBox(t *testing.T) {
	if runtimeOS := os.Getenv("GOOS"); runtimeOS != "" && runtimeOS != "linux" && runtimeOS != "darwin" {
		t.Skipf("signal-driven drain test not supported on GOOS=%s", runtimeOS)
	}
	dir := t.TempDir()
	bin := filepath.Join(dir, "gqlserver")
	build := exec.Command("go", "build", "-o", bin, "gqldb/cmd/gqlserver")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("building gqlserver: %v\n%s", err, out)
	}

	// Documents go to disk in the language's text syntax and come back
	// through the server's startup loader.
	writeDoc := func(name string, coll []fmt.Stringer) string {
		var b strings.Builder
		for _, g := range coll {
			fmt.Fprintf(&b, "%s;\n", g)
		}
		path := filepath.Join(dir, name)
		if err := os.WriteFile(path, []byte(b.String()), 0o644); err != nil {
			t.Fatal(err)
		}
		return path
	}
	var small, big []fmt.Stringer
	for _, g := range dblp() {
		small = append(small, g)
	}
	for _, g := range bigClique(30) {
		big = append(big, g)
	}
	smallPath := writeDoc("small.gql", small)
	bigPath := writeDoc("big.gql", big)

	cmd := exec.Command(bin,
		"-addr", "127.0.0.1:0",
		"-doc", "DBLP="+smallPath,
		"-doc", "BIG="+bigPath,
		"-max-inflight", "1",
		"-grace", "10s",
		"-timeout", "10s")
	stderr, err := cmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	defer cmd.Process.Kill()

	// The listen address is announced on stderr; keep draining the pipe
	// afterwards so logging never blocks the server.
	addrRE := regexp.MustCompile(`listening on (127\.0\.0\.1:\d+)`)
	addrc := make(chan string, 1)
	logc := make(chan string, 1)
	go func() {
		var logs strings.Builder
		sc := bufio.NewScanner(stderr)
		for sc.Scan() {
			line := sc.Text()
			logs.WriteString(line + "\n")
			if m := addrRE.FindStringSubmatch(line); m != nil {
				select {
				case addrc <- m[1]:
				default:
				}
			}
		}
		logc <- logs.String()
	}()
	var base string
	select {
	case addr := <-addrc:
		base = "http://" + addr
	case <-time.After(10 * time.Second):
		t.Fatal("server did not announce its listen address")
	}

	get := func(path string) (int, string) {
		resp, err := http.Get(base + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		var b bytes.Buffer
		b.ReadFrom(resp.Body)
		return resp.StatusCode, b.String()
	}
	post := func(req queryRequest) (int, http.Header, string) {
		body, _ := json.Marshal(req)
		resp, err := http.Post(base+"/query", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatalf("POST /query: %v", err)
		}
		defer resp.Body.Close()
		var b bytes.Buffer
		b.ReadFrom(resp.Body)
		return resp.StatusCode, resp.Header, b.String()
	}

	// Liveness and loaded documents.
	status, body := get("/healthz")
	if status != 200 || !strings.Contains(body, `"status":"ok"`) {
		t.Fatalf("healthz = %d %s", status, body)
	}
	if !strings.Contains(body, "BIG") || !strings.Contains(body, "DBLP") {
		t.Fatalf("healthz docs missing: %s", body)
	}

	// Results must be byte-identical to the embedded engine over the same
	// documents.
	prog, err := parser.Parse(authorsQuery)
	if err != nil {
		t.Fatal(err)
	}
	oracle, err := gexec.New(gexec.Store{"DBLP": dblp()}).Run(prog)
	if err != nil {
		t.Fatal(err)
	}
	want := make([]string, len(oracle.Out))
	for i, g := range oracle.Out {
		want[i] = g.String()
	}
	status, _, body = post(queryRequest{Query: authorsQuery})
	if status != 200 {
		t.Fatalf("query = %d %s", status, body)
	}
	var qr queryResponse
	if err := json.Unmarshal([]byte(body), &qr); err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(qr.Results) != fmt.Sprint(want) {
		t.Fatalf("HTTP results diverge from embedded engine:\n got %v\nwant %v", qr.Results, want)
	}

	// Explain over HTTP returns the span tree.
	ebody, _ := json.Marshal(queryRequest{Query: authorsQuery, Workers: 2})
	eresp, err := http.Post(base+"/explain", "application/json", bytes.NewReader(ebody))
	if err != nil {
		t.Fatal(err)
	}
	var ebuf bytes.Buffer
	ebuf.ReadFrom(eresp.Body)
	eresp.Body.Close()
	if eresp.StatusCode != 200 || !strings.Contains(ebuf.String(), `"name":"query"`) ||
		!strings.Contains(ebuf.String(), "selection") {
		t.Fatalf("explain = %d %s", eresp.StatusCode, ebuf.String())
	}

	// Metrics include the registry dump and the per-worker pool counters.
	status, body = get("/metrics")
	if status != 200 {
		t.Fatalf("metrics = %d", status)
	}
	for _, frag := range []string{"gqldb_queries_total", "gqldb_http_requests_total",
		`gqldb_pool_worker_items_total{worker="0"}`} {
		if !strings.Contains(body, frag) {
			t.Fatalf("/metrics missing %q:\n%s", frag, body)
		}
	}
	if status, body = get("/debug/vars"); status != 200 || !strings.Contains(body, "gqldb") {
		t.Fatalf("/debug/vars = %d %s", status, body)
	}

	// A tiny per-request deadline yields a JSON timeout error, not a hung
	// connection.
	status, _, body = post(queryRequest{Query: pathQuery, TimeoutMS: 50})
	if status != http.StatusGatewayTimeout || !strings.Contains(body, `"code":"timeout"`) {
		t.Fatalf("deadline = %d %s", status, body)
	}

	// Overload: pin the single admission slot, then the next query is
	// rejected 429 with Retry-After.
	// The pinned query's own deadline (1.5s) must land well inside the
	// drain grace (10s) even on a loaded machine — `make race` runs other
	// packages' stress tests concurrently with this one.
	pinned := make(chan string, 1)
	go func() {
		_, _, b := post(queryRequest{Query: pathQuery, TimeoutMS: 1500})
		pinned <- b
	}()
	waitForInflight := func() {
		deadline := time.Now().Add(2 * time.Second)
		for {
			_, h := get("/healthz")
			if strings.Contains(h, `"inflight":1`) {
				return
			}
			if time.Now().After(deadline) {
				t.Fatal("pinned query never admitted")
			}
			time.Sleep(5 * time.Millisecond)
		}
	}
	waitForInflight()
	status, hdr, body := post(queryRequest{Query: authorsQuery})
	if status != http.StatusTooManyRequests || !strings.Contains(body, `"code":"overloaded"`) {
		t.Fatalf("overload = %d %s", status, body)
	}
	if hdr.Get("Retry-After") == "" {
		t.Fatal("429 missing Retry-After")
	}

	// SIGTERM with the query still in flight: the server must drain it
	// (here: let it run to its own deadline), flush metrics, and exit 0
	// within the grace period.
	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case b := <-pinned:
		if !strings.Contains(b, `"code":"timeout"`) && !strings.Contains(b, `"code":"canceled"`) {
			t.Fatalf("pinned query response during drain: %s", b)
		}
	case <-time.After(12 * time.Second):
		t.Fatal("pinned query got no response during drain")
	}
	// Await the scanner's EOF before cmd.Wait: Wait tears down the stderr
	// pipe, and calling it while the scanner still drains can discard the
	// buffered tail of the log — exactly where the drain markers live. EOF
	// arrives at process exit, so this doubles as the exit wait.
	var logs string
	select {
	case logs = <-logc:
	case <-time.After(12 * time.Second):
		t.Fatal("gqlserver did not exit within the grace period")
	}
	if err := cmd.Wait(); err != nil {
		t.Fatalf("gqlserver exited non-zero: %v\nserver logs:\n%s", err, logs)
	}
	for _, frag := range []string{"draining", "final metrics snapshot", "gqldb_queries_total", "drained cleanly"} {
		if !strings.Contains(logs, frag) {
			t.Errorf("server log missing %q:\n%s", frag, logs)
		}
	}
}
