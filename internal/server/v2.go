// The v2 streaming endpoints. Where v1 buffers the whole result into one
// JSON document, v2 speaks NDJSON: one JSON value per line, written as the
// exec pipeline pushes rows, flushed to the client on the configured
// interval. The line shapes:
//
//	{"row": {"n": 3, "graph": "..."}}            a result row (graph text)
//	{"row": {"n": 3, "values": {"v1.name": …}}}  a projected result row
//	{"summary": {"rows": …, "truncated": …}}     exactly one, last per query
//	{"error": {"code": …, "message": …}}         terminal, mid-stream
//
// Batch responses prefix every line with the query's index in the request
// ({"query": 0, "row": …}). "n" is the row's absolute ordinal in the full
// result (skip + position), so a client can resume from next_skip and see
// a continuous sequence.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"

	"gqldb/internal/exec"
	"gqldb/internal/graph"
	"gqldb/internal/obs"
)

// rowLine is one streamed result row.
type rowLine struct {
	Query *int    `json:"query,omitempty"`
	Row   rowBody `json:"row"`
}

type rowBody struct {
	// N is the row's absolute ordinal in the full (unskipped) result.
	N int `json:"n"`
	// Graph is the row in the language's text syntax (absent under
	// projection).
	Graph string `json:"graph,omitempty"`
	// Values is the projected row (absent without projection).
	Values map[string]any `json:"values,omitempty"`
}

// summaryLine terminates every successful query stream.
type summaryLine struct {
	Query   *int        `json:"query,omitempty"`
	Summary summaryBody `json:"summary"`
}

type summaryBody struct {
	// Rows and Skipped count emitted and skipped rows.
	Rows    int `json:"rows"`
	Skipped int `json:"skipped"`
	// Truncated reports the stream stopped at the take limit; NextSkip is
	// the cursor to resume from (present only when truncated).
	Truncated bool `json:"truncated"`
	NextSkip  *int `json:"next_skip,omitempty"`
	// CacheHit reports the rows were replayed from the result cache.
	CacheHit bool    `json:"cache_hit,omitempty"`
	WallMS   float64 `json:"wall_ms"`
	// Vars are the final graph variables (absent when truncated: the
	// program did not run to completion).
	Vars map[string]string `json:"vars,omitempty"`
}

// errorLine is a terminal mid-stream failure (the HTTP status is already
// committed as 200 once rows have flowed).
type errorLine struct {
	Query *int      `json:"query,omitempty"`
	Error errorBody `json:"error"`
}

// ndjsonWriter writes one JSON value per line with the server's flush
// policy: a negative interval flushes after every line; otherwise lines
// are flushed whenever FlushInterval has elapsed since the last flush, so
// slow result producers still deliver rows promptly.
type ndjsonWriter struct {
	w        *statusWriter
	enc      *json.Encoder
	interval time.Duration
	started  bool
	last     time.Time
}

func (s *Server) newNDJSONWriter(w *statusWriter) *ndjsonWriter {
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	return &ndjsonWriter{w: w, enc: enc, interval: s.cfg.FlushInterval}
}

// begin commits the NDJSON response header (once). After begin, errors can
// only be reported in-band as error lines.
func (nw *ndjsonWriter) begin() {
	if nw.started {
		return
	}
	nw.started = true
	nw.w.Header().Set("Content-Type", "application/x-ndjson")
	nw.w.WriteHeader(http.StatusOK)
	nw.last = time.Now()
}

// line encodes one value (json.Encoder appends the newline) and applies
// the flush policy.
func (nw *ndjsonWriter) line(v any) error {
	nw.begin()
	if err := nw.enc.Encode(v); err != nil {
		return err
	}
	if nw.interval < 0 || time.Since(nw.last) >= nw.interval {
		nw.flush()
	}
	return nil
}

// flush pushes buffered lines to the client.
func (nw *ndjsonWriter) flush() {
	if !nw.started {
		return
	}
	nw.w.Flush()
	nw.last = time.Now()
	obs.StreamFlushes.Inc()
}

// rowSink adapts the NDJSON writer into an exec.ResultSink: each emitted
// graph becomes one row line, projected when the request asked for fields.
// Emit runs on the query's coordinating goroutine (never from pool
// workers), so the shared encoder and flush clock need no locking; a
// client disconnect surfaces as a write error, which aborts the upstream
// fan-out.
type rowSink struct {
	nw      *ndjsonWriter
	project []string
	query   *int
	n       int // next absolute row ordinal
}

// Emit implements exec.ResultSink.
func (e *rowSink) Emit(g *graph.Graph) error {
	body := rowBody{N: e.n}
	if len(e.project) > 0 {
		body.Values = projectRow(g, e.project)
	} else {
		body.Graph = renderGraph(g)
	}
	e.n++
	return e.nw.line(rowLine{Query: e.query, Row: body})
}

// handleQueryV2 serves POST /v2/query.
func (s *Server) handleQueryV2(w *statusWriter, r *http.Request) {
	release, ok := s.admit(w)
	if !ok {
		return
	}
	defer release()
	req, ok := s.readRequest(w, r)
	if !ok {
		return
	}
	if !s.validateV2(w, req) {
		return
	}
	ctx, cancel := context.WithTimeout(s.base, s.timeout(req))
	defer cancel()
	stop := context.AfterFunc(r.Context(), cancel)
	defer stop()

	eng := s.engine.Request(exec.RequestOptions{Workers: req.Workers})
	nw := s.newNDJSONWriter(w)
	em := &rowSink{nw: nw, project: req.Project, n: req.Skip}
	start := time.Now()
	sres, err := eng.StreamQuery(ctx, req.Query, em, exec.StreamOptions{Skip: req.Skip, Take: s.resolveTake(req)})
	if err != nil {
		s.streamError(w, nw, nil, req, err)
		return
	}
	s.writeSummary(nw, nil, req, sres, time.Since(start))
	nw.flush()
}

// validateV2 rejects malformed cursor fields before any work runs.
func (s *Server) validateV2(w *statusWriter, req queryRequest) bool {
	if req.Skip < 0 {
		writeError(w, http.StatusBadRequest, "bad_request", "skip must be >= 0")
		return false
	}
	if req.Take != nil && *req.Take < 0 {
		writeError(w, http.StatusBadRequest, "bad_request", "take must be >= 0")
		return false
	}
	return true
}

// resolveTake turns the request's optional take into the exec-level limit,
// applying Config.MaxTake: absent means everything (up to the cap);
// explicit takes are clamped to the cap.
func (s *Server) resolveTake(req queryRequest) int {
	take := exec.AllRows
	if req.Take != nil {
		take = *req.Take
	}
	if s.cfg.MaxTake > 0 && (take < 0 || take > s.cfg.MaxTake) {
		take = s.cfg.MaxTake
	}
	return take
}

// streamError reports a failed query: a JSON error response while the
// stream has not started, an in-band error line (the status is already
// committed) afterwards.
func (s *Server) streamError(w *statusWriter, nw *ndjsonWriter, query *int, req queryRequest, err error) {
	status, code, msg := s.errorFor(req, err)
	if !nw.started {
		writeError(w, status, code, msg)
		return
	}
	w.code = code
	_ = nw.line(errorLine{Query: query, Error: errorBody{Code: code, Message: msg}})
	nw.flush()
}

// writeSummary terminates one query's stream with its summary line.
func (s *Server) writeSummary(nw *ndjsonWriter, query *int, req queryRequest, sres *exec.StreamResult, wall time.Duration) {
	body := summaryBody{
		Rows:      sres.Rows,
		Skipped:   sres.Skipped,
		Truncated: sres.Truncated,
		CacheHit:  sres.CacheHit,
		WallMS:    float64(wall) / float64(time.Millisecond),
		Vars:      renderVars(sres.Vars),
	}
	if sres.Truncated {
		next := req.Skip + sres.Rows
		body.NextSkip = &next
	}
	_ = nw.line(summaryLine{Query: query, Summary: body})
}

// batchRequest is the JSON envelope of /v2/batch: several programs that
// execute sequentially against one pinned store snapshot, sharing one
// request deadline (per-query timeout_ms fields are ignored; workers,
// skip/take and projection apply per query).
type batchRequest struct {
	Queries   []queryRequest `json:"queries"`
	TimeoutMS int64          `json:"timeout_ms,omitempty"`
}

// handleBatchV2 serves POST /v2/batch: one admission slot, one snapshot,
// one NDJSON stream with every line tagged by query index. A failed query
// emits an error line and the batch moves on, unless the failure is the
// shared deadline or a client disconnect, which ends the batch.
func (s *Server) handleBatchV2(w *statusWriter, r *http.Request) {
	release, ok := s.admit(w)
	if !ok {
		return
	}
	defer release()

	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, s.cfg.MaxBody))
	if err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			writeError(w, http.StatusRequestEntityTooLarge, "body_too_large",
				fmt.Sprintf("request body exceeds %d bytes", tooLarge.Limit))
		} else {
			writeError(w, http.StatusBadRequest, "bad_request", "reading request body: "+err.Error())
		}
		return
	}
	var breq batchRequest
	if err := json.Unmarshal(body, &breq); err != nil {
		writeError(w, http.StatusBadRequest, "bad_request", "decoding batch envelope: "+err.Error())
		return
	}
	if len(breq.Queries) == 0 {
		writeError(w, http.StatusBadRequest, "bad_request", "batch has no queries")
		return
	}
	if len(breq.Queries) > s.cfg.MaxBatch {
		writeError(w, http.StatusBadRequest, "bad_request",
			fmt.Sprintf("batch carries %d queries, limit is %d", len(breq.Queries), s.cfg.MaxBatch))
		return
	}

	ctx, cancel := context.WithTimeout(s.base, s.timeout(queryRequest{TimeoutMS: breq.TimeoutMS}))
	defer cancel()
	stop := context.AfterFunc(r.Context(), cancel)
	defer stop()

	// One snapshot pins every program in the batch to a single store
	// version: a concurrent RegisterDoc never tears the batch, and the
	// result-cache keys carry the pinned version.
	snap := s.engine.Docs.Snapshot()
	nw := s.newNDJSONWriter(w)
	nw.begin()
	for qi := range breq.Queries {
		q := breq.Queries[qi]
		qref := qi
		if strings.TrimSpace(q.Query) == "" {
			s.batchBadRequest(w, nw, &qref, "empty query")
			continue
		}
		if q.Skip < 0 {
			s.batchBadRequest(w, nw, &qref, "skip must be >= 0")
			continue
		}
		if q.Take != nil && *q.Take < 0 {
			s.batchBadRequest(w, nw, &qref, "take must be >= 0")
			continue
		}
		obs.BatchQueries.Inc()
		eng := s.engine.Request(exec.RequestOptions{Workers: q.Workers})
		em := &rowSink{nw: nw, project: q.Project, query: &qref, n: q.Skip}
		start := time.Now()
		sres, err := eng.StreamQuery(ctx, q.Query, em, exec.StreamOptions{
			Skip: q.Skip, Take: s.resolveTake(q), Snapshot: snap,
		})
		if err != nil {
			s.streamError(w, nw, &qref, q, err)
			if ctx.Err() != nil {
				return
			}
			continue
		}
		s.writeSummary(nw, &qref, q, sres, time.Since(start))
	}
	nw.flush()
}

// batchBadRequest reports one query's validation failure in-band.
func (s *Server) batchBadRequest(w *statusWriter, nw *ndjsonWriter, query *int, msg string) {
	w.code = "bad_request"
	_ = nw.line(errorLine{Query: query, Error: errorBody{Code: "bad_request", Message: msg}})
}

// schemaResponse is the GET /v2/schema shape: what an agent reads before
// writing queries.
type schemaResponse struct {
	API          string      `json:"api"`
	StoreVersion uint64      `json:"store_version"`
	Docs         []docSchema `json:"docs"`
}

type docSchema struct {
	Name      string           `json:"name"`
	Graphs    int              `json:"graphs"`
	Shards    int              `json:"shards"`
	Indexed   bool             `json:"indexed"`
	Nodes     int64            `json:"nodes"`
	Edges     int64            `json:"edges"`
	NodeAttrs map[string]int64 `json:"node_attrs,omitempty"`
	EdgeAttrs map[string]int64 `json:"edge_attrs,omitempty"`
}

// handleSchemaV2 serves GET /v2/schema: the loaded documents at the
// current store version with per-document size and attribute inventories
// (computed lazily once per registered document). Introspection skips
// admission control — it runs no query.
func (s *Server) handleSchemaV2(w *statusWriter, r *http.Request) {
	snap := s.engine.Docs.Snapshot()
	out := schemaResponse{API: "v2", StoreVersion: snap.Version(), Docs: []docSchema{}}
	for _, name := range snap.Docs() {
		d, ok := snap.Doc(name)
		if !ok {
			continue
		}
		st := d.Stats()
		out.Docs = append(out.Docs, docSchema{
			Name: name, Graphs: st.Graphs, Shards: st.Shards, Indexed: st.Indexed,
			Nodes: st.Nodes, Edges: st.Edges,
			NodeAttrs: st.NodeAttrs, EdgeAttrs: st.EdgeAttrs,
		})
	}
	writeJSON(w, http.StatusOK, out)
}
