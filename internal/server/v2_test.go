package server

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"gqldb/internal/exec"
	"gqldb/internal/graph"
	"gqldb/internal/store"
)

// manyAuthors returns n single-author graphs with distinct names —
// distinguishable, ordered result rows for the v1/v2 comparisons.
func manyAuthors(n int) graph.Collection {
	c := make(graph.Collection, 0, n)
	for i := 0; i < n; i++ {
		g := graph.New(fmt.Sprintf("G%d", i))
		g.AddNode("v1", graph.TupleOf("author", "name", fmt.Sprintf("A%05d", i)))
		c = append(c, g)
	}
	return c
}

// newV2Server builds a server whose DBLP document is partitioned into the
// given shard count.
func newV2Server(t *testing.T, coll graph.Collection, shards int, mut func(*Config)) (*Server, *httptest.Server) {
	t.Helper()
	ds := store.New(store.Options{Shards: shards})
	ds.RegisterDoc("DBLP", coll)
	cfg := Config{
		Engine:        exec.NewOver(ds),
		Timeout:       10 * time.Second,
		FlushInterval: -1, // deterministic: every line reaches the client
		AccessLog:     func(AccessRecord) {},
	}
	if mut != nil {
		mut(&cfg)
	}
	s := New(cfg)
	ts := httptest.NewServer(s)
	t.Cleanup(ts.Close)
	return s, ts
}

// v2Line decodes any NDJSON line shape (row, summary or error).
type v2Line struct {
	Query *int `json:"query"`
	Row   *struct {
		N      int            `json:"n"`
		Graph  string         `json:"graph"`
		Values map[string]any `json:"values"`
	} `json:"row"`
	Summary *struct {
		Rows      int               `json:"rows"`
		Skipped   int               `json:"skipped"`
		Truncated bool              `json:"truncated"`
		NextSkip  *int              `json:"next_skip"`
		CacheHit  bool              `json:"cache_hit"`
		WallMS    float64           `json:"wall_ms"`
		Vars      map[string]string `json:"vars"`
	} `json:"summary"`
	Error *struct {
		Code    string `json:"code"`
		Message string `json:"message"`
	} `json:"error"`
}

// postV2 posts the envelope to path and decodes the NDJSON stream,
// enforcing the wire contract: the streaming content type and one valid
// JSON value per line.
func postV2(t *testing.T, url string, envelope any) (*http.Response, []v2Line) {
	t.Helper()
	body, err := json.Marshal(envelope)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		// Pre-stream errors are plain JSON; return them undecoded.
		return resp, nil
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("content type = %q, want application/x-ndjson", ct)
	}
	var lines []v2Line
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		raw := sc.Bytes()
		if !json.Valid(raw) {
			t.Fatalf("line %d is not valid JSON: %q", len(lines), raw)
		}
		var ln v2Line
		if err := json.Unmarshal(raw, &ln); err != nil {
			t.Fatalf("line %d: %v", len(lines), err)
		}
		lines = append(lines, ln)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return resp, lines
}

// v1Results fetches the buffered v1 result rows — the oracle every v2
// stream is compared against.
func v1Results(t *testing.T, url string) []string {
	t.Helper()
	var out queryResponse
	resp := postJSON(t, url+"/query", queryRequest{Query: authorsQuery}, &out)
	if resp.StatusCode != 200 {
		t.Fatalf("v1 status = %d", resp.StatusCode)
	}
	return out.Results
}

// TestV2StreamMatchesV1Grid is the HTTP acceptance grid: for every shard
// count, worker count and skip/take edge, the concatenated v2 row graphs
// are byte-identical to the frozen v1 results array windowed in plain Go.
func TestV2StreamMatchesV1Grid(t *testing.T) {
	const n = 23
	coll := manyAuthors(n)
	windows := []struct {
		skip int
		take *int
	}{
		{0, nil}, {0, intp(0)}, {0, intp(3)}, {2, intp(3)},
		{0, intp(n)}, {0, intp(n + 5)}, {n - 1, nil}, {n + 5, nil},
	}
	for _, shards := range []int{1, 4, 17} {
		_, ts := newV2Server(t, coll, shards, nil)
		all := v1Results(t, ts.URL)
		if len(all) != n {
			t.Fatalf("shards=%d: v1 rows = %d, want %d", shards, len(all), n)
		}
		for _, workers := range []int{1, 16} {
			for _, win := range windows {
				name := fmt.Sprintf("shards=%d/workers=%d/skip=%d/take=%v", shards, workers, win.skip, takeStr(win.take))
				t.Run(name, func(t *testing.T) {
					env := map[string]any{"query": authorsQuery, "workers": workers, "skip": win.skip}
					if win.take != nil {
						env["take"] = *win.take
					}
					resp, lines := postV2(t, ts.URL+"/v2/query", env)
					if resp.StatusCode != 200 {
						t.Fatalf("status = %d", resp.StatusCode)
					}
					if len(lines) == 0 || lines[len(lines)-1].Summary == nil {
						t.Fatal("stream did not end with a summary line")
					}
					sum := lines[len(lines)-1].Summary
					rows := lines[: len(lines)-1 : len(lines)-1]

					take := -1
					if win.take != nil {
						take = *win.take
					}
					want, wantSkipped, wantTrunc := windowStrings(all, win.skip, take)
					if len(rows) != len(want) {
						t.Fatalf("rows = %d, want %d", len(rows), len(want))
					}
					for i, ln := range rows {
						if ln.Row == nil {
							t.Fatalf("line %d is not a row", i)
						}
						if ln.Row.N != win.skip+i {
							t.Fatalf("row %d ordinal = %d, want %d", i, ln.Row.N, win.skip+i)
						}
						if ln.Row.Graph != want[i] {
							t.Fatalf("row %d differs from v1:\ngot:  %s\nwant: %s", i, ln.Row.Graph, want[i])
						}
					}
					if sum.Rows != len(want) || sum.Skipped != wantSkipped || sum.Truncated != wantTrunc {
						t.Fatalf("summary rows=%d skipped=%d truncated=%v, want %d %d %v",
							sum.Rows, sum.Skipped, sum.Truncated, len(want), wantSkipped, wantTrunc)
					}
					if wantTrunc {
						if sum.NextSkip == nil || *sum.NextSkip != win.skip+len(want) {
							t.Fatalf("next_skip = %v, want %d", sum.NextSkip, win.skip+len(want))
						}
					} else if sum.NextSkip != nil {
						t.Fatalf("next_skip present on an un-truncated stream")
					}
				})
			}
		}
	}
}

func intp(v int) *int { return &v }

func takeStr(p *int) string {
	if p == nil {
		return "all"
	}
	return fmt.Sprint(*p)
}

// windowStrings applies the documented skip/take semantics (take checked
// before and after every row) to the full result.
func windowStrings(all []string, skip, take int) (rows []string, skipped int, truncated bool) {
	rows = []string{}
	for _, s := range all {
		if take >= 0 && len(rows) >= take {
			truncated = true
			break
		}
		if skipped < skip {
			skipped++
			continue
		}
		rows = append(rows, s)
		if take >= 0 && len(rows) >= take {
			truncated = true
			break
		}
	}
	return rows, skipped, truncated
}

// TestV2Projection asks for per-row fields instead of graph text: known
// paths carry the attribute's natural JSON type, unknown paths are null,
// and the rendered graph is absent.
func TestV2Projection(t *testing.T) {
	_, ts := newV2Server(t, manyAuthors(4), 1, nil)
	resp, lines := postV2(t, ts.URL+"/v2/query", map[string]any{
		"query":   authorsQuery,
		"project": []string{"Q_v1.name", "Q_v1.missing"},
	})
	if resp.StatusCode != 200 {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	rows := lines[:len(lines)-1]
	if len(rows) != 4 {
		t.Fatalf("rows = %d, want 4", len(rows))
	}
	for i, ln := range rows {
		if ln.Row.Graph != "" {
			t.Fatalf("row %d carries graph text under projection", i)
		}
		if got, want := ln.Row.Values["Q_v1.name"], fmt.Sprintf("A%05d", i); got != want {
			t.Fatalf("row %d name = %v, want %q", i, got, want)
		}
		if v, ok := ln.Row.Values["Q_v1.missing"]; !ok || v != nil {
			t.Fatalf("row %d missing path = %v (present %v), want explicit null", i, v, ok)
		}
	}
}

// TestV2Validation rejects malformed cursors and surfaces engine errors
// with the shared v1 error contract while the stream has not started.
func TestV2Validation(t *testing.T) {
	_, ts := newV2Server(t, manyAuthors(2), 1, nil)
	cases := []struct {
		name   string
		env    map[string]any
		status int
		code   string
	}{
		{"negative skip", map[string]any{"query": authorsQuery, "skip": -1}, 400, "bad_request"},
		{"negative take", map[string]any{"query": authorsQuery, "take": -1}, 400, "bad_request"},
		{"parse error", map[string]any{"query": "for nonsense ;;;"}, 400, "parse_error"},
		{"eval error", map[string]any{"query": `for graph Q { node v1 <author>; } in doc("NOPE") return graph { node Q.v1; };`}, 422, "eval_error"},
	}
	for _, tc := range cases {
		body, _ := json.Marshal(tc.env)
		resp, err := http.Post(ts.URL+"/v2/query", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		var e errorResponse
		json.NewDecoder(resp.Body).Decode(&e)
		resp.Body.Close()
		if resp.StatusCode != tc.status || e.Error.Code != tc.code {
			t.Errorf("%s: status %d code %q, want %d %q (%s)",
				tc.name, resp.StatusCode, e.Error.Code, tc.status, tc.code, e.Error.Message)
		}
	}
}

// TestV2MaxTakeCursor: the server-side take cap truncates unlimited
// requests and the returned next_skip cursor resumes exactly where the
// stream stopped.
func TestV2MaxTakeCursor(t *testing.T) {
	_, ts := newV2Server(t, manyAuthors(12), 4, func(c *Config) { c.MaxTake = 5 })
	all := v1Results(t, ts.URL)

	var got []string
	skip := 0
	for page := 0; page < 10; page++ {
		_, lines := postV2(t, ts.URL+"/v2/query", map[string]any{"query": authorsQuery, "skip": skip})
		sum := lines[len(lines)-1].Summary
		for _, ln := range lines[:len(lines)-1] {
			if ln.Row.N != len(got) {
				t.Fatalf("ordinal %d, want %d (pages must be continuous)", ln.Row.N, len(got))
			}
			got = append(got, ln.Row.Graph)
		}
		if !sum.Truncated {
			break
		}
		if sum.Rows > 5 {
			t.Fatalf("page rows = %d exceeds MaxTake 5", sum.Rows)
		}
		skip = *sum.NextSkip
	}
	if len(got) != len(all) {
		t.Fatalf("paged rows = %d, want %d", len(got), len(all))
	}
	for i := range all {
		if got[i] != all[i] {
			t.Fatalf("paged row %d differs from v1", i)
		}
	}
}

// TestV2ClientDisconnect closes the connection mid-stream over a real
// network socket: the query must unwind promptly and the aborted stream
// must never fill the result cache.
func TestV2ClientDisconnect(t *testing.T) {
	s, ts := newV2Server(t, manyAuthors(100000), 1, func(c *Config) {
		c.Engine.Cache = store.NewCache(8)
	})
	body, _ := json.Marshal(map[string]any{"query": authorsQuery})
	resp, err := http.Post(ts.URL+"/v2/query", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	// Read one row so the stream has demonstrably started, then hang up.
	br := bufio.NewReader(resp.Body)
	if _, err := br.ReadString('\n'); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	waitFor(t, 10*time.Second, func() bool { return s.Inflight() == 0 })
	if n := s.engine.Cache.Stats().Entries; n != 0 {
		t.Fatalf("aborted stream filled the cache: %d entries", n)
	}
}

// TestV2Batch runs several programs on one stream: every line is tagged
// with its query index, per-query validation failures are in-band error
// lines, and healthy queries around them still complete.
func TestV2Batch(t *testing.T) {
	_, ts := newV2Server(t, manyAuthors(6), 4, nil)
	env := map[string]any{
		"queries": []map[string]any{
			{"query": authorsQuery, "take": 2},
			{"query": authorsQuery, "skip": -1}, // invalid: in-band error
			{"query": authorsQuery, "skip": 4},
		},
	}
	resp, lines := postV2(t, ts.URL+"/v2/batch", env)
	if resp.StatusCode != 200 {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	byQuery := map[int][]v2Line{}
	for i, ln := range lines {
		if ln.Query == nil {
			t.Fatalf("line %d has no query tag", i)
		}
		byQuery[*ln.Query] = append(byQuery[*ln.Query], ln)
	}
	q0 := byQuery[0]
	if len(q0) != 3 || q0[0].Row == nil || q0[1].Row == nil || q0[2].Summary == nil {
		t.Fatalf("query 0: want 2 rows + summary, got %d lines", len(q0))
	}
	if !q0[2].Summary.Truncated || q0[2].Summary.Rows != 2 {
		t.Fatalf("query 0 summary: rows=%d truncated=%v", q0[2].Summary.Rows, q0[2].Summary.Truncated)
	}
	q1 := byQuery[1]
	if len(q1) != 1 || q1[0].Error == nil || q1[0].Error.Code != "bad_request" {
		t.Fatalf("query 1: want one bad_request error line, got %+v", q1)
	}
	q2 := byQuery[2]
	if len(q2) != 3 || q2[2].Summary == nil || q2[2].Summary.Rows != 2 || q2[2].Summary.Skipped != 4 {
		t.Fatalf("query 2: want 2 rows after skip 4, got %d lines", len(q2))
	}
	if q2[0].Row.N != 4 {
		t.Fatalf("query 2 first ordinal = %d, want 4", q2[0].Row.N)
	}

	// Batch-level validation failures are plain JSON errors.
	for _, bad := range []any{
		map[string]any{"queries": []map[string]any{}},
		"{not json",
	} {
		var buf []byte
		if s, ok := bad.(string); ok {
			buf = []byte(s)
		} else {
			buf, _ = json.Marshal(bad)
		}
		r2, err := http.Post(ts.URL+"/v2/batch", "application/json", bytes.NewReader(buf))
		if err != nil {
			t.Fatal(err)
		}
		r2.Body.Close()
		if r2.StatusCode != 400 {
			t.Fatalf("batch validation status = %d, want 400", r2.StatusCode)
		}
	}
}

// TestV2BatchLimit rejects batches beyond Config.MaxBatch up front.
func TestV2BatchLimit(t *testing.T) {
	_, ts := newV2Server(t, manyAuthors(2), 1, func(c *Config) { c.MaxBatch = 2 })
	env := map[string]any{"queries": []map[string]any{
		{"query": authorsQuery}, {"query": authorsQuery}, {"query": authorsQuery},
	}}
	body, _ := json.Marshal(env)
	resp, err := http.Post(ts.URL+"/v2/batch", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 400 {
		t.Fatalf("over-limit batch status = %d, want 400", resp.StatusCode)
	}
}

// TestV2Schema reads the introspection surface an agent starts from.
func TestV2Schema(t *testing.T) {
	s, ts := newV2Server(t, manyAuthors(7), 4, nil)
	s.RegisterDoc("TINY", dblp())

	resp, err := http.Get(ts.URL + "/v2/schema")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	var out struct {
		API          string `json:"api"`
		StoreVersion uint64 `json:"store_version"`
		Docs         []struct {
			Name      string           `json:"name"`
			Graphs    int              `json:"graphs"`
			Shards    int              `json:"shards"`
			Indexed   bool             `json:"indexed"`
			Nodes     int64            `json:"nodes"`
			Edges     int64            `json:"edges"`
			NodeAttrs map[string]int64 `json:"node_attrs"`
		} `json:"docs"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if out.API != "v2" || out.StoreVersion == 0 {
		t.Fatalf("api=%q store_version=%d", out.API, out.StoreVersion)
	}
	byName := map[string]int{}
	for i, d := range out.Docs {
		byName[d.Name] = i
	}
	i, ok := byName["DBLP"]
	if !ok {
		t.Fatal("DBLP missing from schema")
	}
	if d := out.Docs[i]; d.Graphs != 7 || d.Nodes != 7 || d.Shards != 4 || d.NodeAttrs["name"] != 7 {
		t.Fatalf("DBLP schema = %+v", d)
	}
	j, ok := byName["TINY"]
	if !ok {
		t.Fatal("TINY missing from schema")
	}
	if d := out.Docs[j]; d.Graphs != 2 || d.Nodes != 5 {
		t.Fatalf("TINY schema = %+v", d)
	}
	if strings.Contains(resp.Header.Get("Content-Type"), "ndjson") {
		t.Fatal("schema is a buffered JSON document, not a stream")
	}
}

// TestV2CacheHitStreams: a second identical v2 query replays from the
// result cache and says so in the summary, with identical rows.
func TestV2CacheHitStreams(t *testing.T) {
	_, ts := newV2Server(t, manyAuthors(5), 1, func(c *Config) {
		c.Engine.Cache = store.NewCache(8)
	})
	_, first := postV2(t, ts.URL+"/v2/query", map[string]any{"query": authorsQuery})
	_, second := postV2(t, ts.URL+"/v2/query", map[string]any{"query": authorsQuery})
	fs := first[len(first)-1].Summary
	ss := second[len(second)-1].Summary
	if fs.CacheHit {
		t.Fatal("first run reported cache_hit")
	}
	if !ss.CacheHit {
		t.Fatal("second run did not report cache_hit")
	}
	if len(first) != len(second) {
		t.Fatalf("replay line count %d != %d", len(second), len(first))
	}
	for i := range first[:len(first)-1] {
		if first[i].Row.Graph != second[i].Row.Graph {
			t.Fatalf("replayed row %d differs", i)
		}
	}
}
