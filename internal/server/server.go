// Package server is the production HTTP frontend over the query engine:
// GraphQL (He & Singh) programs arrive as POST bodies and leave as JSON,
// with the process's observability surface mounted next to them.
//
// Endpoints:
//
//	POST /query    run a program, return result graphs and variables
//	               (v1, buffered; the envelope is frozen)
//	POST /explain  run a program traced, return the span tree and
//	               per-operator table
//	POST /v2/query streaming NDJSON: one line per result row as the
//	               pipeline produces it, with skip/take cursor pagination
//	               and per-row field projection, then a summary line
//	POST /v2/batch several programs in one request, pinned to one store
//	               snapshot, streamed back as interleaved NDJSON with a
//	               query index on every line
//	GET  /v2/schema loaded documents, store version and per-document
//	               attribute inventory
//	POST /v2/mutate apply a mutation program (create/drop/insert/delete
//	               statements) as one all-or-nothing batch; the 200 is
//	               written only after the batch committed (and, on a
//	               durable store, fsynced into the WAL). Mounted only
//	               under Config.Admin, like /admin/doc
//	GET  /metrics  Prometheus text dump of the process metrics registry
//	GET  /debug/vars  expvar (includes the "gqldb" snapshot var)
//	GET  /healthz  liveness + drain state + in-flight count
//
// The server is production-shaped rather than a demo: every query runs
// under a per-request context deadline threaded into the ctx-first
// match/algebra pipeline, admission is bounded by a semaphore (overload
// returns 429 with Retry-After instead of queueing without bound), request
// bodies are size-capped, panics convert to a 500 without killing the
// process, and every request is access-logged with its status, wall time
// and terminal error code. Shutdown is graceful: draining flips /healthz
// to 503 and rejects new queries while in-flight ones finish inside a
// configurable grace period, after which the base context is cancelled so
// even a pathological query unwinds within one backtracking step.
package server

import (
	"context"
	"expvar"
	"fmt"
	"log"
	"net/http"
	"runtime"
	"sync/atomic"
	"time"

	"gqldb/internal/exec"
	"gqldb/internal/graph"
	"gqldb/internal/obs"
	"gqldb/internal/store"
)

// Config carries the server's operational knobs; zero values take the
// documented defaults.
type Config struct {
	// Engine is the shared query engine (store, selection options, worker
	// fan-out, slow-query hook). Required.
	Engine *exec.Engine
	// MaxInflight bounds concurrently admitted queries; excess requests are
	// rejected with 429 and Retry-After. Default: 2×GOMAXPROCS.
	MaxInflight int
	// MaxBody caps the request body in bytes; larger bodies get 413.
	// Default: 1 MiB.
	MaxBody int64
	// Timeout is the default per-request deadline. Default: 30s.
	Timeout time.Duration
	// MaxTimeout caps a client-requested timeout_ms. Default: 5m.
	MaxTimeout time.Duration
	// AccessLog receives one record per finished request; nil logs through
	// the standard logger.
	AccessLog func(AccessRecord)
	// FlushInterval paces the periodic flushes of streamed v2 responses:
	// rows are flushed to the client whenever this much time has passed
	// since the last flush. Zero takes the 100ms default; negative flushes
	// after every row (useful for tests and interactive agents).
	FlushInterval time.Duration
	// MaxTake caps the per-query take of the v2 endpoints: requests asking
	// for more (or for everything) are truncated at the cap and handed a
	// next_skip cursor. Zero means uncapped.
	MaxTake int
	// MaxBatch caps the number of programs one /v2/batch request may
	// carry. Default: 16.
	MaxBatch int
	// Admin mounts the mutating admin surface (POST /admin/doc — register
	// a document over HTTP — and POST /v2/mutate — apply a mutation
	// program). Off by default: the write surface is for trusted
	// operators and cluster tests, not the query plane.
	Admin bool
}

// AccessRecord is one structured access-log line.
type AccessRecord struct {
	// Method and Path identify the request.
	Method, Path string
	// Status is the final HTTP status code.
	Status int
	// Wall is the handler's wall time.
	Wall time.Duration
	// Bytes is the response body size.
	Bytes int
	// Code is the terminal error code ("" on success) — the same code the
	// JSON error body carries.
	Code string
}

// String renders the record as one key=value log line.
func (r AccessRecord) String() string {
	s := fmt.Sprintf("method=%s path=%s status=%d wall=%v bytes=%d",
		r.Method, r.Path, r.Status, r.Wall.Round(time.Microsecond), r.Bytes)
	if r.Code != "" {
		s += " code=" + r.Code
	}
	return s
}

// Server is the HTTP frontend. Construct with New, mount as an
// http.Handler, and run the shutdown state machine with Drain.
type Server struct {
	cfg    Config
	engine *exec.Engine
	mux    *http.ServeMux

	// sem is the admission semaphore: a slot per admitted query.
	sem chan struct{}
	// inflight counts admitted queries, reported by /healthz.
	inflight atomic.Int64
	// draining is set once by StartDrain; no new queries are admitted after.
	draining atomic.Bool

	// base is the ancestor of every request context; CancelInflight cancels
	// it to unwind queries that outlive the drain grace period.
	base       context.Context
	cancelBase context.CancelFunc
}

// New returns a server over cfg.Engine with defaults applied.
func New(cfg Config) *Server {
	if cfg.Engine == nil {
		cfg.Engine = exec.New(exec.Store{})
	}
	if cfg.Engine.Docs == nil {
		cfg.Engine.Docs = store.New(store.Options{})
	}
	if cfg.MaxInflight <= 0 {
		cfg.MaxInflight = 2 * runtime.GOMAXPROCS(0)
	}
	if cfg.MaxBody <= 0 {
		cfg.MaxBody = 1 << 20
	}
	if cfg.Timeout <= 0 {
		cfg.Timeout = 30 * time.Second
	}
	if cfg.MaxTimeout <= 0 {
		cfg.MaxTimeout = 5 * time.Minute
	}
	if cfg.FlushInterval == 0 {
		cfg.FlushInterval = 100 * time.Millisecond
	}
	if cfg.MaxBatch <= 0 {
		cfg.MaxBatch = 16
	}
	base, cancel := context.WithCancel(context.Background())
	s := &Server{
		cfg:        cfg,
		engine:     cfg.Engine,
		mux:        http.NewServeMux(),
		sem:        make(chan struct{}, cfg.MaxInflight),
		base:       base,
		cancelBase: cancel,
	}
	s.mux.Handle("POST /query", s.wrap("/query", s.handleQuery))
	s.mux.Handle("POST /explain", s.wrap("/explain", s.handleExplain))
	s.mux.Handle("POST /v2/query", s.wrap("/v2/query", s.handleQueryV2))
	s.mux.Handle("POST /v2/batch", s.wrap("/v2/batch", s.handleBatchV2))
	s.mux.Handle("GET /v2/schema", s.wrap("/v2/schema", s.handleSchemaV2))
	s.mux.Handle("GET /healthz", s.wrap("/healthz", s.handleHealthz))
	s.mux.Handle("GET /metrics", obs.Handler())
	s.mux.Handle("GET /debug/vars", expvar.Handler())
	if cfg.Admin {
		s.mux.Handle("POST /admin/doc", s.wrap("/admin/doc", s.handleAdminDoc))
		s.mux.Handle("POST /v2/mutate", s.wrap("/v2/mutate", s.handleMutateV2))
	}
	return s
}

// RegisterDoc binds a document name (the target of doc("...") clauses) to a
// collection through the engine's versioned store and returns the new store
// version. Safe to call at any time, including while queries are running:
// in-flight queries finish against the snapshot they started with, and the
// version bump invalidates the result cache so no later query sees stale
// data.
func (s *Server) RegisterDoc(name string, c graph.Collection) uint64 {
	return s.engine.Docs.RegisterDoc(name, c)
}

// Inflight returns the number of currently admitted queries.
func (s *Server) Inflight() int64 { return s.inflight.Load() }

// Draining reports whether StartDrain has been called.
func (s *Server) Draining() bool { return s.draining.Load() }

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

// statusWriter captures the status code and body size for the access log.
type statusWriter struct {
	http.ResponseWriter
	status int
	bytes  int
	code   string // terminal JSON error code, set by writeError
}

func (w *statusWriter) WriteHeader(status int) {
	if w.status == 0 {
		w.status = status
	}
	w.ResponseWriter.WriteHeader(status)
}

func (w *statusWriter) Write(p []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	n, err := w.ResponseWriter.Write(p)
	w.bytes += n
	return n, err
}

// Flush forwards to the underlying writer's http.Flusher (the streaming v2
// endpoints push buffered NDJSON rows to the client); a non-flushing
// writer is a no-op.
func (w *statusWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// wrap is the middleware chain shared by every JSON endpoint: panic
// recovery (a handler panic becomes a 500 response and a log line, never a
// dead process) and structured access logging.
func (s *Server) wrap(path string, h func(*statusWriter, *http.Request)) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		obs.HTTPRequests.Inc()
		sw := &statusWriter{ResponseWriter: w}
		start := time.Now()
		defer func() {
			if p := recover(); p != nil {
				buf := make([]byte, 4<<10)
				buf = buf[:runtime.Stack(buf, false)]
				log.Printf("server: panic serving %s: %v\n%s", path, p, buf)
				if sw.status == 0 {
					writeError(sw, http.StatusInternalServerError, "internal", "internal server error")
				}
			}
			rec := AccessRecord{
				Method: r.Method, Path: path, Status: sw.status,
				Wall: time.Since(start), Bytes: sw.bytes, Code: sw.code,
			}
			if s.cfg.AccessLog != nil {
				s.cfg.AccessLog(rec)
			} else {
				log.Printf("server: %s", rec)
			}
		}()
		h(sw, r)
	})
}

// admit reserves an admission slot, or writes the overload/draining
// rejection and returns false. The caller must call the release func when
// the query finishes.
func (s *Server) admit(w *statusWriter) (release func(), ok bool) {
	if s.draining.Load() {
		writeError(w, http.StatusServiceUnavailable, "draining", "server is shutting down")
		return nil, false
	}
	select {
	case s.sem <- struct{}{}:
	default:
		obs.HTTPOverload.Inc()
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusTooManyRequests, "overloaded",
			fmt.Sprintf("server at max in-flight queries (%d); retry later", cap(s.sem)))
		return nil, false
	}
	s.inflight.Add(1)
	return func() {
		s.inflight.Add(-1)
		<-s.sem
	}, true
}

// StartDrain flips the server into draining mode: /healthz turns 503 and
// new queries are rejected, while already-admitted queries keep running.
// Safe to call more than once.
func (s *Server) StartDrain() { s.draining.Store(true) }

// CancelInflight cancels the base context under every in-flight query;
// the ctx-first pipeline unwinds each within one backtracking step and the
// handlers answer with a cancellation error.
func (s *Server) CancelInflight() { s.cancelBase() }

// Drain runs the shutdown state machine against the http.Server serving
// this handler:
//
//	accepting → draining → (grace expired?) cancelling → stopped
//
// It stops admission (StartDrain), asks hs to stop accepting and waits up
// to grace for in-flight requests to finish; if any remain it cancels
// their contexts (CancelInflight) and closes the listener. Either way the
// final metrics snapshot is flushed through flush (nil skips). The
// returned error is nil when everything drained inside the grace period.
func (s *Server) Drain(hs *http.Server, grace time.Duration, flush func() error) error {
	s.StartDrain()
	ctx, cancel := context.WithTimeout(context.Background(), grace)
	defer cancel()
	err := hs.Shutdown(ctx)
	if err != nil {
		// Grace expired with requests still running: cancel their contexts
		// and give them a moment to unwind before closing connections.
		s.CancelInflight()
		fctx, fcancel := context.WithTimeout(context.Background(), time.Second)
		defer fcancel()
		if serr := hs.Shutdown(fctx); serr != nil {
			hs.Close()
		}
	}
	if flush != nil {
		if ferr := flush(); ferr != nil && err == nil {
			err = ferr
		}
	}
	return err
}
