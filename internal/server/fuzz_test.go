package server

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"gqldb/internal/exec"
	"gqldb/internal/store"
)

// fuzzServer is shared across fuzz iterations: the engine runs over a
// sharded, cached store so the fuzzer also exercises the coordinator
// fan-out and the result-cache key path, and the handler state (admission
// semaphore, access log, metrics) accumulates across inputs like a real
// process. Construction is deferred into the first iteration so `go test
// -run` without the fuzz target pays nothing.
var fuzzServer = sync.OnceValue(func() *Server {
	eng := exec.NewOver(store.New(store.Options{Shards: 3, IndexMaxLen: 2}))
	eng.Cache = store.NewCache(32)
	s := New(Config{
		Engine: eng,
		// Short deadline and small body cap: a fuzz-crafted pathological
		// program must end in a JSON 504, not a stuck worker.
		Timeout:   2 * time.Second,
		MaxBody:   64 << 10,
		AccessLog: func(AccessRecord) {},
	})
	s.RegisterDoc("DBLP", dblp())
	return s
})

// FuzzServerQuery drives the HTTP frontend at the wire level: arbitrary
// bodies, raw or JSON-envelope framed, against /query and /explain. The
// handler contract under ANY input is: never a 500 (wrap converts handler
// panics into 500/"internal", so a 500 here IS a panic), and always a
// well-formed JSON response — either a success shape or
// {"error":{"code":...,"message":...}} with a known code.
func FuzzServerQuery(f *testing.F) {
	// Raw programs: valid, empty, parse error, eval error (unknown doc),
	// and parser stress shapes.
	f.Add([]byte(authorsQuery), false, false)
	f.Add([]byte(""), false, false)
	f.Add([]byte("for graph Q { node v1; } in doc(\"DBLP\")"), false, true)
	f.Add([]byte("for graph Q { node v1; } in doc(\"NOPE\") return graph { node Q.v1; };"), false, false)
	f.Add([]byte("graph G { node v1 where label=\"A\"; };"), false, false)
	f.Add([]byte("((((((((((("), false, false)
	f.Add([]byte("\xff\xfe invalid utf8"), false, false)
	// JSON envelopes: valid, workers/timeout overrides, malformed JSON,
	// wrong-typed fields, huge/negative numbers.
	f.Add([]byte(`{"query":"for graph Q { node v1 <author>; } exhaustive in doc(\"DBLP\") return graph { node Q.v1; };"}`), true, false)
	f.Add([]byte(`{"query":"graph G { node a; };","workers":-1,"timeout_ms":1}`), true, true)
	f.Add([]byte(`{"query":`), true, false)
	f.Add([]byte(`{"query":42}`), true, false)
	f.Add([]byte(`{"query":"graph G { node a; };","timeout_ms":99999999999999}`), true, false)
	f.Add([]byte(`[]`), true, false)

	f.Fuzz(func(t *testing.T, body []byte, asJSON, explain bool) {
		s := fuzzServer()
		path := "/query"
		if explain {
			path = "/explain"
		}
		req := httptest.NewRequest(http.MethodPost, path, strings.NewReader(string(body)))
		if asJSON {
			req.Header.Set("Content-Type", "application/json")
		}
		rec := httptest.NewRecorder()
		s.ServeHTTP(rec, req)

		res := rec.Result()
		if res.StatusCode == http.StatusInternalServerError {
			t.Fatalf("%s returned 500 (handler panic) for body %q", path, body)
		}
		if ct := res.Header.Get("Content-Type"); !strings.HasPrefix(ct, "application/json") {
			t.Fatalf("%s returned Content-Type %q, want application/json (status %d, body %q)",
				path, ct, res.StatusCode, rec.Body.Bytes())
		}
		if !json.Valid(rec.Body.Bytes()) {
			t.Fatalf("%s returned invalid JSON (status %d): %q", path, res.StatusCode, rec.Body.Bytes())
		}
		if res.StatusCode == http.StatusOK {
			return
		}
		var er errorResponse
		if err := json.Unmarshal(rec.Body.Bytes(), &er); err != nil || er.Error.Code == "" {
			t.Fatalf("%s status %d without the error shape: %q", path, res.StatusCode, rec.Body.Bytes())
		}
		switch er.Error.Code {
		case "bad_request", "parse_error", "eval_error", "timeout", "canceled",
			"body_too_large", "overloaded", "draining":
		default:
			t.Fatalf("%s returned unknown error code %q (status %d) for body %q",
				path, er.Error.Code, res.StatusCode, body)
		}
	})
}

// FuzzServerQueryV2 drives the streaming endpoints at the wire level:
// arbitrary JSON envelopes (and raw bodies) against /v2/query and
// /v2/batch. The contract under ANY input: never a 500; a 200 is an NDJSON
// stream where every line is one well-formed JSON value; any other status
// is the JSON error shape with a known code.
func FuzzServerQueryV2(f *testing.F) {
	// Single-query envelopes: valid, paginated, projected, malformed
	// cursors, wrong-typed fields, raw-program framing.
	f.Add([]byte(`{"query":"for graph Q { node v1 <author>; } exhaustive in doc(\"DBLP\") return graph { node Q.v1; };"}`), true, false)
	f.Add([]byte(`{"query":"for graph Q { node v1 <author>; } exhaustive in doc(\"DBLP\") return graph { node Q.v1; };","skip":1,"take":2}`), true, false)
	f.Add([]byte(`{"query":"for graph Q { node v1 <author>; } exhaustive in doc(\"DBLP\") return graph { node Q.v1; };","project":["Q_v1.name","nope"]}`), true, false)
	f.Add([]byte(`{"query":"graph G { node a; };","skip":-3}`), true, false)
	f.Add([]byte(`{"query":"graph G { node a; };","take":-1}`), true, false)
	f.Add([]byte(`{"query":"graph G { node a; };","take":999999999}`), true, false)
	f.Add([]byte(`{"query":42,"skip":"x"}`), true, false)
	f.Add([]byte("for graph Q { node v1; } in doc(\"NOPE\") return graph { node Q.v1; };"), false, false)
	f.Add([]byte("((((((((((("), false, false)
	f.Add([]byte(""), false, false)
	// Batch envelopes: valid, mixed-validity, empty, oversized, malformed.
	f.Add([]byte(`{"queries":[{"query":"graph G { node a; };"},{"query":"","skip":-1}]}`), true, true)
	f.Add([]byte(`{"queries":[]}`), true, true)
	f.Add([]byte(`{"queries":[{"query":"for graph Q { node v1 <author>; } exhaustive in doc(\"DBLP\") return graph { node Q.v1; };","take":1},{"query":")"}]}`), true, true)
	f.Add([]byte(`{"queries":`), true, true)
	f.Add([]byte(`[]`), true, true)
	f.Add([]byte("\xff\xfe invalid utf8"), false, true)

	f.Fuzz(func(t *testing.T, body []byte, asJSON, batch bool) {
		s := fuzzServer()
		path := "/v2/query"
		if batch {
			path = "/v2/batch"
		}
		req := httptest.NewRequest(http.MethodPost, path, strings.NewReader(string(body)))
		if asJSON {
			req.Header.Set("Content-Type", "application/json")
		}
		rec := httptest.NewRecorder()
		s.ServeHTTP(rec, req)

		res := rec.Result()
		if res.StatusCode == http.StatusInternalServerError {
			t.Fatalf("%s returned 500 (handler panic) for body %q", path, body)
		}
		ct := res.Header.Get("Content-Type")
		if res.StatusCode == http.StatusOK {
			// Streamed success: NDJSON, every line a well-formed JSON value,
			// and a trailing newline after the last line.
			if !strings.HasPrefix(ct, "application/x-ndjson") {
				t.Fatalf("%s 200 with Content-Type %q, want application/x-ndjson", path, ct)
			}
			out := rec.Body.Bytes()
			if len(out) == 0 || out[len(out)-1] != '\n' {
				t.Fatalf("%s stream does not end in a newline: %q", path, out)
			}
			for i, line := range strings.Split(strings.TrimRight(string(out), "\n"), "\n") {
				if !json.Valid([]byte(line)) {
					t.Fatalf("%s line %d is not valid JSON: %q", path, i, line)
				}
			}
			return
		}
		if !strings.HasPrefix(ct, "application/json") {
			t.Fatalf("%s returned Content-Type %q, want application/json (status %d, body %q)",
				path, ct, res.StatusCode, rec.Body.Bytes())
		}
		var er errorResponse
		if err := json.Unmarshal(rec.Body.Bytes(), &er); err != nil || er.Error.Code == "" {
			t.Fatalf("%s status %d without the error shape: %q", path, res.StatusCode, rec.Body.Bytes())
		}
		switch er.Error.Code {
		case "bad_request", "parse_error", "eval_error", "timeout", "canceled",
			"body_too_large", "overloaded", "draining":
		default:
			t.Fatalf("%s returned unknown error code %q (status %d) for body %q",
				path, er.Error.Code, res.StatusCode, body)
		}
	})
}
