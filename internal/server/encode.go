// The one row encoder both wire versions share. v1's buffered results
// array and v2's NDJSON row lines render graphs through renderGraph and
// variables through renderVars, so the two surfaces cannot drift: a v2
// stream concatenated is byte-identical to the v1 results array for the
// same program.
package server

import (
	"strings"

	"gqldb/internal/graph"
)

// renderGraph renders one result graph in the language's text syntax —
// the single row encoding of both API versions.
func renderGraph(g *graph.Graph) string { return g.String() }

// renderVars renders the final graph variables by name; empty maps encode
// as absent.
func renderVars(vars map[string]*graph.Graph) map[string]string {
	if len(vars) == 0 {
		return nil
	}
	out := make(map[string]string, len(vars))
	for name, g := range vars {
		out[name] = renderGraph(g)
	}
	return out
}

// projectRow applies the v2 field projection to one result graph: each
// path is "<element>.<attribute>" where the element is a node name first,
// then an edge name. A path that names nothing present maps to null —
// projection never fails a row, so heterogeneous results stay streamable.
func projectRow(g *graph.Graph, paths []string) map[string]any {
	out := make(map[string]any, len(paths))
	for _, path := range paths {
		out[path] = projectPath(g, path)
	}
	return out
}

func projectPath(g *graph.Graph, path string) any {
	elem, attr, ok := strings.Cut(path, ".")
	if !ok {
		return nil
	}
	var attrs *graph.Tuple
	if id, found := g.NodeByName(elem); found {
		attrs = g.Node(id).Attrs
	} else if eid, found := g.EdgeByName(elem); found {
		attrs = g.Edge(eid).Attrs
	}
	v, found := attrs.Get(attr)
	if !found {
		return nil
	}
	return jsonValue(v)
}

// jsonValue converts an attribute value to its natural JSON type.
func jsonValue(v graph.Value) any {
	switch v.Kind() {
	case graph.KindInt:
		return v.AsInt()
	case graph.KindFloat:
		return v.AsFloat()
	case graph.KindString:
		return v.AsString()
	case graph.KindBool:
		return v.AsBool()
	}
	return nil
}
