// The request handlers and their JSON wire shapes. Both query endpoints
// accept either a raw GraphQL program as the body or a JSON envelope
// ({"query": ..., "timeout_ms": ..., "workers": ...}); responses are JSON
// with graphs rendered in the language's text syntax, byte-identical to
// what the embedded engine produces for the same program.
package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"

	"gqldb/internal/ast"
	"gqldb/internal/exec"
	"gqldb/internal/graph"
	"gqldb/internal/match"
	"gqldb/internal/obs"
	"gqldb/internal/parser"
	"gqldb/internal/store"
)

// queryRequest is the JSON envelope of /query, /explain and /v2/query
// (the v1 fields are frozen; skip/take/project only act on the v2
// endpoints).
type queryRequest struct {
	// Query is the GraphQL program source.
	Query string `json:"query"`
	// TimeoutMS overrides the server's default per-request deadline
	// (capped at Config.MaxTimeout).
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
	// Workers overrides the engine's for-clause fan-out for this request
	// (negative means GOMAXPROCS).
	Workers int `json:"workers,omitempty"`
	// Skip (v2) drops the first Skip result rows inside the pipeline —
	// skipped rows are never materialized.
	Skip int `json:"skip,omitempty"`
	// Take (v2) caps the emitted rows: absent streams everything (subject
	// to Config.MaxTake), 0 emits no rows (summary only).
	Take *int `json:"take,omitempty"`
	// Project (v2) selects per-row fields ("node.attr" paths) instead of
	// the rendered graph text.
	Project []string `json:"project,omitempty"`
}

// queryResponse is the success shape of /query.
type queryResponse struct {
	// Results are the return-clause graphs in output order, rendered in the
	// language's text syntax.
	Results []string `json:"results"`
	// Vars are the final graph variables by name, rendered likewise.
	Vars map[string]string `json:"vars,omitempty"`
	// WallMS is the query's server-side wall time.
	WallMS float64 `json:"wall_ms"`
}

// opStat is one per-operator execution record of /explain.
type opStat struct {
	Op      string  `json:"op"`
	Items   int     `json:"items"`
	Workers int     `json:"workers"`
	WallMS  float64 `json:"wall_ms"`
}

// spanJSON is one trace-span node of /explain.
type spanJSON struct {
	Name     string           `json:"name"`
	WallMS   float64          `json:"wall_ms"`
	Attrs    []attrJSON       `json:"attrs,omitempty"`
	Counts   map[string]int64 `json:"counts,omitempty"`
	Children []spanJSON       `json:"children,omitempty"`
}

type attrJSON struct {
	Key string `json:"key"`
	Val string `json:"val"`
}

// explainResponse is the success shape of /explain.
type explainResponse struct {
	// Trace is the evaluation span tree.
	Trace *spanJSON `json:"trace"`
	// Render is the tree in the human-readable indented text form.
	Render string `json:"render"`
	// Operators is the per-operator table (bulk operators in execution
	// order).
	Operators []opStat `json:"operators,omitempty"`
	// Results counts the graphs the program produced (the graphs themselves
	// are /query's business).
	Results int     `json:"results"`
	WallMS  float64 `json:"wall_ms"`
}

// errorResponse is every error shape: {"error": {"code": ..., "message": ...}}.
type errorResponse struct {
	Error errorBody `json:"error"`
}

type errorBody struct {
	Code    string `json:"code"`
	Message string `json:"message"`
}

// writeJSON writes v with status; encoding errors past the header are
// connection failures and are dropped.
func writeJSON(w *statusWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	_ = enc.Encode(v)
}

// writeError writes the JSON error shape and records the code for the
// access log.
func writeError(w *statusWriter, status int, code, msg string) {
	w.code = code
	writeJSON(w, status, errorResponse{Error: errorBody{Code: code, Message: msg}})
}

// readRequest reads the capped body and decodes the envelope: a JSON
// content type gets the full envelope, anything else is a raw program.
func (s *Server) readRequest(w *statusWriter, r *http.Request) (queryRequest, bool) {
	var req queryRequest
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, s.cfg.MaxBody))
	if err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			writeError(w, http.StatusRequestEntityTooLarge, "body_too_large",
				fmt.Sprintf("request body exceeds %d bytes", tooLarge.Limit))
		} else {
			writeError(w, http.StatusBadRequest, "bad_request", "reading request body: "+err.Error())
		}
		return req, false
	}
	if strings.HasPrefix(r.Header.Get("Content-Type"), "application/json") {
		if err := json.Unmarshal(body, &req); err != nil {
			writeError(w, http.StatusBadRequest, "bad_request", "decoding JSON envelope: "+err.Error())
			return req, false
		}
	} else {
		req.Query = string(body)
	}
	if strings.TrimSpace(req.Query) == "" {
		writeError(w, http.StatusBadRequest, "bad_request", "empty query")
		return req, false
	}
	return req, true
}

// timeout resolves the request's deadline against the server's default and
// cap.
func (s *Server) timeout(req queryRequest) time.Duration {
	d := s.cfg.Timeout
	if req.TimeoutMS > 0 {
		d = time.Duration(req.TimeoutMS) * time.Millisecond
	}
	if d > s.cfg.MaxTimeout {
		d = s.cfg.MaxTimeout
	}
	return d
}

// runRequest is the shared body of /query and /explain: admission, body
// decode, deadline, parse, evaluate. It returns the result, the wall time
// and the parsed-and-run flag; on false the error response is already
// written.
func (s *Server) runRequest(w *statusWriter, r *http.Request, trace bool) (*exec.Result, time.Duration, bool) {
	release, ok := s.admit(w)
	if !ok {
		return nil, 0, false
	}
	defer release()

	req, ok := s.readRequest(w, r)
	if !ok {
		return nil, 0, false
	}

	// The request context descends from the server's base context (so a
	// drain past its grace period cancels it) with the per-request deadline
	// applied; client disconnect propagates via AfterFunc.
	ctx, cancel := context.WithTimeout(s.base, s.timeout(req))
	defer cancel()
	stop := context.AfterFunc(r.Context(), cancel)
	defer stop()

	// RunQuery parses, consults the result cache (keyed on the canonical
	// program text and the store version) and evaluates on a miss.
	eng := s.engine.Request(exec.RequestOptions{Workers: req.Workers, Trace: trace})
	start := time.Now()
	res, err := eng.RunQuery(ctx, req.Query)
	wall := time.Since(start)
	if err != nil {
		status, code, msg := s.errorFor(req, err)
		writeError(w, status, code, msg)
		return nil, 0, false
	}
	return res, wall, true
}

// errorFor maps an engine error to the wire contract shared by v1 and v2:
// the HTTP status, the stable error code and the client message. Timeouts
// are counted here so both surfaces feed one metric.
func (s *Server) errorFor(req queryRequest, err error) (status int, code, msg string) {
	var parseErr *exec.ParseError
	var shardErr *store.ShardError
	switch {
	case errors.As(err, &parseErr):
		return http.StatusBadRequest, "parse_error", parseErr.Error()
	case errors.Is(err, context.DeadlineExceeded):
		obs.HTTPTimeouts.Inc()
		return http.StatusGatewayTimeout, "timeout",
			fmt.Sprintf("query exceeded its deadline of %v", s.timeout(req))
	case errors.Is(err, context.Canceled):
		return http.StatusServiceUnavailable, "canceled", "query canceled: " + err.Error()
	case errors.As(err, &shardErr):
		return http.StatusBadGateway, "shard_error", err.Error()
	default:
		return http.StatusUnprocessableEntity, "eval_error", err.Error()
	}
}

// handleQuery serves POST /query.
func (s *Server) handleQuery(w *statusWriter, r *http.Request) {
	res, wall, ok := s.runRequest(w, r, false)
	if !ok {
		return
	}
	out := queryResponse{
		Results: make([]string, len(res.Out)),
		WallMS:  float64(wall) / float64(time.Millisecond),
		Vars:    renderVars(res.Vars),
	}
	for i, g := range res.Out {
		out.Results[i] = renderGraph(g)
	}
	writeJSON(w, http.StatusOK, out)
}

// handleExplain serves POST /explain: the program runs with tracing
// enabled and the response is the observability view — span tree, rendered
// tree and per-operator table.
func (s *Server) handleExplain(w *statusWriter, r *http.Request) {
	res, wall, ok := s.runRequest(w, r, true)
	if !ok {
		return
	}
	out := explainResponse{
		Trace:   spanToJSON(res.Trace),
		Render:  res.Trace.Render(),
		Results: len(res.Out),
		WallMS:  float64(wall) / float64(time.Millisecond),
	}
	if res.Stats != nil {
		for _, op := range res.Stats.Ops {
			out.Operators = append(out.Operators, opStat{
				Op: op.Op, Items: op.Items, Workers: op.Workers,
				WallMS: float64(op.Wall) / float64(time.Millisecond),
			})
		}
	}
	writeJSON(w, http.StatusOK, out)
}

// spanToJSON converts a span tree to the wire shape.
func spanToJSON(sp *obs.Span) *spanJSON {
	if sp == nil {
		return nil
	}
	out := &spanJSON{
		Name:   sp.Name,
		WallMS: float64(sp.Wall()) / float64(time.Millisecond),
		Counts: sp.Counts(),
	}
	if len(out.Counts) == 0 {
		out.Counts = nil
	}
	for _, a := range sp.Attrs() {
		out.Attrs = append(out.Attrs, attrJSON{Key: a.Key, Val: a.Val})
	}
	for _, c := range sp.Children() {
		out.Children = append(out.Children, *spanToJSON(c))
	}
	return out
}

// healthResponse is the /healthz shape.
type healthResponse struct {
	Status   string   `json:"status"` // "ok" or "draining"
	Inflight int64    `json:"inflight"`
	Docs     []string `json:"docs,omitempty"`
	// StoreVersion is the document store's current version (bumped by every
	// RegisterDoc).
	StoreVersion uint64 `json:"store_version"`
	// Cache is the result cache's counter snapshot, present when caching is
	// enabled.
	Cache *store.CacheStats `json:"cache,omitempty"`
	// PlanCache is the plan cache's counter snapshot, present when plan
	// caching is enabled.
	PlanCache *match.PlanCacheStats `json:"plan_cache,omitempty"`
	// Shards is the per-endpoint health of the remote shard cluster,
	// present when the engine routes selection through a health-reporting
	// selector (store.RemoteSelector).
	Shards []store.ShardHealth `json:"shards,omitempty"`
}

// handleHealthz serves GET /healthz: 200 ok while accepting, 503 once
// draining, with the in-flight query count, the loaded document names, the
// store version and the result-cache counters.
func (s *Server) handleHealthz(w *statusWriter, r *http.Request) {
	snap := s.engine.Docs.Snapshot()
	out := healthResponse{
		Status:       "ok",
		Inflight:     s.inflight.Load(),
		Docs:         snap.Docs(),
		StoreVersion: snap.Version(),
	}
	if s.engine.Cache != nil {
		stats := s.engine.Cache.Stats()
		out.Cache = &stats
	}
	if s.engine.Plans != nil {
		stats := s.engine.Plans.Stats()
		out.PlanCache = &stats
	}
	if hs, ok := s.engine.Selector.(interface{ Health() []store.ShardHealth }); ok {
		out.Shards = hs.Health()
	}
	status := http.StatusOK
	if s.draining.Load() {
		out.Status = "draining"
		status = http.StatusServiceUnavailable
	}
	writeJSON(w, status, out)
}

// handleAdminDoc serves POST /admin/doc?name=NAME (mounted only under
// Config.Admin): register a document over HTTP. The body is a binary
// collection (Content-Type application/octet-stream) or a sequence of
// graph literals in the language's text syntax. The version bump
// propagates exactly as Server.RegisterDoc: in-flight queries finish on
// their snapshot, the result cache invalidates, and remote shard mirrors
// go stale until the next query's handshake resyncs them.
func (s *Server) handleAdminDoc(w *statusWriter, r *http.Request) {
	name := r.URL.Query().Get("name")
	if name == "" {
		writeError(w, http.StatusBadRequest, "bad_request", "missing name parameter")
		return
	}
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, s.cfg.MaxBody))
	if err != nil {
		writeError(w, http.StatusRequestEntityTooLarge, "body_too_large",
			fmt.Sprintf("document body over the %d byte cap", s.cfg.MaxBody))
		return
	}
	var coll graph.Collection
	if r.Header.Get("Content-Type") == "application/octet-stream" {
		coll, err = graph.ReadBinary(bytes.NewReader(body))
		if err != nil {
			writeError(w, http.StatusBadRequest, "bad_request", "malformed binary collection: "+err.Error())
			return
		}
	} else {
		prog, perr := parser.Parse(string(body))
		if perr != nil {
			writeError(w, http.StatusBadRequest, "bad_request", "parsing document: "+perr.Error())
			return
		}
		for _, st := range prog.Stmts {
			d, ok := st.(*ast.GraphDecl)
			if !ok {
				writeError(w, http.StatusBadRequest, "bad_request", "documents may contain only graph literals")
				return
			}
			g, gerr := d.ToGraph()
			if gerr != nil {
				writeError(w, http.StatusBadRequest, "bad_request", gerr.Error())
				return
			}
			coll = append(coll, g)
		}
	}
	v := s.RegisterDoc(name, coll)
	writeJSON(w, http.StatusOK, map[string]any{"doc": name, "graphs": len(coll), "version": v})
}
