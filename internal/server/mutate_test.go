package server

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"gqldb/internal/exec"
	"gqldb/internal/graph"
	"gqldb/internal/store"
)

// postMutate posts a raw mutation program to /v2/mutate and returns the
// response with its decoded body.
func postMutate(t *testing.T, url, program string) (*http.Response, map[string]any) {
	t.Helper()
	resp, err := http.Post(url+"/v2/mutate", "text/plain", strings.NewReader(program))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	var out map[string]any
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatalf("response %q is not JSON: %v", body, err)
	}
	return resp, out
}

// TestMutateV2 drives the write endpoint end to end over a durable store:
// a successful batch answers 200 with its summary only after the WAL holds
// the record, parse and application failures map to the wire contract, and
// the mutation is visible to the query plane.
func TestMutateV2(t *testing.T) {
	dir := t.TempDir()
	d, err := store.OpenDurable(store.Options{Shards: 2}, store.DurableOptions{
		Dir: dir, Sync: true,
		Bootstrap: func(s *store.DocStore) error {
			g := graph.New("G")
			g.AddNode("a", graph.TupleOf("", "label", "A"))
			s.RegisterDoc("db", graph.Collection{g})
			return nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	cfg := Config{
		Engine:    exec.NewOver(d),
		Timeout:   10 * time.Second,
		AccessLog: func(AccessRecord) {},
		Admin:     true,
	}
	s := New(cfg)
	ts := httptest.NewServer(s)
	defer ts.Close()

	// A good batch: 200, summary counts, and the WAL holds it before the
	// response was written (Sync: true fsyncs inside ApplyBatch).
	resp, out := postMutate(t, ts.URL, `
insert node b <label="B"> into G in doc("db");
insert edge e (a, b) into G in doc("db");
`)
	if resp.StatusCode != 200 {
		t.Fatalf("mutate status = %d, body %v", resp.StatusCode, out)
	}
	if out["nodes_added"] != 1.0 || out["edges_added"] != 1.0 {
		t.Fatalf("summary = %v, want 1 node 1 edge added", out)
	}
	if _, ok := out["wall_ms"]; !ok {
		t.Fatalf("summary %v lacks wall_ms", out)
	}
	if recs := d.WALRecords(); recs != 1 {
		t.Fatalf("WAL holds %d records, want the committed batch", recs)
	}

	// The mutation is immediately visible to the query plane.
	q := `graph P { node v1 where label="A"; node v2 where label="B"; edge (v1, v2); };
for P exhaustive in doc("db") return graph { node P.v1; node P.v2; edge (P.v1, P.v2); };`
	qresp, err := http.Post(ts.URL+"/query", "text/plain", strings.NewReader(q))
	if err != nil {
		t.Fatal(err)
	}
	defer qresp.Body.Close()
	var qout queryResponse
	if err := json.NewDecoder(qresp.Body).Decode(&qout); err != nil {
		t.Fatal(err)
	}
	if len(qout.Results) != 1 {
		t.Fatalf("post-mutation query returned %d results, want 1", len(qout.Results))
	}

	// Parse failure: 400 parse_error.
	resp, out = postMutate(t, ts.URL, `insert node into;`)
	if resp.StatusCode != 400 {
		t.Fatalf("parse failure status = %d, want 400", resp.StatusCode)
	}
	if code := out["error"].(map[string]any)["code"]; code != "parse_error" {
		t.Fatalf("parse failure code = %v, want parse_error", code)
	}

	// Application failure (unknown document): 422 mutation_error, and the
	// failed batch left no WAL record.
	resp, out = postMutate(t, ts.URL, `drop graph G in doc("nope");`)
	if resp.StatusCode != 422 {
		t.Fatalf("apply failure status = %d, want 422", resp.StatusCode)
	}
	eb := out["error"].(map[string]any)
	if eb["code"] != "mutation_error" {
		t.Fatalf("apply failure code = %v, want mutation_error", eb["code"])
	}
	if !strings.Contains(eb["message"].(string), "unknown document") {
		t.Fatalf("apply failure message = %v", eb["message"])
	}
	if recs := d.WALRecords(); recs != 1 {
		t.Fatalf("failed batch reached the WAL: %d records", recs)
	}

	// A query program down the write path: rejected, not executed.
	resp, out = postMutate(t, ts.URL, q)
	if resp.StatusCode != 422 {
		t.Fatalf("query-on-mutate status = %d, want 422", resp.StatusCode)
	}
}

// TestMutateV2RequiresAdmin: without Config.Admin the write surface is not
// mounted at all.
func TestMutateV2RequiresAdmin(t *testing.T) {
	_, ts := newV2Server(t, manyAuthors(3), 1, nil)
	resp, err := http.Post(ts.URL+"/v2/mutate", "text/plain",
		strings.NewReader(`drop graph G0 in doc("DBLP");`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 404 {
		t.Fatalf("unmounted mutate status = %d, want 404", resp.StatusCode)
	}
}

// TestMutateV2Envelope: the JSON envelope form works and carries the
// timeout override field without disturbing the program.
func TestMutateV2Envelope(t *testing.T) {
	ds := store.New(store.Options{Shards: 1})
	g := graph.New("G")
	g.AddNode("a", graph.TupleOf("", "label", "A"))
	ds.RegisterDoc("db", graph.Collection{g})
	cfg := Config{
		Engine:    exec.NewOver(ds),
		Timeout:   10 * time.Second,
		AccessLog: func(AccessRecord) {},
		Admin:     true,
	}
	ts := httptest.NewServer(New(cfg))
	defer ts.Close()

	env, _ := json.Marshal(map[string]any{
		"query":      `insert node b into G in doc("db");`,
		"timeout_ms": 5000,
	})
	resp, err := http.Post(ts.URL+"/v2/mutate", "application/json", bytes.NewReader(env))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != 200 || out["nodes_added"] != 1.0 {
		t.Fatalf("envelope mutate: status %d, body %v", resp.StatusCode, out)
	}
}
