package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"gqldb/internal/exec"
	"gqldb/internal/graph"
	"gqldb/internal/parser"
)

// dblp is the small collection of Figure 4.13.
func dblp() graph.Collection {
	g1 := graph.New("G1")
	g1.Attrs = graph.TupleOf("inproceedings", "booktitle", "SIGMOD")
	g1.AddNode("v1", graph.TupleOf("author", "name", "A"))
	g1.AddNode("v2", graph.TupleOf("author", "name", "B"))
	g2 := graph.New("G2")
	g2.Attrs = graph.TupleOf("inproceedings", "booktitle", "SIGMOD")
	g2.AddNode("v1", graph.TupleOf("author", "name", "C"))
	g2.AddNode("v2", graph.TupleOf("author", "name", "D"))
	g2.AddNode("v3", graph.TupleOf("author", "name", "A"))
	return graph.NewCollection(g1, g2)
}

// bigClique returns one complete graph on n same-tag nodes — the workload
// whose exhaustive path matching blows up combinatorially, used to pin a
// query in flight until its deadline fires.
func bigClique(n int) graph.Collection {
	g := graph.New("K")
	ids := make([]graph.NodeID, n)
	for i := 0; i < n; i++ {
		ids[i] = g.AddNode(fmt.Sprintf("v%d", i), graph.TupleOf("n"))
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			g.AddEdge(fmt.Sprintf("e%d_%d", i, j), ids[i], ids[j], nil)
		}
	}
	return graph.NewCollection(g)
}

const authorsQuery = `for graph Q { node v1 <author>; } exhaustive in doc("DBLP")
return graph { node Q.v1; };`

// pathQuery explodes on bigClique: a 6-node path over one complete
// same-tag graph enumerates ~n^6 exhaustive mappings.
const pathQuery = `for graph Q {
	node v1 <n>; node v2 <n>; node v3 <n>; node v4 <n>; node v5 <n>; node v6 <n>;
	edge e1 (v1, v2); edge e2 (v2, v3); edge e3 (v3, v4); edge e4 (v4, v5); edge e5 (v5, v6);
} exhaustive in doc("BIG") return graph { node Q.v1; };`

// newTestServer builds a server over the test store; cfg tweaks apply on
// top of the test defaults.
func newTestServer(t *testing.T, mut func(*Config)) (*Server, *httptest.Server) {
	t.Helper()
	eng := exec.New(exec.Store{"DBLP": dblp(), "BIG": bigClique(30)})
	cfg := Config{
		Engine:    eng,
		Timeout:   10 * time.Second,
		AccessLog: func(AccessRecord) {}, // keep test output quiet
	}
	if mut != nil {
		mut(&cfg)
	}
	s := New(cfg)
	ts := httptest.NewServer(s)
	t.Cleanup(ts.Close)
	return s, ts
}

// postJSON posts the envelope and decodes the response into out, returning
// the HTTP response for header/status checks.
func postJSON(t *testing.T, url string, req any, out any) *http.Response {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("decoding response: %v", err)
		}
	}
	return resp
}

func TestQueryMatchesEmbeddedEngine(t *testing.T) {
	_, ts := newTestServer(t, nil)

	// The embedded engine over the same store is the oracle: the HTTP
	// results must be byte-identical renderings in the same order.
	prog, err := parser.Parse(authorsQuery)
	if err != nil {
		t.Fatal(err)
	}
	oracle, err := exec.New(exec.Store{"DBLP": dblp()}).Run(prog)
	if err != nil {
		t.Fatal(err)
	}
	want := make([]string, len(oracle.Out))
	for i, g := range oracle.Out {
		want[i] = g.String()
	}
	if len(want) == 0 {
		t.Fatal("oracle produced no results")
	}

	// Raw-body form.
	resp, err := http.Post(ts.URL+"/query", "text/plain", strings.NewReader(authorsQuery))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var got queryResponse
	if err := json.NewDecoder(resp.Body).Decode(&got); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != 200 {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if len(got.Results) != len(want) {
		t.Fatalf("results = %d, want %d", len(got.Results), len(want))
	}
	for i := range want {
		if got.Results[i] != want[i] {
			t.Fatalf("result %d differs from embedded engine:\nhttp: %s\nwant: %s", i, got.Results[i], want[i])
		}
	}

	// JSON-envelope form with a worker override must be identical too.
	var enveloped queryResponse
	resp2 := postJSON(t, ts.URL+"/query", queryRequest{Query: authorsQuery, Workers: 4}, &enveloped)
	if resp2.StatusCode != 200 {
		t.Fatalf("enveloped status = %d", resp2.StatusCode)
	}
	if fmt.Sprint(enveloped.Results) != fmt.Sprint(got.Results) {
		t.Fatalf("parallel results differ:\n%v\n%v", enveloped.Results, got.Results)
	}
}

func TestQueryErrors(t *testing.T) {
	_, ts := newTestServer(t, func(c *Config) { c.MaxBody = 256 })

	cases := []struct {
		name, body, ct string
		status         int
		code           string
	}{
		{"parse error", "for nonsense ;;;", "text/plain", 400, "parse_error"},
		{"eval error", `for graph Q { node v1 <author>; } in doc("NOPE") return graph { node Q.v1; };`, "text/plain", 422, "eval_error"},
		{"empty body", "", "text/plain", 400, "bad_request"},
		{"bad envelope", "{not json", "application/json", 400, "bad_request"},
		{"body too large", strings.Repeat("x", 300), "text/plain", 413, "body_too_large"},
	}
	for _, tc := range cases {
		resp, err := http.Post(ts.URL+"/query", tc.ct, strings.NewReader(tc.body))
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		var e errorResponse
		json.NewDecoder(resp.Body).Decode(&e)
		resp.Body.Close()
		if resp.StatusCode != tc.status || e.Error.Code != tc.code {
			t.Errorf("%s: status %d code %q, want %d %q (%s)",
				tc.name, resp.StatusCode, e.Error.Code, tc.status, tc.code, e.Error.Message)
		}
	}

	// Wrong method on a query endpoint.
	resp, err := http.Get(ts.URL + "/query")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /query status = %d, want 405", resp.StatusCode)
	}
}

func TestQueryDeadlineProducesJSONTimeout(t *testing.T) {
	_, ts := newTestServer(t, nil)
	var e errorResponse
	start := time.Now()
	resp := postJSON(t, ts.URL+"/query", queryRequest{Query: pathQuery, TimeoutMS: 40}, &e)
	if resp.StatusCode != http.StatusGatewayTimeout || e.Error.Code != "timeout" {
		t.Fatalf("status %d code %q (%s), want 504 timeout", resp.StatusCode, e.Error.Code, e.Error.Message)
	}
	// The response must arrive promptly after the deadline — a hung
	// connection would blow well past this bound.
	if wall := time.Since(start); wall > 5*time.Second {
		t.Fatalf("timeout response took %v", wall)
	}
}

func TestAdmissionControl429(t *testing.T) {
	s, ts := newTestServer(t, func(c *Config) { c.MaxInflight = 1 })

	// Pin the single admission slot with a query that runs until its
	// deadline.
	done := make(chan errorResponse, 1)
	go func() {
		var e errorResponse
		postJSON(t, ts.URL+"/query", queryRequest{Query: pathQuery, TimeoutMS: 5000}, &e)
		done <- e
	}()
	waitFor(t, time.Second, func() bool { return s.Inflight() == 1 })

	var e errorResponse
	resp := postJSON(t, ts.URL+"/query", queryRequest{Query: authorsQuery}, &e)
	if resp.StatusCode != http.StatusTooManyRequests || e.Error.Code != "overloaded" {
		t.Fatalf("status %d code %q, want 429 overloaded", resp.StatusCode, e.Error.Code)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 response missing Retry-After")
	}

	// Unwind the pinned query and confirm the slot frees.
	s.CancelInflight()
	pinned := <-done
	if pinned.Error.Code != "canceled" {
		t.Fatalf("pinned query code = %q, want canceled", pinned.Error.Code)
	}
	waitFor(t, time.Second, func() bool { return s.Inflight() == 0 })
}

func waitFor(t *testing.T, d time.Duration, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not reached in time")
		}
		time.Sleep(time.Millisecond)
	}
}

func TestExplainReturnsTraceAndOperators(t *testing.T) {
	_, ts := newTestServer(t, nil)
	var out explainResponse
	resp := postJSON(t, ts.URL+"/explain", queryRequest{Query: authorsQuery, Workers: 2}, &out)
	if resp.StatusCode != 200 {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if out.Trace == nil || out.Trace.Name != "query" {
		t.Fatalf("trace root = %+v", out.Trace)
	}
	var names []string
	var walk func(spanJSON)
	walk = func(s spanJSON) {
		names = append(names, s.Name)
		for _, c := range s.Children {
			walk(c)
		}
	}
	walk(*out.Trace)
	joined := strings.Join(names, " ")
	for _, phase := range []string{"flwr", "selection", "return-fanout"} {
		if !strings.Contains(joined, phase) {
			t.Errorf("trace missing %s span in %v", phase, names)
		}
	}
	if !strings.Contains(out.Render, "query") {
		t.Fatalf("render missing root: %q", out.Render)
	}
	if len(out.Operators) == 0 {
		t.Fatal("no per-operator records")
	}
	if out.Results != 5 {
		t.Fatalf("results = %d, want 5", out.Results)
	}
}

func TestHealthzAndDrainState(t *testing.T) {
	s, ts := newTestServer(t, nil)
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var h healthResponse
	json.NewDecoder(resp.Body).Decode(&h)
	resp.Body.Close()
	if resp.StatusCode != 200 || h.Status != "ok" || h.Inflight != 0 {
		t.Fatalf("healthz = %d %+v", resp.StatusCode, h)
	}
	if fmt.Sprint(h.Docs) != "[BIG DBLP]" {
		t.Fatalf("docs = %v", h.Docs)
	}

	s.StartDrain()
	resp, err = http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	json.NewDecoder(resp.Body).Decode(&h)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable || h.Status != "draining" {
		t.Fatalf("draining healthz = %d %+v", resp.StatusCode, h)
	}

	// New queries are rejected once draining.
	var e errorResponse
	qresp := postJSON(t, ts.URL+"/query", queryRequest{Query: authorsQuery}, &e)
	if qresp.StatusCode != http.StatusServiceUnavailable || e.Error.Code != "draining" {
		t.Fatalf("query while draining = %d %q", qresp.StatusCode, e.Error.Code)
	}
}

func TestMetricsAndDebugVars(t *testing.T) {
	_, ts := newTestServer(t, nil)
	// Drive one query so the pool's per-worker utilization counters have
	// moved in this process.
	var out queryResponse
	if resp := postJSON(t, ts.URL+"/query", queryRequest{Query: authorsQuery, Workers: 2}, &out); resp.StatusCode != 200 {
		t.Fatalf("query status = %d", resp.StatusCode)
	}

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body := new(bytes.Buffer)
	body.ReadFrom(resp.Body)
	resp.Body.Close()
	for _, frag := range []string{
		"gqldb_queries_total",
		"gqldb_http_requests_total",
		`gqldb_pool_worker_items_total{worker="0"}`,
		"gqldb_pool_worker_busy_seconds_total",
	} {
		if !strings.Contains(body.String(), frag) {
			t.Errorf("/metrics missing %q", frag)
		}
	}

	resp, err = http.Get(ts.URL + "/debug/vars")
	if err != nil {
		t.Fatal(err)
	}
	body.Reset()
	body.ReadFrom(resp.Body)
	resp.Body.Close()
	if !strings.Contains(body.String(), "gqldb_queries_total") {
		t.Fatalf("/debug/vars missing gqldb snapshot: %s", body.String())
	}
}

func TestPanicRecoveryMiddleware(t *testing.T) {
	s, _ := newTestServer(t, nil)
	h := s.wrap("/boom", func(w *statusWriter, r *http.Request) { panic("kaboom") })
	rr := httptest.NewRecorder()
	h.ServeHTTP(rr, httptest.NewRequest("POST", "/boom", nil))
	if rr.Code != http.StatusInternalServerError {
		t.Fatalf("status = %d, want 500", rr.Code)
	}
	var e errorResponse
	if err := json.Unmarshal(rr.Body.Bytes(), &e); err != nil || e.Error.Code != "internal" {
		t.Fatalf("body = %s (err %v)", rr.Body.String(), err)
	}
}

func TestAccessLogRecords(t *testing.T) {
	// The access log fires from the server's handler goroutine after the
	// response is written, so reads synchronize through the mutex and wait.
	var mu sync.Mutex
	var recs []AccessRecord
	_, ts := newTestServer(t, func(c *Config) {
		c.AccessLog = func(r AccessRecord) {
			mu.Lock()
			recs = append(recs, r)
			mu.Unlock()
		}
	})
	var out queryResponse
	postJSON(t, ts.URL+"/query", queryRequest{Query: authorsQuery}, &out)
	var e errorResponse
	postJSON(t, ts.URL+"/query", queryRequest{Query: "syntax! error!"}, &e)
	waitFor(t, time.Second, func() bool {
		mu.Lock()
		defer mu.Unlock()
		return len(recs) == 2
	})
	mu.Lock()
	defer mu.Unlock()
	if recs[0].Status != 200 || recs[0].Code != "" || recs[0].Bytes == 0 || recs[0].Path != "/query" {
		t.Fatalf("success record = %+v", recs[0])
	}
	if recs[1].Status != 400 || recs[1].Code != "parse_error" {
		t.Fatalf("error record = %+v", recs[1])
	}
	line := recs[1].String()
	if !strings.Contains(line, "status=400") || !strings.Contains(line, "code=parse_error") {
		t.Fatalf("log line = %q", line)
	}
}

func TestDrainStateMachine(t *testing.T) {
	s, ts := newTestServer(t, nil)

	// An idle server drains cleanly within the grace period and flushes the
	// final snapshot.
	flushed := false
	hs := &http.Server{}
	// httptest owns the listener; Drain against a fresh http.Server still
	// exercises StartDrain + flush ordering.
	if err := s.Drain(hs, time.Second, func() error { flushed = true; return nil }); err != nil {
		t.Fatalf("Drain = %v", err)
	}
	if !flushed {
		t.Fatal("final metrics snapshot not flushed")
	}
	if !s.Draining() {
		t.Fatal("server not marked draining")
	}
	_ = ts
}
