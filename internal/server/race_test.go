package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
	"testing"
	"time"

	"gqldb/internal/obs"
)

// TestServerHandlerRace hammers one shared Engine and one shared
// slow-query sink through the HTTP handlers from many goroutines, mixing
// worker overrides above the match count (workers=16 over 5 matches) with
// the serial path (workers=1), plus /explain requests that each build a
// trace tree over the same engine. Run under -race this is the server's
// shared-mutator stress test; every response must be byte-identical to the
// serial result.
func TestServerHandlerRace(t *testing.T) {
	var sinkMu sync.Mutex
	slow := 0
	_, ts := newTestServer(t, func(c *Config) {
		// Admission must never reject during the stress run.
		c.MaxInflight = 64
		// Every query crosses a 1ns slow-query threshold, so the shared
		// sink fires concurrently from all request goroutines.
		c.Engine.SlowQuery = time.Nanosecond
		c.Engine.SlowQueryLog = func(obs.SlowQueryRecord) {
			sinkMu.Lock()
			slow++
			sinkMu.Unlock()
		}
	})

	// Serial oracle.
	var oracle queryResponse
	if resp := postJSON(t, ts.URL+"/query", queryRequest{Query: authorsQuery, Workers: 1}, &oracle); resp.StatusCode != 200 {
		t.Fatalf("oracle status = %d", resp.StatusCode)
	}
	want := fmt.Sprint(oracle.Results)

	const goroutines = 8
	const rounds = 6
	var wg sync.WaitGroup
	errs := make(chan error, goroutines*rounds)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				workers := 16 // far above the 5-match fan-out
				if (g+r)%2 == 0 {
					workers = 1
				}
				if g%3 == 2 {
					var out explainResponse
					resp, err := http.Post(ts.URL+"/explain", "application/json",
						jsonBody(queryRequest{Query: authorsQuery, Workers: workers}))
					if err != nil {
						errs <- err
						continue
					}
					json.NewDecoder(resp.Body).Decode(&out)
					resp.Body.Close()
					if resp.StatusCode != 200 || out.Trace == nil || out.Results != 5 {
						errs <- fmt.Errorf("explain: status %d results %d", resp.StatusCode, out.Results)
					}
					continue
				}
				var out queryResponse
				resp, err := http.Post(ts.URL+"/query", "application/json",
					jsonBody(queryRequest{Query: authorsQuery, Workers: workers}))
				if err != nil {
					errs <- err
					continue
				}
				json.NewDecoder(resp.Body).Decode(&out)
				resp.Body.Close()
				if resp.StatusCode != 200 {
					errs <- fmt.Errorf("query: status %d", resp.StatusCode)
					continue
				}
				if got := fmt.Sprint(out.Results); got != want {
					errs <- fmt.Errorf("workers=%d results diverge:\n got %s\nwant %s", workers, got, want)
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	sinkMu.Lock()
	defer sinkMu.Unlock()
	if slow < goroutines*rounds {
		t.Fatalf("shared slow-query sink saw %d records, want >= %d", slow, goroutines*rounds)
	}
}

// jsonBody marshals v for http.Post.
func jsonBody(v any) *bytes.Reader {
	b, _ := json.Marshal(v)
	return bytes.NewReader(b)
}
