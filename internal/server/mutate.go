// The mutation endpoint: POST /v2/mutate accepts a mutation program (the
// create/drop/insert/delete statement forms) and applies it as one
// all-or-nothing batch through the engine's store. The 200 response is
// written only after the store has committed — when the store is a
// durable one (store.OpenDurable), that commit has already fsynced the
// batch into the write-ahead log, so a 200 means the mutation survives a
// crash.
package server

import (
	"context"
	"errors"
	"net/http"
	"time"

	"gqldb/internal/exec"
)

// mutateResponse is the success shape of /v2/mutate: the store's
// per-kind application counts plus the committed version and wall time.
type mutateResponse struct {
	*exec.MutationSummary
	WallMS float64 `json:"wall_ms"`
}

// handleMutateV2 serves POST /v2/mutate. The body is a mutation program
// (raw, or inside the usual JSON envelope); parse failures are 400s,
// application failures (unknown document, duplicate node, ...) are 422s
// with the positioned batch error, and a read-only store reports 403.
// The endpoint is mounted only under Config.Admin, like /admin/doc: the
// write surface is for trusted operators, not the query plane.
func (s *Server) handleMutateV2(w *statusWriter, r *http.Request) {
	release, ok := s.admit(w)
	if !ok {
		return
	}
	defer release()
	req, ok := s.readRequest(w, r)
	if !ok {
		return
	}
	ctx, cancel := context.WithTimeout(s.base, s.timeout(req))
	defer cancel()
	stop := context.AfterFunc(r.Context(), cancel)
	defer stop()

	start := time.Now()
	sum, err := s.engine.Mutate(ctx, req.Query)
	if err != nil {
		status, code, msg := s.errorFor(req, err)
		var parseErr *exec.ParseError
		if !errors.As(err, &parseErr) && status == http.StatusUnprocessableEntity {
			code = "mutation_error"
		}
		writeError(w, status, code, msg)
		return
	}
	writeJSON(w, http.StatusOK, mutateResponse{
		MutationSummary: sum,
		WallMS:          float64(time.Since(start)) / float64(time.Millisecond),
	})
}
