package graph

import (
	"bytes"
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func richGraph() *Graph {
	g := NewDirected("rich")
	g.Attrs = TupleOf("meta", "version", 2, "ratio", 0.5, "ok", true)
	a := g.AddNode("a", TupleOf("author", "name", "A", "h", 3.25))
	b := g.AddNode("b", nil)
	c := g.AddNode("c", TupleOf("", "flag", false))
	g.AddEdge("e1", a, b, TupleOf("rel", "kind", "cites"))
	g.AddEdge("e2", b, c, nil)
	g.AddEdge("e3", c, a, TupleOf("", "w", int64(-9)))
	return g
}

func TestBinaryRoundtrip(t *testing.T) {
	in := NewCollection(richGraph(), New("empty"))
	var buf bytes.Buffer
	if err := WriteBinary(&buf, in); err != nil {
		t.Fatal(err)
	}
	out, err := ReadBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 2 {
		t.Fatalf("graphs = %d", len(out))
	}
	for i := range in {
		if in[i].Signature() != out[i].Signature() {
			t.Errorf("graph %d changed:\n%s\nvs\n%s", i, in[i].Signature(), out[i].Signature())
		}
		if in[i].Directed != out[i].Directed || in[i].Name != out[i].Name {
			t.Errorf("graph %d header changed", i)
		}
	}
	// Value kinds precise: float and negative int survive.
	g := out[0]
	if g.Attrs.GetOr("ratio").AsFloat() != 0.5 {
		t.Error("float attr lost precision")
	}
	e3, _ := g.EdgeByName("e3")
	if g.Edge(e3).Attrs.GetOr("w").AsInt() != -9 {
		t.Error("negative int attr lost")
	}
}

func TestBinaryRoundtripSpecialFloats(t *testing.T) {
	g := New("f")
	g.AddNode("v", TupleOf("", "inf", math.Inf(1), "tiny", math.SmallestNonzeroFloat64))
	var buf bytes.Buffer
	if err := WriteBinary(&buf, NewCollection(g)); err != nil {
		t.Fatal(err)
	}
	out, err := ReadBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	attrs := out[0].Node(0).Attrs
	if !math.IsInf(attrs.GetOr("inf").AsFloat(), 1) {
		t.Error("+Inf lost")
	}
	if attrs.GetOr("tiny").AsFloat() != math.SmallestNonzeroFloat64 {
		t.Error("denormal lost")
	}
}

func TestBinaryErrors(t *testing.T) {
	bad := [][]byte{
		nil,                    // empty
		[]byte("XXXX\x01\x00"), // bad magic
		[]byte("GQLB\x09\x00"), // bad version
		[]byte("GQLB\x01\x05"), // truncated after count
	}
	for i, b := range bad {
		if _, err := ReadBinary(bytes.NewReader(b)); err == nil {
			t.Errorf("case %d: want error", i)
		}
	}
	// Truncation anywhere must error, not panic.
	var buf bytes.Buffer
	if err := WriteBinary(&buf, NewCollection(richGraph())); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	for cut := 1; cut < len(full); cut += 7 {
		if _, err := ReadBinary(bytes.NewReader(full[:cut])); err == nil {
			t.Fatalf("truncated at %d: want error", cut)
		}
	}
}

// Property: random attributed graphs survive the binary roundtrip.
func TestBinaryRoundtripProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		var coll Collection
		for gi := 0; gi < 1+rng.Intn(3); gi++ {
			g := New(strings.Repeat("g", 1+rng.Intn(3)))
			g.Directed = rng.Intn(2) == 0
			n := 1 + rng.Intn(8)
			for i := 0; i < n; i++ {
				var attrs *Tuple
				switch rng.Intn(4) {
				case 0:
					attrs = nil
				case 1:
					attrs = TupleOf("", "x", rng.Intn(100))
				case 2:
					attrs = TupleOf("tag", "s", strings.Repeat("a", rng.Intn(5)))
				default:
					attrs = TupleOf("", "f", rng.Float64(), "b", rng.Intn(2) == 0)
				}
				g.AddNode("", attrs)
			}
			for i := rng.Intn(2 * n); i > 0; i-- {
				g.AddEdge("", NodeID(rng.Intn(n)), NodeID(rng.Intn(n)), nil)
			}
			coll = append(coll, g)
		}
		var buf bytes.Buffer
		if err := WriteBinary(&buf, coll); err != nil {
			return false
		}
		out, err := ReadBinary(&buf)
		if err != nil || len(out) != len(coll) {
			return false
		}
		for i := range coll {
			if coll[i].Signature() != out[i].Signature() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
